// Crawl: the paper's data-collection pipeline (§IV-A1) end to end — a
// structure-driven crawler walks generated websites from their homepages,
// keeps only the content-rich pages (skipping index and media pages), and
// the kept HTML feeds model training through the same rendering pipeline
// external pages use.
//
// Run with:
//
//	go run ./examples/crawl
package main

import (
	"fmt"
	"log"
	"math/rand"

	"webbrief/internal/corpus"
	"webbrief/internal/crawler"
	"webbrief/internal/embed"
	"webbrief/internal/wb"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(17))

	// 1. Generate three websites and crawl each from its homepage.
	var kept []*corpus.Page
	for _, name := range []string{"books", "jobs", "recipes"} {
		site := corpus.GenerateSite(corpus.DomainByName(name), 12, rng)
		res, err := crawler.Crawl(crawler.MapFetcher(site.Pages), site.Home, crawler.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s crawled %2d pages: %2d content kept, %d index skipped, %d media skipped\n",
			name, res.Visited, len(res.Content), len(res.Index), len(res.Media))
		for _, cp := range res.Content {
			kept = append(kept, site.ContentPages[cp.URL])
		}
	}

	// 2. Build the vocabulary and train Joint-WB on the crawled pages.
	vocab := corpus.BuildVocab(kept)
	insts := wb.NewInstances(kept, vocab, 0)
	var docs [][]int
	for _, p := range kept {
		var doc []int
		for _, s := range p.Sentences {
			doc = append(doc, vocab.IDs(s.Tokens)...)
		}
		docs = append(docs, doc)
	}
	gcfg := embed.DefaultGloVeConfig(16)
	gcfg.Seed = 17
	enc := wb.NewGloVeEncoder(embed.TrainGloVe(docs, vocab.Size(), gcfg))
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 17
	model := wb.NewJointWB("Joint-WB", enc, vocab.Size(), cfg)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 30
	fmt.Printf("\ntraining Joint-WB on %d crawled pages...\n", len(insts))
	wb.TrainModel(model, insts, tc)

	prf := wb.EvaluateExtraction(model, insts)
	em, rm := wb.EvaluateTopics(model, insts, vocab, 8, 4)
	fmt.Printf("fit: attribute F1 %.1f | topic EM %.1f RM %.1f\n\n", prf.F1, em, rm)

	// 3. Brief a crawled page.
	inst := insts[0]
	fmt.Printf("briefing crawled page %s:\n", inst.Page.ID)
	fmt.Print(wb.MakeBrief(model, inst, vocab, 8).String())
}
