// Quickstart: train a small Joint-WB model on the synthetic webpage corpus
// and produce the hierarchical briefing of Fig. 1 for a held-out page.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"webbrief/internal/corpus"
	"webbrief/internal/embed"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// quickEncoder pre-trains GloVe vectors on the pages and wraps them as the
// document encoder (fine-tuned during task training).
func quickEncoder(v *textproc.Vocab, pages []*corpus.Page) wb.DocEncoder {
	var docs [][]int
	for _, p := range pages {
		var doc []int
		for _, s := range p.Sentences {
			doc = append(doc, v.IDs(s.Tokens)...)
		}
		docs = append(docs, doc)
	}
	cfg := embed.DefaultGloVeConfig(16)
	cfg.Seed = 7
	return wb.NewGloVeEncoder(embed.TrainGloVe(docs, v.Size(), cfg))
}

// quickConfig sizes the model for a fast demo.
func quickConfig() wb.Config {
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 7
	return cfg
}

func main() {
	log.SetFlags(0)

	// 1. Generate a labelled corpus of synthetic webpages over 4 domains.
	ds, err := corpus.Generate(corpus.Config{Seed: 7, PagesPerDomain: 14, SeenDomains: 4, UnseenDomains: 0})
	if err != nil {
		log.Fatal(err)
	}
	vocab := corpus.BuildVocab(ds.Pages)
	train, _, test := corpus.Split(ds.Pages, 7)
	fmt.Printf("corpus: %d pages, %d train / %d test, vocabulary %d tokens\n",
		len(ds.Pages), len(train), len(test), vocab.Size())

	// 2. Train Joint-WB: extractor + generator + section predictor, jointly.
	trainInsts := wb.NewInstances(train, vocab, 0)
	testInsts := wb.NewInstances(test, vocab, 0)
	model := wb.NewJointWB("Joint-WB", quickEncoder(vocab, ds.Pages), vocab.Size(), quickConfig())
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 30
	fmt.Println("training Joint-WB (30 epochs)...")
	losses := wb.TrainModel(model, trainInsts, tc)
	fmt.Printf("loss: %.3f -> %.3f\n", losses[0], losses[len(losses)-1])

	// 3. Evaluate on held-out pages.
	prf := wb.EvaluateExtraction(model, testInsts)
	em, rm := wb.EvaluateTopics(model, testInsts, vocab, 8, 4)
	fmt.Printf("test: attribute F1 %.1f | topic EM %.1f RM %.1f\n\n", prf.F1, em, rm)

	// 4. Brief one held-out page (the paper's Fig. 1 output format).
	page := test[0]
	fmt.Printf("=== briefing for page %s (gold topic: %s) ===\n",
		page.ID, strings.Join(page.Topic, " "))
	brief := wb.MakeBrief(model, testInsts[0], vocab, 8)
	fmt.Print(brief.String())
	fmt.Println("\nThe briefing is read in seconds; the page itself has",
		len(page.Sentences), "sentences of mixed content and boilerplate.")
}
