// Recruitment: compare single-task extraction against Joint-WB on
// recruitment (job-listing) pages — the paper's motivating case for joint
// learning: knowing a page's topic is "job recruitment" makes position,
// company and salary the likely key attributes (§I).
//
// Run with:
//
//	go run ./examples/recruitment
package main

import (
	"fmt"
	"log"
	"strings"

	"webbrief/internal/baselines"
	"webbrief/internal/corpus"
	"webbrief/internal/embed"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// gloveEncoder pre-trains GloVe vectors on the pages and wraps them as the
// document encoder (fine-tuned during task training).
func gloveEncoder(v *textproc.Vocab, pages []*corpus.Page, seed int64) wb.DocEncoder {
	var docs [][]int
	for _, p := range pages {
		var doc []int
		for _, s := range p.Sentences {
			doc = append(doc, v.IDs(s.Tokens)...)
		}
		docs = append(docs, doc)
	}
	cfg := embed.DefaultGloVeConfig(16)
	cfg.Seed = seed
	return wb.NewGloVeEncoder(embed.TrainGloVe(docs, v.Size(), cfg))
}

func main() {
	log.SetFlags(0)

	ds, err := corpus.Generate(corpus.Config{Seed: 11, PagesPerDomain: 14, SeenDomains: 4, UnseenDomains: 0})
	if err != nil {
		log.Fatal(err)
	}
	vocab := corpus.BuildVocab(ds.Pages)
	train, _, test := corpus.Split(ds.Pages, 11)
	trainInsts := wb.NewInstances(train, vocab, 0)
	testInsts := wb.NewInstances(test, vocab, 0)

	tc := wb.DefaultTrainConfig()
	tc.Epochs = 40

	fmt.Println("training single-task extractor (Bi-LSTM)...")
	single := baselines.NewSingleExtractor("Bi-LSTM extractor", gloveEncoder(vocab, ds.Pages, 1), vocab.Size(), 16, false, false, 1)
	wb.TrainModel(single, trainInsts, tc)

	fmt.Println("training Joint-WB (extractor + generator + section predictor)...")
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 2
	joint := wb.NewJointWB("Joint-WB", gloveEncoder(vocab, ds.Pages, 2), vocab.Size(), cfg)
	wb.TrainModel(joint, trainInsts, tc)

	sPRF := wb.EvaluateExtraction(single, testInsts)
	jPRF := wb.EvaluateExtraction(joint, testInsts)
	fmt.Printf("\nheld-out attribute extraction:\n")
	fmt.Printf("  single-task Bi-LSTM: P %.1f R %.1f F1 %.1f\n", sPRF.Precision, sPRF.Recall, sPRF.F1)
	fmt.Printf("  Joint-WB:            P %.1f R %.1f F1 %.1f\n", jPRF.Precision, jPRF.Recall, jPRF.F1)

	// Brief one recruitment page in detail.
	var jobInst *wb.Instance
	var jobPage *corpus.Page
	for i, p := range test {
		if p.Domain == "jobs" {
			jobPage, jobInst = p, testInsts[i]
			break
		}
	}
	if jobInst == nil {
		// No jobs page landed in the test split; brief a fresh one instead.
		for _, p := range ds.Pages {
			if p.Domain == "jobs" {
				jobPage = p
				jobInst = wb.NewInstance(p, vocab, 0)
				break
			}
		}
	}
	fmt.Printf("\n=== recruitment page %s ===\n", jobPage.ID)
	fmt.Println("gold attributes:")
	for _, a := range jobPage.Attributes() {
		fmt.Printf("  %-10s %s\n", a.Label+":", strings.Join(a.Value, " "))
	}
	fmt.Println("\nJoint-WB briefing:")
	fmt.Print(wb.MakeBrief(joint, jobInst, vocab, 8).String())
}
