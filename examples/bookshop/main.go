// Bookshop: brief a realistic hand-written book-shopping page — the
// motivating example of the paper's Fig. 1 — end to end: raw HTML → DOM
// parse → visible text → normalised sentences → model → hierarchical
// briefing.
//
// Run with:
//
//	go run ./examples/bookshop
package main

import (
	"fmt"
	"log"

	"webbrief/internal/corpus"
	"webbrief/internal/embed"
	"webbrief/internal/htmldom"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// gloveEncoder pre-trains GloVe vectors on the pages and wraps them as the
// document encoder (fine-tuned during task training).
func gloveEncoder(v *textproc.Vocab, pages []*corpus.Page, seed int64) wb.DocEncoder {
	var docs [][]int
	for _, p := range pages {
		var doc []int
		for _, s := range p.Sentences {
			doc = append(doc, v.IDs(s.Tokens)...)
		}
		docs = append(docs, doc)
	}
	cfg := embed.DefaultGloVeConfig(16)
	cfg.Seed = seed
	return wb.NewGloVeEncoder(embed.TrainGloVe(docs, v.Size(), cfg))
}

// bookshopHTML is a realistic product page in the style of the paper's
// Fig. 1 example. Its informative content follows the corpus's attribute
// phrasing ("label : value") so a corpus-trained model can read it; the
// chrome (nav, ads, footer, scripts) is realistic boilerplate.
const bookshopHTML = `<!DOCTYPE html>
<html>
<head>
<title>An Introduction to Deep Learning | BookShop</title>
<style>.price { color: red; font-weight: bold; }</style>
<script>var cart = []; function addToCart(id) { cart.push(id); }</script>
</head>
<body>
<nav>
  <div>home about contact help</div>
  <div>sign in or register for free</div>
</nav>
<main>
  <h1>title : novel hardcover edition</h1>
  <div>author : emma smith</div>
  <div class="price">price : $ 40.13</div>
  <div>pages : 192</div>
  <p>the hardcover is popular with visitors</p>
  <p>this bestseller has excellent quality</p>
</main>
<aside>
  <div class="ad">buy now limited time offer</div>
  <div class="ad">free shipping on orders over $ 25</div>
</aside>
<div style="display:none">tracking pixel content</div>
<footer>
  <div>copyright 2021 all rights reserved</div>
  <div>privacy policy and terms of service</div>
</footer>
</body>
</html>`

func main() {
	log.SetFlags(0)

	// Train on the books domain plus three distractor domains so the topic
	// decision is non-trivial.
	ds, err := corpus.Generate(corpus.Config{Seed: 3, PagesPerDomain: 14, SeenDomains: 4, UnseenDomains: 0})
	if err != nil {
		log.Fatal(err)
	}
	vocab := corpus.BuildVocab(ds.Pages)
	insts := wb.NewInstances(ds.Pages, vocab, 0)

	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 3
	model := wb.NewJointWB("Joint-WB", gloveEncoder(vocab, ds.Pages, 3), vocab.Size(), cfg)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 40
	fmt.Println("training Joint-WB on 4 domains (books, jobs, sports news, recipes)...")
	wb.TrainModel(model, insts, tc)

	// Show what the rendering substrate extracts from the raw page.
	doc := htmldom.Parse(bookshopHTML)
	fmt.Println("\n--- visible text the renderer extracts ---")
	fmt.Println(htmldom.VisibleText(doc))
	fmt.Println("-------------------------------------------")
	fmt.Printf("(scripts, hidden divs and styles are dropped; page title: %q)\n\n", htmldom.Title(doc))

	// Brief the external page.
	inst := wb.InstanceFromHTML(bookshopHTML, vocab, 0)
	brief := wb.MakeBrief(model, inst, vocab, 8)
	fmt.Println("=== hierarchical briefing (cf. paper Fig. 1) ===")
	fmt.Print(brief.String())
	fmt.Println("\npredicted informative sentences:", brief.Sections)
}
