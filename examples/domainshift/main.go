// Domainshift: the paper's central problem (§I) in one runnable story — a
// teacher trained on seen domains fails on unseen ones; Dual-Distill
// transfers its knowledge into a student that adapts to the new domains
// while preserving the old.
//
// Run with:
//
//	go run ./examples/domainshift
package main

import (
	"fmt"
	"log"
	"strings"

	"webbrief/internal/baselines"
	"webbrief/internal/corpus"
	"webbrief/internal/distill"
	"webbrief/internal/embed"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// gloveEncoder pre-trains GloVe vectors on the pages and wraps them as the
// document encoder (fine-tuned during task training).
func gloveEncoder(v *textproc.Vocab, pages []*corpus.Page, seed int64) wb.DocEncoder {
	var docs [][]int
	for _, p := range pages {
		var doc []int
		for _, s := range p.Sentences {
			doc = append(doc, v.IDs(s.Tokens)...)
		}
		docs = append(docs, doc)
	}
	cfg := embed.DefaultGloVeConfig(16)
	cfg.Seed = seed
	return wb.NewGloVeEncoder(embed.TrainGloVe(docs, v.Size(), cfg))
}

func main() {
	log.SetFlags(0)

	// 4 seen domains + 2 previously unseen ones.
	ds, err := corpus.Generate(corpus.Config{Seed: 5, PagesPerDomain: 8, SeenDomains: 4, UnseenDomains: 2})
	if err != nil {
		log.Fatal(err)
	}
	vocab := corpus.BuildVocab(ds.Pages)
	seenInsts := wb.NewInstances(ds.PagesOf(ds.IsSeen), vocab, 0)
	unseenInsts := wb.NewInstances(ds.PagesOf(func(d string) bool { return !ds.IsSeen(d) }), vocab, 0)
	allInsts := wb.NewInstances(ds.Pages, vocab, 0)
	fmt.Printf("seen domains:   %s\n", strings.Join(ds.Seen, ", "))
	fmt.Printf("unseen domains: %s\n\n", strings.Join(ds.Unseen, ", "))

	// 1. Pre-train the Joint-WB teacher on seen domains only.
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 5
	teacher := wb.NewJointWB("Joint-WB teacher", gloveEncoder(vocab, ds.Pages, 5), vocab.Size(), cfg)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 30
	fmt.Println("pre-training teacher on seen domains...")
	wb.TrainModel(teacher, seenInsts, tc)

	tSeen, _ := wb.EvaluateTopics(teacher, seenInsts, vocab, 4, 4)
	tUnseen, _ := wb.EvaluateTopics(teacher, unseenInsts, vocab, 4, 4)
	fmt.Printf("teacher topic EM: seen %.1f | unseen %.1f  <- fails on new domains\n\n", tSeen, tUnseen)

	// 2. Dual-Distill a student on pages covering all r+k topics: the
	//    identification distillation is guided by the stored seen-domain
	//    topics; the understanding distillation matches output
	//    distributions at temperature γ=2.
	var topics [][]string
	for _, name := range ds.Seen {
		topics = append(topics, corpus.DomainByName(name).Topic)
	}
	student := baselines.NewSingleGenerator("student", gloveEncoder(vocab, ds.Pages, 6), vocab.Size(), 16, false, 6)
	d := distill.New(teacher, student, distill.TaskTopic, teacher.Enc, distill.TopicIDs(topics, vocab), distill.DefaultConfig())
	dtc := wb.DefaultTrainConfig()
	dtc.Epochs = 25
	fmt.Println("Dual-Distilling a topic student on seen + unseen pages...")
	d.Train(allInsts, dtc)

	sSeen, _ := wb.EvaluateTopics(student, seenInsts, vocab, 4, 4)
	sUnseen, _ := wb.EvaluateTopics(student, unseenInsts, vocab, 4, 4)
	fmt.Printf("student topic EM: seen %.1f | unseen %.1f  <- adapts while preserving\n\n", sSeen, sUnseen)

	// 3. Show one unseen-domain page before/after.
	inst := unseenInsts[0]
	tGen := vocab.Tokens(wb.GenerateTopic(teacher, inst, 4, 4))
	sGen := vocab.Tokens(wb.GenerateTopic(student, inst, 4, 4))
	fmt.Printf("example unseen page (%s):\n", inst.Page.ID)
	fmt.Printf("  gold topic:      %s\n", strings.Join(inst.Topic, " "))
	fmt.Printf("  teacher decodes: %s\n", strings.Join(tGen, " "))
	fmt.Printf("  student decodes: %s\n", strings.Join(sGen, " "))
}
