module webbrief

go 1.22
