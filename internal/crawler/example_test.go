package crawler_test

import (
	"fmt"

	"webbrief/internal/crawler"
	"webbrief/internal/htmldom"
)

// ExampleCrawl walks a three-page site from its homepage and keeps only the
// content-rich page: the homepage classifies as an index (links, no text)
// and the gallery as media (§IV-A1's filtering).
func ExampleCrawl() {
	longText := ""
	for i := 0; i < 10; i++ {
		longText += "<p>a paragraph with enough descriptive words to count as content</p>"
	}
	site := crawler.MapFetcher{
		"/index.html": `<ul><li><a href="/item.html">item</a></li><li><a href="/pics.html">pics</a></li></ul>`,
		"/item.html":  `<main>` + longText + `</main>`,
		"/pics.html":  `<video src="clip.mp4"></video>`,
	}
	res, err := crawler.Crawl(site, "/index.html", crawler.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("visited %d, content %v, index %v, media %v\n",
		res.Visited, res.ContentURLs(), res.Index, res.Media)
	// Output:
	// visited 3, content [/item.html], index [/index.html], media [/pics.html]
}

// ExampleClassify shows the structural page classifier on its own.
func ExampleClassify() {
	doc := htmldom.Parse(`<audio src="song.mp3"></audio>`)
	fmt.Println(crawler.Classify(doc, crawler.DefaultConfig()))
	// Output:
	// media
}
