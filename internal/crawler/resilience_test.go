package crawler

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeClock is a virtual clock for deterministic resilience tests: Sleep
// advances Now instantly, so backoff, rate-limit and breaker timing replay
// exactly with zero wall-clock cost. The crawl loop is sequential, so no
// locking is needed.
type fakeClock struct {
	t     time.Time
	slept []time.Duration
}

func (c *fakeClock) Now() time.Time { return c.t }
func (c *fakeClock) Sleep(d time.Duration) {
	if d > 0 {
		c.t = c.t.Add(d)
	}
	c.slept = append(c.slept, d)
}

// resilientConfig is DefaultConfig with the fake clock wired in and fast
// test-sized backoff.
func resilientConfig(clk *fakeClock) Config {
	cfg := DefaultConfig()
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 8 * time.Millisecond
	cfg.Now = clk.Now
	cfg.Sleep = clk.Sleep
	return cfg
}

// flakyFetcher serves pages from a map but fails each URL's first
// failures[url] fetches with a transient error, counting every call.
type flakyFetcher struct {
	pages    map[string]string
	failures map[string]int
	calls    map[string]int
}

func (f *flakyFetcher) Fetch(url string) (string, error) {
	if f.calls == nil {
		f.calls = map[string]int{}
	}
	f.calls[url]++
	if f.calls[url] <= f.failures[url] {
		return "", fmt.Errorf("transient: connection reset fetching %s", url)
	}
	html, ok := f.pages[url]
	if !ok {
		return "", Permanent(fmt.Errorf("crawler: 404 %s", url))
	}
	return html, nil
}

// TestCrawlPartialFailureReasons is the satellite regression test: a URL
// that stays down must not abort the crawl — the rest of the site is still
// crawled and the failure carries its reason and attempt count.
func TestCrawlPartialFailureReasons(t *testing.T) {
	clk := &fakeClock{}
	f := &flakyFetcher{
		pages: map[string]string{
			"/index.html": `<a href="/down.html">down</a><a href="/up.html">up</a>` + longText(),
			"/up.html":    `<main>` + longText() + `</main>`,
		},
		failures: map[string]int{"/down.html": 1 << 30}, // never recovers
	}
	cfg := resilientConfig(clk)
	cfg.Retries = 2
	res, err := Crawl(f, "/index.html", cfg)
	if err != nil {
		t.Fatalf("partial crawl must not return an error: %v", err)
	}
	if got := res.ContentURLs(); len(got) != 2 { // index page is content-rich here
		t.Fatalf("crawl did not continue past the dead URL: content %v", got)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("failed: %+v", res.Failed)
	}
	fl := res.Failed[0]
	if fl.URL != "/down.html" || fl.Attempts != 3 || !strings.Contains(fl.Reason, "connection reset") {
		t.Fatalf("failure %+v, want /down.html after 3 attempts with the transport reason", fl)
	}
	if res.Retries != 2 {
		t.Fatalf("crawl-wide retries %d, want 2", res.Retries)
	}
}

// TestCrawlRetriesRecoverTransient: a URL that fails twice then serves is
// kept, costing exactly its retries; permanent 404s never retry.
func TestCrawlRetriesRecoverTransient(t *testing.T) {
	clk := &fakeClock{}
	f := &flakyFetcher{
		pages: map[string]string{
			"/index.html": `<a href="/flaky.html">f</a>` + longText(),
			"/flaky.html": `<main>` + longText() + `</main>`,
		},
		failures: map[string]int{"/flaky.html": 2},
	}
	cfg := resilientConfig(clk)
	cfg.Retries = 3
	res, err := Crawl(f, "/index.html", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 || len(res.Content) != 2 {
		t.Fatalf("failed=%v content=%v, want the flaky page recovered", res.Failed, res.ContentURLs())
	}
	if res.Retries != 2 || f.calls["/flaky.html"] != 3 {
		t.Fatalf("retries=%d calls=%d, want 2 retries / 3 calls", res.Retries, f.calls["/flaky.html"])
	}
	// Each retry slept a backoff: 2 sleeps recorded.
	if len(clk.slept) != 2 {
		t.Fatalf("backoff sleeps %v, want 2", clk.slept)
	}
}

// TestBackoffCappedJitter pins the backoff envelope: attempt n draws from
// [d/2, d) where d = min(base·2ⁿ⁻¹, max), and equal seeds replay equal
// jitter.
func TestBackoffCappedJitter(t *testing.T) {
	cfg := Config{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond, Seed: 5}
	s := newCrawlState(MapFetcher{}, cfg)
	for n := 1; n <= 8; n++ {
		d := cfg.BackoffBase << (n - 1)
		if d > cfg.BackoffMax {
			d = cfg.BackoffMax
		}
		got := s.backoff(n)
		if got < d/2 || got >= d {
			t.Fatalf("backoff(%d) = %v, want in [%v, %v)", n, got, d/2, d)
		}
	}
	// Replay: same seed, same sequence.
	a, b := newCrawlState(MapFetcher{}, cfg), newCrawlState(MapFetcher{}, cfg)
	for n := 1; n <= 8; n++ {
		if x, y := a.backoff(n), b.backoff(n); x != y {
			t.Fatalf("backoff(%d) diverged across equal seeds: %v vs %v", n, x, y)
		}
	}
}

// TestCrawlRateLimitTokenBucket: with HostRPS 10 and burst 1, n fetches
// space out to (n-1)·100ms of virtual time.
func TestCrawlRateLimitTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	pages := map[string]string{
		"/index.html": `<a href="/a.html">a</a><a href="/b.html">b</a>` + longText(),
		"/a.html":     `<main>` + longText() + `</main>`,
		"/b.html":     `<main>` + longText() + `</main>`,
	}
	cfg := resilientConfig(clk)
	cfg.HostRPS = 10
	cfg.HostBurst = 1
	start := clk.Now()
	res, err := Crawl(MapFetcher(pages), "/index.html", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 3 {
		t.Fatalf("visited %d, want 3", res.Visited)
	}
	elapsed := clk.Now().Sub(start)
	if want := 200 * time.Millisecond; elapsed < want || elapsed > want+50*time.Millisecond {
		t.Fatalf("3 fetches at 10 rps took %v of virtual time, want ~%v", elapsed, want)
	}
}

// TestCrawlBreakerFailsFast: after Threshold retry-exhausted URLs, the
// breaker opens and the remaining URLs fail fast — zero fetch attempts,
// an explicit breaker reason — instead of burning the retry budget on a
// dead host.
func TestCrawlBreakerFailsFast(t *testing.T) {
	clk := &fakeClock{}
	links := ""
	for i := 0; i < 6; i++ {
		links += fmt.Sprintf(`<a href="/dead%d.html">d</a>`, i)
	}
	f := &flakyFetcher{
		pages:    map[string]string{"/index.html": links + longText()},
		failures: map[string]int{},
	}
	for i := 0; i < 6; i++ {
		f.failures[fmt.Sprintf("/dead%d.html", i)] = 1 << 30
	}
	cfg := resilientConfig(clk)
	cfg.Retries = 1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour // stays open for the whole crawl
	res, err := Crawl(f, "/index.html", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 6 {
		t.Fatalf("failed %d URLs, want 6", len(res.Failed))
	}
	// First two URLs exhausted retries; the other four were never tried.
	for i, fl := range res.Failed {
		if i < 2 {
			if fl.Attempts != 2 || strings.Contains(fl.Reason, "breaker") {
				t.Fatalf("failure %d: %+v, want 2 real attempts", i, fl)
			}
			continue
		}
		if fl.Attempts != 0 || !strings.Contains(fl.Reason, "circuit breaker open") {
			t.Fatalf("failure %d: %+v, want breaker fail-fast", i, fl)
		}
	}
	totalCalls := 0
	for url, n := range f.calls {
		if url != "/index.html" {
			totalCalls += n
		}
	}
	if totalCalls != 4 { // 2 URLs × 2 attempts
		t.Fatalf("dead host saw %d fetch attempts, want 4 (breaker should stop the rest)", totalCalls)
	}
}

// TestBreakerCooldownProbe exercises the half-open transition directly:
// open → (cooldown) → one probe allowed → success closes, failure reopens.
func TestBreakerCooldownProbe(t *testing.T) {
	b := &hostBreaker{threshold: 2, cooldown: time.Second}
	t0 := time.Unix(0, 0)
	if !b.allow(t0) {
		t.Fatal("closed breaker must allow")
	}
	b.fail(t0)
	b.fail(t0)
	if b.state != breakerOpen {
		t.Fatalf("state %d after %d failures, want open", b.state, b.threshold)
	}
	if b.allow(t0.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker allowed a fetch inside the cooldown")
	}
	if !b.allow(t0.Add(time.Second)) {
		t.Fatal("open breaker must allow one probe after the cooldown")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state %d after cooldown, want half-open", b.state)
	}
	// Probe failure reopens immediately (no threshold accumulation).
	b.fail(t0.Add(time.Second))
	if b.state != breakerOpen {
		t.Fatal("failed probe must reopen the breaker")
	}
	if !b.allow(t0.Add(2 * time.Second)) {
		t.Fatal("second probe must be allowed after another cooldown")
	}
	b.success()
	if b.state != breakerClosed || b.consecutive != 0 {
		t.Fatalf("successful probe must close and reset, got state=%d consecutive=%d", b.state, b.consecutive)
	}
}

// deadlineFetcher asserts every fetch carries the configured deadline and
// times the first attempt out.
type deadlineFetcher struct {
	pages    MapFetcher
	deadline time.Duration
	calls    int
	t        *testing.T
}

func (f *deadlineFetcher) Fetch(url string) (string, error) {
	f.t.Fatal("crawler must prefer FetchContext when implemented")
	return "", nil
}

func (f *deadlineFetcher) FetchContext(ctx context.Context, url string) (string, error) {
	dl, ok := ctx.Deadline()
	if !ok {
		f.t.Errorf("fetch %s: no deadline on context", url)
	} else if until := time.Until(dl); until > f.deadline || until < f.deadline/2 {
		f.t.Errorf("fetch %s: deadline %v out, want ~%v", url, until, f.deadline)
	}
	f.calls++
	if f.calls == 1 {
		return "", context.DeadlineExceeded // first attempt "hangs"
	}
	return f.pages.Fetch(url)
}

// TestCrawlPerFetchDeadline: ContextFetchers get a fresh FetchTimeout
// deadline per attempt, and a timed-out attempt is retried.
func TestCrawlPerFetchDeadline(t *testing.T) {
	clk := &fakeClock{}
	f := &deadlineFetcher{
		pages:    MapFetcher{"/index.html": longText()},
		deadline: 75 * time.Millisecond,
		t:        t,
	}
	cfg := resilientConfig(clk)
	cfg.FetchTimeout = 75 * time.Millisecond
	cfg.Retries = 1
	res, err := Crawl(f, "/index.html", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 || res.Visited != 1 || res.Retries != 1 {
		t.Fatalf("failed=%v visited=%d retries=%d, want recovered timeout", res.Failed, res.Visited, res.Retries)
	}
}

// TestValidateBody: the garbage-body gate.
func TestValidateBody(t *testing.T) {
	if err := validateBody("<p>fine</p>"); err != nil {
		t.Fatalf("clean body rejected: %v", err)
	}
	for name, body := range map[string]string{
		"empty":        "",
		"NUL byte":     "<p>x\x00y</p>",
		"invalid UTF8": "<p>\xff\xfe</p>",
	} {
		if err := validateBody(body); err == nil {
			t.Fatalf("%s body accepted", name)
		}
	}
}

// TestPermanentWrapping: Permanent survives wrapping and nil-passthrough.
func TestPermanentWrapping(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
	base := errors.New("gone")
	p := Permanent(base)
	if !IsPermanent(p) || !IsPermanent(fmt.Errorf("outer: %w", p)) {
		t.Fatal("permanence lost through wrapping")
	}
	if IsPermanent(base) || IsPermanent(errors.New("x")) {
		t.Fatal("plain errors must not be permanent")
	}
	if !errors.Is(p, base) {
		t.Fatal("Permanent must unwrap to the original error")
	}
}
