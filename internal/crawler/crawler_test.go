package crawler

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"webbrief/internal/corpus"
	"webbrief/internal/htmldom"
)

func TestMapFetcher(t *testing.T) {
	f := MapFetcher{"/a": "<p>hi</p>"}
	if html, err := f.Fetch("/a"); err != nil || html == "" {
		t.Fatal("present page must fetch")
	}
	if _, err := f.Fetch("/missing"); err == nil {
		t.Fatal("absent page must error")
	}
}

func TestClassifyKinds(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		name string
		html string
		want PageKind
	}{
		{"video page", `<video src="x.mp4"></video><p>watch</p>`, KindMedia},
		{"audio page", `<audio src="x.mp3"></audio>`, KindMedia},
		{"image gallery", `<img src="a"><img src="b"><img src="c"><p>pics</p>`, KindMedia},
		{"link farm", `<ul><li><a href="/a">one</a></li><li><a href="/b">two</a></li><li><a href="/c">three</a></li></ul>`, KindIndex},
		{"tiny page", `<p>almost nothing here</p>`, KindIndex},
		{"content page", `<main>` + longText() + `</main><a href="/">home</a>`, KindContent},
	}
	for _, c := range cases {
		if got := Classify(htmldom.Parse(c.html), cfg); got != c.want {
			t.Errorf("%s: classified %v, want %v", c.name, got, c.want)
		}
	}
}

func longText() string {
	s := ""
	for i := 0; i < 12; i++ {
		s += "<p>this paragraph has a reasonable amount of descriptive content in it</p>"
	}
	return s
}

func TestExtractLinks(t *testing.T) {
	doc := htmldom.Parse(`<a href="/x.html">x</a>
		<a href="rel.html">rel</a>
		<a href="https://external.com/z">ext</a>
		<a href="#frag">frag</a>
		<a href="javascript:void(0)">js</a>
		<a href="/x.html">dup</a>
		<a>no href</a>`)
	got := ExtractLinks(doc, "/books/page.html")
	want := []string{"/x.html", "/books/rel.html"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("links: %v want %v", got, want)
	}
}

// TestExtractLinksFragmentsAndSchemes pins the satellite fix: fragment-only
// and javascript: hrefs (in any disguise) must never be enqueued as
// crawlable URLs, and fragment variants of one page must collapse to one
// target.
func TestExtractLinksFragmentsAndSchemes(t *testing.T) {
	doc := htmldom.Parse(`<a href="#">top</a>
		<a href="#section-2">frag only</a>
		<a href="  #padded  ">padded frag</a>
		<a href="page.html#a">page anchor a</a>
		<a href="page.html#b">page anchor b</a>
		<a href="/abs.html#top">abs anchor</a>
		<a href="javascript:void(0)">js</a>
		<a href="JavaScript:alert(1)">js mixed case</a>
		<a href="java&#10;script:alert(1)">js newline</a>
		<a href="other.html">real</a>`)
	got := ExtractLinks(doc, "/books/page.html")
	want := []string{"/books/page.html", "/abs.html", "/books/other.html"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("links: %v want %v", got, want)
	}
}

func TestResolveLink(t *testing.T) {
	cases := []struct{ base, href, want string }{
		{"/a/b.html", "/c.html", "/c.html"},
		{"/a/b.html", "c.html", "/a/c.html"},
		{"/b.html", "c.html", "/c.html"},
		{"/a/b.html", "  /sp.html ", "/sp.html"},
		{"/a/b.html", "//cdn.com/x", ""},
		{"/a/b.html", "mailto:x@y.z", ""},
		{"/a/b.html", "tel:12345", ""},
		{"/a/b.html", "http://x.com/y", ""},
		{"/a/b.html", "javascript:void(0)", ""},
		{"/a/b.html", "JavaScript:void(0)", ""},
		{"/a/b.html", "java\nscript:void(0)", ""},
		{"/a/b.html", "java\tscript:void(0)", ""},
		{"/a/b.html", "#", ""},
		{"/a/b.html", "#frag", ""},
		{"/a/b.html", "  #frag  ", ""},
		{"/a/b.html", "c.html#frag", "/a/c.html"},
		{"/a/b.html", "/x.html#top", "/x.html"},
		{"/a/b.html", "c.html#a#b", "/a/c.html"},
	}
	for _, c := range cases {
		if got := resolveLink(c.base, c.href); got != c.want {
			t.Errorf("resolveLink(%q, %q) = %q, want %q", c.base, c.href, got, c.want)
		}
	}
}

// The headline crawler test: crawl a generated site and recover exactly the
// content-rich pages, excluding every index and media page (§IV-A1).
func TestCrawlRecoversContentPages(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"books", "pets"} { // colon-style and paren-style domains
		site := corpus.GenerateSite(corpus.DomainByName(name), 20, rng)
		res, err := Crawl(MapFetcher(site.Pages), site.Home, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		want := append([]string{}, site.ContentURLs...)
		sort.Strings(want)
		if !reflect.DeepEqual(res.ContentURLs(), want) {
			t.Fatalf("%s: crawl kept %v\nwant %v\nindex=%v media=%v", name, res.ContentURLs(), want, res.Index, res.Media)
		}
		if len(res.Index) != len(site.IndexURLs)+1 { // +1: the homepage is an index page
			t.Errorf("%s: classified %d index pages, site has %d (+1 homepage)", name, len(res.Index), len(site.IndexURLs))
		}
		if len(res.Media) != len(site.MediaURLs) {
			t.Errorf("%s: classified %d media pages, site has %d", name, len(res.Media), len(site.MediaURLs))
		}
		if len(res.Failed) != 0 {
			t.Errorf("%s: unexpected fetch failures: %v", name, res.Failed)
		}
	}
}

func TestCrawlMaxPages(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	site := corpus.GenerateSite(corpus.DomainByName("jobs"), 30, rng)
	cfg := DefaultConfig()
	cfg.MaxPages = 5
	res, err := Crawl(MapFetcher(site.Pages), site.Home, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 5 {
		t.Fatalf("visited %d pages, cap was 5", res.Visited)
	}
}

func TestCrawlHandlesDeadLinks(t *testing.T) {
	pages := MapFetcher{
		"/index.html": `<a href="/alive.html">a</a><a href="/dead.html">d</a>`,
		"/alive.html": `<main>` + longText() + `</main>`,
	}
	res, err := Crawl(pages, "/index.html", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0].URL != "/dead.html" {
		t.Fatalf("failed: %v", res.Failed)
	}
	// A 404 is permanent: one attempt, no retry burn, and the reason is
	// carried through.
	if f := res.Failed[0]; f.Attempts != 1 || !strings.Contains(f.Reason, "404") {
		t.Fatalf("dead link failure %+v, want 1 attempt with a 404 reason", f)
	}
	if res.Retries != 0 {
		t.Fatalf("crawl spent %d retries on a permanent 404", res.Retries)
	}
	if len(res.Content) != 1 {
		t.Fatalf("content: %v", res.ContentURLs())
	}
}

func TestCrawlEmptyStart(t *testing.T) {
	if _, err := Crawl(MapFetcher{}, "", DefaultConfig()); err == nil {
		t.Fatal("empty start must error")
	}
}

func TestCrawlNoLinkCycles(t *testing.T) {
	// a ↔ b cycle must terminate.
	pages := MapFetcher{
		"/a.html": `<a href="/b.html">b</a>` + longText(),
		"/b.html": `<a href="/a.html">a</a>` + longText(),
	}
	res, err := Crawl(pages, "/a.html", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 2 {
		t.Fatalf("visited %d, want 2", res.Visited)
	}
}

func TestGenerateSiteStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	site := corpus.GenerateSite(corpus.DomainByName("hotels"), 10, rng)
	if len(site.ContentURLs) != 10 {
		t.Fatalf("content pages: %d", len(site.ContentURLs))
	}
	if _, ok := site.Pages[site.Home]; !ok {
		t.Fatal("homepage missing")
	}
	total := 1 + len(site.ContentURLs) + len(site.IndexURLs) + len(site.MediaURLs)
	if len(site.Pages) != total {
		t.Fatalf("site has %d pages, want %d", len(site.Pages), total)
	}
	// Content pages must keep their label alignment after link injection.
	for url, page := range site.ContentPages {
		got := corpus.ReparseFromHTML(site.Pages[url])
		// The injected sitelinks div adds exactly one extra line.
		if len(got) != len(page.Sentences)+1 {
			t.Fatalf("%s: %d sentences after link injection, want %d+1", url, len(got), len(page.Sentences))
		}
		for i, sent := range page.Sentences {
			if !reflect.DeepEqual(got[i], sent.Tokens) {
				t.Fatalf("%s sentence %d shifted by link injection", url, i)
			}
		}
	}
}

func BenchmarkCrawlSite(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	site := corpus.GenerateSite(corpus.DomainByName("books"), 30, rng)
	f := MapFetcher(site.Pages)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Crawl(f, site.Home, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
