package crawler

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"webbrief/internal/corpus"
	"webbrief/internal/fault"
)

// chaosConfig is the crawl profile the chaos suite and EXPERIMENTS.md both
// use: production-shaped resilience, virtual clock, retry budget deep
// enough that a 30% per-attempt fault rate almost never exhausts it
// (0.3⁷ ≈ 0.02% per URL).
func chaosConfig(clk *fakeClock) Config {
	cfg := DefaultConfig()
	cfg.Retries = 6
	cfg.FetchTimeout = 100 * time.Millisecond
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 16 * time.Millisecond
	cfg.Seed = 42
	cfg.HostRPS = 1000
	cfg.HostBurst = 4
	cfg.Now = clk.Now
	cfg.Sleep = clk.Sleep
	return cfg
}

// chaosCrawl crawls site through a fault.Fetcher at the default 30% fault
// rate under a virtual clock.
func chaosCrawl(t *testing.T, site *corpus.Site, faultSeed int64) (*Result, *fault.Schedule) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1, 0)}
	sched := fault.NewSchedule(fault.DefaultConfig(faultSeed))
	ff := fault.NewFetcher(MapFetcher(site.Pages), sched)
	ff.Sleep = clk.Sleep
	res, err := Crawl(ff, site.Home, chaosConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	return res, sched
}

// TestChaosCrawlDeterministicPartialResults is the crawler half of the
// acceptance criteria: with faults injected at a 30% rate,
//
//   - the crawl completes with partial-result semantics (never an abort),
//   - identical seeds reproduce identical fault schedules and a
//     byte-identical Result,
//   - the retry stack converges the faulted crawl to the same corpus a
//     clean crawl finds, byte for byte,
//   - and no goroutines leak.
func TestChaosCrawlDeterministicPartialResults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	site := corpus.GenerateSite(corpus.DomainByName("books"), 20, rng)

	before := runtime.NumGoroutine()

	clean, err := Crawl(MapFetcher(site.Pages), site.Home, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Failed) != 0 {
		t.Fatalf("clean crawl failed URLs: %v", clean.Failed)
	}

	for _, seed := range []int64{1, 2, 3} {
		res1, sched1 := chaosCrawl(t, site, seed)
		res2, sched2 := chaosCrawl(t, site, seed)

		// Identical seeds → identical schedules (same number of draws and
		// injections) and byte-identical crawl results, retries included.
		if sched1.Draws() != sched2.Draws() || sched1.Injected() != sched2.Injected() {
			t.Fatalf("seed %d: schedule replay diverged: %d/%d draws, %d/%d injected",
				seed, sched1.Draws(), sched2.Draws(), sched1.Injected(), sched2.Injected())
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Fatalf("seed %d: equal seeds produced different crawl results", seed)
		}
		if sched1.Injected() == 0 {
			t.Fatalf("seed %d: chaos run injected no faults", seed)
		}
		if res1.Retries == 0 {
			t.Fatalf("seed %d: 30%% faults but zero retries spent — injection is not reaching the crawler", seed)
		}

		// Convergence: the faulted crawl recovers the clean corpus byte
		// for byte — same kept URLs, same HTML, same classifications.
		if !reflect.DeepEqual(res1.Content, clean.Content) {
			t.Fatalf("seed %d: faulted crawl corpus diverges from clean crawl\n faulted: %v\n clean:   %v\n failed:  %v",
				seed, res1.ContentURLs(), clean.ContentURLs(), res1.Failed)
		}
		if !reflect.DeepEqual(res1.Index, clean.Index) || !reflect.DeepEqual(res1.Media, clean.Media) {
			t.Fatalf("seed %d: page classifications diverge under faults", seed)
		}
		if len(res1.Failed) != 0 {
			t.Fatalf("seed %d: retry budget exhausted on %v", seed, res1.Failed)
		}
	}

	// The resilience stack spawns no goroutines; only per-attempt
	// context.WithTimeout timers exist transiently. Allow them to clear.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before chaos crawls, %d after", before, after)
	}
}

// TestChaosCrawlSurvivesUnrecoverableURL: with a retry budget shallower
// than the fault rate warrants, some URLs exhaust it — the crawl must
// still complete, record those URLs with reasons, and keep everything
// else (partial-result semantics under chaos).
func TestChaosCrawlSurvivesUnrecoverableURL(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	site := corpus.GenerateSite(corpus.DomainByName("jobs"), 20, rng)

	clk := &fakeClock{t: time.Unix(1, 0)}
	// 90% fault rate and a single retry: exhaustion is certain somewhere.
	sched := fault.NewSchedule(fault.Config{Seed: 3, Rate: 0.9})
	ff := fault.NewFetcher(MapFetcher(site.Pages), sched)
	ff.Sleep = clk.Sleep
	cfg := chaosConfig(clk)
	cfg.Retries = 1
	cfg.BreakerThreshold = 0 // isolate retry exhaustion from breaker fail-fast
	res, err := Crawl(ff, site.Home, cfg)
	if err != nil {
		t.Fatalf("crawl aborted instead of returning partial results: %v", err)
	}
	if len(res.Failed) == 0 {
		t.Fatal("expected retry exhaustion at 90% faults with 1 retry")
	}
	for _, f := range res.Failed {
		if f.Reason == "" || f.Attempts != 2 {
			t.Fatalf("failure %+v: want a reason and exactly 2 attempts", f)
		}
	}
	if res.Visited == 0 {
		t.Fatal("no pages survived: partial-result semantics should keep the reachable subset")
	}
	// Replay: the same seeds give the same partial result.
	clk2 := &fakeClock{t: time.Unix(1, 0)}
	sched2 := fault.NewSchedule(fault.Config{Seed: 3, Rate: 0.9})
	ff2 := fault.NewFetcher(MapFetcher(site.Pages), sched2)
	ff2.Sleep = clk2.Sleep
	cfg2 := chaosConfig(clk2)
	cfg2.Retries = 1
	cfg2.BreakerThreshold = 0
	res2, err := Crawl(ff2, site.Home, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("equal seeds produced different partial results")
	}
}
