// Package crawler reproduces the structure-driven crawler of §IV-A1 [24]:
// starting from a website's homepage it walks the link structure breadth
// first, classifies each page structurally, and keeps only the content-rich
// pages — "indexing webpages and multimedia webpages such as video, music
// and image pages are not included".
//
// The crawler is transport-agnostic: pages come from a Fetcher, which in
// this offline repository is a map over generated corpus.Site pages, but
// could equally wrap net/http.
package crawler

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"webbrief/internal/htmldom"
	"webbrief/internal/textproc"
)

// Fetcher retrieves the HTML of a URL.
type Fetcher interface {
	Fetch(url string) (html string, err error)
}

// MapFetcher serves pages from memory; absent URLs return an error, which
// the crawler records and skips (real sites 404 too).
type MapFetcher map[string]string

// Fetch implements Fetcher.
func (m MapFetcher) Fetch(url string) (string, error) {
	html, ok := m[url]
	if !ok {
		return "", fmt.Errorf("crawler: 404 %s", url)
	}
	return html, nil
}

// PageKind classifies a fetched page.
type PageKind int

// Structural page classes of §IV-A1.
const (
	KindContent PageKind = iota // content-rich: kept
	KindIndex                   // link farm / listing: skipped
	KindMedia                   // video/audio/image page: skipped
)

// String names the kind.
func (k PageKind) String() string {
	switch k {
	case KindContent:
		return "content"
	case KindIndex:
		return "index"
	default:
		return "media"
	}
}

// Config bounds a crawl.
type Config struct {
	// MaxPages caps the number of fetched pages (the paper downloads
	// 1,500–2,000 per site). 0 means unlimited.
	MaxPages int
	// MinTextTokens is the minimum visible-token count for a page to be
	// content-rich.
	MinTextTokens int
	// MaxLinkRatio is the maximum links-per-text-token ratio before a page
	// counts as an index page.
	MaxLinkRatio float64
}

// DefaultConfig returns thresholds calibrated for the synthetic sites (and
// sensible for small real pages).
func DefaultConfig() Config {
	return Config{MaxPages: 2000, MinTextTokens: 30, MaxLinkRatio: 0.2}
}

// CrawledPage is one kept content page.
type CrawledPage struct {
	URL  string
	HTML string
}

// Result summarises a crawl.
type Result struct {
	Content []CrawledPage
	Index   []string
	Media   []string
	Failed  []string
	Visited int
}

// Classify determines a page's structural kind. Media pages are detected by
// embedded player elements or image dominance; index pages by a high
// link-to-text ratio or very little text; everything else is content-rich.
func Classify(doc *htmldom.Node, cfg Config) PageKind {
	// Media: player elements, or more images than text tokens.
	media := len(doc.FindAll("video")) + len(doc.FindAll("audio")) + len(doc.FindAll("embed"))
	imgs := len(doc.FindAll("img"))
	textTokens := 0
	for _, line := range htmldom.VisibleLines(doc) {
		textTokens += len(textproc.Normalize(line))
	}
	if media > 0 || (imgs > 0 && textTokens < 5*imgs) {
		return KindMedia
	}
	links := len(doc.FindAll("a"))
	if textTokens < cfg.MinTextTokens {
		return KindIndex
	}
	if float64(links) > cfg.MaxLinkRatio*float64(textTokens) {
		return KindIndex
	}
	return KindContent
}

// ExtractLinks returns the same-site link targets of a page in document
// order, de-duplicated. Only site-absolute paths and relative paths are
// followed; external schemes, anchors and javascript links are ignored.
func ExtractLinks(doc *htmldom.Node, baseURL string) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range doc.FindAll("a") {
		href, ok := a.Attr("href")
		if !ok {
			continue
		}
		u := resolveLink(baseURL, href)
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		out = append(out, u)
	}
	return out
}

// resolveLink resolves href against base, keeping only same-site targets.
func resolveLink(base, href string) string {
	href = strings.TrimSpace(href)
	switch {
	case href == "" || strings.HasPrefix(href, "#"):
		return ""
	case strings.HasPrefix(href, "//"):
		return "" // protocol-relative external
	case strings.HasPrefix(href, "/"):
		return href
	}
	// Any scheme prefix (http:, mailto:, javascript:, tel:) before the
	// first slash marks a non-crawlable target.
	if i := strings.IndexByte(href, ':'); i >= 0 && !strings.ContainsRune(href[:i], '/') {
		return ""
	}
	// Relative: resolve against the base's directory.
	dir := base
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i+1]
	}
	return dir + href
}

// Crawl walks the site breadth-first from start, classifying each fetched
// page and keeping the content-rich ones. It is deterministic: links are
// followed in document order.
func Crawl(f Fetcher, start string, cfg Config) (*Result, error) {
	if start == "" {
		return nil, errors.New("crawler: empty start URL")
	}
	res := &Result{}
	queue := []string{start}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		if cfg.MaxPages > 0 && res.Visited >= cfg.MaxPages {
			break
		}
		url := queue[0]
		queue = queue[1:]
		html, err := f.Fetch(url)
		if err != nil {
			res.Failed = append(res.Failed, url)
			continue
		}
		res.Visited++
		doc := htmldom.Parse(html)
		switch Classify(doc, cfg) {
		case KindContent:
			res.Content = append(res.Content, CrawledPage{URL: url, HTML: html})
		case KindIndex:
			res.Index = append(res.Index, url)
		case KindMedia:
			res.Media = append(res.Media, url)
		}
		for _, link := range ExtractLinks(doc, url) {
			if !visited[link] {
				visited[link] = true
				queue = append(queue, link)
			}
		}
	}
	return res, nil
}

// ContentURLs returns the kept content URLs sorted, for set comparison in
// tests and pipelines.
func (r *Result) ContentURLs() []string {
	out := make([]string, len(r.Content))
	for i, p := range r.Content {
		out[i] = p.URL
	}
	sort.Strings(out)
	return out
}
