// Package crawler reproduces the structure-driven crawler of §IV-A1 [24]:
// starting from a website's homepage it walks the link structure breadth
// first, classifies each page structurally, and keeps only the content-rich
// pages — "indexing webpages and multimedia webpages such as video, music
// and image pages are not included".
//
// The crawler is transport-agnostic: pages come from a Fetcher, which in
// this offline repository is a map over generated corpus.Site pages, but
// could equally wrap net/http.
package crawler

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"webbrief/internal/htmldom"
	"webbrief/internal/textproc"
)

// Fetcher retrieves the HTML of a URL.
type Fetcher interface {
	Fetch(url string) (html string, err error)
}

// MapFetcher serves pages from memory; absent URLs return a Permanent
// error — a 404 is not transient, so the crawler records it without
// burning retries.
type MapFetcher map[string]string

// Fetch implements Fetcher.
func (m MapFetcher) Fetch(url string) (string, error) {
	html, ok := m[url]
	if !ok {
		return "", Permanent(fmt.Errorf("crawler: 404 %s", url))
	}
	return html, nil
}

// PageKind classifies a fetched page.
type PageKind int

// Structural page classes of §IV-A1.
const (
	KindContent PageKind = iota // content-rich: kept
	KindIndex                   // link farm / listing: skipped
	KindMedia                   // video/audio/image page: skipped
)

// String names the kind.
func (k PageKind) String() string {
	switch k {
	case KindContent:
		return "content"
	case KindIndex:
		return "index"
	default:
		return "media"
	}
}

// Config bounds a crawl and shapes its resilience stack. The zero value
// of every resilience field means "off": single attempt per URL, no
// deadline, no rate limit, no circuit breaker — the seed behavior.
type Config struct {
	// MaxPages caps the number of fetched pages (the paper downloads
	// 1,500–2,000 per site). 0 means unlimited.
	MaxPages int
	// MinTextTokens is the minimum visible-token count for a page to be
	// content-rich.
	MinTextTokens int
	// MaxLinkRatio is the maximum links-per-text-token ratio before a page
	// counts as an index page.
	MaxLinkRatio float64

	// FetchTimeout is the per-fetch deadline, applied per attempt when the
	// Fetcher implements ContextFetcher (0 = none).
	FetchTimeout time.Duration
	// Retries is how many extra attempts a transiently-failing fetch gets
	// after the first (0 = none). Permanent errors are never retried.
	Retries int
	// BackoffBase is the exponential backoff base before retry 1
	// (0 = 10ms); BackoffMax caps the backoff including jitter (0 = 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter RNG; equal seeds replay equal crawls.
	Seed int64
	// HostRPS rate-limits fetches per host with a token bucket refilling
	// at HostRPS tokens/second and holding HostBurst (0 → 1) tokens
	// (HostRPS 0 = unlimited).
	HostRPS   float64
	HostBurst int
	// BreakerThreshold consecutive retry-exhausted fetches on one host
	// open its circuit breaker (0 = disabled): further fetches fail fast
	// until a probe succeeds after BreakerCooldown (0 = 500ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Now and Sleep are the clock seams (nil = time.Now / time.Sleep);
	// chaos tests inject a virtual clock so backoff, rate-limit and
	// breaker behavior replay instantly and deterministically.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// DefaultConfig returns thresholds calibrated for the synthetic sites (and
// sensible for small real pages), with a production-shaped resilience
// stack: 10s fetch deadlines, 3 retries under capped-jitter backoff, and a
// 5-strike circuit breaker. Rate limiting stays opt-in.
func DefaultConfig() Config {
	return Config{
		MaxPages: 2000, MinTextTokens: 30, MaxLinkRatio: 0.2,
		FetchTimeout: 10 * time.Second,
		Retries:      3,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   2 * time.Second,
		Seed:         1,
		BreakerThreshold: 5,
		BreakerCooldown:  500 * time.Millisecond,
	}
}

// CrawledPage is one kept content page.
type CrawledPage struct {
	URL  string
	HTML string
}

// Result summarises a crawl. A crawl never aborts on fetch errors: URLs
// that stay unreachable after the retry budget land in Failed with their
// reasons, and everything reachable is still crawled (partial-result
// semantics).
type Result struct {
	Content []CrawledPage
	Index   []string
	Media   []string
	Failed  []Failure
	Visited int
	// Retries counts the extra fetch attempts spent crawl-wide, the
	// crawler-side mirror of serve's retries_total.
	Retries int
}

// Classify determines a page's structural kind. Media pages are detected by
// embedded player elements or image dominance; index pages by a high
// link-to-text ratio or very little text; everything else is content-rich.
func Classify(doc *htmldom.Node, cfg Config) PageKind {
	// Media: player elements, or more images than text tokens.
	media := len(doc.FindAll("video")) + len(doc.FindAll("audio")) + len(doc.FindAll("embed"))
	imgs := len(doc.FindAll("img"))
	textTokens := 0
	for _, line := range htmldom.VisibleLines(doc) {
		textTokens += len(textproc.Normalize(line))
	}
	if media > 0 || (imgs > 0 && textTokens < 5*imgs) {
		return KindMedia
	}
	links := len(doc.FindAll("a"))
	if textTokens < cfg.MinTextTokens {
		return KindIndex
	}
	if float64(links) > cfg.MaxLinkRatio*float64(textTokens) {
		return KindIndex
	}
	return KindContent
}

// ExtractLinks returns the same-site link targets of a page in document
// order, de-duplicated. Only site-absolute paths and relative paths are
// followed; external schemes, anchors and javascript links are ignored.
func ExtractLinks(doc *htmldom.Node, baseURL string) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range doc.FindAll("a") {
		href, ok := a.Attr("href")
		if !ok {
			continue
		}
		u := resolveLink(baseURL, href)
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		out = append(out, u)
	}
	return out
}

// resolveLink resolves href against base, keeping only same-site targets.
// Per the URL spec it strips ASCII tab/newline anywhere in the href (so
// "java\nscript:" cannot smuggle a scheme past the check) and drops the
// fragment — "page.html#a" and "page.html#b" are the same crawl target,
// and a fragment-only href is not a target at all.
func resolveLink(base, href string) string {
	href = strings.TrimSpace(href)
	href = strings.Map(func(r rune) rune {
		if r == '\t' || r == '\n' || r == '\r' {
			return -1
		}
		return r
	}, href)
	if i := strings.IndexByte(href, '#'); i >= 0 {
		href = href[:i]
	}
	switch {
	case href == "": // empty or fragment-only
		return ""
	case strings.HasPrefix(href, "//"):
		return "" // protocol-relative external
	case strings.HasPrefix(href, "/"):
		return href
	}
	// Any scheme prefix (http:, mailto:, javascript:, tel:) before the
	// first slash marks a non-crawlable target.
	if i := strings.IndexByte(href, ':'); i >= 0 && !strings.ContainsRune(href[:i], '/') {
		return ""
	}
	// Relative: resolve against the base's directory.
	dir := base
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i+1]
	}
	return dir + href
}

// Crawl walks the site breadth-first from start, classifying each fetched
// page and keeping the content-rich ones. It is deterministic: links are
// followed in document order, and the resilience stack (per-fetch
// deadlines, capped-jitter backoff retries, per-host rate limiting, the
// circuit breaker) draws only from the Config.Seed RNG and the Config
// clock seams, so equal seeds over equal fetch outcomes replay
// byte-identical results. Fetch failures never abort the crawl: they
// become Result.Failed entries.
func Crawl(f Fetcher, start string, cfg Config) (*Result, error) {
	if start == "" {
		return nil, errors.New("crawler: empty start URL")
	}
	st := newCrawlState(f, cfg)
	res := &Result{}
	queue := []string{start}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		if cfg.MaxPages > 0 && res.Visited >= cfg.MaxPages {
			break
		}
		url := queue[0]
		queue = queue[1:]
		html, failure := st.fetchOne(url)
		res.Retries = st.retries
		if failure != nil {
			res.Failed = append(res.Failed, *failure)
			continue
		}
		res.Visited++
		doc := htmldom.Parse(html)
		switch Classify(doc, cfg) {
		case KindContent:
			res.Content = append(res.Content, CrawledPage{URL: url, HTML: html})
		case KindIndex:
			res.Index = append(res.Index, url)
		case KindMedia:
			res.Media = append(res.Media, url)
		}
		for _, link := range ExtractLinks(doc, url) {
			if !visited[link] {
				visited[link] = true
				queue = append(queue, link)
			}
		}
	}
	return res, nil
}

// ContentURLs returns the kept content URLs sorted, for set comparison in
// tests and pipelines.
func (r *Result) ContentURLs() []string {
	out := make([]string, len(r.Content))
	for i, p := range r.Content {
		out[i] = p.URL
	}
	sort.Strings(out)
	return out
}

// FailedURLs returns the unreachable URLs sorted, for set comparison.
func (r *Result) FailedURLs() []string {
	out := make([]string, len(r.Failed))
	for i, f := range r.Failed {
		out[i] = f.URL
	}
	sort.Strings(out)
	return out
}
