package crawler

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/url"
	"strings"
	"time"
	"unicode/utf8"
)

// ContextFetcher is the deadline-aware fetch contract. Fetchers that
// implement it (fault.Fetcher, an http wrapper) get a per-fetch
// context.WithTimeout deadline from Config.FetchTimeout; plain Fetchers
// are called without one.
type ContextFetcher interface {
	FetchContext(ctx context.Context, url string) (string, error)
}

// Permanent wraps err to mark it non-retryable: the crawler records the
// failure immediately instead of burning retry attempts (404s, parse-level
// rejections). Transient errors — timeouts, connection resets, injected
// chaos — stay retryable by default.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Failure records one URL the crawl could not fetch, with the reason the
// final attempt gave and how many attempts were spent. Attempts is 0 when
// the URL was never tried at all (circuit breaker open).
type Failure struct {
	URL      string
	Reason   string
	Attempts int
}

// String renders the failure for logs.
func (f Failure) String() string {
	return fmt.Sprintf("%s (%d attempts): %s", f.URL, f.Attempts, f.Reason)
}

// validateBody rejects fetched bodies that cannot be real HTML — the
// garbage-body fault mode, or a truncated/corrupted transfer. Rejection is
// transient: the next attempt may deliver the page intact.
func validateBody(html string) error {
	switch {
	case html == "":
		return errors.New("empty body")
	case strings.ContainsRune(html, 0):
		return errors.New("garbage body: contains NUL byte")
	case !utf8.ValidString(html):
		return errors.New("garbage body: invalid UTF-8")
	}
	return nil
}

// hostOf extracts the rate-limit/breaker key for a URL: the host for
// absolute URLs, "" (one shared bucket — path-only crawls are single-site
// by construction) otherwise.
func hostOf(raw string) string {
	if u, err := url.Parse(raw); err == nil && u.Host != "" {
		return u.Host
	}
	return ""
}

// tokenBucket is a per-host rate limiter: capacity burst, refill rate
// tokens/second. The crawl loop is sequential, so no locking.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// wait blocks (via the crawl's sleep seam) until one token is available,
// then consumes it.
func (b *tokenBucket) wait(now func() time.Time, sleep func(time.Duration)) {
	t := now()
	if !b.last.IsZero() {
		b.tokens += t.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
	if b.tokens < 1 {
		need := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		sleep(need)
		t = now()
		b.tokens += t.Sub(b.last).Seconds() * b.rate
		b.last = t
		if b.tokens < 1 {
			// A sleep seam that under-advances must not stall the crawl.
			b.tokens = 1
		}
	}
	b.tokens--
}

// Breaker states, exported for tests and metrics.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// hostBreaker is a per-host circuit breaker. It counts consecutive
// *exhausted* fetches (a URL that failed all its retry attempts), not
// individual attempt errors — a 30%-fault host with working retries never
// trips it, a dead host trips it after Threshold URLs and fails the rest
// fast until a cooldown probe succeeds.
type hostBreaker struct {
	threshold   int
	cooldown    time.Duration
	state       int
	consecutive int
	openedAt    time.Time
}

// allow reports whether a fetch may proceed. An open breaker lets one
// probe fetch through (half-open) once the cooldown has passed.
func (b *hostBreaker) allow(now time.Time) bool {
	if b.state != breakerOpen {
		return true
	}
	if now.Sub(b.openedAt) >= b.cooldown {
		b.state = breakerHalfOpen
		return true
	}
	return false
}

// success closes the breaker and resets the consecutive-failure count.
func (b *hostBreaker) success() {
	b.state = breakerClosed
	b.consecutive = 0
}

// fail records an exhausted fetch; a half-open probe failure or Threshold
// consecutive failures (re)open the breaker.
func (b *hostBreaker) fail(now time.Time) {
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}

// crawlState is the per-Crawl resilience machinery.
type crawlState struct {
	cfg   Config
	f     Fetcher
	cf    ContextFetcher // non-nil when f supports deadlines
	rng   *rand.Rand     // backoff jitter; seeded, so replays are exact
	now   func() time.Time
	sleep func(time.Duration)

	buckets  map[string]*tokenBucket
	breakers map[string]*hostBreaker
	retries  int // extra attempts spent across the whole crawl
}

func newCrawlState(f Fetcher, cfg Config) *crawlState {
	s := &crawlState{
		cfg:      cfg,
		f:        f,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		now:      cfg.Now,
		sleep:    cfg.Sleep,
		buckets:  map[string]*tokenBucket{},
		breakers: map[string]*hostBreaker{},
	}
	if cf, ok := f.(ContextFetcher); ok {
		s.cf = cf
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.sleep == nil {
		s.sleep = time.Sleep
	}
	return s
}

// breaker returns host's circuit breaker, or nil when breaking is disabled.
func (s *crawlState) breaker(host string) *hostBreaker {
	if s.cfg.BreakerThreshold <= 0 {
		return nil
	}
	b := s.breakers[host]
	if b == nil {
		cooldown := s.cfg.BreakerCooldown
		if cooldown <= 0 {
			cooldown = 500 * time.Millisecond
		}
		b = &hostBreaker{threshold: s.cfg.BreakerThreshold, cooldown: cooldown}
		s.breakers[host] = b
	}
	return b
}

// limit blocks until host's token bucket grants one fetch.
func (s *crawlState) limit(host string) {
	if s.cfg.HostRPS <= 0 {
		return
	}
	b := s.buckets[host]
	if b == nil {
		burst := float64(s.cfg.HostBurst)
		if burst < 1 {
			burst = 1
		}
		b = &tokenBucket{rate: s.cfg.HostRPS, burst: burst, tokens: burst}
		s.buckets[host] = b
	}
	b.wait(s.now, s.sleep)
}

// backoff returns the capped-jitter exponential delay before retry attempt
// n (1-based): base·2ⁿ⁻¹ capped at BackoffMax, then equal-jitter — half
// fixed, half drawn from the seeded RNG — so synchronized retries spread
// out but never exceed the cap.
func (s *crawlState) backoff(n int) time.Duration {
	base := s.cfg.BackoffBase
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := s.cfg.BackoffMax
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << (n - 1)
	if d > max || d <= 0 { // <=0: shift overflow
		d = max
	}
	half := d / 2
	return half + time.Duration(s.rng.Float64()*float64(half))
}

// doFetch runs one attempt, with a deadline when the fetcher supports it.
func (s *crawlState) doFetch(url string) (string, error) {
	if s.cf != nil {
		ctx := context.Background()
		if s.cfg.FetchTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.FetchTimeout)
			defer cancel()
		}
		return s.cf.FetchContext(ctx, url)
	}
	return s.f.Fetch(url)
}

// fetchOne fetches url with the full resilience stack: breaker check, rate
// limit, retry loop with capped-jitter backoff, body validation. On
// failure it returns the Failure to record; the crawl always continues.
func (s *crawlState) fetchOne(url string) (string, *Failure) {
	host := hostOf(url)
	br := s.breaker(host)
	if br != nil && !br.allow(s.now()) {
		return "", &Failure{
			URL:    url,
			Reason: fmt.Sprintf("circuit breaker open for host %q (%d consecutive failures)", host, br.consecutive),
		}
	}
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= s.cfg.Retries; attempt++ {
		if attempt > 0 {
			s.sleep(s.backoff(attempt))
			s.retries++
		}
		s.limit(host)
		attempts++
		html, err := s.doFetch(url)
		if err == nil {
			err = validateBody(html)
			if err == nil {
				if br != nil {
					br.success()
				}
				return html, nil
			}
		}
		lastErr = err
		if IsPermanent(err) {
			break
		}
	}
	if br != nil {
		br.fail(s.now())
	}
	return "", &Failure{URL: url, Reason: lastErr.Error(), Attempts: attempts}
}
