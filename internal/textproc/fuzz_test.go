package textproc

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzNormalize checks the normaliser's invariants on arbitrary input:
// no empty tokens, everything lowercase or a special/punctuation token,
// digit runs always collapsed to <digit>. Lowercase means "as far as
// Unicode allows": a few Lu runes (ϔ, ℂ, ℝ, …) have no lowercase
// mapping and no case-fold equivalent, and pass through unchanged —
// the invariant is that no rune unicode.ToLower can change survives.
func FuzzNormalize(f *testing.F) {
	for _, seed := range []string{
		"Plain words here", "$40.13!", "MIXED case AND 123 numbers",
		"b2b 42nd a1", "...", "", "   ", "日本語テスト", "a\tb\nc",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Normalize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok == DigitToken {
				continue
			}
			for _, r := range tok {
				if unicode.IsUpper(r) && unicode.ToLower(r) != r {
					t.Fatalf("uppercase survived: %q", tok)
				}
				if unicode.IsDigit(r) {
					t.Fatalf("raw digit survived: %q", tok)
				}
				if unicode.IsSpace(r) {
					t.Fatalf("whitespace inside token: %q", tok)
				}
			}
		}
	})
}

// FuzzWordPiece checks tokenisation invariants: spans tile the piece
// sequence exactly, and in-vocabulary decompositions detokenise back to the
// input word.
func FuzzWordPiece(f *testing.F) {
	wp := LearnWordPiece(map[string]int{
		"book": 50, "books": 30, "shop": 40, "shopping": 25, "the": 100,
	}, 200)
	for _, seed := range []string{"book", "bookshop", "unknownword", "th", "s"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, w string) {
		if strings.ContainsAny(w, " \t\n") || w == "" {
			t.Skip()
		}
		// A word containing the continuation marker is outside the
		// round-trip domain: Detokenize must read "##" as glue.
		if strings.Contains(w, ContinuationPrefix) {
			t.Skip()
		}
		pieces, spans := wp.Tokenize([]string{w})
		if len(spans) != 1 || spans[0][0] != 0 || spans[0][1] != len(pieces) {
			t.Fatalf("span does not tile pieces: %v over %d", spans, len(pieces))
		}
		if len(pieces) == 1 && pieces[0] == UnkToken {
			return
		}
		if got := Detokenize(pieces); got != w {
			t.Fatalf("round trip: %q -> %v -> %q", w, pieces, got)
		}
	})
}
