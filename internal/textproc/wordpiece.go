package textproc

import (
	"sort"
	"strings"
)

// WordPiece is a subword tokenizer in the style of BERT's: words are split
// by greedy longest-match-first lookup against a subword vocabulary, with
// continuation pieces marked by a "##" prefix and unmatchable words mapped
// to [UNK].
//
// The subword vocabulary is learned from corpus word counts with BPE-style
// frequency merges — the standard open-source stand-in for Google's
// likelihood-based WordPiece trainer; inference (the part models depend on)
// is the exact WordPiece algorithm.
type WordPiece struct {
	vocab    *Vocab
	maxChars int
}

// ContinuationPrefix marks non-initial subword pieces.
const ContinuationPrefix = "##"

// LearnWordPiece builds a subword vocabulary from word frequency counts,
// targeting at most maxSize entries (including specials and single
// characters). Words passed through Normalize first tokenize cleanly.
func LearnWordPiece(counts map[string]int, maxSize int) *WordPiece {
	// Represent each word as a sequence of pieces, initially characters
	// (first piece bare, rest ##-prefixed).
	type word struct {
		pieces []string
		count  int
	}
	var words []word
	for w, c := range counts {
		if w == "" {
			continue
		}
		runes := []rune(w)
		pieces := make([]string, len(runes))
		for i, r := range runes {
			if i == 0 {
				pieces[i] = string(r)
			} else {
				pieces[i] = ContinuationPrefix + string(r)
			}
		}
		words = append(words, word{pieces, c})
	}
	// Deterministic iteration order.
	sort.Slice(words, func(i, j int) bool {
		return strings.Join(words[i].pieces, "") < strings.Join(words[j].pieces, "")
	})

	vocab := NewVocab()
	addPiece := func(p string) { vocab.Add(p) }
	for _, w := range words {
		for _, p := range w.pieces {
			addPiece(p)
		}
	}

	// Greedy merges until the size budget is reached or no pair repeats.
	for vocab.Size() < maxSize {
		pairCount := make(map[[2]string]int)
		for _, w := range words {
			for i := 0; i+1 < len(w.pieces); i++ {
				pairCount[[2]string{w.pieces[i], w.pieces[i+1]}] += w.count
			}
		}
		var best [2]string
		bestC := 1 // require count >= 2 to merge
		for p, c := range pairCount {
			if c > bestC || (c == bestC && better(p, best)) {
				best, bestC = p, c
			}
		}
		if bestC < 2 {
			break
		}
		merged := best[0] + strings.TrimPrefix(best[1], ContinuationPrefix)
		addPiece(merged)
		for wi := range words {
			w := &words[wi]
			var out []string
			for i := 0; i < len(w.pieces); i++ {
				if i+1 < len(w.pieces) && w.pieces[i] == best[0] && w.pieces[i+1] == best[1] {
					out = append(out, merged)
					i++
				} else {
					out = append(out, w.pieces[i])
				}
			}
			w.pieces = out
		}
	}
	return &WordPiece{vocab: vocab, maxChars: 100}
}

// better orders pairs deterministically for tie-breaking.
func better(a, b [2]string) bool {
	if b[0] == "" && b[1] == "" {
		return true
	}
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// WordPieceFromVocab wraps an existing subword vocabulary (used by tests and
// model serialization).
func WordPieceFromVocab(v *Vocab) *WordPiece {
	return &WordPiece{vocab: v, maxChars: 100}
}

// Vocab returns the underlying subword vocabulary.
func (wp *WordPiece) Vocab() *Vocab { return wp.vocab }

// TokenizeWord splits a single word into subword pieces by greedy longest
// match. Special tokens pass through unchanged. If no prefix matches, the
// whole word becomes [UNK], exactly as in BERT.
func (wp *WordPiece) TokenizeWord(w string) []string {
	if w == "" {
		return nil
	}
	if wp.vocab.Has(w) || strings.HasPrefix(w, "[") {
		return []string{w}
	}
	runes := []rune(w)
	if len(runes) > wp.maxChars {
		return []string{UnkToken}
	}
	var pieces []string
	start := 0
	for start < len(runes) {
		end := len(runes)
		var piece string
		found := false
		for end > start {
			cand := string(runes[start:end])
			if start > 0 {
				cand = ContinuationPrefix + cand
			}
			if wp.vocab.Has(cand) {
				piece = cand
				found = true
				break
			}
			end--
		}
		if !found {
			return []string{UnkToken}
		}
		pieces = append(pieces, piece)
		start = end
	}
	return pieces
}

// Tokenize maps word-level tokens to subword pieces. WordSpans returns, for
// each input word, the [start, end) range of its pieces in the output —
// needed to project word-level attribute span labels onto subword positions.
func (wp *WordPiece) Tokenize(words []string) (pieces []string, wordSpans [][2]int) {
	for _, w := range words {
		start := len(pieces)
		pieces = append(pieces, wp.TokenizeWord(w)...)
		wordSpans = append(wordSpans, [2]int{start, len(pieces)})
	}
	return pieces, wordSpans
}

// Detokenize reassembles words from subword pieces by stripping continuation
// prefixes; it is the inverse of TokenizeWord for in-vocabulary words.
func Detokenize(pieces []string) string {
	var b strings.Builder
	for i, p := range pieces {
		if cont := strings.TrimPrefix(p, ContinuationPrefix); cont != p {
			b.WriteString(cont)
			continue
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p)
	}
	return b.String()
}
