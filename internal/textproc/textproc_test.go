package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestVocabSpecialsFixed(t *testing.T) {
	v := NewVocab()
	if v.ID(PadToken) != PadID || v.ID(UnkToken) != UnkID || v.ID(ClsToken) != ClsID {
		t.Fatal("special ids not fixed")
	}
	if v.ID(DigitToken) != DigitID || v.ID(MaskToken) != MaskID {
		t.Fatal("special ids not fixed")
	}
	if v.Size() != numSpecials {
		t.Fatalf("fresh vocab size %d", v.Size())
	}
}

func TestVocabAddIdempotent(t *testing.T) {
	v := NewVocab()
	a := v.Add("hello")
	b := v.Add("hello")
	if a != b {
		t.Fatal("Add not idempotent")
	}
	if v.Token(a) != "hello" {
		t.Fatal("Token roundtrip")
	}
	if v.ID("missing") != UnkID {
		t.Fatal("unknown should map to UNK")
	}
}

func TestVocabIDsTokensRoundtrip(t *testing.T) {
	v := NewVocab()
	v.Add("a")
	v.Add("b")
	toks := []string{"a", "b", "a"}
	ids := v.IDs(toks)
	if !reflect.DeepEqual(v.Tokens(ids), toks) {
		t.Fatal("roundtrip failed")
	}
}

func TestBuildVocabFrequencyOrderDeterministic(t *testing.T) {
	counts := map[string]int{"common": 10, "rare": 1, "mid": 5, "tie1": 5}
	v := BuildVocab(counts, 2)
	if v.Has("rare") {
		t.Fatal("minCount not applied")
	}
	if v.ID("common") != numSpecials {
		t.Fatalf("most frequent should come first, got id %d", v.ID("common"))
	}
	// Ties broken lexicographically: "mid" < "tie1".
	if v.ID("mid") > v.ID("tie1") {
		t.Fatal("tie-break not lexicographic")
	}
	v2 := BuildVocab(counts, 2)
	if v.ID("tie1") != v2.ID("tie1") {
		t.Fatal("BuildVocab not deterministic")
	}
}

func TestNormalizeLowercaseAndDigits(t *testing.T) {
	got := Normalize("Visit BookShop: $40.13 today!")
	want := []string{"visit", "bookshop", ":", "$", DigitToken, ".", DigitToken, "today", "!"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize: %v want %v", got, want)
	}
}

func TestNormalizeLetterDigitBoundary(t *testing.T) {
	got := Normalize("room b2b 42nd")
	want := []string{"room", "b", DigitToken, "b", DigitToken, "nd"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize: %v", got)
	}
}

func TestNormalizeEmptyAndWhitespace(t *testing.T) {
	if got := Normalize("   "); len(got) != 0 {
		t.Fatalf("whitespace: %v", got)
	}
	if got := Normalize(""); len(got) != 0 {
		t.Fatalf("empty: %v", got)
	}
}

func TestNormalizeNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Normalize(s)
		for _, tok := range toks {
			if tok == "" {
				return false
			}
			if tok != DigitToken && tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSentences(t *testing.T) {
	toks := []string{"hello", "world", ".", "next", "one", "!", "trailing"}
	sents := SplitSentences(toks)
	if len(sents) != 3 {
		t.Fatalf("sentences: %v", sents)
	}
	if sents[0][2] != "." || sents[1][2] != "!" {
		t.Fatal("punctuation should stay with its sentence")
	}
	if len(sents[2]) != 1 || sents[2][0] != "trailing" {
		t.Fatal("trailing fragment lost")
	}
}

func TestNormalizeDocument(t *testing.T) {
	sents := NormalizeDocument([]string{"Home | Books", "Price: $5. In stock."})
	if len(sents) != 3 {
		t.Fatalf("got %d sentences: %v", len(sents), sents)
	}
}

func TestInsertCLS(t *testing.T) {
	flat, idx := InsertCLS([][]string{{"a", "b"}, {"c"}})
	want := []string{ClsToken, "a", "b", ClsToken, "c"}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("flat: %v", flat)
	}
	if !reflect.DeepEqual(idx, []int{0, 3}) {
		t.Fatalf("cls indices: %v", idx)
	}
}

func TestSegmentIDsAlternate(t *testing.T) {
	segs := SegmentIDs([][]string{{"a", "b"}, {"c"}, {"d"}})
	want := []int{0, 0, 0, 1, 1, 0, 0} // each sentence contributes len+1 slots
	if !reflect.DeepEqual(segs, want) {
		t.Fatalf("segments: %v", segs)
	}
	flat, _ := InsertCLS([][]string{{"a", "b"}, {"c"}, {"d"}})
	if len(flat) != len(segs) {
		t.Fatal("segment length must match CLS-inserted sequence")
	}
}

func TestTruncate(t *testing.T) {
	toks := []string{"a", "b", "c"}
	if got := Truncate(toks, 2); len(got) != 2 {
		t.Fatal("truncate")
	}
	if got := Truncate(toks, 0); len(got) != 3 {
		t.Fatal("0 means no limit")
	}
	if got := Truncate(toks, 10); len(got) != 3 {
		t.Fatal("no-op truncate")
	}
}

func buildTestWP() *WordPiece {
	counts := map[string]int{
		"book": 50, "books": 30, "booking": 20, "shop": 40, "shopping": 25,
		"deep": 15, "learning": 15, "the": 100, "a": 80,
	}
	return LearnWordPiece(counts, 200)
}

func TestWordPieceInVocabWordsSingle(t *testing.T) {
	wp := buildTestWP()
	for _, w := range []string{"book", "shop", "the"} {
		got := wp.TokenizeWord(w)
		if len(got) != 1 || got[0] != w {
			t.Errorf("TokenizeWord(%q) = %v, want single piece", w, got)
		}
	}
}

func TestWordPieceSubwordSplit(t *testing.T) {
	wp := buildTestWP()
	// "bookshop" is unseen but decomposable into learned pieces.
	pieces := wp.TokenizeWord("bookshop")
	if pieces[0] == UnkToken {
		t.Fatalf("decomposable word went to UNK: %v", pieces)
	}
	if Detokenize(pieces) != "bookshop" {
		t.Fatalf("detokenize: %v -> %q", pieces, Detokenize(pieces))
	}
	// Continuation pieces must carry the ## prefix.
	for _, p := range pieces[1:] {
		if !strings.HasPrefix(p, ContinuationPrefix) {
			t.Fatalf("continuation piece %q lacks prefix", p)
		}
	}
}

func TestWordPieceUnknownCharacters(t *testing.T) {
	wp := buildTestWP()
	got := wp.TokenizeWord("日本語")
	if len(got) != 1 || got[0] != UnkToken {
		t.Fatalf("unseen script should be UNK: %v", got)
	}
}

func TestWordPieceSpecialsPassThrough(t *testing.T) {
	wp := buildTestWP()
	got := wp.TokenizeWord(ClsToken)
	if len(got) != 1 || got[0] != ClsToken {
		t.Fatalf("special token mangled: %v", got)
	}
}

func TestWordPieceTokenizeSpans(t *testing.T) {
	wp := buildTestWP()
	pieces, spans := wp.Tokenize([]string{"the", "bookshop", "a"})
	if len(spans) != 3 {
		t.Fatalf("spans: %v", spans)
	}
	if spans[0] != [2]int{0, 1} {
		t.Fatalf("span 0: %v", spans[0])
	}
	if spans[1][0] != 1 || spans[1][1] <= spans[1][0] {
		t.Fatalf("span 1: %v", spans[1])
	}
	if spans[2][1] != len(pieces) {
		t.Fatalf("span end mismatch: %v vs %d pieces", spans, len(pieces))
	}
}

// Property: any word made of characters seen in training round-trips
// through tokenize+detokenize.
func TestWordPieceRoundTripProperty(t *testing.T) {
	wp := buildTestWP()
	letters := []rune("abcdeghiklmnoprst")
	f := func(seed uint8, length uint8) bool {
		n := int(length)%8 + 1
		runes := make([]rune, n)
		x := int(seed)
		for i := range runes {
			x = (x*31 + 7) % len(letters)
			runes[i] = letters[x]
		}
		w := string(runes)
		pieces := wp.TokenizeWord(w)
		if len(pieces) == 1 && pieces[0] == UnkToken {
			return true // acceptable: not all chars merge
		}
		return Detokenize(pieces) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLearnWordPieceDeterministic(t *testing.T) {
	counts := map[string]int{"alpha": 5, "alps": 5, "beta": 3, "bet": 3}
	a := LearnWordPiece(counts, 100)
	b := LearnWordPiece(counts, 100)
	if a.Vocab().Size() != b.Vocab().Size() {
		t.Fatal("non-deterministic vocab size")
	}
	for i := 0; i < a.Vocab().Size(); i++ {
		if a.Vocab().Token(i) != b.Vocab().Token(i) {
			t.Fatalf("non-deterministic vocab at %d: %q vs %q", i, a.Vocab().Token(i), b.Vocab().Token(i))
		}
	}
}

func TestLearnWordPieceRespectsBudget(t *testing.T) {
	counts := map[string]int{}
	words := []string{"aaa", "aab", "abb", "bbb", "aba", "bab"}
	for i, w := range words {
		counts[w] = 10 + i
	}
	wp := LearnWordPiece(counts, 12)
	if wp.Vocab().Size() > 13 { // budget may be exceeded by at most the final merge
		t.Fatalf("vocab size %d exceeds budget", wp.Vocab().Size())
	}
}

func TestDetokenize(t *testing.T) {
	got := Detokenize([]string{"book", "##shop", "online"})
	if got != "bookshop online" {
		t.Fatalf("Detokenize: %q", got)
	}
}

func BenchmarkNormalize(b *testing.B) {
	line := "An Introduction to Deep Learning by Eugene Charniak, Hardcover $40.13 Free Shipping!"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Normalize(line)
	}
}

func BenchmarkWordPieceTokenize(b *testing.B) {
	wp := buildTestWP()
	words := []string{"the", "bookshop", "shopping", "deep", "learning", "bookings"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wp.Tokenize(words)
	}
}

// Property: NormalizeDocument never yields empty sentences, and every token
// in the output came through Normalize (lowercase or special).
func TestNormalizeDocumentProperty(t *testing.T) {
	f := func(a, b string) bool {
		sents := NormalizeDocument([]string{a, b})
		for _, s := range sents {
			if len(s) == 0 {
				return false
			}
			for _, tok := range s {
				if tok == "" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSentencesDecimalNumbers(t *testing.T) {
	// "$ 40.13" normalises with an inner "." that must NOT split.
	toks := Normalize("the price is $40.13 today. next sentence")
	sents := SplitSentences(toks)
	if len(sents) != 2 {
		t.Fatalf("decimal point split a sentence: %v", sents)
	}
	joined := strings.Join(sents[0], " ")
	if !strings.Contains(joined, DigitToken+" . "+DigitToken) {
		t.Fatalf("decimal structure lost: %q", joined)
	}
}

func TestSplitSentencesTrailingDecimal(t *testing.T) {
	// A digit-terminated sentence: "costs 5." — terminal dot not between
	// digits, must split.
	toks := Normalize("costs 5. more text")
	sents := SplitSentences(toks)
	if len(sents) != 2 {
		t.Fatalf("terminal dot after digit must split: %v", sents)
	}
}
