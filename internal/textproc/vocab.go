// Package textproc implements the paper's text preprocessing pipeline
// (§IV-A3): lowercasing, digit replacement with a <digit> token, punctuation
// and newline preserved as single tokens, sentence splitting with a [CLS]
// token inserted at the start of each sentence, and a WordPiece subword
// tokenizer with a vocabulary learned from the corpus.
package textproc

import (
	"fmt"
	"sort"
)

// Special tokens. Their ids are fixed and allocated first so every model can
// rely on them.
const (
	PadToken   = "[PAD]"
	UnkToken   = "[UNK]"
	ClsToken   = "[CLS]"
	SepToken   = "[SEP]"
	BosToken   = "[BOS]"
	EosToken   = "[EOS]"
	MaskToken  = "[MASK]"
	DigitToken = "<digit>"
	NLToken    = "<nl>"
)

// Fixed ids of the special tokens.
const (
	PadID = iota
	UnkID
	ClsID
	SepID
	BosID
	EosID
	MaskID
	DigitID
	NLID
	numSpecials
)

// specials in id order.
var specials = []string{
	PadToken, UnkToken, ClsToken, SepToken, BosToken, EosToken,
	MaskToken, DigitToken, NLToken,
}

// Vocab is a bidirectional token↔id mapping with the special tokens
// pre-allocated at fixed ids.
type Vocab struct {
	idOf   map[string]int
	tokens []string
}

// NewVocab returns a vocabulary containing only the special tokens.
func NewVocab() *Vocab {
	v := &Vocab{idOf: make(map[string]int, 64)}
	for _, s := range specials {
		v.Add(s)
	}
	return v
}

// Add inserts tok if absent and returns its id.
func (v *Vocab) Add(tok string) int {
	if id, ok := v.idOf[tok]; ok {
		return id
	}
	id := len(v.tokens)
	v.idOf[tok] = id
	v.tokens = append(v.tokens, tok)
	return id
}

// ID returns the id of tok, or UnkID if it is not in the vocabulary.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.idOf[tok]; ok {
		return id
	}
	return UnkID
}

// Has reports whether tok is in the vocabulary.
func (v *Vocab) Has(tok string) bool {
	_, ok := v.idOf[tok]
	return ok
}

// Token returns the token string for id; it panics on out-of-range ids
// because those are always caller bugs.
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.tokens) {
		panic(fmt.Sprintf("textproc: token id %d out of range [0,%d)", id, len(v.tokens)))
	}
	return v.tokens[id]
}

// Size returns the number of tokens including specials.
func (v *Vocab) Size() int { return len(v.tokens) }

// IDs maps a token slice to ids (unknown → UnkID).
func (v *Vocab) IDs(toks []string) []int {
	out := make([]int, len(toks))
	for i, tok := range toks {
		out[i] = v.ID(tok)
	}
	return out
}

// Tokens maps an id slice back to token strings.
func (v *Vocab) Tokens(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.Token(id)
	}
	return out
}

// BuildVocab returns a vocabulary of the words occurring at least minCount
// times in counts, added in descending frequency (ties broken
// lexicographically) so ids are deterministic.
func BuildVocab(counts map[string]int, minCount int) *Vocab {
	v := NewVocab()
	type wc struct {
		w string
		c int
	}
	var ws []wc
	for w, c := range counts {
		if c >= minCount {
			ws = append(ws, wc{w, c})
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].c != ws[j].c {
			return ws[i].c > ws[j].c
		}
		return ws[i].w < ws[j].w
	})
	for _, x := range ws {
		v.Add(x.w)
	}
	return v
}
