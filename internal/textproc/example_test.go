package textproc_test

import (
	"fmt"
	"strings"

	"webbrief/internal/textproc"
)

// ExampleNormalize shows the paper's §IV-A3 preprocessing: lowercase, digit
// runs replaced by <digit>, punctuation split into single tokens.
func ExampleNormalize() {
	fmt.Println(strings.Join(textproc.Normalize("Price: $40.13 (Hardcover)!"), " "))
	// Output:
	// price : $ <digit> . <digit> ( hardcover ) !
}

// ExampleSplitSentences shows sentence splitting with the decimal-point
// exception: the "." inside a price never ends a sentence.
func ExampleSplitSentences() {
	toks := textproc.Normalize("It costs $40.13 today. Order now!")
	for _, sent := range textproc.SplitSentences(toks) {
		fmt.Println(strings.Join(sent, " "))
	}
	// Output:
	// it costs $ <digit> . <digit> today .
	// order now !
}

// ExampleWordPiece_TokenizeWord shows greedy longest-match subword
// splitting with ## continuation marks.
func ExampleWordPiece_TokenizeWord() {
	wp := textproc.LearnWordPiece(map[string]int{
		"book": 50, "books": 30, "shop": 40, "shopping": 25,
	}, 200)
	fmt.Println(strings.Join(wp.TokenizeWord("bookshop"), " "))
	// Output:
	// books ##hop
}
