package textproc

import (
	"strings"
	"unicode"
)

// isDigits reports whether s consists solely of decimal digits in any
// script (the same unicode.IsDigit notion the tokenizer splits on, so a
// digit run always collapses to <digit> regardless of script).
func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// Normalize converts one line of visible text into word-level tokens per the
// paper's preprocessing: lowercase everything, replace digit runs with
// <digit>, and keep each punctuation mark as its own single token. A number
// like "40.13" therefore becomes ["<digit>", ".", "<digit>"], and "$40" is
// ["$", "<digit>"].
func Normalize(line string) []string {
	line = strings.ToLower(line)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		w := cur.String()
		cur.Reset()
		if isDigits(w) {
			toks = append(toks, DigitToken)
		} else {
			toks = append(toks, w)
		}
	}
	for _, r := range line {
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			// Split at letter↔digit boundaries so "b2b" → "b", <digit>, "b"
			// keeps digits isolated as the paper requires.
			if cur.Len() > 0 {
				prev := cur.String()
				prevDigit := isDigits(prev)
				curDigit := unicode.IsDigit(r)
				if prevDigit != curDigit {
					flush()
				}
			}
			cur.WriteRune(r)
		default:
			// Punctuation and symbols are single tokens.
			flush()
			toks = append(toks, string(r))
		}
	}
	flush()
	return toks
}

// sentenceEnders terminate a sentence when followed by space or end of line.
var sentenceEnders = map[string]bool{".": true, "!": true, "?": true}

// SplitSentences splits a token stream into sentences at sentence-final
// punctuation; the punctuation token stays with its sentence. Lines with no
// terminal punctuation form a single sentence, which is how boilerplate
// fragments like navigation labels behave. A "." between two <digit> tokens
// is a decimal point (e.g. the price "$40.13" normalises to
// ["$", "<digit>", ".", "<digit>"]) and never ends a sentence.
func SplitSentences(toks []string) [][]string {
	var out [][]string
	var cur []string
	for i, tok := range toks {
		cur = append(cur, tok)
		if !sentenceEnders[tok] {
			continue
		}
		if tok == "." && i > 0 && i+1 < len(toks) && toks[i-1] == DigitToken && toks[i+1] == DigitToken {
			continue
		}
		out = append(out, cur)
		cur = nil
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// NormalizeDocument converts the block-level lines of a rendered page into
// sentences of word tokens, treating each line break as a sentence boundary
// (the rendered newline is a structural separator on webpages).
func NormalizeDocument(lines []string) [][]string {
	var sents [][]string
	for _, line := range lines {
		toks := Normalize(line)
		if len(toks) == 0 {
			continue
		}
		sents = append(sents, SplitSentences(toks)...)
	}
	return sents
}

// InsertCLS prepends the [CLS] token to every sentence and returns the flat
// token sequence together with the index of each [CLS], the document
// representation of §III-C (one [CLS] per sentence collects its latent
// summarising features).
func InsertCLS(sents [][]string) (flat []string, clsIdx []int) {
	for _, s := range sents {
		clsIdx = append(clsIdx, len(flat))
		flat = append(flat, ClsToken)
		flat = append(flat, s...)
	}
	return flat, clsIdx
}

// SegmentIDs returns BERTSUM's alternating interval segment ids: tokens of
// even-numbered sentences get segment 0, odd-numbered get segment 1.
func SegmentIDs(sents [][]string) []int {
	var segs []int
	for i, s := range sents {
		seg := i % 2
		for n := len(s) + 1; n > 0; n-- { // +1 for the [CLS] slot
			segs = append(segs, seg)
		}
	}
	return segs
}

// Truncate limits a flat token sequence to maxLen tokens, never splitting
// below one token.
func Truncate(toks []string, maxLen int) []string {
	if maxLen > 0 && len(toks) > maxLen {
		return toks[:maxLen]
	}
	return toks
}
