// Package wb implements the paper's core contribution: the webpage-briefing
// task and the Joint-WB model (§III-C) — a key attribute extractor E, a
// topic generator G and an informative section predictor P trained jointly
// with signal enhancement and exchange mechanisms — plus the pluggable
// document encoders (GloVe / MiniBERT / MiniBERTSUM) that all models and
// baselines share, and the hierarchical briefing output (Fig. 1).
package wb

import (
	"webbrief/internal/corpus"
	"webbrief/internal/textproc"
)

// Instance is one page in model-input form: the flattened token-id stream
// with per-sentence [CLS] markers and all supervision targets.
type Instance struct {
	Page     *corpus.Page
	IDs      []int // token ids including [CLS] positions
	Segments []int // BERTSUM interval segment ids
	ClsIdx   []int // index of each sentence's [CLS]
	SentOf   []int // sentence index of each token
	Tags     []int // gold BIO tags per token
	SentInfo []int // gold informative flag per sentence
	TopicIn  []int // decoder input: BOS + topic ids
	TopicOut []int // decoder target: topic ids + EOS
	Topic    []string
}

// NewInstance encodes a page against a vocabulary. maxTokens>0 truncates
// long documents (the paper splits 2048-token pages into 512-token
// sub-documents; truncation is the label-visible part of that step).
func NewInstance(p *corpus.Page, v *textproc.Vocab, maxTokens int) *Instance {
	e := p.Encode(maxTokens)
	inst := &Instance{
		Page:     p,
		IDs:      v.IDs(e.Words),
		Segments: e.Segments,
		ClsIdx:   e.ClsIdx,
		SentOf:   e.SentOf,
		Tags:     e.Tags,
		SentInfo: e.SentInfo,
		Topic:    p.Topic,
	}
	topicIDs := v.IDs(p.Topic)
	inst.TopicIn = append([]int{textproc.BosID}, topicIDs...)
	inst.TopicOut = append(append([]int{}, topicIDs...), textproc.EosID)
	return inst
}

// NewInstances encodes a batch of pages.
func NewInstances(pages []*corpus.Page, v *textproc.Vocab, maxTokens int) []*Instance {
	out := make([]*Instance, len(pages))
	for i, p := range pages {
		out[i] = NewInstance(p, v, maxTokens)
	}
	return out
}

// InstanceFromSentences builds an UNLABELLED inference instance from
// pre-normalised sentences — the path external pages take through
// cmd/wbrief. Supervision fields hold placeholder values and must not be
// used for training or scoring.
func InstanceFromSentences(sents [][]string, v *textproc.Vocab, maxTokens int) *Instance {
	inst := &Instance{
		TopicIn:  []int{textproc.BosID},
		TopicOut: []int{textproc.EosID},
	}
	for si, sent := range sents {
		inst.ClsIdx = append(inst.ClsIdx, len(inst.IDs))
		inst.IDs = append(inst.IDs, textproc.ClsID)
		inst.Tags = append(inst.Tags, corpus.TagO)
		inst.SentOf = append(inst.SentOf, si)
		inst.Segments = append(inst.Segments, si%2)
		for _, tok := range sent {
			inst.IDs = append(inst.IDs, v.ID(tok))
			inst.Tags = append(inst.Tags, corpus.TagO)
			inst.SentOf = append(inst.SentOf, si)
			inst.Segments = append(inst.Segments, si%2)
		}
		inst.SentInfo = append(inst.SentInfo, 0)
	}
	if maxTokens > 0 && len(inst.IDs) > maxTokens {
		inst.IDs = inst.IDs[:maxTokens]
		inst.Tags = inst.Tags[:maxTokens]
		inst.SentOf = inst.SentOf[:maxTokens]
		inst.Segments = inst.Segments[:maxTokens]
		last := inst.SentOf[len(inst.SentOf)-1]
		var cls []int
		for _, c := range inst.ClsIdx {
			if c < maxTokens {
				cls = append(cls, c)
			}
		}
		inst.ClsIdx = cls
		inst.SentInfo = inst.SentInfo[:last+1]
	}
	return inst
}

// InstanceFromHTML renders raw HTML through the full pipeline (DOM parse →
// visible lines → normalisation) and builds an unlabelled inference
// instance.
func InstanceFromHTML(html string, v *textproc.Vocab, maxTokens int) *Instance {
	sents := corpus.ReparseFromHTML(html)
	return InstanceFromSentences(sents, v, maxTokens)
}

// NumSents returns the number of sentences in the instance.
func (in *Instance) NumSents() int { return len(in.ClsIdx) }

// NumTokens returns the flattened token count.
func (in *Instance) NumTokens() int { return len(in.IDs) }
