package wb

import (
	"fmt"

	"webbrief/internal/textproc"
)

// CloneForServing deep-copies a trained GloVe-encoder Joint-WB model so the
// clone and the original can run eval-mode forwards concurrently without
// sharing any mutable state — the replica-construction primitive behind
// serve.Pool. The copy goes through the snapshot codec round-trip, so it is
// exactly the model a restart would load: float64 bit patterns are
// preserved, making the clone's briefings byte-identical to the original's.
//
// The embedding table — by far the largest parameter — is shared with the
// original rather than copied: eval-mode forwards only ever read parameter
// values (no dropout, no gradients), so concurrent replicas can safely
// alias it. Everything else (LSTMs, decoder, attention heads) is private to
// the clone.
//
// Clones are for inference only. Training a clone — or the original while
// clones are serving — writes the shared embedding and races; callers that
// need to retrain must build a fresh model and a fresh pool.
func CloneForServing(m *JointWB, v *textproc.Vocab) (*JointWB, error) {
	clones, err := CloneManyForServing(m, v, 1)
	if err != nil {
		return nil, err
	}
	return clones[0], nil
}

// CloneManyForServing builds n serving clones with one encode: the model
// is snapshotted once and decoded n times, instead of paying the encode
// per clone. This is the pool cold-boot path — for an n-replica pool it
// halves the serialisation work of n independent CloneForServing calls.
// Every clone shares the original's embedding table (see CloneForServing).
func CloneManyForServing(m *JointWB, v *textproc.Vocab, n int) ([]*JointWB, error) {
	if n < 1 {
		return nil, fmt.Errorf("wb: clone count %d", n)
	}
	data, err := EncodeSnapshot(m, v)
	if err != nil {
		return nil, fmt.Errorf("wb: clone: %w", err)
	}
	orig := m.Enc.(*GloVeEncoder) // EncodeSnapshot succeeded, so Enc is GloVe
	clones := make([]*JointWB, n)
	for i := range clones {
		clone, _, err := DecodeSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("wb: clone: %w", err)
		}
		clone.Enc.(*GloVeEncoder).Emb.Table.Value = orig.Emb.Table.Value
		clones[i] = clone
	}
	return clones, nil
}
