package wb

import (
	"bytes"
	"fmt"

	"webbrief/internal/textproc"
)

// CloneForServing deep-copies a trained GloVe-encoder Joint-WB model so the
// clone and the original can run eval-mode forwards concurrently without
// sharing any mutable state — the replica-construction primitive behind
// serve.Pool. The copy goes through the SaveJointWB/LoadJointWB round-trip,
// so it is exactly the model a restart would load: gob preserves float64
// bits, making the clone's briefings byte-identical to the original's.
//
// The embedding table — by far the largest parameter — is shared with the
// original rather than copied: eval-mode forwards only ever read parameter
// values (no dropout, no gradients), so concurrent replicas can safely
// alias it. Everything else (LSTMs, decoder, attention heads) is private to
// the clone.
//
// Clones are for inference only. Training a clone — or the original while
// clones are serving — writes the shared embedding and races; callers that
// need to retrain must build a fresh model and a fresh pool.
func CloneForServing(m *JointWB, v *textproc.Vocab) (*JointWB, error) {
	var buf bytes.Buffer
	if err := SaveJointWB(&buf, m, v); err != nil {
		return nil, fmt.Errorf("wb: clone: %w", err)
	}
	clone, _, err := LoadJointWB(&buf)
	if err != nil {
		return nil, fmt.Errorf("wb: clone: %w", err)
	}
	orig := m.Enc.(*GloVeEncoder) // SaveJointWB succeeded, so Enc is GloVe
	clone.Enc.(*GloVeEncoder).Emb.Table.Value = orig.Emb.Table.Value
	return clone, nil
}
