package wb

import (
	"fmt"
	"strings"

	"webbrief/internal/textproc"
)

// Brief is the hierarchical webpage-briefing output of Fig. 1: the broad
// topic at the top, followed by the extracted key attributes at the finer
// level. Reading it takes seconds instead of the minutes needed to skim the
// page — the task's motivation (§I).
type Brief struct {
	Topic      []string   // generated topic phrase
	Attributes [][]string // extracted key attribute values, document order
	Sections   []int      // predicted informative-section flags per sentence
}

// topicMaxLen bounds the decoded topic phrase length during briefing.
const topicMaxLen = 6

// MakeBrief runs a trained model on an instance and assembles the
// hierarchical briefing. Both stages share one pooled inference workspace;
// resident callers (serving replicas) should hold their own scratch and call
// MakeBriefWith instead.
func MakeBrief(m Model, inst *Instance, v *textproc.Vocab, beamWidth int) *Brief {
	s := GetScratch()
	defer PutScratch(s)
	return MakeBriefWith(m, inst, v, beamWidth, s)
}

// ExtractBrief runs one eval-mode forward pass and assembles the extractive
// half of the briefing: the key attribute spans and the informative-section
// flags. The topic is left empty; DecodeTopic fills it. The split exists so
// a serving layer can time (and deadline-check between) the encode and
// decode stages separately.
func ExtractBrief(m Model, inst *Instance, v *textproc.Vocab) *Brief {
	s := GetScratch()
	defer PutScratch(s)
	return ExtractBriefWith(m, inst, v, s)
}

// DecodeTopic generates the briefing's topic phrase with beam search
// (width ≤ 1 decodes greedily). It returns nil for models without a
// generator head.
func DecodeTopic(m Model, inst *Instance, v *textproc.Vocab, beamWidth int) []string {
	if ids := GenerateTopic(m, inst, beamWidth, topicMaxLen); ids != nil {
		return v.Tokens(ids)
	}
	return nil
}

// String renders the briefing as the indented hierarchy of Fig. 1.
func (b *Brief) String() string {
	var sb strings.Builder
	sb.WriteString("Webpage Briefing\n")
	fmt.Fprintf(&sb, "├─ Topic: %s\n", strings.Join(b.Topic, " "))
	for i, attr := range b.Attributes {
		marker := "├─"
		if i == len(b.Attributes)-1 {
			marker = "└─"
		}
		fmt.Fprintf(&sb, "%s Key attribute: %s\n", marker, strings.Join(attr, " "))
	}
	return sb.String()
}
