package wb

import (
	"fmt"
	"strings"

	"webbrief/internal/ag"
	"webbrief/internal/eval"
	"webbrief/internal/textproc"
)

// Brief is the hierarchical webpage-briefing output of Fig. 1: the broad
// topic at the top, followed by the extracted key attributes at the finer
// level. Reading it takes seconds instead of the minutes needed to skim the
// page — the task's motivation (§I).
type Brief struct {
	Topic      []string   // generated topic phrase
	Attributes [][]string // extracted key attribute values, document order
	Sections   []int      // predicted informative-section flags per sentence
}

// topicMaxLen bounds the decoded topic phrase length during briefing.
const topicMaxLen = 6

// MakeBrief runs a trained model on an instance and assembles the
// hierarchical briefing.
func MakeBrief(m Model, inst *Instance, v *textproc.Vocab, beamWidth int) *Brief {
	b := ExtractBrief(m, inst, v)
	b.Topic = DecodeTopic(m, inst, v, beamWidth)
	return b
}

// ExtractBrief runs one eval-mode forward pass and assembles the extractive
// half of the briefing: the key attribute spans and the informative-section
// flags. The topic is left empty; DecodeTopic fills it. The split exists so
// a serving layer can time (and deadline-check between) the encode and
// decode stages separately.
func ExtractBrief(m Model, inst *Instance, v *textproc.Vocab) *Brief {
	b := &Brief{}
	t := ag.NewTape()
	out := m.Forward(t, inst, Eval)
	if tags := PredictTags(out); tags != nil {
		for _, sp := range eval.SpansFromBIO(tags) {
			var words []string
			for i := sp.Start; i < sp.End; i++ {
				words = append(words, v.Token(inst.IDs[i]))
			}
			b.Attributes = append(b.Attributes, words)
		}
	}
	b.Sections = PredictSections(out)
	return b
}

// DecodeTopic generates the briefing's topic phrase with beam search
// (width ≤ 1 decodes greedily). It returns nil for models without a
// generator head.
func DecodeTopic(m Model, inst *Instance, v *textproc.Vocab, beamWidth int) []string {
	if ids := GenerateTopic(m, inst, beamWidth, topicMaxLen); ids != nil {
		return v.Tokens(ids)
	}
	return nil
}

// String renders the briefing as the indented hierarchy of Fig. 1.
func (b *Brief) String() string {
	var sb strings.Builder
	sb.WriteString("Webpage Briefing\n")
	fmt.Fprintf(&sb, "├─ Topic: %s\n", strings.Join(b.Topic, " "))
	for i, attr := range b.Attributes {
		marker := "├─"
		if i == len(b.Attributes)-1 {
			marker = "└─"
		}
		fmt.Fprintf(&sb, "%s Key attribute: %s\n", marker, strings.Join(attr, " "))
	}
	return sb.String()
}
