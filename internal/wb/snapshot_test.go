package wb

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"webbrief/internal/snapshot"
	"webbrief/internal/textproc"
)

var updateSnap = flag.Bool("update-snap", false, "rewrite the golden model snapshot")

// trainedTestModel builds a small deterministic trained model shared by
// the snapshot tests.
func trainedTestModel(t testing.TB) (*JointWB, *textproc.Vocab, []*Instance) {
	t.Helper()
	insts, v := testData(t, 2, 2)
	m := newTestJointWB(v, 42)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	TrainModel(m, insts, tc)
	return m, v, insts
}

// TestSnapshotRoundTrip: a snapshotted model decodes to identical
// parameters (bit-exact) and identical predictions.
func TestSnapshotRoundTrip(t *testing.T) {
	m, v, insts := trainedTestModel(t)
	data, err := EncodeSnapshot(m, v)
	if err != nil {
		t.Fatal(err)
	}
	m2, v2, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() != v.Size() {
		t.Fatalf("vocab size %d vs %d", v2.Size(), v.Size())
	}
	for i := 0; i < v.Size(); i++ {
		if v2.Token(i) != v.Token(i) {
			t.Fatalf("vocab token %d: %q vs %q", i, v2.Token(i), v.Token(i))
		}
	}
	assertSameParams(t, m, m2)
	for _, inst := range insts[:2] {
		got := GenerateTopic(m2, inst, 1, 4)
		want := GenerateTopic(m, inst, 1, 4)
		if len(got) != len(want) {
			t.Fatalf("decode mismatch: %v vs %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("decode mismatch: %v vs %v", got, want)
			}
		}
	}
}

// assertSameParams compares two models parameter-by-parameter, bit-exact.
func assertSameParams(t *testing.T, a, b *JointWB) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param count %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		va, vb := pa[i].Value, pb[i].Value
		if va.Rows != vb.Rows || va.Cols != vb.Cols {
			t.Fatalf("param %d shape %dx%d vs %dx%d", i, va.Rows, va.Cols, vb.Rows, vb.Cols)
		}
		for j := range va.Data {
			if math.Float64bits(va.Data[j]) != math.Float64bits(vb.Data[j]) {
				t.Fatalf("param %d (%s) value %d not bit-exact: %x vs %x",
					i, pa[i].Name, j, va.Data[j], vb.Data[j])
			}
		}
	}
}

// TestSnapshotGobEquivalence: the snapshot codec and the legacy gob bundle
// reconstruct the same model from the same original — the migration
// guarantee.
func TestSnapshotGobEquivalence(t *testing.T) {
	m, v, insts := trainedTestModel(t)

	var gobBuf bytes.Buffer
	if err := SaveJointWB(&gobBuf, m, v); err != nil {
		t.Fatal(err)
	}
	fromGob, vGob, err := LoadJointWB(bytes.NewReader(gobBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSnapshot(m, v)
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, vSnap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if vGob.Size() != vSnap.Size() {
		t.Fatalf("vocab size %d vs %d", vGob.Size(), vSnap.Size())
	}
	assertSameParams(t, fromGob, fromSnap)
	for _, inst := range insts[:1] {
		a := GenerateTopic(fromGob, inst, 1, 4)
		b := GenerateTopic(fromSnap, inst, 1, 4)
		if len(a) != len(b) {
			t.Fatalf("gob vs snapshot predictions differ: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("gob vs snapshot predictions differ: %v vs %v", a, b)
			}
		}
	}
}

// TestLoadModelAuto dispatches on the magic: both formats load through the
// same entry point.
func TestLoadModelAuto(t *testing.T) {
	m, v, _ := trainedTestModel(t)

	var gobBuf bytes.Buffer
	if err := SaveJointWB(&gobBuf, m, v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModelAuto(bytes.NewReader(gobBuf.Bytes())); err != nil {
		t.Fatalf("auto-load gob: %v", err)
	}

	var snapBuf bytes.Buffer
	if err := SaveSnapshot(&snapBuf, m, v); err != nil {
		t.Fatal(err)
	}
	m2, _, err := LoadModelAuto(bytes.NewReader(snapBuf.Bytes()))
	if err != nil {
		t.Fatalf("auto-load snapshot: %v", err)
	}
	assertSameParams(t, m, m2)

	if _, _, err := LoadModelAuto(bytes.NewReader([]byte("neither format"))); err == nil {
		t.Fatal("garbage must not auto-load")
	}
}

// TestDecodeSnapshotRejectsCorruption: wb-level decoding inherits the
// container's corruption detection and adds its own shape validation.
func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	m, v, _ := trainedTestModel(t)
	data, err := EncodeSnapshot(m, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 7, len(data) / 2, len(data) - 5} {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x10
		if _, _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, _, err := DecodeSnapshot(data[:len(data)/2]); err == nil {
		t.Fatal("truncation accepted")
	}

	// Structurally valid container with wrong sections.
	b := snapshot.NewBuilder()
	b.Add("wrong/section", []byte("x"))
	if _, _, err := DecodeSnapshot(b.Bytes()); err == nil {
		t.Fatal("missing sections accepted")
	}
}

// TestGoldenModelSnapshot pins the model bundle bytes: a committed
// snapshot of a deterministic trained model must decode forever.
// Regenerate with -update-snap after deliberate format changes.
func TestGoldenModelSnapshot(t *testing.T) {
	golden := filepath.Join("testdata", "model-golden.snap")
	m, v, insts := trainedTestModel(t)
	data, err := EncodeSnapshot(m, v)
	if err != nil {
		t.Fatal(err)
	}
	if *updateSnap {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-snap to regenerate)", err)
	}
	if !bytes.Equal(disk, data) {
		t.Fatal("golden model snapshot drifted; deliberate format changes need -update-snap")
	}
	m2, _, err := DecodeSnapshot(disk)
	if err != nil {
		t.Fatal(err)
	}
	got := GenerateTopic(m2, insts[0], 1, 4)
	want := GenerateTopic(m, insts[0], 1, 4)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("golden model predicts %v, want %v", got, want)
		}
	}
}

// TestGoldenModelSnapshotV1 pins backward compatibility: the committed
// version-1 model bundle (written before the container gained float32
// slabs) must keep decoding to the same model forever.
func TestGoldenModelSnapshotV1(t *testing.T) {
	disk, err := os.ReadFile(filepath.Join("testdata", "model-golden-v1.snap"))
	if err != nil {
		t.Fatal(err)
	}
	mv1, _, err := DecodeSnapshot(disk)
	if err != nil {
		t.Fatalf("version-1 model snapshot rejected: %v", err)
	}
	m, _, insts := trainedTestModel(t)
	assertSameParams(t, m, mv1)
	got := GenerateTopic(mv1, insts[0], 1, 4)
	want := GenerateTopic(m, insts[0], 1, 4)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("v1 golden model predicts %v, want %v", got, want)
		}
	}
}

// FuzzDecodeSnapshot: the wb-level decoder must never panic on arbitrary
// bytes — corrupt models fail closed at startup.
func FuzzDecodeSnapshot(f *testing.F) {
	insts, v := testData(f, 1, 1)
	_ = insts
	m := newTestJointWB(v, 7)
	data, err := EncodeSnapshot(m, v)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte("WBSNAP"))
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeSnapshot(b)
	})
}

// BenchmarkColdBoot compares decoding a model from the legacy gob bundle
// against the binary snapshot — the wbserve startup and replica-clone
// path. Snapshot must win (see BENCH_5.json).
func BenchmarkColdBoot(b *testing.B) {
	insts, v := testData(b, 2, 2)
	_ = insts
	m := newTestJointWB(v, 42)

	var gobBuf bytes.Buffer
	if err := SaveJointWB(&gobBuf, m, v); err != nil {
		b.Fatal(err)
	}
	snapData, err := EncodeSnapshot(m, v)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(gobBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, _, err := LoadJointWB(bytes.NewReader(gobBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(snapData)))
		for i := 0; i < b.N; i++ {
			if _, _, err := DecodeSnapshot(snapData); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCloneMany: pool boot with one shared encode vs n independent
// clones.
func BenchmarkCloneMany(b *testing.B) {
	insts, v := testData(b, 2, 2)
	_ = insts
	m := newTestJointWB(v, 42)
	const n = 4
	b.Run("clone-each", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				if _, err := CloneForServing(m, v); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("clone-many", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CloneManyForServing(m, v, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}
