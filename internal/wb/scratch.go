package wb

import (
	"sync"

	"webbrief/internal/ag"
	"webbrief/internal/eval"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// InferScratch is a per-call inference workspace: a no-gradient arena tape,
// the matmul pack buffer it routes products through, and the beam-search
// buffers. A warm scratch makes ExtractBriefWith/DecodeTopicWith
// allocation-free apart from the assembled Brief itself.
//
// Ownership contract: a scratch belongs to exactly one in-flight request at
// a time — serve.Pool gives each replica its own, and the package pool hands
// each transient caller a private one. The scratch resets its own tape at the
// START of each forward (not the end), so returned Briefs — which hold only
// strings and ints, never tensor memory — stay valid while the scratch is
// reused. Nothing that aliases the tape arena may escape a With-call.
type InferScratch struct {
	Tape *ag.Tape
	Pack *tensor.PackBuf
	Beam *nn.BeamScratch
}

// NewInferScratch returns an empty workspace whose buffers grow on first
// use.
func NewInferScratch() *InferScratch {
	s := &InferScratch{
		Tape: ag.NewInferTape(),
		Pack: &tensor.PackBuf{},
		Beam: nn.NewBeamScratch(0, 0, 0),
	}
	s.Tape.SetPack(s.Pack)
	return s
}

// NewInferScratchFor returns a workspace with the beam buffers presized for
// decoding v-vocabulary topics at the given beam width, so the first request
// is already warm. Width ≤ 1 (greedy decoding) still gets a usable scratch.
func NewInferScratchFor(v *textproc.Vocab, beamWidth int) *InferScratch {
	s := NewInferScratch()
	if beamWidth > 1 && v != nil {
		s.Beam = nn.NewBeamScratch(v.Size(), beamWidth, topicMaxLen)
	}
	return s
}

// scratchPool recycles workspaces for callers without a resident replica
// (eval loops, CLI one-shots).
var scratchPool = sync.Pool{New: func() any { return NewInferScratch() }}

// GetScratch returns a workspace from the package pool. Pair with
// PutScratch.
func GetScratch() *InferScratch { return scratchPool.Get().(*InferScratch) }

// PutScratch returns a workspace to the package pool. The caller must not
// retain the tape or any tensor drawn from it.
func PutScratch(s *InferScratch) { scratchPool.Put(s) }

// ExtractBriefWith is ExtractBrief running on the caller's workspace.
func ExtractBriefWith(m Model, inst *Instance, v *textproc.Vocab, s *InferScratch) *Brief {
	s.Tape.Reset()
	out := m.Forward(s.Tape, inst, Eval)
	return extractiveBrief(out, inst, v)
}

// extractiveBrief assembles the extractive half of a briefing from a
// forward-pass output: attribute spans from the BIO tags plus the section
// flags. Shared by the per-request and batched extract paths.
func extractiveBrief(out *Output, inst *Instance, v *textproc.Vocab) *Brief {
	b := &Brief{}
	if tags := PredictTags(out); tags != nil {
		for _, sp := range eval.SpansFromBIO(tags) {
			var words []string
			for i := sp.Start; i < sp.End; i++ {
				words = append(words, v.Token(inst.IDs[i]))
			}
			b.Attributes = append(b.Attributes, words)
		}
	}
	b.Sections = PredictSections(out)
	return b
}

// GenerateTopicWith is GenerateTopic running on the caller's workspace.
func GenerateTopicWith(m Model, inst *Instance, beamWidth, maxLen int, s *InferScratch) []int {
	s.Tape.Reset()
	out := m.Forward(s.Tape, inst, Eval)
	if out.Memory == nil || out.Dec == nil {
		return nil
	}
	if beamWidth <= 1 {
		return out.Dec.Greedy(s.Tape, out.Memory, textproc.BosID, textproc.EosID, maxLen)
	}
	return out.Dec.BeamSearchScratch(s.Tape, out.Memory, textproc.BosID, textproc.EosID, beamWidth, maxLen, s.Beam)
}

// DecodeTopicWith is DecodeTopic running on the caller's workspace.
func DecodeTopicWith(m Model, inst *Instance, v *textproc.Vocab, beamWidth int, s *InferScratch) []string {
	if ids := GenerateTopicWith(m, inst, beamWidth, topicMaxLen, s); ids != nil {
		return v.Tokens(ids)
	}
	return nil
}

// MakeBriefWith is MakeBrief running both stages on one workspace.
func MakeBriefWith(m Model, inst *Instance, v *textproc.Vocab, beamWidth int, s *InferScratch) *Brief {
	b := ExtractBriefWith(m, inst, v, s)
	b.Topic = DecodeTopicWith(m, inst, v, beamWidth, s)
	return b
}
