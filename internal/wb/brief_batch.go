package wb

import (
	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// BatchScratch is the batched counterpart of InferScratch: one no-gradient
// arena tape and pack buffer shared by every instance of a micro-batch, plus
// one beam scratch per batch slot so the batched beam search keeps each
// instance's ping-pong token pools private. A scratch belongs to exactly one
// in-flight batch at a time.
//
// The tape resets at the START of ExtractBriefBatch, so the Outputs it
// returns stay valid — and DecodeTopicBatch may still use them — until the
// next extract call on the same scratch. Briefs hold only strings and ints
// and never alias the tape.
type BatchScratch struct {
	Tape  *ag.Tape
	Pack  *tensor.PackBuf
	beams []*nn.BeamScratch

	vocabSize int // beam scratch presizing, 0 = lazy
	width     int
	maxLen    int
}

// NewBatchScratch returns an empty batched workspace whose buffers grow on
// first use.
func NewBatchScratch() *BatchScratch {
	s := &BatchScratch{
		Tape: ag.NewInferTape(),
		Pack: &tensor.PackBuf{},
	}
	s.Tape.SetPack(s.Pack)
	return s
}

// NewBatchScratchFor presizes the workspace for decoding v-vocabulary topics
// at the given beam width with up to batchMax instances per batch, so the
// first batch is already warm. Any argument may be zero; the corresponding
// buffers then grow lazily.
func NewBatchScratchFor(v *textproc.Vocab, beamWidth, batchMax int) *BatchScratch {
	s := NewBatchScratch()
	if beamWidth > 1 && v != nil {
		s.vocabSize, s.width, s.maxLen = v.Size(), beamWidth, topicMaxLen
		s.beamScratches(batchMax)
	}
	return s
}

// beamScratches returns n per-slot beam scratches, growing the pool on
// demand and reusing warm entries across batches.
func (s *BatchScratch) beamScratches(n int) []*nn.BeamScratch {
	for len(s.beams) < n {
		s.beams = append(s.beams, nn.NewBeamScratch(s.vocabSize, s.width, s.maxLen))
	}
	return s.beams[:n]
}

// ExtractBriefBatch runs one Eval forward for every instance on the shared
// tape — batched through BatchForwarder when the model supports it, per
// instance otherwise — and assembles each extractive brief. The returned
// Outputs feed DecodeTopicBatch and die at the scratch's next reset.
func ExtractBriefBatch(m Model, insts []*Instance, v *textproc.Vocab, s *BatchScratch) ([]*Brief, []*Output) {
	s.Tape.Reset()
	var outs []*Output
	if bf, ok := m.(BatchForwarder); ok && len(insts) > 1 {
		outs = bf.ForwardBatchEval(s.Tape, insts)
	} else {
		outs = make([]*Output, len(insts))
		for i, inst := range insts {
			outs[i] = m.Forward(s.Tape, inst, Eval)
		}
	}
	briefs := make([]*Brief, len(insts))
	for i, out := range outs {
		briefs[i] = extractiveBrief(out, insts[i], v)
	}
	return briefs, outs
}

// DecodeTopicBatch fills briefs[i].Topic by decoding from outs[i] (the
// Outputs ExtractBriefBatch returned, still live on s.Tape). Beam widths > 1
// run one batched beam search across every instance with a generator head;
// width ≤ 1 decodes each greedily. Instances without a generator head keep a
// nil topic, exactly like DecodeTopicWith.
func DecodeTopicBatch(m Model, insts []*Instance, outs []*Output, v *textproc.Vocab, beamWidth int, s *BatchScratch, briefs []*Brief) {
	if beamWidth <= 1 {
		for i, out := range outs {
			if out.Memory == nil || out.Dec == nil {
				continue
			}
			ids := out.Dec.Greedy(s.Tape, out.Memory, textproc.BosID, textproc.EosID, topicMaxLen)
			if ids != nil {
				briefs[i].Topic = v.Tokens(ids)
			}
		}
		return
	}
	// Batch every decodable instance; remember where each came from.
	idx := make([]int, 0, len(outs))
	for i, out := range outs {
		if out.Memory != nil && out.Dec != nil {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return
	}
	dec := outs[idx[0]].Dec
	mems := make([]*ag.Node, len(idx))
	for k, i := range idx {
		mems[k] = outs[i].Memory
	}
	tokIDs := dec.BeamSearchBatch(s.Tape, mems, textproc.BosID, textproc.EosID,
		beamWidth, topicMaxLen, s.beamScratches(len(idx)))
	for k, i := range idx {
		if tokIDs[k] != nil {
			briefs[i].Topic = v.Tokens(tokIDs[k])
		}
	}
}

// MakeBriefBatch briefs a micro-batch end to end on one workspace: batched
// extract, then batched topic decode. Each returned brief is identical to
// MakeBriefWith on that instance alone.
func MakeBriefBatch(m Model, insts []*Instance, v *textproc.Vocab, beamWidth int, s *BatchScratch) []*Brief {
	briefs, outs := ExtractBriefBatch(m, insts, v, s)
	DecodeTopicBatch(m, insts, outs, v, beamWidth, s, briefs)
	return briefs
}
