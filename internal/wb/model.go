package wb

import (
	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
)

// Mode selects forward-pass behaviour: Train enables dropout and decoder
// teacher forcing; Distill keeps teacher forcing but disables dropout (used
// for the frozen teacher and the student's distillation passes, where
// matched output distributions require matched decode paths); Eval decodes
// greedily with no dropout.
type Mode int

// Forward modes.
const (
	Train Mode = iota
	Distill
	Eval
)

// TeacherForced reports whether the mode decodes with gold topic inputs.
func (m Mode) TeacherForced() bool { return m == Train || m == Distill }

// Output carries everything a forward pass produces. Heads a model does not
// implement are nil (e.g. a single-task extractor has no TopicLogits). The
// hidden representations are exposed because the distillation losses of
// §III-A/§III-B match them between teacher and student.
type Output struct {
	TokenH      *ag.Node // hidden token representations (H^T_c / C_E)
	SentH       *ag.Node // hidden sentence representations (C_G)
	TopicStates *ag.Node // decoder hidden topic representations (Q)
	TagLogits   *ag.Node // l×3 BIO logits
	SecLogits   *ag.Node // m×1 informative-section logits
	TopicLogits *ag.Node // teacher-forced decode logits (len(TopicIn)×vocab)
	Memory      *ag.Node // decoder attention memory for free decoding
	Dec         *nn.AttnDecoder
}

// Model is the interface shared by Joint-WB and every baseline, and the
// contract the distillation framework trains against.
type Model interface {
	nn.Layer
	Name() string
	// Forward runs the model on one instance. In Train mode the decoder is
	// teacher-forced with inst.TopicIn; in Eval mode generation-dependent
	// signals use greedy decoding.
	Forward(t *ag.Tape, inst *Instance, mode Mode) *Output
}

// BatchForwarder is implemented by models whose Eval-mode forward can run
// over several instances at once with the recurrent encoders advanced in
// lockstep (see JointWB.ForwardBatchEval). The serving layer batch-dispatches
// through it when present; outs[i] must hold values identical to
// Forward(t, insts[i], Eval).
type BatchForwarder interface {
	Model
	ForwardBatchEval(t *ag.Tape, insts []*Instance) []*Output
}

// Loss sums the supervised losses for whichever heads out provides: BIO
// cross-entropy for extraction, sequence cross-entropy for topic generation,
// and binary cross-entropy for section prediction — the joint objective
// L = CE(O_e, gt_e) + CE(O_g, gt_g) of §III-C with the section predictor's
// supervision made explicit.
func Loss(t *ag.Tape, out *Output, inst *Instance) *ag.Node {
	var terms []*ag.Node
	if out.TagLogits != nil {
		terms = append(terms, t.CrossEntropy(out.TagLogits, inst.Tags))
	}
	if out.TopicLogits != nil {
		terms = append(terms, t.CrossEntropy(out.TopicLogits, inst.TopicOut))
	}
	if out.SecLogits != nil {
		terms = append(terms, t.BCELoss(out.SecLogits, inst.SentInfo))
	}
	if len(terms) == 0 {
		panic("wb: model produced no supervised heads")
	}
	return t.AddScalars(terms...)
}

// PredictTags returns the argmax BIO tag sequence from an output.
func PredictTags(out *Output) []int {
	if out.TagLogits == nil {
		return nil
	}
	tags := make([]int, out.TagLogits.Rows())
	for i := range tags {
		tags[i] = out.TagLogits.Value.ArgmaxRow(i)
	}
	return tags
}

// PredictSections thresholds the section logits at 0.5 probability.
func PredictSections(out *Output) []int {
	if out.SecLogits == nil {
		return nil
	}
	secs := make([]int, out.SecLogits.Rows())
	for i := range secs {
		if out.SecLogits.Value.At(i, 0) >= 0 { // sigmoid(x) >= 0.5 ⟺ x >= 0
			secs[i] = 1
		}
	}
	return secs
}

// GenerateTopic decodes a topic phrase from a model using beam search
// (width ≤ 1 falls back to greedy). It returns nil if the model has no
// generator head.
func GenerateTopic(m Model, inst *Instance, beamWidth, maxLen int) []int {
	s := GetScratch()
	defer PutScratch(s)
	return GenerateTopicWith(m, inst, beamWidth, maxLen, s)
}

// sentProbsToTokens expands per-sentence probabilities (m×1) to per-token
// rows (l×1) using the instance's sentence index, the Φ injection of
// §III-C that broadcasts the section signal onto token positions.
func sentProbsToTokens(t *ag.Tape, sentProbs *ag.Node, inst *Instance) *ag.Node {
	return t.GatherRows(sentProbs, inst.SentOf)
}

// softmaxOverRows applies a softmax across the ROWS of a column vector
// (l×1), i.e. a distribution over positions. tensor softmax is row-wise
// over columns, so transpose around it.
func softmaxOverRows(t *ag.Tape, col *ag.Node) *ag.Node {
	return t.Transpose(t.SoftmaxRows(t.Transpose(col)))
}

// zeroRow returns a constant 1×dim zero row used to pad Markov-dependency
// neighbours at document boundaries. It draws from the tape arena so the
// inference fast path stays allocation-free.
func zeroRow(t *ag.Tape, dim int) *ag.Node {
	return t.Const(t.AllocValue(1, dim))
}

// rowSum reduces each row of a to a single column (l×1) by multiplying with
// a ones vector.
func rowSum(t *ag.Tape, a *ag.Node) *ag.Node {
	return t.MatMul(a, t.Const(onesCol(t, a.Cols())))
}

// onesCol returns an n×1 all-ones matrix from the tape arena, used to
// broadcast a 1×d row to n rows via matrix product.
func onesCol(t *ag.Tape, n int) *tensor.Matrix {
	ones := t.AllocValue(n, 1)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	return ones
}
