package wb

import (
	"math/rand"
	"sort"

	"webbrief/internal/ag"
	"webbrief/internal/corpus"
	"webbrief/internal/eval"
	"webbrief/internal/nn"
	"webbrief/internal/opt"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// AttrNamer predicts the attribute NAME for an extracted value span — e.g.
// "price" for the span "$ 40.13". This implements the extension the paper
// leaves to future work in §V ("we plan to predict attribute names for key
// attributes"). The namer is a classification head over a model's hidden
// token representations: each span is mean-pooled and projected onto the
// label inventory.
type AttrNamer struct {
	Labels  []string
	labelID map[string]int
	Emb     *nn.Embedding // namer-owned lexical embeddings over the context
	Proj    *nn.Linear
}

// AttributeLabels returns the sorted label inventory across all corpus
// domains ("author", "price", "salary", ...).
func AttributeLabels() []string {
	seen := map[string]bool{}
	for _, d := range corpus.Domains() {
		for _, a := range d.Attrs {
			seen[a.Label] = true
		}
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// NewAttrNamer builds a namer over repDim-wide token representations of a
// model with the given vocabulary size. The classifier combines the model's
// contextual span representation with the namer's own lexical embedding of
// the span context — the extractor's hidden states carry "is a value"
// information but not which label word sits next to it, so the namer learns
// its own lexical view.
func NewAttrNamer(name string, labels []string, repDim, vocab int, rng *rand.Rand) *AttrNamer {
	ids := make(map[string]int, len(labels))
	for i, l := range labels {
		ids[l] = i
	}
	const embDim = 24
	return &AttrNamer{
		Labels:  labels,
		labelID: ids,
		Emb:     nn.NewEmbedding(name+".emb", vocab, embDim, rng),
		Proj:    nn.NewLinear(name+".proj", repDim+embDim, len(labels), rng),
	}
}

// Params implements nn.Layer.
func (n *AttrNamer) Params() []*ag.Param { return nn.CollectParams(n.Emb, n.Proj) }

// LabelID returns the class index of a label, or -1.
func (n *AttrNamer) LabelID(label string) int {
	if id, ok := n.labelID[label]; ok {
		return id
	}
	return -1
}

// namerContext is how many tokens of left/right context join the span when
// pooling: the naming cue ("price :", "( author )") sits immediately
// outside the value span, so the classifier must see it.
const (
	namerContextLeft  = 2
	namerContextRight = 2
)

// spanPoolMatrix builds the spans×tokens mean-pooling matrix over each span
// extended by the context window (clipped to the document).
func spanPoolMatrix(spans []eval.Span, tokens int) *tensor.Matrix {
	m := tensor.New(len(spans), tokens)
	for i, sp := range spans {
		lo := sp.Start - namerContextLeft
		if lo < 0 {
			lo = 0
		}
		hi := sp.End + namerContextRight
		if hi > tokens {
			hi = tokens
		}
		w := 1 / float64(hi-lo)
		for j := lo; j < hi; j++ {
			m.Set(i, j, w)
		}
	}
	return m
}

// Forward scores each span against the label inventory: the returned node
// is len(spans)×len(Labels). tokenH is a hidden token representation matrix
// (typically Output.TokenH from any model) and ids the instance's token
// ids, from which the namer pools its own lexical embeddings.
func (n *AttrNamer) Forward(t *ag.Tape, tokenH *ag.Node, ids []int, spans []eval.Span) *ag.Node {
	pool := t.Const(spanPoolMatrix(spans, tokenH.Rows()))
	pooledH := t.MatMul(pool, tokenH)
	pooledE := t.MatMul(pool, n.Emb.Forward(t, ids))
	return n.Proj.Forward(t, t.ConcatCols(pooledH, pooledE))
}

// Predict names the given spans from token representations and token ids.
func (n *AttrNamer) Predict(tokenH *tensor.Matrix, ids []int, spans []eval.Span) []string {
	if len(spans) == 0 {
		return nil
	}
	t := ag.NewTape()
	logits := n.Forward(t, t.Const(tokenH), ids, spans)
	out := make([]string, len(spans))
	for i := range spans {
		out[i] = n.Labels[logits.Value.ArgmaxRow(i)]
	}
	return out
}

// goldSpanLabels returns an instance's gold spans with their label class
// ids. Labels outside the inventory are skipped.
func (n *AttrNamer) goldSpanLabels(inst *Instance) ([]eval.Span, []int) {
	if inst.Page == nil {
		return nil, nil
	}
	spans := eval.SpansFromBIO(inst.Tags)
	attrs := inst.Page.Attributes()
	if len(spans) != len(attrs) {
		// Truncation can drop trailing attributes; align on the prefix.
		if len(attrs) > len(spans) {
			attrs = attrs[:len(spans)]
		} else {
			spans = spans[:len(attrs)]
		}
	}
	var keepSpans []eval.Span
	var keepIDs []int
	for i, a := range attrs {
		if id := n.LabelID(a.Label); id >= 0 {
			keepSpans = append(keepSpans, spans[i])
			keepIDs = append(keepIDs, id)
		}
	}
	return keepSpans, keepIDs
}

// TrainNamer fits the namer on gold spans over a trained model's token
// representations. The model is frozen: its forward runs per instance and
// only its values feed the namer's graph. Returns per-epoch mean losses.
func TrainNamer(n *AttrNamer, m Model, insts []*Instance, tc TrainConfig) []float64 {
	optim := opt.NewAdam(n.Params(), tc.LR)
	optim.Clip = tc.Clip
	rng := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, len(insts))
	for i := range order {
		order[i] = i
	}
	var losses []float64
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		var count int
		for _, idx := range order {
			inst := insts[idx]
			spans, labels := n.goldSpanLabels(inst)
			if len(spans) == 0 {
				continue
			}
			ft := ag.NewTape()
			tokenH := m.Forward(ft, inst, Eval).TokenH.Value
			t := ag.NewTape()
			logits := n.Forward(t, t.Const(tokenH), inst.IDs, spans)
			loss := t.CrossEntropy(logits, labels)
			sum += loss.Value.Data[0]
			count++
			t.Backward(loss)
			optim.Step()
		}
		if count == 0 {
			count = 1
		}
		losses = append(losses, sum/float64(count))
	}
	return losses
}

// EvaluateNamer returns name-classification accuracy over gold spans (%).
func EvaluateNamer(n *AttrNamer, m Model, insts []*Instance) float64 {
	var correct, total int
	for _, inst := range insts {
		spans, labels := n.goldSpanLabels(inst)
		if len(spans) == 0 {
			continue
		}
		t := ag.NewTape()
		tokenH := m.Forward(t, inst, Eval).TokenH.Value
		pred := n.Predict(tokenH, inst.IDs, spans)
		for i, want := range labels {
			if n.LabelID(pred[i]) == want {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(correct) / float64(total)
}

// NamedAttribute is an extracted value with its predicted name.
type NamedAttribute struct {
	Name   string
	Tokens []string
}

// MakeNamedBrief extends MakeBrief with predicted attribute names — the
// future-work output format of §V ("the attribute name for the key
// attribute '$40.13' is 'Price'").
func MakeNamedBrief(m Model, n *AttrNamer, inst *Instance, v *textproc.Vocab, beamWidth int) (*Brief, []NamedAttribute) {
	t := ag.NewTape()
	out := m.Forward(t, inst, Eval)
	brief := MakeBrief(m, inst, v, beamWidth)
	spans := eval.SpansFromBIO(PredictTags(out))
	names := n.Predict(out.TokenH.Value, inst.IDs, spans)
	var named []NamedAttribute
	for i, sp := range spans {
		var words []string
		for j := sp.Start; j < sp.End; j++ {
			words = append(words, v.Token(inst.IDs[j]))
		}
		named = append(named, NamedAttribute{Name: names[i], Tokens: words})
	}
	return brief, named
}
