package wb

import (
	"testing"

	"webbrief/internal/corpus"
	"webbrief/internal/eval"
	"webbrief/internal/textproc"
)

func wpData(t testing.TB) ([]*corpus.Page, *textproc.WordPiece) {
	t.Helper()
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 3, SeenDomains: 3, UnseenDomains: 0})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Pages, LearnCorpusWordPiece(ds.Pages, 600)
}

func TestInstanceWPParallelArrays(t *testing.T) {
	pages, wp := wpData(t)
	inst := NewInstanceWP(pages[0], wp, 0)
	if len(inst.IDs) != len(inst.Tags) || len(inst.IDs) != len(inst.SentOf) || len(inst.IDs) != len(inst.Segments) {
		t.Fatal("parallel arrays out of sync")
	}
	if inst.NumSents() != len(pages[0].Sentences) {
		t.Fatal("sentence count")
	}
	// Subword streams are at least as long as word streams.
	word := NewInstance(pages[0], corpus.BuildVocab(pages), 0)
	if inst.NumTokens() < word.NumTokens() {
		t.Fatalf("subword stream shorter than word stream: %d < %d", inst.NumTokens(), word.NumTokens())
	}
}

func TestInstanceWPSpanProjection(t *testing.T) {
	pages, wp := wpData(t)
	v := wp.Vocab()
	for _, p := range pages {
		inst := NewInstanceWP(p, wp, 0)
		spans := eval.SpansFromBIO(inst.Tags)
		attrs := p.Attributes()
		if len(spans) != len(attrs) {
			t.Fatalf("%s: %d subword spans for %d attributes", p.ID, len(spans), len(attrs))
		}
		for i, sp := range spans {
			// Detokenising the span's pieces must reproduce the attribute
			// value words.
			var pieces []string
			for j := sp.Start; j < sp.End; j++ {
				pieces = append(pieces, v.Token(inst.IDs[j]))
			}
			got := textproc.Detokenize(pieces)
			want := textproc.Detokenize(attrs[i].Value) // values are words; Detokenize joins with spaces
			if got != want {
				t.Fatalf("%s span %d: %q != %q", p.ID, i, got, want)
			}
		}
	}
}

func TestInstanceWPTopicTargets(t *testing.T) {
	pages, wp := wpData(t)
	inst := NewInstanceWP(pages[0], wp, 0)
	if inst.TopicIn[0] != textproc.BosID || inst.TopicOut[len(inst.TopicOut)-1] != textproc.EosID {
		t.Fatal("BOS/EOS framing")
	}
	if len(inst.TopicIn) != len(inst.TopicOut) {
		t.Fatal("teacher-forcing alignment")
	}
}

func TestInstanceWPTruncation(t *testing.T) {
	pages, wp := wpData(t)
	inst := NewInstanceWP(pages[0], wp, 12)
	if inst.NumTokens() != 12 {
		t.Fatalf("truncated to %d", inst.NumTokens())
	}
	if len(inst.SentInfo) != inst.SentOf[11]+1 {
		t.Fatal("sentence labels inconsistent")
	}
}

// A model must train end-to-end on subword instances without modification.
func TestModelRunsOnSubwordInstances(t *testing.T) {
	pages, wp := wpData(t)
	insts := NewInstancesWP(pages, wp, 0)
	m := newTestJointWB(wp.Vocab(), 31)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	losses := TrainModel(m, insts, tc)
	if losses[1] >= losses[0] {
		t.Fatalf("subword training loss not decreasing: %v", losses)
	}
}
