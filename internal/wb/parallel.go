package wb

import (
	"runtime"
	"sync"
)

// parallelInstances runs fn over instance indices concurrently. It is safe
// for evaluation-mode forwards: an Eval pass reads shared parameter values
// but never writes them (no dropout, no gradients, fresh tape per call), so
// instances are independent. Each index writes only its own result slot,
// keeping results deterministic regardless of scheduling.
func parallelInstances(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
