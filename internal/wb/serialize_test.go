package wb

import (
	"bytes"
	"testing"
)

func TestSaveLoadJointWBRoundTrip(t *testing.T) {
	insts, v := testData(t, 2, 2)
	m := newTestJointWB(v, 42)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	TrainModel(m, insts, tc)

	var buf bytes.Buffer
	if err := SaveJointWB(&buf, m, v); err != nil {
		t.Fatal(err)
	}
	m2, v2, err := LoadJointWB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() != v.Size() {
		t.Fatalf("vocab size %d vs %d", v2.Size(), v.Size())
	}
	// The loaded model must reproduce the original's predictions exactly.
	for _, inst := range insts[:2] {
		got := GenerateTopic(m2, inst, 1, 4)
		want := GenerateTopic(m, inst, 1, 4)
		if len(got) != len(want) {
			t.Fatalf("decode mismatch: %v vs %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("decode mismatch: %v vs %v", got, want)
			}
		}
	}
}

func TestLoadJointWBRejectsGarbage(t *testing.T) {
	if _, _, err := LoadJointWB(bytes.NewReader([]byte("not a bundle"))); err == nil {
		t.Fatal("garbage must not load")
	}
}

func TestInstanceFromHTMLPipeline(t *testing.T) {
	_, v := testData(t, 1, 1)
	html := `<html><body><nav><div>home about contact help</div></nav>
	<main><h1>book shopping here</h1><div>price : $ 42 . 13</div></main></body></html>`
	inst := InstanceFromHTML(html, v, 0)
	if inst.NumSents() != 3 {
		t.Fatalf("sentences: %d", inst.NumSents())
	}
	if inst.NumTokens() != len(inst.Tags) || inst.NumTokens() != len(inst.SentOf) {
		t.Fatal("parallel arrays")
	}
	// Known words resolve; unknown ones map to UNK without panicking.
	inst2 := InstanceFromHTML("<p>zzzunknownzzz</p>", v, 0)
	if inst2.NumSents() != 1 {
		t.Fatal("single unknown sentence")
	}
}

func TestInstanceFromSentencesTruncation(t *testing.T) {
	_, v := testData(t, 1, 1)
	sents := [][]string{{"home", "about"}, {"price", ":", "book"}}
	inst := InstanceFromSentences(sents, v, 4)
	if inst.NumTokens() != 4 {
		t.Fatalf("truncated to %d", inst.NumTokens())
	}
	if len(inst.SentInfo) != inst.SentOf[3]+1 {
		t.Fatal("sentence labels inconsistent after truncation")
	}
}
