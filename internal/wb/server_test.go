package wb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func testBriefer(t *testing.T) *Briefer {
	t.Helper()
	insts, v := testData(t, 2, 4)
	m := newTestJointWB(v, 51)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	TrainModel(m, insts, tc)
	return NewBriefer(m, v, 2, 0)
}

const testPageHTML = `<html><body><main>
<h1>title : novel edition</h1>
<div>price : $ 9.99</div>
</main></body></html>`

func TestBrieferBriefHTML(t *testing.T) {
	b := testBriefer(t)
	brief, err := b.BriefHTML(testPageHTML)
	if err != nil {
		t.Fatal(err)
	}
	if brief == nil || brief.Sections == nil {
		t.Fatal("incomplete brief")
	}
	if _, err := b.BriefHTML("<script>only()</script>"); err == nil {
		t.Fatal("text-free page must error")
	}
}

func TestBrieferHTTP(t *testing.T) {
	srv := httptest.NewServer(testBriefer(t))
	defer srv.Close()

	resp, err := http.Post(srv.URL, "text/html", strings.NewReader(testPageHTML))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var brief Brief
	if err := json.NewDecoder(resp.Body).Decode(&brief); err != nil {
		t.Fatal(err)
	}
	if len(brief.Sections) == 0 {
		t.Fatalf("empty briefing: %+v", brief)
	}

	// Wrong method.
	get, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", get.StatusCode)
	}

	// Oversized body: must get 413, not a briefing of a silently
	// truncated page (regression: the handler used to cap the reader at
	// the limit and brief whatever prefix survived).
	huge := strings.Repeat("x", maxRequestBytes+1)
	big, err := http.Post(srv.URL, "text/html", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	big.Body.Close()
	if big.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized-body status %d, want 413", big.StatusCode)
	}

	// A body exactly at the limit is still served.
	page := testPageHTML + strings.Repeat(" ", maxRequestBytes-len(testPageHTML))
	atLimit, err := http.Post(srv.URL, "text/html", strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	atLimit.Body.Close()
	if atLimit.StatusCode != http.StatusOK {
		t.Fatalf("at-limit status %d, want 200", atLimit.StatusCode)
	}

	// Unbriefable body.
	bad, err := http.Post(srv.URL, "text/html", strings.NewReader("<style>.x{}</style>"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty-page status %d", bad.StatusCode)
	}
}

func TestBrieferConcurrentRequests(t *testing.T) {
	b := testBriefer(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.BriefHTML(testPageHTML)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}
