package wb

import (
	"math"
	"math/rand"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/opt"
	"webbrief/internal/tensor"
)

// maxParamDiff returns the largest absolute elementwise difference between
// two models' parameters.
func maxParamDiff(a, b Model) float64 {
	pa, pb := a.Params(), b.Params()
	var mx float64
	for i := range pa {
		for j, v := range pa[i].Value.Data {
			if d := math.Abs(v - pb[i].Value.Data[j]); d > mx {
				mx = d
			}
		}
	}
	return mx
}

// TestParallelTrainingMatchesSequential is the equivalence guarantee of the
// data-parallel engine: Workers=N must reproduce the Workers=1 reference —
// same per-epoch losses and same final parameters — up to float
// reassociation from the fixed-order gradient-shard merge. Dropout stays
// enabled (the default config), so this also proves the per-example rng
// seeding is scheduling-independent.
func TestParallelTrainingMatchesSequential(t *testing.T) {
	insts, v := testData(t, 2, 4)
	run := func(workers int) (Model, []float64) {
		m := newTestJointWB(v, 51)
		tc := DefaultTrainConfig()
		tc.Epochs = 2
		tc.BatchSize = 4
		tc.Workers = workers
		return m, TrainModel(m, insts, tc)
	}
	mSeq, lSeq := run(1)
	mPar, lPar := run(4)
	if len(lSeq) != len(lPar) {
		t.Fatalf("epoch count mismatch: %d vs %d", len(lSeq), len(lPar))
	}
	for i := range lSeq {
		if d := math.Abs(lSeq[i] - lPar[i]); d > 1e-9 {
			t.Fatalf("epoch %d loss diverges: %v vs %v (Δ=%g)", i, lSeq[i], lPar[i], d)
		}
	}
	if d := maxParamDiff(mSeq, mPar); d > 1e-9 {
		t.Fatalf("final parameters diverge: max |Δ| = %g", d)
	}
	// And the parallel run itself must be reproducible.
	mPar2, lPar2 := run(4)
	for i := range lPar {
		if lPar[i] != lPar2[i] {
			t.Fatalf("parallel training not deterministic: %v vs %v", lPar, lPar2)
		}
	}
	if d := maxParamDiff(mPar, mPar2); d != 0 {
		t.Fatalf("parallel training params not deterministic: max |Δ| = %g", d)
	}
}

// TestParallelTrainingLearns runs the parallel path long enough to verify it
// actually optimises (not just doesn't crash) and exercises the worker
// fan-out under -race.
func TestParallelTrainingLearns(t *testing.T) {
	insts, v := testData(t, 2, 4)
	m := newTestJointWB(v, 52)
	tc := DefaultTrainConfig()
	tc.Epochs = 8
	tc.BatchSize = 2
	tc.Workers = 4
	losses := TrainModel(m, insts, tc)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("parallel training loss did not decrease: %v", losses)
	}
}

// TestPartialBatchScaling pins the fix for the trailing-batch bug: with
// n=3 and BatchSize=2 the second step's single example must be scaled by
// 1/1, not 1/BatchSize. A linear loss makes the expected SGD updates exact.
func TestPartialBatchScaling(t *testing.T) {
	p := ag.NewParam("w", tensor.FromSlice(1, 1, []float64{0}))
	params := []*ag.Param{p}
	sgd := opt.NewSGD(params, 1) // lr=1: parameter moves by exactly the gradient
	coeff := []float64{1, 2, 4}

	tc := TrainConfig{Epochs: 1, BatchSize: 2, Workers: 1, Seed: 7}
	TrainEpochs(sgd, params, len(coeff), tc, func(t *ag.Tape, idx int) *ag.Node {
		// loss = coeff[idx] * w  →  d(loss)/dw = coeff[idx]
		return t.Scale(t.Sum(t.Use(p)), coeff[idx])
	}, nil)

	// Replicate the engine's shuffle to know the batch composition.
	order := []int{0, 1, 2}
	rand.New(rand.NewSource(tc.Seed)).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	want := -(coeff[order[0]] + coeff[order[1]]) / 2 // full batch, mean of two
	want -= coeff[order[2]]                          // trailing batch of one: scale 1/1
	if got := p.Value.Data[0]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("partial batch scaling wrong: got %v want %v", got, want)
	}
}

// TestEarlyStopRespectsBatchSize verifies the unified early-stopping path
// batches like TrainModel: with a patience that never triggers, both must
// produce identical loss curves and parameters for the same config.
func TestEarlyStopRespectsBatchSize(t *testing.T) {
	insts, v := testData(t, 2, 4)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	tc.BatchSize = 4
	tc.Workers = 2

	m1 := newTestJointWB(v, 53)
	l1 := TrainModel(m1, insts, tc)
	m2 := newTestJointWB(v, 53)
	l2, epochs := TrainModelEarlyStop(m2, insts, nil, tc, 100)
	if epochs != tc.Epochs {
		t.Fatalf("early stop ran %d epochs, want %d", epochs, tc.Epochs)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("early-stop loss curve diverges from TrainModel: %v vs %v", l1, l2)
		}
	}
	if d := maxParamDiff(m1, m2); d != 0 {
		t.Fatalf("early-stop params diverge from TrainModel: max |Δ| = %g", d)
	}
}

// TestParallelEvalLoopsMatchSequential covers the eval loops that moved onto
// parallelInstances: DevLoss, EvaluateSections and ExtractionCorrect must
// equal a hand-rolled sequential computation.
func TestParallelEvalLoopsMatchSequential(t *testing.T) {
	insts, v := testData(t, 2, 4)
	m := newTestJointWB(v, 54)

	var seq float64
	for _, inst := range insts {
		tp := ag.NewTape()
		out := m.Forward(tp, inst, Distill)
		seq += Loss(tp, out, inst).Value.Data[0]
	}
	seq /= float64(len(insts))
	if got := DevLoss(m, insts); got != seq {
		t.Fatalf("DevLoss %v != sequential %v", got, seq)
	}

	var pred, gold []int
	for _, inst := range insts {
		tp := ag.NewTape()
		out := m.Forward(tp, inst, Eval)
		pred = append(pred, PredictSections(out)...)
		gold = append(gold, inst.SentInfo...)
	}
	acc := 0
	for i := range pred {
		if pred[i] == gold[i] {
			acc++
		}
	}
	want := 100 * float64(acc) / float64(len(pred))
	if got := EvaluateSections(m, insts); got != want {
		t.Fatalf("EvaluateSections %v != sequential %v", got, want)
	}

	correct := ExtractionCorrect(m, insts)
	if len(correct) != len(insts) {
		t.Fatalf("ExtractionCorrect length %d != %d", len(correct), len(insts))
	}
	again := ExtractionCorrect(m, insts)
	for i := range correct {
		if correct[i] != again[i] {
			t.Fatal("ExtractionCorrect not deterministic across parallel runs")
		}
	}
}

// BenchmarkTrainStepArena measures one forward+backward+merge on a reused
// arena tape — the steady-state allocation profile of the new engine.
func BenchmarkTrainStepArena(b *testing.B) {
	insts, v := testData(b, 2, 2)
	m := newTestJointWB(v, 55)
	sink := ag.NewGradSink()
	tape := ag.NewArenaTape()
	tape.SetSink(sink)
	params := m.Params()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := insts[i%len(insts)]
		tape.Reset()
		out := m.Forward(tape, inst, Train)
		loss := Loss(tape, out, inst)
		tape.Backward(loss)
		sink.MergeInto(params)
		for _, p := range params {
			p.ZeroGrad()
		}
	}
}

// BenchmarkTrainStepFreshTape is the pre-arena reference: a new heap tape
// per step, gradients straight into Param.Grad.
func BenchmarkTrainStepFreshTape(b *testing.B) {
	insts, v := testData(b, 2, 2)
	m := newTestJointWB(v, 55)
	params := m.Params()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := insts[i%len(insts)]
		tape := ag.NewTape()
		out := m.Forward(tape, inst, Train)
		loss := Loss(tape, out, inst)
		tape.Backward(loss)
		for _, p := range params {
			p.ZeroGrad()
		}
	}
}
