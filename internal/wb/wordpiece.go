package wb

import (
	"webbrief/internal/corpus"
	"webbrief/internal/textproc"
)

// NewInstanceWP encodes a page at the SUBWORD level: every word is split
// into WordPiece pieces (§IV-A3 tokenises with BERT's WordPieces) and the
// word-level BIO labels are projected onto piece positions — a B word
// becomes B on its first piece and I on its continuations. The instance's
// vocabulary is the WordPiece subword vocabulary, so models built for
// word-level instances run unchanged on subword ones.
func NewInstanceWP(p *corpus.Page, wp *textproc.WordPiece, maxTokens int) *Instance {
	v := wp.Vocab()
	inst := &Instance{Page: p, Topic: p.Topic}
	for si, sent := range p.Sentences {
		inst.ClsIdx = append(inst.ClsIdx, len(inst.IDs))
		inst.IDs = append(inst.IDs, textproc.ClsID)
		inst.Tags = append(inst.Tags, corpus.TagO)
		inst.SentOf = append(inst.SentOf, si)
		inst.Segments = append(inst.Segments, si%2)
		pieces, wordSpans := wp.Tokenize(sent.Tokens)
		pieceTags := projectTags(sent, wordSpans, len(pieces))
		for pi, piece := range pieces {
			inst.IDs = append(inst.IDs, v.ID(piece))
			inst.Tags = append(inst.Tags, pieceTags[pi])
			inst.SentOf = append(inst.SentOf, si)
			inst.Segments = append(inst.Segments, si%2)
		}
		info := 0
		if sent.Informative {
			info = 1
		}
		inst.SentInfo = append(inst.SentInfo, info)
	}
	// Topic targets in subword space.
	topicPieces, _ := wp.Tokenize(p.Topic)
	topicIDs := v.IDs(topicPieces)
	inst.TopicIn = append([]int{textproc.BosID}, topicIDs...)
	inst.TopicOut = append(append([]int{}, topicIDs...), textproc.EosID)

	if maxTokens > 0 && len(inst.IDs) > maxTokens {
		inst.IDs = inst.IDs[:maxTokens]
		inst.Tags = inst.Tags[:maxTokens]
		inst.SentOf = inst.SentOf[:maxTokens]
		inst.Segments = inst.Segments[:maxTokens]
		last := inst.SentOf[len(inst.SentOf)-1]
		var cls []int
		for _, c := range inst.ClsIdx {
			if c < maxTokens {
				cls = append(cls, c)
			}
		}
		inst.ClsIdx = cls
		inst.SentInfo = inst.SentInfo[:last+1]
	}
	return inst
}

// projectTags maps a sentence's word-level attribute span to piece-level
// BIO tags using the word→piece spans from WordPiece.Tokenize.
func projectTags(sent corpus.Sentence, wordSpans [][2]int, numPieces int) []int {
	tags := make([]int, numPieces)
	if sent.Attr == nil {
		return tags
	}
	for wi := sent.AttrStart; wi < sent.AttrEnd && wi < len(wordSpans); wi++ {
		span := wordSpans[wi]
		for pi := span[0]; pi < span[1]; pi++ {
			if wi == sent.AttrStart && pi == span[0] {
				tags[pi] = corpus.TagB
			} else {
				tags[pi] = corpus.TagI
			}
		}
	}
	return tags
}

// NewInstancesWP encodes a batch of pages at the subword level.
func NewInstancesWP(pages []*corpus.Page, wp *textproc.WordPiece, maxTokens int) []*Instance {
	out := make([]*Instance, len(pages))
	for i, p := range pages {
		out[i] = NewInstanceWP(p, wp, maxTokens)
	}
	return out
}

// LearnCorpusWordPiece fits a WordPiece vocabulary on a page set, the
// subword analogue of corpus.BuildVocab.
func LearnCorpusWordPiece(pages []*corpus.Page, maxSize int) *textproc.WordPiece {
	return textproc.LearnWordPiece(corpus.WordCounts(pages), maxSize)
}
