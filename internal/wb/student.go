package wb

import (
	"fmt"

	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// SectionPredictor32 is the float32 serving form of SectionPredictor,
// scoring sections with the same Markov dependency mechanism (or the
// independent per-sentence logistic when NoMarkov is set).
type SectionPredictor32 struct {
	W1       *nn.Bilinear32
	W2       *nn.Bilinear32
	Indep    *nn.Linear32
	NoMarkov bool
}

// newSectionPredictor32From converts a trained SectionPredictor to float32.
// Only the active scoring path's parameters exist on the float64 side with
// trained values, but both conversions are cheap and keep the struct total.
func newSectionPredictor32From(sp *SectionPredictor) *SectionPredictor32 {
	return &SectionPredictor32{
		W1:       nn.NewBilinear32From(sp.W1),
		W2:       nn.NewBilinear32From(sp.W2),
		Indep:    nn.NewLinear32From(sp.Indep),
		NoMarkov: sp.NoMarkov,
	}
}

// Forward returns the m×1 section logits for sentence representations sent.
func (sp *SectionPredictor32) Forward(t *ag.Tape32, sent *tensor.Matrix32) *tensor.Matrix32 {
	if sp.NoMarkov {
		return sp.Indep.Forward(t, sent)
	}
	m, dim := sent.Rows, sent.Cols
	var prev, next *tensor.Matrix32
	if m == 1 {
		prev = t.AllocValue(1, dim)
		next = t.AllocValue(1, dim)
	} else {
		prev = t.ConcatRows(t.AllocValue(1, dim), t.SliceRows(sent, 0, m-1))
		next = t.ConcatRows(t.SliceRows(sent, 1, m), t.AllocValue(1, dim))
	}
	// Row-wise bilinear forms: sum over columns of (prev·W1) ⊙ cur etc.
	s1 := rowSum32(t, t.Mul(t.MatMul(prev, sp.W1.W), sent))
	s2 := rowSum32(t, t.Mul(t.MatMul(sent, sp.W2.W), next))
	return t.Add(s1, s2)
}

// Output32 is what the student's forward pass hands the serving layer: the
// extraction and section heads plus the memory for the topic decode. The
// hidden representations the float64 Output exposes for distillation are
// not carried — the student never trains.
type Output32 struct {
	TagLogits *tensor.Matrix32 // l×3 BIO logits
	SecLogits *tensor.Matrix32 // m×1 informative-section logits
	Memory    *tensor.Matrix32 // decoder attention memory for free decoding
	Dec       *nn.AttnDecoder32
}

// JointWB32 is the float32 serving (student) form of JointWB over a GloVe
// encoder: the same signal flow as JointWB.Forward in Eval mode — section
// scoring, both Bi-LSTM encoders, the first decode pass and both dual-aware
// attentions — executed entirely on the float32 kernel tier. It holds no
// gradients, supports no training modes, and is built from a trained
// float64 model by ConvertJointWB (or loaded from a student snapshot).
type JointWB32 struct {
	Cfg Config
	Emb *nn.Embedding32 // GloVe word vectors (shared sentence mean-pool)

	ExtLSTM *nn.BiLSTM32
	GenLSTM *nn.BiLSTM32
	Sec     *SectionPredictor32

	Dec    *nn.AttnDecoder32
	MemPr1 *nn.Linear32
	MemPr2 *nn.Linear32

	WCE  *nn.Linear32
	WQ   *nn.Linear32
	AttE *nn.Bilinear32
	TagW *nn.Linear32

	WCG  *nn.Linear32
	WE   *nn.Linear32
	AttG *nn.Linear32
}

// ConvertJointWB lowers a trained Joint-WB teacher to its float32 student.
// Only the GloVe encoder regime is supported — the transformer encoders
// have no float32 mirror — so callers must be ready to fall back to the
// teacher when the conversion is refused.
func ConvertJointWB(m *JointWB) (*JointWB32, error) {
	g, ok := m.Enc.(*GloVeEncoder)
	if !ok {
		return nil, fmt.Errorf("wb: float32 student requires a GloVe encoder, have %T", m.Enc)
	}
	return &JointWB32{
		Cfg:     m.Cfg,
		Emb:     nn.NewEmbedding32From(g.Emb),
		ExtLSTM: nn.NewBiLSTM32From(m.ExtLSTM),
		GenLSTM: nn.NewBiLSTM32From(m.GenLSTM),
		Sec:     newSectionPredictor32From(m.Sec),
		Dec:     nn.NewAttnDecoder32From(m.Dec),
		MemPr1:  nn.NewLinear32From(m.MemPr1),
		MemPr2:  nn.NewLinear32From(m.MemPr2),
		WCE:     nn.NewLinear32From(m.WCE),
		WQ:      nn.NewLinear32From(m.WQ),
		AttE:    nn.NewBilinear32From(m.AttE),
		TagW:    nn.NewLinear32From(m.TagW),
		WCG:     nn.NewLinear32From(m.WCG),
		WE:      nn.NewLinear32From(m.WE),
		AttG:    nn.NewLinear32From(m.AttG),
	}, nil
}

// Name mirrors Model.Name for logs and snapshots.
func (m *JointWB32) Name() string { return "Joint-WB/f32" }

// encodeDoc mirrors GloVeEncoder.EncodeDoc: token embeddings plus
// mean-pooled sentence representations.
func (m *JointWB32) encodeDoc(t *ag.Tape32, inst *Instance) (tok, sent *tensor.Matrix32) {
	tok = m.Emb.Forward(t, inst.IDs)
	sent = t.MatMul(meanPoolMatrix32(t, inst), tok)
	return tok, sent
}

// Forward runs the student's Eval-mode forward on one instance, mirroring
// JointWB.Forward with mode == Eval (no dropout, greedy first decode pass).
func (m *JointWB32) Forward(t *ag.Tape32, inst *Instance) *Output32 {
	tok, sent := m.encodeDoc(t, inst)
	secLogits := m.Sec.Forward(t, sent)
	cE := m.ExtLSTM.Forward(t, tok)  // l×2h
	cG := m.GenLSTM.Forward(t, sent) // m×2h
	return m.forwardTail(t, inst, secLogits, cE, cG)
}

// ForwardBatchEval runs the student forward for several instances on one
// tape, fusing the two Bi-LSTM recurrences across the batch exactly like
// JointWB.ForwardBatchEval.
func (m *JointWB32) ForwardBatchEval(t *ag.Tape32, insts []*Instance) []*Output32 {
	toks := make([]*tensor.Matrix32, len(insts))
	sents := make([]*tensor.Matrix32, len(insts))
	secs := make([]*tensor.Matrix32, len(insts))
	for i, inst := range insts {
		toks[i], sents[i] = m.encodeDoc(t, inst)
		secs[i] = m.Sec.Forward(t, sents[i])
	}
	cEs := m.ExtLSTM.ForwardBatch(t, toks)
	cGs := m.GenLSTM.ForwardBatch(t, sents)
	outs := make([]*Output32, len(insts))
	for i, inst := range insts {
		outs[i] = m.forwardTail(t, inst, secs[i], cEs[i], cGs[i])
	}
	return outs
}

// forwardTail is everything downstream of the base encoders, mirroring
// JointWB.forwardTail in Eval mode op for op.
func (m *JointWB32) forwardTail(t *ag.Tape32, inst *Instance, secLogits, cE, cG *tensor.Matrix32) *Output32 {
	secProbs := t.Sigmoid(secLogits)

	// First decoding pass over plain C_G: topic states Q and Q^b.
	mem1 := m.MemPr1.Forward(t, cG)
	_, topicStates := m.Dec.GreedyWithStates(t, mem1, textproc.BosID, textproc.EosID, m.Cfg.TopicLen)
	qb := t.Tanh(m.WQ.Forward(t, t.MeanRows(topicStates))) // 1×h

	// Section-and-topic dual-aware token representations (Ĉ_E).
	pTok := t.GatherRows(secProbs, inst.SentOf)             // l×1
	cEb := t.Tanh(m.WCE.Forward(t, t.ConcatCols(cE, pTok))) // l×h
	aE := softmaxOverRows32(t, m.AttE.Scores(t, cEb, qb))   // l×1
	topicCtx := t.MatMul(aE, qb)                            // l×h
	tagLogits := m.TagW.Forward(t, t.ConcatCols(cE, topicCtx))

	// Section-and-key-attributes dual-aware sentence representations (Ĉ_G).
	eb := t.Tanh(m.WE.Forward(t, t.MeanRows(cE))) // 1×h
	cGb := t.Tanh(m.WCG.Forward(t, t.ConcatCols(cG, secProbs)))
	ebRows := t.MatMul(onesCol32(t, cGb.Rows), eb) // m×h broadcast
	aG := softmaxOverRows32(t, m.AttG.Forward(t, t.Mul(cGb, ebRows)))
	attrCtx := t.MatMul(aG, eb) // m×h
	mem2 := m.MemPr2.Forward(t, t.ConcatCols(cG, attrCtx))

	return &Output32{
		TagLogits: tagLogits,
		SecLogits: secLogits,
		Memory:    mem2,
		Dec:       m.Dec,
	}
}

// PredictTags32 returns the argmax BIO tag sequence from a student output.
func PredictTags32(out *Output32) []int {
	if out.TagLogits == nil {
		return nil
	}
	tags := make([]int, out.TagLogits.Rows)
	for i := range tags {
		tags[i] = out.TagLogits.ArgmaxRow(i)
	}
	return tags
}

// PredictSections32 thresholds the section logits at 0.5 probability.
func PredictSections32(out *Output32) []int {
	if out.SecLogits == nil {
		return nil
	}
	secs := make([]int, out.SecLogits.Rows)
	for i := range secs {
		if out.SecLogits.At(i, 0) >= 0 { // sigmoid(x) >= 0.5 ⟺ x >= 0
			secs[i] = 1
		}
	}
	return secs
}

// meanPoolMatrix32 mirrors meanPoolMatrix on the float32 tape. The count
// scratch accumulates in the matrix's own float32 cells; token counts per
// sentence are small integers, exactly representable.
func meanPoolMatrix32(t *ag.Tape32, inst *Instance) *tensor.Matrix32 {
	m := t.AllocValue(inst.NumSents(), inst.NumTokens())
	counts := t.AllocValue(1, inst.NumSents()).Data
	for _, s := range inst.SentOf {
		counts[s]++
	}
	for i, s := range inst.SentOf {
		m.Set(s, i, 1/counts[s])
	}
	return m
}

// softmaxOverRows32 applies a softmax across the ROWS of a column vector.
func softmaxOverRows32(t *ag.Tape32, col *tensor.Matrix32) *tensor.Matrix32 {
	return t.Transpose(t.SoftmaxRows(t.Transpose(col)))
}

// rowSum32 reduces each row of a to a single column by multiplying with a
// ones vector.
func rowSum32(t *ag.Tape32, a *tensor.Matrix32) *tensor.Matrix32 {
	return t.MatMul(a, onesCol32(t, a.Cols))
}

// onesCol32 returns an n×1 all-ones matrix from the tape arena.
func onesCol32(t *ag.Tape32, n int) *tensor.Matrix32 {
	ones := t.AllocValue(n, 1)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	return ones
}
