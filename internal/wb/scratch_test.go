package wb

import (
	"reflect"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/eval"
	"webbrief/internal/textproc"
)

// heapTapeBrief is the pre-scratch briefing path kept as the equivalence
// reference: a fresh heap tape per stage, heap log-softmax and the
// sort-everything BeamSearch. The fast path must reproduce it byte for byte.
func heapTapeBrief(m Model, inst *Instance, v *textproc.Vocab, beamWidth int) *Brief {
	b := &Brief{}
	t := ag.NewTape()
	out := m.Forward(t, inst, Eval)
	if tags := PredictTags(out); tags != nil {
		for _, sp := range eval.SpansFromBIO(tags) {
			var words []string
			for i := sp.Start; i < sp.End; i++ {
				words = append(words, v.Token(inst.IDs[i]))
			}
			b.Attributes = append(b.Attributes, words)
		}
	}
	b.Sections = PredictSections(out)

	t2 := ag.NewTape()
	out2 := m.Forward(t2, inst, Eval)
	if out2.Memory != nil && out2.Dec != nil {
		var ids []int
		if beamWidth <= 1 {
			ids = out2.Dec.Greedy(t2, out2.Memory, textproc.BosID, textproc.EosID, topicMaxLen)
		} else {
			ids = out2.Dec.BeamSearch(t2, out2.Memory, textproc.BosID, textproc.EosID, beamWidth, topicMaxLen)
		}
		if ids != nil {
			b.Topic = v.Tokens(ids)
		}
	}
	return b
}

// TestScratchBriefMatchesHeapTape drives the allocation-free path — nograd
// arena tape, pack-buffer matmuls, beam scratch — against the heap-tape
// reference on trained models and asserts identical briefings, including
// a reused scratch across instances and both beam and greedy decoding.
func TestScratchBriefMatchesHeapTape(t *testing.T) {
	insts, v := testData(t, 2, 4)
	m := newTestJointWB(v, 311)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	TrainModel(m, insts, tc)

	for _, beam := range []int{1, 4} {
		s := NewInferScratchFor(v, beam)
		for i, inst := range insts {
			want := heapTapeBrief(m, inst, v, beam)
			got := MakeBriefWith(m, inst, v, beam, s)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("beam %d instance %d: fast path diverges:\n heap %+v\nfast %+v", beam, i, want, got)
			}
			// The pooled wrappers must ride the same path.
			if pooled := MakeBrief(m, inst, v, beam); !reflect.DeepEqual(want, pooled) {
				t.Fatalf("beam %d instance %d: pooled wrapper diverges", beam, i)
			}
		}
	}
}

// TestInferScratchAllocs is the allocation regression gate for the fast
// path: a warmed workspace must brief with only the output-assembly
// allocations (the Brief, its token strings, small slices) — orders of
// magnitude under the ~17k-alloc heap-tape path this PR replaced.
func TestInferScratchAllocs(t *testing.T) {
	insts, v := testData(t, 1, 2)
	m := newTestJointWB(v, 313)
	inst := insts[0]
	const beam = 4
	s := NewInferScratchFor(v, beam)
	for i := 0; i < 2; i++ { // warm arena, pack and beam buffers
		MakeBriefWith(m, inst, v, beam, s)
	}
	allocs := testing.AllocsPerRun(10, func() {
		MakeBriefWith(m, inst, v, beam, s)
	})
	if allocs > 300 {
		t.Fatalf("warm MakeBriefWith allocates %.0f per run, want <= 300", allocs)
	}
}

// TestDevLossMatchesScratchPath pins the eval helpers rewired onto the
// scratch pool to the values a gradient-capable tape computes.
func TestDevLossMatchesScratchPath(t *testing.T) {
	insts, v := testData(t, 2, 2)
	m := newTestJointWB(v, 317)
	want := func() float64 {
		var sum float64
		for _, inst := range insts {
			tp := ag.NewTape()
			out := m.Forward(tp, inst, Distill)
			sum += Loss(tp, out, inst).Value.Data[0]
		}
		return sum / float64(len(insts))
	}()
	if got := DevLoss(m, insts); got != want {
		t.Fatalf("DevLoss on scratch path = %v, want %v", got, want)
	}
}

// BenchmarkMakeBriefScratch measures the warm fast path in isolation.
func BenchmarkMakeBriefScratch(b *testing.B) {
	insts, v := testData(b, 1, 2)
	m := newTestJointWB(v, 313)
	inst := insts[0]
	s := NewInferScratchFor(v, 4)
	MakeBriefWith(m, inst, v, 4, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MakeBriefWith(m, inst, v, 4, s)
	}
}
