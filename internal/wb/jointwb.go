package wb

import (
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/textproc"
)

// Config sizes a Joint-WB model (and the baselines that share its parts).
type Config struct {
	Hidden   int     // LSTM hidden size per direction (paper: 108)
	Dropout  float64 // dropout rate (paper: 0.2)
	BeamSize int     // beam width at inference (paper: 200)
	TopicLen int     // maximum decoded topic length (paper beam depth: 4)
	Seed     int64
}

// DefaultConfig returns the reproduction-scale hyperparameters. The paper's
// values (hidden 108, beam 200) are scaled down with the corpus; dropout and
// depth follow §IV-A5.
func DefaultConfig() Config {
	return Config{Hidden: 24, Dropout: 0.2, BeamSize: 8, TopicLen: 4, Seed: 1}
}

// SectionPredictor is the informative section predictor P of §III-C. It
// scores sentence j from its neighbours with the Markov dependency
// mechanism: score_j = c⁰_{j-1}·W¹·c⁰_jᵀ + c⁰_j·W²·c⁰_{j+1}ᵀ, with zero
// vectors past the document boundary. Setting NoMarkov replaces the
// neighbour-dependent scoring with an independent per-sentence logistic
// (score_j = c⁰_j·w) — the ablation of the Markov dependency design choice.
type SectionPredictor struct {
	W1       *nn.Bilinear
	W2       *nn.Bilinear
	Indep    *nn.Linear
	NoMarkov bool
}

// NewSectionPredictor builds P over dim-wide sentence representations.
func NewSectionPredictor(name string, dim int, rng *rand.Rand) *SectionPredictor {
	return &SectionPredictor{
		W1:    nn.NewBilinear(name+".w1", dim, dim, rng),
		W2:    nn.NewBilinear(name+".w2", dim, dim, rng),
		Indep: nn.NewLinear(name+".indep", dim, 1, rng),
	}
}

// Params implements nn.Layer. Only the active scoring path's parameters
// are exposed, so the flag must be set before the optimizer is built.
func (sp *SectionPredictor) Params() []*ag.Param {
	if sp.NoMarkov {
		return sp.Indep.Params()
	}
	return nn.CollectParams(sp.W1, sp.W2)
}

// Forward returns the m×1 section logits for sentence representations sent.
func (sp *SectionPredictor) Forward(t *ag.Tape, sent *ag.Node) *ag.Node {
	if sp.NoMarkov {
		return sp.Indep.Forward(t, sent)
	}
	m, dim := sent.Rows(), sent.Cols()
	var prev, next *ag.Node
	if m == 1 {
		prev = zeroRow(t, dim)
		next = zeroRow(t, dim)
	} else {
		prev = t.ConcatRows(zeroRow(t, dim), t.SliceRows(sent, 0, m-1))
		next = t.ConcatRows(t.SliceRows(sent, 1, m), zeroRow(t, dim))
	}
	// Row-wise bilinear forms: sum over columns of (prev·W1) ⊙ cur etc.
	s1 := rowSum(t, t.Mul(t.MatMul(prev, t.Use(sp.W1.W)), sent))
	s2 := rowSum(t, t.Mul(t.MatMul(sent, t.Use(sp.W2.W)), next))
	return t.Add(s1, s2)
}

// JointWB is the full joint model of §III-C: the extractor E, generator G
// and section predictor P over a shared document encoder, connected by the
// signal enhancement and exchange mechanisms.
//
// Signal flow per forward pass:
//  1. The encoder produces token reps C and sentence reps C⁰.
//  2. P scores sections from C⁰ (Markov dependency); the sigmoid
//     probabilities are the differentiable section signal Φ(p).
//  3. E's Bi-LSTM yields C_E; G's Bi-LSTM yields C_G.
//  4. A first decoding pass over C_G yields topic states Q and the
//     integrated topic representation Q^b (mean-pooled — the paper
//     concatenates a fixed-length topic, pooling handles variable length).
//  5. Section-and-topic dual-aware attention re-weights token positions
//     toward Q^b and the section signal, giving Ĉ_E → BIO tag logits.
//  6. Section-and-key-attributes dual-aware attention re-weights sentence
//     positions toward the integrated attribute representation E^b and the
//     section signal, giving Ĉ_G → the memory for the final topic decode.
type JointWB struct {
	Cfg Config
	Enc DocEncoder

	ExtLSTM *nn.BiLSTM // E's encoder over token reps
	GenLSTM *nn.BiLSTM // G's encoder over sentence reps
	Sec     *SectionPredictor

	Dec    *nn.AttnDecoder // shared decoder for both passes
	MemPr1 *nn.Linear      // projects C_G to decoder memory space
	MemPr2 *nn.Linear      // projects Ĉ_G to decoder memory space

	WCE  *nn.Linear   // section-dependent token reps C_E^b
	WQ   *nn.Linear   // integrated topic representation Q^b
	AttE *nn.Bilinear // A_E = softmax(C_E^b·W_AE·Q^bᵀ)
	TagW *nn.Linear   // tag output over Ĉ_E

	WCG  *nn.Linear // section-dependent sentence reps C_G^b
	WE   *nn.Linear // integrated attribute representation E^b
	AttG *nn.Linear // A_G = softmax((C_G^b ⊙ E^b)·W_AG)

	rng *rand.Rand
}

// NewJointWB assembles the joint model over enc with vocabulary size vocab.
func NewJointWB(name string, enc DocEncoder, vocab int, cfg Config) *JointWB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hidden
	d := enc.Dim()
	bi := 2 * h
	m := &JointWB{
		Cfg:     cfg,
		Enc:     enc,
		ExtLSTM: nn.NewBiLSTM(name+".ext", d, h, rng),
		GenLSTM: nn.NewBiLSTM(name+".gen", d, h, rng),
		Sec:     NewSectionPredictor(name+".sec", d, rng),
		Dec:     nn.NewAttnDecoder(name+".dec", vocab, h, h, h, rng),
		MemPr1:  nn.NewLinear(name+".mem1", bi, h, rng),
		MemPr2:  nn.NewLinear(name+".mem2", bi+h, h, rng),
		WCE:     nn.NewLinear(name+".wce", bi+1, h, rng),
		WQ:      nn.NewLinear(name+".wq", h, h, rng),
		AttE:    nn.NewBilinear(name+".attE", h, h, rng),
		TagW:    nn.NewLinear(name+".tag", bi+h, 3, rng),
		WCG:     nn.NewLinear(name+".wcg", bi+1, h, rng),
		WE:      nn.NewLinear(name+".we", bi, h, rng),
		AttG:    nn.NewLinear(name+".attG", h, 1, rng),
		rng:     rng,
	}
	return m
}

// Name implements Model.
func (m *JointWB) Name() string { return "Joint-WB" }

// Params implements nn.Layer.
func (m *JointWB) Params() []*ag.Param {
	return nn.CollectParams(m.Enc, m.ExtLSTM, m.GenLSTM, m.Sec, m.Dec,
		m.MemPr1, m.MemPr2, m.WCE, m.WQ, m.AttE, m.TagW, m.WCG, m.WE, m.AttG)
}

// Forward implements Model.
func (m *JointWB) Forward(t *ag.Tape, inst *Instance, mode Mode) *Output {
	tok, sent := m.Enc.EncodeDoc(t, inst)
	if mode == Train && m.Cfg.Dropout > 0 {
		tok = t.Dropout(tok, m.Cfg.Dropout, m.rng)
		sent = t.Dropout(sent, m.Cfg.Dropout, m.rng)
	}

	// P: Markov-dependency section logits.
	secLogits := m.Sec.Forward(t, sent)

	// E and G base encoders.
	cE := m.ExtLSTM.Forward(t, tok)  // l×2h
	cG := m.GenLSTM.Forward(t, sent) // m×2h

	return m.forwardTail(t, inst, mode, secLogits, cE, cG)
}

// ForwardBatchEval runs the Eval-mode forward for several instances on one
// tape, fusing the two Bi-LSTM recurrences across the batch (the dominant
// per-request serial cost) while everything whose shape is per-document —
// encoding, section scoring, the decode passes and the dual-aware
// attentions — runs per instance. Every op in both halves computes output
// rows independently, so each returned Output holds values identical to a
// lone Forward(t, inst, Eval) for that instance (up to the sign of zero,
// which no downstream argmax/threshold/ordering can observe).
func (m *JointWB) ForwardBatchEval(t *ag.Tape, insts []*Instance) []*Output {
	toks := make([]*ag.Node, len(insts))
	sents := make([]*ag.Node, len(insts))
	secs := make([]*ag.Node, len(insts))
	for i, inst := range insts {
		toks[i], sents[i] = m.Enc.EncodeDoc(t, inst)
		secs[i] = m.Sec.Forward(t, sents[i])
	}
	cEs := m.ExtLSTM.ForwardBatch(t, toks)
	cGs := m.GenLSTM.ForwardBatch(t, sents)
	outs := make([]*Output, len(insts))
	for i, inst := range insts {
		outs[i] = m.forwardTail(t, inst, Eval, secs[i], cEs[i], cGs[i])
	}
	return outs
}

// forwardTail is everything downstream of the base encoders: the first
// decode pass, both dual-aware attentions and the output assembly. Shared
// verbatim by the serial and batched forwards so they cannot drift.
func (m *JointWB) forwardTail(t *ag.Tape, inst *Instance, mode Mode, secLogits, cE, cG *ag.Node) *Output {
	secProbs := t.Sigmoid(secLogits)

	// First decoding pass over plain C_G: topic states Q and Q^b.
	mem1 := m.MemPr1.Forward(t, cG)
	var topicStates *ag.Node
	if mode.TeacherForced() {
		_, topicStates = m.Dec.ForwardStates(t, mem1, inst.TopicIn)
	} else {
		_, topicStates = m.Dec.GreedyWithStates(t, mem1, textproc.BosID, textproc.EosID, m.Cfg.TopicLen)
	}
	qb := t.Tanh(m.WQ.Forward(t, t.MeanRows(topicStates))) // 1×h

	// Section-and-topic dual-aware token representations (Ĉ_E).
	pTok := sentProbsToTokens(t, secProbs, inst)            // l×1
	cEb := t.Tanh(m.WCE.Forward(t, t.ConcatCols(cE, pTok))) // l×h
	aE := softmaxOverRows(t, m.AttE.Scores(t, cEb, qb))     // l×1
	topicCtx := t.MatMul(aE, qb)                            // l×h
	tagLogits := m.TagW.Forward(t, t.ConcatCols(cE, topicCtx))

	// Section-and-key-attributes dual-aware sentence representations (Ĉ_G).
	eb := t.Tanh(m.WE.Forward(t, t.MeanRows(cE))) // 1×h
	cGb := t.Tanh(m.WCG.Forward(t, t.ConcatCols(cG, secProbs)))
	ebRows := t.MatMul(t.Const(onesCol(t, cGb.Rows())), eb) // m×h broadcast
	aG := softmaxOverRows(t, m.AttG.Forward(t, t.Mul(cGb, ebRows)))
	attrCtx := t.MatMul(aG, eb) // m×h
	mem2 := m.MemPr2.Forward(t, t.ConcatCols(cG, attrCtx))

	out := &Output{
		TokenH:      cE,
		SentH:       cG,
		TopicStates: topicStates,
		TagLogits:   tagLogits,
		SecLogits:   secLogits,
		Memory:      mem2,
		Dec:         m.Dec,
	}
	if mode.TeacherForced() {
		out.TopicLogits = m.Dec.ForwardTeacherForcing(t, mem2, inst.TopicIn)
	}
	return out
}
