package wb

import (
	"math/rand"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/eval"
	"webbrief/internal/tensor"
)

func TestAttributeLabelsInventory(t *testing.T) {
	labels := AttributeLabels()
	if len(labels) < 10 {
		t.Fatalf("only %d labels", len(labels))
	}
	seen := map[string]bool{}
	for i, l := range labels {
		if seen[l] {
			t.Fatalf("duplicate label %q", l)
		}
		seen[l] = true
		if i > 0 && labels[i-1] >= l {
			t.Fatal("labels not sorted")
		}
	}
	for _, want := range []string{"price", "author", "salary"} {
		if !seen[want] {
			t.Fatalf("missing label %q", want)
		}
	}
}

func TestNamerForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewAttrNamer("namer", []string{"a", "b", "c"}, 8, 50, rng)
	tp := ag.NewTape()
	tokenH := tp.Const(tensor.Randn(10, 8, 1, rng))
	ids := make([]int, 10)
	spans := []eval.Span{{Start: 0, End: 2}, {Start: 5, End: 6}}
	logits := n.Forward(tp, tokenH, ids, spans)
	if logits.Rows() != 2 || logits.Cols() != 3 {
		t.Fatalf("logits %dx%d", logits.Rows(), logits.Cols())
	}
	if n.LabelID("b") != 1 || n.LabelID("zzz") != -1 {
		t.Fatal("LabelID")
	}
}

func TestSpanPoolMatrixAverages(t *testing.T) {
	// Span [4,6) in 12 tokens pools over [2,8) with the ±2 context window.
	m := spanPoolMatrix([]eval.Span{{Start: 4, End: 6}}, 12)
	for j := 2; j < 8; j++ {
		if m.At(0, j) != 1.0/6 {
			t.Fatalf("pool weight at %d: %v", j, m.At(0, j))
		}
	}
	if m.At(0, 1) != 0 || m.At(0, 8) != 0 {
		t.Fatal("context window leaked")
	}
	// Clipping at document boundaries.
	m2 := spanPoolMatrix([]eval.Span{{Start: 0, End: 1}}, 2)
	if m2.At(0, 0) != 0.5 || m2.At(0, 1) != 0.5 {
		t.Fatalf("boundary clip: %v", m2)
	}
}

func TestNamerLearnsLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	insts, v := testData(t, 3, 6)
	m := newTestJointWB(v, 21)
	tc := DefaultTrainConfig()
	tc.Epochs = 15
	TrainModel(m, insts, tc)

	labels := AttributeLabels()
	rng := rand.New(rand.NewSource(22))
	namer := NewAttrNamer("namer", labels, 32, v.Size(), rng) // 2*hidden of the test model
	ntc := DefaultTrainConfig()
	ntc.Epochs = 20
	ntc.LR = 1e-2
	losses := TrainNamer(namer, m, insts, ntc)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("namer loss not decreasing: %v", losses)
	}
	acc := EvaluateNamer(namer, m, insts)
	if acc < 70 {
		t.Fatalf("namer accuracy %.1f too low", acc)
	}
}

func TestMakeNamedBrief(t *testing.T) {
	insts, v := testData(t, 2, 2)
	m := newTestJointWB(v, 23)
	namer := NewAttrNamer("namer", AttributeLabels(), 32, v.Size(), rand.New(rand.NewSource(24)))
	brief, named := MakeNamedBrief(m, namer, insts[0], v, 2)
	if brief == nil {
		t.Fatal("nil brief")
	}
	for _, na := range named {
		if na.Name == "" || len(na.Tokens) == 0 {
			t.Fatalf("malformed named attribute: %+v", na)
		}
		if namer.LabelID(na.Name) < 0 {
			t.Fatalf("predicted name %q outside inventory", na.Name)
		}
	}
}

func TestNamerSkipsUnlabelledInstances(t *testing.T) {
	// Instances built from raw HTML have no Page and must be skipped
	// silently during namer training.
	_, v := testData(t, 1, 1)
	inst := InstanceFromHTML("<p>some page content here</p>", v, 0)
	m := newTestJointWB(v, 25)
	namer := NewAttrNamer("namer", AttributeLabels(), 32, v.Size(), rand.New(rand.NewSource(26)))
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	losses := TrainNamer(namer, m, []*Instance{inst}, tc)
	if losses[0] != 0 {
		t.Fatalf("unlabelled-only training should produce zero loss, got %v", losses)
	}
}
