package wb

import (
	"reflect"
	"sync"
	"testing"
)

// TestCloneForServing checks the three properties serve.Pool relies on:
// clones brief byte-identically to the original, share the embedding table,
// and keep every other parameter private.
func TestCloneForServing(t *testing.T) {
	insts, v := testData(t, 2, 4)
	m := newTestJointWB(v, 51)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	TrainModel(m, insts, tc)

	c, err := CloneForServing(m, v)
	if err != nil {
		t.Fatal(err)
	}

	// Identical briefings on every instance.
	for i, inst := range insts {
		want := MakeBrief(m, inst, v, 2)
		got := MakeBrief(c, inst, v, 2)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("instance %d: clone brief diverges:\n orig %+v\nclone %+v", i, want, got)
		}
	}

	// The embedding matrix is aliased, not copied.
	om := m.Enc.(*GloVeEncoder).Emb.Table.Value
	cm := c.Enc.(*GloVeEncoder).Emb.Table.Value
	if om != cm {
		t.Fatal("clone must share the original's embedding matrix")
	}

	// All non-embedding parameters are private copies with equal values.
	op, cp := m.Params(), c.Params()
	if len(op) != len(cp) {
		t.Fatalf("param count: orig %d, clone %d", len(op), len(cp))
	}
	private := 0
	for i := range op {
		if op[i].Value == cp[i].Value {
			continue // the shared embedding
		}
		private++
		if !reflect.DeepEqual(op[i].Value.Data, cp[i].Value.Data) {
			t.Fatalf("param %d (%s): clone values diverge", i, op[i].Name)
		}
	}
	if private != len(op)-1 {
		t.Fatalf("expected exactly 1 shared parameter, got %d", len(op)-private)
	}
}

// TestCloneForServingConcurrent runs the original and clones side by side
// under the race detector: eval forwards on distinct replicas must not
// contend on anything, including the shared embedding.
func TestCloneForServingConcurrent(t *testing.T) {
	insts, v := testData(t, 2, 2)
	m := newTestJointWB(v, 7)

	models := []*JointWB{m}
	for i := 0; i < 3; i++ {
		c, err := CloneForServing(m, v)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, c)
	}

	var wg sync.WaitGroup
	briefs := make([]*Brief, len(models))
	for i, mi := range models {
		wg.Add(1)
		go func(i int, mi *JointWB) {
			defer wg.Done()
			briefs[i] = MakeBrief(mi, insts[0], v, 2)
		}(i, mi)
	}
	wg.Wait()
	for i := 1; i < len(briefs); i++ {
		if !reflect.DeepEqual(briefs[0], briefs[i]) {
			t.Fatalf("replica %d briefs diverge", i)
		}
	}
}
