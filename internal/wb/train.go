package wb

import (
	"math"
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/eval"
	"webbrief/internal/opt"
	"webbrief/internal/textproc"
)

// TrainConfig controls supervised training of any Model.
type TrainConfig struct {
	Epochs     int
	LR         float64
	Clip       float64 // max gradient norm (paper: 0.1 clipping)
	Warmup     int     // linear warmup steps (paper: 2000, scaled here)
	DecayRate  float64 // multiplicative LR decay (paper: 0.1); 0 disables
	DecayEvery int     // steps between decays; 0 disables
	BatchSize  int     // gradient-accumulation batch (paper: 16 / 4); ≤1 = per example
	Seed       int64
}

// DefaultTrainConfig returns the paper's optimizer setting scaled to the
// corpus: Adam β1=0.9 β2=0.999, gradient clipping, linear warmup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 3, LR: 5e-3, Clip: 1.0, Warmup: 50, Seed: 1}
}

// TrainModel trains m on insts by per-example Adam steps and returns the
// mean training loss of each epoch. Page order is reshuffled every epoch
// with the config seed.
func TrainModel(m Model, insts []*Instance, tc TrainConfig) []float64 {
	optim := newOptimizer(m, tc)
	rng := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, len(insts))
	for i := range order {
		order[i] = i
	}
	batch := tc.BatchSize
	if batch < 1 {
		batch = 1
	}
	var losses []float64
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		pending := 0
		for _, idx := range order {
			inst := insts[idx]
			t := ag.NewTape()
			out := m.Forward(t, inst, Train)
			loss := Loss(t, out, inst)
			sum += loss.Value.Data[0]
			// Gradient accumulation: average the batch by scaling each
			// example's loss before Backward, then one Adam step per batch.
			t.Backward(t.Scale(loss, 1/float64(batch)))
			pending++
			if pending == batch {
				optim.Step()
				pending = 0
			}
		}
		if pending > 0 {
			optim.Step()
		}
		losses = append(losses, sum/float64(len(insts)))
	}
	return losses
}

// newOptimizer builds the Adam optimizer from a training configuration:
// the paper's warmup-then-decay schedule with global-norm clipping.
func newOptimizer(m Model, tc TrainConfig) *opt.Adam {
	optim := opt.NewAdam(m.Params(), tc.LR)
	optim.Clip = tc.Clip
	if tc.Warmup > 0 || tc.DecayEvery > 0 {
		optim.Schedule = opt.WarmupDecay{
			WarmupSteps: tc.Warmup,
			DecayRate:   tc.DecayRate,
			DecayEvery:  tc.DecayEvery,
		}
	}
	return optim
}

// DevLoss computes the mean supervised loss on a development set without
// updating parameters — the convergence signal for early stopping.
func DevLoss(m Model, insts []*Instance) float64 {
	if len(insts) == 0 {
		return 0
	}
	var sum float64
	for _, inst := range insts {
		t := ag.NewTape()
		out := m.Forward(t, inst, Distill) // teacher forcing, no dropout
		sum += Loss(t, out, inst).Value.Data[0]
	}
	return sum / float64(len(insts))
}

// TrainModelEarlyStop trains like TrainModel but evaluates the development
// loss after every epoch and stops once it has not improved for patience
// consecutive epochs — the paper's early-stopping protocol (§IV-A5:
// "training is early stopped once convergence is determined on the
// development dataset"). It returns the per-epoch training losses and the
// number of epochs actually run.
func TrainModelEarlyStop(m Model, train, dev []*Instance, tc TrainConfig, patience int) (losses []float64, epochs int) {
	optim := newOptimizer(m, tc)
	rng := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	best := math.Inf(1)
	bad := 0
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for _, idx := range order {
			inst := train[idx]
			t := ag.NewTape()
			out := m.Forward(t, inst, Train)
			loss := Loss(t, out, inst)
			sum += loss.Value.Data[0]
			t.Backward(loss)
			optim.Step()
		}
		losses = append(losses, sum/float64(len(train)))
		epochs = epoch + 1
		dl := DevLoss(m, dev)
		if dl < best-1e-6 {
			best = dl
			bad = 0
		} else {
			bad++
			if bad >= patience {
				break
			}
		}
	}
	return losses, epochs
}

// EvaluateExtraction scores m's attribute extraction on insts with strict
// span P/R/F1 (§IV-A4). Models without an extraction head score zero.
func EvaluateExtraction(m Model, insts []*Instance) eval.PRF1 {
	pred := make([][]eval.Span, len(insts))
	gold := make([][]eval.Span, len(insts))
	parallelInstances(len(insts), func(i int) {
		t := ag.NewTape()
		out := m.Forward(t, insts[i], Eval)
		pred[i] = eval.SpansFromBIO(PredictTags(out))
		gold[i] = eval.SpansFromBIO(insts[i].Tags)
	})
	return eval.SpanPRF1(pred, gold)
}

// ExtractionCorrect returns, per instance, whether the model's extraction
// was fully correct (all spans exact) — the paired-outcome input for
// McNemar's test.
func ExtractionCorrect(m Model, insts []*Instance) []bool {
	out := make([]bool, len(insts))
	for i, inst := range insts {
		t := ag.NewTape()
		o := m.Forward(t, inst, Eval)
		p := eval.SpansFromBIO(PredictTags(o))
		g := eval.SpansFromBIO(inst.Tags)
		r := eval.SpanPRF1([][]eval.Span{p}, [][]eval.Span{g})
		out[i] = r.F1 == 100
	}
	return out
}

// GeneratedTopics decodes the topic phrase for each instance and returns the
// generated and gold token strings side by side.
func GeneratedTopics(m Model, insts []*Instance, v *textproc.Vocab, beamWidth, maxLen int) (gen, gold [][]string) {
	gen = make([][]string, len(insts))
	gold = make([][]string, len(insts))
	parallelInstances(len(insts), func(i int) {
		ids := GenerateTopic(m, insts[i], beamWidth, maxLen)
		gen[i] = v.Tokens(ids)
		gold[i] = insts[i].Topic
	})
	return gen, gold
}

// EvaluateTopics scores topic generation with EM and RM (§IV-A4).
func EvaluateTopics(m Model, insts []*Instance, v *textproc.Vocab, beamWidth, maxLen int) (em, rm float64) {
	gen, gold := GeneratedTopics(m, insts, v, beamWidth, maxLen)
	return eval.TopicScores(gen, gold)
}

// TopicCorrect returns per-instance exact-match outcomes for McNemar pairing.
func TopicCorrect(m Model, insts []*Instance, v *textproc.Vocab, beamWidth, maxLen int) []bool {
	gen, gold := GeneratedTopics(m, insts, v, beamWidth, maxLen)
	out := make([]bool, len(gen))
	for i := range gen {
		out[i] = eval.ExactMatch(gen[i], gold[i])
	}
	return out
}

// EvaluateSections scores informative-section prediction accuracy (%).
func EvaluateSections(m Model, insts []*Instance) float64 {
	var pred, gold []int
	for _, inst := range insts {
		t := ag.NewTape()
		out := m.Forward(t, inst, Eval)
		p := PredictSections(out)
		if p == nil {
			return 0
		}
		pred = append(pred, p...)
		gold = append(gold, inst.SentInfo...)
	}
	return eval.Accuracy(pred, gold)
}
