package wb

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"webbrief/internal/ag"
	"webbrief/internal/eval"
	"webbrief/internal/opt"
	"webbrief/internal/textproc"
)

// TrainConfig controls supervised training of any Model.
type TrainConfig struct {
	Epochs     int
	LR         float64
	Clip       float64 // max gradient norm (paper: 0.1 clipping)
	Warmup     int     // linear warmup steps (paper: 2000, scaled here)
	DecayRate  float64 // multiplicative LR decay (paper: 0.1); 0 disables
	DecayEvery int     // steps between decays; 0 disables
	BatchSize  int     // gradient-accumulation batch (paper: 16 / 4); ≤1 = per example
	// Workers fans the forward+backward passes of each batch across
	// goroutines: 0 = GOMAXPROCS, 1 = the sequential reference
	// implementation. Results are deterministic for a fixed Workers value
	// regardless of scheduling, and match the sequential reference to
	// float-reassociation error (≤1e-9 on smoke scales).
	Workers int
	Seed    int64
}

// DefaultTrainConfig returns the paper's optimizer setting scaled to the
// corpus: Adam β1=0.9 β2=0.999, gradient clipping, linear warmup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 3, LR: 5e-3, Clip: 1.0, Warmup: 50, Seed: 1}
}

// workerCount resolves the configured fan-out.
func (tc TrainConfig) workerCount() int {
	if tc.Workers > 0 {
		return tc.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// exampleSeed derives the per-example rng seed from the base seed, epoch and
// shuffle position — never from worker identity — so dropout masks are
// identical for every Workers setting (splitmix64-style mixing).
func exampleSeed(seed int64, epoch, pos int) int64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(epoch)*0xBF58476D1CE4E5B9 + uint64(pos+1)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 32
	return int64(h)
}

// TrainEpochs is the data-parallel training engine shared by TrainModel,
// TrainModelEarlyStop and the distillation trainers. Each epoch it shuffles
// [0, n) with tc.Seed, partitions the order into gradient-accumulation
// batches of tc.BatchSize, and takes one optimizer step per batch. Within a
// batch, the forward+backward passes fan out across tc.Workers goroutines:
// worker w owns batch positions ≡ w (mod workers) in increasing order, each
// on its own arena tape with a private gradient shard, and the shards are
// merged into Param.Grad in worker order before the step — a fixed merge
// order, so training is bit-for-bit reproducible for a given Workers value
// no matter how goroutines are scheduled.
//
// lossFn must record the loss of example idx on tape t and return it. With
// Workers > 1 it is called from multiple goroutines concurrently and must
// treat shared state (the model, the instances) as read-only; per-example
// randomness should come from the tape rng (see Tape.SetRand), which the
// engine seeds from (tc.Seed, epoch, position).
//
// Every example's loss is scaled by the actual size of its batch — including
// a trailing partial batch — so the final Adam step of an epoch is weighted
// exactly like the others.
//
// after, if non-nil, runs at the end of each epoch with the mean training
// loss; returning false stops training early. It returns per-epoch mean
// losses, summed in shuffle-position order so the reported loss is also
// scheduling-independent.
func TrainEpochs(optim opt.Optimizer, params []*ag.Param, n int, tc TrainConfig,
	lossFn func(t *ag.Tape, idx int) *ag.Node,
	after func(epoch int, mean float64) bool) []float64 {
	if n == 0 {
		return nil
	}
	batch := tc.BatchSize
	if batch < 1 {
		batch = 1
	}
	workers := tc.workerCount()
	if workers > batch {
		workers = batch
	}

	tapes := make([]*ag.Tape, workers)
	sinks := make([]*ag.GradSink, workers)
	rngs := make([]*rand.Rand, workers)
	for w := range tapes {
		tapes[w] = ag.NewArenaTape()
		sinks[w] = ag.NewGradSink()
		tapes[w].SetSink(sinks[w])
		// The initial seed is immediately overridden per example inside
		// runSpan; derive it from the config seed anyway so no RNG in the
		// engine ever starts from a hard-coded constant.
		rngs[w] = rand.New(rand.NewSource(exampleSeed(tc.Seed, 0, w)))
		tapes[w].SetRand(rngs[w])
	}

	shuffle := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lossAt := make([]float64, n)

	var losses []float64
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		shuffle.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		// runSpan computes loss and sharded gradients for positions
		// pos ≡ w (mod workers) within [start, end) on worker w's tape.
		runSpan := func(w, start, end int, scale float64) {
			t := tapes[w]
			for pos := start + w; pos < end; pos += workers {
				idx := order[pos]
				t.Reset()
				rngs[w].Seed(exampleSeed(tc.Seed, epoch, pos))
				loss := lossFn(t, idx)
				lossAt[pos] = loss.Value.Data[0]
				// Gradient accumulation: average the batch by scaling each
				// example's loss before Backward, then one step per batch.
				t.Backward(t.Scale(loss, scale))
			}
		}
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			// Scale by the batch actually taken, so a trailing partial
			// batch is not under-weighted.
			scale := 1 / float64(end-start)
			if workers == 1 || end-start == 1 {
				runSpan(0, start, end, scale)
			} else {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						runSpan(w, start, end, scale)
					}(w)
				}
				wg.Wait()
			}
			for _, s := range sinks {
				s.MergeInto(params)
			}
			optim.Step()
		}
		var sum float64
		for _, l := range lossAt {
			sum += l
		}
		mean := sum / float64(n)
		losses = append(losses, mean)
		if after != nil && !after(epoch, mean) {
			break
		}
	}
	return losses
}

// TrainModel trains m on insts with gradient-accumulation batches fanned
// across tc.Workers goroutines and returns the mean training loss of each
// epoch. Page order is reshuffled every epoch with the config seed.
func TrainModel(m Model, insts []*Instance, tc TrainConfig) []float64 {
	optim := newOptimizer(m, tc)
	return TrainEpochs(optim, m.Params(), len(insts), tc, func(t *ag.Tape, idx int) *ag.Node {
		out := m.Forward(t, insts[idx], Train)
		return Loss(t, out, insts[idx])
	}, nil)
}

// newOptimizer builds the Adam optimizer from a training configuration:
// the paper's warmup-then-decay schedule with global-norm clipping.
func newOptimizer(m Model, tc TrainConfig) *opt.Adam {
	optim := opt.NewAdam(m.Params(), tc.LR)
	optim.Clip = tc.Clip
	if tc.Warmup > 0 || tc.DecayEvery > 0 {
		optim.Schedule = opt.WarmupDecay{
			WarmupSteps: tc.Warmup,
			DecayRate:   tc.DecayRate,
			DecayEvery:  tc.DecayEvery,
		}
	}
	return optim
}

// DevLoss computes the mean supervised loss on a development set without
// updating parameters — the convergence signal for early stopping. The
// per-instance forwards run in parallel; the sum is taken in instance order
// so the result is deterministic.
func DevLoss(m Model, insts []*Instance) float64 {
	if len(insts) == 0 {
		return 0
	}
	losses := make([]float64, len(insts))
	parallelInstances(len(insts), func(i int) {
		s := GetScratch()
		defer PutScratch(s)
		s.Tape.Reset()
		out := m.Forward(s.Tape, insts[i], Distill) // teacher forcing, no dropout
		losses[i] = Loss(s.Tape, out, insts[i]).Value.Data[0]
	})
	var sum float64
	for _, l := range losses {
		sum += l
	}
	return sum / float64(len(insts))
}

// TrainModelEarlyStop trains like TrainModel — same batching and worker
// fan-out — but evaluates the development loss after every epoch and stops
// once it has not improved for patience consecutive epochs, the paper's
// early-stopping protocol (§IV-A5: "training is early stopped once
// convergence is determined on the development dataset"). It returns the
// per-epoch training losses and the number of epochs actually run.
func TrainModelEarlyStop(m Model, train, dev []*Instance, tc TrainConfig, patience int) (losses []float64, epochs int) {
	optim := newOptimizer(m, tc)
	best := math.Inf(1)
	bad := 0
	losses = TrainEpochs(optim, m.Params(), len(train), tc, func(t *ag.Tape, idx int) *ag.Node {
		out := m.Forward(t, train[idx], Train)
		return Loss(t, out, train[idx])
	}, func(epoch int, mean float64) bool {
		dl := DevLoss(m, dev)
		if dl < best-1e-6 {
			best = dl
			bad = 0
			return true
		}
		bad++
		return bad < patience
	})
	return losses, len(losses)
}

// EvaluateExtraction scores m's attribute extraction on insts with strict
// span P/R/F1 (§IV-A4). Models without an extraction head score zero.
func EvaluateExtraction(m Model, insts []*Instance) eval.PRF1 {
	pred := make([][]eval.Span, len(insts))
	gold := make([][]eval.Span, len(insts))
	parallelInstances(len(insts), func(i int) {
		s := GetScratch()
		defer PutScratch(s)
		s.Tape.Reset()
		out := m.Forward(s.Tape, insts[i], Eval)
		pred[i] = eval.SpansFromBIO(PredictTags(out))
		gold[i] = eval.SpansFromBIO(insts[i].Tags)
	})
	return eval.SpanPRF1(pred, gold)
}

// ExtractionCorrect returns, per instance, whether the model's extraction
// was fully correct (all spans exact) — the paired-outcome input for
// McNemar's test.
func ExtractionCorrect(m Model, insts []*Instance) []bool {
	out := make([]bool, len(insts))
	parallelInstances(len(insts), func(i int) {
		s := GetScratch()
		defer PutScratch(s)
		s.Tape.Reset()
		o := m.Forward(s.Tape, insts[i], Eval)
		p := eval.SpansFromBIO(PredictTags(o))
		g := eval.SpansFromBIO(insts[i].Tags)
		out[i] = eval.SpansEqual(p, g)
	})
	return out
}

// GeneratedTopics decodes the topic phrase for each instance and returns the
// generated and gold token strings side by side.
func GeneratedTopics(m Model, insts []*Instance, v *textproc.Vocab, beamWidth, maxLen int) (gen, gold [][]string) {
	gen = make([][]string, len(insts))
	gold = make([][]string, len(insts))
	parallelInstances(len(insts), func(i int) {
		ids := GenerateTopic(m, insts[i], beamWidth, maxLen)
		gen[i] = v.Tokens(ids)
		gold[i] = insts[i].Topic
	})
	return gen, gold
}

// EvaluateTopics scores topic generation with EM and RM (§IV-A4).
func EvaluateTopics(m Model, insts []*Instance, v *textproc.Vocab, beamWidth, maxLen int) (em, rm float64) {
	gen, gold := GeneratedTopics(m, insts, v, beamWidth, maxLen)
	return eval.TopicScores(gen, gold)
}

// TopicCorrect returns per-instance exact-match outcomes for McNemar pairing.
func TopicCorrect(m Model, insts []*Instance, v *textproc.Vocab, beamWidth, maxLen int) []bool {
	gen, gold := GeneratedTopics(m, insts, v, beamWidth, maxLen)
	out := make([]bool, len(gen))
	for i := range gen {
		out[i] = eval.ExactMatch(gen[i], gold[i])
	}
	return out
}

// EvaluateSections scores informative-section prediction accuracy (%). The
// per-instance forwards run in parallel; predictions are concatenated in
// instance order, so the score matches the sequential computation exactly.
func EvaluateSections(m Model, insts []*Instance) float64 {
	preds := make([][]int, len(insts))
	parallelInstances(len(insts), func(i int) {
		s := GetScratch()
		defer PutScratch(s)
		s.Tape.Reset()
		out := m.Forward(s.Tape, insts[i], Eval)
		preds[i] = PredictSections(out)
	})
	var pred, gold []int
	for i, inst := range insts {
		if preds[i] == nil {
			return 0 // model has no section head
		}
		pred = append(pred, preds[i]...)
		gold = append(gold, inst.SentInfo...)
	}
	return eval.Accuracy(pred, gold)
}
