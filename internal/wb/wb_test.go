package wb

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/corpus"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// testData builds a small deterministic dataset with its vocabulary.
func testData(t testing.TB, domains, pages int) ([]*Instance, *textproc.Vocab) {
	t.Helper()
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: pages, SeenDomains: domains, UnseenDomains: 0})
	if err != nil {
		t.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	return NewInstances(ds.Pages, v, 0), v
}

func smallGloVeEncoder(v *textproc.Vocab, dim int, seed int64) *GloVeEncoder {
	rng := rand.New(rand.NewSource(seed))
	return NewGloVeEncoder(tensor.Randn(v.Size(), dim, 0.1, rng))
}

func TestInstanceEncoding(t *testing.T) {
	insts, v := testData(t, 2, 2)
	inst := insts[0]
	if inst.NumTokens() != len(inst.IDs) || len(inst.IDs) != len(inst.Tags) {
		t.Fatal("parallel arrays")
	}
	if inst.NumSents() != len(inst.SentInfo) {
		t.Fatal("sentence arrays")
	}
	// TopicIn/TopicOut are shifted copies.
	if inst.TopicIn[0] != textproc.BosID {
		t.Fatal("TopicIn must start with BOS")
	}
	if inst.TopicOut[len(inst.TopicOut)-1] != textproc.EosID {
		t.Fatal("TopicOut must end with EOS")
	}
	if len(inst.TopicIn) != len(inst.TopicOut) {
		t.Fatal("decoder input/target length mismatch")
	}
	for i, id := range inst.TopicIn[1:] {
		if id != inst.TopicOut[i] {
			t.Fatal("TopicIn is not TopicOut shifted")
		}
	}
	// No unknown tokens in a vocab built from the same corpus.
	for _, id := range inst.IDs {
		if id == textproc.UnkID {
			t.Fatal("UNK in training instance")
		}
	}
	_ = v
}

func TestGloVeEncoderShapes(t *testing.T) {
	insts, v := testData(t, 1, 1)
	enc := smallGloVeEncoder(v, 12, 1)
	tp := ag.NewTape()
	tok, sent := enc.EncodeDoc(tp, insts[0])
	if tok.Rows() != insts[0].NumTokens() || tok.Cols() != 12 {
		t.Fatalf("token reps %dx%d", tok.Rows(), tok.Cols())
	}
	if sent.Rows() != insts[0].NumSents() || sent.Cols() != 12 {
		t.Fatalf("sentence reps %dx%d", sent.Rows(), sent.Cols())
	}
}

func TestMeanPoolMatrixRowsSumToOne(t *testing.T) {
	insts, _ := testData(t, 1, 1)
	m := meanPoolMatrix(ag.NewTape(), insts[0])
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, x := range m.Row(i) {
			s += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestBERTEncoderShapes(t *testing.T) {
	insts, v := testData(t, 1, 1)
	rng := rand.New(rand.NewSource(2))
	cfg := nn.TransformerConfig{Vocab: v.Size(), Dim: 12, Heads: 2, Layers: 1, FFDim: 24, MaxLen: 32, Segments: 2}
	enc := NewBERTEncoder("bert", cfg, true, rng)
	tp := ag.NewTape()
	tok, sent := enc.EncodeDoc(tp, insts[0])
	if tok.Rows() != insts[0].NumTokens() {
		t.Fatalf("token rows %d", tok.Rows())
	}
	if sent.Rows() != insts[0].NumSents() {
		t.Fatalf("sentence rows %d", sent.Rows())
	}
}

func TestSectionPredictorShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sp := NewSectionPredictor("sec", 8, rng)
	tp := ag.NewTape()
	sent := tp.Const(tensor.Randn(5, 8, 1, rng))
	logits := sp.Forward(tp, sent)
	if logits.Rows() != 5 || logits.Cols() != 1 {
		t.Fatalf("section logits %dx%d", logits.Rows(), logits.Cols())
	}
	loss := tp.BCELoss(logits, []int{1, 0, 1, 0, 1})
	tp.Backward(loss)
	for _, p := range sp.Params() {
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("no grad to %s", p.Name)
		}
	}
	// Single-sentence documents must not panic.
	tp2 := ag.NewTape()
	one := sp.Forward(tp2, tp2.Const(tensor.Randn(1, 8, 1, rng)))
	if one.Rows() != 1 {
		t.Fatal("single sentence")
	}
}

func TestSectionPredictorNoMarkovAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	sp := NewSectionPredictor("sec", 8, rng)
	tp := ag.NewTape()
	sent := tensor.Randn(4, 8, 1, rng)
	markov := sp.Forward(tp, tp.Const(sent))
	sp.NoMarkov = true
	indep := sp.Forward(tp, tp.Const(sent))
	if markov.Value.Equal(indep.Value, 1e-12) {
		t.Fatal("ablation flag has no effect")
	}
	// Param sets swap with the flag.
	if len(sp.Params()) != 2 { // Indep Linear: W + B
		t.Fatalf("NoMarkov params: %d", len(sp.Params()))
	}
	sp.NoMarkov = false
	if len(sp.Params()) != 2 { // two bilinears: W1.W + W2.W
		t.Fatalf("Markov params: %d", len(sp.Params()))
	}
	// The independent scorer must not see neighbours: changing sentence 0
	// cannot affect sentence 2's logit.
	sp.NoMarkov = true
	sent2 := sent.Clone()
	sent2.Set(0, 0, sent2.At(0, 0)+100)
	tp2 := ag.NewTape()
	a := sp.Forward(tp2, tp2.Const(sent))
	b := sp.Forward(tp2, tp2.Const(sent2))
	if a.Value.At(2, 0) != b.Value.At(2, 0) {
		t.Fatal("independent scorer leaked neighbour context")
	}
	// The Markov scorer DOES see neighbours: changing sentence 0 must
	// affect sentence 1's logit.
	sp.NoMarkov = false
	am := sp.Forward(tp2, tp2.Const(sent))
	bm := sp.Forward(tp2, tp2.Const(sent2))
	if am.Value.At(1, 0) == bm.Value.At(1, 0) {
		t.Fatal("Markov scorer ignored neighbour change")
	}
}

func newTestJointWB(v *textproc.Vocab, seed int64) *JointWB {
	enc := smallGloVeEncoder(v, 16, seed)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = seed
	return NewJointWB("jwb", enc, v.Size(), cfg)
}

func TestJointWBForwardShapes(t *testing.T) {
	insts, v := testData(t, 2, 2)
	m := newTestJointWB(v, 4)
	inst := insts[0]
	tp := ag.NewTape()
	out := m.Forward(tp, inst, Train)
	if out.TagLogits.Rows() != inst.NumTokens() || out.TagLogits.Cols() != 3 {
		t.Fatalf("tag logits %dx%d", out.TagLogits.Rows(), out.TagLogits.Cols())
	}
	if out.SecLogits.Rows() != inst.NumSents() {
		t.Fatalf("sec logits %d", out.SecLogits.Rows())
	}
	if out.TopicLogits.Rows() != len(inst.TopicIn) || out.TopicLogits.Cols() != v.Size() {
		t.Fatalf("topic logits %dx%d", out.TopicLogits.Rows(), out.TopicLogits.Cols())
	}
	if out.TokenH == nil || out.SentH == nil || out.TopicStates == nil || out.Memory == nil {
		t.Fatal("hidden representations must be exposed for distillation")
	}
	// Eval mode has no teacher-forced logits but still a decodable memory.
	tp2 := ag.NewTape()
	out2 := m.Forward(tp2, inst, Eval)
	if out2.TopicLogits != nil {
		t.Fatal("eval mode should not teacher-force")
	}
	if out2.Memory == nil || out2.Dec == nil {
		t.Fatal("eval mode must provide decode memory")
	}
}

func TestJointWBGradientsReachAllParts(t *testing.T) {
	insts, v := testData(t, 2, 1)
	m := newTestJointWB(v, 5)
	tp := ag.NewTape()
	out := m.Forward(tp, insts[0], Train)
	loss := Loss(tp, out, insts[0])
	tp.Backward(loss)
	zero := 0
	for _, p := range m.Params() {
		if p.Grad.MaxAbs() == 0 {
			zero++
			t.Logf("zero grad: %s", p.Name)
		}
	}
	// The embedding table legitimately has rows without gradient (unused
	// ids), but MaxAbs covers the whole table; every weight matrix used in
	// this forward pass must receive some gradient.
	if zero > 0 {
		t.Fatalf("%d parameters received no gradient", zero)
	}
}

func TestLossCombinesHeads(t *testing.T) {
	insts, v := testData(t, 1, 1)
	m := newTestJointWB(v, 6)
	tp := ag.NewTape()
	out := m.Forward(tp, insts[0], Train)
	full := Loss(tp, out, insts[0]).Value.Data[0]
	// Removing a head must reduce the loss sum.
	out.SecLogits = nil
	tp2 := ag.NewTape()
	out2 := m.Forward(tp2, insts[0], Train)
	out2.TopicLogits = nil
	out2.SecLogits = nil
	partial := Loss(tp2, out2, insts[0]).Value.Data[0]
	if partial >= full {
		t.Fatalf("partial loss %v should be below full %v", partial, full)
	}
}

func TestLossPanicsWithNoHeads(t *testing.T) {
	tp := ag.NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Loss(tp, &Output{}, nil)
}

// The end-to-end learnability check: Joint-WB must fit a small corpus —
// extraction F1, topic EM and section accuracy all far above chance.
func TestJointWBLearnsSmallCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	insts, v := testData(t, 3, 8)
	m := newTestJointWB(v, 7)
	tc := DefaultTrainConfig()
	tc.Epochs = 32
	losses := TrainModel(m, insts, tc)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	prf := EvaluateExtraction(m, insts)
	if prf.F1 < 60 {
		t.Fatalf("extraction F1 %.1f too low; losses %v", prf.F1, losses)
	}
	em, rm := EvaluateTopics(m, insts, v, 4, 4)
	if em < 50 {
		t.Fatalf("topic EM %.1f too low", em)
	}
	if rm < em {
		t.Fatalf("RM %.1f must be at least EM %.1f", rm, em)
	}
	if acc := EvaluateSections(m, insts); acc < 75 {
		t.Fatalf("section accuracy %.1f too low", acc)
	}
}

func TestPredictTagsAndSections(t *testing.T) {
	insts, v := testData(t, 1, 1)
	m := newTestJointWB(v, 8)
	tp := ag.NewTape()
	out := m.Forward(tp, insts[0], Eval)
	tags := PredictTags(out)
	if len(tags) != insts[0].NumTokens() {
		t.Fatal("tag count")
	}
	for _, tag := range tags {
		if tag < 0 || tag > 2 {
			t.Fatalf("invalid tag %d", tag)
		}
	}
	secs := PredictSections(out)
	if len(secs) != insts[0].NumSents() {
		t.Fatal("section count")
	}
	for _, s := range secs {
		if s != 0 && s != 1 {
			t.Fatalf("invalid section flag %d", s)
		}
	}
}

func TestGenerateTopicGreedyAndBeam(t *testing.T) {
	insts, v := testData(t, 1, 1)
	m := newTestJointWB(v, 9)
	greedy := GenerateTopic(m, insts[0], 1, 4)
	beam := GenerateTopic(m, insts[0], 4, 4)
	if len(greedy) > 4 || len(beam) > 4 {
		t.Fatal("topic length cap violated")
	}
	for _, ids := range [][]int{greedy, beam} {
		for _, id := range ids {
			if id < 0 || id >= v.Size() {
				t.Fatalf("invalid token id %d", id)
			}
		}
	}
}

func TestMakeBriefStructure(t *testing.T) {
	insts, v := testData(t, 1, 2)
	m := newTestJointWB(v, 10)
	b := MakeBrief(m, insts[0], v, 2)
	if b == nil {
		t.Fatal("nil brief")
	}
	s := b.String()
	if !strings.Contains(s, "Topic:") || !strings.Contains(s, "Webpage Briefing") {
		t.Fatalf("brief rendering: %s", s)
	}
	if len(b.Sections) != insts[0].NumSents() {
		t.Fatal("sections missing from brief")
	}
}

func TestTrainModelDeterministic(t *testing.T) {
	insts, v := testData(t, 1, 2)
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	m1 := newTestJointWB(v, 11)
	m2 := newTestJointWB(v, 11)
	l1 := TrainModel(m1, insts, tc)
	l2 := TrainModel(m2, insts, tc)
	if l1[0] != l2[0] {
		t.Fatalf("training not deterministic: %v vs %v", l1, l2)
	}
}

func BenchmarkJointWBForward(b *testing.B) {
	ds, _ := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 1, SeenDomains: 2, UnseenDomains: 0})
	v := corpus.BuildVocab(ds.Pages)
	insts := NewInstances(ds.Pages, v, 0)
	m := newTestJointWB(v, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := ag.NewTape()
		m.Forward(tp, insts[i%len(insts)], Eval)
	}
}

func BenchmarkJointWBTrainStep(b *testing.B) {
	ds, _ := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 1, SeenDomains: 2, UnseenDomains: 0})
	v := corpus.BuildVocab(ds.Pages)
	insts := NewInstances(ds.Pages, v, 0)
	m := newTestJointWB(v, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inst := insts[i%len(insts)]
		tp := ag.NewTape()
		out := m.Forward(tp, inst, Train)
		loss := Loss(tp, out, inst)
		tp.Backward(loss)
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		_ = loss
	}
}

func TestDevLossAndEarlyStopping(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	insts, v := testData(t, 2, 10)
	train, dev := insts[:16], insts[16:]
	m := newTestJointWB(v, 44)
	before := DevLoss(m, dev)
	tc := DefaultTrainConfig()
	tc.Epochs = 100 // far more than needed; early stopping must cut it short
	losses, epochs := TrainModelEarlyStop(m, train, dev, tc, 3)
	if epochs >= 100 {
		t.Fatalf("early stopping never triggered (%d epochs)", epochs)
	}
	if len(losses) != epochs {
		t.Fatalf("loss curve length %d != epochs %d", len(losses), epochs)
	}
	after := DevLoss(m, dev)
	if after >= before {
		t.Fatalf("dev loss did not improve: %v -> %v", before, after)
	}
}

func TestDevLossEmptySet(t *testing.T) {
	_, v := testData(t, 1, 1)
	m := newTestJointWB(v, 45)
	if DevLoss(m, nil) != 0 {
		t.Fatal("empty dev set should give 0")
	}
}

func TestTrainModelBatchAccumulation(t *testing.T) {
	insts, v := testData(t, 2, 4)
	// Batch training must still learn (loss decreases) and remain
	// deterministic for a fixed seed.
	run := func() []float64 {
		m := newTestJointWB(v, 46)
		tc := DefaultTrainConfig()
		tc.Epochs = 3
		tc.BatchSize = 4
		return TrainModel(m, insts, tc)
	}
	l1, l2 := run(), run()
	if l1[len(l1)-1] >= l1[0] {
		t.Fatalf("batched loss not decreasing: %v", l1)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("batched training not deterministic")
		}
	}
}

func TestParallelEvaluationMatchesSerialAndIsRaceFree(t *testing.T) {
	insts, v := testData(t, 2, 4)
	m := newTestJointWB(v, 47)
	// Serial reference via per-instance forwards.
	var serialGen [][]string
	for _, inst := range insts {
		serialGen = append(serialGen, v.Tokens(GenerateTopic(m, inst, 2, 4)))
	}
	gen, _ := GeneratedTopics(m, insts, v, 2, 4)
	for i := range gen {
		if strings.Join(gen[i], " ") != strings.Join(serialGen[i], " ") {
			t.Fatalf("parallel decode diverges at %d: %v vs %v", i, gen[i], serialGen[i])
		}
	}
	// Extraction must also be stable across repeated parallel runs.
	a := EvaluateExtraction(m, insts)
	b := EvaluateExtraction(m, insts)
	if a != b {
		t.Fatalf("parallel evaluation not deterministic: %+v vs %+v", a, b)
	}
}
