package wb

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"webbrief/internal/eval"
	"webbrief/internal/nn"
)

// studentFromTeacher converts a trained teacher, failing the test on error.
func studentFromTeacher(t testing.TB, m *JointWB) *JointWB32 {
	t.Helper()
	st, err := ConvertJointWB(m)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConvertJointWBRequiresGloVe: the float32 student only exists for the
// GloVe regime; transformer-encoder models must be refused, not mangled.
func TestConvertJointWBRequiresGloVe(t *testing.T) {
	_, v := testData(t, 1, 1)
	rng := rand.New(rand.NewSource(4))
	cfg := nn.TransformerConfig{Vocab: v.Size(), Dim: 12, Heads: 2, Layers: 1, FFDim: 24, MaxLen: 32, Segments: 2}
	enc := NewBERTEncoder("bert", cfg, false, rng)
	m := NewJointWB("Joint-WB", enc, v.Size(), DefaultConfig())
	if _, err := ConvertJointWB(m); err == nil {
		t.Fatal("BERT-encoder model converted to a float32 student")
	}
}

// TestStudentSecLogitsMatchTeacher: the section head runs no decode pass, so
// its student logits must track the teacher within the float32 kernel
// tier's error envelope on every instance — the end-to-end numerical
// accuracy contract for the encoder + BiLSTM + section predictor stack.
func TestStudentSecLogitsMatchTeacher(t *testing.T) {
	m, v, insts := trainedTestModel(t)
	_ = v
	st := studentFromTeacher(t, m)
	s64 := NewInferScratch()
	s32 := NewInferScratch32()
	const tol = 1e-3 // |err| ≤ tol·(1+|logit|); generous vs the ~1e-5 observed
	for k, inst := range insts {
		s64.Tape.Reset()
		out := m.Forward(s64.Tape, inst, Eval)
		s32.Tape.Reset()
		out32 := st.Forward(s32.Tape, inst)
		if out32.SecLogits.Rows != out.SecLogits.Rows() {
			t.Fatalf("inst %d: section logit rows %d vs %d", k, out32.SecLogits.Rows, out.SecLogits.Rows())
		}
		for i := 0; i < out32.SecLogits.Rows; i++ {
			want := out.SecLogits.Value.At(i, 0)
			got := float64(out32.SecLogits.At(i, 0))
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("inst %d sentence %d: student logit %g, teacher %g", k, i, got, want)
			}
		}
	}
}

// TestStudentExtractionQuality is the cascade quality gate: on the eval
// suite, the student-only extraction F1 must sit within epsilon of the
// teacher's. A float32 round-off that flips argmaxes at scale would trip
// this long before it trips the per-kernel tolerance tests.
func TestStudentExtractionQuality(t *testing.T) {
	m, v, insts := trainedTestModel(t)
	_ = v
	st := studentFromTeacher(t, m)
	s64 := NewInferScratch()
	s32 := NewInferScratch32()
	gold := make([][]eval.Span, len(insts))
	pt := make([][]eval.Span, len(insts))
	ps := make([][]eval.Span, len(insts))
	for i, inst := range insts {
		gold[i] = eval.SpansFromBIO(inst.Tags)
		s64.Tape.Reset()
		pt[i] = eval.SpansFromBIO(PredictTags(m.Forward(s64.Tape, inst, Eval)))
		s32.Tape.Reset()
		ps[i] = eval.SpansFromBIO(PredictTags32(st.Forward(s32.Tape, inst)))
	}
	teacher := eval.SpanPRF1(pt, gold)
	student := eval.SpanPRF1(ps, gold)
	const epsilon = 2.0 // F1 percentage points
	if math.Abs(student.F1-teacher.F1) > epsilon {
		t.Fatalf("student extraction F1 %.2f drifted more than %.1f points from teacher %.2f",
			student.F1, epsilon, teacher.F1)
	}
}

// TestStudentBatchMatchesSerial: the batched student path must brief
// identically to width-many serial student calls, and report the same
// confidences — the same contract the float64 batch tier keeps.
func TestStudentBatchMatchesSerial(t *testing.T) {
	m, v, insts := trainedTestModel(t)
	st := studentFromTeacher(t, m)
	for _, width := range []int{1, 3} {
		serialScratch := NewInferScratch32For(v, width)
		wantBriefs := make([]*Brief, len(insts))
		wantConfs := make([]nn.Confidence, len(insts))
		for i, inst := range insts {
			wantBriefs[i], wantConfs[i] = MakeBriefWith32(st, inst, v, width, serialScratch)
		}
		batchScratch := NewBatchScratch32For(v, width, len(insts))
		gotBriefs, gotConfs := MakeBriefBatch32(st, insts, v, width, batchScratch)
		for i := range insts {
			if !reflect.DeepEqual(gotBriefs[i], wantBriefs[i]) {
				t.Fatalf("width %d inst %d: batched student brief diverges:\nbatch  %+v\nserial %+v",
					width, i, gotBriefs[i], wantBriefs[i])
			}
			if gotConfs[i] != wantConfs[i] {
				t.Fatalf("width %d inst %d: batched confidence %+v, serial %+v",
					width, i, gotConfs[i], wantConfs[i])
			}
		}
	}
}

// TestStudentSnapshotChain walks the whole persistence lineage: legacy gob
// bundle → float64 snapshot → live conversion → float32 student snapshot.
// Every hop must preserve briefs, and the student snapshot must restore the
// converted weights bit-exactly.
func TestStudentSnapshotChain(t *testing.T) {
	m, v, insts := trainedTestModel(t)

	// Hop 1: gob bundle round trip (the legacy training artifact).
	var gobBuf bytes.Buffer
	if err := SaveJointWB(&gobBuf, m, v); err != nil {
		t.Fatal(err)
	}
	fromGob, vGob, err := LoadJointWB(bytes.NewReader(gobBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Hop 2: float64 snapshot of the gob-loaded model.
	snapData, err := EncodeSnapshot(fromGob, vGob)
	if err != nil {
		t.Fatal(err)
	}
	teacher, vSnap, err := DecodeSnapshot(snapData)
	if err != nil {
		t.Fatal(err)
	}
	assertSameParams(t, m, teacher)

	// Hop 3: float32 student snapshot of the converted teacher.
	st := studentFromTeacher(t, teacher)
	stData, err := EncodeStudentSnapshot(st, vSnap)
	if err != nil {
		t.Fatal(err)
	}
	st2, v2, err := DecodeStudentSnapshot(stData)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() != v.Size() {
		t.Fatalf("student vocab size %d, want %d", v2.Size(), v.Size())
	}
	pa, pb := st.params32(), st2.params32()
	if len(pa) != len(pb) {
		t.Fatalf("student param count %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].name != pb[i].name {
			t.Fatalf("student param %d name %q vs %q", i, pa[i].name, pb[i].name)
		}
		va, vb := pa[i].m, pb[i].m
		if va.Rows != vb.Rows || va.Cols != vb.Cols {
			t.Fatalf("student param %s shape %dx%d vs %dx%d", pa[i].name, va.Rows, va.Cols, vb.Rows, vb.Cols)
		}
		for j := range va.Data {
			if math.Float32bits(va.Data[j]) != math.Float32bits(vb.Data[j]) {
				t.Fatalf("student param %s value %d not bit-exact", pa[i].name, j)
			}
		}
	}

	// The restored student briefs identically to the converted one.
	sa, sb := NewInferScratch32For(v, 2), NewInferScratch32For(v2, 2)
	for i, inst := range insts[:2] {
		wantB, wantC := MakeBriefWith32(st, inst, v, 2, sa)
		gotB, gotC := MakeBriefWith32(st2, inst, v2, 2, sb)
		if !reflect.DeepEqual(gotB, wantB) || gotC != wantC {
			t.Fatalf("inst %d: restored student diverges", i)
		}
	}
}

// TestDecodeStudentSnapshotRejectsCorruption: the student loader inherits
// container corruption detection and adds its own name/shape validation.
func TestDecodeStudentSnapshotRejectsCorruption(t *testing.T) {
	m, v, _ := trainedTestModel(t)
	st := studentFromTeacher(t, m)
	data, err := EncodeStudentSnapshot(st, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 7, len(data) / 2, len(data) - 5} {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x10
		if _, _, err := DecodeStudentSnapshot(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, _, err := DecodeStudentSnapshot(data[:len(data)/2]); err == nil {
		t.Fatal("truncation accepted")
	}
	// A teacher snapshot is not a student snapshot.
	teacherData, err := EncodeSnapshot(m, v)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeStudentSnapshot(teacherData); err == nil {
		t.Fatal("teacher snapshot decoded as a student")
	}
}

// FuzzDecodeStudentSnapshot: arbitrary bytes must fail closed, never panic.
func FuzzDecodeStudentSnapshot(f *testing.F) {
	insts, v := testData(f, 1, 1)
	_ = insts
	m := newTestJointWB(v, 7)
	st, err := ConvertJointWB(m)
	if err != nil {
		f.Fatal(err)
	}
	data, err := EncodeStudentSnapshot(st, v)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte("WBSNAP"))
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeStudentSnapshot(b)
	})
}

// BenchmarkCascadeTiers measures the two cascade tiers head to head: the
// same instance briefed end to end (encode + topic decode) on the warm
// scratch fast path by the float64 teacher and by its float32 student. The
// ratio is the cascade's payoff per student-answered briefing.
//
// Two model scales bracket the cost regimes. toy-h16 is the unit-test
// configuration — so small that library transcendentals and per-step tape
// overhead dominate, and the float32 tier's bandwidth/register-width edge
// has nothing to bite on. paper-h108 is the configuration the source paper
// serves (GloVe d=50, Hidden=108), where the h² matmul work dominates and
// the float32 kernels' halved traffic and doubled register block pay off;
// that sub-benchmark is the cascade's headline number in BENCH_6.json.
func BenchmarkCascadeTiers(b *testing.B) {
	insts, v := testData(b, 1, 2)
	inst := insts[0]
	const beam = 4
	for _, sc := range []struct {
		name        string
		dim, hidden int
	}{
		{"toy-h16", 16, 16},
		{"paper-h108", 50, 108},
	} {
		enc := smallGloVeEncoder(v, sc.dim, 313)
		cfg := DefaultConfig()
		cfg.Hidden = sc.hidden
		cfg.Seed = 313
		m := NewJointWB("jwb", enc, v.Size(), cfg)
		b.Run(sc.name+"/teacher-f64", func(b *testing.B) {
			s := NewInferScratchFor(v, beam)
			MakeBriefWith(m, inst, v, beam, s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MakeBriefWith(m, inst, v, beam, s)
			}
		})
		b.Run(sc.name+"/student-f32", func(b *testing.B) {
			sm := studentFromTeacher(b, m)
			s := NewInferScratch32For(v, beam)
			MakeBriefWith32(sm, inst, v, beam, s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MakeBriefWith32(sm, inst, v, beam, s)
			}
		})
	}
}
