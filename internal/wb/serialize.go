package wb

import (
	"encoding/gob"
	"fmt"
	"io"

	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// bundleHeader describes a saved Joint-WB model so it can be reconstructed
// before its parameters are loaded.
type bundleHeader struct {
	Magic    string
	Vocab    []string
	EmbDim   int
	Hidden   int
	TopicLen int
	BeamSize int
}

const bundleMagic = "webbrief-jointwb-v1"

// SaveJointWB serialises a GloVe-encoder Joint-WB model together with its
// vocabulary so cmd/wbrief can brief new pages without retraining.
func SaveJointWB(w io.Writer, m *JointWB, v *textproc.Vocab) error {
	enc, ok := m.Enc.(*GloVeEncoder)
	if !ok {
		return fmt.Errorf("wb: SaveJointWB supports GloVe-encoder models, got %T", m.Enc)
	}
	tokens := make([]string, v.Size())
	for i := range tokens {
		tokens[i] = v.Token(i)
	}
	hdr := bundleHeader{
		Magic:    bundleMagic,
		Vocab:    tokens,
		EmbDim:   enc.Dim(),
		Hidden:   m.Cfg.Hidden,
		TopicLen: m.Cfg.TopicLen,
		BeamSize: m.Cfg.BeamSize,
	}
	enc2 := gob.NewEncoder(w)
	if err := enc2.Encode(hdr); err != nil {
		return fmt.Errorf("wb: encode header: %w", err)
	}
	return nn.EncodeParams(enc2, m)
}

// LoadJointWB reconstructs a model saved by SaveJointWB.
func LoadJointWB(r io.Reader) (*JointWB, *textproc.Vocab, error) {
	dec := gob.NewDecoder(r)
	var hdr bundleHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, nil, fmt.Errorf("wb: decode header: %w", err)
	}
	if hdr.Magic != bundleMagic {
		return nil, nil, fmt.Errorf("wb: not a webbrief model bundle (magic %q)", hdr.Magic)
	}
	v := textproc.NewVocab()
	for _, tok := range hdr.Vocab {
		v.Add(tok)
	}
	if v.Size() != len(hdr.Vocab) {
		return nil, nil, fmt.Errorf("wb: bundle vocabulary has duplicates")
	}
	enc := NewGloVeEncoder(tensor.New(v.Size(), hdr.EmbDim))
	cfg := Config{Hidden: hdr.Hidden, TopicLen: hdr.TopicLen, BeamSize: hdr.BeamSize, Seed: 1}
	m := NewJointWB("Joint-WB", enc, v.Size(), cfg)
	if err := nn.DecodeParams(dec, m); err != nil {
		return nil, nil, err
	}
	return m, v, nil
}
