package wb

import (
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
)

// DocEncoder produces the contextual embeddings every model is built on:
// token representations C (one row per token) and sentence representations
// C⁰ (one row per sentence). The three implementations correspond to the
// paper's embedding regimes (§IV-A6): GloVe (context-independent), MiniBERT
// (context-dependent) and MiniBERTSUM (context-dependent with per-sentence
// [CLS] collection and interval segments).
type DocEncoder interface {
	nn.Layer
	// EncodeDoc returns (token reps, sentence reps) for the instance.
	EncodeDoc(t *ag.Tape, inst *Instance) (tok, sent *ag.Node)
	// Dim is the width of both representation matrices.
	Dim() int
}

// GloVeEncoder wraps fixed-initialised (pre-trained) word vectors. Sentence
// representations are the mean of the sentence's token embeddings, since a
// context-independent [CLS] vector carries no information.
type GloVeEncoder struct {
	Emb *nn.Embedding
}

// NewGloVeEncoder builds the encoder around a pre-trained vocab×dim matrix
// (see embed.TrainGloVe). The matrix is fine-tuned during task training,
// matching the GloVe→* baselines.
func NewGloVeEncoder(vectors *tensor.Matrix) *GloVeEncoder {
	return &GloVeEncoder{Emb: nn.EmbeddingFromMatrix("glove", vectors.Clone())}
}

// Params implements nn.Layer.
func (g *GloVeEncoder) Params() []*ag.Param { return g.Emb.Params() }

// Dim implements DocEncoder.
func (g *GloVeEncoder) Dim() int { return g.Emb.Dim() }

// EncodeDoc implements DocEncoder.
func (g *GloVeEncoder) EncodeDoc(t *ag.Tape, inst *Instance) (tok, sent *ag.Node) {
	tok = g.Emb.Forward(t, inst.IDs)
	sent = t.MatMul(t.Const(meanPoolMatrix(t, inst)), tok)
	return tok, sent
}

// meanPoolMatrix builds the m×l averaging matrix whose row j averages the
// token positions of sentence j. Both the matrix and the count scratch come
// from the tape arena, keeping the encoder forward allocation-free.
func meanPoolMatrix(t *ag.Tape, inst *Instance) *tensor.Matrix {
	m := t.AllocValue(inst.NumSents(), inst.NumTokens())
	counts := t.AllocValue(1, inst.NumSents()).Data
	for _, s := range inst.SentOf {
		counts[s]++
	}
	for i, s := range inst.SentOf {
		m.Set(s, i, 1/counts[s])
	}
	return m
}

// BERTEncoder is the MiniBERT regime: a transformer over the flat token
// stream (windowed past MaxLen), with sentence representations read from the
// [CLS] positions.
type BERTEncoder struct {
	Tr          *nn.Transformer
	UseSegments bool // BERTSUM's alternating interval segments
}

// NewBERTEncoder builds a MiniBERT document encoder.
func NewBERTEncoder(name string, cfg nn.TransformerConfig, useSegments bool, rng *rand.Rand) *BERTEncoder {
	return &BERTEncoder{Tr: nn.NewTransformer(name, cfg, rng), UseSegments: useSegments}
}

// Params implements nn.Layer.
func (b *BERTEncoder) Params() []*ag.Param { return b.Tr.Params() }

// Dim implements DocEncoder.
func (b *BERTEncoder) Dim() int { return b.Tr.Config.Dim }

// EncodeDoc implements DocEncoder.
func (b *BERTEncoder) EncodeDoc(t *ag.Tape, inst *Instance) (tok, sent *ag.Node) {
	var segs []int
	if b.UseSegments {
		segs = inst.Segments
	}
	tok = b.Tr.EncodeWindows(t, inst.IDs, segs)
	sent = t.GatherRows(tok, inst.ClsIdx)
	return tok, sent
}
