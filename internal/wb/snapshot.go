package wb

import (
	"bytes"
	"fmt"
	"io"

	"webbrief/internal/snapshot"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// Snapshot section names for a Joint-WB model bundle.
const (
	snapMetaSection   = "jointwb/meta"
	snapParamsSection = "jointwb/params"
)

// EncodeSnapshot serialises a GloVe-encoder Joint-WB model and its
// vocabulary into the binary snapshot container — the successor to the gob
// bundle written by SaveJointWB. Parameter values are stored as
// little-endian float64 bit patterns, so a decoded model briefs
// byte-identically to the original.
func EncodeSnapshot(m *JointWB, v *textproc.Vocab) ([]byte, error) {
	enc, ok := m.Enc.(*GloVeEncoder)
	if !ok {
		return nil, fmt.Errorf("wb: EncodeSnapshot supports GloVe-encoder models, got %T", m.Enc)
	}
	var meta snapshot.Buffer
	meta.Uvarint(uint64(enc.Dim()))
	meta.Uvarint(uint64(m.Cfg.Hidden))
	meta.Uvarint(uint64(m.Cfg.TopicLen))
	meta.Uvarint(uint64(m.Cfg.BeamSize))
	tokens := make([]string, v.Size())
	for i := range tokens {
		tokens[i] = v.Token(i)
	}
	meta.Strings(tokens)

	var params snapshot.Buffer
	ps := m.Params()
	params.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		params.String(p.Name)
		params.Uvarint(uint64(p.Value.Rows))
		params.Uvarint(uint64(p.Value.Cols))
		params.Float64s(p.Value.Data)
	}

	b := snapshot.NewBuilder()
	if err := b.Add(snapMetaSection, meta.Bytes()); err != nil {
		return nil, err
	}
	if err := b.Add(snapParamsSection, params.Bytes()); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeSnapshot reconstructs a model from EncodeSnapshot output. All
// lengths and shapes are validated against the model the metadata
// describes, so corrupted input errors rather than panicking.
func DecodeSnapshot(data []byte) (*JointWB, *textproc.Vocab, error) {
	s, err := snapshot.Decode(data)
	if err != nil {
		return nil, nil, err
	}
	metaPayload, ok := s.Section(snapMetaSection)
	if !ok {
		return nil, nil, fmt.Errorf("wb: snapshot has no %q section", snapMetaSection)
	}
	meta := snapshot.NewReader(metaPayload)
	embDim, err := meta.Uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("wb: snapshot meta: %w", err)
	}
	hidden, err := meta.Uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("wb: snapshot meta: %w", err)
	}
	topicLen, err := meta.Uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("wb: snapshot meta: %w", err)
	}
	beamSize, err := meta.Uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("wb: snapshot meta: %w", err)
	}
	tokens, err := meta.Strings()
	if err != nil {
		return nil, nil, fmt.Errorf("wb: snapshot vocab: %w", err)
	}
	v := textproc.NewVocab()
	for _, tok := range tokens {
		v.Add(tok)
	}
	if v.Size() != len(tokens) {
		return nil, nil, fmt.Errorf("wb: snapshot vocabulary has duplicates")
	}

	enc := NewGloVeEncoder(tensor.New(v.Size(), int(embDim)))
	cfg := Config{Hidden: int(hidden), TopicLen: int(topicLen), BeamSize: int(beamSize), Seed: 1}
	m := NewJointWB("Joint-WB", enc, v.Size(), cfg)

	paramsPayload, ok := s.Section(snapParamsSection)
	if !ok {
		return nil, nil, fmt.Errorf("wb: snapshot has no %q section", snapParamsSection)
	}
	r := snapshot.NewReader(paramsPayload)
	count, err := r.Uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("wb: snapshot params: %w", err)
	}
	ps := m.Params()
	if count != uint64(len(ps)) {
		return nil, nil, fmt.Errorf("wb: parameter count mismatch: snapshot has %d, model has %d", count, len(ps))
	}
	for i, p := range ps {
		name, err := r.String()
		if err != nil {
			return nil, nil, fmt.Errorf("wb: snapshot param %d: %w", i, err)
		}
		rows, err := r.Uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("wb: snapshot param %d (%s): %w", i, name, err)
		}
		cols, err := r.Uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("wb: snapshot param %d (%s): %w", i, name, err)
		}
		if int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return nil, nil, fmt.Errorf("wb: shape mismatch at %d (%s): snapshot %dx%d, model %dx%d",
				i, p.Name, rows, cols, p.Value.Rows, p.Value.Cols)
		}
		data, err := r.Float64s()
		if err != nil {
			return nil, nil, fmt.Errorf("wb: snapshot param %d (%s): %w", i, name, err)
		}
		if len(data) != p.Value.Rows*p.Value.Cols {
			return nil, nil, fmt.Errorf("wb: param %d (%s) has %d values, shape needs %d",
				i, name, len(data), p.Value.Rows*p.Value.Cols)
		}
		copy(p.Value.Data, data)
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("wb: snapshot params section has %d trailing bytes", r.Remaining())
	}
	return m, v, nil
}

// SaveSnapshot writes a model snapshot to w.
func SaveSnapshot(w io.Writer, m *JointWB, v *textproc.Vocab) error {
	data, err := EncodeSnapshot(m, v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadSnapshot reads a model snapshot written by SaveSnapshot.
func LoadSnapshot(r io.Reader) (*JointWB, *textproc.Vocab, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("wb: read snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}

// LoadModelAuto loads a model from either format: it sniffs the snapshot
// magic and falls back to the legacy gob bundle (SaveJointWB), giving
// existing model files a migration path — load with this, re-save with
// SaveSnapshot (or run cmd/wbsnap).
func LoadModelAuto(r io.Reader) (*JointWB, *textproc.Vocab, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("wb: read model: %w", err)
	}
	if snapshot.SniffMagic(data) {
		return DecodeSnapshot(data)
	}
	return LoadJointWB(bytes.NewReader(data))
}
