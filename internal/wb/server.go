package wb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"webbrief/internal/textproc"
)

// Briefer wraps a trained model and vocabulary behind a concurrency-safe
// briefing API — the operational form §I motivates ("the functionality of
// WB may be added to web browsers"). Eval-mode forwards only read model
// parameters, but a mutex still serialises calls so the type stays safe
// even if a caller swaps in a model whose Forward keeps internal state.
type Briefer struct {
	mu        sync.Mutex
	model     Model
	vocab     *textproc.Vocab
	beamWidth int
	maxTokens int
}

// NewBriefer wraps model+vocab. beamWidth ≤ 1 decodes greedily; maxTokens
// > 0 truncates long documents before encoding.
func NewBriefer(model Model, vocab *textproc.Vocab, beamWidth, maxTokens int) *Briefer {
	return &Briefer{model: model, vocab: vocab, beamWidth: beamWidth, maxTokens: maxTokens}
}

// BriefHTML runs the full pipeline on raw markup and returns the
// hierarchical briefing. It errors when the page has no visible text.
func (b *Briefer) BriefHTML(html string) (*Brief, error) {
	inst := InstanceFromHTML(html, b.vocab, b.maxTokens)
	if inst.NumSents() == 0 {
		return nil, fmt.Errorf("wb: no visible text in page")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	//wbcheck:ignore lockhold -- the mutex IS the briefing serialisation point: MakeBrief's only blocking op is the matmul kernels' bounded fork-join (tensor.parallelRows), which always completes; nothing reached from it takes this lock
	return MakeBrief(b.model, inst, b.vocab, b.beamWidth), nil
}

// maxRequestBytes bounds a briefing request body. Bodies beyond the limit
// are rejected with 413 rather than truncated: a briefing of half a page
// would be silently wrong, which is worse than no briefing.
const maxRequestBytes = 4 << 20

// ServeHTTP implements http.Handler: POST a page's HTML as the request
// body, receive the briefing as JSON. Mount it wherever a briefing
// endpoint is needed:
//
//	http.Handle("/brief", briefer)
func (b *Briefer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the page HTML as the request body", http.StatusMethodNotAllowed)
		return
	}
	// Read one byte past the limit so an over-limit body is detected
	// instead of silently truncated to a briefable-but-wrong prefix.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxRequestBytes {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", maxRequestBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	brief, err := b.BriefHTML(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(brief); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the server does for us.
		return
	}
}
