package wb

import (
	"webbrief/internal/ag"
	"webbrief/internal/eval"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// InferScratch32 is the student tier's per-call inference workspace: a
// value-level float32 tape, its matmul pack buffer and the beam-search
// buffers. Same ownership contract as InferScratch — one in-flight request
// at a time, tape reset at the START of each forward, returned Briefs never
// alias the arena.
type InferScratch32 struct {
	Tape *ag.Tape32
	Pack *tensor.PackBuf32
	Beam *nn.BeamScratch32
}

// NewInferScratch32 returns an empty student workspace whose buffers grow on
// first use.
func NewInferScratch32() *InferScratch32 {
	s := &InferScratch32{
		Tape: ag.NewInferTape32(),
		Pack: &tensor.PackBuf32{},
		Beam: nn.NewBeamScratch32(0, 0, 0),
	}
	s.Tape.SetPack(s.Pack)
	return s
}

// NewInferScratch32For presizes the beam buffers for decoding v-vocabulary
// topics at the given beam width, mirroring NewInferScratchFor.
func NewInferScratch32For(v *textproc.Vocab, beamWidth int) *InferScratch32 {
	s := NewInferScratch32()
	if beamWidth > 1 && v != nil {
		s.Beam = nn.NewBeamScratch32(v.Size(), beamWidth, topicMaxLen)
	}
	return s
}

// ExtractBriefWith32 is the student's ExtractBriefWith: one Eval forward on
// the float32 tape, then the extractive brief assembly.
func ExtractBriefWith32(m *JointWB32, inst *Instance, v *textproc.Vocab, s *InferScratch32) *Brief {
	s.Tape.Reset()
	out := m.Forward(s.Tape, inst)
	return extractiveBrief32(out, inst, v)
}

// extractiveBrief32 assembles the extractive half of a briefing from a
// student forward-pass output, mirroring extractiveBrief.
func extractiveBrief32(out *Output32, inst *Instance, v *textproc.Vocab) *Brief {
	b := &Brief{}
	if tags := PredictTags32(out); tags != nil {
		for _, sp := range eval.SpansFromBIO(tags) {
			var words []string
			for i := sp.Start; i < sp.End; i++ {
				words = append(words, v.Token(inst.IDs[i]))
			}
			b.Attributes = append(b.Attributes, words)
		}
	}
	b.Sections = PredictSections32(out)
	return b
}

// GenerateTopicWith32 is the student's GenerateTopicWith: it resets the
// tape, re-runs the full forward and decodes the topic, reporting the
// decode Confidence the cascade routes on.
func GenerateTopicWith32(m *JointWB32, inst *Instance, beamWidth, maxLen int, s *InferScratch32) ([]int, nn.Confidence) {
	s.Tape.Reset()
	out := m.Forward(s.Tape, inst)
	if beamWidth <= 1 {
		return out.Dec.Greedy(s.Tape, out.Memory, textproc.BosID, textproc.EosID, maxLen)
	}
	return out.Dec.BeamSearchScratch(s.Tape, out.Memory, textproc.BosID, textproc.EosID, beamWidth, maxLen, s.Beam)
}

// DecodeTopicWith32 is the student's DecodeTopicWith, additionally
// reporting decode confidence.
func DecodeTopicWith32(m *JointWB32, inst *Instance, v *textproc.Vocab, beamWidth int, s *InferScratch32) ([]string, nn.Confidence) {
	ids, conf := GenerateTopicWith32(m, inst, beamWidth, topicMaxLen, s)
	if ids == nil {
		return nil, conf
	}
	return v.Tokens(ids), conf
}

// MakeBriefWith32 briefs one instance end to end on the student and reports
// the decode confidence for cascade routing.
func MakeBriefWith32(m *JointWB32, inst *Instance, v *textproc.Vocab, beamWidth int, s *InferScratch32) (*Brief, nn.Confidence) {
	b := ExtractBriefWith32(m, inst, v, s)
	topic, conf := DecodeTopicWith32(m, inst, v, beamWidth, s)
	b.Topic = topic
	return b, conf
}

// BatchScratch32 is the student's batched workspace, mirroring BatchScratch:
// one float32 tape and pack buffer shared by the micro-batch plus a beam
// scratch per slot.
type BatchScratch32 struct {
	Tape  *ag.Tape32
	Pack  *tensor.PackBuf32
	beams []*nn.BeamScratch32

	vocabSize int // beam scratch presizing, 0 = lazy
	width     int
	maxLen    int
}

// NewBatchScratch32 returns an empty batched student workspace.
func NewBatchScratch32() *BatchScratch32 {
	s := &BatchScratch32{
		Tape: ag.NewInferTape32(),
		Pack: &tensor.PackBuf32{},
	}
	s.Tape.SetPack(s.Pack)
	return s
}

// NewBatchScratch32For presizes the workspace like NewBatchScratchFor.
func NewBatchScratch32For(v *textproc.Vocab, beamWidth, batchMax int) *BatchScratch32 {
	s := NewBatchScratch32()
	if beamWidth > 1 && v != nil {
		s.vocabSize, s.width, s.maxLen = v.Size(), beamWidth, topicMaxLen
		s.beamScratches(batchMax)
	}
	return s
}

// beamScratches returns n per-slot beam scratches, growing on demand.
func (s *BatchScratch32) beamScratches(n int) []*nn.BeamScratch32 {
	for len(s.beams) < n {
		s.beams = append(s.beams, nn.NewBeamScratch32(s.vocabSize, s.width, s.maxLen))
	}
	return s.beams[:n]
}

// ExtractBriefBatch32 runs the student's batched Eval forward for every
// instance on the shared tape and assembles each extractive brief. The
// returned Outputs feed DecodeTopicBatch32 and die at the next reset.
func ExtractBriefBatch32(m *JointWB32, insts []*Instance, v *textproc.Vocab, s *BatchScratch32) ([]*Brief, []*Output32) {
	s.Tape.Reset()
	var outs []*Output32
	if len(insts) > 1 {
		outs = m.ForwardBatchEval(s.Tape, insts)
	} else {
		outs = make([]*Output32, len(insts))
		for i, inst := range insts {
			outs[i] = m.Forward(s.Tape, inst)
		}
	}
	briefs := make([]*Brief, len(insts))
	for i, out := range outs {
		briefs[i] = extractiveBrief32(out, insts[i], v)
	}
	return briefs, outs
}

// DecodeTopicBatch32 fills briefs[i].Topic from outs[i] and returns each
// instance's decode confidence, mirroring DecodeTopicBatch. Beam widths > 1
// run one batched float32 beam search; width ≤ 1 decodes each greedily.
func DecodeTopicBatch32(m *JointWB32, insts []*Instance, outs []*Output32, v *textproc.Vocab, beamWidth int, s *BatchScratch32, briefs []*Brief) []nn.Confidence {
	confs := make([]nn.Confidence, len(outs))
	if beamWidth <= 1 {
		for i, out := range outs {
			ids, conf := out.Dec.Greedy(s.Tape, out.Memory, textproc.BosID, textproc.EosID, topicMaxLen)
			confs[i] = conf
			if ids != nil {
				briefs[i].Topic = v.Tokens(ids)
			}
		}
		return confs
	}
	mems := make([]*tensor.Matrix32, len(outs))
	for i, out := range outs {
		mems[i] = out.Memory
	}
	dec := m.Dec
	tokIDs, beamConfs := dec.BeamSearchBatch(s.Tape, mems, textproc.BosID, textproc.EosID,
		beamWidth, topicMaxLen, s.beamScratches(len(outs)))
	for i := range outs {
		confs[i] = beamConfs[i]
		if tokIDs[i] != nil {
			briefs[i].Topic = v.Tokens(tokIDs[i])
		}
	}
	return confs
}

// MakeBriefBatch32 briefs a micro-batch end to end on the student and
// returns per-instance decode confidences alongside the briefs.
func MakeBriefBatch32(m *JointWB32, insts []*Instance, v *textproc.Vocab, beamWidth int, s *BatchScratch32) ([]*Brief, []nn.Confidence) {
	briefs, outs := ExtractBriefBatch32(m, insts, v, s)
	confs := DecodeTopicBatch32(m, insts, outs, v, beamWidth, s, briefs)
	return briefs, confs
}
