package wb

import (
	"fmt"
	"io"

	"webbrief/internal/snapshot"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// Snapshot section names for a float32 student bundle. Distinct from the
// teacher's jointwb/* sections so a loader (and wbsnap inspect) can tell
// the two apart from the directory alone.
const (
	snapStudentMetaSection   = "jointwb32/meta"
	snapStudentParamsSection = "jointwb32/params"
)

// studentParam is one named float32 weight matrix in the student's
// deterministic serialisation order.
type studentParam struct {
	name string
	m    *tensor.Matrix32
}

// params32 enumerates every student weight in a fixed order shared by the
// encoder and decoder. Both section-predictor paths are serialised (the
// conversion materialises both), so NoMarkov round-trips regardless of
// which path is active.
func (m *JointWB32) params32() []studentParam {
	ps := []studentParam{{"glove.table", m.Emb.Table}}
	appendLSTM := func(prefix string, wx, wh, bias *tensor.Matrix32) {
		ps = append(ps,
			studentParam{prefix + ".wx", wx},
			studentParam{prefix + ".wh", wh},
			studentParam{prefix + ".b", bias},
		)
	}
	appendLSTM("ext.fwd", m.ExtLSTM.Fwd.Wx, m.ExtLSTM.Fwd.Wh, m.ExtLSTM.Fwd.B)
	appendLSTM("ext.bwd", m.ExtLSTM.Bwd.Wx, m.ExtLSTM.Bwd.Wh, m.ExtLSTM.Bwd.B)
	appendLSTM("gen.fwd", m.GenLSTM.Fwd.Wx, m.GenLSTM.Fwd.Wh, m.GenLSTM.Fwd.B)
	appendLSTM("gen.bwd", m.GenLSTM.Bwd.Wx, m.GenLSTM.Bwd.Wh, m.GenLSTM.Bwd.B)
	ps = append(ps,
		studentParam{"sec.w1", m.Sec.W1.W},
		studentParam{"sec.w2", m.Sec.W2.W},
		studentParam{"sec.indep.w", m.Sec.Indep.W},
		studentParam{"sec.indep.b", m.Sec.Indep.B},
		studentParam{"dec.emb", m.Dec.Emb.Table},
	)
	appendLSTM("dec.cell", m.Dec.Cell.Wx, m.Dec.Cell.Wh, m.Dec.Cell.B)
	ps = append(ps,
		studentParam{"dec.att", m.Dec.Att.W},
		studentParam{"dec.out.w", m.Dec.Out.W},
		studentParam{"dec.out.b", m.Dec.Out.B},
		studentParam{"mem1.w", m.MemPr1.W}, studentParam{"mem1.b", m.MemPr1.B},
		studentParam{"mem2.w", m.MemPr2.W}, studentParam{"mem2.b", m.MemPr2.B},
		studentParam{"wce.w", m.WCE.W}, studentParam{"wce.b", m.WCE.B},
		studentParam{"wq.w", m.WQ.W}, studentParam{"wq.b", m.WQ.B},
		studentParam{"attE.w", m.AttE.W},
		studentParam{"tag.w", m.TagW.W}, studentParam{"tag.b", m.TagW.B},
		studentParam{"wcg.w", m.WCG.W}, studentParam{"wcg.b", m.WCG.B},
		studentParam{"we.w", m.WE.W}, studentParam{"we.b", m.WE.B},
		studentParam{"attG.w", m.AttG.W}, studentParam{"attG.b", m.AttG.B},
	)
	return ps
}

// EncodeStudentSnapshot serialises a float32 student and its vocabulary
// into a version-2 snapshot container with float32 parameter slabs — half
// the bytes of the teacher bundle, and what wbserve's cascade tier loads.
func EncodeStudentSnapshot(m *JointWB32, v *textproc.Vocab) ([]byte, error) {
	var meta snapshot.Buffer
	meta.Uvarint(uint64(m.Emb.Dim()))
	meta.Uvarint(uint64(m.Cfg.Hidden))
	meta.Uvarint(uint64(m.Cfg.TopicLen))
	meta.Uvarint(uint64(m.Cfg.BeamSize))
	noMarkov := uint64(0)
	if m.Sec.NoMarkov {
		noMarkov = 1
	}
	meta.Uvarint(noMarkov)
	tokens := make([]string, v.Size())
	for i := range tokens {
		tokens[i] = v.Token(i)
	}
	meta.Strings(tokens)

	var params snapshot.Buffer
	ps := m.params32()
	params.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		params.String(p.name)
		params.Uvarint(uint64(p.m.Rows))
		params.Uvarint(uint64(p.m.Cols))
		params.Float32s(p.m.Data)
	}

	b := snapshot.NewBuilder()
	if err := b.Add(snapStudentMetaSection, meta.Bytes()); err != nil {
		return nil, err
	}
	if err := b.Add(snapStudentParamsSection, params.Bytes()); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeStudentSnapshot reconstructs a float32 student from
// EncodeStudentSnapshot output. The model skeleton is rebuilt from the
// metadata through the same constructors the live conversion uses, so every
// shape in the params section is validated against a freshly sized matrix.
func DecodeStudentSnapshot(data []byte) (*JointWB32, *textproc.Vocab, error) {
	s, err := snapshot.Decode(data)
	if err != nil {
		return nil, nil, err
	}
	metaPayload, ok := s.Section(snapStudentMetaSection)
	if !ok {
		return nil, nil, fmt.Errorf("wb: snapshot has no %q section", snapStudentMetaSection)
	}
	meta := snapshot.NewReader(metaPayload)
	var fields [5]uint64
	for i, what := range []string{"embDim", "hidden", "topicLen", "beamSize", "noMarkov"} {
		if fields[i], err = meta.Uvarint(); err != nil {
			return nil, nil, fmt.Errorf("wb: student snapshot meta %s: %w", what, err)
		}
	}
	tokens, err := meta.Strings()
	if err != nil {
		return nil, nil, fmt.Errorf("wb: student snapshot vocab: %w", err)
	}
	v := textproc.NewVocab()
	for _, tok := range tokens {
		v.Add(tok)
	}
	if v.Size() != len(tokens) {
		return nil, nil, fmt.Errorf("wb: student snapshot vocabulary has duplicates")
	}

	// Rebuild the skeleton via the teacher constructor + conversion: the
	// float64 scaffold is discarded, but it guarantees the student's shapes
	// can never drift from the live ConvertJointWB path.
	enc := NewGloVeEncoder(tensor.New(v.Size(), int(fields[0])))
	cfg := Config{Hidden: int(fields[1]), TopicLen: int(fields[2]), BeamSize: int(fields[3]), Seed: 1}
	scaffold := NewJointWB("Joint-WB", enc, v.Size(), cfg)
	scaffold.Sec.NoMarkov = fields[4] != 0
	m, err := ConvertJointWB(scaffold)
	if err != nil {
		return nil, nil, err
	}

	paramsPayload, ok := s.Section(snapStudentParamsSection)
	if !ok {
		return nil, nil, fmt.Errorf("wb: snapshot has no %q section", snapStudentParamsSection)
	}
	r := snapshot.NewReader(paramsPayload)
	count, err := r.Uvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("wb: student snapshot params: %w", err)
	}
	ps := m.params32()
	if count != uint64(len(ps)) {
		return nil, nil, fmt.Errorf("wb: student parameter count mismatch: snapshot has %d, model has %d", count, len(ps))
	}
	for i, p := range ps {
		name, err := r.String()
		if err != nil {
			return nil, nil, fmt.Errorf("wb: student snapshot param %d: %w", i, err)
		}
		if name != p.name {
			return nil, nil, fmt.Errorf("wb: student snapshot param %d is %q, want %q", i, name, p.name)
		}
		rows, err := r.Uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("wb: student snapshot param %d (%s): %w", i, name, err)
		}
		cols, err := r.Uvarint()
		if err != nil {
			return nil, nil, fmt.Errorf("wb: student snapshot param %d (%s): %w", i, name, err)
		}
		if int(rows) != p.m.Rows || int(cols) != p.m.Cols {
			return nil, nil, fmt.Errorf("wb: student shape mismatch at %d (%s): snapshot %dx%d, model %dx%d",
				i, name, rows, cols, p.m.Rows, p.m.Cols)
		}
		data, err := r.Float32s()
		if err != nil {
			return nil, nil, fmt.Errorf("wb: student snapshot param %d (%s): %w", i, name, err)
		}
		if len(data) != p.m.Rows*p.m.Cols {
			return nil, nil, fmt.Errorf("wb: student param %d (%s) has %d values, shape needs %d",
				i, name, len(data), p.m.Rows*p.m.Cols)
		}
		copy(p.m.Data, data)
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("wb: student snapshot params section has %d trailing bytes", r.Remaining())
	}
	return m, v, nil
}

// SaveStudentSnapshot writes a student snapshot to w.
func SaveStudentSnapshot(w io.Writer, m *JointWB32, v *textproc.Vocab) error {
	data, err := EncodeStudentSnapshot(m, v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadStudentSnapshot reads a student snapshot written by
// SaveStudentSnapshot.
func LoadStudentSnapshot(r io.Reader) (*JointWB32, *textproc.Vocab, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("wb: read student snapshot: %w", err)
	}
	return DecodeStudentSnapshot(data)
}
