package distill

import (
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// WithPredictedTopics returns copies of insts whose topic fields are
// replaced by topicModel's own generated topics. It is the plumbing of
// Pip-Distill (§IV-A7): the first Dual-Distilled student's output topic is
// fed to the second student's attribute extraction as prior knowledge. An
// empty generation degrades to a single [UNK] so downstream consumers always
// see a non-empty prior.
func WithPredictedTopics(insts []*wb.Instance, topicModel wb.Model, beamWidth, maxLen int) []*wb.Instance {
	out := make([]*wb.Instance, len(insts))
	for i, inst := range insts {
		ids := wb.GenerateTopic(topicModel, inst, beamWidth, maxLen)
		if len(ids) == 0 {
			ids = []int{textproc.UnkID}
		}
		clone := *inst
		clone.TopicIn = append([]int{textproc.BosID}, ids...)
		clone.TopicOut = append(append([]int{}, ids...), textproc.EosID)
		out[i] = &clone
	}
	return out
}

// Pip bundles the two stages of Pip-Distill.
type Pip struct {
	TopicStage *Distiller // Dual-Distill for topic generation
	AttrStage  *Distiller // Dual-Distill for attribute extraction
	BeamWidth  int
	MaxLen     int
}

// Train runs the pipeline: distill the topic student, regenerate the
// instances with its predictions, then distill the attribute student on the
// topic-conditioned instances. It returns the two loss curves.
func (p *Pip) Train(insts []*wb.Instance, tc wb.TrainConfig) (topicLosses, attrLosses []float64) {
	topicLosses = p.TopicStage.Train(insts, tc)
	piped := WithPredictedTopics(insts, p.TopicStage.Student, p.BeamWidth, p.MaxLen)
	attrLosses = p.AttrStage.Train(piped, tc)
	return topicLosses, attrLosses
}

// EvalInstances returns eval-time instances for the attribute stage: topic
// priors come from the topic student, never from gold labels.
func (p *Pip) EvalInstances(insts []*wb.Instance) []*wb.Instance {
	return WithPredictedTopics(insts, p.TopicStage.Student, p.BeamWidth, p.MaxLen)
}
