// Package distill implements the paper's knowledge-distillation framework:
//
//   - Dual-Distill (§III-A): identification distillation L_ID — matching
//     teacher and student attention distributions over the topic phrase
//     matrix R of previously seen topics — plus understanding distillation
//     L_UD — temperature-softened KL between teacher and student output
//     distributions. Total loss L = hard + α·L_ID + γ²·L_UD.
//
//   - Tri-Distill (§III-B): one shared identification distillation and two
//     understanding distillations (attribute extraction + topic generation)
//     in a jointly distilled student:
//     L = hard + λ·L_ID + μ·L_UD^e + ν·γ²·L_UD^s.
//
//   - Pip-Distill (§IV-A7): a pipeline of two Dual-Distills where the first
//     student's generated topic is fed to the second student's attribute
//     extraction as prior knowledge.
//
// The teacher is frozen: its forward runs on a throwaway tape and only its
// values cross into the student's graph. The projection parameters of the
// distillation losses (W_R, W_AT, W_AS) are trained together with the
// student, matching the paper's "trainable parameters".
package distill

import (
	"fmt"
	"math/rand"
	"sync"

	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/opt"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// Task selects what a student is distilled to do.
type Task int

// Distillation tasks.
const (
	TaskAttr  Task = iota // key attribute extraction
	TaskTopic             // topic generation
	TaskJoint             // both jointly (Tri-Distill)
)

// Config holds the distillation hyperparameters of §IV-A5.
type Config struct {
	Alpha  float64 // Dual-Distill ID weight (paper: 0.1)
	Gamma  float64 // softmax temperature (paper: 2)
	Lambda float64 // Tri-Distill shared-ID weight (paper: 0.1)
	Mu     float64 // Tri-Distill attribute-UD weight (paper: 1)
	Nu     float64 // Tri-Distill topic-UD weight (paper: 2.25)
	// UseID / UseUD switch the loss terms for the "ID only" / "UD only"
	// ablations of Table IV.
	UseID bool
	UseUD bool
	// HardLoss includes the supervised loss on the distillation data,
	// following Hinton-style distillation where the soft loss is weighted
	// by γ² against the hard loss.
	HardLoss bool
	// SoftWeight balances the understanding distillation against the hard
	// loss (Hinton's weighted average of the two objectives). The KL term
	// is multiplied by SoftWeight·γ², so with γ=2 a SoftWeight of 0.15
	// gives an effective soft:hard ratio of 0.6 — low enough that the
	// student can overrule a confidently-wrong teacher on unseen domains
	// (the adaptation behaviour §I requires) while still absorbing the
	// teacher's knowledge everywhere else.
	SoftWeight float64
	// RepDim is the width of the topic phrase representations R.
	RepDim int
	Seed   int64
}

// DefaultConfig returns the paper's hyperparameters.
func DefaultConfig() Config {
	return Config{
		Alpha: 0.1, Gamma: 2, Lambda: 0.1, Mu: 1, Nu: 2.25,
		UseID: true, UseUD: true, HardLoss: true, SoftWeight: 0.15,
		RepDim: 16, Seed: 1,
	}
}

// TopicKnowledge carries the stored topics of the seen domains — the
// "representative knowledge of seen domains" the identification distillation
// is guided by. Embeds holds one row per seen topic: the mean of the topic
// tokens' embedding vectors taken from the pre-trained teacher.
type TopicKnowledge struct {
	Embeds *tensor.Matrix // r×dT
}

// BuildTopicKnowledge extracts topic embeddings from the teacher's document
// encoder for the r seen topic phrases (token-id form).
func BuildTopicKnowledge(enc wb.DocEncoder, topics [][]int) *TopicKnowledge {
	table := encoderEmbedding(enc)
	dim := table.Cols
	embeds := tensor.New(len(topics), dim)
	for i, topic := range topics {
		row := embeds.Row(i)
		for _, id := range topic {
			src := table.Row(id)
			for j, v := range src {
				row[j] += v
			}
		}
		inv := 1 / float64(len(topic))
		for j := range row {
			row[j] *= inv
		}
	}
	return &TopicKnowledge{Embeds: embeds}
}

// encoderEmbedding returns the token-embedding table inside a document
// encoder.
func encoderEmbedding(enc wb.DocEncoder) *tensor.Matrix {
	switch e := enc.(type) {
	case *wb.GloVeEncoder:
		return e.Emb.Table.Value
	case *wb.BERTEncoder:
		return e.Tr.Tok.Table.Value
	}
	panic(fmt.Sprintf("distill: unsupported encoder %T", enc))
}

// Distiller trains a student to mimic a frozen teacher.
type Distiller struct {
	Teacher wb.Model
	Student wb.Model
	Task    Task
	Cfg     Config
	Topics  *TopicKnowledge

	// Distillation-time trainable projections.
	WR  *nn.Linear   // topic embeds → R
	WAT *nn.Bilinear // teacher hidden × R
	WAS *nn.Bilinear // student hidden × R

	initialized bool
	rng         *rand.Rand

	// teacherTapes pairs each student tape with a reusable arena tape for
	// the frozen teacher's forward pass. The pairing matters for parallel
	// training: teacher values are read during the student tape's Backward,
	// so the teacher tape may only be reset when its student tape starts
	// the next example — never while another worker still needs it.
	mu           sync.Mutex
	teacherTapes map[*ag.Tape]*ag.Tape
}

// teacherTapeFor returns the reusable teacher tape paired with student tape
// t, creating it on first use.
func (d *Distiller) teacherTapeFor(t *ag.Tape) *ag.Tape {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.teacherTapes == nil {
		d.teacherTapes = make(map[*ag.Tape]*ag.Tape)
	}
	tt := d.teacherTapes[t]
	if tt == nil {
		tt = ag.NewArenaTape()
		d.teacherTapes[t] = tt
	}
	return tt
}

// New creates a distiller. topics are the seen-domain topic phrases in
// token-id form; teacherEnc is the teacher's document encoder, from which
// the stored topic knowledge is read.
func New(teacher, student wb.Model, task Task, teacherEnc wb.DocEncoder, topics [][]int, cfg Config) *Distiller {
	return &Distiller{
		Teacher: teacher,
		Student: student,
		Task:    task,
		Cfg:     cfg,
		Topics:  BuildTopicKnowledge(teacherEnc, topics),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// initProjections sizes W_R / W_AT / W_AS from the first observed hidden
// representations.
func (d *Distiller) initProjections(teacherH, studentH *ag.Node) {
	if d.initialized {
		return
	}
	d.WR = nn.NewLinear("distill.wr", d.Topics.Embeds.Cols, d.Cfg.RepDim, d.rng)
	d.WAT = nn.NewBilinear("distill.wat", teacherH.Cols(), d.Cfg.RepDim, d.rng)
	d.WAS = nn.NewBilinear("distill.was", studentH.Cols(), d.Cfg.RepDim, d.rng)
	d.initialized = true
}

// projParams returns the distillation projections' parameters (empty before
// first use).
func (d *Distiller) projParams() []*ag.Param {
	if !d.initialized {
		return nil
	}
	return nn.CollectParams(d.WR, d.WAT, d.WAS)
}

// hiddenFor selects the representation the identification distillation
// matches for a task: token representations for attribute extraction,
// sentence representations for topic generation, and the token
// representations as the shared representation for joint distillation.
func hiddenFor(task Task, out *wb.Output) *ag.Node {
	if task == TaskTopic {
		return out.SentH
	}
	return out.TokenH
}

// idLoss computes L_ID: the L1 difference between teacher and student
// attention distributions over the topic phrase matrix R (Eq. L_ID). The
// teacher's hidden representations are constants; gradient reaches the
// student's and the three projections.
func (d *Distiller) idLoss(t *ag.Tape, teacherH *tensor.Matrix, studentH *ag.Node) *ag.Node {
	r := t.Tanh(d.WR.Forward(t, t.Const(d.Topics.Embeds))) // r×RepDim
	aT := t.SoftmaxRows(t.MatMulTransB(t.MatMul(t.Const(teacherH), t.Use(d.WAT.W)), r))
	aS := t.SoftmaxRows(t.MatMulTransB(t.MatMul(studentH, t.Use(d.WAS.W)), r))
	return t.L1Between(aT, aS)
}

// udLoss computes L_UD: KL(P_T ‖ P_S) with temperature γ, already scaled by
// γ² per [17] so its gradients match the hard loss's magnitude.
func (d *Distiller) udLoss(t *ag.Tape, teacherLogits *tensor.Matrix, studentLogits *ag.Node) *ag.Node {
	gamma := d.Cfg.Gamma
	pT := teacherLogits.Scale(1 / gamma).SoftmaxRows()
	kl := t.KLDiv(pT, t.Scale(studentLogits, 1/gamma))
	w := d.Cfg.SoftWeight
	if w <= 0 {
		w = 1
	}
	return t.Scale(kl, w*gamma*gamma)
}

// LossOn builds the full distillation loss for one instance on tape t. The
// teacher runs on its own tape in Distill mode (teacher forcing, no
// dropout) and contributes values only.
func (d *Distiller) LossOn(t *ag.Tape, inst *wb.Instance) *ag.Node {
	tt := d.teacherTapeFor(t)
	tt.Reset()
	tOut := d.Teacher.Forward(tt, inst, wb.Distill)
	sOut := d.Student.Forward(t, inst, wb.Train)
	d.initProjections(hiddenFor(d.Task, tOut), hiddenFor(d.Task, sOut))

	var terms []*ag.Node
	if d.Cfg.HardLoss {
		terms = append(terms, d.hardLoss(t, sOut, inst))
	}
	if d.Cfg.UseID {
		th := hiddenFor(d.Task, tOut).Value
		sh := hiddenFor(d.Task, sOut)
		weight := d.Cfg.Alpha
		if d.Task == TaskJoint {
			weight = d.Cfg.Lambda
		}
		terms = append(terms, t.Scale(d.idLoss(t, th, sh), weight))
	}
	if d.Cfg.UseUD {
		switch d.Task {
		case TaskAttr:
			terms = append(terms, d.udLoss(t, tOut.TagLogits.Value, sOut.TagLogits))
		case TaskTopic:
			terms = append(terms, d.udLoss(t, tOut.TopicLogits.Value, sOut.TopicLogits))
		case TaskJoint:
			terms = append(terms,
				t.Scale(d.udLoss(t, tOut.TagLogits.Value, sOut.TagLogits), d.Cfg.Mu),
				t.Scale(d.udLoss(t, tOut.TopicLogits.Value, sOut.TopicLogits), d.Cfg.Nu))
		}
	}
	if len(terms) == 0 {
		panic("distill: no loss terms enabled")
	}
	return t.AddScalars(terms...)
}

// hardLoss is the supervised loss restricted to the distilled task's heads.
func (d *Distiller) hardLoss(t *ag.Tape, out *wb.Output, inst *wb.Instance) *ag.Node {
	var terms []*ag.Node
	if d.Task != TaskTopic && out.TagLogits != nil {
		terms = append(terms, t.CrossEntropy(out.TagLogits, inst.Tags))
	}
	if d.Task != TaskAttr && out.TopicLogits != nil {
		terms = append(terms, t.CrossEntropy(out.TopicLogits, inst.TopicOut))
	}
	if d.Task == TaskJoint && out.SecLogits != nil {
		terms = append(terms, t.BCELoss(out.SecLogits, inst.SentInfo))
	}
	if len(terms) == 0 {
		panic("distill: student lacks the heads for its task")
	}
	return t.AddScalars(terms...)
}

// Train distills the student on insts and returns per-epoch mean losses.
// The optimizer covers the student parameters and the distillation
// projections; the teacher is never updated. Training runs on the shared
// batch-parallel engine (wb.TrainEpochs), so tc.BatchSize and tc.Workers
// apply to distillation exactly as they do to supervised training.
func (d *Distiller) Train(insts []*wb.Instance, tc wb.TrainConfig) []float64 {
	if len(insts) == 0 {
		return nil
	}
	// Build projections on a throwaway pass so the optimizer sees them.
	warm := ag.NewTape()
	d.LossOn(warm, insts[0])

	params := append(append([]*ag.Param{}, d.Student.Params()...), d.projParams()...)
	optim := opt.NewAdam(params, tc.LR)
	optim.Clip = tc.Clip
	if tc.Warmup > 0 {
		optim.Schedule = opt.WarmupDecay{WarmupSteps: tc.Warmup}
	}
	optim.ZeroGrad() // discard warm-up gradients

	return wb.TrainEpochs(optim, params, len(insts), tc, func(t *ag.Tape, idx int) *ag.Node {
		return d.LossOn(t, insts[idx])
	}, nil)
}

// TopicIDs converts topic phrases to token-id form for BuildTopicKnowledge.
func TopicIDs(topics [][]string, v *textproc.Vocab) [][]int {
	out := make([][]int, len(topics))
	for i, tp := range topics {
		out[i] = v.IDs(tp)
	}
	return out
}
