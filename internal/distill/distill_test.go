package distill

import (
	"math"
	"math/rand"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/baselines"
	"webbrief/internal/corpus"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// buildWorld creates a dataset with seen+unseen domains, a shared vocab over
// everything, and instance sets.
func buildWorld(t testing.TB, seen, unseen, pages int) (ds *corpus.Dataset, v *textproc.Vocab, seenInsts, unseenInsts, allInsts []*wb.Instance) {
	t.Helper()
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: pages, SeenDomains: seen, UnseenDomains: unseen})
	if err != nil {
		t.Fatal(err)
	}
	v = corpus.BuildVocab(ds.Pages)
	seenInsts = wb.NewInstances(ds.PagesOf(ds.IsSeen), v, 0)
	unseenInsts = wb.NewInstances(ds.PagesOf(func(d string) bool { return !ds.IsSeen(d) }), v, 0)
	allInsts = wb.NewInstances(ds.Pages, v, 0)
	return ds, v, seenInsts, unseenInsts, allInsts
}

func gloveEnc(v *textproc.Vocab, dim int, seed int64) *wb.GloVeEncoder {
	rng := rand.New(rand.NewSource(seed))
	return wb.NewGloVeEncoder(tensor.Randn(v.Size(), dim, 0.1, rng))
}

func seenTopicIDs(ds *corpus.Dataset, v *textproc.Vocab) [][]int {
	var topics [][]string
	for _, name := range ds.Seen {
		topics = append(topics, corpus.DomainByName(name).Topic)
	}
	return TopicIDs(topics, v)
}

func TestBuildTopicKnowledge(t *testing.T) {
	ds, v, _, _, _ := buildWorld(t, 3, 1, 1)
	enc := gloveEnc(v, 12, 1)
	tk := BuildTopicKnowledge(enc, seenTopicIDs(ds, v))
	if tk.Embeds.Rows != 3 || tk.Embeds.Cols != 12 {
		t.Fatalf("topic knowledge shape %dx%d", tk.Embeds.Rows, tk.Embeds.Cols)
	}
	// The embedding of a topic must be the mean of its token vectors.
	topic := corpus.DomainByName(ds.Seen[0]).Topic
	want := make([]float64, 12)
	for _, tok := range topic {
		row := enc.Emb.Table.Value.Row(v.ID(tok))
		for j, x := range row {
			want[j] += x
		}
	}
	for j := range want {
		want[j] /= float64(len(topic))
		if math.Abs(tk.Embeds.At(0, j)-want[j]) > 1e-12 {
			t.Fatalf("topic embed mismatch at %d", j)
		}
	}
}

func TestDistillLossTermsRespectSwitches(t *testing.T) {
	ds, v, seenInsts, _, _ := buildWorld(t, 2, 1, 2)
	teacher := wb.NewJointWB("teacher", gloveEnc(v, 12, 1), v.Size(), wb.Config{Hidden: 8, TopicLen: 4, Seed: 1})
	topics := seenTopicIDs(ds, v)

	mk := func(cfg Config) float64 {
		student := baselines.NewSingleGenerator("stud", gloveEnc(v, 12, 2), v.Size(), 8, false, 2)
		d := New(teacher, student, TaskTopic, teacher.Enc, topics, cfg)
		tp := ag.NewTape()
		return d.LossOn(tp, seenInsts[0]).Value.Data[0]
	}
	full := DefaultConfig()
	idOnly := DefaultConfig()
	idOnly.UseUD = false
	udOnly := DefaultConfig()
	udOnly.UseID = false
	hardOnly := DefaultConfig()
	hardOnly.UseID = false
	hardOnly.UseUD = false

	lFull, lID, lUD, lHard := mk(full), mk(idOnly), mk(udOnly), mk(hardOnly)
	if !(lFull > lID && lFull > lUD && lID > lHard && lUD > lHard) {
		t.Fatalf("loss term accounting wrong: full=%v id=%v ud=%v hard=%v", lFull, lID, lUD, lHard)
	}
}

func TestDistillNoTermsPanics(t *testing.T) {
	ds, v, seenInsts, _, _ := buildWorld(t, 2, 1, 1)
	teacher := wb.NewJointWB("teacher", gloveEnc(v, 12, 1), v.Size(), wb.Config{Hidden: 8, TopicLen: 4, Seed: 1})
	cfg := DefaultConfig()
	cfg.UseID, cfg.UseUD, cfg.HardLoss = false, false, false
	student := baselines.NewSingleGenerator("stud", gloveEnc(v, 12, 2), v.Size(), 8, false, 2)
	d := New(teacher, student, TaskTopic, teacher.Enc, seenTopicIDs(ds, v), cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with no loss terms")
		}
	}()
	d.LossOn(ag.NewTape(), seenInsts[0])
}

func TestDistillGradReachesStudentNotTeacher(t *testing.T) {
	ds, v, seenInsts, _, _ := buildWorld(t, 2, 1, 1)
	teacher := wb.NewJointWB("teacher", gloveEnc(v, 12, 1), v.Size(), wb.Config{Hidden: 8, TopicLen: 4, Seed: 1})
	student := baselines.NewSingleExtractor("stud", gloveEnc(v, 12, 2), v.Size(), 8, false, false, 2)
	d := New(teacher, student, TaskAttr, teacher.Enc, seenTopicIDs(ds, v), DefaultConfig())
	tp := ag.NewTape()
	loss := d.LossOn(tp, seenInsts[0])
	tp.Backward(loss)
	studentTouched := false
	for _, p := range student.Params() {
		if p.Grad.MaxAbs() > 0 {
			studentTouched = true
		}
	}
	if !studentTouched {
		t.Fatal("no gradient reached the student")
	}
	for _, p := range teacher.Params() {
		if p.Grad.MaxAbs() != 0 {
			t.Fatalf("teacher parameter %s received gradient — teacher must stay frozen", p.Name)
		}
	}
	// The distillation projections must also train.
	for _, p := range d.projParams() {
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("no gradient to projection %s", p.Name)
		}
	}
}

func TestUDTemperatureSoftensTargets(t *testing.T) {
	// Directly verify the γ² scaling and softened teacher distribution.
	ds, v, seenInsts, _, _ := buildWorld(t, 2, 1, 1)
	teacher := wb.NewJointWB("teacher", gloveEnc(v, 12, 1), v.Size(), wb.Config{Hidden: 8, TopicLen: 4, Seed: 1})
	student := baselines.NewSingleExtractor("stud", gloveEnc(v, 12, 2), v.Size(), 8, false, false, 2)
	cfgLo := DefaultConfig()
	cfgLo.Gamma = 1
	cfgLo.UseID = false
	cfgLo.HardLoss = false
	cfgHi := cfgLo
	cfgHi.Gamma = 4
	dLo := New(teacher, student, TaskAttr, teacher.Enc, seenTopicIDs(ds, v), cfgLo)
	dHi := New(teacher, student, TaskAttr, teacher.Enc, seenTopicIDs(ds, v), cfgHi)
	lLo := dLo.LossOn(ag.NewTape(), seenInsts[0]).Value.Data[0]
	lHi := dHi.LossOn(ag.NewTape(), seenInsts[0]).Value.Data[0]
	if lLo <= 0 || lHi <= 0 {
		t.Fatalf("UD losses must be positive: %v %v", lLo, lHi)
	}
	if lLo == lHi {
		t.Fatal("temperature had no effect")
	}
}

// End-to-end Dual-Distill: teacher trained on seen domains performs poorly
// on unseen ones; the distilled student must close most of that gap while
// staying reasonable on seen domains — the headline result of Table IV.
func TestDualDistillAdaptsToUnseenDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	ds, v, seenInsts, unseenInsts, allInsts := buildWorld(t, 3, 2, 6)

	teacher := wb.NewJointWB("teacher", gloveEnc(v, 16, 1), v.Size(), wb.Config{Hidden: 16, Dropout: 0.2, TopicLen: 4, Seed: 1})
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 40
	wb.TrainModel(teacher, seenInsts, tc)

	teacherSeenEM, _ := wb.EvaluateTopics(teacher, seenInsts, v, 1, 4)
	teacherUnseenEM, _ := wb.EvaluateTopics(teacher, unseenInsts, v, 1, 4)
	if teacherSeenEM < 60 {
		t.Fatalf("teacher failed to learn seen domains: EM %.1f", teacherSeenEM)
	}
	if teacherUnseenEM >= teacherSeenEM {
		t.Fatalf("unseen domains should be harder for the teacher: seen %.1f unseen %.1f", teacherSeenEM, teacherUnseenEM)
	}

	student := baselines.NewSingleGenerator("student", gloveEnc(v, 16, 7), v.Size(), 16, false, 7)
	d := New(teacher, student, TaskTopic, teacher.Enc, seenTopicIDs(ds, v), DefaultConfig())
	dtc := wb.DefaultTrainConfig()
	dtc.Epochs = 25
	losses := d.Train(allInsts, dtc)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("distillation loss not decreasing: %v", losses)
	}

	studentUnseenEM, _ := wb.EvaluateTopics(student, unseenInsts, v, 1, 4)
	if studentUnseenEM <= teacherUnseenEM {
		t.Fatalf("distilled student must beat the teacher on unseen domains: teacher %.1f student %.1f",
			teacherUnseenEM, studentUnseenEM)
	}
}

func TestTriDistillJointStudent(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	ds, v, seenInsts, _, allInsts := buildWorld(t, 2, 1, 6)
	teacher := wb.NewJointWB("teacher", gloveEnc(v, 16, 1), v.Size(), wb.Config{Hidden: 16, Dropout: 0.2, TopicLen: 4, Seed: 1})
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 20
	wb.TrainModel(teacher, seenInsts, tc)

	student := baselines.NewJoint(baselines.ExchangeNone, gloveEnc(v, 16, 8), v.Size(), 16, 8)
	d := New(teacher, student, TaskJoint, teacher.Enc, seenTopicIDs(ds, v), DefaultConfig())
	dtc := wb.DefaultTrainConfig()
	dtc.Epochs = 25
	losses := d.Train(allInsts, dtc)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("Tri-Distill loss not decreasing: %v", losses)
	}
	// The joint student must have learned something on both tasks.
	prf := wb.EvaluateExtraction(student, allInsts)
	em, _ := wb.EvaluateTopics(student, allInsts, v, 1, 4)
	if prf.F1 < 30 || em < 30 {
		t.Fatalf("Tri-Distill student too weak: F1 %.1f EM %.1f", prf.F1, em)
	}
}

func TestWithPredictedTopics(t *testing.T) {
	_, v, seenInsts, _, _ := buildWorld(t, 2, 1, 1)
	gen := baselines.NewSingleGenerator("g", gloveEnc(v, 12, 3), v.Size(), 8, false, 3)
	piped := WithPredictedTopics(seenInsts, gen, 1, 4)
	if len(piped) != len(seenInsts) {
		t.Fatal("instance count changed")
	}
	for i, p := range piped {
		if p.TopicIn[0] != textproc.BosID {
			t.Fatal("piped TopicIn must start with BOS")
		}
		if p.TopicOut[len(p.TopicOut)-1] != textproc.EosID {
			t.Fatal("piped TopicOut must end with EOS")
		}
		if len(p.TopicIn) < 2 {
			t.Fatal("piped topic must be non-empty")
		}
		// Original instances untouched.
		if &seenInsts[i].TopicIn[0] == &p.TopicIn[0] {
			t.Fatal("WithPredictedTopics must not alias originals")
		}
	}
}

func TestTopicIDs(t *testing.T) {
	v := textproc.NewVocab()
	v.Add("book")
	v.Add("shop")
	ids := TopicIDs([][]string{{"book", "shop"}, {"unknown", "book"}}, v)
	if ids[0][0] != v.ID("book") || ids[1][0] != textproc.UnkID {
		t.Fatalf("TopicIDs: %v", ids)
	}
}

// Property: the total distillation loss decomposes additively — for any
// instance, loss(full) == loss(hard-only) + loss(ID-only, no hard) +
// loss(UD-only, no hard) within float tolerance, because the terms are
// independent summands.
func TestDistillLossDecomposition(t *testing.T) {
	ds, v, seenInsts, _, _ := buildWorld(t, 2, 1, 2)
	teacher := wb.NewJointWB("teacher", gloveEnc(v, 12, 1), v.Size(), wb.Config{Hidden: 8, TopicLen: 4, Seed: 1})
	topics := seenTopicIDs(ds, v)
	loss := func(hard, id, ud bool) float64 {
		cfg := DefaultConfig()
		cfg.HardLoss, cfg.UseID, cfg.UseUD = hard, id, ud
		student := baselines.NewSingleGenerator("stud", gloveEnc(v, 12, 2), v.Size(), 8, false, 2)
		d := New(teacher, student, TaskTopic, teacher.Enc, topics, cfg)
		return d.LossOn(ag.NewTape(), seenInsts[0]).Value.Data[0]
	}
	full := loss(true, true, true)
	parts := loss(true, false, false) + loss(false, true, false) + loss(false, false, true)
	if math.Abs(full-parts) > 1e-9*math.Max(1, math.Abs(full)) {
		t.Fatalf("loss not additive: full=%v parts=%v", full, parts)
	}
}

// The γ² scaling (per [17]) must hold exactly: doubling γ with UD-only loss
// scales the loss by the temperature-softened KL at the new temperature
// times the new γ² — verify the implementation multiplies by SoftWeight·γ².
func TestUDLossGammaSquaredScaling(t *testing.T) {
	ds, v, seenInsts, _, _ := buildWorld(t, 2, 1, 1)
	teacher := wb.NewJointWB("teacher", gloveEnc(v, 12, 1), v.Size(), wb.Config{Hidden: 8, TopicLen: 4, Seed: 1})
	topics := seenTopicIDs(ds, v)
	// With γ=1 the softening is the identity, so the loss must equal
	// SoftWeight times the plain KL; doubling SoftWeight doubles it.
	mk := func(soft float64) float64 {
		cfg := DefaultConfig()
		cfg.HardLoss, cfg.UseID = false, false
		cfg.Gamma = 1
		cfg.SoftWeight = soft
		student := baselines.NewSingleGenerator("stud", gloveEnc(v, 12, 2), v.Size(), 8, false, 2)
		d := New(teacher, student, TaskTopic, teacher.Enc, topics, cfg)
		return d.LossOn(ag.NewTape(), seenInsts[0]).Value.Data[0]
	}
	a, b := mk(0.25), mk(0.5)
	if math.Abs(b-2*a) > 1e-9*math.Max(1, b) {
		t.Fatalf("SoftWeight scaling broken: %v vs 2×%v", b, a)
	}
}
