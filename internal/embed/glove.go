// Package embed provides the two word-representation regimes the paper's
// baselines compare (§IV-A6): context-independent embeddings learned with
// the GloVe objective, and context-dependent embeddings from a MiniBERT
// transformer pre-trained with masked-language-model (MLM) self-supervision
// on the corpus.
package embed

import (
	"math"
	"math/rand"
	"sort"

	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/opt"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
)

// GloVeConfig controls GloVe training.
type GloVeConfig struct {
	Dim    int     // embedding width
	Window int     // symmetric co-occurrence window
	XMax   float64 // weighting cutoff (GloVe's x_max, 100 in the paper)
	Alpha  float64 // weighting exponent (0.75)
	Epochs int
	LR     float64
	Seed   int64
}

// DefaultGloVeConfig returns the standard GloVe hyperparameters scaled to
// this corpus.
func DefaultGloVeConfig(dim int) GloVeConfig {
	return GloVeConfig{Dim: dim, Window: 4, XMax: 50, Alpha: 0.75, Epochs: 12, LR: 0.05, Seed: 1}
}

// cooc is a sparse co-occurrence accumulator.
type cooc map[[2]int]float64

// CountCooccurrences accumulates distance-weighted co-occurrence counts over
// token-id documents, the GloVe statistic X_ij.
func CountCooccurrences(docs [][]int, window int) map[[2]int]float64 {
	x := make(cooc)
	for _, doc := range docs {
		for i, wi := range doc {
			for d := 1; d <= window && i+d < len(doc); d++ {
				wj := doc[i+d]
				w := 1 / float64(d)
				x[[2]int{wi, wj}] += w
				x[[2]int{wj, wi}] += w
			}
		}
	}
	return x
}

// TrainGloVe learns vocabSize×dim word vectors from token-id documents by
// AdaGrad on the GloVe objective
//
//	J = Σ_ij f(X_ij) (w_i·w̃_j + b_i + b̃_j − log X_ij)²
//
// and returns the sum of the word and context matrices, GloVe's standard
// output.
func TrainGloVe(docs [][]int, vocabSize int, cfg GloVeConfig) *tensor.Matrix {
	rng := rand.New(rand.NewSource(cfg.Seed))
	x := CountCooccurrences(docs, cfg.Window)
	pairs := make([]pair, 0, len(x))
	for ij, v := range x {
		pairs = append(pairs, pair{ij[0], ij[1], v})
	}
	// Deterministic order before shuffling with the seeded rng.
	sortPairs(pairs)

	scale := 0.5 / float64(cfg.Dim)
	w := tensor.Uniform(vocabSize, cfg.Dim, -scale, scale, rng)
	wc := tensor.Uniform(vocabSize, cfg.Dim, -scale, scale, rng)
	b := make([]float64, vocabSize)
	bc := make([]float64, vocabSize)
	// AdaGrad accumulators.
	gw := tensor.Full(vocabSize, cfg.Dim, 1e-8)
	gwc := tensor.Full(vocabSize, cfg.Dim, 1e-8)
	gb := make([]float64, vocabSize)
	gbc := make([]float64, vocabSize)
	for i := range gb {
		gb[i], gbc[i] = 1e-8, 1e-8
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		for _, p := range pairs {
			wi := w.Row(p.i)
			wj := wc.Row(p.j)
			var dot float64
			for k := range wi {
				dot += wi[k] * wj[k]
			}
			diff := dot + b[p.i] + bc[p.j] - math.Log(p.x)
			f := 1.0
			if p.x < cfg.XMax {
				f = math.Pow(p.x/cfg.XMax, cfg.Alpha)
			}
			g := f * diff
			gwi := gw.Row(p.i)
			gwj := gwc.Row(p.j)
			for k := range wi {
				gradW := g * wj[k]
				gradC := g * wi[k]
				gwi[k] += gradW * gradW
				gwj[k] += gradC * gradC
				wi[k] -= cfg.LR * gradW / math.Sqrt(gwi[k])
				wj[k] -= cfg.LR * gradC / math.Sqrt(gwj[k])
			}
			gb[p.i] += g * g
			gbc[p.j] += g * g
			b[p.i] -= cfg.LR * g / math.Sqrt(gb[p.i])
			bc[p.j] -= cfg.LR * g / math.Sqrt(gbc[p.j])
		}
	}
	return w.Add(wc)
}

// pair is one nonzero co-occurrence cell.
type pair struct {
	i, j int
	x    float64
}

// sortPairs orders pairs deterministically (row-major) so training is
// reproducible regardless of map iteration order.
func sortPairs(pairs []pair) {
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
}

// CosineSimilarity returns the cosine of the angle between rows i and j.
func CosineSimilarity(m *tensor.Matrix, i, j int) float64 {
	a, b := m.Row(i), m.Row(j)
	var dot, na, nb float64
	for k := range a {
		dot += a[k] * b[k]
		na += a[k] * a[k]
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// MLMConfig controls masked-language-model pre-training.
type MLMConfig struct {
	MaskProb float64 // fraction of positions masked (BERT uses 0.15)
	Steps    int     // number of documents processed
	LR       float64
	Seed     int64
}

// DefaultMLMConfig returns BERT-style MLM hyperparameters at corpus scale.
func DefaultMLMConfig() MLMConfig {
	return MLMConfig{MaskProb: 0.15, Steps: 300, LR: 1e-3, Seed: 1}
}

// PretrainMLM pre-trains tr in place on token-id documents with masked-token
// prediction, the self-supervision that makes MiniBERT a "pre-trained"
// context-dependent encoder before fine-tuning (the BERT→* and BERTSUM→*
// baselines fine-tune this). It returns the average loss of the final 10% of
// steps as a convergence signal.
func PretrainMLM(tr *nn.Transformer, docs [][]int, cfg MLMConfig) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	head := nn.NewLinear("mlm.head", tr.Config.Dim, tr.Config.Vocab, rng)
	params := append(tr.Params(), head.Params()...)
	optim := opt.NewAdam(params, cfg.LR)
	optim.Clip = 1.0

	var tail []float64
	for step := 0; step < cfg.Steps; step++ {
		doc := docs[rng.Intn(len(docs))]
		if len(doc) < 4 {
			continue
		}
		n := len(doc)
		if n > tr.Config.MaxLen {
			start := rng.Intn(n - tr.Config.MaxLen + 1)
			doc = doc[start : start+tr.Config.MaxLen]
			n = tr.Config.MaxLen
		}
		masked := make([]int, n)
		targets := make([]int, n)
		anyMasked := false
		for i, id := range doc {
			masked[i] = id
			targets[i] = -1
			if rng.Float64() < cfg.MaskProb {
				targets[i] = id
				anyMasked = true
				switch r := rng.Float64(); {
				case r < 0.8:
					masked[i] = textproc.MaskID
				case r < 0.9:
					masked[i] = rng.Intn(tr.Config.Vocab)
				}
			}
		}
		if !anyMasked {
			targets[0] = doc[0]
			masked[0] = textproc.MaskID
		}
		tp := ag.NewTape()
		h := tr.Encode(tp, masked, nil)
		loss := tp.CrossEntropy(head.Forward(tp, h), targets)
		tp.Backward(loss)
		optim.Step()
		if step >= cfg.Steps*9/10 {
			tail = append(tail, loss.Value.Data[0])
		}
	}
	if len(tail) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range tail {
		sum += v
	}
	return sum / float64(len(tail))
}
