package embed

import (
	"math"
	"math/rand"
	"testing"

	"webbrief/internal/nn"
	"webbrief/internal/textproc"
)

func TestCountCooccurrences(t *testing.T) {
	docs := [][]int{{0, 1, 2}}
	x := CountCooccurrences(docs, 2)
	// (0,1) at distance 1 → weight 1, symmetric.
	if x[[2]int{0, 1}] != 1 || x[[2]int{1, 0}] != 1 {
		t.Fatalf("adjacent: %v", x)
	}
	// (0,2) at distance 2 → weight 0.5.
	if x[[2]int{0, 2}] != 0.5 {
		t.Fatalf("distance-2: %v", x)
	}
	// Window limit.
	x2 := CountCooccurrences([][]int{{0, 1, 2, 3}}, 1)
	if _, ok := x2[[2]int{0, 2}]; ok {
		t.Fatal("window not respected")
	}
}

func TestCountCooccurrencesAccumulates(t *testing.T) {
	docs := [][]int{{0, 1}, {0, 1}, {0, 1}}
	x := CountCooccurrences(docs, 2)
	if x[[2]int{0, 1}] != 3 {
		t.Fatalf("accumulation: %v", x[[2]int{0, 1}])
	}
}

// buildSyntheticCorpus creates two "domains" of words that co-occur within
// but not across domains; GloVe must place same-domain words closer.
func buildSyntheticCorpus(rng *rand.Rand) [][]int {
	var docs [][]int
	for d := 0; d < 200; d++ {
		var doc []int
		base := 0
		if d%2 == 1 {
			base = 5
		}
		for i := 0; i < 12; i++ {
			doc = append(doc, base+rng.Intn(5))
		}
		docs = append(docs, doc)
	}
	return docs
}

func TestTrainGloVeSemanticStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs := buildSyntheticCorpus(rng)
	cfg := DefaultGloVeConfig(16)
	vecs := TrainGloVe(docs, 10, cfg)
	if vecs.Rows != 10 || vecs.Cols != 16 {
		t.Fatalf("shape %dx%d", vecs.Rows, vecs.Cols)
	}
	// Words 0..4 co-occur; words 5..9 co-occur; cross-domain pairs never do.
	within := (CosineSimilarity(vecs, 0, 1) + CosineSimilarity(vecs, 5, 6)) / 2
	across := (CosineSimilarity(vecs, 0, 5) + CosineSimilarity(vecs, 1, 6)) / 2
	if within <= across {
		t.Fatalf("GloVe failed to separate domains: within=%v across=%v", within, across)
	}
}

func TestTrainGloVeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	docs := buildSyntheticCorpus(rng)
	cfg := DefaultGloVeConfig(8)
	cfg.Epochs = 2
	a := TrainGloVe(docs, 10, cfg)
	b := TrainGloVe(docs, 10, cfg)
	if !a.Equal(b, 0) {
		t.Fatal("GloVe training not deterministic for a fixed seed")
	}
}

func TestCosineSimilarityEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	docs := buildSyntheticCorpus(rng)
	vecs := TrainGloVe(docs, 10, DefaultGloVeConfig(8))
	if s := CosineSimilarity(vecs, 0, 0); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self-similarity: %v", s)
	}
}

func TestPretrainMLMReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vocab := 30
	// Highly predictable sequences: token i+1 follows token i.
	var docs [][]int
	for d := 0; d < 20; d++ {
		start := textproc.MaskID + 1 + rng.Intn(5)
		var doc []int
		for i := 0; i < 12; i++ {
			doc = append(doc, (start+i)%vocab)
			if doc[i] <= textproc.MaskID {
				doc[i] = textproc.MaskID + 1
			}
		}
		docs = append(docs, doc)
	}
	cfg := nn.TransformerConfig{Vocab: vocab, Dim: 16, Heads: 2, Layers: 1, FFDim: 32, MaxLen: 16}
	tr := nn.NewTransformer("mini", cfg, rng)

	short := DefaultMLMConfig()
	short.Steps = 20
	tr0 := nn.NewTransformer("mini0", cfg, rand.New(rand.NewSource(4)))
	early := PretrainMLM(tr0, docs, short)

	long := DefaultMLMConfig()
	long.Steps = 400
	late := PretrainMLM(tr, docs, long)
	if !(late < early) {
		t.Fatalf("MLM loss did not decrease: early=%v late=%v", early, late)
	}
	if math.IsNaN(late) || late > 3.0 {
		t.Fatalf("MLM failed to learn predictable corpus: %v", late)
	}
}

func BenchmarkTrainGloVe(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	docs := buildSyntheticCorpus(rng)
	cfg := DefaultGloVeConfig(16)
	cfg.Epochs = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TrainGloVe(docs, 10, cfg)
	}
}
