//go:build wbdebug

package tensor

import (
	"math"
	"strings"
	"testing"
)

func mustPanicFinite(t *testing.T, kernel string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected non-finite panic from %s, got none", kernel)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, kernel) || !strings.Contains(msg, "non-finite") {
			t.Fatalf("panic %v does not name kernel %s as non-finite source", r, kernel)
		}
	}()
	f()
}

// TestFiniteGuardTrapsNaN: a NaN flowing through a destination-passing
// kernel must be reported by that kernel, under its name.
func TestFiniteGuardTrapsNaN(t *testing.T) {
	a := Full(2, 2, 1)
	b := Full(2, 2, 2)
	a.Data[3] = math.NaN()
	mustPanicFinite(t, "AddInto", func() { AddInto(New(2, 2), a, b) })
}

// TestFiniteGuardTrapsInf: overflow to +Inf is caught at the producing
// kernel (here scaling by an enormous factor).
func TestFiniteGuardTrapsInf(t *testing.T) {
	a := Full(1, 2, math.MaxFloat64)
	mustPanicFinite(t, "ScaleInto", func() { ScaleInto(New(1, 2), a, 2) })
}

// TestFiniteGuardPassesCleanData: ordinary finite data must flow through
// guarded kernels untouched.
func TestFiniteGuardPassesCleanData(t *testing.T) {
	a := Full(2, 3, 0.5)
	b := Full(2, 3, -0.25)
	dst := New(2, 3)
	AddInto(dst, a, b)
	if dst.Data[0] != 0.25 {
		t.Fatalf("AddInto produced %v, want 0.25", dst.Data[0])
	}
}
