package tensor

// Arena is a bump allocator for matrices with identical lifetimes — the
// intermediate values and gradients of one training step. Alloc hands out
// zeroed matrices carved from large reusable slabs; Reset rewinds the arena
// so the next step reuses the same memory. Steady-state training therefore
// performs near-zero heap allocation per step: after the first step sizes
// every slab, later steps only pay a memset per allocation (which New would
// pay anyway via make).
//
// An Arena is not safe for concurrent use; parallel training gives each
// worker its own arena-backed tape.
type Arena struct {
	slabs [][]float64
	slab  int // index of the slab currently being filled
	off   int // fill offset within slabs[slab]

	mats   [][]Matrix
	matBlk int
	matOff int
}

// arenaSlabFloats is the default slab size (64k floats = 512 KiB). Requests
// larger than a slab get a dedicated exactly-sized slab.
const arenaSlabFloats = 1 << 16

// arenaMatBlock is how many Matrix headers are allocated per header block.
// Blocks are never reallocated, so *Matrix pointers stay valid for the
// arena's lifetime.
const arenaMatBlock = 512

// NewArena returns an empty arena. Slabs are allocated lazily on first use.
func NewArena() *Arena { return &Arena{} }

// AllocFloats returns a zeroed slice of n floats backed by the arena. The
// slice is full-capacity-clipped so appends never bleed into neighbours.
func (a *Arena) AllocFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	for {
		if a.slab == len(a.slabs) {
			size := arenaSlabFloats
			if n > size {
				size = n
			}
			a.slabs = append(a.slabs, make([]float64, size))
		}
		if s := a.slabs[a.slab]; a.off+n <= len(s) {
			out := s[a.off : a.off+n : a.off+n]
			a.off += n
			for i := range out {
				out[i] = 0
			}
			return out
		}
		a.slab++
		a.off = 0
	}
}

// Alloc returns a zeroed rows×cols matrix whose header and data both live in
// the arena. It panics on non-positive dimensions, like New.
func (a *Arena) Alloc(rows, cols int) *Matrix {
	m := a.allocHeader(rows, cols)
	m.Data = a.AllocFloats(rows * cols)
	return m
}

// AllocShared returns a rows×cols matrix header viewing data, without
// copying. It is the arena analogue of FromSlice.
func (a *Arena) AllocShared(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic("tensor: AllocShared data length does not match shape")
	}
	m := a.allocHeader(rows, cols)
	m.Data = data
	return m
}

func (a *Arena) allocHeader(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("tensor: Arena.Alloc invalid shape")
	}
	if a.matBlk == len(a.mats) {
		a.mats = append(a.mats, make([]Matrix, arenaMatBlock))
	}
	blk := a.mats[a.matBlk]
	m := &blk[a.matOff]
	m.Rows, m.Cols = rows, cols
	a.matOff++
	if a.matOff == len(blk) {
		a.matBlk++
		a.matOff = 0
	}
	return m
}

// Reset rewinds the arena so all previously allocated matrices may be
// reused. The caller must ensure nothing from before the Reset is still
// referenced: old matrices will alias new ones.
func (a *Arena) Reset() {
	a.slab, a.off = 0, 0
	a.matBlk, a.matOff = 0, 0
}

// Footprint reports the total floats held across all slabs — the arena's
// steady-state memory, exposed for capacity diagnostics and tests.
func (a *Arena) Footprint() int {
	n := 0
	for _, s := range a.slabs {
		n += len(s)
	}
	return n
}
