package tensor

import (
	"math/rand"
	"testing"
)

// kernelShapes is the property-test shape grid: odd dims, single rows and
// columns, degenerate zero-row/zero-column operands (constructed through
// FromSlice, since New rejects them), and a few square/rectangular bulk
// shapes that cross the packing and tiling thresholds.
var kernelShapes = []struct{ r, k, c int }{
	{1, 1, 1},
	{1, 16, 64}, // LSTM-step profile: one row, wide output
	{7, 1, 5},   // inner dim 1
	{5, 7, 1},   // single output column
	{1, 1, 9}, {9, 1, 1},
	{3, 5, 7}, {7, 5, 3}, // odd everything
	{4, 4, 4}, {8, 8, 8},
	{33, 17, 29},                    // off-by-one around the quad width
	{64, 64, 64},                    // crosses packMinRows and fills several panels
	{0, 3, 4}, {3, 0, 4}, {3, 4, 0}, // empty operands
}

// randMat fills a shape with uniform values; zeroFrac entries are forced to
// exactly 0 to exercise the reference kernels' zero-skip branch against the
// branchless blocked kernels.
func randMat(rows, cols int, zeroFrac float64, rng *rand.Rand) *Matrix {
	data := make([]float64, rows*cols)
	for i := range data {
		if rng.Float64() < zeroFrac {
			continue
		}
		data[i] = rng.NormFloat64()
	}
	return FromSlice(rows, cols, data)
}

// exactEqual requires identical shape and exactly equal entries (== treats
// +0 and -0 as equal, the one sign difference the blocked kernels permit).
func exactEqual(t *testing.T, what string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("%s: entry %d = %v, want %v (must be bitwise-order identical)", what, i, got.Data[i], v)
		}
	}
}

// TestKernelEquivalenceMatMul checks every matmul entry point — the
// unpacked blocked kernel, the panel-packed kernel, and the accumulate
// semantics over a nonzero destination — against referenceMatMul.
func TestKernelEquivalenceMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pack := &PackBuf{}
	for _, sh := range kernelShapes {
		for _, zeroFrac := range []float64{0, 0.3} {
			m := randMat(sh.r, sh.k, zeroFrac, rng)
			o := randMat(sh.k, sh.c, zeroFrac, rng)
			seed := randMat(sh.r, sh.c, 0, rng) // accumulate onto nonzero dst

			want := FromSlice(sh.r, sh.c, append([]float64(nil), seed.Data...))
			referenceMatMul(want, m, o)

			got := FromSlice(sh.r, sh.c, append([]float64(nil), seed.Data...))
			matMulRows(got, m, o, 0, m.Rows)
			exactEqual(t, "matMulRows", got, want)

			packed := FromSlice(sh.r, sh.c, append([]float64(nil), seed.Data...))
			matMulIntoPacked(packed, m, o, pack)
			exactEqual(t, "matMulIntoPacked", packed, want)

			if sh.r > 0 && sh.k > 0 && sh.c > 0 {
				viaAPI := New(sh.r, sh.c)
				copy(viaAPI.Data, seed.Data)
				MatMulPackInto(viaAPI, m, o, pack)
				exactEqual(t, "MatMulPackInto", viaAPI, want)
			}
		}
	}
}

// TestKernelEquivalenceMatMulTransB checks the register-quad m·oᵀ kernel.
func TestKernelEquivalenceMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range kernelShapes {
		for _, zeroFrac := range []float64{0, 0.3} {
			m := randMat(sh.r, sh.k, zeroFrac, rng)
			o := randMat(sh.c, sh.k, zeroFrac, rng) // o shares m's col count
			want := FromSlice(sh.r, sh.c, make([]float64, sh.r*sh.c))
			referenceMatMulTransB(want, m, o)
			got := FromSlice(sh.r, sh.c, make([]float64, sh.r*sh.c))
			matMulTransBBlocked(got, m, o)
			exactEqual(t, "matMulTransBBlocked", got, want)
		}
	}
}

// TestKernelEquivalenceMatMulTransA checks the branchless mᵀ·o kernel,
// including accumulate semantics and zero-laden inputs where the reference
// kernel's skip branch fires.
func TestKernelEquivalenceMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range kernelShapes {
		for _, zeroFrac := range []float64{0, 0.3} {
			m := randMat(sh.k, sh.r, zeroFrac, rng)
			o := randMat(sh.k, sh.c, zeroFrac, rng)
			seed := randMat(sh.r, sh.c, 0, rng)

			want := FromSlice(sh.r, sh.c, append([]float64(nil), seed.Data...))
			referenceMatMulTransA(want, m, o)
			got := FromSlice(sh.r, sh.c, append([]float64(nil), seed.Data...))
			matMulTransARows(got, m, o, 0, m.Rows)
			exactEqual(t, "matMulTransARows", got, want)
		}
	}
}

// TestKernelEquivalenceTranspose checks the tiled transpose, including
// shapes that do not divide the tile edge.
func TestKernelEquivalenceTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sh := range []struct{ r, c int }{
		{1, 1}, {1, 9}, {9, 1}, {3, 5}, {31, 33}, {32, 32}, {65, 40}, {100, 7}, {0, 5}, {5, 0},
	} {
		m := randMat(sh.r, sh.c, 0, rng)
		want := FromSlice(sh.c, sh.r, make([]float64, sh.r*sh.c))
		referenceTranspose(want, m)
		got := FromSlice(sh.c, sh.r, make([]float64, sh.r*sh.c))
		transposeBlocked(got, m)
		exactEqual(t, "transposeBlocked", got, want)
	}
}

// TestPackBufReuse verifies a PackBuf grows once and is allocation-free
// afterwards — the caller-owned-workspace contract InferScratch relies on.
func TestPackBufReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pack := &PackBuf{}
	m := randMat(16, 24, 0, rng)
	o := randMat(24, 40, 0, rng)
	dst := New(16, 40)
	MatMulPackInto(dst, m, o, pack) // sizes the buffer
	if pack.Footprint() < 24*40 {
		t.Fatalf("pack footprint %d after first use, want >= %d", pack.Footprint(), 24*40)
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst.Zero()
		MatMulPackInto(dst, m, o, pack)
	})
	if allocs > 0 {
		t.Fatalf("warm MatMulPackInto allocates %v per run, want 0", allocs)
	}
}
