//go:build wbdebug

package tensor

import (
	"fmt"
	"math"
)

// debugFinite panics on the first NaN or Inf in dst, naming the kernel that
// produced it and the offending cell. Every destination-passing kernel in
// into.go calls it on the way out, so under `-tags wbdebug` a numeric blowup
// is caught at the op that created it — not epochs later as a NaN loss. The
// distillation pipeline is the motivating consumer: a teacher that goes
// non-finite silently poisons every student loss downstream.
func debugFinite(op string, dst *Matrix) {
	for i, v := range dst.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("tensor: %s produced non-finite %v at (%d,%d)", op, v, i/dst.Cols, i%dst.Cols))
		}
	}
}

// debugFinite32 is debugFinite for the float32 student-tier kernels. The
// float32 range is far narrower than float64's, so overflow to Inf is the
// likelier failure here: a teacher whose activations stay finite in float64
// can blow up after conversion, and this guard names the first kernel that
// produces the non-finite value.
func debugFinite32(op string, dst *Matrix32) {
	for i, v := range dst.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			panic(fmt.Sprintf("tensor: %s produced non-finite %v at (%d,%d)", op, v, i/dst.Cols, i%dst.Cols))
		}
	}
}
