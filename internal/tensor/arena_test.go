package tensor

import "testing"

func TestArenaAllocZeroed(t *testing.T) {
	a := NewArena()
	m := a.Alloc(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("fresh alloc not zeroed at %d: %v", i, v)
		}
	}
	// Dirty it, reset, and the next allocation of the same size must be
	// zeroed again even though it reuses the slab.
	for i := range m.Data {
		m.Data[i] = float64(i + 1)
	}
	a.Reset()
	m2 := a.Alloc(3, 4)
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("post-reset alloc not zeroed at %d: %v", i, v)
		}
	}
}

func TestArenaDistinctBuffers(t *testing.T) {
	a := NewArena()
	x := a.Alloc(2, 2)
	y := a.Alloc(2, 2)
	x.Data[0] = 1
	if y.Data[0] != 0 {
		t.Fatal("allocations within one arena pass alias each other")
	}
}

func TestArenaResetReusesMemory(t *testing.T) {
	a := NewArena()
	for i := 0; i < 10; i++ {
		a.Alloc(16, 16)
	}
	before := a.Footprint()
	for pass := 0; pass < 5; pass++ {
		a.Reset()
		for i := 0; i < 10; i++ {
			a.Alloc(16, 16)
		}
	}
	if got := a.Footprint(); got != before {
		t.Fatalf("footprint grew across identical passes: %d -> %d", before, got)
	}
}

func TestArenaOversizeAllocation(t *testing.T) {
	a := NewArena()
	// Larger than one slab: must still work and still be zeroed.
	big := a.AllocFloats(arenaSlabFloats + 100)
	if len(big) != arenaSlabFloats+100 {
		t.Fatalf("oversize alloc wrong length %d", len(big))
	}
	for i, v := range big {
		if v != 0 {
			t.Fatalf("oversize alloc not zeroed at %d", i)
		}
	}
	// A small alloc after an oversize one must not alias it.
	small := a.AllocFloats(8)
	small[0] = 7
	if big[0] != 0 {
		t.Fatal("small alloc aliases oversize slab")
	}
}

func TestArenaAllocShared(t *testing.T) {
	a := NewArena()
	data := []float64{1, 2, 3, 4, 5, 6}
	m := a.AllocShared(2, 3, data)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("bad shape %dx%d", m.Rows, m.Cols)
	}
	m.Data[0] = 9
	if data[0] != 9 {
		t.Fatal("AllocShared must wrap the caller's buffer, not copy it")
	}
}

func BenchmarkArenaAllocReset(b *testing.B) {
	a := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		for j := 0; j < 32; j++ {
			a.Alloc(16, 16)
		}
	}
}
