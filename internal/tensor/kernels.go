package tensor

// Cache-blocked, register-blocked matrix kernels — the allocation-free
// inference fast path. Every kernel here preserves the naive loops'
// per-element accumulation order (contributions arrive in ascending k for
// each output cell), so results are bitwise identical to the reference
// implementations below: blocking only changes WHICH cells are in flight
// at once, never the order of floating-point additions into one cell.
// The single permitted divergence is the sign of a zero when an input
// contains exact zeros (the reference kernels skip a==0 terms, the blocked
// ones add ±0), which compares equal under == and never changes a value.
//
// The register blocking is a quad of independent accumulators: four output
// cells of one row advance together through the shared k loop, giving
// 4-way instruction-level parallelism without reassociating any single
// cell's sum. The cache blocking is B-panel packing: PackBuf rearranges the
// right-hand matrix into contiguous 4-column panels so the inner loop reads
// one linear stream instead of four strided ones.

// packWidth is the register-block width: output cells advanced per quad.
const packWidth = 4

// packMinRows is the minimum left-hand row count for B-panel packing to
// pay for itself. Packing costs one pass over o (read + write); with fewer
// rows than this the kernel re-reads o so few times that the unpacked
// row-streaming loop wins.
const packMinRows = 4

// transposeTile is the square tile edge for the cache-blocked transpose.
// 32×32 float64 tiles are 8 KiB per operand — both tiles fit in L1.
const transposeTile = 32

// PackBuf is a caller-owned, reusable buffer for B-panel packing. The zero
// value is ready to use; it grows to the largest packed operand it has seen
// and is then allocation-free. A PackBuf must not be shared between
// concurrent matmuls — give each worker or serving replica its own (see
// wb.InferScratch).
type PackBuf struct {
	buf []float64
}

// ensure returns a buffer of at least n floats, growing the backing store
// geometrically so steady-state calls never allocate.
func (p *PackBuf) ensure(n int) []float64 {
	if cap(p.buf) < n {
		p.buf = make([]float64, n)
	}
	return p.buf[:n]
}

// Footprint reports the buffer's current capacity in floats, exposed for
// capacity diagnostics and tests.
func (p *PackBuf) Footprint() int { return cap(p.buf) }

// packPanels rearranges o (k×n, row-major) into packWidth-column panels:
// panel jp holds columns [jp*4, jp*4+w) as w contiguous values per k row,
// panels laid out back to back. The trailing panel may be narrower than
// packWidth; its values are packed at stride w so no padding is read back.
func packPanels(dst []float64, o *Matrix) {
	k, n := o.Rows, o.Cols
	pos := 0
	for j0 := 0; j0 < n; j0 += packWidth {
		w := n - j0
		if w > packWidth {
			w = packWidth
		}
		for r := 0; r < k; r++ {
			row := o.Data[r*n+j0 : r*n+j0+w]
			for c, v := range row {
				dst[pos+c] = v
			}
			pos += w
		}
	}
}

// MatMulPackInto accumulates dst += m·o like MatMulInto, but routes the
// product through the caller-owned pack buffer when the shape profits from
// panel packing. dst must be zeroed for a plain product. A nil pack falls
// back to the unpacked blocked kernel.
func MatMulPackInto(dst, m, o *Matrix, pack *PackBuf) {
	if m.Cols != o.Rows {
		panic("tensor: MatMulPackInto inner dim mismatch")
	}
	dstShapeCheck(dst, m.Rows, o.Cols, "MatMulPackInto")
	matMulIntoPacked(dst, m, o, pack)
	debugFinite("MatMulPackInto", dst)
}

// matMulIntoPacked is the shared dispatch for MatMulInto and
// MatMulPackInto: panel-packed register kernel when the shape profits and a
// pack buffer is available, unpacked row-streaming kernel otherwise, with
// large products row-partitioned across goroutines either way.
func matMulIntoPacked(r, m, o *Matrix, pack *PackBuf) {
	usePack := pack != nil && m.Rows >= packMinRows && o.Rows > 0 && o.Cols > 0
	var panels []float64
	if usePack {
		panels = pack.ensure(o.Rows * o.Cols)
		packPanels(panels, o)
	}
	if m.Rows*m.Cols*o.Cols >= parallelFlopThreshold && m.Rows > 1 {
		parallelRows(m.Rows, func(lo, hi int) {
			if usePack {
				matMulPackedRows(r, m, o, panels, lo, hi)
			} else {
				matMulRows(r, m, o, lo, hi)
			}
		})
		return
	}
	if usePack {
		matMulPackedRows(r, m, o, panels, 0, m.Rows)
		return
	}
	matMulRows(r, m, o, 0, m.Rows)
}

// matMulPackedRows computes output rows [lo, hi) of r += m·o reading o
// through its packed panels: per output row a quad of accumulators walks
// one contiguous panel stream, accumulating each cell's sum in ascending k
// exactly like the reference kernel.
func matMulPackedRows(r, m, o *Matrix, panels []float64, lo, hi int) {
	k, n := o.Rows, o.Cols
	for i := lo; i < hi; i++ {
		mRow := m.Row(i)
		rRow := r.Row(i)
		pos := 0
		for j0 := 0; j0 < n; j0 += packWidth {
			if n-j0 >= packWidth {
				s0, s1, s2, s3 := rRow[j0], rRow[j0+1], rRow[j0+2], rRow[j0+3]
				p := panels[pos : pos+4*k]
				for kk, a := range mRow {
					q := p[4*kk : 4*kk+4 : 4*kk+4]
					s0 += a * q[0]
					s1 += a * q[1]
					s2 += a * q[2]
					s3 += a * q[3]
				}
				rRow[j0], rRow[j0+1], rRow[j0+2], rRow[j0+3] = s0, s1, s2, s3
				pos += 4 * k
				continue
			}
			w := n - j0
			for c := 0; c < w; c++ {
				s := rRow[j0+c]
				for kk, a := range mRow {
					s += a * panels[pos+kk*w+c]
				}
				rRow[j0+c] = s
			}
			pos += w * k
		}
	}
}

// --- Reference kernels ------------------------------------------------------
//
// The pre-blocking naive loops, kept verbatim as the ground truth the
// property tests in kernels_test.go compare every blocked kernel against.
// They are not used on any production path.

// referenceMatMul accumulates dst += m·o with the original ikj loops.
func referenceMatMul(dst, m, o *Matrix) {
	for i := 0; i < m.Rows; i++ {
		mRow := m.Row(i)
		rRow := dst.Row(i)
		for k, a := range mRow {
			if a == 0 {
				continue
			}
			oRow := o.Row(k)
			for j, b := range oRow {
				rRow[j] += a * b
			}
		}
	}
}

// referenceMatMulTransB sets dst = m·oᵀ with the original dot-product loops.
func referenceMatMulTransB(dst, m, o *Matrix) {
	for i := 0; i < m.Rows; i++ {
		mRow := m.Row(i)
		rRow := dst.Row(i)
		for j := 0; j < o.Rows; j++ {
			oRow := o.Row(j)
			var s float64
			for k, a := range mRow {
				s += a * oRow[k]
			}
			rRow[j] = s
		}
	}
}

// referenceMatMulTransA accumulates dst += mᵀ·o with the original
// zero-skipping loops.
func referenceMatMulTransA(dst, m, o *Matrix) {
	for k := 0; k < m.Rows; k++ {
		mRow := m.Row(k)
		oRow := o.Row(k)
		for i, a := range mRow {
			if a == 0 {
				continue
			}
			rRow := dst.Row(i)
			for j, b := range oRow {
				rRow[j] += a * b
			}
		}
	}
}

// referenceTranspose sets dst = mᵀ with the original column-strided writes.
func referenceTranspose(dst, m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			dst.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
}

// --- Blocked kernels --------------------------------------------------------

// matMulRows computes output rows [lo, hi) of r += m·o: the row-streaming
// axpy loop with a 4x-unrolled inner loop. The a==0 skip is kept — it is
// essentially free on dense inputs (the branch is always taken, hence
// perfectly predicted) and saves a full row pass per masked-out activation
// during dropout training.
func matMulRows(r, m, o *Matrix, lo, hi int) {
	n := o.Cols
	for i := lo; i < hi; i++ {
		mRow := m.Row(i)
		rRow := r.Row(i)
		for k, a := range mRow {
			if a == 0 {
				continue
			}
			oRow := o.Row(k)
			j := 0
			for ; j+packWidth <= n; j += packWidth {
				q := oRow[j : j+4 : j+4]
				s := rRow[j : j+4 : j+4]
				s[0] += a * q[0]
				s[1] += a * q[1]
				s[2] += a * q[2]
				s[3] += a * q[3]
			}
			for ; j < n; j++ {
				rRow[j] += a * oRow[j]
			}
		}
	}
}

// matMulTransBBlocked sets dst = m·oᵀ advancing four output columns (four
// rows of o) per quad: four independent dot-product accumulators share one
// pass over the m row, each accumulating its own cell in ascending k.
func matMulTransBBlocked(dst, m, o *Matrix) {
	rows := o.Rows
	for i := 0; i < m.Rows; i++ {
		mRow := m.Row(i)
		rRow := dst.Row(i)
		j := 0
		for ; j+packWidth <= rows; j += packWidth {
			o0, o1, o2, o3 := o.Row(j), o.Row(j+1), o.Row(j+2), o.Row(j+3)
			var s0, s1, s2, s3 float64
			for k, a := range mRow {
				s0 += a * o0[k]
				s1 += a * o1[k]
				s2 += a * o2[k]
				s3 += a * o3[k]
			}
			rRow[j], rRow[j+1], rRow[j+2], rRow[j+3] = s0, s1, s2, s3
		}
		for ; j < rows; j++ {
			oRow := o.Row(j)
			var s float64
			for k, a := range mRow {
				s += a * oRow[k]
			}
			rRow[j] = s
		}
	}
}

// matMulTransARows accumulates dst += mᵀ·o for k rows [lo, hi) of m with a
// branchless 4x-unrolled axpy. The reference kernel's a==0 skip is gone:
// on the dense gradients this kernel sees in backward passes the skip never
// fires yet costs a data-dependent branch per scalar, and on dropout-sparse
// inputs (~20% zeros) the mispredictions eat the skipped work (measured in
// BenchmarkMatMulTransAKernels).
func matMulTransARows(dst, m, o *Matrix, lo, hi int) {
	n := o.Cols
	for k := lo; k < hi; k++ {
		mRow := m.Row(k)
		oRow := o.Row(k)
		for i, a := range mRow {
			rRow := dst.Row(i)
			j := 0
			for ; j+packWidth <= n; j += packWidth {
				q := oRow[j : j+4 : j+4]
				s := rRow[j : j+4 : j+4]
				s[0] += a * q[0]
				s[1] += a * q[1]
				s[2] += a * q[2]
				s[3] += a * q[3]
			}
			for ; j < n; j++ {
				rRow[j] += a * oRow[j]
			}
		}
	}
}

// transposeBlocked sets dst = mᵀ tile by tile, so both the row-strided
// reads and the column-strided writes stay within one L1-resident
// transposeTile² block instead of sweeping a full matrix-height stride per
// element.
func transposeBlocked(dst, m *Matrix) {
	rows, cols := m.Rows, m.Cols
	for i0 := 0; i0 < rows; i0 += transposeTile {
		iMax := i0 + transposeTile
		if iMax > rows {
			iMax = rows
		}
		for j0 := 0; j0 < cols; j0 += transposeTile {
			jMax := j0 + transposeTile
			if jMax > cols {
				jMax = cols
			}
			for i := i0; i < iMax; i++ {
				src := m.Data[i*cols+j0 : i*cols+jMax]
				for jj, v := range src {
					dst.Data[(j0+jj)*rows+i] = v
				}
			}
		}
	}
}
