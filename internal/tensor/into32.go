package tensor

import (
	"fmt"
	"math"
)

// Destination-passing float32 kernels — the student tier's analogue of
// into.go. Each writes into dst instead of allocating so the float32 infer
// tape can draw every intermediate from a reusable Arena32. Transcendentals
// (tanh, exp, log) evaluate through their float64 library forms and round
// once on the way out: on amd64 those route to runtime-FMA assembly that a
// pure-Go float32-native approximation measurably loses to (a Cody–Waite +
// Taylor exp was ~3× slower in kernel throughput), and the library form
// keeps the result correctly rounded.

func dstShapeCheck32(dst *Matrix32, rows, cols int, op string) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("tensor: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}

// AddInto32 sets dst = a + b.
func AddInto32(dst, a, b *Matrix32) {
	a.shapeCheck(b, "AddInto32")
	dstShapeCheck32(dst, a.Rows, a.Cols, "AddInto32")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	debugFinite32("AddInto32", dst)
}

// SubInto32 sets dst = a - b.
func SubInto32(dst, a, b *Matrix32) {
	a.shapeCheck(b, "SubInto32")
	dstShapeCheck32(dst, a.Rows, a.Cols, "SubInto32")
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
	debugFinite32("SubInto32", dst)
}

// MulInto32 sets dst = a ⊙ b.
func MulInto32(dst, a, b *Matrix32) {
	a.shapeCheck(b, "MulInto32")
	dstShapeCheck32(dst, a.Rows, a.Cols, "MulInto32")
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
	debugFinite32("MulInto32", dst)
}

// ScaleInto32 sets dst = s*a.
func ScaleInto32(dst, a *Matrix32, s float32) {
	dstShapeCheck32(dst, a.Rows, a.Cols, "ScaleInto32")
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
	debugFinite32("ScaleInto32", dst)
}

// AddRowVectorInto32 sets dst = a with the 1×cols vector v added to each row.
func AddRowVectorInto32(dst, a, v *Matrix32) {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRowVectorInto32 wants 1x%d, got %dx%d", a.Cols, v.Rows, v.Cols))
	}
	dstShapeCheck32(dst, a.Rows, a.Cols, "AddRowVectorInto32")
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		out := dst.Row(i)
		for j, x := range row {
			out[j] = x + v.Data[j]
		}
	}
	debugFinite32("AddRowVectorInto32", dst)
}

// MatMulInto32 accumulates dst += m·o. dst must be zeroed for a plain
// product.
func MatMulInto32(dst, m, o *Matrix32) {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: MatMulInto32 inner dim mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	dstShapeCheck32(dst, m.Rows, o.Cols, "MatMulInto32")
	matMulIntoPacked32(dst, m, o, nil)
	debugFinite32("MatMulInto32", dst)
}

// MatMulTransBInto32 sets dst = m·oᵀ (every cell written, no zeroing
// needed).
func MatMulTransBInto32(dst, m, o *Matrix32) {
	if m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBInto32 dim mismatch %dx%d · (%dx%d)ᵀ", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	dstShapeCheck32(dst, m.Rows, o.Rows, "MatMulTransBInto32")
	matMulTransBBlocked32(dst, m, o)
	debugFinite32("MatMulTransBInto32", dst)
}

// MatMulTransAInto32 accumulates dst += mᵀ·o. dst must be zeroed for a
// plain product.
func MatMulTransAInto32(dst, m, o *Matrix32) {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransAInto32 dim mismatch (%dx%d)ᵀ · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	dstShapeCheck32(dst, m.Cols, o.Cols, "MatMulTransAInto32")
	matMulTransARows32(dst, m, o, 0, m.Rows)
	debugFinite32("MatMulTransAInto32", dst)
}

// TransposeInto32 sets dst = mᵀ.
func TransposeInto32(dst, m *Matrix32) {
	dstShapeCheck32(dst, m.Cols, m.Rows, "TransposeInto32")
	transposeBlocked32(dst, m)
	debugFinite32("TransposeInto32", dst)
}

// TanhInto32 sets dst = tanh(m) elementwise.
func TanhInto32(dst, m *Matrix32) {
	dstShapeCheck32(dst, m.Rows, m.Cols, "TanhInto32")
	for i, v := range m.Data {
		dst.Data[i] = float32(math.Tanh(float64(v)))
	}
	debugFinite32("TanhInto32", dst)
}

// SigmoidInto32 sets dst = σ(m) elementwise.
func SigmoidInto32(dst, m *Matrix32) {
	dstShapeCheck32(dst, m.Rows, m.Cols, "SigmoidInto32")
	for i, v := range m.Data {
		dst.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	debugFinite32("SigmoidInto32", dst)
}

// ReLUInto32 sets dst = max(0, m) elementwise.
func ReLUInto32(dst, m *Matrix32) {
	dstShapeCheck32(dst, m.Rows, m.Cols, "ReLUInto32")
	for i, v := range m.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
	debugFinite32("ReLUInto32", dst)
}

// SoftmaxRowsInto32 sets dst to the row-wise softmax of m.
func SoftmaxRowsInto32(dst, m *Matrix32) {
	dstShapeCheck32(dst, m.Rows, m.Cols, "SoftmaxRowsInto32")
	for i := 0; i < m.Rows; i++ {
		softmaxInto32(dst.Row(i), m.Row(i))
	}
	debugFinite32("SoftmaxRowsInto32", dst)
}

// LogSoftmaxRowsInto32 sets dst to the row-wise log-softmax of m. The
// exp-sum runs in float64 like softmaxInto32; the beam search consumes
// these log-probabilities and accumulates path scores in float64 on top.
func LogSoftmaxRowsInto32(dst, m *Matrix32) {
	dstShapeCheck32(dst, m.Rows, m.Cols, "LogSoftmaxRowsInto32")
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		out := dst.Row(i)
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range src {
			sum += math.Exp(float64(v - mx))
		}
		lse := float64(mx) + math.Log(sum)
		for j, v := range src {
			out[j] = float32(float64(v) - lse)
		}
	}
	debugFinite32("LogSoftmaxRowsInto32", dst)
}

// ConcatRowsInto32 stacks ms vertically into dst.
func ConcatRowsInto32(dst *Matrix32, ms ...*Matrix32) {
	off := 0
	for _, m := range ms {
		if m.Cols != dst.Cols {
			panic(fmt.Sprintf("tensor: ConcatRowsInto32 col mismatch %d vs %d", m.Cols, dst.Cols))
		}
		copy(dst.Data[off:], m.Data)
		off += len(m.Data)
	}
	if off != len(dst.Data) {
		panic("tensor: ConcatRowsInto32 row count mismatch")
	}
	debugFinite32("ConcatRowsInto32", dst)
}

// ConcatColsInto32 joins ms horizontally into dst.
func ConcatColsInto32(dst *Matrix32, ms ...*Matrix32) {
	for i := 0; i < dst.Rows; i++ {
		out := dst.Row(i)
		off := 0
		for _, m := range ms {
			if m.Rows != dst.Rows {
				panic(fmt.Sprintf("tensor: ConcatColsInto32 row mismatch %d vs %d", m.Rows, dst.Rows))
			}
			copy(out[off:], m.Row(i))
			off += m.Cols
		}
		if off != dst.Cols {
			panic("tensor: ConcatColsInto32 col count mismatch")
		}
	}
	debugFinite32("ConcatColsInto32", dst)
}
