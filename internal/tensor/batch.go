package tensor

import "fmt"

// Ragged-batch gather/scatter helpers. Cross-request batching advances B
// variable-length sequences in lockstep: each timestep gathers one row from
// every still-active sequence into a dense slab, runs the ordinary B-row
// kernels over it, and scatters the result rows back out. Because every
// matmul kernel in this package computes each output row independently (see
// kernels.go), the slab rows come out bitwise identical to B separate 1-row
// calls — these helpers only move rows, they never mix them.

// GatherRowsInto copies row srcRows[i] of srcs[i] into row i of dst,
// assembling a dense len(srcs)×cols slab from one row of each source. All
// sources must share dst's column count and srcRows[i] must be a valid row
// of srcs[i]; shape violations panic before any row is written.
func GatherRowsInto(dst *Matrix, srcs []*Matrix, srcRows []int) {
	if len(srcs) != len(srcRows) {
		panic(fmt.Sprintf("tensor: GatherRowsInto %d srcs, %d rows", len(srcs), len(srcRows)))
	}
	if dst.Rows != len(srcs) {
		panic(fmt.Sprintf("tensor: GatherRowsInto dst has %d rows, want %d", dst.Rows, len(srcs)))
	}
	for i, src := range srcs {
		if src.Cols != dst.Cols {
			panic(fmt.Sprintf("tensor: GatherRowsInto src %d has %d cols, dst has %d", i, src.Cols, dst.Cols))
		}
		if r := srcRows[i]; r < 0 || r >= src.Rows {
			panic(fmt.Sprintf("tensor: GatherRowsInto row %d out of range for src %d with %d rows", r, i, src.Rows))
		}
	}
	for i, src := range srcs {
		copy(dst.Row(i), src.Row(srcRows[i]))
	}
}

// ScatterRowsInto copies row i of src into row dstRows[i] of dsts[i] — the
// inverse of GatherRowsInto, distributing slab rows back to their owning
// per-sequence matrices. All destinations must share src's column count and
// dstRows[i] must be a valid row of dsts[i]; shape violations panic before
// any row is written.
func ScatterRowsInto(dsts []*Matrix, dstRows []int, src *Matrix) {
	if len(dsts) != len(dstRows) {
		panic(fmt.Sprintf("tensor: ScatterRowsInto %d dsts, %d rows", len(dsts), len(dstRows)))
	}
	if src.Rows != len(dsts) {
		panic(fmt.Sprintf("tensor: ScatterRowsInto src has %d rows, want %d", src.Rows, len(dsts)))
	}
	for i, dst := range dsts {
		if dst.Cols != src.Cols {
			panic(fmt.Sprintf("tensor: ScatterRowsInto dst %d has %d cols, src has %d", i, dst.Cols, src.Cols))
		}
		if r := dstRows[i]; r < 0 || r >= dst.Rows {
			panic(fmt.Sprintf("tensor: ScatterRowsInto row %d out of range for dst %d with %d rows", r, i, dst.Rows))
		}
	}
	for i, dst := range dsts {
		copy(dst.Row(dstRows[i]), src.Row(i))
	}
}

// ScatterRowSpansInto copies row i of src into columns
// [colOff, colOff+src.Cols) of row dstRows[i] of dsts[i]. It is
// ScatterRowsInto for destinations wider than the slab — a Bi-LSTM writes
// forward states into the left half and backward states into the right half
// of each sequence's output matrix. The span must fit every destination's
// width and dstRows[i] must be a valid row of dsts[i]; shape violations
// panic before any row is written.
func ScatterRowSpansInto(dsts []*Matrix, dstRows []int, colOff int, src *Matrix) {
	if len(dsts) != len(dstRows) {
		panic(fmt.Sprintf("tensor: ScatterRowSpansInto %d dsts, %d rows", len(dsts), len(dstRows)))
	}
	if src.Rows != len(dsts) {
		panic(fmt.Sprintf("tensor: ScatterRowSpansInto src has %d rows, want %d", src.Rows, len(dsts)))
	}
	if colOff < 0 {
		panic(fmt.Sprintf("tensor: ScatterRowSpansInto negative column offset %d", colOff))
	}
	for i, dst := range dsts {
		if colOff+src.Cols > dst.Cols {
			panic(fmt.Sprintf("tensor: ScatterRowSpansInto span [%d,%d) exceeds dst %d with %d cols", colOff, colOff+src.Cols, i, dst.Cols))
		}
		if r := dstRows[i]; r < 0 || r >= dst.Rows {
			panic(fmt.Sprintf("tensor: ScatterRowSpansInto row %d out of range for dst %d with %d rows", r, i, dst.Rows))
		}
	}
	for i, dst := range dsts {
		copy(dst.Row(dstRows[i])[colOff:colOff+src.Cols], src.Row(i))
	}
}
