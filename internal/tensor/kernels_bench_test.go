package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Standalone kernel benchmarks: each blocked kernel against the reference
// naive loops it replaced, on the shapes the briefing model actually runs
// (1-row LSTM steps, sentence-count × hidden blocks) plus a bulk square.

func benchMat(rows, cols int, zeroFrac float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if rng.Float64() < zeroFrac {
			continue
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

var matMulBenchShapes = []struct{ r, k, c int }{
	{1, 64, 256},    // LSTM step: x·W
	{40, 64, 64},    // sentence block × hidden
	{128, 128, 128}, // bulk
}

func BenchmarkMatMulKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range matMulBenchShapes {
		m := benchMat(sh.r, sh.k, 0, rng)
		o := benchMat(sh.k, sh.c, 0, rng)
		dst := New(sh.r, sh.c)
		name := fmt.Sprintf("%dx%dx%d", sh.r, sh.k, sh.c)
		b.Run("naive/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst.Zero()
				referenceMatMul(dst, m, o)
			}
		})
		b.Run("blocked/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst.Zero()
				matMulRows(dst, m, o, 0, m.Rows)
			}
		})
		pack := &PackBuf{}
		b.Run("packed/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst.Zero()
				matMulIntoPacked(dst, m, o, pack)
			}
		})
	}
}

func BenchmarkMatMulTransBKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range matMulBenchShapes {
		m := benchMat(sh.r, sh.k, 0, rng)
		o := benchMat(sh.c, sh.k, 0, rng)
		dst := New(sh.r, sh.c)
		name := fmt.Sprintf("%dx%dx%d", sh.r, sh.k, sh.c)
		b.Run("naive/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				referenceMatMulTransB(dst, m, o)
			}
		})
		b.Run("blocked/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matMulTransBBlocked(dst, m, o)
			}
		})
	}
}

// BenchmarkMatMulTransAKernels measures the satellite fix in isolation: the
// reference kernel's a==0 skip branch vs the branchless unrolled kernel, on
// dense inputs (skip never fires, branch pure overhead) and ~20%-sparse
// inputs (dropout regime, where mispredictions eat the skipped work).
func BenchmarkMatMulTransAKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, zf := range []struct {
		name string
		frac float64
	}{{"dense", 0}, {"sparse20", 0.2}} {
		m := benchMat(64, 64, zf.frac, rng)
		o := benchMat(64, 64, 0, rng)
		dst := New(64, 64)
		b.Run("zeroskip/"+zf.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst.Zero()
				referenceMatMulTransA(dst, m, o)
			}
		})
		b.Run("branchless/"+zf.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst.Zero()
				matMulTransARows(dst, m, o, 0, m.Rows)
			}
		})
	}
}

// BenchmarkTransposeKernels measures the satellite fix for TransposeInto's
// column-strided writes: naive element loop vs 32×32 L1 tiles.
func BenchmarkTransposeKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, sh := range []struct{ r, c int }{{64, 64}, {512, 512}} {
		m := benchMat(sh.r, sh.c, 0, rng)
		dst := New(sh.c, sh.r)
		name := fmt.Sprintf("%dx%d", sh.r, sh.c)
		b.Run("naive/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				referenceTranspose(dst, m)
			}
		})
		b.Run("tiled/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				transposeBlocked(dst, m)
			}
		})
	}
}
