#include "textflag.h"

// AVX2+FMA lane kernels for the float32 matmuls. Lanes are output cells:
// every YMM register holds eight adjacent columns of one output row, and
// each loop iteration folds one k term into all lanes with a fused
// multiply-add. Per-cell accumulation order therefore stays ascending k,
// matching the pure-Go kernels; only the mul->add intermediate rounding is
// fused away, which tightens (never widens) the k-term error envelope
// documented in kernels32.go. Callers guarantee k > 0.

// func fmaBlock8(d, a, b *float32, k, stride int)
//
// d[0:8] += sum over kk of a[kk] * b[kk*stride : kk*stride+8].
TEXT ·fmaBlock8(SB), NOSPLIT, $0-40
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ k+24(FP), CX
	MOVQ stride+32(FP), BX
	SHLQ $2, BX
	VMOVUPS (DI), Y0
loop8:
	VBROADCASTSS (SI), Y1
	VFMADD231PS (DX), Y1, Y0
	ADDQ $4, SI
	ADDQ BX, DX
	DECQ CX
	JNZ  loop8
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func fmaBlock32(d, a, b *float32, k, stride int)
//
// Four adjacent 8-lane blocks (32 columns) per pass: four independent FMA
// dependency chains hide the FMA latency that a single-accumulator loop
// would serialise on.
TEXT ·fmaBlock32(SB), NOSPLIT, $0-40
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ k+24(FP), CX
	MOVQ stride+32(FP), BX
	SHLQ $2, BX
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
loop32:
	VBROADCASTSS (SI), Y4
	VFMADD231PS (DX), Y4, Y0
	VFMADD231PS 32(DX), Y4, Y1
	VFMADD231PS 64(DX), Y4, Y2
	VFMADD231PS 96(DX), Y4, Y3
	ADDQ $4, SI
	ADDQ BX, DX
	DECQ CX
	JNZ  loop32
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VZEROUPPER
	RET

// func fmaPanels32(d, a, p *float32, k int)
//
// fmaBlock32 over panel-packed storage: the four 8-lane blocks stream four
// consecutive packed panels (p, p+8k, p+16k, p+24k), each advancing 32
// bytes per k step.
TEXT ·fmaPanels32(SB), NOSPLIT, $0-32
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ p+16(FP), DX
	MOVQ k+24(FP), CX
	MOVQ CX, BX
	SHLQ $5, BX
	LEAQ (DX)(BX*1), R8
	LEAQ (R8)(BX*1), R9
	LEAQ (R9)(BX*1), R10
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
looppanels:
	VBROADCASTSS (SI), Y4
	VFMADD231PS (DX), Y4, Y0
	VFMADD231PS (R8), Y4, Y1
	VFMADD231PS (R9), Y4, Y2
	VFMADD231PS (R10), Y4, Y3
	ADDQ $4, SI
	ADDQ $32, DX
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	DECQ CX
	JNZ  looppanels
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VZEROUPPER
	RET
