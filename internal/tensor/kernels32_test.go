package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Float32 kernel property tests. The float64 kernels promise bitwise
// identity with their references; the float32 kernels promise the same
// accumulation ORDER at half width, so the test oracle is the float64
// reference on widened inputs and the assertion is an explicit error
// bound, not equality.
//
// Bound derivation: a k-term float32 dot product whose terms are summed in
// a fixed order accumulates at most one rounding per multiply and one per
// add, each bounded by eps32 = 2⁻²⁴ relative to the running magnitude. The
// running magnitude is at most the dot product of the absolute values, so
//
//	|f32(m·o) - f64(m·o)| ≤ 2·(k+1)·eps32 · (|m|·|o|)  (per cell)
//
// plus the one-rounding cost of converting each input to float32 in the
// first place (absorbed by the same |m|·|o| envelope). The tests assert
// this bound with a 2x safety slack and additionally record the worst
// observed ULP distance, which in practice stays well under the bound.
const eps32 = 1.0 / (1 << 24)

// toleranceFor returns the per-cell absolute error budget for a k-term
// accumulation against the magnitude envelope absDot = (|m|·|o|)[cell].
func toleranceFor(k int, absDot float64) float64 {
	return 4 * float64(k+2) * eps32 * (absDot + 1)
}

// ulpDiff32 counts the float32 representations between a and b — 0 for
// equal values, 1 for adjacent floats. Used to report how tight the
// kernels actually run relative to the analytic bound.
func ulpDiff32(a, b float32) int64 {
	ai := int64(int32(math.Float32bits(a)))
	bi := int64(int32(math.Float32bits(b)))
	if ai < 0 {
		ai = math.MinInt32 - ai
	}
	if bi < 0 {
		bi = math.MinInt32 - bi
	}
	d := ai - bi
	if d < 0 {
		d = -d
	}
	return d
}

// randMat32 draws a float32 shape (via FromSlice32 so degenerate shapes
// work) with zeroFrac entries forced to exactly 0.
func randMat32(rows, cols int, zeroFrac float64, rng *rand.Rand) *Matrix32 {
	data := make([]float32, rows*cols)
	for i := range data {
		if rng.Float64() < zeroFrac {
			continue
		}
		data[i] = float32(rng.NormFloat64())
	}
	return FromSlice32(rows, cols, data)
}

// abs64 returns the elementwise absolute value of m widened to float64,
// the magnitude envelope for the error bound.
func abs64(m *Matrix32) *Matrix {
	r := FromSlice(m.Rows, m.Cols, make([]float64, len(m.Data)))
	for i, v := range m.Data {
		r.Data[i] = math.Abs(float64(v))
	}
	return r
}

// withinBound asserts every cell of got is within toleranceFor(k, absDot)
// of want, where absDot is the corresponding cell of the envelope.
func withinBound(t *testing.T, what string, got *Matrix32, want, envelope *Matrix, k int) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, w := range want.Data {
		g := float64(got.Data[i])
		tol := toleranceFor(k, envelope.Data[i])
		if math.Abs(g-w) > tol {
			t.Fatalf("%s: entry %d = %v, want %v ± %.3g (k=%d, envelope %.3g)",
				what, i, g, w, tol, k, envelope.Data[i])
		}
	}
}

// TestKernelEquivalence32MatMul checks the float32 matmul entry points —
// unpacked blocked, panel-packed, and accumulate-onto-nonzero-dst — against
// the float64 reference on widened inputs, over the same shape grid as the
// float64 equivalence tests (odd dims, 1-row, 1-col, empty operands).
func TestKernelEquivalence32MatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pack := &PackBuf32{}
	for _, sh := range kernelShapes {
		for _, zeroFrac := range []float64{0, 0.3} {
			m := randMat32(sh.r, sh.k, zeroFrac, rng)
			o := randMat32(sh.k, sh.c, zeroFrac, rng)
			seed := randMat32(sh.r, sh.c, 0, rng)

			want := FromSlice(sh.r, sh.c, make([]float64, sh.r*sh.c))
			copy(want.Data, seed.ToMatrix().Data)
			referenceMatMul(want, m.ToMatrix(), o.ToMatrix())

			envelope := FromSlice(sh.r, sh.c, make([]float64, sh.r*sh.c))
			copy(envelope.Data, abs64(seed).Data)
			referenceMatMul(envelope, abs64(m), abs64(o))

			got := FromSlice32(sh.r, sh.c, append([]float32(nil), seed.Data...))
			matMulRows32(got, m, o, 0, m.Rows)
			withinBound(t, "matMulRows32", got, want, envelope, sh.k)

			packed := FromSlice32(sh.r, sh.c, append([]float32(nil), seed.Data...))
			matMulIntoPacked32(packed, m, o, pack)
			withinBound(t, "matMulIntoPacked32", packed, want, envelope, sh.k)

			// Packed and unpacked share one accumulation order, so those two
			// must agree exactly, not just within tolerance.
			for i, v := range got.Data {
				if packed.Data[i] != v {
					t.Fatalf("packed/unpacked divergence at %d: %v vs %v", i, packed.Data[i], v)
				}
			}

			if sh.r > 0 && sh.k > 0 && sh.c > 0 {
				viaAPI := New32(sh.r, sh.c)
				copy(viaAPI.Data, seed.Data)
				MatMulPackInto32(viaAPI, m, o, pack)
				withinBound(t, "MatMulPackInto32", viaAPI, want, envelope, sh.k)
			}
		}
	}
}

// TestKernelEquivalence32MatMulTransB checks the float32 m·oᵀ quad kernel
// against the float64 reference within the k-term bound.
func TestKernelEquivalence32MatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, sh := range kernelShapes {
		for _, zeroFrac := range []float64{0, 0.3} {
			m := randMat32(sh.r, sh.k, zeroFrac, rng)
			o := randMat32(sh.c, sh.k, zeroFrac, rng)

			want := FromSlice(sh.r, sh.c, make([]float64, sh.r*sh.c))
			referenceMatMulTransB(want, m.ToMatrix(), o.ToMatrix())
			envelope := FromSlice(sh.r, sh.c, make([]float64, sh.r*sh.c))
			referenceMatMulTransB(envelope, abs64(m), abs64(o))

			got := FromSlice32(sh.r, sh.c, make([]float32, sh.r*sh.c))
			matMulTransBBlocked32(got, m, o)
			withinBound(t, "matMulTransBBlocked32", got, want, envelope, sh.k)
		}
	}
}

// TestKernelEquivalence32MatMulTransA checks the branchless float32 mᵀ·o
// kernel, including accumulate semantics over a nonzero destination.
func TestKernelEquivalence32MatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sh := range kernelShapes {
		for _, zeroFrac := range []float64{0, 0.3} {
			m := randMat32(sh.k, sh.r, zeroFrac, rng)
			o := randMat32(sh.k, sh.c, zeroFrac, rng)
			seed := randMat32(sh.r, sh.c, 0, rng)

			want := FromSlice(sh.r, sh.c, make([]float64, sh.r*sh.c))
			copy(want.Data, seed.ToMatrix().Data)
			referenceMatMulTransA(want, m.ToMatrix(), o.ToMatrix())
			envelope := FromSlice(sh.r, sh.c, make([]float64, sh.r*sh.c))
			copy(envelope.Data, abs64(seed).Data)
			referenceMatMulTransA(envelope, abs64(m), abs64(o))

			got := FromSlice32(sh.r, sh.c, append([]float32(nil), seed.Data...))
			matMulTransARows32(got, m, o, 0, m.Rows)
			withinBound(t, "matMulTransARows32", got, want, envelope, sh.k)
		}
	}
}

// TestKernelEquivalence32Transpose checks the tiled float32 transpose,
// which moves values without arithmetic and must therefore be exact.
func TestKernelEquivalence32Transpose(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, sh := range []struct{ r, c int }{
		{1, 1}, {1, 9}, {9, 1}, {3, 5}, {31, 33}, {32, 32}, {65, 40}, {100, 7}, {0, 5}, {5, 0},
	} {
		m := randMat32(sh.r, sh.c, 0, rng)
		got := FromSlice32(sh.c, sh.r, make([]float32, sh.r*sh.c))
		transposeBlocked32(got, m)
		for i := 0; i < sh.r; i++ {
			for j := 0; j < sh.c; j++ {
				if got.At(j, i) != m.At(i, j) {
					t.Fatalf("transpose (%d,%d): %v, want %v", j, i, got.At(j, i), m.At(i, j))
				}
			}
		}
	}
}

// TestElementwise32ULP pins the elementwise float32 kernels to within 1 ULP
// of the correctly rounded result (the float64 library function rounded
// once to float32) — they evaluate through float64 so the only extra error
// is the final rounding, which is exact, plus at most one ULP from the
// float32 subtraction inside softmax's max shift.
func TestElementwise32ULP(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randMat32(13, 17, 0.1, rng)
	dst := New32(13, 17)

	TanhInto32(dst, m)
	for i, v := range m.Data {
		want := float32(math.Tanh(float64(v)))
		if d := ulpDiff32(dst.Data[i], want); d > 0 {
			t.Fatalf("TanhInto32 entry %d: %v, want %v (%d ULP)", i, dst.Data[i], want, d)
		}
	}

	SigmoidInto32(dst, m)
	for i, v := range m.Data {
		want := float32(1 / (1 + math.Exp(-float64(v))))
		if d := ulpDiff32(dst.Data[i], want); d > 0 {
			t.Fatalf("SigmoidInto32 entry %d: %v, want %v (%d ULP)", i, dst.Data[i], want, d)
		}
	}

	// Softmax rows sum to 1 within a few ULP and match the float64 softmax
	// of the widened row within the k-term bound.
	SoftmaxRowsInto32(dst, m)
	want64 := m.ToMatrix().SoftmaxRows()
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range dst.Row(i) {
			sum += float64(v)
		}
		if math.Abs(sum-1) > float64(m.Cols)*4*eps32 {
			t.Fatalf("SoftmaxRowsInto32 row %d sums to %v", i, sum)
		}
		for j, v := range dst.Row(i) {
			if math.Abs(float64(v)-want64.At(i, j)) > toleranceFor(m.Cols, 1) {
				t.Fatalf("SoftmaxRowsInto32 (%d,%d): %v, want %v", i, j, v, want64.At(i, j))
			}
		}
	}
}

// TestPackBufReuse32 verifies the float32 pack buffer grows once and is
// allocation-free afterwards, like TestPackBufReuse.
func TestPackBufReuse32(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pack := &PackBuf32{}
	m := randMat32(16, 24, 0, rng)
	o := randMat32(24, 40, 0, rng)
	dst := New32(16, 40)
	MatMulPackInto32(dst, m, o, pack)
	if pack.Footprint() < 24*40 {
		t.Fatalf("pack footprint %d after first use, want >= %d", pack.Footprint(), 24*40)
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst.Zero()
		MatMulPackInto32(dst, m, o, pack)
	})
	if allocs > 0 {
		t.Fatalf("warm MatMulPackInto32 allocates %v per run, want 0", allocs)
	}
}

// --- Kernels32 benchmarks ---------------------------------------------------
//
// scripts/bench.sh's f32-kernel section runs `-bench 'Kernels32'`; these
// pair each float32 kernel with its float64 twin on the same shapes so the
// bandwidth halving shows up as a direct ratio.

func benchMat32(rows, cols int, rng *rand.Rand) *Matrix32 {
	m := New32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func BenchmarkMatMulKernels32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, sh := range matMulBenchShapes {
		m64 := benchMat(sh.r, sh.k, 0, rng)
		o64 := benchMat(sh.k, sh.c, 0, rng)
		m32, o32 := ToMatrix32(m64), ToMatrix32(o64)
		dst64 := New(sh.r, sh.c)
		dst32 := New32(sh.r, sh.c)
		pack64 := &PackBuf{}
		pack32 := &PackBuf32{}
		name := fmt.Sprintf("%dx%dx%d", sh.r, sh.k, sh.c)
		b.Run("f64packed/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst64.Zero()
				matMulIntoPacked(dst64, m64, o64, pack64)
			}
		})
		b.Run("f32packed/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst32.Zero()
				matMulIntoPacked32(dst32, m32, o32, pack32)
			}
		})
	}
}

func BenchmarkMatMulTransBKernels32(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range matMulBenchShapes {
		m64 := benchMat(sh.r, sh.k, 0, rng)
		o64 := benchMat(sh.c, sh.k, 0, rng)
		m32, o32 := ToMatrix32(m64), ToMatrix32(o64)
		dst64 := New(sh.r, sh.c)
		dst32 := New32(sh.r, sh.c)
		name := fmt.Sprintf("%dx%dx%d", sh.r, sh.k, sh.c)
		b.Run("f64/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matMulTransBBlocked(dst64, m64, o64)
			}
		})
		b.Run("f32/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matMulTransBBlocked32(dst32, m32, o32)
			}
		})
	}
}
