package tensor

import (
	"fmt"
	"math"
)

// Matrix32 is a dense, row-major float32 matrix — the storage type of the
// distilled-student inference tier. It mirrors Matrix's API surface (the
// subset inference needs) with concrete float32 code rather than generics:
// the float64 kernels carry a bitwise-identity contract with their reference
// implementations that a shared generic body would put at risk, and the two
// element types want different tolerance and accumulation treatment anyway
// (see kernels32.go).
//
// Matrix32 halves the bytes moved per matmul relative to Matrix. The
// serving models here are small enough to be memory-bandwidth-bound, so the
// student tier's speedup comes almost entirely from this width change; the
// loop structure is identical.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 returns a zero float32 matrix with the given shape. It panics if
// either dimension is non-positive, like New.
func New32(rows, cols int) *Matrix32 {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice32 wraps data in a matrix of the given shape. The slice is used
// directly, not copied; len(data) must equal rows*cols.
func FromSlice32(rows, cols int, data []float32) *Matrix32 {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: data}
}

// ToMatrix32 converts a float64 matrix to float32, rounding each entry to
// nearest. This is the model-distillation boundary: teacher parameters cross
// it exactly once, at student construction or snapshot conversion.
func ToMatrix32(m *Matrix) *Matrix32 {
	if len(m.Data) != m.Rows*m.Cols {
		panic(fmt.Sprintf("tensor: ToMatrix32 data length %d does not match shape %dx%d", len(m.Data), m.Rows, m.Cols))
	}
	r := FromSlice32(m.Rows, m.Cols, make([]float32, len(m.Data)))
	for i, v := range m.Data {
		r.Data[i] = float32(v)
	}
	return r
}

// ToMatrix widens m back to float64 exactly (every float32 is representable
// as a float64). Used by tests and snapshot round-trips.
func (m *Matrix32) ToMatrix() *Matrix {
	r := FromSlice(m.Rows, m.Cols, make([]float64, len(m.Data)))
	for i, v := range m.Data {
		r.Data[i] = float64(v)
	}
	return r
}

// Clone returns a deep copy of m.
func (m *Matrix32) Clone() *Matrix32 {
	c := New32(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns the element at row i, column j.
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shares the underlying storage).
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix32) SameShape(o *Matrix32) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// Zero sets every entry of m to zero in place.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

func (m *Matrix32) shapeCheck(o *Matrix32, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// ArgmaxRow returns the column index of the largest entry in row i.
func (m *Matrix32) ArgmaxRow(i int) int {
	row := m.Row(i)
	best := 0
	for j, v := range row[1:] {
		if v > row[best] {
			best = j + 1
		}
	}
	return best
}

// Equal reports whether m and o have the same shape and entries within tol.
func (m *Matrix32) Equal(o *Matrix32, tol float32) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// softmaxInto32 computes a numerically stable softmax of src into dst with
// the same max-subtraction trick as softmaxInto. Exponentials and the
// normalising sum run in float64 — the accumulation is the one place a
// float32 softmax visibly loses precision over long rows, and the widened
// intermediate costs nothing on modern hardware.
func softmaxInto32(dst, src []float32) {
	mx := src[0]
	for _, v := range src[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(float64(v - mx))
		dst[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}

// String renders a small matrix for debugging; large matrices are
// abbreviated to their shape.
func (m *Matrix32) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix32(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix32(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
