package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero-initialise")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", shape[0], shape[1])
				}
			}()
			New(shape[0], shape[1])
		}()
	}
}

func TestFromSliceAndFromRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(1, 2) != 6 || m.At(0, 1) != 2 {
		t.Fatalf("FromSlice indexing wrong: %v", m)
	}
	r := FromRows([][]float64{{1, 2}, {3, 4}})
	if r.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong: %v", r)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := a.Add(b); !got.Equal(FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Errorf("Add: %v", got)
	}
	if got := b.Sub(a); !got.Equal(Full(2, 2, 4), 0) {
		t.Errorf("Sub: %v", got)
	}
	if got := a.Mul(b); !got.Equal(FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Errorf("Mul: %v", got)
	}
	if got := a.Scale(2); !got.Equal(FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Errorf("Scale: %v", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if got := a.MatMul(b); !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul: got %v want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(4, 4, 1, rng)
	if got := a.MatMul(Eye(4)); !got.Equal(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if got := Eye(4).MatMul(a); !got.Equal(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ, and the fused transpose kernels agree with the
// naive compositions.
func TestMatMulTransposeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := Randn(m, k, 1, rng)
		b := Randn(k, n, 1, rng)
		ab := a.MatMul(b)
		if !ab.Transpose().Equal(b.Transpose().MatMul(a.Transpose()), 1e-10) {
			return false
		}
		// Fused kernels.
		bt := Randn(n, k, 1, rng)
		if !a.MatMulTransB(bt).Equal(a.MatMul(bt.Transpose()), 1e-10) {
			return false
		}
		at := Randn(k, m, 1, rng)
		if !at.MatMulTransA(Randn(k, n, 1, rng).Clone()).SameShape(New(m, n)) {
			return false
		}
		c := Randn(k, n, 1, rng)
		if !at.MatMulTransA(c).Equal(at.Transpose().MatMul(c), 1e-10) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	s := m.SoftmaxRows()
	for i := 0; i < 2; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Large-but-equal logits must give the uniform distribution, not NaN.
	if math.Abs(s.At(1, 0)-1.0/3) > 1e-12 {
		t.Fatalf("stability trick failed: %v", s.Row(1))
	}
}

func TestLogSoftmaxMatchesSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Randn(4, 7, 3, rng)
	ls := m.LogSoftmaxRows()
	s := m.SoftmaxRows()
	for i, v := range ls.Data {
		if math.Abs(math.Exp(v)-s.Data[i]) > 1e-10 {
			t.Fatalf("exp(logsoftmax) != softmax at %d", i)
		}
	}
}

func TestSoftmaxProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Randn(1+r.Intn(5), 1+r.Intn(8), 5, r)
		s := m.SoftmaxRows()
		for i := 0; i < s.Rows; i++ {
			var sum float64
			for _, v := range s.Row(i) {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		// Shift-invariance: softmax(x+c) == softmax(x).
		c := m.Apply(func(x float64) float64 { return x + 42 }).SoftmaxRows()
		return c.Equal(s, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatAndSlice(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 1, []float64{9, 8})
	c := ConcatCols(a, b)
	if c.Cols != 3 || c.At(0, 2) != 9 || c.At(1, 2) != 8 {
		t.Fatalf("ConcatCols: %v", c)
	}
	d := ConcatRows(a, FromSlice(1, 2, []float64{7, 7}))
	if d.Rows != 3 || d.At(2, 0) != 7 {
		t.Fatalf("ConcatRows: %v", d)
	}
	s := d.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 7 {
		t.Fatalf("SliceRows: %v", s)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Randn(3, 5, 1, rng)
	if !m.Transpose().Transpose().Equal(m, 0) {
		t.Fatal("transpose is not an involution")
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -2, 3, -4})
	if m.Sum() != -2 {
		t.Errorf("Sum: %v", m.Sum())
	}
	if m.Mean() != -0.5 {
		t.Errorf("Mean: %v", m.Mean())
	}
	if m.MaxAbs() != 4 {
		t.Errorf("MaxAbs: %v", m.MaxAbs())
	}
	if got := m.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("Norm2: %v", got)
	}
	if m.ArgmaxRow(0) != 0 || m.ArgmaxRow(1) != 0 {
		t.Errorf("ArgmaxRow wrong")
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := FromSlice(1, 3, []float64{10, 20, 30})
	got := m.AddRowVector(v)
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !got.Equal(want, 0) {
		t.Fatalf("AddRowVector: %v", got)
	}
}

func TestActivations(t *testing.T) {
	m := FromSlice(1, 3, []float64{-1, 0, 2})
	if got := m.ReLU(); !got.Equal(FromSlice(1, 3, []float64{0, 0, 2}), 0) {
		t.Errorf("ReLU: %v", got)
	}
	sg := m.Sigmoid()
	if math.Abs(sg.At(0, 1)-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) != 0.5: %v", sg)
	}
	th := m.Tanh()
	if math.Abs(th.At(0, 1)) > 1e-12 || th.At(0, 0) >= 0 || th.At(0, 2) <= 0 {
		t.Errorf("Tanh: %v", th)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(2, 2, 1, rand.New(rand.NewSource(7)))
	b := Randn(2, 2, 1, rand.New(rand.NewSource(7)))
	if !a.Equal(b, 0) {
		t.Fatal("Randn not deterministic for fixed seed")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Sizes straddling the parallel threshold must agree exactly (row
	// partitioning is deterministic: each output row has one owner).
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{8, 64, 90} {
		a := Randn(n, n, 1, rng)
		b := Randn(n, n, 1, rng)
		want := New(n, n)
		matMulRows(want, a, b, 0, n) // serial reference
		got := a.MatMul(b)
		if !got.Equal(want, 0) {
			t.Fatalf("parallel MatMul diverges at n=%d", n)
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(64, 64, 1, rng)
	y := Randn(64, 64, 1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(128, 128, 1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.SoftmaxRows()
	}
}
