package tensor

// Arena32 is the float32 twin of Arena: a bump allocator for student-tier
// inference intermediates with identical lifetimes. Alloc hands out zeroed
// matrices carved from large reusable slabs; Reset rewinds the arena so the
// next briefing reuses the same memory. Not safe for concurrent use — each
// serving replica owns its own.
type Arena32 struct {
	slabs [][]float32
	slab  int // index of the slab currently being filled
	off   int // fill offset within slabs[slab]

	mats   [][]Matrix32
	matBlk int
	matOff int
}

// NewArena32 returns an empty arena. Slabs are allocated lazily on first
// use; the slab size (arenaSlabFloats elements = 256 KiB of float32) and
// header-block size are shared with the float64 arena.
func NewArena32() *Arena32 { return &Arena32{} }

// AllocFloats returns a zeroed slice of n floats backed by the arena. The
// slice is full-capacity-clipped so appends never bleed into neighbours.
func (a *Arena32) AllocFloats(n int) []float32 {
	if n == 0 {
		return nil
	}
	for {
		if a.slab == len(a.slabs) {
			size := arenaSlabFloats
			if n > size {
				size = n
			}
			a.slabs = append(a.slabs, make([]float32, size))
		}
		if s := a.slabs[a.slab]; a.off+n <= len(s) {
			out := s[a.off : a.off+n : a.off+n]
			a.off += n
			for i := range out {
				out[i] = 0
			}
			return out
		}
		a.slab++
		a.off = 0
	}
}

// Alloc returns a zeroed rows×cols matrix whose header and data both live
// in the arena. It panics on non-positive dimensions, like New32.
func (a *Arena32) Alloc(rows, cols int) *Matrix32 {
	m := a.allocHeader(rows, cols)
	m.Data = a.AllocFloats(rows * cols)
	return m
}

// AllocShared returns a rows×cols matrix header viewing data, without
// copying. It is the arena analogue of FromSlice32.
func (a *Arena32) AllocShared(rows, cols int, data []float32) *Matrix32 {
	if len(data) != rows*cols {
		panic("tensor: Arena32.AllocShared data length does not match shape")
	}
	m := a.allocHeader(rows, cols)
	m.Data = data
	return m
}

func (a *Arena32) allocHeader(rows, cols int) *Matrix32 {
	if rows <= 0 || cols <= 0 {
		panic("tensor: Arena32.Alloc invalid shape")
	}
	if a.matBlk == len(a.mats) {
		a.mats = append(a.mats, make([]Matrix32, arenaMatBlock))
	}
	blk := a.mats[a.matBlk]
	m := &blk[a.matOff]
	m.Rows, m.Cols = rows, cols
	a.matOff++
	if a.matOff == len(blk) {
		a.matBlk++
		a.matOff = 0
	}
	return m
}

// Reset rewinds the arena so all previously allocated matrices may be
// reused. The caller must ensure nothing from before the Reset is still
// referenced: old matrices will alias new ones.
func (a *Arena32) Reset() {
	a.slab, a.off = 0, 0
	a.matBlk, a.matOff = 0, 0
}

// Footprint reports the total floats held across all slabs.
func (a *Arena32) Footprint() int {
	n := 0
	for _, s := range a.slabs {
		n += len(s)
	}
	return n
}
