//go:build amd64

package tensor

// useFMA32 gates the AVX2+FMA lane kernels in kernels32fma_amd64.s. The
// binary targets baseline GOAMD64=v1, so the capability is probed once at
// startup via CPUID/XGETBV rather than assumed; on machines without AVX2 or
// without OS-saved YMM state the float32 kernels run their pure-Go bodies.
var useFMA32 = x86HasAVX2FMA()

// x86HasAVX2FMA reports whether the CPU supports AVX2 and FMA3 and the OS
// saves YMM state across context switches (XCR0 bits 1–2). Implemented in
// cpufeat_amd64.s.
func x86HasAVX2FMA() bool

// fmaBlock8 accumulates d[0:8] += Σ_{kk<k} a[kk] · b[kk·stride : kk·stride+8]
// with one 8-lane fused multiply-add per kk. Each lane is one output cell,
// accumulated in ascending k — the same per-cell op sequence as the pure-Go
// kernels, with the mul→add intermediate rounding fused away. k must be > 0.
//
//go:noescape
func fmaBlock8(d, a, b *float32, k, stride int)

// fmaBlock32 is fmaBlock8 over four adjacent 8-lane column blocks
// (d[0:32]), giving the out-of-order core four independent FMA chains to
// overlap against the ~4-cycle FMA latency. k must be > 0.
//
//go:noescape
func fmaBlock32(d, a, b *float32, k, stride int)

// fmaPanels32 is fmaBlock32 for panel-packed operands: the four 8-lane
// blocks read four consecutive packed panels at p, p+8k, p+16k and p+24k
// (each panel k rows of 8 contiguous floats). k must be > 0.
//
//go:noescape
func fmaPanels32(d, a, p *float32, k int)
