package tensor

// Float32 twins of the cache-blocked, register-blocked kernels in
// kernels.go, used by the distilled-student inference tier. The blocking
// scheme carries over — B-panel packing, row partitioning, a==0 skips — but
// the register block is twice as wide: packWidth32 = 8 float32 lanes occupy
// the same 32 bytes as the float64 kernels' packWidth = 4 quad, so the
// cache-line footprint per step is identical while the independent
// accumulator chains double. That width is where the float32 tier's speedup
// comes from on scalar hardware: four FMA chains leave the multiplier ports
// idle waiting on add latency, eight keep them fed.
//
// Accuracy contract: unlike the float64 kernels, these do NOT promise
// bitwise identity with a reference. They promise the same per-cell
// accumulation ORDER as their float64 twins (ascending k), which bounds the
// divergence from a float64 reference at the float32 rounding of each
// intermediate sum. kernels32_test.go pins this with explicit tolerances:
// for k-term dot products of inputs in [-1, 1] the error is ≤ k·ε·‖sum‖
// with ε = 2⁻²⁴, and the tests assert a documented multiple of that bound.
//
// That envelope contract — rather than the float64 tier's bitwise one — is
// what lets the matmul hot loops drop into AVX2+FMA assembly on capable
// amd64 hardware (kernels32fma_amd64.s, gated by useFMA32): the lane
// kernels keep each output cell in its own SIMD lane accumulating in
// ascending k, and fusing the multiply-add only removes an intermediate
// rounding, so results stay inside the k-term bound. The float64 kernels
// can never take this path; vectorising or fusing them would break their
// bitwise-identity promise.

// packWidth32 is the register-block width of the float32 kernels: 8 lanes
// = 32 bytes, the same per-step footprint as 4 float64 lanes.
const packWidth32 = 8

// PackBuf32 is the float32 analogue of PackBuf: a caller-owned, reusable
// B-panel packing buffer. The zero value is ready to use; it grows to the
// largest packed operand it has seen and is then allocation-free. Not safe
// for concurrent use — give each serving replica its own.
type PackBuf32 struct {
	buf []float32
}

// ensure returns a buffer of at least n floats, growing the backing store
// so steady-state calls never allocate.
func (p *PackBuf32) ensure(n int) []float32 {
	if cap(p.buf) < n {
		p.buf = make([]float32, n)
	}
	return p.buf[:n]
}

// Footprint reports the buffer's current capacity in floats.
func (p *PackBuf32) Footprint() int { return cap(p.buf) }

// packPanels32 rearranges o (k×n, row-major) into packWidth32-column
// panels, the float32 (8-wide) analogue of packPanels.
func packPanels32(dst []float32, o *Matrix32) {
	k, n := o.Rows, o.Cols
	pos := 0
	for j0 := 0; j0 < n; j0 += packWidth32 {
		w := n - j0
		if w > packWidth32 {
			w = packWidth32
		}
		for r := 0; r < k; r++ {
			row := o.Data[r*n+j0 : r*n+j0+w]
			for c, v := range row {
				dst[pos+c] = v
			}
			pos += w
		}
	}
}

// MatMulPackInto32 accumulates dst += m·o like MatMulInto32, routing the
// product through the caller-owned pack buffer when the shape profits from
// panel packing. dst must be zeroed for a plain product. A nil pack falls
// back to the unpacked blocked kernel.
func MatMulPackInto32(dst, m, o *Matrix32, pack *PackBuf32) {
	if m.Cols != o.Rows {
		panic("tensor: MatMulPackInto32 inner dim mismatch")
	}
	dstShapeCheck32(dst, m.Rows, o.Cols, "MatMulPackInto32")
	matMulIntoPacked32(dst, m, o, pack)
	debugFinite32("MatMulPackInto32", dst)
}

// matMulIntoPacked32 is the shared dispatch for MatMulInto32 and
// MatMulPackInto32, mirroring matMulIntoPacked: packed register kernel when
// profitable, row-streaming kernel otherwise, rows fanned out across
// goroutines for large products.
func matMulIntoPacked32(r, m, o *Matrix32, pack *PackBuf32) {
	usePack := pack != nil && m.Rows >= packMinRows && o.Rows > 0 && o.Cols > 0
	var panels []float32
	if usePack {
		panels = pack.ensure(o.Rows * o.Cols)
		packPanels32(panels, o)
	}
	if m.Rows*m.Cols*o.Cols >= parallelFlopThreshold && m.Rows > 1 {
		parallelRows(m.Rows, func(lo, hi int) {
			if usePack {
				matMulPackedRows32(r, m, o, panels, lo, hi)
			} else {
				matMulRows32(r, m, o, lo, hi)
			}
		})
		return
	}
	if usePack {
		matMulPackedRows32(r, m, o, panels, 0, m.Rows)
		return
	}
	matMulRows32(r, m, o, 0, m.Rows)
}

// matMulPackedRows32 computes output rows [lo, hi) of r += m·o reading o
// through its packed panels — the float32 (8-accumulator) twin of
// matMulPackedRows. Per output cell the accumulation order is still
// ascending k, so the kernels32_test error envelope is unaffected by the
// wider block.
func matMulPackedRows32(r, m, o *Matrix32, panels []float32, lo, hi int) {
	k, n := o.Rows, o.Cols
	if useFMA32 && k > 0 && n >= packWidth32 {
		matMulPackedRowsFMA32(r, m, o, panels, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		mRow := m.Row(i)
		rRow := r.Row(i)
		pos := 0
		for j0 := 0; j0 < n; j0 += packWidth32 {
			if n-j0 >= packWidth32 {
				d := rRow[j0 : j0+8 : j0+8]
				s0, s1, s2, s3 := d[0], d[1], d[2], d[3]
				s4, s5, s6, s7 := d[4], d[5], d[6], d[7]
				p := panels[pos : pos+8*k]
				for kk, a := range mRow {
					q := p[8*kk : 8*kk+8 : 8*kk+8]
					s0 += a * q[0]
					s1 += a * q[1]
					s2 += a * q[2]
					s3 += a * q[3]
					s4 += a * q[4]
					s5 += a * q[5]
					s6 += a * q[6]
					s7 += a * q[7]
				}
				d[0], d[1], d[2], d[3] = s0, s1, s2, s3
				d[4], d[5], d[6], d[7] = s4, s5, s6, s7
				pos += 8 * k
				continue
			}
			w := n - j0
			for c := 0; c < w; c++ {
				s := rRow[j0+c]
				for kk, a := range mRow {
					s += a * panels[pos+kk*w+c]
				}
				rRow[j0+c] = s
			}
			pos += w * k
		}
	}
}

// matMulRows32 computes output rows [lo, hi) of r += m·o. Unlike the
// float64 matMulRows axpy (k outer, columns inner — every += goes through
// rRow in memory, so each output element is a store-to-load-forwarding
// chain k long), this runs column-block outer / k inner with eight
// accumulators held in registers across the whole k loop. The LSTM serving
// path calls this with m.Rows == 1 every timestep, where the axpy's memory
// round-trips, not arithmetic, were the cost; o there is a weight matrix
// small enough that the strided column reads stay cache-resident. Per
// output cell the accumulation order is still ascending k.
func matMulRows32(r, m, o *Matrix32, lo, hi int) {
	k, n := o.Rows, o.Cols
	if useFMA32 && k > 0 && n >= packWidth32 {
		matMulRowsFMA32(r, m, o, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		mRow := m.Row(i)
		rRow := r.Row(i)
		j := 0
		for ; j+packWidth32 <= n; j += packWidth32 {
			d := rRow[j : j+8 : j+8]
			s0, s1, s2, s3 := d[0], d[1], d[2], d[3]
			s4, s5, s6, s7 := d[4], d[5], d[6], d[7]
			for kk := 0; kk < k; kk++ {
				a := mRow[kk]
				if a == 0 {
					continue
				}
				q := o.Data[kk*n+j : kk*n+j+8 : kk*n+j+8]
				s0 += a * q[0]
				s1 += a * q[1]
				s2 += a * q[2]
				s3 += a * q[3]
				s4 += a * q[4]
				s5 += a * q[5]
				s6 += a * q[6]
				s7 += a * q[7]
			}
			d[0], d[1], d[2], d[3] = s0, s1, s2, s3
			d[4], d[5], d[6], d[7] = s4, s5, s6, s7
		}
		for ; j < n; j++ {
			s := rRow[j]
			for kk := 0; kk < k; kk++ {
				if a := mRow[kk]; a != 0 {
					s += a * o.Data[kk*n+j]
				}
			}
			rRow[j] = s
		}
	}
}

// matMulRowsFMA32 is matMulRows32's AVX2+FMA body: 32- then 8-lane fused
// multiply-add blocks over the full-width column region, with the scalar
// tail loop (including its a==0 skip, numerically a no-op on finite
// operands) unchanged. Lanes are output cells, so per-cell accumulation
// stays ascending k and the packed twin below produces bitwise-identical
// full-region cells.
func matMulRowsFMA32(r, m, o *Matrix32, lo, hi int) {
	k, n := o.Rows, o.Cols
	nf := n &^ (packWidth32 - 1)
	for i := lo; i < hi; i++ {
		mRow := m.Row(i)
		rRow := r.Row(i)
		j := 0
		for ; j+4*packWidth32 <= nf; j += 4 * packWidth32 {
			fmaBlock32(&rRow[j], &mRow[0], &o.Data[j], k, n)
		}
		for ; j < nf; j += packWidth32 {
			fmaBlock8(&rRow[j], &mRow[0], &o.Data[j], k, n)
		}
		for ; j < n; j++ {
			s := rRow[j]
			for kk := 0; kk < k; kk++ {
				if a := mRow[kk]; a != 0 {
					s += a * o.Data[kk*n+j]
				}
			}
			rRow[j] = s
		}
	}
}

// matMulPackedRowsFMA32 is matMulPackedRows32's AVX2+FMA body, streaming
// packed panels four at a time (then singly) through the lane kernels. The
// narrow trailing panel keeps the scalar loop. Full-region cells see the
// exact op sequence of matMulRowsFMA32, preserving the packed/unpacked
// bitwise agreement that TestKernelEquivalence32MatMul asserts.
func matMulPackedRowsFMA32(r, m, o *Matrix32, panels []float32, lo, hi int) {
	k, n := o.Rows, o.Cols
	nf := n &^ (packWidth32 - 1)
	for i := lo; i < hi; i++ {
		mRow := m.Row(i)
		rRow := r.Row(i)
		j, pos := 0, 0
		for ; j+4*packWidth32 <= nf; j += 4 * packWidth32 {
			fmaPanels32(&rRow[j], &mRow[0], &panels[pos], k)
			pos += 4 * packWidth32 * k
		}
		for ; j < nf; j += packWidth32 {
			fmaBlock8(&rRow[j], &mRow[0], &panels[pos], k, packWidth32)
			pos += packWidth32 * k
		}
		if w := n - nf; w > 0 {
			for c := 0; c < w; c++ {
				s := rRow[nf+c]
				for kk, a := range mRow {
					s += a * panels[pos+kk*w+c]
				}
				rRow[nf+c] = s
			}
		}
	}
}

// matMulTransBBlocked32 sets dst = m·oᵀ with eight independent dot-product
// accumulators per block, the widened analogue of matMulTransBBlocked.
func matMulTransBBlocked32(dst, m, o *Matrix32) {
	rows := o.Rows
	for i := 0; i < m.Rows; i++ {
		mRow := m.Row(i)
		rRow := dst.Row(i)
		j := 0
		for ; j+packWidth32 <= rows; j += packWidth32 {
			o0, o1, o2, o3 := o.Row(j), o.Row(j+1), o.Row(j+2), o.Row(j+3)
			o4, o5, o6, o7 := o.Row(j+4), o.Row(j+5), o.Row(j+6), o.Row(j+7)
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			for k, a := range mRow {
				s0 += a * o0[k]
				s1 += a * o1[k]
				s2 += a * o2[k]
				s3 += a * o3[k]
				s4 += a * o4[k]
				s5 += a * o5[k]
				s6 += a * o6[k]
				s7 += a * o7[k]
			}
			rRow[j], rRow[j+1], rRow[j+2], rRow[j+3] = s0, s1, s2, s3
			rRow[j+4], rRow[j+5], rRow[j+6], rRow[j+7] = s4, s5, s6, s7
		}
		for ; j < rows; j++ {
			oRow := o.Row(j)
			var s float32
			for k, a := range mRow {
				s += a * oRow[k]
			}
			rRow[j] = s
		}
	}
}

// matMulTransARows32 accumulates dst += mᵀ·o for k rows [lo, hi) of m with
// the branchless axpy of matMulTransARows, unrolled 8-wide.
func matMulTransARows32(dst, m, o *Matrix32, lo, hi int) {
	n := o.Cols
	for k := lo; k < hi; k++ {
		mRow := m.Row(k)
		oRow := o.Row(k)
		for i, a := range mRow {
			rRow := dst.Row(i)
			j := 0
			for ; j+packWidth32 <= n; j += packWidth32 {
				q := oRow[j : j+8 : j+8]
				s := rRow[j : j+8 : j+8]
				s[0] += a * q[0]
				s[1] += a * q[1]
				s[2] += a * q[2]
				s[3] += a * q[3]
				s[4] += a * q[4]
				s[5] += a * q[5]
				s[6] += a * q[6]
				s[7] += a * q[7]
			}
			for ; j < n; j++ {
				rRow[j] += a * oRow[j]
			}
		}
	}
}

// transposeBlocked32 sets dst = mᵀ tile by tile like transposeBlocked. The
// tile edge is shared with the float64 kernel: 32×32 float32 tiles are 4 KiB
// per operand, comfortably L1-resident.
func transposeBlocked32(dst, m *Matrix32) {
	rows, cols := m.Rows, m.Cols
	for i0 := 0; i0 < rows; i0 += transposeTile {
		iMax := i0 + transposeTile
		if iMax > rows {
			iMax = rows
		}
		for j0 := 0; j0 < cols; j0 += transposeTile {
			jMax := j0 + transposeTile
			if jMax > cols {
				jMax = cols
			}
			for i := i0; i < iMax; i++ {
				src := m.Data[i*cols+j0 : i*cols+jMax]
				for jj, v := range src {
					dst.Data[(j0+jj)*rows+i] = v
				}
			}
		}
	}
}
