#include "textflag.h"

// func x86HasAVX2FMA() bool
//
// CPUID.0 guards the leaf-7 query; CPUID.1 ECX carries FMA (bit 12),
// OSXSAVE (bit 27) and AVX (bit 28); XGETBV(0) confirms the OS saves
// XMM+YMM state (XCR0 bits 1-2); CPUID.7.0 EBX bit 5 is AVX2.
TEXT ·x86HasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $0, AX
	XORL CX, CX
	CPUID
	CMPL AX, $7
	JLT  notsup
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18001000, R8
	CMPL R8, $0x18001000
	JNE  notsup
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  notsup
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $0x20, BX
	JZ   notsup
	MOVB $1, ret+0(FP)
	RET
notsup:
	MOVB $0, ret+0(FP)
	RET
