package tensor

import "fmt"

// Float32 twins of the ragged-batch gather/scatter helpers in batch.go,
// used by the student tier's lockstep batched BiLSTM and beam decode. Like
// their float64 counterparts they only move rows, never mix them, so slab
// rows match B separate 1-row calls exactly.

// GatherRowsInto32 copies row srcRows[i] of srcs[i] into row i of dst.
func GatherRowsInto32(dst *Matrix32, srcs []*Matrix32, srcRows []int) {
	if len(srcs) != len(srcRows) {
		panic(fmt.Sprintf("tensor: GatherRowsInto32 %d srcs, %d rows", len(srcs), len(srcRows)))
	}
	if dst.Rows != len(srcs) {
		panic(fmt.Sprintf("tensor: GatherRowsInto32 dst has %d rows, want %d", dst.Rows, len(srcs)))
	}
	for i, src := range srcs {
		if src.Cols != dst.Cols {
			panic(fmt.Sprintf("tensor: GatherRowsInto32 src %d has %d cols, dst has %d", i, src.Cols, dst.Cols))
		}
		if r := srcRows[i]; r < 0 || r >= src.Rows {
			panic(fmt.Sprintf("tensor: GatherRowsInto32 row %d out of range for src %d with %d rows", r, i, src.Rows))
		}
	}
	for i, src := range srcs {
		copy(dst.Row(i), src.Row(srcRows[i]))
	}
}

// ScatterRowsInto32 copies row i of src into row dstRows[i] of dsts[i].
func ScatterRowsInto32(dsts []*Matrix32, dstRows []int, src *Matrix32) {
	if len(dsts) != len(dstRows) {
		panic(fmt.Sprintf("tensor: ScatterRowsInto32 %d dsts, %d rows", len(dsts), len(dstRows)))
	}
	if src.Rows != len(dsts) {
		panic(fmt.Sprintf("tensor: ScatterRowsInto32 src has %d rows, want %d", src.Rows, len(dsts)))
	}
	for i, dst := range dsts {
		if dst.Cols != src.Cols {
			panic(fmt.Sprintf("tensor: ScatterRowsInto32 dst %d has %d cols, src has %d", i, dst.Cols, src.Cols))
		}
		if r := dstRows[i]; r < 0 || r >= dst.Rows {
			panic(fmt.Sprintf("tensor: ScatterRowsInto32 row %d out of range for dst %d with %d rows", r, i, dst.Rows))
		}
	}
	for i, dst := range dsts {
		copy(dst.Row(dstRows[i]), src.Row(i))
	}
}

// ScatterRowSpansInto32 copies row i of src into columns
// [colOff, colOff+src.Cols) of row dstRows[i] of dsts[i].
func ScatterRowSpansInto32(dsts []*Matrix32, dstRows []int, colOff int, src *Matrix32) {
	if len(dsts) != len(dstRows) {
		panic(fmt.Sprintf("tensor: ScatterRowSpansInto32 %d dsts, %d rows", len(dsts), len(dstRows)))
	}
	if src.Rows != len(dsts) {
		panic(fmt.Sprintf("tensor: ScatterRowSpansInto32 src has %d rows, want %d", src.Rows, len(dsts)))
	}
	if colOff < 0 {
		panic(fmt.Sprintf("tensor: ScatterRowSpansInto32 negative column offset %d", colOff))
	}
	for i, dst := range dsts {
		if colOff+src.Cols > dst.Cols {
			panic(fmt.Sprintf("tensor: ScatterRowSpansInto32 span [%d,%d) exceeds dst %d with %d cols", colOff, colOff+src.Cols, i, dst.Cols))
		}
		if r := dstRows[i]; r < 0 || r >= dst.Rows {
			panic(fmt.Sprintf("tensor: ScatterRowSpansInto32 row %d out of range for dst %d with %d rows", r, i, dst.Rows))
		}
	}
	for i, dst := range dsts {
		copy(dst.Row(dstRows[i])[colOff:colOff+src.Cols], src.Row(i))
	}
}
