package tensor

import (
	"fmt"
	"math"
)

// Destination-passing variants of the elementwise and matrix kernels. Each
// writes its result into dst instead of allocating, which lets the autodiff
// tape draw every intermediate value from a reusable Arena. Kernels that
// accumulate (+=) document that dst must be zeroed; Arena.Alloc and New both
// guarantee that.

func dstShapeCheck(dst *Matrix, rows, cols int, op string) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("tensor: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}

// AddInto sets dst = a + b.
func AddInto(dst, a, b *Matrix) {
	a.shapeCheck(b, "AddInto")
	dstShapeCheck(dst, a.Rows, a.Cols, "AddInto")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	debugFinite("AddInto", dst)
}

// SubInto sets dst = a - b.
func SubInto(dst, a, b *Matrix) {
	a.shapeCheck(b, "SubInto")
	dstShapeCheck(dst, a.Rows, a.Cols, "SubInto")
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
	debugFinite("SubInto", dst)
}

// MulInto sets dst = a ⊙ b.
func MulInto(dst, a, b *Matrix) {
	a.shapeCheck(b, "MulInto")
	dstShapeCheck(dst, a.Rows, a.Cols, "MulInto")
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
	debugFinite("MulInto", dst)
}

// ScaleInto sets dst = s*a.
func ScaleInto(dst, a *Matrix, s float64) {
	dstShapeCheck(dst, a.Rows, a.Cols, "ScaleInto")
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
	debugFinite("ScaleInto", dst)
}

// AddRowVectorInto sets dst = a with the 1×cols vector v added to each row.
func AddRowVectorInto(dst, a, v *Matrix) {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRowVectorInto wants 1x%d, got %dx%d", a.Cols, v.Rows, v.Cols))
	}
	dstShapeCheck(dst, a.Rows, a.Cols, "AddRowVectorInto")
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		out := dst.Row(i)
		for j, x := range row {
			out[j] = x + v.Data[j]
		}
	}
	debugFinite("AddRowVectorInto", dst)
}

// MatMulInto accumulates dst += m·o. dst must be zeroed for a plain product.
func MatMulInto(dst, m, o *Matrix) {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: MatMulInto inner dim mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	dstShapeCheck(dst, m.Rows, o.Cols, "MatMulInto")
	matMulInto(dst, m, o)
	debugFinite("MatMulInto", dst)
}

// MatMulTransBInto sets dst = m·oᵀ (every cell written, no zeroing needed).
func MatMulTransBInto(dst, m, o *Matrix) {
	if m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBInto dim mismatch %dx%d · (%dx%d)ᵀ", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	dstShapeCheck(dst, m.Rows, o.Rows, "MatMulTransBInto")
	matMulTransBBlocked(dst, m, o)
	debugFinite("MatMulTransBInto", dst)
}

// MatMulTransAInto accumulates dst += mᵀ·o. dst must be zeroed for a plain
// product.
func MatMulTransAInto(dst, m, o *Matrix) {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransAInto dim mismatch (%dx%d)ᵀ · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	dstShapeCheck(dst, m.Cols, o.Cols, "MatMulTransAInto")
	matMulTransARows(dst, m, o, 0, m.Rows)
	debugFinite("MatMulTransAInto", dst)
}

// TransposeInto sets dst = mᵀ.
func TransposeInto(dst, m *Matrix) {
	dstShapeCheck(dst, m.Cols, m.Rows, "TransposeInto")
	transposeBlocked(dst, m)
	debugFinite("TransposeInto", dst)
}

// TanhInto sets dst = tanh(m) elementwise.
func TanhInto(dst, m *Matrix) {
	dstShapeCheck(dst, m.Rows, m.Cols, "TanhInto")
	for i, v := range m.Data {
		dst.Data[i] = math.Tanh(v)
	}
	debugFinite("TanhInto", dst)
}

// SigmoidInto sets dst = σ(m) elementwise.
func SigmoidInto(dst, m *Matrix) {
	dstShapeCheck(dst, m.Rows, m.Cols, "SigmoidInto")
	for i, v := range m.Data {
		dst.Data[i] = 1 / (1 + math.Exp(-v))
	}
	debugFinite("SigmoidInto", dst)
}

// ReLUInto sets dst = max(0, m) elementwise.
func ReLUInto(dst, m *Matrix) {
	dstShapeCheck(dst, m.Rows, m.Cols, "ReLUInto")
	for i, v := range m.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
	debugFinite("ReLUInto", dst)
}

// SoftmaxRowsInto sets dst to the row-wise softmax of m.
func SoftmaxRowsInto(dst, m *Matrix) {
	dstShapeCheck(dst, m.Rows, m.Cols, "SoftmaxRowsInto")
	for i := 0; i < m.Rows; i++ {
		softmaxInto(dst.Row(i), m.Row(i))
	}
	debugFinite("SoftmaxRowsInto", dst)
}

// LogSoftmaxRowsInto sets dst to the row-wise log-softmax of m.
func LogSoftmaxRowsInto(dst, m *Matrix) {
	dstShapeCheck(dst, m.Rows, m.Cols, "LogSoftmaxRowsInto")
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		out := dst.Row(i)
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range src {
			sum += math.Exp(v - mx)
		}
		lse := mx + math.Log(sum)
		for j, v := range src {
			out[j] = v - lse
		}
	}
	debugFinite("LogSoftmaxRowsInto", dst)
}

// ConcatRowsInto stacks ms vertically into dst.
func ConcatRowsInto(dst *Matrix, ms ...*Matrix) {
	off := 0
	for _, m := range ms {
		if m.Cols != dst.Cols {
			panic(fmt.Sprintf("tensor: ConcatRowsInto col mismatch %d vs %d", m.Cols, dst.Cols))
		}
		copy(dst.Data[off:], m.Data)
		off += len(m.Data)
	}
	if off != len(dst.Data) {
		panic("tensor: ConcatRowsInto row count mismatch")
	}
	debugFinite("ConcatRowsInto", dst)
}

// ConcatColsInto joins ms horizontally into dst.
func ConcatColsInto(dst *Matrix, ms ...*Matrix) {
	for i := 0; i < dst.Rows; i++ {
		out := dst.Row(i)
		off := 0
		for _, m := range ms {
			if m.Rows != dst.Rows {
				panic(fmt.Sprintf("tensor: ConcatColsInto row mismatch %d vs %d", m.Rows, dst.Rows))
			}
			copy(out[off:], m.Row(i))
			off += m.Cols
		}
		if off != dst.Cols {
			panic("tensor: ConcatColsInto col count mismatch")
		}
	}
	debugFinite("ConcatColsInto", dst)
}
