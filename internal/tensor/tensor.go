// Package tensor provides dense two-dimensional float64 matrices and the
// numeric kernels used by the autodiff and neural-network layers of the
// webpage-briefing models. Matrices are row-major and sized at construction.
//
// The package is deliberately restricted to rank-2 tensors: every quantity
// in the paper's models (token embeddings, hidden state sequences, attention
// maps, output distributions) is naturally a matrix, with vectors expressed
// as 1×n or n×1 matrices. Keeping a single rank removes a whole class of
// shape bugs and keeps the kernels simple enough to audit.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix with the given shape. It panics if either
// dimension is non-positive, since a degenerate matrix is always a caller
// bug in this codebase.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data in a matrix of the given shape. The slice is used
// directly, not copied; len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("tensor: FromRows requires at least one non-empty row")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d: got %d want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Randn returns a matrix with entries drawn from N(0, std²) using rng.
func Randn(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// Uniform returns a matrix with entries drawn uniformly from [lo, hi).
func Uniform(rows, cols int, lo, hi float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + (hi-lo)*rng.Float64()
	}
	return m
}

// Full returns a matrix with every entry set to v.
func Full(rows, cols int, v float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shares the underlying storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// Zero sets every entry of m to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

func (m *Matrix) shapeCheck(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.shapeCheck(o, "Add")
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] + o.Data[i]
	}
	return r
}

// AddInPlace adds o into m and returns m.
func (m *Matrix) AddInPlace(o *Matrix) *Matrix {
	m.shapeCheck(o, "AddInPlace")
	for i := range m.Data {
		m.Data[i] += o.Data[i]
	}
	return m
}

// AddScaledInPlace adds s*o into m and returns m.
func (m *Matrix) AddScaledInPlace(o *Matrix, s float64) *Matrix {
	m.shapeCheck(o, "AddScaledInPlace")
	for i := range m.Data {
		m.Data[i] += s * o.Data[i]
	}
	return m
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.shapeCheck(o, "Sub")
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] - o.Data[i]
	}
	return r
}

// Mul returns the elementwise (Hadamard) product m ⊙ o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	m.shapeCheck(o, "Mul")
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] * o.Data[i]
	}
	return r
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = s * m.Data[i]
	}
	return r
}

// AddRowVector returns m with the 1×Cols vector v added to every row.
func (m *Matrix) AddRowVector(v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector wants 1x%d, got %dx%d", m.Cols, v.Rows, v.Cols))
	}
	r := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		out := r.Row(i)
		for j, x := range row {
			out[j] = x + v.Data[j]
		}
	}
	return r
}

// MatMul returns the matrix product m·o. m is Rows×K, o is K×Cols.
func (m *Matrix) MatMul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := New(m.Rows, o.Cols)
	matMulInto(r, m, o)
	return r
}

// parallelFlopThreshold is the approximate multiply count above which
// MatMul fans rows out across goroutines. Below it the goroutine overhead
// outweighs the work (typical matrices here are small).
const parallelFlopThreshold = 1 << 18

// matMulInto computes r = m·o using an ikj loop order that keeps the inner
// loop streaming over contiguous rows of o — the standard cache-friendly
// layout for row-major data (see kernels.go for the blocked loop bodies).
// Large products are row-partitioned across goroutines; each output row is
// owned by exactly one goroutine, so the result is deterministic.
func matMulInto(r, m, o *Matrix) {
	matMulIntoPacked(r, m, o, nil)
}

// parallelRows splits [0, n) into one chunk per worker and runs fn on each
// chunk concurrently.
func parallelRows(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulTransB returns m·oᵀ without materialising the transpose.
func (m *Matrix) MatMulTransB(o *Matrix) *Matrix {
	if m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB dim mismatch %dx%d · (%dx%d)ᵀ", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := New(m.Rows, o.Rows)
	matMulTransBBlocked(r, m, o)
	return r
}

// MatMulTransA returns mᵀ·o without materialising the transpose.
func (m *Matrix) MatMulTransA(o *Matrix) *Matrix {
	if m.Rows != o.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA dim mismatch (%dx%d)ᵀ · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	r := New(m.Cols, o.Cols)
	matMulTransARows(r, m, o, 0, m.Rows)
	return r
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	r := New(m.Cols, m.Rows)
	transposeBlocked(r, m)
	return r
}

// Apply returns f applied elementwise to m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = f(v)
	}
	return r
}

// Tanh returns tanh applied elementwise.
func (m *Matrix) Tanh() *Matrix { return m.Apply(math.Tanh) }

// Sigmoid returns the logistic function applied elementwise.
func (m *Matrix) Sigmoid() *Matrix {
	return m.Apply(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// ReLU returns max(0, x) applied elementwise.
func (m *Matrix) ReLU() *Matrix {
	return m.Apply(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// SoftmaxRows returns row-wise softmax computed with the max-subtraction
// trick for numerical stability.
func (m *Matrix) SoftmaxRows() *Matrix {
	r := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		softmaxInto(r.Row(i), m.Row(i))
	}
	return r
}

func softmaxInto(dst, src []float64) {
	mx := src[0]
	for _, v := range src[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(v - mx)
		dst[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// LogSoftmaxRows returns row-wise log-softmax.
func (m *Matrix) LogSoftmaxRows() *Matrix {
	r := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := r.Row(i)
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range src {
			sum += math.Exp(v - mx)
		}
		lse := mx + math.Log(sum)
		for j, v := range src {
			dst[j] = v - lse
		}
	}
	return r
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all entries.
func (m *Matrix) Mean() float64 { return m.Sum() / float64(len(m.Data)) }

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// ArgmaxRow returns the column index of the largest entry in row i.
func (m *Matrix) ArgmaxRow(i int) int {
	row := m.Row(i)
	best := 0
	for j, v := range row[1:] {
		if v > row[best] {
			best = j + 1
		}
	}
	return best
}

// SliceRows returns a copy of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo >= hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	r := New(hi-lo, m.Cols)
	copy(r.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return r
}

// ConcatRows stacks matrices vertically; all must share Cols.
func ConcatRows(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	r := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(r.Data[off:], m.Data)
		off += len(m.Data)
	}
	return r
}

// ConcatCols joins matrices horizontally; all must share Rows.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	r := New(rows, cols)
	for i := 0; i < rows; i++ {
		dst := r.Row(i)
		off := 0
		for _, m := range ms {
			copy(dst[off:], m.Row(i))
			off += m.Cols
		}
	}
	return r
}

// Equal reports whether m and o have the same shape and entries within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are
// abbreviated to their shape.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
