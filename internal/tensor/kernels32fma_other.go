//go:build !amd64

package tensor

// Non-amd64 targets run the pure-Go float32 kernel bodies; the FMA lane
// kernels are never dispatched (useFMA32 is constant false, so the branches
// compile away) and these stubs exist only to satisfy the references.
const useFMA32 = false

func fmaBlock8(d, a, b *float32, k, stride int)  { panic("tensor: fmaBlock8 without FMA support") }
func fmaBlock32(d, a, b *float32, k, stride int) { panic("tensor: fmaBlock32 without FMA support") }
func fmaPanels32(d, a, p *float32, k int)        { panic("tensor: fmaPanels32 without FMA support") }
