//go:build !wbdebug

package tensor

// debugFinite is a no-op in release builds; the empty body inlines away, so
// the kernels in into.go pay nothing for their guard calls. Build with
// `-tags wbdebug` to trap the first non-finite value a kernel produces.
func debugFinite(op string, dst *Matrix) {}

// debugFinite32 is the float32 twin; likewise a release-build no-op.
func debugFinite32(op string, dst *Matrix32) {}
