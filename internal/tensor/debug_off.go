//go:build !wbdebug

package tensor

// debugFinite is a no-op in release builds; the empty body inlines away, so
// the kernels in into.go pay nothing for their guard calls. Build with
// `-tags wbdebug` to trap the first non-finite value a kernel produces.
func debugFinite(op string, dst *Matrix) {}
