package tensor

import "testing"

func TestGatherScatterRows(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 3, []float64{7, 8, 9, 10, 11, 12, 13, 14, 15})
	dst := New(2, 3)
	GatherRowsInto(dst, []*Matrix{a, b}, []int{1, 2})
	exactEqual(t, "GatherRowsInto", dst, FromSlice(2, 3, []float64{4, 5, 6, 13, 14, 15}))

	oa, ob := New(2, 3), New(3, 3)
	ScatterRowsInto([]*Matrix{oa, ob}, []int{0, 2}, dst)
	if got := oa.Row(0); got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("scatter row 0 got %v", got)
	}
	if got := ob.Row(2); got[0] != 13 || got[1] != 14 || got[2] != 15 {
		t.Fatalf("scatter row 2 got %v", got)
	}

	wide := New(2, 5)
	ScatterRowSpansInto([]*Matrix{wide, wide}, []int{0, 1}, 2, dst)
	if got := wide.Row(0); got[0] != 0 || got[2] != 4 || got[4] != 6 {
		t.Fatalf("span scatter row 0 got %v", got)
	}
	if got := wide.Row(1); got[1] != 0 || got[2] != 13 || got[4] != 15 {
		t.Fatalf("span scatter row 1 got %v", got)
	}
}

func TestGatherScatterShapePanics(t *testing.T) {
	cases := []func(){
		func() { GatherRowsInto(New(1, 3), []*Matrix{New(2, 3), New(2, 3)}, []int{0, 1}) },
		func() { GatherRowsInto(New(2, 3), []*Matrix{New(2, 3), New(2, 4)}, []int{0, 1}) },
		func() { GatherRowsInto(New(2, 3), []*Matrix{New(2, 3), New(2, 3)}, []int{0, 2}) },
		func() { GatherRowsInto(New(2, 3), []*Matrix{New(2, 3)}, []int{0, 1}) },
		func() { ScatterRowsInto([]*Matrix{New(2, 3)}, []int{0}, New(2, 3)) },
		func() { ScatterRowsInto([]*Matrix{New(2, 3), New(2, 4)}, []int{0, 0}, New(2, 3)) },
		func() { ScatterRowsInto([]*Matrix{New(2, 3), New(2, 3)}, []int{0, 5}, New(2, 3)) },
		func() { ScatterRowSpansInto([]*Matrix{New(2, 4), New(2, 4)}, []int{0, 1}, 2, New(2, 3)) },
		func() { ScatterRowSpansInto([]*Matrix{New(2, 4)}, []int{0}, -1, New(1, 3)) },
		func() { ScatterRowSpansInto([]*Matrix{New(2, 4), New(2, 4)}, []int{0, 3}, 0, New(2, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected shape panic", i)
				}
			}()
			fn()
		}()
	}
}
