package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer builds a section payload from primitive values. The zero value
// is ready to use; values are appended little-endian.
type Buffer struct {
	b []byte
}

// Bytes returns the accumulated payload.
func (b *Buffer) Bytes() []byte { return b.b }

// Uvarint appends an unsigned varint.
func (b *Buffer) Uvarint(v uint64) { b.b = binary.AppendUvarint(b.b, v) }

// String appends a length-prefixed string.
func (b *Buffer) String(s string) {
	b.Uvarint(uint64(len(s)))
	b.b = append(b.b, s...)
}

// Strings appends a count-prefixed string slice.
func (b *Buffer) Strings(ss []string) {
	b.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		b.String(s)
	}
}

// Float64s appends a count-prefixed float64 slab: each value is the
// little-endian IEEE 754 bit pattern, so round trips are bit-exact.
func (b *Buffer) Float64s(xs []float64) {
	b.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		b.b = binary.LittleEndian.AppendUint64(b.b, math.Float64bits(x))
	}
}

// Float32s appends a count-prefixed float32 slab: each value is the
// little-endian IEEE 754 bit pattern, so round trips are bit-exact. Readers
// older than container version 2 never see these slabs — writers that use
// them emit version-2 containers.
func (b *Buffer) Float32s(xs []float32) {
	b.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		b.b = binary.LittleEndian.AppendUint32(b.b, math.Float32bits(x))
	}
}

// Reader decodes a payload written with Buffer. Every read validates the
// remaining length first, so truncated or corrupted payloads produce
// errors rather than panics, and allocation sizes are always bounded by
// the input length.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining reports how many bytes are left unread.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("snapshot: truncated or malformed varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.Remaining()) {
		return "", fmt.Errorf("snapshot: string length %d exceeds %d remaining bytes", n, r.Remaining())
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Strings reads a count-prefixed string slice.
func (r *Reader) Strings() ([]string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	// Each element costs at least one length byte, so the count is
	// bounded by the remaining payload — no attacker-sized allocation.
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("snapshot: string count %d exceeds %d remaining bytes", n, r.Remaining())
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Float64s reads a count-prefixed float64 slab.
func (r *Reader) Float64s() ([]float64, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining())/8 {
		return nil, fmt.Errorf("snapshot: float64 count %d exceeds %d remaining bytes", n, r.Remaining())
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return out, nil
}

// Float32s reads a count-prefixed float32 slab.
func (r *Reader) Float32s() ([]float32, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining())/4 {
		return nil, fmt.Errorf("snapshot: float32 count %d exceeds %d remaining bytes", n, r.Remaining())
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return out, nil
}
