// Package snapshot implements the versioned, checksummed binary container
// webbrief uses to persist trained models and to clone replicas at serve
// time. It replaces encoding/gob for those paths: gob streams re-transmit
// type metadata per stream and decode reflectively, while a snapshot is a
// flat section table over little-endian slabs that can be written once and
// decoded many times cheaply.
//
// Layout (all integers little-endian):
//
//	magic   "WBSNAP"                      6 bytes
//	version uint16                        container format version
//	count   uint32                        number of sections
//	table   count × {                     section directory
//	          nameLen uint16
//	          name    []byte
//	          size    uint64              payload length in bytes
//	          crc     uint32              crc32c of the payload
//	        }
//	payloads                              concatenated, in table order
//	filecrc uint32                        crc32c of everything above
//
// Every length in the directory is validated against the actual buffer
// before any allocation is sized from it, so a truncated, bit-flipped or
// adversarial input fails with an error — never a panic or an outsized
// allocation. Section payload contents are opaque to the container; the
// Buffer/Reader primitives in this package are the intended way to encode
// them.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Magic identifies a snapshot container. It is the first thing in the
// file, so formats can be sniffed with a 6-byte peek.
const Magic = "WBSNAP"

// Version is the container format version this package writes. Version 2
// added float32 payload slabs (Buffer.Float32s) for the distilled-student
// snapshots; the container layout itself is unchanged.
const Version = 2

// MinVersion is the oldest container version Decode still accepts. Version
// 1 files contain only float64 slabs and remain fully readable.
const MinVersion = 1

const (
	maxSections = 1024
	maxNameLen  = 256
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section is one named payload inside a snapshot.
type Section struct {
	Name    string
	Payload []byte
}

// Builder accumulates sections and serialises them into a container.
type Builder struct {
	sections []Section
	names    map[string]bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{names: make(map[string]bool)}
}

// Add appends a named section. Names must be unique, non-empty and at
// most 256 bytes; the payload is referenced, not copied.
func (b *Builder) Add(name string, payload []byte) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("snapshot: bad section name %q", name)
	}
	if b.names[name] {
		return fmt.Errorf("snapshot: duplicate section %q", name)
	}
	if len(b.sections) >= maxSections {
		return fmt.Errorf("snapshot: too many sections (max %d)", maxSections)
	}
	b.names[name] = true
	b.sections = append(b.sections, Section{Name: name, Payload: payload})
	return nil
}

// Bytes serialises the container.
func (b *Builder) Bytes() []byte {
	size := len(Magic) + 2 + 4
	for _, s := range b.sections {
		size += 2 + len(s.Name) + 8 + 4 + len(s.Payload)
	}
	size += 4 // file crc
	out := make([]byte, 0, size)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.sections)))
	for _, s := range b.sections {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Name)))
		out = append(out, s.Name...)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.Payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(s.Payload, castagnoli))
	}
	for _, s := range b.sections {
		out = append(out, s.Payload...)
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
	return out
}

// WriteTo serialises the container to w.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(b.Bytes())
	return int64(n), err
}

// Snapshot is a decoded container. Section payloads alias the input
// buffer; callers that mutate them must copy first.
type Snapshot struct {
	version  uint16
	sections map[string][]byte
	names    []string
}

// Decode parses a serialised container. It validates the magic, version,
// directory bounds, every section checksum and the file checksum; any
// corruption is an error, never a panic.
func Decode(data []byte) (*Snapshot, error) {
	const headerLen = len(Magic) + 2 + 4
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("snapshot: truncated container (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:len(Magic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("snapshot: file checksum mismatch (got %08x, want %08x)", got, want)
	}
	version := binary.LittleEndian.Uint16(data[len(Magic):])
	if version < MinVersion || version > Version {
		return nil, fmt.Errorf("snapshot: unsupported container version %d (this build reads %d..%d)", version, MinVersion, Version)
	}
	count := binary.LittleEndian.Uint32(data[len(Magic)+2:])
	if count > maxSections {
		return nil, fmt.Errorf("snapshot: section count %d exceeds limit %d", count, maxSections)
	}

	type dirEntry struct {
		name string
		size uint64
		crc  uint32
	}
	off := headerLen
	dir := make([]dirEntry, 0, count)
	var total uint64
	for i := uint32(0); i < count; i++ {
		if off+2 > len(body) {
			return nil, fmt.Errorf("snapshot: truncated directory at section %d", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if nameLen == 0 || nameLen > maxNameLen || off+nameLen+8+4 > len(body) {
			return nil, fmt.Errorf("snapshot: bad directory entry at section %d", i)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		size := binary.LittleEndian.Uint64(body[off:])
		off += 8
		crc := binary.LittleEndian.Uint32(body[off:])
		off += 4
		if size > uint64(len(body)) {
			return nil, fmt.Errorf("snapshot: section %q claims %d bytes, file has %d", name, size, len(body))
		}
		total += size
		if total > uint64(len(body)) {
			return nil, fmt.Errorf("snapshot: section sizes exceed file size")
		}
		dir = append(dir, dirEntry{name: name, size: size, crc: crc})
	}
	if uint64(off)+total != uint64(len(body)) {
		return nil, fmt.Errorf("snapshot: payload region is %d bytes, directory claims %d", len(body)-off, total)
	}

	s := &Snapshot{version: version, sections: make(map[string][]byte, len(dir))}
	for _, e := range dir {
		payload := body[off : off+int(e.size)]
		off += int(e.size)
		if got := crc32.Checksum(payload, castagnoli); got != e.crc {
			return nil, fmt.Errorf("snapshot: section %q checksum mismatch (got %08x, want %08x)", e.name, got, e.crc)
		}
		if _, dup := s.sections[e.name]; dup {
			return nil, fmt.Errorf("snapshot: duplicate section %q", e.name)
		}
		s.sections[e.name] = payload
		s.names = append(s.names, e.name)
	}
	return s, nil
}

// Read consumes r to EOF and decodes the container.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	return Decode(data)
}

// Version reports the container format version of a decoded snapshot.
func (s *Snapshot) Version() uint16 { return s.version }

// Section returns a named payload. The bytes alias the decoded buffer.
func (s *Snapshot) Section(name string) ([]byte, bool) {
	p, ok := s.sections[name]
	return p, ok
}

// Names lists the section names in sorted order.
func (s *Snapshot) Names() []string {
	out := append([]string(nil), s.names...)
	sort.Strings(out)
	return out
}

// SniffMagic reports whether data begins with the snapshot magic, for
// format dispatch between snapshot and legacy gob bundles.
func SniffMagic(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}
