package snapshot

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden snapshot files")

// TestContainerRoundTrip: randomized sections survive encode/decode with
// identical names and payloads, across many seeded shapes.
func TestContainerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(8)
		want := map[string][]byte{}
		b := NewBuilder()
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("section/%d-%d", trial, i)
			payload := make([]byte, rng.Intn(1<<12))
			rng.Read(payload)
			want[name] = payload
			if err := b.Add(name, payload); err != nil {
				t.Fatal(err)
			}
		}
		s, err := Decode(b.Bytes())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Version() != Version {
			t.Fatalf("trial %d: version %d", trial, s.Version())
		}
		if len(s.Names()) != n {
			t.Fatalf("trial %d: %d sections, want %d", trial, len(s.Names()), n)
		}
		for name, payload := range want {
			got, ok := s.Section(name)
			if !ok || !bytes.Equal(got, payload) {
				t.Fatalf("trial %d: section %q corrupted", trial, name)
			}
		}
	}
}

// TestBuilderRejects: bad names, duplicates and overflow are refused at
// build time.
func TestBuilderRejects(t *testing.T) {
	b := NewBuilder()
	if err := b.Add("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := b.Add(string(make([]byte, maxNameLen+1)), nil); err == nil {
		t.Error("oversized name accepted")
	}
	if err := b.Add("dup", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("dup", nil); err == nil {
		t.Error("duplicate name accepted")
	}
}

// TestDecodeRejectsCorruption: every corruption class fails with an
// error, never a panic — truncation, bit flips in header, directory,
// payload and checksums, and garbage.
func TestDecodeRejectsCorruption(t *testing.T) {
	b := NewBuilder()
	b.Add("meta", []byte("hello metadata"))
	b.Add("params", bytes.Repeat([]byte{0xAB}, 256))
	good := b.Bytes()
	if _, err := Decode(good); err != nil {
		t.Fatal(err)
	}

	t.Run("truncation", func(t *testing.T) {
		for i := 0; i < len(good); i++ {
			if _, err := Decode(good[:i]); err == nil {
				t.Fatalf("truncation at %d accepted", i)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for i := 0; i < len(good); i++ {
			for _, bit := range []byte{0x01, 0x80} {
				mut := append([]byte(nil), good...)
				mut[i] ^= bit
				if _, err := Decode(mut); err == nil {
					t.Fatalf("bit flip at byte %d (mask %02x) accepted", i, bit)
				}
			}
		}
	})
	t.Run("garbage", func(t *testing.T) {
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 200; trial++ {
			junk := make([]byte, rng.Intn(512))
			rng.Read(junk)
			if _, err := Decode(junk); err == nil && len(junk) > 0 {
				t.Fatalf("random garbage accepted (len %d, trial %d)", len(junk), trial)
			}
		}
	})
	t.Run("oversized-section-claim", func(t *testing.T) {
		// Hand-craft a directory whose size field claims far more than the
		// file holds: must error without allocating the claimed size.
		mut := append([]byte(nil), good...)
		// Directory entry for "meta": magic(6)+ver(2)+count(4)+nameLen(2)+name(4) = 18
		binary.LittleEndian.PutUint64(mut[18:], 1<<60)
		body := mut[:len(mut)-4]
		binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32Of(body))
		if _, err := Decode(mut); err == nil {
			t.Fatal("oversized section size accepted")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(mut[6:], Version+1)
		body := mut[:len(mut)-4]
		binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32Of(body))
		if _, err := Decode(mut); err == nil {
			t.Fatal("future version accepted")
		}
	})
}

func crc32Of(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// TestDecodeAcceptsOldVersions: every container version in
// [MinVersion, Version] decodes; version 1 files written before the float32
// slabs existed must keep loading forever.
func TestDecodeAcceptsOldVersions(t *testing.T) {
	b := NewBuilder()
	b.Add("meta", []byte("old bundle"))
	good := b.Bytes()
	for v := MinVersion; v <= Version; v++ {
		mut := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(mut[6:], uint16(v))
		body := mut[:len(mut)-4]
		binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32Of(body))
		s, err := Decode(mut)
		if err != nil {
			t.Fatalf("version %d rejected: %v", v, err)
		}
		if s.Version() != uint16(v) {
			t.Fatalf("decoded version %d, want %d", s.Version(), v)
		}
	}
	mut := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(mut[6:], MinVersion-1)
	body := mut[:len(mut)-4]
	binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32Of(body))
	if _, err := Decode(mut); err == nil {
		t.Fatalf("version %d below MinVersion accepted", MinVersion-1)
	}
}

// TestGoldenSnapshotV1 pins backward compatibility with the committed
// version-1 container: it must decode forever even though the writer now
// emits version 2.
func TestGoldenSnapshotV1(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_v1.snap"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Decode(data)
	if err != nil {
		t.Fatalf("version-1 golden rejected: %v", err)
	}
	if s.Version() != 1 {
		t.Fatalf("version-1 golden reports version %d", s.Version())
	}
	meta, _ := s.Section("meta")
	if string(meta) != "golden metadata v1" {
		t.Fatalf("v1 golden meta = %q", meta)
	}
	p, _ := s.Section("params")
	xs, err := NewReader(p).Float64s()
	if err != nil || len(xs) != 5 || xs[3] != math.Pi {
		t.Fatalf("v1 golden params = %v, %v", xs, err)
	}
}

// TestFloat32sRoundTrip: the float32 slab codec round-trips bit-exactly,
// including non-finite values, and rejects truncation and oversized counts
// before allocating.
func TestFloat32sRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float32, rng.Intn(64))
		for i := range xs {
			switch rng.Intn(10) {
			case 0:
				xs[i] = float32(math.Inf(1))
			case 1:
				xs[i] = float32(math.NaN())
			default:
				xs[i] = float32(rng.NormFloat64())
			}
		}
		var b Buffer
		b.Float32s(xs)
		r := NewReader(b.Bytes())
		got, err := r.Float32s()
		if err != nil || len(got) != len(xs) {
			t.Fatalf("Float32s len = %d, %v; want %d", len(got), err, len(xs))
		}
		for i := range xs {
			if math.Float32bits(got[i]) != math.Float32bits(xs[i]) {
				t.Fatalf("Float32s[%d] = %x, want %x (not bit-exact)", i, got[i], xs[i])
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
		for i := 0; i < len(b.Bytes()); i++ {
			if vals, err := NewReader(b.Bytes()[:i]).Float32s(); err == nil && len(vals) == len(xs) && len(xs) > 0 {
				t.Fatalf("truncation at %d read the full slab", i)
			}
		}
	}
	var huge Buffer
	huge.Uvarint(1 << 50)
	if _, err := NewReader(huge.Bytes()).Float32s(); err == nil {
		t.Fatal("oversized float32 count accepted")
	}
}

// TestBufferReaderRoundTrip: the primitive codec round-trips randomized
// values bit-exactly, including non-finite floats.
func TestBufferReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var b Buffer
		v := rng.Uint64()
		s := fmt.Sprintf("str-%d-%c", trial, rune('a'+trial%26))
		ss := make([]string, rng.Intn(5))
		for i := range ss {
			ss[i] = fmt.Sprintf("tok%d", rng.Intn(1000))
		}
		xs := make([]float64, rng.Intn(64))
		for i := range xs {
			switch rng.Intn(10) {
			case 0:
				xs[i] = math.Inf(1)
			case 1:
				xs[i] = math.NaN()
			default:
				xs[i] = rng.NormFloat64()
			}
		}
		b.Uvarint(v)
		b.String(s)
		b.Strings(ss)
		b.Float64s(xs)

		r := NewReader(b.Bytes())
		gv, err := r.Uvarint()
		if err != nil || gv != v {
			t.Fatalf("Uvarint = %d, %v; want %d", gv, err, v)
		}
		gs, err := r.String()
		if err != nil || gs != s {
			t.Fatalf("String = %q, %v", gs, err)
		}
		gss, err := r.Strings()
		if err != nil || !reflect.DeepEqual(gss, ss) && len(ss) > 0 {
			t.Fatalf("Strings = %v, %v; want %v", gss, err, ss)
		}
		gxs, err := r.Float64s()
		if err != nil || len(gxs) != len(xs) {
			t.Fatalf("Float64s len = %d, %v", len(gxs), err)
		}
		for i := range xs {
			if math.Float64bits(gxs[i]) != math.Float64bits(xs[i]) {
				t.Fatalf("Float64s[%d] = %x, want %x (not bit-exact)", i, gxs[i], xs[i])
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	}
}

// TestReaderRejectsTruncation: every prefix of a valid payload fails
// cleanly somewhere in the read sequence, with bounded allocations.
func TestReaderRejectsTruncation(t *testing.T) {
	var b Buffer
	b.Uvarint(300)
	b.String("metadata string")
	b.Strings([]string{"a", "bb", "ccc"})
	b.Float64s([]float64{1.5, -2.25, math.Pi})
	full := b.Bytes()
	for i := 0; i < len(full); i++ {
		r := NewReader(full[:i])
		var err error
		if _, e := r.Uvarint(); e != nil {
			continue
		}
		if _, err = r.String(); err != nil {
			continue
		}
		if _, err = r.Strings(); err != nil {
			continue
		}
		if _, err = r.Float64s(); err == nil {
			t.Fatalf("truncation at %d read cleanly", i)
		}
	}

	// A count far beyond the payload must error before allocating.
	var huge Buffer
	huge.Uvarint(1 << 50)
	if _, err := NewReader(huge.Bytes()).Float64s(); err == nil {
		t.Fatal("oversized float64 count accepted")
	}
	if _, err := NewReader(huge.Bytes()).Strings(); err == nil {
		t.Fatal("oversized string count accepted")
	}
}

// TestGoldenSnapshot pins the on-disk byte format: a fixed container must
// decode identically forever. Regenerate with -update after deliberate
// format changes (which must also bump Version).
func TestGoldenSnapshot(t *testing.T) {
	golden := filepath.Join("testdata", "golden.snap")
	b := NewBuilder()
	b.Add("meta", []byte("golden metadata v1"))
	var params Buffer
	params.Float64s([]float64{0, 1.5, -2.25, math.Pi, math.Inf(-1)})
	b.Add("params", params.Bytes())

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, b.Bytes()) {
		t.Fatal("golden snapshot bytes drifted from the writer; format change requires a Version bump and -update")
	}
	if !SniffMagic(data) {
		t.Fatal("SniffMagic rejected the golden file")
	}
	s, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := s.Section("meta")
	if string(meta) != "golden metadata v1" {
		t.Fatalf("golden meta = %q", meta)
	}
	p, _ := s.Section("params")
	xs, err := NewReader(p).Float64s()
	if err != nil || len(xs) != 5 || xs[3] != math.Pi {
		t.Fatalf("golden params = %v, %v", xs, err)
	}
}
