package snapshot

import (
	"bytes"
	"testing"
)

// FuzzDecode: the container decoder must never panic or allocate beyond
// the input size, whatever bytes it is handed; anything it does accept
// must round-trip through the Builder byte-identically.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("WBSNAPxxxxxxxx"))
	b := NewBuilder()
	b.Add("meta", []byte("seed metadata"))
	var params Buffer
	params.Float64s([]float64{1, 2, 3.5})
	b.Add("params", params.Bytes())
	good := b.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input: rebuilding from the decoded sections must
		// reproduce the exact bytes (the format has a single encoding).
		rb := NewBuilder()
		for _, name := range s.names {
			payload, _ := s.Section(name)
			if err := rb.Add(name, payload); err != nil {
				t.Fatalf("decoded section %q rejected by builder: %v", name, err)
			}
		}
		if !bytes.Equal(rb.Bytes(), data) {
			t.Fatal("accepted container does not re-encode byte-identically")
		}
	})
}

// FuzzReader: the primitive decoders must survive arbitrary payloads in
// any read order without panicking.
func FuzzReader(f *testing.F) {
	var b Buffer
	b.Uvarint(7)
	b.String("hello")
	b.Strings([]string{"a", "b"})
	b.Float64s([]float64{1.5})
	f.Add(b.Bytes(), uint8(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, uint8(3))
	f.Add([]byte{}, uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, order uint8) {
		r := NewReader(data)
		for i := 0; i < 8 && r.Remaining() > 0; i++ {
			switch (int(order) + i) % 4 {
			case 0:
				r.Uvarint()
			case 1:
				r.String()
			case 2:
				r.Strings()
			default:
				r.Float64s()
			}
		}
	})
}
