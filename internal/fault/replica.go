package fault

import (
	"time"

	"webbrief/internal/wb"
)

// PipelineReplica is the serve-side replica contract, restated structurally
// so this package needs no import of internal/serve (whose chaos tests
// import this package). serve.Replica and *Replica here are interchangeable.
type PipelineReplica interface {
	Parse(html string) (*wb.Instance, error)
	Encode(inst *wb.Instance) *wb.Brief
	Decode(inst *wb.Instance, b *wb.Brief)
}

// Replica wraps a serving replica with the faults a Schedule draws, one
// draw per request (at Parse time, since Pool checkout is exclusive a
// request's three stages never interleave with another's on the same
// replica). The kinds map onto replica pathologies:
//
//	Error:   Encode panics — the "briefing engine hit a bug" failure the
//	         serve layer must recover, eject and retry around;
//	Timeout: Encode wedges for TimeoutHang before completing — the stall
//	         the watchdog must detect and eject, with the replica coming
//	         back probe-able once the wedge resolves;
//	Slow:    Encode is late by the drawn delay but correct;
//	Garbage: Decode panics after Encode succeeded — state corrupted
//	         mid-pipeline.
type Replica struct {
	Inner PipelineReplica
	Sched *Schedule
	// Sleep is the blocking seam (nil = time.Sleep).
	Sleep func(time.Duration)

	pending Fault
}

// NewReplica wraps inner with faults drawn from sched.
func NewReplica(inner PipelineReplica, sched *Schedule) *Replica {
	return &Replica{Inner: inner, Sched: sched}
}

func (r *Replica) sleep(d time.Duration) {
	if r.Sleep != nil {
		r.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Parse draws this request's fault and parses cleanly — parse errors mean
// "bad input" (422) to the serving layer, never "bad replica", so faults
// fire in the model stages instead.
func (r *Replica) Parse(html string) (*wb.Instance, error) {
	r.pending = r.Sched.Next()
	return r.Inner.Parse(html)
}

// Encode applies Error (panic), Timeout (wedge) and Slow (delay) faults.
func (r *Replica) Encode(inst *wb.Instance) *wb.Brief {
	switch r.pending.Kind {
	case Error:
		panic("fault: injected replica panic in Encode")
	case Timeout:
		r.sleep(r.Sched.cfg.TimeoutHang)
	case Slow:
		r.sleep(r.pending.Delay)
	}
	return r.Inner.Encode(inst)
}

// Decode applies the Garbage fault (panic after a clean Encode).
func (r *Replica) Decode(inst *wb.Instance, b *wb.Brief) {
	if r.pending.Kind == Garbage {
		r.pending = Fault{}
		panic("fault: injected replica panic in Decode")
	}
	r.pending = Fault{}
	r.Inner.Decode(inst, b)
}
