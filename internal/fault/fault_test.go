package fault

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"webbrief/internal/wb"
)

var update = flag.Bool("update", false, "rewrite testdata/schedules.golden from the current generator")

// goldenSchedules renders the exact fault sequence for seeds 1..5 under the
// default 30% chaos profile — the cross-platform reproducibility contract.
func goldenSchedules() string {
	var b strings.Builder
	for seed := int64(1); seed <= 5; seed++ {
		s := NewSchedule(DefaultConfig(seed))
		faults := make([]string, 32)
		for i := range faults {
			faults[i] = s.Next().String()
		}
		fmt.Fprintf(&b, "seed=%d: %s\n", seed, strings.Join(faults, " "))
	}
	return b.String()
}

// TestChaosScheduleGolden pins the exact fault sequences for seeds 1..5 to
// a checked-in golden file. If this test fails, a change altered the draw
// order or the PRNG mapping — which silently breaks the replayability of
// every recorded chaos run. Regenerate deliberately with -update.
func TestChaosScheduleGolden(t *testing.T) {
	got := goldenSchedules()
	const path = "testdata/schedules.golden"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("fault schedules diverge from golden file (draw order or PRNG mapping changed):\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestChaosScheduleReplay: equal seeds replay byte-equal sequences,
// different seeds diverge.
func TestChaosScheduleReplay(t *testing.T) {
	a, b := NewSchedule(DefaultConfig(7)), NewSchedule(DefaultConfig(7))
	c := NewSchedule(DefaultConfig(8))
	var diverged bool
	for i := 0; i < 256; i++ {
		fa, fb, fc := a.Next(), b.Next(), c.Next()
		if fa.String() != fb.String() {
			t.Fatalf("draw %d: same seed diverged: %s vs %s", i, fa, fb)
		}
		if fa.String() != fc.String() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical 256-draw schedules")
	}
	if a.Draws() != 256 {
		t.Fatalf("draws=%d, want 256", a.Draws())
	}
}

// TestScheduleRate: the injected-fault fraction tracks Config.Rate, and
// Rate 0 / Rate 1 are exact.
func TestScheduleRate(t *testing.T) {
	s := NewSchedule(DefaultConfig(3))
	for i := 0; i < 10000; i++ {
		s.Next()
	}
	frac := float64(s.Injected()) / float64(s.Draws())
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("injected fraction %.3f, want ~0.30", frac)
	}

	off := NewSchedule(Config{Seed: 1, Rate: 0})
	on := NewSchedule(Config{Seed: 1, Rate: 1})
	for i := 0; i < 100; i++ {
		if f := off.Next(); f.Kind != None {
			t.Fatalf("rate 0 injected %s", f)
		}
		if f := on.Next(); f.Kind == None {
			t.Fatal("rate 1 passed a call through clean")
		}
	}
}

// TestGarbageBodiesDetectable: every garbage body carries a NUL byte, the
// marker the crawler's body validation rejects (and real HTML never has).
func TestGarbageBodiesDetectable(t *testing.T) {
	s := NewSchedule(Config{Seed: 9, Rate: 1, GarbageWeight: 1})
	for i := 0; i < 50; i++ {
		f := s.Next()
		if f.Kind != Garbage {
			t.Fatalf("draw %d: kind %s with only GarbageWeight set", i, f.Kind)
		}
		if len(f.Body) == 0 || !strings.ContainsRune(string(f.Body), 0) {
			t.Fatalf("draw %d: garbage body %q lacks the NUL marker", i, f.Body)
		}
	}
}

// sleepRecorder is a virtual clock: it records requested sleeps and returns
// instantly, so timeout faults resolve without wall-clock waits.
type sleepRecorder struct {
	slept []time.Duration
}

func (s *sleepRecorder) Sleep(d time.Duration) { s.slept = append(s.slept, d) }

// mapFetcher is a minimal PlainFetcher for wrapper tests.
type mapFetcher map[string]string

func (m mapFetcher) Fetch(url string) (string, error) {
	h, ok := m[url]
	if !ok {
		return "", fmt.Errorf("404 %s", url)
	}
	return h, nil
}

// TestFetcherFaultKinds drives one fetch through each kind via single-kind
// schedules and checks the observable contract of each.
func TestFetcherFaultKinds(t *testing.T) {
	inner := mapFetcher{"/p": "<p>hello</p>"}

	// Error: immediate *InjectedError, inner never consulted.
	f := NewFetcher(inner, NewSchedule(Config{Seed: 1, Rate: 1, ErrorWeight: 1}))
	if _, err := f.Fetch("/p"); err == nil {
		t.Fatal("error fault must fail the fetch")
	} else {
		var ie *InjectedError
		if !errors.As(err, &ie) || ie.Kind != Error {
			t.Fatalf("error fault returned %v, want *InjectedError{Error}", err)
		}
	}

	// Timeout without a deadline: blocks TimeoutHang, then fails.
	rec := &sleepRecorder{}
	f = NewFetcher(inner, NewSchedule(Config{Seed: 1, Rate: 1, TimeoutWeight: 1, TimeoutHang: 250 * time.Millisecond}))
	f.Sleep = rec.Sleep
	if _, err := f.Fetch("/p"); err == nil {
		t.Fatal("timeout fault must fail an undeadlined fetch")
	}
	if len(rec.slept) != 1 || rec.slept[0] != 250*time.Millisecond {
		t.Fatalf("timeout hang slept %v, want [250ms]", rec.slept)
	}

	// Timeout with a deadline: blocks just past it, DeadlineExceeded.
	rec = &sleepRecorder{}
	f.Sleep = rec.Sleep
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if _, err := f.FetchContext(ctx, "/p"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined timeout fault returned %v, want DeadlineExceeded", err)
	}
	if len(rec.slept) != 1 || rec.slept[0] < 59*time.Minute {
		t.Fatalf("deadlined timeout slept %v, want ~1h", rec.slept)
	}

	// Slow under the deadline: delayed, then the real page.
	rec = &sleepRecorder{}
	f = NewFetcher(inner, NewSchedule(Config{Seed: 1, Rate: 1, SlowWeight: 1, SlowDelay: 2 * time.Millisecond}))
	f.Sleep = rec.Sleep
	html, err := f.FetchContext(ctx, "/p")
	if err != nil || html != "<p>hello</p>" {
		t.Fatalf("slow fault: %q, %v", html, err)
	}
	if len(rec.slept) != 1 || rec.slept[0] < 2*time.Millisecond || rec.slept[0] >= 4*time.Millisecond {
		t.Fatalf("slow delay %v, want [2ms,4ms)", rec.slept)
	}

	// Slow past the deadline degenerates to a timeout.
	f = NewFetcher(inner, NewSchedule(Config{Seed: 1, Rate: 1, SlowWeight: 1, SlowDelay: time.Hour}))
	f.Sleep = (&sleepRecorder{}).Sleep
	shortCtx, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if _, err := f.FetchContext(shortCtx, "/p"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-deadline slow fault returned %v, want DeadlineExceeded", err)
	}

	// Garbage: "success" with the schedule's bytes, not the page.
	f = NewFetcher(inner, NewSchedule(Config{Seed: 1, Rate: 1, GarbageWeight: 1}))
	html, err = f.Fetch("/p")
	if err != nil {
		t.Fatal(err)
	}
	if html == "<p>hello</p>" || !strings.ContainsRune(html, 0) {
		t.Fatalf("garbage fault returned %q, want NUL-marked garbage", html)
	}

	// Clean draw: pass-through.
	f = NewFetcher(inner, NewSchedule(Config{Seed: 1, Rate: 0}))
	if html, err := f.Fetch("/p"); err != nil || html != "<p>hello</p>" {
		t.Fatalf("clean fetch: %q, %v", html, err)
	}
	if _, err := f.Fetch("/missing"); err == nil {
		t.Fatal("organic 404 must pass through")
	}
}

// nopReplica is a minimal PipelineReplica for wrapper tests.
type nopReplica struct{ encodes, decodes int }

func (r *nopReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *nopReplica) Encode(inst *wb.Instance) *wb.Brief      { r.encodes++; return &wb.Brief{} }
func (r *nopReplica) Decode(inst *wb.Instance, b *wb.Brief)   { r.decodes++ }

// runRequest drives one Parse/Encode/Decode through rep, reporting a
// recovered panic instead of crashing the test.
func runRequest(rep PipelineReplica) (panicked any) {
	defer func() { panicked = recover() }()
	inst, err := rep.Parse("<p>x</p>")
	if err != nil {
		return fmt.Sprintf("parse: %v", err)
	}
	rep.Decode(inst, rep.Encode(inst))
	return nil
}

// TestReplicaFaultKinds maps each kind onto its replica pathology.
func TestReplicaFaultKinds(t *testing.T) {
	// Error: Encode panics before the inner replica runs.
	inner := &nopReplica{}
	rep := NewReplica(inner, NewSchedule(Config{Seed: 1, Rate: 1, ErrorWeight: 1}))
	if p := runRequest(rep); p == nil || inner.encodes != 0 {
		t.Fatalf("error fault: panic=%v encodes=%d, want panic before Encode", p, inner.encodes)
	}

	// Garbage: Encode succeeds, Decode panics.
	inner = &nopReplica{}
	rep = NewReplica(inner, NewSchedule(Config{Seed: 1, Rate: 1, GarbageWeight: 1}))
	if p := runRequest(rep); p == nil || inner.encodes != 1 || inner.decodes != 0 {
		t.Fatalf("garbage fault: panic=%v encodes=%d decodes=%d, want panic between stages",
			p, inner.encodes, inner.decodes)
	}

	// Timeout: wedge for TimeoutHang, then complete normally.
	inner = &nopReplica{}
	rec := &sleepRecorder{}
	rep = NewReplica(inner, NewSchedule(Config{Seed: 1, Rate: 1, TimeoutWeight: 1, TimeoutHang: 100 * time.Millisecond}))
	rep.Sleep = rec.Sleep
	if p := runRequest(rep); p != nil || inner.decodes != 1 {
		t.Fatalf("timeout fault: panic=%v decodes=%d, want wedge then completion", p, inner.decodes)
	}
	if len(rec.slept) != 1 || rec.slept[0] != 100*time.Millisecond {
		t.Fatalf("wedge slept %v, want [100ms]", rec.slept)
	}

	// Clean draws pass through, and a fault does not leak into the next
	// request on the same replica.
	inner = &nopReplica{}
	rep = NewReplica(inner, NewSchedule(Config{Seed: 1, Rate: 0}))
	for i := 0; i < 3; i++ {
		if p := runRequest(rep); p != nil {
			t.Fatalf("clean request %d panicked: %v", i, p)
		}
	}
	if inner.encodes != 3 || inner.decodes != 3 {
		t.Fatalf("clean requests reached inner %d/%d times, want 3/3", inner.encodes, inner.decodes)
	}
}
