// Package fault is a deterministic fault-injection layer for chaos-testing
// the crawling and serving ends of the pipeline. A Schedule draws an exact,
// replayable sequence of faults from a seeded *rand.Rand — error, timeout,
// slow-response and garbage-body — and the Fetcher and Replica wrappers
// apply that sequence to any crawler-style fetcher or serve-style replica.
//
// Determinism is the whole point: the same Config.Seed produces the same
// fault at the same draw index on every platform (math/rand's generator is
// pure Go), so a chaos run that found a bug replays byte-identically, and
// golden-file tests can pin entire schedules. No global randomness is ever
// consulted; the seedrand lint (cmd/wbcheck) enforces that contract.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Kind classifies one injected fault.
type Kind int

// The four fault kinds of the chaos layer, plus None for clean calls.
const (
	None    Kind = iota // call passes through untouched
	Error               // call fails immediately with an injected error
	Timeout             // call blocks past any deadline before failing
	Slow                // call is delayed, then passes through
	Garbage             // call succeeds but the body is seeded garbage bytes
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Timeout:
		return "timeout"
	case Slow:
		return "slow"
	case Garbage:
		return "garbage"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one drawn fault. The zero value is the clean call.
type Fault struct {
	Kind  Kind
	Delay time.Duration // Slow: injected latency before the call proceeds
	Body  []byte        // Garbage: the replacement response body
}

// String renders the fault compactly and deterministically — the golden
// schedule files are built from these strings, so the format must stay
// platform-independent (integer microseconds, FNV-1a body digest).
func (f Fault) String() string {
	switch f.Kind {
	case Slow:
		return fmt.Sprintf("slow(%dus)", f.Delay.Microseconds())
	case Garbage:
		h := fnv.New32a()
		h.Write(f.Body)
		return fmt.Sprintf("garbage(len=%d,fnv=%08x)", len(f.Body), h.Sum32())
	default:
		return f.Kind.String()
	}
}

// Config shapes a Schedule. Rate is the probability that any one call is
// faulted; the four weights apportion faulted calls among the kinds
// (a zero-total weight set falls back to equal weights).
type Config struct {
	Seed int64   // PRNG seed; equal seeds replay equal schedules
	Rate float64 // probability a call draws a fault (0..1)

	ErrorWeight   float64
	TimeoutWeight float64
	SlowWeight    float64
	GarbageWeight float64

	// SlowDelay is the base latency of a Slow fault; each draw lands
	// uniformly in [SlowDelay, 2*SlowDelay). Keep it well under any caller
	// deadline so Slow means "late but alive".
	SlowDelay time.Duration
	// TimeoutHang is how long a Timeout fault blocks when the caller gave
	// no deadline. Keep it well over any caller deadline.
	TimeoutHang time.Duration
	// GarbageMax caps the length of a Garbage body (draws are 1..GarbageMax).
	GarbageMax int
}

// DefaultConfig is the 30%-fault chaos profile used across the tests and
// EXPERIMENTS.md: all four kinds equally likely, 2–4ms slow responses,
// 250ms hangs.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed: seed, Rate: 0.3,
		ErrorWeight: 1, TimeoutWeight: 1, SlowWeight: 1, GarbageWeight: 1,
		SlowDelay: 2 * time.Millisecond, TimeoutHang: 250 * time.Millisecond,
		GarbageMax: 64,
	}
}

// withDefaults resolves zero values so a sparse literal Config behaves.
func (c Config) withDefaults() Config {
	if c.ErrorWeight == 0 && c.TimeoutWeight == 0 && c.SlowWeight == 0 && c.GarbageWeight == 0 {
		c.ErrorWeight, c.TimeoutWeight, c.SlowWeight, c.GarbageWeight = 1, 1, 1, 1
	}
	if c.SlowDelay == 0 {
		c.SlowDelay = 2 * time.Millisecond
	}
	if c.TimeoutHang == 0 {
		c.TimeoutHang = 250 * time.Millisecond
	}
	if c.GarbageMax <= 0 {
		c.GarbageMax = 64
	}
	return c
}

// Schedule draws the deterministic fault sequence. It is safe for
// concurrent use (serve replicas share one), but note that concurrent
// callers race for draw indices — single-threaded users (the crawler)
// get a fully reproducible call→fault mapping, concurrent users get a
// reproducible multiset of faults.
type Schedule struct {
	mu       sync.Mutex
	cfg      Config
	rng      *rand.Rand
	draws    int64
	injected int64
}

// NewSchedule builds a schedule from cfg; cfg.Seed fully determines the
// sequence.
func NewSchedule(cfg Config) *Schedule {
	cfg = cfg.withDefaults()
	return &Schedule{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next draws the fault for the next call. Draw order is fixed — one
// Float64 for the fault/no-fault decision, one for the kind, then the
// kind's own draws — so schedules replay exactly.
func (s *Schedule) Next() Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draws++
	if s.rng.Float64() >= s.cfg.Rate {
		return Fault{}
	}
	s.injected++
	c := &s.cfg
	total := c.ErrorWeight + c.TimeoutWeight + c.SlowWeight + c.GarbageWeight
	w := s.rng.Float64() * total
	switch {
	case w < c.ErrorWeight:
		return Fault{Kind: Error}
	case w < c.ErrorWeight+c.TimeoutWeight:
		return Fault{Kind: Timeout}
	case w < c.ErrorWeight+c.TimeoutWeight+c.SlowWeight:
		frac := s.rng.Float64()
		return Fault{Kind: Slow, Delay: c.SlowDelay + time.Duration(frac*float64(c.SlowDelay))}
	default:
		n := 1 + s.rng.Intn(c.GarbageMax)
		body := make([]byte, n)
		s.rng.Read(body)
		// Guarantee the body is detectably garbage: a NUL byte never
		// appears in real HTML and trips the crawler's body validation.
		body[0] = 0x00
		return Fault{Kind: Garbage, Body: body}
	}
}

// Draws returns how many calls have consulted the schedule.
func (s *Schedule) Draws() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draws
}

// Injected returns how many of those draws carried a fault.
func (s *Schedule) Injected() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}
