package fault

import (
	"context"
	"fmt"
	"time"
)

// PlainFetcher is the crawler-side fetch contract, restated structurally so
// this package needs no import of internal/crawler (and the crawler's chaos
// tests can import this package without a cycle). crawler.MapFetcher and
// any crawler.Fetcher satisfy it.
type PlainFetcher interface {
	Fetch(url string) (string, error)
}

// InjectedError is the error a faulted fetch returns; callers can
// errors.As it to tell injected chaos from organic failures.
type InjectedError struct {
	Kind Kind
	URL  string
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s for %s", e.Kind, e.URL)
}

// Fetcher wraps any PlainFetcher with the faults a Schedule draws. It
// implements both the plain Fetch contract and the deadline-aware
// FetchContext contract the hardened crawler prefers:
//
//	Error:   the fetch fails immediately with an *InjectedError;
//	Timeout: the fetch blocks past the caller's deadline (or TimeoutHang
//	         when there is none), then fails;
//	Slow:    the fetch is delayed, then proceeds — unless the delay would
//	         cross the deadline, in which case it degenerates to Timeout;
//	Garbage: the fetch "succeeds" with the schedule's garbage bytes
//	         instead of the page.
type Fetcher struct {
	Inner PlainFetcher
	Sched *Schedule
	// Sleep is the blocking seam (nil = time.Sleep); chaos tests inject a
	// virtual clock here so timeout faults resolve instantly.
	Sleep func(time.Duration)
}

// NewFetcher wraps inner with faults drawn from sched.
func NewFetcher(inner PlainFetcher, sched *Schedule) *Fetcher {
	return &Fetcher{Inner: inner, Sched: sched}
}

func (f *Fetcher) sleep(d time.Duration) {
	if f.Sleep != nil {
		f.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Fetch implements the plain crawler.Fetcher contract (no deadline:
// Timeout faults block for TimeoutHang).
func (f *Fetcher) Fetch(url string) (string, error) {
	return f.FetchContext(context.Background(), url)
}

// FetchContext applies the next scheduled fault, honouring ctx's deadline:
// a fault that outlasts the deadline yields context.DeadlineExceeded after
// blocking (under a virtual clock, instantly) until the deadline.
func (f *Fetcher) FetchContext(ctx context.Context, url string) (string, error) {
	ft := f.Sched.Next()
	switch ft.Kind {
	case Error:
		return "", &InjectedError{Kind: Error, URL: url}
	case Timeout:
		if dl, ok := ctx.Deadline(); ok {
			f.sleep(time.Until(dl) + time.Millisecond)
			return "", context.DeadlineExceeded
		}
		f.sleep(f.Sched.cfg.TimeoutHang)
		return "", &InjectedError{Kind: Timeout, URL: url}
	case Slow:
		if dl, ok := ctx.Deadline(); ok && ft.Delay >= time.Until(dl) {
			f.sleep(time.Until(dl) + time.Millisecond)
			return "", context.DeadlineExceeded
		}
		f.sleep(ft.Delay)
	case Garbage:
		return string(ft.Body), nil
	}
	return f.Inner.Fetch(url)
}
