// Package briefcache is the content-addressed briefing cache behind the
// serving tier's hot path. Real briefing traffic is dominated by
// re-requests of the same popular pages (the WebBrain product shape:
// briefings grounded on a large crawled corpus), so the cheapest "student"
// of all is a cache hit — a briefing the model already computed.
//
// The cache is addressed two ways:
//
//   - content key: SHA-256 of the page's rendered visible text, so two
//     HTML bodies that differ only in markup (attribute order, whitespace,
//     tracking params in URLs) share one cached briefing;
//   - raw alias: SHA-256 of the raw request bytes, recorded alongside each
//     content entry so a byte-identical re-request skips the DOM parse
//     entirely — the microsecond repeat-hit path.
//
// Storage is a sharded LRU (per-shard mutex + intrusive list) with
// per-entry TTLs; admission and TTL are decided per page domain by a
// Policy over a domain-suffix Matcher. Concurrent misses on one cold
// content key coalesce through a Flight so a thundering herd computes the
// briefing exactly once.
package briefcache

import (
	"sort"
	"strings"
)

// Matcher reports whether a domain is covered by a set of domain suffixes.
// A rule "example.com" covers "example.com" itself and every subdomain
// ("a.example.com", "b.a.example.com"); it never covers "notexample.com".
// Inputs are expected in NormalizeDomain form.
type Matcher interface {
	Match(domain string) bool
	// Len is the number of rules the matcher was built from.
	Len() int
}

// NormalizeDomain canonicalises a domain for matching: surrounding
// whitespace and the root-label trailing dot are stripped, and the name is
// case-folded. Unicode labels are folded too — the synthetic corpus and
// tests use raw IDN labels rather than punycode, and ToLower is the right
// fold for both.
func NormalizeDomain(d string) string {
	d = strings.TrimSpace(d)
	d = strings.TrimSuffix(d, ".")
	// Fast path: already lower-case ASCII (the common case) — avoid the
	// ToLower allocation on every cache lookup.
	lower := true
	for i := 0; i < len(d); i++ {
		c := d[i]
		if c >= 'A' && c <= 'Z' || c >= 0x80 {
			lower = false
			break
		}
	}
	if lower {
		return d
	}
	return strings.ToLower(d)
}

// Size thresholds for NewSuffixMatcher's variant selection, justified by
// BenchmarkSuffixMatcher: linear scan wins while the whole rule set fits in
// a cache line or two (no per-label candidate loop, no hashing), binary
// search wins in the mid range (log n string compares beat per-candidate
// map hashing), and the map amortises best once rule sets grow past a few
// dozen entries.
const (
	linearMaxRules = 8
	binaryMaxRules = 64
)

// NewSuffixMatcher builds the matcher variant suited to the rule set size:
// a linear scan for tiny sets, sorted binary search for mid-size sets, a
// hash map for large ones. Rules are normalised and deduplicated; empty
// rules are dropped.
func NewSuffixMatcher(rules []string) Matcher {
	norm := make([]string, 0, len(rules))
	seen := make(map[string]bool, len(rules))
	for _, r := range rules {
		r = NormalizeDomain(r)
		if r == "" || seen[r] {
			continue
		}
		seen[r] = true
		norm = append(norm, r)
	}
	sort.Strings(norm)
	switch {
	case len(norm) <= linearMaxRules:
		return newLinearMatcher(norm)
	case len(norm) <= binaryMaxRules:
		return binarySearchMatcher(norm)
	default:
		m := make(mapMatcher, len(norm))
		for _, r := range norm {
			m[r] = true
		}
		return m
	}
}

// linearMatcher scans every rule per query. Each rule is stored with its
// dot-prefixed form precomputed so Match allocates nothing.
type linearMatcher struct {
	rules  []string // exact forms
	dotted []string // "." + rule, for the subdomain suffix test
}

func newLinearMatcher(rules []string) *linearMatcher {
	m := &linearMatcher{rules: rules, dotted: make([]string, len(rules))}
	for i, r := range rules {
		m.dotted[i] = "." + r
	}
	return m
}

// Match implements Matcher.
func (m *linearMatcher) Match(d string) bool {
	for i, r := range m.rules {
		if d == r || strings.HasSuffix(d, m.dotted[i]) {
			return true
		}
	}
	return false
}

// Len implements Matcher.
func (m *linearMatcher) Len() int { return len(m.rules) }

// binarySearchMatcher holds the sorted rule set and binary-searches each
// dot-delimited suffix of the query: "a.b.example.com" probes itself, then
// "b.example.com", "example.com", "com".
type binarySearchMatcher []string

// Match implements Matcher.
func (m binarySearchMatcher) Match(d string) bool {
	for s := d; s != ""; {
		i := sort.SearchStrings(m, s)
		if i < len(m) && m[i] == s {
			return true
		}
		dot := strings.IndexByte(s, '.')
		if dot < 0 {
			return false
		}
		s = s[dot+1:]
	}
	return false
}

// Len implements Matcher.
func (m binarySearchMatcher) Len() int { return len(m) }

// mapMatcher probes each dot-delimited suffix of the query in a hash set.
type mapMatcher map[string]bool

// Match implements Matcher.
func (m mapMatcher) Match(d string) bool {
	for s := d; s != ""; {
		if m[s] {
			return true
		}
		dot := strings.IndexByte(s, '.')
		if dot < 0 {
			return false
		}
		s = s[dot+1:]
	}
	return false
}

// Len implements Matcher.
func (m mapMatcher) Len() int { return len(m) }
