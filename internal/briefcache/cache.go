package briefcache

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Key addresses a cache entry: a SHA-256 digest, either of the page's
// rendered visible text (content key) or of the raw request bytes (alias
// key).
type Key = [sha256.Size]byte

// KeyOf hashes bytes into a Key. It allocates nothing.
func KeyOf(b []byte) Key { return sha256.Sum256(b) }

// Config sizes a Cache. The zero value is usable: 4096 entries over 16
// shards, no expiry, admit-everything policy.
type Config struct {
	// Capacity bounds the total entry count (content entries and raw
	// aliases both count) across all shards (0 = 4096).
	Capacity int
	// Shards is the shard count, rounded up to a power of two (0 = 16).
	// More shards mean less lock contention on the lookup path.
	Shards int
	// DefaultTTL is the freshness lifetime for entries whose domain the
	// policy gives no explicit TTL (0 = entries never expire).
	DefaultTTL time.Duration
	// Policy is the per-domain admission/TTL policy (nil = admit all).
	Policy *Policy
}

// Cache is the sharded content-addressed briefing cache. All methods are
// safe for concurrent use; Lookup and LookupRaw are allocation-free.
type Cache struct {
	shards    []shard
	mask      uint64
	perShard  int
	ttl       time.Duration
	policy    *Policy
	evictions atomic.Int64
}

// entry is one cached briefing (body != nil) or one raw-bytes alias
// pointing at a content entry (body == nil). Entries of both kinds share
// the shard's LRU list and count against its capacity.
type entry struct {
	key        Key
	body       []byte
	target     Key   // alias: the content key this raw key resolves to
	expires    int64 // unix nanos; 0 = never
	prev, next *entry
}

// shard is one lock domain: a key-indexed map over an intrusive LRU list
// (head.next = most recent, head.prev = least recent) plus the in-flight
// computations for keys that hash here.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	head    entry // sentinel
	flights map[Key]*Flight
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if n > cfg.Capacity {
		// Never hand a shard zero capacity.
		for n > 1 && n > cfg.Capacity {
			n >>= 1
		}
	}
	c := &Cache{
		shards:   make([]shard, n),
		mask:     uint64(n - 1),
		perShard: (cfg.Capacity + n - 1) / n,
		ttl:      cfg.DefaultTTL,
		policy:   cfg.Policy,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.entries = make(map[Key]*entry, c.perShard)
		sh.flights = make(map[Key]*Flight)
		sh.head.next = &sh.head
		sh.head.prev = &sh.head
	}
	return c
}

// Policy returns the per-domain admission/TTL policy (possibly nil).
func (c *Cache) Policy() *Policy { return c.policy }

// Admit reports whether pages from domain may enter the cache.
func (c *Cache) Admit(domain string) bool { return c.policy.Admit(domain) }

// TTLFor resolves the freshness lifetime for a page domain: the policy's
// class TTL, else the policy default, else the cache default (0 = never
// expires).
func (c *Cache) TTLFor(domain string) time.Duration {
	if d := c.policy.TTL(domain); d > 0 {
		return d
	}
	return c.ttl
}

func (c *Cache) shardOf(k Key) *shard {
	return &c.shards[binary.LittleEndian.Uint64(k[:8])&c.mask]
}

// expiry converts a TTL into an entry deadline.
func expiry(ttl time.Duration) int64 {
	if ttl <= 0 {
		return 0
	}
	return time.Now().Add(ttl).UnixNano()
}

// fresh reports whether an entry is still live at now.
func fresh(e *entry, now int64) bool { return e.expires == 0 || now < e.expires }

// moveFront bumps e to the MRU position of its shard's list. Caller holds
// the shard lock.
func (sh *shard) moveFront(e *entry) {
	if sh.head.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.next = sh.head.next
	e.prev = &sh.head
	sh.head.next.prev = e
	sh.head.next = e
}

// remove unlinks e and drops it from the map. Caller holds the shard lock.
func (sh *shard) remove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	delete(sh.entries, e.key)
}

// insert adds e at the MRU position, evicting from the LRU tail past
// capacity. Caller holds the shard lock; returns evictions performed.
func (sh *shard) insert(e *entry, capacity int) int {
	if old, ok := sh.entries[e.key]; ok {
		sh.remove(old)
	}
	sh.entries[e.key] = e
	e.next = sh.head.next
	e.prev = &sh.head
	sh.head.next.prev = e
	sh.head.next = e
	evicted := 0
	for len(sh.entries) > capacity {
		sh.remove(sh.head.prev)
		evicted++
	}
	return evicted
}

// Lookup returns the cached briefing for a content key, bumping it to MRU.
// The returned slice is shared and must not be mutated. Allocation-free.
func (c *Cache) Lookup(content Key) ([]byte, bool) {
	now := time.Now().UnixNano()
	sh := c.shardOf(content)
	sh.mu.Lock()
	e, ok := sh.entries[content]
	if !ok || e.body == nil {
		sh.mu.Unlock()
		return nil, false
	}
	if !fresh(e, now) {
		sh.remove(e)
		sh.mu.Unlock()
		return nil, false
	}
	sh.moveFront(e)
	body := e.body
	sh.mu.Unlock()
	return body, true
}

// LookupRaw resolves a raw-bytes key through its alias to the cached
// briefing, bumping both to MRU. Allocation-free — this is the repeat-hit
// path that skips the DOM parse entirely.
func (c *Cache) LookupRaw(raw Key) ([]byte, bool) {
	now := time.Now().UnixNano()
	sh := c.shardOf(raw)
	sh.mu.Lock()
	e, ok := sh.entries[raw]
	if !ok || e.body != nil {
		// A content entry under this key would mean a SHA-256 collision
		// between raw bytes and visible text; treat as a miss.
		sh.mu.Unlock()
		return nil, false
	}
	if !fresh(e, now) {
		sh.remove(e)
		sh.mu.Unlock()
		return nil, false
	}
	sh.moveFront(e)
	target := e.target
	sh.mu.Unlock()
	return c.Lookup(target)
}

// Insert stores a briefing under its content key and records the raw-bytes
// alias, copying body (callers typically hand a pooled buffer). ttl <= 0
// means the entry never expires. The stored copy is returned so callers
// can hand the same stable bytes to coalesced waiters.
func (c *Cache) Insert(content, raw Key, body []byte, ttl time.Duration) []byte {
	stable := make([]byte, len(body))
	copy(stable, body)
	exp := expiry(ttl)

	sh := c.shardOf(content)
	sh.mu.Lock()
	ev := sh.insert(&entry{key: content, body: stable, expires: exp}, c.perShard)
	sh.mu.Unlock()
	if ev > 0 {
		c.evictions.Add(int64(ev))
	}
	c.Alias(raw, content)
	return stable
}

// Alias records raw → content so future byte-identical requests take the
// parse-free hit path. The alias inherits the content entry's expiry; an
// alias to a missing or expired entry is not recorded.
func (c *Cache) Alias(raw, content Key) {
	if raw == content {
		return
	}
	now := time.Now().UnixNano()
	csh := c.shardOf(content)
	csh.mu.Lock()
	e, ok := csh.entries[content]
	var exp int64
	if ok && e.body != nil && fresh(e, now) {
		exp = e.expires
	} else {
		ok = false
	}
	csh.mu.Unlock()
	if !ok {
		return
	}
	sh := c.shardOf(raw)
	sh.mu.Lock()
	ev := sh.insert(&entry{key: raw, target: content, expires: exp}, c.perShard)
	sh.mu.Unlock()
	if ev > 0 {
		c.evictions.Add(int64(ev))
	}
}

// Len is the live entry count (content entries + aliases), for /metrics.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Evictions is the lifetime count of capacity evictions, for /metrics.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }
