package briefcache

import (
	"strings"
	"testing"
	"time"
)

// TestParsePolicy: the file format round-trips into the expected
// admission and TTL decisions, first-matching-class-wins.
func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy(strings.NewReader(`
# test policy
deny tracker.example.com ads.example.net

ttl 30s news.example.com live.example.org
ttl 1h  news.example.com docs.example.com
default 5m
`))
	if err != nil {
		t.Fatal(err)
	}

	admit := []struct {
		domain string
		want   bool
	}{
		{"example.com", true},
		{"tracker.example.com", false},
		{"pix.tracker.example.com", false},
		{"ads.example.net", false},
		{"news.example.com", true},
		{"", true}, // unattributed requests are admitted
	}
	for _, tc := range admit {
		if got := p.Admit(tc.domain); got != tc.want {
			t.Errorf("Admit(%q) = %v, want %v", tc.domain, got, tc.want)
		}
	}

	ttl := []struct {
		domain string
		want   time.Duration
	}{
		{"news.example.com", 30 * time.Second}, // first class wins
		{"live.example.org", 30 * time.Second},
		{"docs.example.com", time.Hour},
		{"other.example.com", 5 * time.Minute}, // default
		{"", 5 * time.Minute},
	}
	for _, tc := range ttl {
		if got := p.TTL(tc.domain); got != tc.want {
			t.Errorf("TTL(%q) = %v, want %v", tc.domain, got, tc.want)
		}
	}
}

// TestParsePolicyErrors: malformed lines fail with the line number.
func TestParsePolicyErrors(t *testing.T) {
	bad := []string{
		"deny",
		"ttl 30s",
		"ttl notaduration example.com",
		"ttl -5s example.com",
		"default",
		"default 1h 2h",
		"default nope",
		"cache example.com",
	}
	for _, line := range bad {
		if _, err := ParsePolicy(strings.NewReader(line)); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", line)
		}
	}
}

// TestNilPolicy: the nil policy admits everything and defers TTL.
func TestNilPolicy(t *testing.T) {
	var p *Policy
	if !p.Admit("anything.example.com") {
		t.Error("nil policy must admit")
	}
	if p.TTL("anything.example.com") != 0 {
		t.Error("nil policy must defer TTL")
	}
}
