package briefcache

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// matcherRules is the shared rule set every variant is built from. It
// mixes plain registrable domains, deep subdomains, a bare TLD, a
// single-label intranet name, a unicode (IDN) domain and rules that need
// normalisation (case, trailing dot, whitespace).
var matcherRules = []string{
	"example.com",
	"news.example.org",
	"deep.sub.example.net",
	"dev", // bare TLD-style rule: covers everything under .dev
	"localhost",
	"bücher.de",        // unicode labels match verbatim after folding
	"MiXeD.CaSe.IO",    // folds to mixed.case.io
	"trailing.dot.fr.", // root-label dot stripped
	"  spaced.out.gr ", // surrounding whitespace stripped
}

// matcherCases is the shared truth table. Queries are fed through
// NormalizeDomain exactly as the policy layer does.
var matcherCases = []struct {
	domain string
	want   bool
}{
	// Exact matches and subdomain coverage.
	{"example.com", true},
	{"www.example.com", true},
	{"a.b.c.example.com", true},
	{"example.org", false}, // only news.example.org is a rule
	{"news.example.org", true},
	{"live.news.example.org", true},
	{"olds.example.org", false},
	{"deep.sub.example.net", true},
	{"x.deep.sub.example.net", true},
	{"sub.example.net", false}, // rule is deeper than the query
	{"example.net", false},

	// Suffixes must respect label boundaries.
	{"notexample.com", false},
	{"badexample.com", false},
	{"xexample.com", false},

	// Bare TLD rule covers the TLD itself and everything under it.
	{"dev", true},
	{"app.dev", true},
	{"a.b.dev", true},
	{"devx", false},
	{"dev.io", false},

	// Single-label intranet name: itself only, no lookalikes.
	{"localhost", true},
	{"db.localhost", true},
	{"localhost.example.net", false},

	// Unicode domains, with and without case folds.
	{"bücher.de", true},
	{"shop.bücher.de", true},
	{"BÜCHER.de", true}, // ToLower folds the umlaut
	{"bucher.de", false},

	// Case folding of ASCII rules and queries.
	{"mixed.case.io", true},
	{"MIXED.CASE.IO", true},
	{"api.MiXeD.case.IO", true},
	{"case.io", false},

	// Trailing dots and whitespace on the query side.
	{"trailing.dot.fr", true},
	{"trailing.dot.fr.", true},
	{"www.trailing.dot.fr.", true},
	{"dot.fr", false},
	{" spaced.out.gr", true},
	{"cdn.spaced.out.gr", true},

	// Degenerate queries.
	{"", false},
	{".", false},
	{"com", false}, // "com" is not a rule; example.com does not imply it
}

// buildVariants constructs all three matcher implementations over one rule
// set, bypassing NewSuffixMatcher's size selection so each variant is
// exercised at every size.
func buildVariants(rules []string) map[string]Matcher {
	norm := make([]string, 0, len(rules))
	seen := map[string]bool{}
	for _, r := range rules {
		r = NormalizeDomain(r)
		if r == "" || seen[r] {
			continue
		}
		seen[r] = true
		norm = append(norm, r)
	}
	sort.Strings(norm)
	mm := make(mapMatcher, len(norm))
	for _, r := range norm {
		mm[r] = true
	}
	return map[string]Matcher{
		"linear": newLinearMatcher(norm),
		"binary": binarySearchMatcher(norm),
		"map":    mm,
	}
}

// TestSuffixMatcherVariantsAgree runs the shared truth table through all
// three variants: same rules, same queries, same verdicts.
func TestSuffixMatcherVariantsAgree(t *testing.T) {
	for name, m := range buildVariants(matcherRules) {
		t.Run(name, func(t *testing.T) {
			for _, tc := range matcherCases {
				if got := m.Match(NormalizeDomain(tc.domain)); got != tc.want {
					t.Errorf("%s.Match(%q) = %v, want %v", name, tc.domain, got, tc.want)
				}
			}
		})
	}
}

// TestSuffixMatcherRandomEquivalence cross-checks the variants on seeded
// random rule sets and queries: whatever one says, all say.
func TestSuffixMatcherRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "bb", "ccc", "example", "news", "shop", "x", "bücher", "dev"}
	randomDomain := func(maxLabels int) string {
		n := 1 + rng.Intn(maxLabels)
		d := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				d += "."
			}
			d += labels[rng.Intn(len(labels))]
		}
		return d
	}
	for trial := 0; trial < 50; trial++ {
		rules := make([]string, 1+rng.Intn(20))
		for i := range rules {
			rules[i] = randomDomain(3)
		}
		variants := buildVariants(rules)
		for q := 0; q < 100; q++ {
			d := NormalizeDomain(randomDomain(4))
			got := map[string]bool{}
			for name, m := range variants {
				got[name] = m.Match(d)
			}
			if got["linear"] != got["binary"] || got["binary"] != got["map"] {
				t.Fatalf("trial %d: variants disagree on %q over %v: %v", trial, d, rules, got)
			}
		}
	}
}

// TestNewSuffixMatcherSelectsBySize pins the size-based variant selection
// the benchmarks justify: linear for tiny sets, binary search mid-range,
// map beyond.
func TestNewSuffixMatcherSelectsBySize(t *testing.T) {
	mkRules := func(n int) []string {
		rules := make([]string, n)
		for i := range rules {
			rules[i] = fmt.Sprintf("site%03d.example.com", i)
		}
		return rules
	}
	cases := []struct {
		n    int
		want string
	}{
		{1, "*briefcache.linearMatcher"},
		{linearMaxRules, "*briefcache.linearMatcher"},
		{linearMaxRules + 1, "briefcache.binarySearchMatcher"},
		{binaryMaxRules, "briefcache.binarySearchMatcher"},
		{binaryMaxRules + 1, "briefcache.mapMatcher"},
		{500, "briefcache.mapMatcher"},
	}
	for _, tc := range cases {
		m := NewSuffixMatcher(mkRules(tc.n))
		if got := fmt.Sprintf("%T", m); got != tc.want {
			t.Errorf("NewSuffixMatcher(%d rules) = %s, want %s", tc.n, got, tc.want)
		}
		if m.Len() != tc.n {
			t.Errorf("NewSuffixMatcher(%d rules).Len() = %d", tc.n, m.Len())
		}
	}

	// Dedup and normalisation happen before selection.
	m := NewSuffixMatcher([]string{"A.com", "a.com", "a.com.", " a.com ", ""})
	if m.Len() != 1 {
		t.Errorf("dedup: Len() = %d, want 1", m.Len())
	}
	if !m.Match("sub.a.com") {
		t.Error("deduped matcher should still match")
	}
}

// TestNormalizeDomain pins the canonical form lookups and rules share.
func TestNormalizeDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM", "example.com"},
		{"example.com.", "example.com"},
		{"  example.com \t", "example.com"},
		{"BÜCHER.DE", "bücher.de"},
		{"already.lower.dev", "already.lower.dev"},
		{".", ""},
		{"", ""},
	}
	for _, tc := range cases {
		if got := NormalizeDomain(tc.in); got != tc.want {
			t.Errorf("NormalizeDomain(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestNormalizeDomainFastPathAllocs: the already-canonical common case must
// not allocate — it runs on every cache lookup.
func TestNormalizeDomainFastPathAllocs(t *testing.T) {
	d := "news.example.com"
	if n := testing.AllocsPerRun(100, func() {
		if NormalizeDomain(d) != d {
			t.Fatal("normalization changed a canonical domain")
		}
	}); n != 0 {
		t.Errorf("NormalizeDomain fast path allocates %.1f/op, want 0", n)
	}
}
