package briefcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(s string) Key { return KeyOf([]byte(s)) }

// TestCacheInsertLookup: content lookups return what was inserted, raw
// lookups resolve through the alias, and the stored bytes are a stable
// copy decoupled from the caller's (possibly pooled) buffer.
func TestCacheInsertLookup(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 4})
	body := []byte("briefing body\n")
	stable := c.Insert(key("content"), key("raw"), body, 0)
	body[0] = 'X' // caller reuses its buffer

	got, ok := c.Lookup(key("content"))
	if !ok || string(got) != "briefing body\n" {
		t.Fatalf("Lookup = %q, %v; want stable copy", got, ok)
	}
	if string(stable) != "briefing body\n" {
		t.Fatalf("Insert returned unstable bytes %q", stable)
	}
	got, ok = c.LookupRaw(key("raw"))
	if !ok || string(got) != "briefing body\n" {
		t.Fatalf("LookupRaw = %q, %v", got, ok)
	}
	if _, ok := c.Lookup(key("missing")); ok {
		t.Fatal("Lookup(missing) hit")
	}
	if _, ok := c.LookupRaw(key("missing")); ok {
		t.Fatal("LookupRaw(missing) hit")
	}
	// A raw lookup with a content key (and vice versa) is a miss, not a
	// type confusion.
	if _, ok := c.LookupRaw(key("content")); ok {
		t.Fatal("LookupRaw(content key) hit")
	}
	if _, ok := c.Lookup(key("raw")); ok {
		t.Fatal("Lookup(alias key) hit")
	}
}

// TestCacheLRUEviction: a single-shard cache evicts strictly least
// recently used, and evictions are counted.
func TestCacheLRUEviction(t *testing.T) {
	c := New(Config{Capacity: 3, Shards: 1})
	for i := 0; i < 3; i++ {
		k := key(fmt.Sprintf("c%d", i))
		c.Insert(k, k, []byte{byte(i)}, 0) // raw == content: no alias entry
	}
	// Touch c0 so c1 is now the LRU.
	if _, ok := c.Lookup(key("c0")); !ok {
		t.Fatal("c0 missing before eviction")
	}
	c.Insert(key("c3"), key("c3"), []byte{3}, 0)
	if _, ok := c.Lookup(key("c1")); ok {
		t.Fatal("c1 should have been evicted as LRU")
	}
	for _, name := range []string{"c0", "c2", "c3"} {
		if _, ok := c.Lookup(key(name)); !ok {
			t.Fatalf("%s should have survived", name)
		}
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions() = %d, want 1", c.Evictions())
	}
	if c.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", c.Len())
	}
}

// TestCacheTTLExpiry: expired entries read as misses and are removed;
// aliases inherit the content entry's expiry.
func TestCacheTTLExpiry(t *testing.T) {
	c := New(Config{Capacity: 16, Shards: 1, DefaultTTL: time.Hour})
	c.Insert(key("content"), key("raw"), []byte("x"), 5*time.Millisecond)
	if _, ok := c.Lookup(key("content")); !ok {
		t.Fatal("fresh entry should hit")
	}
	time.Sleep(10 * time.Millisecond)
	if _, ok := c.Lookup(key("content")); ok {
		t.Fatal("expired content entry should miss")
	}
	if _, ok := c.LookupRaw(key("raw")); ok {
		t.Fatal("alias to expired entry should miss")
	}

	// ttl <= 0 on Insert means no expiry, regardless of DefaultTTL —
	// resolution happens in TTLFor, not Insert.
	c.Insert(key("forever"), key("rawforever"), []byte("y"), 0)
	time.Sleep(2 * time.Millisecond)
	if _, ok := c.Lookup(key("forever")); !ok {
		t.Fatal("no-expiry entry should hit")
	}
}

// TestCacheAliasDangling: an alias whose content entry was evicted
// resolves to a miss, and Alias refuses to point at missing entries.
func TestCacheAliasDangling(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 1})
	c.Insert(key("content"), key("raw"), []byte("x"), 0)
	// Evict the content entry by direct removal via capacity pressure.
	sh := c.shardOf(key("content"))
	sh.mu.Lock()
	sh.remove(sh.entries[key("content")])
	sh.mu.Unlock()
	if _, ok := c.LookupRaw(key("raw")); ok {
		t.Fatal("alias to evicted content should miss")
	}
	c.Alias(key("raw2"), key("nosuch"))
	if _, ok := c.LookupRaw(key("raw2")); ok {
		t.Fatal("alias to missing content should not be recorded")
	}
}

// TestCacheTTLFor: policy class TTL, then policy default, then cache
// default.
func TestCacheTTLFor(t *testing.T) {
	p := NewPolicy(
		[]string{"deny.example.com"},
		[]TTLRule{{TTL: time.Second, Domains: []string{"fast.example.com"}}},
		time.Minute,
	)
	c := New(Config{DefaultTTL: time.Hour, Policy: p})
	if got := c.TTLFor("live.fast.example.com"); got != time.Second {
		t.Errorf("class TTL = %v, want 1s", got)
	}
	if got := c.TTLFor("other.example.com"); got != time.Minute {
		t.Errorf("policy default TTL = %v, want 1m", got)
	}
	if !c.Admit("other.example.com") || c.Admit("sub.deny.example.com") {
		t.Error("admission policy not applied")
	}

	// No policy: cache default rules.
	c2 := New(Config{DefaultTTL: time.Hour})
	if got := c2.TTLFor("anything"); got != time.Hour {
		t.Errorf("cache default TTL = %v, want 1h", got)
	}
	if !c2.Admit("anything") {
		t.Error("nil policy must admit")
	}
}

// TestCacheLookupAllocFree gates the hot path: both lookup flavors must be
// allocation-free — the cache-hit acceptance criterion.
func TestCacheLookupAllocFree(t *testing.T) {
	c := New(Config{Capacity: 128})
	content, raw := key("content"), key("raw")
	c.Insert(content, raw, []byte("body"), time.Hour)
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.Lookup(content); !ok {
			t.Fatal("miss")
		}
	}); n != 0 {
		t.Errorf("Lookup allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.LookupRaw(raw); !ok {
			t.Fatal("miss")
		}
	}); n != 0 {
		t.Errorf("LookupRaw allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = KeyOf([]byte("body bytes to hash"))
	}); n != 0 {
		t.Errorf("KeyOf allocates %.1f/op, want 0", n)
	}
}

// TestFlightWinnerLoser: first Begin wins, losers wait and read the
// winner's value, and the flight is gone from the table after settling.
func TestFlightWinnerLoser(t *testing.T) {
	c := New(Config{})
	k := key("flight")
	f, winner := c.BeginFlight(k)
	if !winner {
		t.Fatal("first BeginFlight must win")
	}
	f2, winner2 := c.BeginFlight(k)
	if winner2 || f2 != f {
		t.Fatal("second BeginFlight must join the first flight")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		v, abandoned, err := f2.Wait(context.Background())
		if err != nil || abandoned || v.(string) != "result" {
			t.Errorf("Wait = %v, %v, %v", v, abandoned, err)
		}
	}()
	f.Complete("result")
	<-done

	// Settled flights leave the table: a new Begin wins a fresh flight.
	f3, winner3 := c.BeginFlight(k)
	if !winner3 || f3 == f {
		t.Fatal("settled flight must be removed from the table")
	}
	f3.Abandon()
}

// TestFlightAbandonIdempotent: Abandon after Complete is a no-op, so a
// deferred Abandon can back-stop the winner's exits; double Complete keeps
// the first value.
func TestFlightAbandonIdempotent(t *testing.T) {
	c := New(Config{})
	f, _ := c.BeginFlight(key("k"))
	f.Complete("first")
	f.Abandon()
	f.Complete("second")
	v, abandoned, err := f.Wait(context.Background())
	if err != nil || abandoned || v.(string) != "first" {
		t.Fatalf("Wait = %v, %v, %v; want first,false,nil", v, abandoned, err)
	}

	// Pure abandon wakes waiters with no value.
	f2, _ := c.BeginFlight(key("k2"))
	go f2.Abandon()
	v, abandoned, err = f2.Wait(context.Background())
	if err != nil || !abandoned || v != nil {
		t.Fatalf("abandoned Wait = %v, %v, %v", v, abandoned, err)
	}
}

// TestFlightWaitHonorsContext: a loser's own deadline wins over a stuck
// winner.
func TestFlightWaitHonorsContext(t *testing.T) {
	c := New(Config{})
	f, _ := c.BeginFlight(key("stuck"))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := f.Wait(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Wait err = %v, want DeadlineExceeded", err)
	}
	f.Abandon()
}

// TestFlightHerdComputesOnce is the cache-level thundering-herd property:
// N concurrent goroutines racing one cold key produce exactly one winner,
// and every loser reads the winner's bytes.
func TestFlightHerdComputesOnce(t *testing.T) {
	c := New(Config{Capacity: 64})
	const n = 32
	k := key("cold")
	var computed atomic.Int64
	var winners atomic.Int64
	results := make([]string, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for {
				if b, ok := c.Lookup(k); ok {
					results[i] = string(b)
					return
				}
				f, winner := c.BeginFlight(k)
				if winner {
					winners.Add(1)
					computed.Add(1) // the expensive compute, exactly once
					body := c.Insert(k, key("raw-cold"), []byte("computed"), 0)
					f.Complete(string(body))
					results[i] = string(body)
					return
				}
				v, abandoned, err := f.Wait(context.Background())
				if err != nil {
					t.Errorf("waiter %d: %v", i, err)
					return
				}
				if abandoned {
					continue
				}
				results[i] = v.(string)
				return
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if computed.Load() != 1 || winners.Load() != 1 {
		t.Fatalf("computed %d times with %d winners, want exactly 1", computed.Load(), winners.Load())
	}
	for i, r := range results {
		if r != "computed" {
			t.Fatalf("goroutine %d got %q", i, r)
		}
	}
}

// TestCacheConcurrentChurn hammers one small cache from many goroutines
// under -race: inserts, lookups, aliases and evictions must stay
// internally consistent.
func TestCacheConcurrentChurn(t *testing.T) {
	c := New(Config{Capacity: 32, Shards: 4, DefaultTTL: time.Hour})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(fmt.Sprintf("k%d", (g*31+i)%48))
				r := key(fmt.Sprintf("r%d", (g*31+i)%48))
				switch i % 3 {
				case 0:
					c.Insert(k, r, []byte("v"), time.Hour)
				case 1:
					c.Lookup(k)
				default:
					c.LookupRaw(r)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("Len() = %d exceeds capacity 32", c.Len())
	}
}
