package briefcache

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// Policy decides, per page domain, whether a briefing may enter the cache
// and how long it stays fresh. It is compiled from ordered rule lines:
// deny rules win over everything, then TTL classes match in declaration
// order (first match wins), then the default TTL applies. Domains are
// matched with suffix semantics (see Matcher), so one rule covers a site
// and all its subdomains.
//
// The zero-value / nil Policy admits every domain at the cache's default
// TTL.
type Policy struct {
	deny    Matcher
	classes []ttlClass
	// DefaultTTL overrides the cache-level default for domains no TTL
	// class covers (0 = defer to the cache's default).
	DefaultTTL time.Duration
}

// ttlClass is one "ttl <duration> <domains...>" rule group.
type ttlClass struct {
	m   Matcher
	ttl time.Duration
}

// NewPolicy compiles a policy from explicit rule sets: denied domains, TTL
// classes in priority order, and the default TTL.
func NewPolicy(deny []string, classes []TTLRule, defaultTTL time.Duration) *Policy {
	p := &Policy{DefaultTTL: defaultTTL}
	if len(deny) > 0 {
		p.deny = NewSuffixMatcher(deny)
	}
	for _, c := range classes {
		if len(c.Domains) == 0 {
			continue
		}
		p.classes = append(p.classes, ttlClass{m: NewSuffixMatcher(c.Domains), ttl: c.TTL})
	}
	return p
}

// TTLRule is one TTL class for NewPolicy: these domains (and their
// subdomains) cache for TTL.
type TTLRule struct {
	TTL     time.Duration
	Domains []string
}

// Admit reports whether pages from domain may be cached. The empty domain
// (no source attribution on the request) is always admitted — it can only
// be governed by the default TTL.
func (p *Policy) Admit(domain string) bool {
	if p == nil || p.deny == nil || domain == "" {
		return true
	}
	return !p.deny.Match(NormalizeDomain(domain))
}

// TTL returns the freshness lifetime for pages from domain; 0 means "use
// the cache's default TTL".
func (p *Policy) TTL(domain string) time.Duration {
	if p == nil {
		return 0
	}
	if domain != "" {
		d := NormalizeDomain(domain)
		for _, c := range p.classes {
			if c.m.Match(d) {
				return c.ttl
			}
		}
	}
	return p.DefaultTTL
}

// ParsePolicy reads the domain-policy file format, one rule per line:
//
//	# comments and blank lines are ignored
//	deny tracker.example.com ads.example.net
//	ttl 30s news.example.com live.example.org
//	ttl 1h docs.example.com
//	default 5m
//
// deny lines merge into one deny set; each ttl line opens its own class,
// matched in file order; default sets the TTL for uncovered domains.
func ParsePolicy(r io.Reader) (*Policy, error) {
	var deny []string
	var classes []TTLRule
	var defaultTTL time.Duration
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "deny":
			if len(fields) < 2 {
				return nil, fmt.Errorf("briefcache: policy line %d: deny needs at least one domain", line)
			}
			deny = append(deny, fields[1:]...)
		case "ttl":
			if len(fields) < 3 {
				return nil, fmt.Errorf("briefcache: policy line %d: ttl needs a duration and at least one domain", line)
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, fmt.Errorf("briefcache: policy line %d: %v", line, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("briefcache: policy line %d: ttl must be positive", line)
			}
			classes = append(classes, TTLRule{TTL: d, Domains: fields[2:]})
		case "default":
			if len(fields) != 2 {
				return nil, fmt.Errorf("briefcache: policy line %d: default needs exactly one duration", line)
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return nil, fmt.Errorf("briefcache: policy line %d: %v", line, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("briefcache: policy line %d: default ttl must be positive", line)
			}
			defaultTTL = d
		default:
			return nil, fmt.Errorf("briefcache: policy line %d: unknown rule %q (want deny, ttl or default)", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("briefcache: read policy: %w", err)
	}
	return NewPolicy(deny, classes, defaultTTL), nil
}

// LoadPolicy reads a policy file from disk.
func LoadPolicy(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("briefcache: open policy: %w", err)
	}
	defer f.Close()
	return ParsePolicy(f)
}
