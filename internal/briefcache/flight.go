package briefcache

import (
	"context"
	"sync/atomic"
)

// Flight coalesces concurrent computations of one cold content key: the
// first caller to Begin a key becomes the winner and computes the
// briefing; every later caller becomes a loser and Waits for the winner's
// result instead of checking out a replica of its own. A thundering herd
// on a cold key therefore computes exactly once.
//
// The winner must settle the flight exactly once, with Complete (publish a
// result to the waiters) or Abandon (the winner could not finish — its own
// deadline expired, or it was shed by admission control; waiters should
// retry). Settling is idempotent, so a deferred Abandon is a safe backstop
// behind a Complete on the success path.
type Flight struct {
	c       *Cache
	key     Key
	done    chan struct{}
	settled atomic.Bool

	// Written by the winner before close(done); read by waiters after.
	val       any
	abandoned bool
}

// BeginFlight joins the in-flight computation for a content key, creating
// it if none exists. The second result is true for the winner (the caller
// that must compute and settle) and false for losers (who should Wait).
func (c *Cache) BeginFlight(key Key) (*Flight, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if f, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		return f, false
	}
	f := &Flight{c: c, key: key, done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	return f, true
}

// settle publishes the outcome and wakes every waiter, exactly once.
func (f *Flight) settle(val any, abandoned bool) {
	if !f.settled.CompareAndSwap(false, true) {
		return
	}
	sh := f.c.shardOf(f.key)
	sh.mu.Lock()
	delete(sh.flights, f.key)
	sh.mu.Unlock()
	f.val = val
	f.abandoned = abandoned
	close(f.done)
}

// Complete publishes the winner's result to every waiter. val is opaque to
// the cache — the serving layer passes its response bytes or terminal
// outcome.
func (f *Flight) Complete(val any) { f.settle(val, false) }

// Abandon wakes waiters with no result; each should retry the lookup
// (typically coalescing onto a new flight). A no-op after Complete, so it
// can back-stop every winner exit path.
func (f *Flight) Abandon() { f.settle(nil, true) }

// Wait blocks until the flight settles or ctx is done. It returns the
// published value, whether the flight was abandoned, and ctx's error if
// the caller's own deadline won the race — losers honor their own
// deadlines, not the winner's.
func (f *Flight) Wait(ctx context.Context) (val any, abandoned bool, err error) {
	select {
	case <-f.done:
		return f.val, f.abandoned, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}
