package briefcache

import "strings"

// SrcDomain extracts the page's source domain from a ?src=-style value: a
// bare domain or a full URL. The scheme, path, query, fragment and port are
// stripped and the remainder is normalised with NormalizeDomain. The empty
// string stays empty (an unattributed request).
//
// This is the shared extraction behind the cache's admission/TTL policy key
// (internal/serve) and the gateway's consistent-hash routing key
// (internal/gateway): both tiers must agree on what "the page's domain"
// means, or the gateway would route a domain to one backend while the
// backend's cache policy classifies it as another.
func SrcDomain(src string) string {
	if src == "" {
		return ""
	}
	if i := strings.Index(src, "://"); i >= 0 {
		src = src[i+3:]
	}
	if i := strings.IndexAny(src, "/?#"); i >= 0 {
		src = src[:i]
	}
	if i := strings.LastIndexByte(src, ':'); i >= 0 && !strings.Contains(src[i:], "]") {
		src = src[:i] // host:port (a colon inside [v6] brackets is not a port)
	}
	return NormalizeDomain(src)
}
