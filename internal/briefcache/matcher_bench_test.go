package briefcache

import (
	"fmt"
	"testing"
)

// BenchmarkSuffixMatcher measures every variant at rule-set sizes spanning
// the selection thresholds, on a hit (last label probe) and a miss. The
// numbers justify linearMaxRules/binaryMaxRules: linear wins while the set
// is tiny, binary search wins mid-range, the map amortises best at scale.
func BenchmarkSuffixMatcher(b *testing.B) {
	sizes := []int{4, 8, 16, 64, 256, 1024}
	for _, size := range sizes {
		rules := make([]string, size)
		for i := range rules {
			rules[i] = fmt.Sprintf("site%04d.example%d.com", i, i%7)
		}
		hit := "cdn." + rules[size/2]
		miss := "cdn.unmatched.example.net"
		for name, m := range buildVariants(rules) {
			b.Run(fmt.Sprintf("%d/%s/hit", size, name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if !m.Match(hit) {
						b.Fatal("expected hit")
					}
				}
			})
			b.Run(fmt.Sprintf("%d/%s/miss", size, name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if m.Match(miss) {
						b.Fatal("expected miss")
					}
				}
			})
		}
	}
}

// BenchmarkCacheLookup measures the allocation-free hit paths at steady
// state: the content-key lookup and the parse-free raw-alias resolution.
func BenchmarkCacheLookup(b *testing.B) {
	c := New(Config{Capacity: 1 << 12})
	body := []byte(`{"Topic":["cached","briefing"]}` + "\n")
	content := KeyOf([]byte("visible text of the page"))
	raw := KeyOf([]byte("<html>raw bytes of the page</html>"))
	c.Insert(content, raw, body, 0)

	b.Run("content", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := c.Lookup(content); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("raw-alias", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := c.LookupRaw(raw); !ok {
				b.Fatal("miss")
			}
		}
	})
}
