package opt

import (
	"math"
	"math/rand"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// trainQuadratic minimises ||x - target||² and returns the final distance.
func trainQuadratic(t *testing.T, optim Optimizer, x *ag.Param, target *tensor.Matrix, steps int) float64 {
	t.Helper()
	for i := 0; i < steps; i++ {
		tp := ag.NewTape()
		loss := tp.MSELoss(tp.Use(x), target)
		tp.Backward(loss)
		optim.Step()
	}
	return x.Value.Sub(target).Norm2()
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := ag.NewParam("x", tensor.Randn(3, 3, 1, rng))
	target := tensor.Randn(3, 3, 1, rng)
	a := NewAdam([]*ag.Param{x}, 0.05)
	if dist := trainQuadratic(t, a, x, target, 500); dist > 1e-3 {
		t.Fatalf("Adam failed to converge, dist=%v", dist)
	}
	if a.StepCount() != 500 {
		t.Fatalf("step count: %d", a.StepCount())
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := ag.NewParam("x", tensor.Randn(2, 2, 1, rng))
	target := tensor.Randn(2, 2, 1, rng)
	s := NewSGD([]*ag.Param{x}, 0.3)
	s.Momentum = 0.5
	if dist := trainQuadratic(t, s, x, target, 300); dist > 1e-3 {
		t.Fatalf("SGD failed to converge, dist=%v", dist)
	}
}

func TestStepZeroesGrads(t *testing.T) {
	x := ag.NewParam("x", tensor.Full(2, 2, 1))
	a := NewAdam([]*ag.Param{x}, 0.01)
	tp := ag.NewTape()
	tp.Backward(tp.Sum(tp.Use(x)))
	if GlobalGradNorm(a.Params) == 0 {
		t.Fatal("expected nonzero grad before step")
	}
	a.Step()
	if GlobalGradNorm(a.Params) != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestClipGradNorm(t *testing.T) {
	x := ag.NewParam("x", tensor.New(1, 4))
	copy(x.Grad.Data, []float64{3, 4, 0, 0}) // norm 5
	pre := ClipGradNorm([]*ag.Param{x}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm: %v", pre)
	}
	if got := GlobalGradNorm([]*ag.Param{x}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("post-clip norm: %v", got)
	}
	// Direction preserved.
	if math.Abs(x.Grad.Data[0]/x.Grad.Data[1]-0.75) > 1e-9 {
		t.Fatalf("clip changed direction: %v", x.Grad.Data)
	}
}

func TestClipNoopWhenUnderLimit(t *testing.T) {
	x := ag.NewParam("x", tensor.New(1, 2))
	copy(x.Grad.Data, []float64{0.1, 0.1})
	ClipGradNorm([]*ag.Param{x}, 10)
	if x.Grad.Data[0] != 0.1 {
		t.Fatal("clip should not rescale small gradients")
	}
}

func TestWarmupDecaySchedule(t *testing.T) {
	s := WarmupDecay{WarmupSteps: 10, DecayRate: 0.1, DecayEvery: 100}
	if got := s.Factor(0); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("step 0: %v", got)
	}
	if got := s.Factor(9); math.Abs(got-1) > 1e-12 {
		t.Errorf("step 9: %v", got)
	}
	if got := s.Factor(10); got != 1 {
		t.Errorf("post-warmup: %v", got)
	}
	if got := s.Factor(110); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("after one decay: %v", got)
	}
	if got := s.Factor(210); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("after two decays: %v", got)
	}
}

func TestWarmupDecayMonotoneDuringWarmup(t *testing.T) {
	s := WarmupDecay{WarmupSteps: 50}
	prev := 0.0
	for i := 0; i < 50; i++ {
		f := s.Factor(i)
		if f <= prev {
			t.Fatalf("warmup not strictly increasing at %d: %v <= %v", i, f, prev)
		}
		prev = f
	}
}

func TestConstantSchedule(t *testing.T) {
	var c ConstantSchedule
	for _, step := range []int{0, 1, 1000} {
		if c.Factor(step) != 1 {
			t.Fatal("constant schedule must be 1")
		}
	}
}

func TestAdamDeterministic(t *testing.T) {
	run := func() []float64 {
		x := ag.NewParam("x", tensor.Full(2, 2, 1))
		target := tensor.Full(2, 2, 3)
		a := NewAdam([]*ag.Param{x}, 0.1)
		for i := 0; i < 20; i++ {
			tp := ag.NewTape()
			tp.Backward(tp.MSELoss(tp.Use(x), target))
			a.Step()
		}
		return append([]float64(nil), x.Value.Data...)
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("Adam updates are not deterministic")
		}
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	params := []*ag.Param{
		ag.NewParam("w", tensor.Randn(128, 128, 0.1, rng)),
		ag.NewParam("b", tensor.Randn(1, 128, 0.1, rng)),
	}
	a := NewAdam(params, 1e-3)
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat64()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Step()
	}
}
