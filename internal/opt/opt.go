// Package opt implements the optimizers and learning-rate schedules used to
// train every model in this repository: Adam with β1=0.9, β2=0.999, linear
// warmup, exponential decay, and global-norm gradient clipping — the exact
// configuration reported in §IV-A5 of the paper — plus plain SGD for
// comparison experiments.
package opt

import (
	"math"

	"webbrief/internal/ag"
)

// Schedule maps a 0-based step number to a learning-rate multiplier.
type Schedule interface {
	// Factor returns the multiplier applied to the base learning rate at
	// the given step.
	Factor(step int) float64
}

// ConstantSchedule always returns 1.
type ConstantSchedule struct{}

// Factor implements Schedule.
func (ConstantSchedule) Factor(int) float64 { return 1 }

// WarmupDecay implements the paper's schedule: linear warmup for WarmupSteps
// steps, then multiplicative decay by DecayRate every DecayEvery steps.
type WarmupDecay struct {
	WarmupSteps int
	DecayRate   float64 // e.g. 0.1 per paper
	DecayEvery  int     // steps between decays; 0 disables decay
}

// Factor implements Schedule.
func (s WarmupDecay) Factor(step int) float64 {
	f := 1.0
	if s.WarmupSteps > 0 && step < s.WarmupSteps {
		f = float64(step+1) / float64(s.WarmupSteps)
	}
	if s.DecayEvery > 0 && step >= s.WarmupSteps {
		n := (step - s.WarmupSteps) / s.DecayEvery
		f *= math.Pow(s.DecayRate, float64(n))
	}
	return f
}

// Optimizer updates a fixed set of parameters from their accumulated
// gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters, then zeroes them.
	Step()
	// ZeroGrad clears all parameter gradients without updating.
	ZeroGrad()
}

// Adam is the Adam optimizer with optional gradient clipping and schedule.
type Adam struct {
	Params   []*ag.Param
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	Clip     float64 // max global gradient norm; 0 disables clipping
	Schedule Schedule

	step int
	m, v [][]float64
}

// NewAdam returns an Adam optimizer over params with the paper's defaults
// (β1=0.9, β2=0.999, ε=1e-8, no clipping, constant schedule).
func NewAdam(params []*ag.Param, lr float64) *Adam {
	a := &Adam{
		Params:   params,
		LR:       lr,
		Beta1:    0.9,
		Beta2:    0.999,
		Eps:      1e-8,
		Schedule: ConstantSchedule{},
	}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Value.Data))
		a.v[i] = make([]float64, len(p.Value.Data))
	}
	return a
}

// GlobalGradNorm returns the L2 norm of all gradients concatenated.
func GlobalGradNorm(params []*ag.Param) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales gradients in place so the global norm is at most
// maxNorm; it returns the pre-clip norm.
func ClipGradNorm(params []*ag.Param, maxNorm float64) float64 {
	norm := GlobalGradNorm(params)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}

// Step implements Optimizer.
func (a *Adam) Step() {
	if a.Clip > 0 {
		ClipGradNorm(a.Params, a.Clip)
	}
	a.step++
	lr := a.LR * a.Schedule.Factor(a.step-1)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.Params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			p.Value.Data[j] -= lr * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
	a.ZeroGrad()
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() {
	for _, p := range a.Params {
		p.ZeroGrad()
	}
}

// StepCount returns how many updates have been applied.
func (a *Adam) StepCount() int { return a.step }

// SGD is plain stochastic gradient descent with optional momentum and
// clipping, kept as a baseline optimizer for ablations.
type SGD struct {
	Params   []*ag.Param
	LR       float64
	Momentum float64
	Clip     float64
	Schedule Schedule

	step int
	vel  [][]float64
}

// NewSGD returns an SGD optimizer over params.
func NewSGD(params []*ag.Param, lr float64) *SGD {
	s := &SGD{Params: params, LR: lr, Schedule: ConstantSchedule{}}
	s.vel = make([][]float64, len(params))
	for i, p := range params {
		s.vel[i] = make([]float64, len(p.Value.Data))
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	if s.Clip > 0 {
		ClipGradNorm(s.Params, s.Clip)
	}
	lr := s.LR * s.Schedule.Factor(s.step)
	s.step++
	for i, p := range s.Params {
		vel := s.vel[i]
		for j, g := range p.Grad.Data {
			vel[j] = s.Momentum*vel[j] + g
			p.Value.Data[j] -= lr * vel[j]
		}
	}
	s.ZeroGrad()
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() {
	for _, p := range s.Params {
		p.ZeroGrad()
	}
}
