package hier

import (
	"math/rand"
	"reflect"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/corpus"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

func hierData(t testing.TB, domains, pages int) ([]*Instance, []*corpus.Page, *textproc.Vocab) {
	t.Helper()
	pgs := GenerateHierPages(domains, pages, 1)
	v := corpus.BuildVocab(pgs)
	v.Add("category")
	for _, q := range []string{"featured", "classic", "premium", "popular", "seasonal"} {
		v.Add(q)
	}
	return NewInstances(pgs, v), pgs, v
}

func enc(v *textproc.Vocab, seed int64) wb.DocEncoder {
	return wb.NewGloVeEncoder(tensor.Randn(v.Size(), 16, 0.1, rand.New(rand.NewSource(seed))))
}

func TestGeneratePageHierHasCategory(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := corpus.GeneratePageHier(corpus.DomainByName("books"), 0, rng)
	attrs := p.Attributes()
	if len(attrs) != 5 {
		t.Fatalf("hier page should have 5 attributes (1 category + 4 detail), got %d", len(attrs))
	}
	cat := attrs[0]
	if cat.Label != "category" || cat.Level != 1 {
		t.Fatalf("first attribute should be the level-1 category: %+v", cat)
	}
	for _, a := range attrs[1:] {
		if a.Level != 0 {
			t.Fatalf("detail attribute with level %d: %+v", a.Level, a)
		}
	}
	// The round-trip alignment must still hold.
	got := corpus.ReparseFromHTML(p.HTML)
	if len(got) != len(p.Sentences) {
		t.Fatalf("reparse: %d sentences, want %d", len(got), len(p.Sentences))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], p.Sentences[i].Tokens) {
			t.Fatalf("sentence %d misaligned", i)
		}
	}
}

func TestHierInstanceSplitsLevels(t *testing.T) {
	insts, _, _ := hierData(t, 2, 1)
	inst := insts[0]
	if len(inst.Tags1) != len(inst.Tags2) || len(inst.Tags1) != inst.Base.NumTokens() {
		t.Fatal("tag arrays out of sync")
	}
	b1, b2 := 0, 0
	for i := range inst.Tags1 {
		if inst.Tags1[i] == corpus.TagB {
			b1++
		}
		if inst.Tags2[i] == corpus.TagB {
			b2++
		}
		if inst.Tags1[i] != corpus.TagO && inst.Tags2[i] != corpus.TagO {
			t.Fatal("token tagged at both levels")
		}
	}
	if b1 != 1 {
		t.Fatalf("level-1 B tags: %d, want 1 category", b1)
	}
	if b2 != 4 {
		t.Fatalf("level-2 B tags: %d, want 4 detail attributes", b2)
	}
}

func TestMultiLevelForwardShapes(t *testing.T) {
	insts, _, v := hierData(t, 2, 1)
	m := NewMultiLevel("ml", enc(v, 2), 8, true, 3)
	tp := ag.NewTape()
	l1, l2 := m.Forward(tp, insts[0], true)
	if l1.Rows() != insts[0].Base.NumTokens() || l1.Cols() != 3 {
		t.Fatalf("l1 shape %dx%d", l1.Rows(), l1.Cols())
	}
	if l2.Rows() != l1.Rows() || l2.Cols() != 3 {
		t.Fatalf("l2 shape %dx%d", l2.Rows(), l2.Cols())
	}
}

func TestMultiLevelGradFlow(t *testing.T) {
	insts, _, v := hierData(t, 2, 1)
	for _, combine := range []bool{true, false} {
		m := NewMultiLevel("ml", enc(v, 4), 8, combine, 5)
		tp := ag.NewTape()
		l1, l2 := m.Forward(tp, insts[0], true)
		loss := tp.AddScalars(tp.CrossEntropy(l1, insts[0].Tags1), tp.CrossEntropy(l2, insts[0].Tags2))
		tp.Backward(loss)
		for _, p := range m.Params() {
			if p.Grad.MaxAbs() == 0 {
				t.Fatalf("combine=%v: no grad to %s", combine, p.Name)
			}
		}
	}
}

func TestMultiLevelLearnsBothLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	insts, _, v := hierData(t, 3, 8)
	m := NewMultiLevel("ml", enc(v, 6), 16, true, 7)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 20
	losses := m.Train(insts, tc)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss not decreasing: %v", losses)
	}
	l1, l2 := m.Evaluate(insts)
	if l1.F1 < 70 {
		t.Fatalf("level-1 (category) F1 %.1f too low", l1.F1)
	}
	if l2.F1 < 70 {
		t.Fatalf("level-2 (detail) F1 %.1f too low", l2.F1)
	}
}

func TestMakeHierBrief(t *testing.T) {
	insts, pgs, v := hierData(t, 2, 2)
	topicModel := wb.NewJointWB("jwb", enc(v, 8), v.Size(), wb.Config{Hidden: 8, TopicLen: 4, Seed: 8})
	m := NewMultiLevel("ml", enc(v, 9), 8, true, 9)
	hb := MakeHierBrief(topicModel, m, insts[0], v, 2)
	if hb == nil {
		t.Fatal("nil brief")
	}
	_ = pgs
	// Topic must decode to something; category/attributes may be empty for
	// an untrained extractor but must not panic.
	if hb.Topic == nil {
		t.Fatal("no topic decoded")
	}
}

func TestGenerateHierPagesDeterministic(t *testing.T) {
	a := GenerateHierPages(2, 2, 42)
	b := GenerateHierPages(2, 2, 42)
	if len(a) != 4 || len(b) != 4 {
		t.Fatal("page count")
	}
	for i := range a {
		if a[i].HTML != b[i].HTML {
			t.Fatal("not deterministic")
		}
	}
}
