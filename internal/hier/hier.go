// Package hier implements the multi-level extension of webpage briefing
// that §III-C sketches and §V leaves to future work: "use multiple
// extractors E to tackle key attributes at different levels, combine the
// signals from different levels". Pages generated with
// corpus.GeneratePageHier carry a HIGH-LEVEL category attribute (level 1,
// e.g. "classic novel") above the detailed attributes (level 2: title,
// price, ...); the MultiLevel extractor tags both levels with separate
// heads over a shared encoder, feeding the level-1 head's soft predictions
// into the level-2 head as the combined signal.
package hier

import (
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/corpus"
	"webbrief/internal/eval"
	"webbrief/internal/nn"
	"webbrief/internal/opt"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// Instance is a hierarchical page in model-input form: the usual flattened
// stream plus per-level BIO tags.
type Instance struct {
	Base  *wb.Instance
	Tags1 []int // BIO for the level-1 (category) attribute
	Tags2 []int // BIO for the level-2 (detailed) attributes
}

// NewInstance encodes a hierarchical page. Tags are split by level: tokens
// of level-1 spans appear only in Tags1, level-2 (stored as level 0 on
// plain attributes) only in Tags2.
func NewInstance(p *corpus.Page, v *textproc.Vocab) *Instance {
	base := wb.NewInstance(p, v, 0)
	e := p.Encode(0)
	inst := &Instance{
		Base:  base,
		Tags1: make([]int, len(e.Tags)),
		Tags2: make([]int, len(e.Tags)),
	}
	for i, tag := range e.Tags {
		if tag == corpus.TagO {
			continue
		}
		if e.Levels[i] == 1 {
			inst.Tags1[i] = tag
		} else {
			inst.Tags2[i] = tag
		}
	}
	return inst
}

// NewInstances encodes a batch.
func NewInstances(pages []*corpus.Page, v *textproc.Vocab) []*Instance {
	out := make([]*Instance, len(pages))
	for i, p := range pages {
		out[i] = NewInstance(p, v)
	}
	return out
}

// MultiLevel is the two-level extractor: a shared Bi-LSTM over encoder
// token representations, a level-1 head, and a level-2 head that sees the
// token representation concatenated with the level-1 head's softmax
// distribution — the cross-level signal combination of the §III-C sketch.
// Set Combine to false for the ablation with two independent heads.
type MultiLevel struct {
	Enc     wb.DocEncoder
	LSTM    *nn.BiLSTM
	Head1   *nn.Linear
	Head2   *nn.Linear
	Combine bool
	Dropout float64
	rng     *rand.Rand
}

// NewMultiLevel builds a two-level extractor over enc.
func NewMultiLevel(name string, enc wb.DocEncoder, hidden int, combine bool, seed int64) *MultiLevel {
	rng := rand.New(rand.NewSource(seed))
	bi := 2 * hidden
	head2In := bi
	if combine {
		head2In += corpus.NumTags
	}
	return &MultiLevel{
		Enc:     enc,
		LSTM:    nn.NewBiLSTM(name+".lstm", enc.Dim(), hidden, rng),
		Head1:   nn.NewLinear(name+".h1", bi, corpus.NumTags, rng),
		Head2:   nn.NewLinear(name+".h2", head2In, corpus.NumTags, rng),
		Combine: combine,
		Dropout: 0.2,
		rng:     rng,
	}
}

// Params implements nn.Layer.
func (m *MultiLevel) Params() []*ag.Param {
	return nn.CollectParams(m.Enc, m.LSTM, m.Head1, m.Head2)
}

// Forward returns the two heads' logits (each l×3).
func (m *MultiLevel) Forward(t *ag.Tape, inst *Instance, train bool) (logits1, logits2 *ag.Node) {
	tok, _ := m.Enc.EncodeDoc(t, inst.Base)
	if train && m.Dropout > 0 {
		tok = t.Dropout(tok, m.Dropout, m.rng)
	}
	h := m.LSTM.Forward(t, tok)
	logits1 = m.Head1.Forward(t, h)
	feats := h
	if m.Combine {
		feats = t.ConcatCols(h, t.SoftmaxRows(logits1))
	}
	logits2 = m.Head2.Forward(t, feats)
	return logits1, logits2
}

// Train fits the extractor with the summed two-level BIO cross-entropy and
// returns per-epoch mean losses.
func (m *MultiLevel) Train(insts []*Instance, tc wb.TrainConfig) []float64 {
	optim := opt.NewAdam(m.Params(), tc.LR)
	optim.Clip = tc.Clip
	if tc.Warmup > 0 {
		optim.Schedule = opt.WarmupDecay{WarmupSteps: tc.Warmup}
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	order := make([]int, len(insts))
	for i := range order {
		order[i] = i
	}
	var losses []float64
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for _, idx := range order {
			inst := insts[idx]
			t := ag.NewTape()
			l1, l2 := m.Forward(t, inst, true)
			loss := t.AddScalars(
				t.CrossEntropy(l1, inst.Tags1),
				t.CrossEntropy(l2, inst.Tags2),
			)
			sum += loss.Value.Data[0]
			t.Backward(loss)
			optim.Step()
		}
		losses = append(losses, sum/float64(len(insts)))
	}
	return losses
}

// predictTags decodes argmax BIO from logits.
func predictTags(logits *ag.Node) []int {
	tags := make([]int, logits.Rows())
	for i := range tags {
		tags[i] = logits.Value.ArgmaxRow(i)
	}
	return tags
}

// Evaluate scores both levels with strict span P/R/F1.
func (m *MultiLevel) Evaluate(insts []*Instance) (level1, level2 eval.PRF1) {
	var p1, g1, p2, g2 [][]eval.Span
	for _, inst := range insts {
		t := ag.NewTape()
		l1, l2 := m.Forward(t, inst, false)
		p1 = append(p1, eval.SpansFromBIO(predictTags(l1)))
		g1 = append(g1, eval.SpansFromBIO(inst.Tags1))
		p2 = append(p2, eval.SpansFromBIO(predictTags(l2)))
		g2 = append(g2, eval.SpansFromBIO(inst.Tags2))
	}
	return eval.SpanPRF1(p1, g1), eval.SpanPRF1(p2, g2)
}

// HierBrief is a three-level briefing: topic, high-level category, detailed
// attributes — the full hierarchy of §I's Figure 1 description.
type HierBrief struct {
	Topic      []string
	Category   []string
	Attributes [][]string
}

// MakeHierBrief combines a topic model (any wb.Model with a generator) and
// a MultiLevel extractor into the three-level hierarchy.
func MakeHierBrief(topicModel wb.Model, m *MultiLevel, inst *Instance, v *textproc.Vocab, beamWidth int) *HierBrief {
	hb := &HierBrief{}
	if ids := wb.GenerateTopic(topicModel, inst.Base, beamWidth, 6); ids != nil {
		hb.Topic = v.Tokens(ids)
	}
	t := ag.NewTape()
	l1, l2 := m.Forward(t, inst, false)
	words := func(sp eval.Span) []string {
		var out []string
		for i := sp.Start; i < sp.End; i++ {
			out = append(out, v.Token(inst.Base.IDs[i]))
		}
		return out
	}
	if spans := eval.SpansFromBIO(predictTags(l1)); len(spans) > 0 {
		hb.Category = words(spans[0])
	}
	for _, sp := range eval.SpansFromBIO(predictTags(l2)) {
		hb.Attributes = append(hb.Attributes, words(sp))
	}
	return hb
}

// GenerateHierPages builds a hierarchical dataset: pages from the first
// nDomains domains, pagesPer each, via corpus.GeneratePageHier.
func GenerateHierPages(nDomains, pagesPer int, seed int64) []*corpus.Page {
	rng := rand.New(rand.NewSource(seed))
	domains := corpus.Domains()[:nDomains]
	var pages []*corpus.Page
	for i := range domains {
		for j := 0; j < pagesPer; j++ {
			pages = append(pages, corpus.GeneratePageHier(&domains[i], j, rng))
		}
	}
	return pages
}
