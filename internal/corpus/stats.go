package corpus

import (
	"fmt"
	"math"
)

// Stats summarises a page set with the statistics §IV-A1 reports for the
// paper's dataset: averaged webpage length in tokens (theirs: 1731.6,
// std 210.3), vocabulary size (13M), attributes per page (4), and averaged
// topic length (3, std 0.74).
type Stats struct {
	Pages          int
	Domains        int
	AvgTokens      float64
	StdTokens      float64
	VocabSize      int
	AvgAttributes  float64
	AvgTopicLength float64
	StdTopicLength float64
	InformativePct float64 // share of sentences that are informative
}

// ComputeStats derives the §IV-A1 statistics for pages.
func ComputeStats(pages []*Page) Stats {
	s := Stats{Pages: len(pages)}
	if len(pages) == 0 {
		return s
	}
	domains := map[string]bool{}
	var tokenCounts, topicLens []float64
	var attrs, informative, sentences int
	vocab := map[string]bool{}
	for _, p := range pages {
		domains[p.Domain] = true
		tokens := 0
		for _, sent := range p.Sentences {
			tokens += len(sent.Tokens)
			sentences++
			if sent.Informative {
				informative++
			}
			for _, tok := range sent.Tokens {
				vocab[tok] = true
			}
		}
		tokenCounts = append(tokenCounts, float64(tokens))
		topicLens = append(topicLens, float64(len(p.Topic)))
		attrs += len(p.Attributes())
	}
	s.Domains = len(domains)
	s.AvgTokens, s.StdTokens = meanStd(tokenCounts)
	s.AvgTopicLength, s.StdTopicLength = meanStd(topicLens)
	s.VocabSize = len(vocab)
	s.AvgAttributes = float64(attrs) / float64(len(pages))
	s.InformativePct = 100 * float64(informative) / float64(sentences)
	return s
}

// meanStd returns the mean and population standard deviation of xs.
func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// String renders the statistics in the paper's reporting style.
func (s Stats) String() string {
	return fmt.Sprintf(
		"%d pages over %d domains; avg length %.1f tokens (std %.1f); vocabulary %d; "+
			"%.1f attributes/page; avg topic length %.1f (std %.2f); %.1f%% informative sentences",
		s.Pages, s.Domains, s.AvgTokens, s.StdTokens, s.VocabSize,
		s.AvgAttributes, s.AvgTopicLength, s.StdTopicLength, s.InformativePct)
}
