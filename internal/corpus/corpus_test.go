package corpus

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"webbrief/internal/textproc"
)

func TestDomainsWellFormed(t *testing.T) {
	ds := Domains()
	if len(ds) != 24 {
		t.Fatalf("expected 24 domains, got %d", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Fatalf("duplicate domain %q", d.Name)
		}
		names[d.Name] = true
		if len(d.Topic) < 2 || len(d.Topic) > 4 {
			t.Errorf("%s: topic length %d", d.Name, len(d.Topic))
		}
		if len(d.Words) < 10 {
			t.Errorf("%s: only %d content words", d.Name, len(d.Words))
		}
		for _, a := range d.Attrs {
			if a.Label == "" {
				t.Errorf("%s: empty attribute label", d.Name)
			}
		}
		// Topic tokens must already be normalised (lowercase, no digits).
		for _, tok := range d.Topic {
			norm := textproc.Normalize(tok)
			if len(norm) != 1 || norm[0] != tok {
				t.Errorf("%s: topic token %q not normalised", d.Name, tok)
			}
		}
	}
}

func TestDomainByName(t *testing.T) {
	if d := DomainByName("books"); d == nil || d.Name != "books" {
		t.Fatal("DomainByName(books)")
	}
	if DomainByName("nope") != nil {
		t.Fatal("unknown domain should be nil")
	}
}

func TestGeneratePageStructure(t *testing.T) {
	d := DomainByName("books")
	p := GeneratePage(d, 7, rand.New(rand.NewSource(1)))
	if p.ID != "books-0007" || p.Domain != "books" {
		t.Fatalf("page identity: %+v", p)
	}
	attrs := p.Attributes()
	if len(attrs) != 4 {
		t.Fatalf("want 4 attributes (§IV-A1), got %d", len(attrs))
	}
	labels := map[string]bool{}
	for _, a := range attrs {
		labels[a.Label] = true
		if len(a.Value) == 0 {
			t.Fatalf("empty attribute value: %+v", a)
		}
	}
	for _, schema := range d.Attrs {
		if !labels[schema.Label] {
			t.Errorf("missing attribute %q", schema.Label)
		}
	}
	// Both informative and boilerplate sentences must be present.
	var inf, boil int
	for _, s := range p.Sentences {
		if s.Informative {
			inf++
		} else {
			boil++
		}
	}
	if inf == 0 || boil == 0 {
		t.Fatalf("inf=%d boil=%d", inf, boil)
	}
}

func TestGeneratePageDeterministic(t *testing.T) {
	d := DomainByName("jobs")
	a := GeneratePage(d, 0, rand.New(rand.NewSource(42)))
	b := GeneratePage(d, 0, rand.New(rand.NewSource(42)))
	if a.HTML != b.HTML {
		t.Fatal("page generation not deterministic")
	}
	if !reflect.DeepEqual(a.Sentences, b.Sentences) {
		t.Fatal("sentences not deterministic")
	}
}

func TestAttrSpanPointsAtValue(t *testing.T) {
	d := DomainByName("hotels")
	p := GeneratePage(d, 0, rand.New(rand.NewSource(3)))
	for _, s := range p.Sentences {
		if s.Attr == nil {
			continue
		}
		got := s.Tokens[s.AttrStart:s.AttrEnd]
		if !reflect.DeepEqual(got, s.Attr.Value) {
			t.Fatalf("span %v != value %v", got, s.Attr.Value)
		}
	}
}

// The central corpus invariant: rendering the generated HTML through the
// real pipeline (htmldom parse → visible lines → textproc normalise)
// reproduces exactly the token stream the labels were built on.
func TestHTMLRoundTripAlignsWithLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range Domains() {
		d := d
		for i := 0; i < 3; i++ {
			p := GeneratePage(&d, i, rng)
			got := ReparseFromHTML(p.HTML)
			if len(got) != len(p.Sentences) {
				t.Fatalf("%s: reparse produced %d sentences, labels have %d\nHTML:\n%s",
					p.ID, len(got), len(p.Sentences), p.HTML)
			}
			for si, sent := range p.Sentences {
				if !reflect.DeepEqual(got[si], sent.Tokens) {
					t.Fatalf("%s sentence %d:\n got  %v\n want %v", p.ID, si, got[si], sent.Tokens)
				}
			}
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	cfg := Config{Seed: 1, PagesPerDomain: 4, SeenDomains: 3, UnseenDomains: 2}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pages) != 20 {
		t.Fatalf("pages: %d", len(ds.Pages))
	}
	if len(ds.Seen) != 3 || len(ds.Unseen) != 2 {
		t.Fatalf("splits: %v / %v", ds.Seen, ds.Unseen)
	}
	if !ds.IsSeen(ds.Seen[0]) || ds.IsSeen(ds.Unseen[0]) {
		t.Fatal("IsSeen wrong")
	}
	seenPages := ds.PagesOf(ds.IsSeen)
	if len(seenPages) != 12 {
		t.Fatalf("seen pages: %d", len(seenPages))
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, PagesPerDomain: 1, SeenDomains: 20, UnseenDomains: 20}); err == nil {
		t.Fatal("too many domains should error")
	}
	if _, err := Generate(Config{Seed: 1, PagesPerDomain: 0, SeenDomains: 1, UnseenDomains: 1}); err == nil {
		t.Fatal("zero pages should error")
	}
}

func TestSplitProportions(t *testing.T) {
	cfg := Config{Seed: 1, PagesPerDomain: 10, SeenDomains: 2, UnseenDomains: 0}
	ds, _ := Generate(cfg)
	train, dev, test := Split(ds.Pages, 7)
	if len(train) != 16 || len(dev) != 2 || len(test) != 2 {
		t.Fatalf("split sizes: %d/%d/%d", len(train), len(dev), len(test))
	}
	// No page lost or duplicated.
	seen := map[string]int{}
	for _, p := range ds.Pages {
		seen[p.ID] = 0
	}
	for _, p := range append(append(append([]*Page{}, train...), dev...), test...) {
		seen[p.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("page %s appears %d times", id, n)
		}
	}
	// Deterministic.
	train2, _, _ := Split(ds.Pages, 7)
	if train[0].ID != train2[0].ID {
		t.Fatal("Split not deterministic")
	}
}

func TestEncodeBIOTags(t *testing.T) {
	d := DomainByName("cars")
	p := GeneratePage(d, 0, rand.New(rand.NewSource(9)))
	e := p.Encode(0)
	if len(e.Words) != len(e.Tags) || len(e.Words) != len(e.SentOf) || len(e.Words) != len(e.Segments) {
		t.Fatal("parallel arrays out of sync")
	}
	if len(e.ClsIdx) != len(p.Sentences) || len(e.SentInfo) != len(p.Sentences) {
		t.Fatal("per-sentence arrays out of sync")
	}
	// Every [CLS] position must hold the CLS token and TagO.
	for si, c := range e.ClsIdx {
		if e.Words[c] != textproc.ClsToken {
			t.Fatalf("ClsIdx[%d]=%d is %q", si, c, e.Words[c])
		}
		if e.Tags[c] != TagO {
			t.Fatal("CLS tagged inside a span")
		}
		if e.SentOf[c] != si {
			t.Fatal("SentOf wrong at CLS")
		}
	}
	// Exactly 4 B tags (4 attributes), I tags only follow B or I.
	bCount := 0
	for i, tag := range e.Tags {
		if tag == TagB {
			bCount++
		}
		if tag == TagI && (i == 0 || e.Tags[i-1] == TagO) {
			t.Fatal("orphan I tag")
		}
	}
	if bCount != 4 {
		t.Fatalf("B tags: %d", bCount)
	}
	// Segment ids must alternate with the sentence parity.
	for i, seg := range e.Segments {
		if seg != e.SentOf[i]%2 {
			t.Fatal("segment parity wrong")
		}
	}
}

func TestEncodeGoldSpansMatchAttributes(t *testing.T) {
	d := DomainByName("movies")
	p := GeneratePage(d, 0, rand.New(rand.NewSource(10)))
	e := p.Encode(0)
	spans := e.GoldSpans()
	if len(spans) != 4 {
		t.Fatalf("gold spans: %d", len(spans))
	}
	attrs := p.Attributes()
	for i, sp := range spans {
		got := e.Words[sp[0]:sp[1]]
		if !reflect.DeepEqual(got, attrs[i].Value) {
			t.Fatalf("span %d extracts %v want %v", i, got, attrs[i].Value)
		}
	}
}

func TestEncodeTruncation(t *testing.T) {
	d := DomainByName("music")
	p := GeneratePage(d, 0, rand.New(rand.NewSource(11)))
	full := p.Encode(0)
	small := p.Encode(10)
	if len(small.Words) != 10 {
		t.Fatalf("truncated length %d", len(small.Words))
	}
	if len(small.SentInfo) > len(full.SentInfo) {
		t.Fatal("truncation grew sentence labels")
	}
	for _, c := range small.ClsIdx {
		if c >= 10 {
			t.Fatal("ClsIdx beyond truncation")
		}
	}
	if len(small.SentInfo) != small.SentOf[len(small.SentOf)-1]+1 {
		t.Fatal("SentInfo length mismatch after truncation")
	}
}

func TestWordCountsAndVocab(t *testing.T) {
	cfg := Config{Seed: 1, PagesPerDomain: 2, SeenDomains: 2, UnseenDomains: 0}
	ds, _ := Generate(cfg)
	counts := WordCounts(ds.Pages)
	foundBoiler := false
	for _, sent := range boilerplateSentences {
		if counts[sent[0]] > 0 {
			foundBoiler = true
			break
		}
	}
	if !foundBoiler {
		t.Fatal("boilerplate words missing from counts")
	}
	v := BuildVocab(ds.Pages)
	if !v.Has("book") && !v.Has("engineer") {
		t.Fatal("domain words missing from vocab")
	}
	// Topic tokens must be in the vocabulary (the generator must be able to
	// emit them).
	for _, d := range ds.Domains {
		for _, tok := range d.Topic {
			if !v.Has(tok) {
				t.Fatalf("topic token %q not in vocab", tok)
			}
		}
	}
}

func TestDomainStylesAssigned(t *testing.T) {
	ds := Domains()
	if len(domainStyles) != len(ds) {
		t.Fatalf("style table covers %d of %d domains", len(domainStyles), len(ds))
	}
	// The first 16 domains (seen pool) must never use StyleBare; the last 8
	// must include it — that asymmetry is what makes unseen-domain
	// extraction need adaptation.
	for i, d := range ds {
		if i < 16 && d.Style == StyleBare {
			t.Fatalf("seen-pool domain %s uses StyleBare", d.Name)
		}
	}
	bare := 0
	for _, d := range ds[16:] {
		if d.Style == StyleBare {
			bare++
		}
	}
	if bare == 0 {
		t.Fatal("no unseen-pool domain uses StyleBare")
	}
}

func TestAttrSentenceStyles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := *DomainByName("books")
	for style, want := range map[AttrStyle]func(s Sentence) bool{
		StyleColon: func(s Sentence) bool { return s.Tokens[s.AttrStart-1] == ":" },
		StyleDash:  func(s Sentence) bool { return s.Tokens[s.AttrStart-1] == "-" },
		StyleParen: func(s Sentence) bool {
			return s.AttrStart == 0 && s.Tokens[s.AttrEnd] == "(" && s.Tokens[len(s.Tokens)-1] == ")"
		},
		StyleBare: func(s Sentence) bool {
			return s.AttrStart >= 1 && s.Tokens[s.AttrStart-1] != ":" && s.Tokens[s.AttrStart-1] != "-"
		},
	} {
		d := base
		d.Style = style
		s := attrSentence(d.Attrs[0], &d, rng)
		if !want(s) {
			t.Errorf("style %d sentence malformed: %v (span %d:%d)", style, s.Tokens, s.AttrStart, s.AttrEnd)
		}
		if !reflect.DeepEqual(s.Tokens[s.AttrStart:s.AttrEnd], s.Attr.Value) {
			t.Errorf("style %d span does not cover value: %v", style, s)
		}
	}
}

func TestStyledPagesRoundTrip(t *testing.T) {
	// The HTML round trip must hold for every style, including paren
	// punctuation.
	rng := rand.New(rand.NewSource(99))
	for _, name := range []string{"pets", "events", "garden", "finance", "insurance", "restaurants", "art", "software"} {
		d := DomainByName(name)
		p := GeneratePage(d, 0, rng)
		got := ReparseFromHTML(p.HTML)
		if len(got) != len(p.Sentences) {
			t.Fatalf("%s: %d sentences reparsed, want %d", name, len(got), len(p.Sentences))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], p.Sentences[i].Tokens) {
				t.Fatalf("%s sentence %d: %v != %v", name, i, got[i], p.Sentences[i].Tokens)
			}
		}
	}
}

func TestConcatPagesProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := GeneratePage(DomainByName("books"), 0, rng)
	b := GeneratePage(DomainByName("jobs"), 0, rng)
	for _, prop := range []float64{0.5, 0.7, 0.3} {
		c := ConcatPages(a, b, prop)
		if c.Domain != "books" {
			t.Fatal("concat should keep first page's domain")
		}
		nA := clamp(int(prop*float64(len(a.Sentences))+0.5), 1, len(a.Sentences))
		for i := 0; i < nA; i++ {
			if !reflect.DeepEqual(c.Sentences[i].Tokens, a.Sentences[i].Tokens) {
				t.Fatal("prefix should come from a")
			}
		}
		if len(c.Sentences) <= nA {
			t.Fatal("no content from b")
		}
	}
}

func TestBoilerplateSharedAcrossDomains(t *testing.T) {
	// The same boilerplate pool must serve every domain — that is what
	// makes section prediction non-trivial.
	rng := rand.New(rand.NewSource(13))
	pb := GeneratePage(DomainByName("books"), 0, rng)
	boilB := map[string]bool{}
	for _, s := range pb.Sentences {
		if !s.Informative {
			boilB[strings.Join(s.Tokens, " ")] = true
		}
	}
	found := false
	for i := 0; i < 10 && !found; i++ {
		pj := GeneratePage(DomainByName("jobs"), i, rng)
		for _, s := range pj.Sentences {
			if !s.Informative && boilB[strings.Join(s.Tokens, " ")] {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no shared boilerplate between domains in 10 pages")
	}
}

func BenchmarkGeneratePage(b *testing.B) {
	d := DomainByName("books")
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GeneratePage(d, i, rng)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := GeneratePage(DomainByName("books"), 0, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Encode(0)
	}
}

func TestExportImportJSONLRoundTrip(t *testing.T) {
	ds, _ := Generate(Config{Seed: 1, PagesPerDomain: 2, SeenDomains: 3, UnseenDomains: 0})
	var buf bytes.Buffer
	if err := ExportJSONL(&buf, ds.Pages, true); err != nil {
		t.Fatal(err)
	}
	got, err := ImportJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.Pages) {
		t.Fatalf("imported %d pages, want %d", len(got), len(ds.Pages))
	}
	for i, p := range ds.Pages {
		g := got[i]
		if g.ID != p.ID || g.Domain != p.Domain || g.HTML != p.HTML {
			t.Fatalf("page %d identity mismatch", i)
		}
		if !reflect.DeepEqual(g.Topic, p.Topic) {
			t.Fatalf("page %d topic mismatch", i)
		}
		if !reflect.DeepEqual(g.Sentences, p.Sentences) {
			t.Fatalf("page %d sentences mismatch:\n got %+v\nwant %+v", i, g.Sentences, p.Sentences)
		}
	}
	// Encoded form (what models consume) must be identical too.
	a := ds.Pages[0].Encode(0)
	b := got[0].Encode(0)
	if !reflect.DeepEqual(a.Tags, b.Tags) || !reflect.DeepEqual(a.Words, b.Words) {
		t.Fatal("encoded form diverges after round trip")
	}
}

func TestExportJSONLWithoutHTML(t *testing.T) {
	ds, _ := Generate(Config{Seed: 1, PagesPerDomain: 1, SeenDomains: 1, UnseenDomains: 0})
	var buf bytes.Buffer
	if err := ExportJSONL(&buf, ds.Pages, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<html>") {
		t.Fatal("HTML leaked into markup-free export")
	}
	got, err := ImportJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].HTML != "" {
		t.Fatal("HTML should be empty after markup-free round trip")
	}
}

func TestImportJSONLRejectsGarbage(t *testing.T) {
	if _, err := ImportJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestComputeStats(t *testing.T) {
	ds, _ := Generate(Config{Seed: 1, PagesPerDomain: 5, SeenDomains: 4, UnseenDomains: 0})
	s := ComputeStats(ds.Pages)
	if s.Pages != 20 || s.Domains != 4 {
		t.Fatalf("counts: %+v", s)
	}
	if s.AvgAttributes != 4 {
		t.Fatalf("attributes/page should be exactly 4 (§IV-A1), got %v", s.AvgAttributes)
	}
	if s.AvgTopicLength < 2 || s.AvgTopicLength > 4 {
		t.Fatalf("topic length: %v", s.AvgTopicLength)
	}
	if s.AvgTokens <= 0 || s.StdTokens < 0 || s.VocabSize <= 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.InformativePct <= 0 || s.InformativePct >= 100 {
		t.Fatalf("informative share must be strictly between 0 and 100: %v", s.InformativePct)
	}
	if got := s.String(); !strings.Contains(got, "20 pages over 4 domains") {
		t.Fatalf("rendering: %q", got)
	}
	// Empty input is defined.
	if z := ComputeStats(nil); z.Pages != 0 {
		t.Fatal("empty stats")
	}
}
