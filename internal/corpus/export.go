package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ExportRecord is the JSONL form of one labelled page, the interchange
// format for using the corpus outside this repository (or importing
// externally labelled pages into it).
type ExportRecord struct {
	ID          string       `json:"id"`
	Domain      string       `json:"domain"`
	Topic       []string     `json:"topic"`
	HTML        string       `json:"html,omitempty"`
	Sentences   [][]string   `json:"sentences"`
	Informative []bool       `json:"informative"`
	Attributes  []ExportAttr `json:"attributes"`
}

// ExportAttr is one labelled attribute with its sentence-local span.
type ExportAttr struct {
	Label    string   `json:"label"`
	Value    []string `json:"value"`
	Level    int      `json:"level"`
	Sentence int      `json:"sentence"`
	Start    int      `json:"start"`
	End      int      `json:"end"`
}

// ExportJSONL writes pages as one JSON object per line. includeHTML
// controls whether the raw markup is embedded (it dominates the file size).
func ExportJSONL(w io.Writer, pages []*Page, includeHTML bool) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range pages {
		rec := ExportRecord{
			ID:     p.ID,
			Domain: p.Domain,
			Topic:  p.Topic,
		}
		if includeHTML {
			rec.HTML = p.HTML
		}
		for si, s := range p.Sentences {
			rec.Sentences = append(rec.Sentences, s.Tokens)
			rec.Informative = append(rec.Informative, s.Informative)
			if s.Attr != nil {
				rec.Attributes = append(rec.Attributes, ExportAttr{
					Label:    s.Attr.Label,
					Value:    s.Attr.Value,
					Level:    s.Attr.Level,
					Sentence: si,
					Start:    s.AttrStart,
					End:      s.AttrEnd,
				})
			}
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("corpus: export %s: %w", p.ID, err)
		}
	}
	return bw.Flush()
}

// ImportJSONL reads pages written by ExportJSONL. Pages round-trip except
// for HTML when it was exported without markup.
func ImportJSONL(r io.Reader) ([]*Page, error) {
	dec := json.NewDecoder(r)
	var pages []*Page
	for dec.More() {
		var rec ExportRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("corpus: import: %w", err)
		}
		p := &Page{
			ID:     rec.ID,
			Domain: rec.Domain,
			Topic:  rec.Topic,
			HTML:   rec.HTML,
		}
		attrBySentence := map[int]ExportAttr{}
		for _, a := range rec.Attributes {
			attrBySentence[a.Sentence] = a
		}
		for si, toks := range rec.Sentences {
			s := Sentence{Tokens: toks}
			if si < len(rec.Informative) {
				s.Informative = rec.Informative[si]
			}
			if a, ok := attrBySentence[si]; ok {
				s.Attr = &AttrInstance{Label: a.Label, Value: a.Value, Level: a.Level}
				s.AttrStart, s.AttrEnd = a.Start, a.End
			}
			p.Sentences = append(p.Sentences, s)
		}
		pages = append(pages, p)
	}
	return pages, nil
}
