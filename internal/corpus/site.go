package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Site is a generated website: a homepage, index pages, media pages and
// content-rich pages connected by links. It is the input the
// structure-driven crawler of §IV-A1 [24] walks — the paper downloads
// 1,500–2,000 content-rich pages per website and excludes indexing and
// multimedia pages; internal/crawler reproduces that filtering against
// these sites.
type Site struct {
	Domain string
	Home   string            // homepage URL
	Pages  map[string]string // url → HTML for every page on the site

	// Ground truth for crawler evaluation.
	ContentURLs []string
	IndexURLs   []string
	MediaURLs   []string

	// ContentPages maps a content URL to its labelled Page.
	ContentPages map[string]*Page
}

// GenerateSite builds a website for domain d with numContent content-rich
// pages, plus index and media pages in realistic proportions. All URLs are
// site-absolute paths.
func GenerateSite(d *Domain, numContent int, rng *rand.Rand) *Site {
	s := &Site{
		Domain:       d.Name,
		Home:         "/index.html",
		Pages:        map[string]string{},
		ContentPages: map[string]*Page{},
	}

	// Content pages, re-using the labelled page generator; a nav block of
	// links is prepended so content pages interlink like real sites.
	for i := 0; i < numContent; i++ {
		url := fmt.Sprintf("/%s/item%03d.html", d.Name, i)
		s.ContentURLs = append(s.ContentURLs, url)
		s.ContentPages[url] = GeneratePage(d, i, rng)
	}

	// Index pages: mostly links, little text (the crawler must skip them).
	numIndex := 2 + numContent/8
	for i := 0; i < numIndex; i++ {
		s.IndexURLs = append(s.IndexURLs, fmt.Sprintf("/%s/list%02d.html", d.Name, i))
	}

	// Media pages: video/image players with minimal text.
	numMedia := 1 + numContent/10
	for i := 0; i < numMedia; i++ {
		s.MediaURLs = append(s.MediaURLs, fmt.Sprintf("/%s/media%02d.html", d.Name, i))
	}

	// Assemble HTML. Content pages link to the home page, the next content
	// page and a media page, mirroring "related items" chrome.
	for i, url := range s.ContentURLs {
		var extra strings.Builder
		extra.WriteString(`<div class="sitelinks"><a href="/index.html">home</a>`)
		next := s.ContentURLs[(i+1)%len(s.ContentURLs)]
		fmt.Fprintf(&extra, ` <a href="%s">next item</a>`, next)
		fmt.Fprintf(&extra, ` <a href="%s">gallery</a></div>`, s.MediaURLs[i%len(s.MediaURLs)])
		html := s.ContentPages[url].HTML
		html = strings.Replace(html, "</body>", extra.String()+"\n</body>", 1)
		s.Pages[url] = html
	}

	// Each index page links a share of the content pages plus other index
	// pages.
	for i, url := range s.IndexURLs {
		var b strings.Builder
		b.WriteString("<!DOCTYPE html>\n<html><head><title>listing</title></head><body>\n<ul>\n")
		for j, curl := range s.ContentURLs {
			if j%numIndex == i {
				fmt.Fprintf(&b, `<li><a href="%s">item %d</a></li>`+"\n", curl, j)
			}
		}
		for j, iurl := range s.IndexURLs {
			if j != i {
				fmt.Fprintf(&b, `<li><a href="%s">more listings %d</a></li>`+"\n", iurl, j)
			}
		}
		b.WriteString("</ul>\n<a href=\"/index.html\">home</a>\n</body></html>\n")
		s.Pages[url] = b.String()
	}

	// Media pages: a video element and thumbnails, nearly no text.
	for i, url := range s.MediaURLs {
		s.Pages[url] = fmt.Sprintf(`<!DOCTYPE html>
<html><head><title>media %d</title></head><body>
<video src="/assets/clip%d.mp4" controls></video>
<img src="/assets/thumb%da.jpg"><img src="/assets/thumb%db.jpg">
<a href="/index.html">home</a>
</body></html>
`, i, i, i, i)
	}

	// Homepage links to the index pages and a media page.
	var home strings.Builder
	home.WriteString("<!DOCTYPE html>\n<html><head><title>" + strings.Join(d.Topic, " ") + "</title></head><body>\n")
	home.WriteString("<h1>welcome</h1>\n<ul>\n")
	for i, iurl := range s.IndexURLs {
		fmt.Fprintf(&home, `<li><a href="%s">browse section %d</a></li>`+"\n", iurl, i)
	}
	fmt.Fprintf(&home, `<li><a href="%s">media gallery</a></li>`+"\n", s.MediaURLs[0])
	home.WriteString("</ul>\n</body></html>\n")
	s.Pages[s.Home] = home.String()

	return s
}
