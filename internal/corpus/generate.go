package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"webbrief/internal/textproc"
)

// AttrInstance is one labelled key attribute on a page: its schema label and
// the normalised tokens of its value. Level distinguishes the WB hierarchy
// levels of §I: 1 is a high-level attribute (a more precise category of the
// page, e.g. "nonfiction books"); 2 (the default for plain pages, stored as
// 0 for compatibility) is a detailed attribute (title, price, ...).
type AttrInstance struct {
	Label string
	Value []string
	Level int
}

// Sentence is one sentence of a page in normalised token space, with its
// informative-section label and, if it carries a key attribute, the value's
// token span [AttrStart, AttrEnd).
type Sentence struct {
	Tokens      []string
	Informative bool
	Attr        *AttrInstance
	AttrStart   int
	AttrEnd     int
}

// Page is one labelled synthetic webpage.
type Page struct {
	ID        string
	Domain    string
	Topic     []string // ground-truth topic phrase tokens
	HTML      string   // full markup; rendering it reproduces Sentences
	Sentences []Sentence
}

// Attributes returns the page's key attributes in document order.
func (p *Page) Attributes() []AttrInstance {
	var out []AttrInstance
	for _, s := range p.Sentences {
		if s.Attr != nil {
			out = append(out, *s.Attr)
		}
	}
	return out
}

// genValue synthesises an attribute value of the given kind as normalised
// tokens.
func genValue(kind AttrKind, d *Domain, rng *rand.Rand) []string {
	switch kind {
	case KindMoney:
		return []string{"$", textproc.DigitToken, ".", textproc.DigitToken}
	case KindNumber:
		return []string{textproc.DigitToken}
	case KindName:
		return []string{
			firstNames[rng.Intn(len(firstNames))],
			lastNames[rng.Intn(len(lastNames))],
		}
	default: // KindPhrase
		n := 1 + rng.Intn(3)
		seen := make(map[int]bool, n)
		toks := make([]string, 0, n)
		for len(toks) < n {
			i := rng.Intn(len(d.Words))
			if seen[i] {
				continue
			}
			seen[i] = true
			toks = append(toks, d.Words[i])
		}
		return toks
	}
}

// attrSentence builds the sentence carrying an attribute, phrased in the
// domain's style: "label : value", "value ( label )", "label - value" or
// bare "label value".
func attrSentence(schema AttrSchema, d *Domain, rng *rand.Rand) Sentence {
	value := genValue(schema.Kind, d, rng)
	labelToks := textproc.Normalize(schema.Label)
	var toks []string
	var start int
	switch d.Style {
	case StyleParen:
		start = 0
		toks = append(append([]string{}, value...), "(")
		toks = append(toks, labelToks...)
		toks = append(toks, ")")
	case StyleDash:
		toks = append(append([]string{}, labelToks...), "-")
		start = len(toks)
		toks = append(toks, value...)
	case StyleBare:
		toks = append([]string{}, labelToks...)
		start = len(toks)
		toks = append(toks, value...)
	default: // StyleColon
		toks = append(append([]string{}, labelToks...), ":")
		start = len(toks)
		toks = append(toks, value...)
	}
	return Sentence{
		Tokens:      toks,
		Informative: true,
		Attr:        &AttrInstance{Label: schema.Label, Value: value},
		AttrStart:   start,
		AttrEnd:     start + len(value),
	}
}

// fillerSentence builds an informative filler sentence from the domain
// vocabulary, e.g. "the hardcover is popular with visitors".
func fillerSentence(d *Domain, rng *rand.Rand) Sentence {
	conn := fillerConnectives[rng.Intn(len(fillerConnectives))]
	toks := textproc.Normalize(conn[0])
	toks = append(toks, d.Words[rng.Intn(len(d.Words))])
	if rng.Intn(2) == 0 {
		toks = append(toks, d.Words[rng.Intn(len(d.Words))])
	}
	toks = append(toks, textproc.Normalize(conn[1])...)
	if rng.Intn(3) == 0 {
		toks = append(toks, ".")
	}
	return Sentence{Tokens: toks, Informative: true}
}

// boilerplate returns one shared non-informative sentence.
func boilerplate(rng *rand.Rand) Sentence {
	src := boilerplateSentences[rng.Intn(len(boilerplateSentences))]
	return Sentence{Tokens: append([]string{}, src...), Informative: false}
}

// buildParts assembles a page's four structural blocks.
func buildParts(d *Domain, rng *rand.Rand) (nav, main, aside, footer []Sentence) {
	for n := 1 + rng.Intn(2); n > 0; n-- {
		nav = append(nav, boilerplate(rng))
	}
	// Main: the four attribute sentences interleaved with filler.
	for _, schema := range d.Attrs {
		main = append(main, attrSentence(schema, d, rng))
		for n := rng.Intn(2); n > 0; n-- {
			main = append(main, fillerSentence(d, rng))
		}
	}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		main = append(main, fillerSentence(d, rng))
	}
	for n := 1 + rng.Intn(2); n > 0; n-- {
		aside = append(aside, boilerplate(rng))
	}
	for n := 2 + rng.Intn(2); n > 0; n-- {
		footer = append(footer, boilerplate(rng))
	}
	return nav, main, aside, footer
}

// assemblePage finalises a page from its blocks.
func assemblePage(d *Domain, id int, nav, main, aside, footer []Sentence, rng *rand.Rand) *Page {
	var sentences []Sentence
	sentences = append(sentences, nav...)
	sentences = append(sentences, main...)
	sentences = append(sentences, aside...)
	sentences = append(sentences, footer...)
	p := &Page{
		ID:        fmt.Sprintf("%s-%04d", d.Name, id),
		Domain:    d.Name,
		Topic:     append([]string{}, d.Topic...),
		Sentences: sentences,
	}
	p.HTML = renderHTML(d, nav, main, aside, footer, rng)
	return p
}

// GeneratePage builds one labelled page for domain d. The id only feeds the
// page identifier; all randomness comes from rng, so generation is
// deterministic for a fixed seed.
func GeneratePage(d *Domain, id int, rng *rand.Rand) *Page {
	nav, main, aside, footer := buildParts(d, rng)
	return assemblePage(d, id, nav, main, aside, footer, rng)
}

// categoryQualifiers combine with a domain word to form the high-level
// category attribute of hierarchical pages ("classic novel", "featured
// suite").
var categoryQualifiers = []string{"featured", "classic", "premium", "popular", "seasonal"}

// GeneratePageHier builds a page with an extra HIGH-LEVEL key attribute — a
// category phrase placed at the top of the main content, the "more precise
// topic or category of the webpage" of §I's hierarchy. The category
// sentence is always colon-style ("category : classic novel"), like real
// breadcrumb lines. Detailed attributes keep Level 0; the category carries
// Level 1.
func GeneratePageHier(d *Domain, id int, rng *rand.Rand) *Page {
	nav, main, aside, footer := buildParts(d, rng)
	value := []string{
		categoryQualifiers[rng.Intn(len(categoryQualifiers))],
		d.Words[rng.Intn(len(d.Words))],
	}
	toks := []string{"category", ":"}
	cat := Sentence{
		Tokens:      append(toks, value...),
		Informative: true,
		Attr:        &AttrInstance{Label: "category", Value: value, Level: 1},
		AttrStart:   len(toks),
		AttrEnd:     len(toks) + len(value),
	}
	main = append([]Sentence{cat}, main...)
	return assemblePage(d, id, nav, main, aside, footer, rng)
}

// surface converts normalised tokens to the display text written into the
// HTML. <digit> placeholders become concrete numbers; everything else is
// joined with spaces (textproc.Normalize re-splits punctuation, so the
// round trip is exact).
func surface(toks []string, rng *rand.Rand) string {
	out := make([]string, len(toks))
	for i, tok := range toks {
		if tok == textproc.DigitToken {
			out[i] = fmt.Sprintf("%d", 1+rng.Intn(9999))
		} else {
			out[i] = tok
		}
	}
	return strings.Join(out, " ")
}

// renderHTML serialises the page structure to markup. Every sentence is
// emitted inside its own block element so htmldom.VisibleLines yields
// exactly one line per sentence; a hidden tracking div and script/style
// content exercise the renderer's invisibility rules without affecting
// labels.
func renderHTML(d *Domain, nav, main, aside, footer []Sentence, rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", strings.Join(d.Topic, " "))
	b.WriteString("<style>.price { font-weight: bold } nav { color: blue }</style>\n")
	b.WriteString("<script>var tracking = { visits: 1 };</script>\n")
	b.WriteString("</head>\n<body>\n<nav>\n")
	for _, s := range nav {
		fmt.Fprintf(&b, "  <div class=\"nav-item\">%s</div>\n", surface(s.Tokens, rng))
	}
	b.WriteString("</nav>\n<main>\n")
	for i, s := range main {
		tag := "p"
		if i == 0 {
			tag = "h1"
		} else if s.Attr != nil {
			tag = "div"
		}
		fmt.Fprintf(&b, "  <%s>%s</%s>\n", tag, surface(s.Tokens, rng), tag)
	}
	b.WriteString("</main>\n<aside>\n")
	for _, s := range aside {
		fmt.Fprintf(&b, "  <div class=\"ad\">%s</div>\n", surface(s.Tokens, rng))
	}
	b.WriteString("</aside>\n")
	b.WriteString("<div style=\"display:none\">tracking pixel content</div>\n")
	b.WriteString("<footer>\n")
	for _, s := range footer {
		fmt.Fprintf(&b, "  <div>%s</div>\n", surface(s.Tokens, rng))
	}
	b.WriteString("</footer>\n</body>\n</html>\n")
	return b.String()
}
