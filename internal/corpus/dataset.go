package corpus

import (
	"fmt"
	"math/rand"

	"webbrief/internal/htmldom"
	"webbrief/internal/textproc"
)

// Config controls dataset generation.
type Config struct {
	Seed           int64
	PagesPerDomain int
	SeenDomains    int // first N domains are "seen" (teacher training)
	UnseenDomains  int // next M domains are "unseen" (distillation target)
}

// DefaultConfig mirrors the paper's setting at reproduction scale: most
// domains seen during teacher pre-training, a smaller set held out as
// previously unseen, matching the 140-train / 20-new topic split of §IV-B.
func DefaultConfig() Config {
	return Config{Seed: 1, PagesPerDomain: 30, SeenDomains: 16, UnseenDomains: 8}
}

// Dataset is a generated corpus with its domain split.
type Dataset struct {
	Config  Config
	Domains []Domain
	Seen    []string // seen domain names
	Unseen  []string // unseen domain names
	Pages   []*Page  // all pages, grouped by domain in generation order
}

// Generate builds the corpus deterministically from cfg.
func Generate(cfg Config) (*Dataset, error) {
	all := Domains()
	if cfg.SeenDomains+cfg.UnseenDomains > len(all) {
		return nil, fmt.Errorf("corpus: %d+%d domains requested, only %d defined",
			cfg.SeenDomains, cfg.UnseenDomains, len(all))
	}
	if cfg.PagesPerDomain <= 0 {
		return nil, fmt.Errorf("corpus: PagesPerDomain must be positive")
	}
	ds := &Dataset{Config: cfg, Domains: all[:cfg.SeenDomains+cfg.UnseenDomains]}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range ds.Domains {
		d := &ds.Domains[i]
		if i < cfg.SeenDomains {
			ds.Seen = append(ds.Seen, d.Name)
		} else {
			ds.Unseen = append(ds.Unseen, d.Name)
		}
		for j := 0; j < cfg.PagesPerDomain; j++ {
			ds.Pages = append(ds.Pages, GeneratePage(d, j, rng))
		}
	}
	return ds, nil
}

// IsSeen reports whether the named domain is in the seen split.
func (d *Dataset) IsSeen(domain string) bool {
	for _, s := range d.Seen {
		if s == domain {
			return true
		}
	}
	return false
}

// PagesOf returns pages filtered by a predicate on the domain name.
func (d *Dataset) PagesOf(keep func(domain string) bool) []*Page {
	var out []*Page
	for _, p := range d.Pages {
		if keep(p.Domain) {
			out = append(out, p)
		}
	}
	return out
}

// Split shuffles pages with the dataset seed and partitions them into the
// paper's 80%-10%-10% train/dev/test split.
func Split(pages []*Page, seed int64) (train, dev, test []*Page) {
	shuffled := append([]*Page{}, pages...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	nTrain := len(shuffled) * 8 / 10
	nDev := len(shuffled) / 10
	return shuffled[:nTrain], shuffled[nTrain : nTrain+nDev], shuffled[nTrain+nDev:]
}

// BIO tag values for attribute extraction.
const (
	TagO = 0
	TagB = 1
	TagI = 2
	// NumTags is the size of the tag set.
	NumTags = 3
)

// Encoded is a page flattened into the model input representation of
// §III-C: one token stream with a [CLS] token opening each sentence,
// parallel BIO attribute tags, per-token sentence indices, and per-sentence
// informative labels.
type Encoded struct {
	Page     *Page
	Words    []string // flat tokens including [CLS] markers
	SentOf   []int    // sentence index of each token
	ClsIdx   []int    // position of each sentence's [CLS]
	Tags     []int    // BIO per token ([CLS] positions are TagO)
	Levels   []int    // hierarchy level of the token's attribute (see AttrInstance.Level); 0 where Tags is TagO
	SentInfo []int    // 1 if sentence is informative
	Segments []int    // BERTSUM alternating interval segment ids
}

// Encode flattens the page. maxTokens>0 truncates the stream (the paper
// zero-pads/truncates documents to a fixed length; truncation is the part
// that affects labels).
func (p *Page) Encode(maxTokens int) *Encoded {
	e := &Encoded{Page: p}
	for si, s := range p.Sentences {
		e.ClsIdx = append(e.ClsIdx, len(e.Words))
		e.Words = append(e.Words, textproc.ClsToken)
		e.Tags = append(e.Tags, TagO)
		e.Levels = append(e.Levels, 0)
		e.SentOf = append(e.SentOf, si)
		e.Segments = append(e.Segments, si%2)
		for ti, tok := range s.Tokens {
			e.Words = append(e.Words, tok)
			e.SentOf = append(e.SentOf, si)
			e.Segments = append(e.Segments, si%2)
			tag, level := TagO, 0
			if s.Attr != nil && ti >= s.AttrStart && ti < s.AttrEnd {
				level = s.Attr.Level
				if ti == s.AttrStart {
					tag = TagB
				} else {
					tag = TagI
				}
			}
			e.Tags = append(e.Tags, tag)
			e.Levels = append(e.Levels, level)
		}
		info := 0
		if s.Informative {
			info = 1
		}
		e.SentInfo = append(e.SentInfo, info)
	}
	if maxTokens > 0 && len(e.Words) > maxTokens {
		e.Words = e.Words[:maxTokens]
		e.Tags = e.Tags[:maxTokens]
		e.Levels = e.Levels[:maxTokens]
		e.SentOf = e.SentOf[:maxTokens]
		e.Segments = e.Segments[:maxTokens]
		lastSent := e.SentOf[len(e.SentOf)-1]
		var cls []int
		for _, c := range e.ClsIdx {
			if c < maxTokens {
				cls = append(cls, c)
			}
		}
		e.ClsIdx = cls
		e.SentInfo = e.SentInfo[:lastSent+1]
	}
	return e
}

// GoldSpans returns the attribute value spans as [start, end) offsets into
// the flattened token stream, the unit precision/recall/F1 are computed
// over.
func (e *Encoded) GoldSpans() [][2]int {
	var spans [][2]int
	for i := 0; i < len(e.Tags); i++ {
		if e.Tags[i] == TagB {
			j := i + 1
			for j < len(e.Tags) && e.Tags[j] == TagI {
				j++
			}
			spans = append(spans, [2]int{i, j})
			i = j - 1
		}
	}
	return spans
}

// WordCounts accumulates token frequencies over pages (topic tokens
// included), the input to vocabulary building.
func WordCounts(pages []*Page) map[string]int {
	counts := make(map[string]int)
	for _, p := range pages {
		for _, s := range p.Sentences {
			for _, tok := range s.Tokens {
				counts[tok]++
			}
		}
		for _, tok := range p.Topic {
			counts[tok]++
		}
	}
	return counts
}

// BuildVocab constructs the word vocabulary over pages with no frequency
// cutoff: the synthetic corpus has no hapax noise worth pruning.
func BuildVocab(pages []*Page) *textproc.Vocab {
	return textproc.BuildVocab(WordCounts(pages), 1)
}

// ReparseFromHTML re-derives a page's sentence token stream by parsing its
// HTML and running the textproc pipeline — the path an external page takes.
// It is used by tests to assert that generated labels align with what the
// rendering pipeline produces, and by the CLI to process arbitrary pages.
func ReparseFromHTML(html string) [][]string {
	doc := htmldom.Parse(html)
	return textproc.NormalizeDocument(htmldom.VisibleLines(doc))
}

// ConcatPages builds the synthetic two-topic page of the sensitivity study
// (§IV-D): the first propA proportion of content comes from page a, the
// remaining 1-propA proportion from page b, by sentence count. The result
// keeps a's topic as its nominal ground truth; the study measures which
// source a model's prediction actually follows (position vs. length).
func ConcatPages(a, b *Page, propA float64) *Page {
	nA := clamp(int(propA*float64(len(a.Sentences))+0.5), 1, len(a.Sentences))
	nB := clamp(int((1-propA)*float64(len(b.Sentences))+0.5), 1, len(b.Sentences))
	sents := make([]Sentence, 0, nA+nB)
	sents = append(sents, a.Sentences[:nA]...)
	sents = append(sents, b.Sentences[:nB]...)
	return &Page{
		ID:        a.ID + "+" + b.ID,
		Domain:    a.Domain,
		Topic:     append([]string{}, a.Topic...),
		Sentences: sents,
	}
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
