// Package corpus generates the labelled synthetic webpage dataset that
// substitutes for the paper's 655K crawled pages (Jasmine Directory + SWDE,
// §IV-A1). Each generated page is real HTML — rendered through
// internal/htmldom and normalised through internal/textproc exactly like an
// external page would be — and carries the three ground-truth signals the
// models consume: the topic phrase, the key-attribute token spans, and the
// per-sentence informative-section labels.
//
// Pages are built structure-first: a list of sections, each a list of
// sentences with attribute annotations, is generated, then serialised to
// HTML. The generator guarantees (and tests assert) that rendering the HTML
// and re-normalising it reproduces the structure's token stream, so labels
// align with model inputs by construction.
package corpus

// AttrKind selects how an attribute's value is synthesised.
type AttrKind int

// Attribute value kinds.
const (
	KindPhrase AttrKind = iota // 1–3 words from the domain vocabulary
	KindMoney                  // $<digit>.<digit>
	KindNumber                 // bare <digit>
	KindName                   // person name from the shared name pools
)

// AttrSchema is one attribute type a domain's pages carry, e.g. {“price”,
// KindMoney} on shopping pages.
type AttrSchema struct {
	Label string
	Kind  AttrKind
}

// AttrStyle selects how a domain's pages phrase their attribute sentences.
// Styles are what make attribute extraction non-trivially domain-dependent:
// a model trained only on colon-style domains must adapt to the formats of
// unseen domains, which is exactly the gap Dual-/Tri-Distill close in the
// paper's Table V.
type AttrStyle int

// Attribute sentence styles.
const (
	// StyleColon phrases attributes as "label : value" (most common).
	StyleColon AttrStyle = iota
	// StyleParen phrases them as "value ( label )".
	StyleParen
	// StyleDash phrases them as "label - value".
	StyleDash
	// StyleBare phrases them as "label value" with no separator. No seen
	// domain uses it, so it is only learnable from unseen-domain data.
	StyleBare
)

// Domain is one webpage topic category, the unit of the paper's seen/unseen
// splits (153 Jasmine topics + 7 SWDE topics there; 24 domains here).
type Domain struct {
	Name  string   // stable identifier, e.g. "books"
	Topic []string // the ground-truth topic phrase, already normalised
	Attrs [4]AttrSchema
	Words []string  // domain-distinctive content vocabulary
	Style AttrStyle // how attribute sentences are phrased
}

// domainStyles assigns attribute-sentence styles by position. The first 16
// domains (the usual "seen" pool) are mostly colon-style with a small
// admixture of paren/dash, so those formats are familiar but rare; the last
// 8 (the usual "unseen" pool) lean on paren/dash and introduce StyleBare,
// which no seen domain ever uses — mirroring how real unseen websites phrase
// content in ways the training data never showed.
var domainStyles = []AttrStyle{
	StyleColon, StyleColon, StyleColon, StyleColon, StyleColon, StyleParen,
	StyleColon, StyleColon, StyleColon, StyleColon, StyleColon, StyleDash,
	StyleColon, StyleColon, StyleColon, StyleColon,
	StyleParen, StyleDash, StyleBare, StyleParen, StyleDash, StyleBare,
	StyleBare, StyleParen,
}

// Domains returns the full set of 24 webpage domains in a fixed order. The
// slice is freshly allocated; callers may re-slice it for seen/unseen
// splits.
func Domains() []Domain {
	ds := domainList()
	for i := range ds {
		ds[i].Style = domainStyles[i]
	}
	return ds
}

func domainList() []Domain {
	return []Domain{
		{
			Name:  "books",
			Topic: []string{"book", "shopping", "website"},
			Attrs: [4]AttrSchema{{"title", KindPhrase}, {"author", KindName}, {"price", KindMoney}, {"pages", KindNumber}},
			Words: []string{"book", "novel", "hardcover", "paperback", "edition", "chapter", "publisher", "bestseller", "fiction", "reading", "library", "bookstore", "literature", "printing"},
		},
		{
			Name:  "jobs",
			Topic: []string{"job", "recruitment", "website"},
			Attrs: [4]AttrSchema{{"position", KindPhrase}, {"company", KindPhrase}, {"salary", KindMoney}, {"openings", KindNumber}},
			Words: []string{"engineer", "manager", "analyst", "developer", "career", "hiring", "resume", "interview", "salary", "benefits", "fulltime", "remote", "candidate", "recruiter"},
		},
		{
			Name:  "sportsnews",
			Topic: []string{"sports", "news", "website"},
			Attrs: [4]AttrSchema{{"headline", KindPhrase}, {"reporter", KindName}, {"score", KindNumber}, {"attendance", KindNumber}},
			Words: []string{"match", "season", "championship", "league", "tournament", "coach", "playoffs", "stadium", "victory", "defense", "striker", "transfer", "injury", "goalkeeper"},
		},
		{
			Name:  "recipes",
			Topic: []string{"recipe", "cooking", "website"},
			Attrs: [4]AttrSchema{{"dish", KindPhrase}, {"chef", KindName}, {"minutes", KindNumber}, {"servings", KindNumber}},
			Words: []string{"recipe", "ingredients", "oven", "baking", "simmer", "garlic", "butter", "flour", "seasoning", "skillet", "roasted", "marinade", "tablespoon", "whisk"},
		},
		{
			Name:  "hotels",
			Topic: []string{"hotel", "booking", "website"},
			Attrs: [4]AttrSchema{{"hotel", KindPhrase}, {"city", KindPhrase}, {"rate", KindMoney}, {"rooms", KindNumber}},
			Words: []string{"hotel", "suite", "reservation", "checkin", "amenities", "lobby", "concierge", "breakfast", "oceanview", "resort", "housekeeping", "nightly", "vacancy", "guest"},
		},
		{
			Name:  "cars",
			Topic: []string{"car", "sales", "website"},
			Attrs: [4]AttrSchema{{"model", KindPhrase}, {"dealer", KindPhrase}, {"price", KindMoney}, {"mileage", KindNumber}},
			Words: []string{"sedan", "engine", "transmission", "horsepower", "dealership", "warranty", "hybrid", "mileage", "torque", "airbags", "convertible", "diesel", "towing", "chassis"},
		},
		{
			Name:  "courses",
			Topic: []string{"university", "course", "website"},
			Attrs: [4]AttrSchema{{"course", KindPhrase}, {"instructor", KindName}, {"credits", KindNumber}, {"enrollment", KindNumber}},
			Words: []string{"lecture", "syllabus", "semester", "campus", "professor", "tutorial", "assignment", "curriculum", "seminar", "faculty", "undergraduate", "prerequisite", "thesis", "exam"},
		},
		{
			Name:  "movies",
			Topic: []string{"movie", "review", "website"},
			Attrs: [4]AttrSchema{{"film", KindPhrase}, {"director", KindName}, {"rating", KindNumber}, {"runtime", KindNumber}},
			Words: []string{"film", "screenplay", "cinematography", "premiere", "trailer", "actor", "thriller", "blockbuster", "soundtrack", "audience", "critics", "drama", "sequel", "cast"},
		},
		{
			Name:  "music",
			Topic: []string{"music", "streaming", "website"},
			Attrs: [4]AttrSchema{{"album", KindPhrase}, {"artist", KindName}, {"tracks", KindNumber}, {"listeners", KindNumber}},
			Words: []string{"album", "playlist", "acoustic", "vinyl", "concert", "melody", "chorus", "studio", "remix", "vocals", "rhythm", "guitar", "streaming", "lyrics"},
		},
		{
			Name:  "travel",
			Topic: []string{"travel", "guide", "website"},
			Attrs: [4]AttrSchema{{"destination", KindPhrase}, {"guide", KindName}, {"days", KindNumber}, {"budget", KindMoney}},
			Words: []string{"itinerary", "sightseeing", "passport", "excursion", "landmark", "souvenir", "airfare", "backpacking", "museum", "coastline", "hiking", "cathedral", "tropical", "voyage"},
		},
		{
			Name:  "realestate",
			Topic: []string{"real", "estate", "website"},
			Attrs: [4]AttrSchema{{"property", KindPhrase}, {"agent", KindName}, {"price", KindMoney}, {"bedrooms", KindNumber}},
			Words: []string{"apartment", "mortgage", "listing", "basement", "backyard", "renovated", "square", "footage", "realtor", "downtown", "garage", "hardwood", "utilities", "tenant"},
		},
		{
			Name:  "electronics",
			Topic: []string{"electronics", "shopping", "website"},
			Attrs: [4]AttrSchema{{"product", KindPhrase}, {"brand", KindPhrase}, {"price", KindMoney}, {"warranty", KindNumber}},
			Words: []string{"laptop", "smartphone", "processor", "battery", "display", "wireless", "charger", "bluetooth", "gigabyte", "headphones", "keyboard", "monitor", "tablet", "firmware"},
		},
		{
			Name:  "health",
			Topic: []string{"health", "advice", "website"},
			Attrs: [4]AttrSchema{{"condition", KindPhrase}, {"doctor", KindName}, {"dosage", KindNumber}, {"duration", KindNumber}},
			Words: []string{"symptoms", "treatment", "diagnosis", "prescription", "vitamins", "immune", "allergy", "therapy", "wellness", "nutrition", "clinic", "vaccine", "chronic", "recovery"},
		},
		{
			Name:  "fitness",
			Topic: []string{"fitness", "training", "website"},
			Attrs: [4]AttrSchema{{"workout", KindPhrase}, {"trainer", KindName}, {"reps", KindNumber}, {"calories", KindNumber}},
			Words: []string{"workout", "cardio", "strength", "treadmill", "dumbbell", "stretching", "endurance", "muscles", "squats", "yoga", "pilates", "warmup", "hydration", "posture"},
		},
		{
			Name:  "pets",
			Topic: []string{"pet", "adoption", "website"},
			Attrs: [4]AttrSchema{{"pet", KindPhrase}, {"shelter", KindPhrase}, {"fee", KindMoney}, {"age", KindNumber}},
			Words: []string{"puppy", "kitten", "adoption", "veterinary", "grooming", "leash", "vaccinated", "neutered", "foster", "breed", "terrier", "whiskers", "paws", "kennel"},
		},
		{
			Name:  "events",
			Topic: []string{"event", "ticket", "website"},
			Attrs: [4]AttrSchema{{"event", KindPhrase}, {"venue", KindPhrase}, {"price", KindMoney}, {"capacity", KindNumber}},
			Words: []string{"festival", "concert", "venue", "tickets", "admission", "lineup", "headliner", "backstage", "seating", "doors", "performance", "encore", "matinee", "usher"},
		},
		{
			Name:  "garden",
			Topic: []string{"garden", "supply", "website"},
			Attrs: [4]AttrSchema{{"plant", KindPhrase}, {"nursery", KindPhrase}, {"price", KindMoney}, {"height", KindNumber}},
			Words: []string{"seedling", "perennial", "fertilizer", "compost", "pruning", "greenhouse", "blossom", "mulch", "trellis", "watering", "shrub", "foliage", "pollinator", "orchid"},
		},
		{
			Name:  "fashion",
			Topic: []string{"fashion", "shopping", "website"},
			Attrs: [4]AttrSchema{{"item", KindPhrase}, {"designer", KindName}, {"price", KindMoney}, {"sizes", KindNumber}},
			Words: []string{"dress", "jacket", "denim", "leather", "runway", "boutique", "tailored", "fabric", "collection", "sneakers", "accessories", "vintage", "wardrobe", "silhouette"},
		},
		{
			Name:  "software",
			Topic: []string{"software", "download", "website"},
			Attrs: [4]AttrSchema{{"application", KindPhrase}, {"vendor", KindPhrase}, {"license", KindMoney}, {"downloads", KindNumber}},
			Words: []string{"installer", "update", "plugin", "interface", "database", "encryption", "backup", "compatibility", "changelog", "toolkit", "framework", "repository", "debugger", "runtime"},
		},
		{
			Name:  "games",
			Topic: []string{"game", "review", "website"},
			Attrs: [4]AttrSchema{{"game", KindPhrase}, {"studio", KindPhrase}, {"score", KindNumber}, {"hours", KindNumber}},
			Words: []string{"gameplay", "multiplayer", "quest", "console", "graphics", "storyline", "character", "dungeon", "achievements", "expansion", "arcade", "puzzle", "leaderboard", "campaign"},
		},
		{
			Name:  "finance",
			Topic: []string{"finance", "news", "website"},
			Attrs: [4]AttrSchema{{"headline", KindPhrase}, {"analyst", KindName}, {"index", KindNumber}, {"change", KindNumber}},
			Words: []string{"market", "stocks", "earnings", "dividend", "portfolio", "inflation", "revenue", "investors", "quarterly", "shares", "bonds", "forecast", "merger", "volatility"},
		},
		{
			Name:  "insurance",
			Topic: []string{"insurance", "quote", "website"},
			Attrs: [4]AttrSchema{{"policy", KindPhrase}, {"insurer", KindPhrase}, {"premium", KindMoney}, {"coverage", KindNumber}},
			Words: []string{"premium", "deductible", "liability", "claim", "coverage", "policyholder", "underwriting", "renewal", "quote", "collision", "comprehensive", "actuary", "beneficiary", "copay"},
		},
		{
			Name:  "restaurants",
			Topic: []string{"restaurant", "menu", "website"},
			Attrs: [4]AttrSchema{{"dish", KindPhrase}, {"chef", KindName}, {"price", KindMoney}, {"tables", KindNumber}},
			Words: []string{"appetizer", "entree", "dessert", "cuisine", "bistro", "reservation", "sommelier", "tasting", "grilled", "organic", "patio", "brunch", "specials", "dining"},
		},
		{
			Name:  "art",
			Topic: []string{"art", "gallery", "website"},
			Attrs: [4]AttrSchema{{"artwork", KindPhrase}, {"artist", KindName}, {"price", KindMoney}, {"year", KindNumber}},
			Words: []string{"painting", "sculpture", "canvas", "exhibition", "watercolor", "portrait", "abstract", "curator", "gallery", "installation", "sketch", "palette", "ceramics", "etching"},
		},
	}
}

// DomainByName returns the domain with the given name, or nil.
func DomainByName(name string) *Domain {
	ds := Domains()
	for i := range ds {
		if ds[i].Name == name {
			return &ds[i]
		}
	}
	return nil
}

// firstNames and lastNames feed KindName attribute values; they are shared
// across domains like real person names are.
var firstNames = []string{
	"emma", "liam", "olivia", "noah", "ava", "ethan", "sophia", "mason",
	"isabella", "logan", "mia", "lucas", "charlotte", "oliver", "amelia", "elijah",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "wilson", "anderson", "taylor", "thomas",
}

// boilerplateSentences is the shared pool of non-informative content:
// navigation, account chrome, legal footers, and ads. They appear on pages
// of every domain, which is what makes informative-section prediction a
// learnable, non-trivial task.
var boilerplateSentences = [][]string{
	{"home", "about", "contact", "help"},
	{"sign", "in", "or", "register", "for", "free"},
	{"copyright", "<digit>", "all", "rights", "reserved"},
	{"subscribe", "to", "our", "newsletter", "today"},
	{"follow", "us", "on", "social", "media"},
	{"privacy", "policy", "and", "terms", "of", "service"},
	{"buy", "now", "limited", "time", "offer"},
	{"free", "shipping", "on", "orders", "over", "$", "<digit>"},
	{"download", "our", "mobile", "app", "now"},
	{"join", "<digit>", "million", "happy", "customers"},
	{"advertisement", "sponsored", "content"},
	{"cookie", "settings", "accept", "all", "cookies"},
	{"support", ":", "contact", "us", "anytime"},
	{"hours", ":", "open", "every", "day"},
	{"site", "map", "careers", "press", "blog"},
	{"customer", "support", "available", "<digit>", "hours"},
	{"back", "to", "top", "of", "page"},
}

// fillerConnectives build informative filler sentences around the domain
// vocabulary.
var fillerConnectives = [][2]string{
	{"the", "is popular with visitors"},
	{"this", "has excellent quality"},
	{"our", "was updated recently"},
	{"every", "comes highly recommended"},
	{"a", "is available here"},
}
