package ag

import (
	"fmt"
	"math"
)

// GradCheck verifies the analytic gradients of a scalar loss against central
// finite differences — the wbdebug harness for auditing every op's backward
// closure. build must record the loss of the current parameter values on the
// tape it is given and be deterministic: called twice with the same
// parameter values it must produce the same loss (per-example randomness
// must come from a freshly seeded tape rng inside build, which is exactly
// the engine's dropout convention).
//
// For every element of every parameter it computes
//
//	num = (L(θ+ε) - L(θ-ε)) / 2ε
//
// and compares it to the analytic gradient from one Backward pass. The
// relative error |num-ana| / max(|num|, |ana|, 1) must stay within tol for
// all elements; the first few offenders are reported otherwise. The max(…,1)
// floor makes the criterion absolute near zero, where relative error is
// meaningless.
func GradCheck(params []*Param, build func(t *Tape) *Node, eps, tol float64) error {
	// Analytic pass.
	for _, p := range params {
		p.ZeroGrad()
	}
	t := NewTape()
	t.Backward(build(t))
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad.Data...)
		p.ZeroGrad()
	}

	value := func() float64 {
		return build(NewTape()).Value.Data[0]
	}

	var errs []string
	for i, p := range params {
		for j := range p.Value.Data {
			orig := p.Value.Data[j]
			p.Value.Data[j] = orig + eps
			lp := value()
			p.Value.Data[j] = orig - eps
			lm := value()
			p.Value.Data[j] = orig

			num := (lp - lm) / (2 * eps)
			ana := analytic[i][j]
			denom := math.Max(math.Max(math.Abs(num), math.Abs(ana)), 1)
			if rel := math.Abs(num-ana) / denom; rel > tol {
				errs = append(errs, fmt.Sprintf(
					"param %s[%d]: analytic %.8g vs numeric %.8g (rel %.3g)",
					p.Name, j, ana, num, rel))
				if len(errs) == 5 {
					return fmt.Errorf("gradient check failed (showing first 5):\n%s", join(errs))
				}
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("gradient check failed:\n%s", join(errs))
	}
	return nil
}

func join(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += "  " + l
	}
	return out
}
