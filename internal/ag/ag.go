// Package ag implements tape-based reverse-mode automatic differentiation
// over tensor.Matrix values. It is the training engine underneath every
// model in this repository: the Joint-WB teacher, the distilled students,
// and all baselines.
//
// A Tape records operations as they execute. Each operation returns a *Node
// holding the forward value and a closure that propagates gradients to its
// inputs. Calling Tape.Backward(loss) seeds d(loss)/d(loss)=1 and runs the
// closures in reverse recording order, which is a valid topological order by
// construction.
//
// Model parameters live outside any tape as *Param values; Tape.Use enters a
// parameter into the current tape so that Backward accumulates into
// Param.Grad — or, when a GradSink is attached with SetSink, into the sink's
// per-tape gradient shard. Sinks are what make data-parallel training
// deterministic: each worker's tape accumulates privately and the shards are
// merged in a fixed order.
//
// Tapes come in two allocation regimes. NewTape builds every intermediate on
// the heap; its values may outlive the tape. NewArenaTape draws nodes,
// values and gradients from reusable arenas: after Reset the same memory
// backs the next step's graph, so steady-state training does near-zero heap
// allocation per step. Nothing recorded before a Reset may be used after it.
package ag

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"webbrief/internal/tensor"
)

// Node is one value in the computation graph.
type Node struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix // allocated lazily on first gradient contribution
	back  func()         // propagates n.Grad into parents; nil for leaves
	t     *Tape          // owning tape, for arena-backed gradient buffers
	gen   uint64         // tape generation at recording; wbdebug use-after-Reset check
}

// Rows returns the row count of the node's value.
func (n *Node) Rows() int { return n.Value.Rows }

// Cols returns the column count of the node's value.
func (n *Node) Cols() int { return n.Value.Cols }

func (n *Node) grad() *tensor.Matrix {
	debugCheckNode(n, "gradient accumulation")
	if n.Grad == nil {
		if n.t != nil {
			n.Grad = n.t.alloc(n.Value.Rows, n.Value.Cols)
		} else {
			n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
		}
	}
	return n.Grad
}

// addGrad accumulates g into n's gradient buffer.
func (n *Node) addGrad(g *tensor.Matrix) { n.grad().AddInPlace(g) }

// Param is a trainable parameter: a persistent value with a persistent
// gradient accumulator shared across tapes.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam creates a named parameter around v with a zeroed gradient.
func NewParam(name string, v *tensor.Matrix) *Param {
	return &Param{Name: name, Value: v, Grad: tensor.New(v.Rows, v.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// nodeBlock is how many Node structs each tape-owned block holds. Blocks are
// never reallocated, so *Node pointers stay valid across appends.
const nodeBlock = 256

// Tape records operations for reverse-mode differentiation.
type Tape struct {
	nodes []*Node

	blocks [][]Node // node arena; reused across Reset
	blk    int
	blkOff int
	arena  *tensor.Arena   // nil: plain heap allocation
	sink   *GradSink       // nil: Use accumulates into Param.Grad
	rng    *rand.Rand      // nil: Dropout uses the caller-provided rng
	pack   *tensor.PackBuf // nil: MatMul uses the unpacked kernel
	nograd bool            // inference tape: ops record no backward closures
	gen    uint64          // bumped by Reset; wbdebug use-after-Reset check
	pooled bool            // wbdebug double-PutTape check
}

// NewTape returns an empty heap-allocating tape. Values recorded on it may
// outlive the tape itself.
func NewTape() *Tape { return &Tape{} }

// NewArenaTape returns a tape whose nodes, intermediate values and gradient
// buffers are drawn from a private reusable arena. Call Reset between steps
// to reuse the memory; nothing recorded before a Reset may be referenced
// after it.
func NewArenaTape() *Tape { return &Tape{arena: tensor.NewArena()} }

// NewInferTape returns an arena tape in no-gradient mode: ops compute
// forward values identically but record no backward closures, so a warm
// inference forward allocates nothing. Backward panics on such a tape.
// Inference workspaces (wb.InferScratch) own one tape each.
func NewInferTape() *Tape { return &Tape{arena: tensor.NewArena(), nograd: true} }

// NoGrad reports whether this tape skips backward-closure recording.
func (t *Tape) NoGrad() bool { return t.nograd }

// SetPack attaches a caller-owned pack buffer; while set, MatMul routes
// through the panel-packed kernel (tensor.MatMulPackInto). The buffer must
// not be shared with a concurrently running tape.
func (t *Tape) SetPack(p *tensor.PackBuf) { t.pack = p }

// AllocValue returns a zeroed rows×cols matrix from the tape's arena (heap
// for plain tapes). It lets callers build constant inputs — mean-pooling
// weights, zero states, ones columns — in tape-lifetime memory instead of
// leaking per-call heap matrices. The matrix obeys tape lifetime: invalid
// after Reset.
func (t *Tape) AllocValue(rows, cols int) *tensor.Matrix { return t.alloc(rows, cols) }

// ViewValue returns a rows×cols matrix header whose backing storage IS data
// (no copy). The header comes from the tape's arena on arena tapes, so
// batched kernels can expose row windows of a shared slab — e.g. one beam's
// hidden state inside a B-row step output — without heap headers and without
// copying. The view aliases data for its whole lifetime and, like any
// AllocValue result, is invalid after Reset.
func (t *Tape) ViewValue(rows, cols int, data []float64) *tensor.Matrix {
	if t.arena != nil {
		return t.arena.AllocShared(rows, cols, data)
	}
	if len(data) != rows*cols {
		panic("ag: ViewValue data length does not match shape")
	}
	return &tensor.Matrix{Rows: rows, Cols: cols, Data: data}
}

// Reset clears the tape for reuse, rewinding the node and matrix arenas.
// The attached sink and rng are kept; recorded nodes become invalid.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.blk, t.blkOff = 0, 0
	if t.arena != nil {
		t.arena.Reset()
	}
	debugTapeReset(t)
}

// SetSink redirects parameter-gradient accumulation on this tape into s
// (nil restores direct accumulation into Param.Grad). Parallel training
// attaches one sink per worker so Backward never touches shared state.
func (t *Tape) SetSink(s *GradSink) { t.sink = s }

// SetRand overrides the rng used by Dropout on this tape (nil restores the
// caller-provided rng). The training engine seeds this per example so that
// dropout masks are a function of (seed, epoch, position) alone — identical
// regardless of how examples are scheduled across workers.
func (t *Tape) SetRand(rng *rand.Rand) { t.rng = rng }

// Len reports the number of recorded nodes, exported for tests and
// capacity diagnostics.
func (t *Tape) Len() int { return len(t.nodes) }

// newNode allocates a fresh node from the tape's block arena and records it.
func (t *Tape) newNode(v *tensor.Matrix) *Node {
	if t.blk == len(t.blocks) {
		t.blocks = append(t.blocks, make([]Node, nodeBlock))
	}
	blk := t.blocks[t.blk]
	n := &blk[t.blkOff]
	t.blkOff++
	if t.blkOff == len(blk) {
		t.blk++
		t.blkOff = 0
	}
	n.Value, n.Grad, n.back, n.t = v, nil, nil, t
	debugStampNode(t, n)
	t.nodes = append(t.nodes, n)
	return n
}

// alloc returns a zeroed matrix from the tape's arena, or the heap for
// plain tapes.
func (t *Tape) alloc(rows, cols int) *tensor.Matrix {
	if t.arena != nil {
		return t.arena.Alloc(rows, cols)
	}
	return tensor.New(rows, cols)
}

// scalar returns a recorded 1×1 node holding v.
func (t *Tape) scalar(v float64) *Node {
	m := t.alloc(1, 1)
	m.Data[0] = v
	return t.newNode(m)
}

// floats returns a zeroed scratch slice from the tape's arena.
func (t *Tape) floats(n int) []float64 {
	if t.arena != nil {
		return t.arena.AllocFloats(n)
	}
	return make([]float64, n)
}

// tapePool recycles arena tapes for transient forwards (evaluation loops,
// single briefs) so they too run allocation-free in the steady state.
var tapePool = sync.Pool{New: func() any { return NewArenaTape() }}

// GetTape returns a reset arena tape from the shared pool. The caller must
// not retain any node or matrix recorded on it past PutTape.
func GetTape() *Tape {
	t := tapePool.Get().(*Tape)
	debugTapeGot(t)
	t.Reset()
	return t
}

// PutTape returns a pooled tape. Sink and rng attachments are dropped.
func PutTape(t *Tape) {
	debugTapePut(t)
	t.sink = nil
	t.rng = nil
	tapePool.Put(t)
}

// Const enters a constant matrix into the graph. No gradient flows into it.
func (t *Tape) Const(v *tensor.Matrix) *Node {
	return t.newNode(v)
}

// Use enters parameter p into the graph; Backward accumulates into p.Grad,
// or into the tape's sink when one is attached.
func (t *Tape) Use(p *Param) *Node {
	n := t.newNode(p.Value)
	if t.nograd {
		return n
	}
	n.back = func() {
		if n.Grad == nil {
			return
		}
		if t.sink != nil {
			t.sink.Grad(p).AddInPlace(n.Grad)
		} else {
			p.Grad.AddInPlace(n.Grad)
		}
	}
	return n
}

// Backward runs reverse-mode accumulation from loss, which must be a 1×1
// node recorded on this tape.
func (t *Tape) Backward(loss *Node) {
	if t.nograd {
		panic("ag: Backward on a no-gradient inference tape")
	}
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("ag: Backward needs scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	debugCheckNode(loss, "Backward")
	loss.grad().Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.Grad != nil {
			n.back()
		}
	}
}

// --- Arithmetic -----------------------------------------------------------

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.AddInto(v, a.Value, b.Value)
	n := t.newNode(v)
	if t.nograd {
		return n
	}
	n.back = func() {
		a.addGrad(n.Grad)
		b.addGrad(n.Grad)
	}
	return n
}

// Sub returns a - b.
func (t *Tape) Sub(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.SubInto(v, a.Value, b.Value)
	n := t.newNode(v)
	if t.nograd {
		return n
	}
	n.back = func() {
		a.addGrad(n.Grad)
		b.grad().AddScaledInPlace(n.Grad, -1)
	}
	return n
}

// Mul returns the elementwise product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.MulInto(v, a.Value, b.Value)
	n := t.newNode(v)
	if t.nograd {
		return n
	}
	n.back = func() {
		ga := a.grad()
		gb := b.grad()
		for i, d := range n.Grad.Data {
			ga.Data[i] += d * b.Value.Data[i]
			gb.Data[i] += d * a.Value.Data[i]
		}
	}
	return n
}

// Scale returns s*a for a fixed scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ScaleInto(v, a.Value, s)
	n := t.newNode(v)
	if t.nograd {
		return n
	}
	n.back = func() { a.grad().AddScaledInPlace(n.Grad, s) }
	return n
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, b.Value.Cols)
	if t.pack != nil {
		tensor.MatMulPackInto(v, a.Value, b.Value, t.pack)
	} else {
		tensor.MatMulInto(v, a.Value, b.Value)
	}
	n := t.newNode(v)
	if t.nograd {
		return n
	}
	n.back = func() {
		// dA = dC·Bᵀ ; dB = Aᵀ·dC
		ga := t.alloc(a.Value.Rows, a.Value.Cols)
		tensor.MatMulTransBInto(ga, n.Grad, b.Value)
		a.addGrad(ga)
		gb := b.grad()
		tensor.MatMulTransAInto(gb, a.Value, n.Grad)
	}
	return n
}

// MatMulTransB returns a·bᵀ.
func (t *Tape) MatMulTransB(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, b.Value.Rows)
	tensor.MatMulTransBInto(v, a.Value, b.Value)
	n := t.newNode(v)
	if t.nograd {
		return n
	}
	n.back = func() {
		// C = A·Bᵀ: dA = dC·B ; dB = dCᵀ·A
		ga := a.grad()
		tensor.MatMulInto(ga, n.Grad, b.Value)
		gb := b.grad()
		tensor.MatMulTransAInto(gb, n.Grad, a.Value)
	}
	return n
}

// AddRowVector adds the 1×cols vector v to every row of a.
func (t *Tape) AddRowVector(a, v *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.AddRowVectorInto(val, a.Value, v.Value)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		a.addGrad(n.Grad)
		g := v.grad()
		for i := 0; i < n.Grad.Rows; i++ {
			row := n.Grad.Row(i)
			for j, x := range row {
				g.Data[j] += x
			}
		}
	}
	return n
}

// --- Nonlinearities -------------------------------------------------------

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.TanhInto(val, a.Value)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i, y := range val.Data {
			g.Data[i] += n.Grad.Data[i] * (1 - y*y)
		}
	}
	return n
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.SigmoidInto(val, a.Value)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i, y := range val.Data {
			g.Data[i] += n.Grad.Data[i] * y * (1 - y)
		}
	}
	return n
}

// ReLU applies max(0,x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.ReLUInto(val, a.Value)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i := range val.Data {
			if a.Value.Data[i] > 0 {
				g.Data[i] += n.Grad.Data[i]
			}
		}
	}
	return n
}

// SoftmaxRows applies row-wise softmax.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.SoftmaxRowsInto(val, a.Value)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := n.Grad.Row(i)
			// dx = y ⊙ (dy - (dy·y))
			var dot float64
			for j, v := range y {
				dot += dy[j] * v
			}
			gr := g.Row(i)
			for j, v := range y {
				gr[j] += v * (dy[j] - dot)
			}
		}
	}
	return n
}

// LogSoftmaxRows applies row-wise log-softmax.
func (t *Tape) LogSoftmaxRows(a *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.LogSoftmaxRowsInto(val, a.Value)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			lp := val.Row(i)
			dy := n.Grad.Row(i)
			var sum float64
			for _, v := range dy {
				sum += v
			}
			gr := g.Row(i)
			for j, v := range lp {
				gr[j] += dy[j] - math.Exp(v)*sum
			}
		}
	}
	return n
}

// --- Shape ops --------------------------------------------------------------

// ConcatCols joins nodes horizontally.
func (t *Tape) ConcatCols(ns ...*Node) *Node {
	vals := make([]*tensor.Matrix, len(ns))
	cols := 0
	for i, x := range ns {
		vals[i] = x.Value
		cols += x.Value.Cols
	}
	val := t.alloc(ns[0].Value.Rows, cols)
	tensor.ConcatColsInto(val, vals...)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		off := 0
		for _, x := range ns {
			g := x.grad()
			for i := 0; i < g.Rows; i++ {
				src := n.Grad.Row(i)[off : off+x.Value.Cols]
				dst := g.Row(i)
				for j, v := range src {
					dst[j] += v
				}
			}
			off += x.Value.Cols
		}
	}
	return n
}

// ConcatCols2 joins exactly two nodes horizontally. It computes the same
// value as ConcatCols(a, b) but skips the variadic slice, which matters on
// the inference fast path where Bi-LSTMs concatenate once per token.
func (t *Tape) ConcatCols2(a, b *Node) *Node {
	val := t.alloc(a.Value.Rows, a.Value.Cols+b.Value.Cols)
	tensor.ConcatColsInto(val, a.Value, b.Value)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		ga, gb := a.grad(), b.grad()
		for i := 0; i < val.Rows; i++ {
			src := n.Grad.Row(i)
			dstA, dstB := ga.Row(i), gb.Row(i)
			for j, v := range src[:a.Value.Cols] {
				dstA[j] += v
			}
			for j, v := range src[a.Value.Cols:] {
				dstB[j] += v
			}
		}
	}
	return n
}

// ConcatRows stacks nodes vertically.
func (t *Tape) ConcatRows(ns ...*Node) *Node {
	vals := make([]*tensor.Matrix, len(ns))
	rows := 0
	for i, x := range ns {
		vals[i] = x.Value
		rows += x.Value.Rows
	}
	val := t.alloc(rows, ns[0].Value.Cols)
	tensor.ConcatRowsInto(val, vals...)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		off := 0
		for _, x := range ns {
			g := x.grad()
			rows := x.Value.Rows
			for i := 0; i < rows; i++ {
				src := n.Grad.Row(off + i)
				dst := g.Row(i)
				for j, v := range src {
					dst[j] += v
				}
			}
			off += rows
		}
	}
	return n
}

// SliceRows takes rows [lo, hi) of a.
func (t *Tape) SliceRows(a *Node, lo, hi int) *Node {
	if lo < 0 || hi > a.Value.Rows || lo >= hi {
		panic(fmt.Sprintf("ag: SliceRows [%d,%d) out of range for %d rows", lo, hi, a.Value.Rows))
	}
	val := t.alloc(hi-lo, a.Value.Cols)
	copy(val.Data, a.Value.Data[lo*a.Value.Cols:hi*a.Value.Cols])
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i := lo; i < hi; i++ {
			src := n.Grad.Row(i - lo)
			dst := g.Row(i)
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return n
}

// GatherRows selects the given rows of a (rows may repeat).
func (t *Tape) GatherRows(a *Node, rows []int) *Node {
	val := t.alloc(len(rows), a.Value.Cols)
	for i, r := range rows {
		copy(val.Row(i), a.Value.Row(r))
	}
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i, r := range rows {
			src := n.Grad.Row(i)
			dst := g.Row(r)
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return n
}

// Reshape reinterprets a as rows×cols (same element count, row-major order).
func (t *Tape) Reshape(a *Node, rows, cols int) *Node {
	if rows*cols != a.Value.Rows*a.Value.Cols {
		panic(fmt.Sprintf("ag: Reshape %dx%d -> %dx%d changes size", a.Value.Rows, a.Value.Cols, rows, cols))
	}
	n := t.newNode(tensor.FromSlice(rows, cols, a.Value.Data))
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i, v := range n.Grad.Data {
			g.Data[i] += v
		}
	}
	return n
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	val := t.alloc(a.Value.Cols, a.Value.Rows)
	tensor.TransposeInto(val, a.Value)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		dg := n.Grad
		for i := 0; i < dg.Rows; i++ {
			row := dg.Row(i)
			for j, v := range row {
				g.Data[j*dg.Rows+i] += v
			}
		}
	}
	return n
}

// --- Lookup / dropout -------------------------------------------------------

// Lookup gathers embedding rows ids from table (a Param node): the standard
// embedding-layer forward, with sparse scatter-add on backward.
func (t *Tape) Lookup(table *Node, ids []int) *Node {
	return t.GatherRows(table, ids)
}

// Dropout zeroes entries with probability p and rescales survivors by
// 1/(1-p) (inverted dropout). With p<=0 it is the identity. A tape-level
// rng set with SetRand takes precedence over the argument, which is how the
// training engine makes masks deterministic per example.
func (t *Tape) Dropout(a *Node, p float64, rng *rand.Rand) *Node {
	if p <= 0 {
		return a
	}
	if t.rng != nil {
		rng = t.rng
	}
	mask := t.alloc(a.Value.Rows, a.Value.Cols)
	scale := 1 / (1 - p)
	for i := range mask.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
		}
	}
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.MulInto(val, a.Value, mask)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i, d := range n.Grad.Data {
			g.Data[i] += d * mask.Data[i]
		}
	}
	return n
}

// --- Reductions and losses ---------------------------------------------------

// Sum reduces a to a 1×1 scalar.
func (t *Tape) Sum(a *Node) *Node {
	n := t.scalar(a.Value.Sum())
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		d := n.Grad.Data[0]
		for i := range g.Data {
			g.Data[i] += d
		}
	}
	return n
}

// Mean reduces a to its scalar mean.
func (t *Tape) Mean(a *Node) *Node {
	inv := 1 / float64(a.Value.Rows*a.Value.Cols)
	n := t.scalar(a.Value.Sum() * inv)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		d := n.Grad.Data[0] * inv
		for i := range g.Data {
			g.Data[i] += d
		}
	}
	return n
}

// MeanRows averages over rows, returning a 1×cols node.
func (t *Tape) MeanRows(a *Node) *Node {
	val := t.alloc(1, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		for j, v := range row {
			val.Data[j] += v
		}
	}
	inv := 1 / float64(a.Value.Rows)
	for j := range val.Data {
		val.Data[j] *= inv
	}
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i := 0; i < g.Rows; i++ {
			dst := g.Row(i)
			for j := range dst {
				dst[j] += n.Grad.Data[j] * inv
			}
		}
	}
	return n
}

// CrossEntropy computes the mean negative log-likelihood of targets under
// row-wise softmax of logits. Rows of logits with target < 0 are ignored
// (padding), matching the masked-loss convention used by every model here.
func (t *Tape) CrossEntropy(logits *Node, targets []int) *Node {
	if len(targets) != logits.Value.Rows {
		panic(fmt.Sprintf("ag: CrossEntropy %d targets for %d rows", len(targets), logits.Value.Rows))
	}
	logp := t.alloc(logits.Value.Rows, logits.Value.Cols)
	tensor.LogSoftmaxRowsInto(logp, logits.Value)
	var loss float64
	count := 0
	for i, y := range targets {
		if y < 0 {
			continue
		}
		loss -= logp.Row(i)[y]
		count++
	}
	if count == 0 {
		count = 1
	}
	inv := 1 / float64(count)
	n := t.scalar(loss * inv)
	if t.nograd {
		return n
	}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		g := logits.grad()
		for i, y := range targets {
			if y < 0 {
				continue
			}
			lpRow := logp.Row(i)
			gRow := g.Row(i)
			for j := range gRow {
				p := math.Exp(lpRow[j])
				if j == y {
					gRow[j] += d * (p - 1)
				} else {
					gRow[j] += d * p
				}
			}
		}
	}
	return n
}

// KLDiv computes sum_i p_i * log(p_i / q_i) where p is a fixed target
// distribution (teacher, rows summing to 1) and q = softmax(logits) row-wise
// (student). Gradient flows only into logits, the understanding-distillation
// convention from the paper (Eq. L_UD).
func (t *Tape) KLDiv(p *tensor.Matrix, logits *Node) *Node {
	if !p.SameShape(logits.Value) {
		panic(fmt.Sprintf("ag: KLDiv shape mismatch %dx%d vs %dx%d", p.Rows, p.Cols, logits.Value.Rows, logits.Value.Cols))
	}
	logq := t.alloc(logits.Value.Rows, logits.Value.Cols)
	tensor.LogSoftmaxRowsInto(logq, logits.Value)
	var loss float64
	for i, pi := range p.Data {
		if pi > 0 {
			loss += pi * (math.Log(pi) - logq.Data[i])
		}
	}
	inv := 1 / float64(p.Rows)
	n := t.scalar(loss * inv)
	if t.nograd {
		return n
	}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		g := logits.grad()
		for i := 0; i < p.Rows; i++ {
			pRow := p.Row(i)
			lqRow := logq.Row(i)
			gRow := g.Row(i)
			var rowMass float64
			for _, v := range pRow {
				rowMass += v
			}
			for j := range gRow {
				q := math.Exp(lqRow[j])
				gRow[j] += d * (rowMass*q - pRow[j])
			}
		}
	}
	return n
}

// L1Loss computes the mean absolute difference between a and a fixed target,
// the identification-distillation loss from the paper (Eq. L_ID).
func (t *Tape) L1Loss(a *Node, target *tensor.Matrix) *Node {
	if !target.SameShape(a.Value) {
		panic(fmt.Sprintf("ag: L1Loss shape mismatch %dx%d vs %dx%d", a.Value.Rows, a.Value.Cols, target.Rows, target.Cols))
	}
	var loss float64
	for i, v := range a.Value.Data {
		loss += math.Abs(v - target.Data[i])
	}
	inv := 1 / float64(len(a.Value.Data))
	n := t.scalar(loss * inv)
	if t.nograd {
		return n
	}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		g := a.grad()
		for i, v := range a.Value.Data {
			switch {
			case v > target.Data[i]:
				g.Data[i] += d
			case v < target.Data[i]:
				g.Data[i] -= d
			}
		}
	}
	return n
}

// MSELoss computes the mean squared difference between a and a fixed target.
func (t *Tape) MSELoss(a *Node, target *tensor.Matrix) *Node {
	if !target.SameShape(a.Value) {
		panic("ag: MSELoss shape mismatch")
	}
	var loss float64
	for i, v := range a.Value.Data {
		d := v - target.Data[i]
		loss += d * d
	}
	inv := 1 / float64(len(a.Value.Data))
	n := t.scalar(loss * inv)
	if t.nograd {
		return n
	}
	n.back = func() {
		d := n.Grad.Data[0] * inv * 2
		g := a.grad()
		for i, v := range a.Value.Data {
			g.Data[i] += d * (v - target.Data[i])
		}
	}
	return n
}

// BCELoss computes mean binary cross-entropy of sigmoid(logits) against
// 0/1 labels; labels < 0 are ignored (padding).
func (t *Tape) BCELoss(logits *Node, labels []int) *Node {
	if len(labels) != logits.Value.Rows*logits.Value.Cols {
		panic(fmt.Sprintf("ag: BCELoss %d labels for %d entries", len(labels), len(logits.Value.Data)))
	}
	var loss float64
	count := 0
	for i, y := range labels {
		if y < 0 {
			continue
		}
		x := logits.Value.Data[i]
		// Numerically stable: max(x,0) - x*y + log(1+exp(-|x|)).
		loss += math.Max(x, 0) - x*float64(y) + math.Log1p(math.Exp(-math.Abs(x)))
		count++
	}
	if count == 0 {
		count = 1
	}
	inv := 1 / float64(count)
	n := t.scalar(loss * inv)
	if t.nograd {
		return n
	}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		g := logits.grad()
		for i, y := range labels {
			if y < 0 {
				continue
			}
			s := 1 / (1 + math.Exp(-logits.Value.Data[i]))
			g.Data[i] += d * (s - float64(y))
		}
	}
	return n
}

// AddScalars sums scalar nodes, used to combine weighted loss terms.
func (t *Tape) AddScalars(ns ...*Node) *Node {
	var total float64
	for _, x := range ns {
		if x.Value.Rows != 1 || x.Value.Cols != 1 {
			panic("ag: AddScalars needs 1x1 nodes")
		}
		total += x.Value.Data[0]
	}
	n := t.scalar(total)
	if t.nograd {
		return n
	}
	n.back = func() {
		for _, x := range ns {
			x.grad().Data[0] += n.Grad.Data[0]
		}
	}
	return n
}
