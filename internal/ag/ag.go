// Package ag implements tape-based reverse-mode automatic differentiation
// over tensor.Matrix values. It is the training engine underneath every
// model in this repository: the Joint-WB teacher, the distilled students,
// and all baselines.
//
// A Tape records operations as they execute. Each operation returns a *Node
// holding the forward value and a closure that propagates gradients to its
// inputs. Calling Tape.Backward(loss) seeds d(loss)/d(loss)=1 and runs the
// closures in reverse recording order, which is a valid topological order by
// construction.
//
// Model parameters live outside any tape as *Param values; Tape.Use enters a
// parameter into the current tape so that Backward accumulates into
// Param.Grad. This lets a training step build a fresh tape per example while
// parameters (and their Adam state) persist across steps.
package ag

import (
	"fmt"
	"math"
	"math/rand"

	"webbrief/internal/tensor"
)

// Node is one value in the computation graph.
type Node struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix // allocated lazily on first gradient contribution
	back  func()         // propagates n.Grad into parents; nil for leaves
}

// Rows returns the row count of the node's value.
func (n *Node) Rows() int { return n.Value.Rows }

// Cols returns the column count of the node's value.
func (n *Node) Cols() int { return n.Value.Cols }

func (n *Node) grad() *tensor.Matrix {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
	return n.Grad
}

// addGrad accumulates g into n's gradient buffer.
func (n *Node) addGrad(g *tensor.Matrix) { n.grad().AddInPlace(g) }

// Param is a trainable parameter: a persistent value with a persistent
// gradient accumulator shared across tapes.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam creates a named parameter around v with a zeroed gradient.
func NewParam(name string, v *tensor.Matrix) *Param {
	return &Param{Name: name, Value: v, Grad: tensor.New(v.Rows, v.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Tape records operations for reverse-mode differentiation.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len reports the number of recorded nodes, exported for tests and
// capacity diagnostics.
func (t *Tape) Len() int { return len(t.nodes) }

func (t *Tape) record(n *Node) *Node {
	t.nodes = append(t.nodes, n)
	return n
}

// Const enters a constant matrix into the graph. No gradient flows into it.
func (t *Tape) Const(v *tensor.Matrix) *Node {
	return t.record(&Node{Value: v})
}

// Use enters parameter p into the graph; Backward accumulates into p.Grad.
func (t *Tape) Use(p *Param) *Node {
	n := &Node{Value: p.Value}
	n.back = func() {
		if n.Grad != nil {
			p.Grad.AddInPlace(n.Grad)
		}
	}
	return t.record(n)
}

// Backward runs reverse-mode accumulation from loss, which must be a 1×1
// node recorded on this tape.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("ag: Backward needs scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	loss.grad().Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.Grad != nil {
			n.back()
		}
	}
}

// --- Arithmetic -----------------------------------------------------------

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	n := &Node{Value: a.Value.Add(b.Value)}
	n.back = func() {
		a.addGrad(n.Grad)
		b.addGrad(n.Grad)
	}
	return t.record(n)
}

// Sub returns a - b.
func (t *Tape) Sub(a, b *Node) *Node {
	n := &Node{Value: a.Value.Sub(b.Value)}
	n.back = func() {
		a.addGrad(n.Grad)
		b.grad().AddScaledInPlace(n.Grad, -1)
	}
	return t.record(n)
}

// Mul returns the elementwise product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	n := &Node{Value: a.Value.Mul(b.Value)}
	n.back = func() {
		a.grad().AddInPlace(n.Grad.Mul(b.Value))
		b.grad().AddInPlace(n.Grad.Mul(a.Value))
	}
	return t.record(n)
}

// Scale returns s*a for a fixed scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	n := &Node{Value: a.Value.Scale(s)}
	n.back = func() { a.grad().AddScaledInPlace(n.Grad, s) }
	return t.record(n)
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	n := &Node{Value: a.Value.MatMul(b.Value)}
	n.back = func() {
		// dA = dC·Bᵀ ; dB = Aᵀ·dC
		a.grad().AddInPlace(n.Grad.MatMulTransB(b.Value))
		b.grad().AddInPlace(a.Value.MatMulTransA(n.Grad))
	}
	return t.record(n)
}

// MatMulTransB returns a·bᵀ.
func (t *Tape) MatMulTransB(a, b *Node) *Node {
	n := &Node{Value: a.Value.MatMulTransB(b.Value)}
	n.back = func() {
		// C = A·Bᵀ: dA = dC·B ; dB = dCᵀ·A
		a.grad().AddInPlace(n.Grad.MatMul(b.Value))
		b.grad().AddInPlace(n.Grad.MatMulTransA(a.Value))
	}
	return t.record(n)
}

// AddRowVector adds the 1×cols vector v to every row of a.
func (t *Tape) AddRowVector(a, v *Node) *Node {
	n := &Node{Value: a.Value.AddRowVector(v.Value)}
	n.back = func() {
		a.addGrad(n.Grad)
		g := v.grad()
		for i := 0; i < n.Grad.Rows; i++ {
			row := n.Grad.Row(i)
			for j, x := range row {
				g.Data[j] += x
			}
		}
	}
	return t.record(n)
}

// --- Nonlinearities -------------------------------------------------------

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	val := a.Value.Tanh()
	n := &Node{Value: val}
	n.back = func() {
		g := a.grad()
		for i, y := range val.Data {
			g.Data[i] += n.Grad.Data[i] * (1 - y*y)
		}
	}
	return t.record(n)
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	val := a.Value.Sigmoid()
	n := &Node{Value: val}
	n.back = func() {
		g := a.grad()
		for i, y := range val.Data {
			g.Data[i] += n.Grad.Data[i] * y * (1 - y)
		}
	}
	return t.record(n)
}

// ReLU applies max(0,x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	val := a.Value.ReLU()
	n := &Node{Value: val}
	n.back = func() {
		g := a.grad()
		for i := range val.Data {
			if a.Value.Data[i] > 0 {
				g.Data[i] += n.Grad.Data[i]
			}
		}
	}
	return t.record(n)
}

// SoftmaxRows applies row-wise softmax.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	val := a.Value.SoftmaxRows()
	n := &Node{Value: val}
	n.back = func() {
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			y := val.Row(i)
			dy := n.Grad.Row(i)
			// dx = y ⊙ (dy - (dy·y))
			var dot float64
			for j, v := range y {
				dot += dy[j] * v
			}
			gr := g.Row(i)
			for j, v := range y {
				gr[j] += v * (dy[j] - dot)
			}
		}
	}
	return t.record(n)
}

// LogSoftmaxRows applies row-wise log-softmax.
func (t *Tape) LogSoftmaxRows(a *Node) *Node {
	val := a.Value.LogSoftmaxRows()
	n := &Node{Value: val}
	n.back = func() {
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			lp := val.Row(i)
			dy := n.Grad.Row(i)
			var sum float64
			for _, v := range dy {
				sum += v
			}
			gr := g.Row(i)
			for j, v := range lp {
				gr[j] += dy[j] - math.Exp(v)*sum
			}
		}
	}
	return t.record(n)
}

// --- Shape ops --------------------------------------------------------------

// ConcatCols joins nodes horizontally.
func (t *Tape) ConcatCols(ns ...*Node) *Node {
	vals := make([]*tensor.Matrix, len(ns))
	for i, x := range ns {
		vals[i] = x.Value
	}
	n := &Node{Value: tensor.ConcatCols(vals...)}
	n.back = func() {
		off := 0
		for _, x := range ns {
			g := x.grad()
			for i := 0; i < g.Rows; i++ {
				src := n.Grad.Row(i)[off : off+x.Value.Cols]
				dst := g.Row(i)
				for j, v := range src {
					dst[j] += v
				}
			}
			off += x.Value.Cols
		}
	}
	return t.record(n)
}

// ConcatRows stacks nodes vertically.
func (t *Tape) ConcatRows(ns ...*Node) *Node {
	vals := make([]*tensor.Matrix, len(ns))
	for i, x := range ns {
		vals[i] = x.Value
	}
	n := &Node{Value: tensor.ConcatRows(vals...)}
	n.back = func() {
		off := 0
		for _, x := range ns {
			g := x.grad()
			rows := x.Value.Rows
			for i := 0; i < rows; i++ {
				src := n.Grad.Row(off + i)
				dst := g.Row(i)
				for j, v := range src {
					dst[j] += v
				}
			}
			off += rows
		}
	}
	return t.record(n)
}

// SliceRows takes rows [lo, hi) of a.
func (t *Tape) SliceRows(a *Node, lo, hi int) *Node {
	n := &Node{Value: a.Value.SliceRows(lo, hi)}
	n.back = func() {
		g := a.grad()
		for i := lo; i < hi; i++ {
			src := n.Grad.Row(i - lo)
			dst := g.Row(i)
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return t.record(n)
}

// GatherRows selects the given rows of a (rows may repeat).
func (t *Tape) GatherRows(a *Node, rows []int) *Node {
	val := tensor.New(len(rows), a.Value.Cols)
	for i, r := range rows {
		copy(val.Row(i), a.Value.Row(r))
	}
	n := &Node{Value: val}
	n.back = func() {
		g := a.grad()
		for i, r := range rows {
			src := n.Grad.Row(i)
			dst := g.Row(r)
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return t.record(n)
}

// Reshape reinterprets a as rows×cols (same element count, row-major order).
func (t *Tape) Reshape(a *Node, rows, cols int) *Node {
	if rows*cols != a.Value.Rows*a.Value.Cols {
		panic(fmt.Sprintf("ag: Reshape %dx%d -> %dx%d changes size", a.Value.Rows, a.Value.Cols, rows, cols))
	}
	n := &Node{Value: tensor.FromSlice(rows, cols, a.Value.Data)}
	n.back = func() {
		g := a.grad()
		for i, v := range n.Grad.Data {
			g.Data[i] += v
		}
	}
	return t.record(n)
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	n := &Node{Value: a.Value.Transpose()}
	n.back = func() { a.grad().AddInPlace(n.Grad.Transpose()) }
	return t.record(n)
}

// --- Lookup / dropout -------------------------------------------------------

// Lookup gathers embedding rows ids from table (a Param node): the standard
// embedding-layer forward, with sparse scatter-add on backward.
func (t *Tape) Lookup(table *Node, ids []int) *Node {
	return t.GatherRows(table, ids)
}

// Dropout zeroes entries with probability p and rescales survivors by
// 1/(1-p) (inverted dropout). With p<=0 it is the identity.
func (t *Tape) Dropout(a *Node, p float64, rng *rand.Rand) *Node {
	if p <= 0 {
		return a
	}
	mask := tensor.New(a.Value.Rows, a.Value.Cols)
	scale := 1 / (1 - p)
	for i := range mask.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
		}
	}
	n := &Node{Value: a.Value.Mul(mask)}
	n.back = func() { a.grad().AddInPlace(n.Grad.Mul(mask)) }
	return t.record(n)
}

// --- Reductions and losses ---------------------------------------------------

// Sum reduces a to a 1×1 scalar.
func (t *Tape) Sum(a *Node) *Node {
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{a.Value.Sum()})}
	n.back = func() {
		g := a.grad()
		d := n.Grad.Data[0]
		for i := range g.Data {
			g.Data[i] += d
		}
	}
	return t.record(n)
}

// Mean reduces a to its scalar mean.
func (t *Tape) Mean(a *Node) *Node {
	inv := 1 / float64(a.Value.Rows*a.Value.Cols)
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{a.Value.Sum() * inv})}
	n.back = func() {
		g := a.grad()
		d := n.Grad.Data[0] * inv
		for i := range g.Data {
			g.Data[i] += d
		}
	}
	return t.record(n)
}

// MeanRows averages over rows, returning a 1×cols node.
func (t *Tape) MeanRows(a *Node) *Node {
	val := tensor.New(1, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		for j, v := range row {
			val.Data[j] += v
		}
	}
	inv := 1 / float64(a.Value.Rows)
	for j := range val.Data {
		val.Data[j] *= inv
	}
	n := &Node{Value: val}
	n.back = func() {
		g := a.grad()
		for i := 0; i < g.Rows; i++ {
			dst := g.Row(i)
			for j := range dst {
				dst[j] += n.Grad.Data[j] * inv
			}
		}
	}
	return t.record(n)
}

// CrossEntropy computes the mean negative log-likelihood of targets under
// row-wise softmax of logits. Rows of logits with target < 0 are ignored
// (padding), matching the masked-loss convention used by every model here.
func (t *Tape) CrossEntropy(logits *Node, targets []int) *Node {
	if len(targets) != logits.Value.Rows {
		panic(fmt.Sprintf("ag: CrossEntropy %d targets for %d rows", len(targets), logits.Value.Rows))
	}
	logp := logits.Value.LogSoftmaxRows()
	var loss float64
	count := 0
	for i, y := range targets {
		if y < 0 {
			continue
		}
		loss -= logp.Row(i)[y]
		count++
	}
	if count == 0 {
		count = 1
	}
	inv := 1 / float64(count)
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{loss * inv})}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		g := logits.grad()
		for i, y := range targets {
			if y < 0 {
				continue
			}
			lpRow := logp.Row(i)
			gRow := g.Row(i)
			for j := range gRow {
				p := math.Exp(lpRow[j])
				if j == y {
					gRow[j] += d * (p - 1)
				} else {
					gRow[j] += d * p
				}
			}
		}
	}
	return t.record(n)
}

// KLDiv computes sum_i p_i * log(p_i / q_i) where p is a fixed target
// distribution (teacher, rows summing to 1) and q = softmax(logits) row-wise
// (student). Gradient flows only into logits, the understanding-distillation
// convention from the paper (Eq. L_UD).
func (t *Tape) KLDiv(p *tensor.Matrix, logits *Node) *Node {
	if !p.SameShape(logits.Value) {
		panic(fmt.Sprintf("ag: KLDiv shape mismatch %dx%d vs %dx%d", p.Rows, p.Cols, logits.Value.Rows, logits.Value.Cols))
	}
	logq := logits.Value.LogSoftmaxRows()
	var loss float64
	for i, pi := range p.Data {
		if pi > 0 {
			loss += pi * (math.Log(pi) - logq.Data[i])
		}
	}
	inv := 1 / float64(p.Rows)
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{loss * inv})}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		g := logits.grad()
		for i := 0; i < p.Rows; i++ {
			pRow := p.Row(i)
			lqRow := logq.Row(i)
			gRow := g.Row(i)
			var rowMass float64
			for _, v := range pRow {
				rowMass += v
			}
			for j := range gRow {
				q := math.Exp(lqRow[j])
				gRow[j] += d * (rowMass*q - pRow[j])
			}
		}
	}
	return t.record(n)
}

// L1Loss computes the mean absolute difference between a and a fixed target,
// the identification-distillation loss from the paper (Eq. L_ID).
func (t *Tape) L1Loss(a *Node, target *tensor.Matrix) *Node {
	if !target.SameShape(a.Value) {
		panic(fmt.Sprintf("ag: L1Loss shape mismatch %dx%d vs %dx%d", a.Value.Rows, a.Value.Cols, target.Rows, target.Cols))
	}
	var loss float64
	for i, v := range a.Value.Data {
		loss += math.Abs(v - target.Data[i])
	}
	inv := 1 / float64(len(a.Value.Data))
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{loss * inv})}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		g := a.grad()
		for i, v := range a.Value.Data {
			switch {
			case v > target.Data[i]:
				g.Data[i] += d
			case v < target.Data[i]:
				g.Data[i] -= d
			}
		}
	}
	return t.record(n)
}

// MSELoss computes the mean squared difference between a and a fixed target.
func (t *Tape) MSELoss(a *Node, target *tensor.Matrix) *Node {
	if !target.SameShape(a.Value) {
		panic("ag: MSELoss shape mismatch")
	}
	var loss float64
	for i, v := range a.Value.Data {
		d := v - target.Data[i]
		loss += d * d
	}
	inv := 1 / float64(len(a.Value.Data))
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{loss * inv})}
	n.back = func() {
		d := n.Grad.Data[0] * inv * 2
		g := a.grad()
		for i, v := range a.Value.Data {
			g.Data[i] += d * (v - target.Data[i])
		}
	}
	return t.record(n)
}

// BCELoss computes mean binary cross-entropy of sigmoid(logits) against
// 0/1 labels; labels < 0 are ignored (padding).
func (t *Tape) BCELoss(logits *Node, labels []int) *Node {
	if len(labels) != logits.Value.Rows*logits.Value.Cols {
		panic(fmt.Sprintf("ag: BCELoss %d labels for %d entries", len(labels), len(logits.Value.Data)))
	}
	var loss float64
	count := 0
	for i, y := range labels {
		if y < 0 {
			continue
		}
		x := logits.Value.Data[i]
		// Numerically stable: max(x,0) - x*y + log(1+exp(-|x|)).
		loss += math.Max(x, 0) - x*float64(y) + math.Log1p(math.Exp(-math.Abs(x)))
		count++
	}
	if count == 0 {
		count = 1
	}
	inv := 1 / float64(count)
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{loss * inv})}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		g := logits.grad()
		for i, y := range labels {
			if y < 0 {
				continue
			}
			s := 1 / (1 + math.Exp(-logits.Value.Data[i]))
			g.Data[i] += d * (s - float64(y))
		}
	}
	return t.record(n)
}

// AddScalars sums scalar nodes, used to combine weighted loss terms.
func (t *Tape) AddScalars(ns ...*Node) *Node {
	var total float64
	for _, x := range ns {
		if x.Value.Rows != 1 || x.Value.Cols != 1 {
			panic("ag: AddScalars needs 1x1 nodes")
		}
		total += x.Value.Data[0]
	}
	n := &Node{Value: tensor.FromSlice(1, 1, []float64{total})}
	n.back = func() {
		for _, x := range ns {
			x.grad().Data[0] += n.Grad.Data[0]
		}
	}
	return t.record(n)
}
