package ag

import (
	"fmt"
	"math"

	"webbrief/internal/tensor"
)

// SliceCols takes columns [lo, hi) of a. It is used to split fused LSTM gate
// pre-activations and to separate attention heads.
func (t *Tape) SliceCols(a *Node, lo, hi int) *Node {
	if lo < 0 || hi > a.Value.Cols || lo >= hi {
		panic(fmt.Sprintf("ag: SliceCols [%d,%d) out of range for %d cols", lo, hi, a.Value.Cols))
	}
	val := t.alloc(a.Value.Rows, hi-lo)
	for i := 0; i < a.Value.Rows; i++ {
		copy(val.Row(i), a.Value.Row(i)[lo:hi])
	}
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			src := n.Grad.Row(i)
			dst := g.Row(i)[lo:hi]
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return n
}

// MulRowVector multiplies every row of a elementwise by the 1×cols vector v
// (broadcast Hadamard product), the gain step of layer normalisation.
func (t *Tape) MulRowVector(a, v *Node) *Node {
	if v.Value.Rows != 1 || v.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("ag: MulRowVector wants 1x%d, got %dx%d", a.Value.Cols, v.Value.Rows, v.Value.Cols))
	}
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		src := a.Value.Row(i)
		dst := val.Row(i)
		for j, x := range src {
			dst[j] = x * v.Value.Data[j]
		}
	}
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		ga := a.grad()
		gv := v.grad()
		for i := 0; i < val.Rows; i++ {
			dy := n.Grad.Row(i)
			ar := a.Value.Row(i)
			gr := ga.Row(i)
			for j, d := range dy {
				gr[j] += d * v.Value.Data[j]
				gv.Data[j] += d * ar[j]
			}
		}
	}
	return n
}

// RowNorm standardises each row of a to zero mean and unit variance:
// y_ij = (x_ij - μ_i) / sqrt(σ²_i + eps). It is the core of layer
// normalisation; combine with MulRowVector and AddRowVector for the affine
// gain and bias.
func (t *Tape) RowNorm(a *Node, eps float64) *Node {
	rows, cols := a.Value.Rows, a.Value.Cols
	val := t.alloc(rows, cols)
	invStd := t.floats(rows)
	for i := 0; i < rows; i++ {
		src := a.Value.Row(i)
		var mean float64
		for _, x := range src {
			mean += x
		}
		mean /= float64(cols)
		var variance float64
		for _, x := range src {
			d := x - mean
			variance += d * d
		}
		variance /= float64(cols)
		is := 1 / math.Sqrt(variance+eps)
		invStd[i] = is
		dst := val.Row(i)
		for j, x := range src {
			dst[j] = (x - mean) * is
		}
	}
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() {
		g := a.grad()
		for i := 0; i < rows; i++ {
			y := val.Row(i)
			dy := n.Grad.Row(i)
			var meanDy, meanDyY float64
			for j, d := range dy {
				meanDy += d
				meanDyY += d * y[j]
			}
			meanDy /= float64(cols)
			meanDyY /= float64(cols)
			is := invStd[i]
			gr := g.Row(i)
			for j, d := range dy {
				gr[j] += is * (d - meanDy - y[j]*meanDyY)
			}
		}
	}
	return n
}

// L1Between computes the mean absolute elementwise difference between two
// nodes, with gradient flowing into both — the identification-distillation
// loss L_ID where the teacher-side attention projection is itself trained.
func (t *Tape) L1Between(a, b *Node) *Node {
	if !a.Value.SameShape(b.Value) {
		panic(fmt.Sprintf("ag: L1Between shape mismatch %dx%d vs %dx%d",
			a.Value.Rows, a.Value.Cols, b.Value.Rows, b.Value.Cols))
	}
	var loss float64
	for i, v := range a.Value.Data {
		loss += math.Abs(v - b.Value.Data[i])
	}
	inv := 1 / float64(len(a.Value.Data))
	n := t.scalar(loss * inv)
	if t.nograd {
		return n
	}
	n.back = func() {
		d := n.Grad.Data[0] * inv
		ga := a.grad()
		gb := b.grad()
		for i, v := range a.Value.Data {
			switch {
			case v > b.Value.Data[i]:
				ga.Data[i] += d
				gb.Data[i] -= d
			case v < b.Value.Data[i]:
				ga.Data[i] -= d
				gb.Data[i] += d
			}
		}
	}
	return n
}

// AddMasked adds mask (a fixed matrix, typically 0 / -inf-like values) to a.
// It is used to block attention to padding positions; the mask receives no
// gradient.
func (t *Tape) AddMasked(a *Node, mask *tensor.Matrix) *Node {
	if !mask.SameShape(a.Value) {
		panic("ag: AddMasked shape mismatch")
	}
	val := t.alloc(a.Value.Rows, a.Value.Cols)
	tensor.AddInto(val, a.Value, mask)
	n := t.newNode(val)
	if t.nograd {
		return n
	}
	n.back = func() { a.addGrad(n.Grad) }
	return n
}
