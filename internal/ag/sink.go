package ag

import "webbrief/internal/tensor"

// GradSink is a private gradient accumulator for one training worker. When
// attached to a tape with SetSink, Backward adds parameter gradients into
// the sink's per-parameter shard instead of the shared Param.Grad, so
// several workers can run backward passes concurrently over the same model
// without synchronisation. After the batch, MergeInto folds every shard into
// Param.Grad; calling it worker-by-worker in a fixed order makes the merged
// gradient — and therefore the whole training run — independent of goroutine
// scheduling.
//
// Shard matrices are allocated once per parameter and reused across steps
// (MergeInto zeroes them), so sinks add no steady-state allocation.
type GradSink struct {
	grads map[*Param]*tensor.Matrix
	order []*Param // insertion order, so Reset never iterates the map
}

// NewGradSink returns an empty sink.
func NewGradSink() *GradSink {
	return &GradSink{grads: make(map[*Param]*tensor.Matrix)}
}

// Grad returns the sink's gradient shard for p, allocating it (zeroed) on
// first use.
func (s *GradSink) Grad(p *Param) *tensor.Matrix {
	g, ok := s.grads[p]
	if !ok {
		g = tensor.New(p.Value.Rows, p.Value.Cols)
		s.grads[p] = g
		s.order = append(s.order, p)
	}
	return g
}

// MergeInto adds the shards into each parameter's Grad and zeroes them for
// the next batch. Iteration follows the caller's params order (not map
// order), so merging several sinks in worker order is fully deterministic.
func (s *GradSink) MergeInto(params []*Param) {
	for _, p := range params {
		if g, ok := s.grads[p]; ok {
			p.Grad.AddInPlace(g)
			g.Zero()
		}
	}
}

// Reset zeroes all shards without merging, discarding pending gradients.
// Shards are visited in insertion order: zeroing commutes, but keeping every
// state traversal off map order is the convention wbcheck's detmap pass
// enforces repo-wide.
func (s *GradSink) Reset() {
	for _, p := range s.order {
		s.grads[p].Zero()
	}
}
