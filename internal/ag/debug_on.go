//go:build wbdebug

package ag

import "fmt"

// wbdebug tape-lifecycle instrumentation. Two failure modes of the arena
// regime are silent in release builds and loud here:
//
//   - use-after-Reset: a node recorded before Tape.Reset whose memory now
//     backs a different step's graph. Every node is stamped with the tape
//     generation at recording time; touching its gradient under a newer
//     generation panics.
//   - double PutTape: returning a tape to the pool twice aliases one arena
//     between two future holders — the worst kind of heisenbug. PutTape
//     tracks pool residency and panics on the second return.

func debugStampNode(t *Tape, n *Node) { n.gen = t.gen }

func debugCheckNode(n *Node, op string) {
	if n.t != nil && n.gen != n.t.gen {
		panic(fmt.Sprintf("ag: %s on node recorded before Tape.Reset (node gen %d, tape gen %d)",
			op, n.gen, n.t.gen))
	}
}

func debugTapeReset(t *Tape) { t.gen++ }

func debugTapeGot(t *Tape) { t.pooled = false }

func debugTapePut(t *Tape) {
	if t.pooled {
		panic("ag: double PutTape — tape is already back in the pool")
	}
	t.pooled = true
}
