package ag

import (
	"math/rand"
	"testing"

	"webbrief/internal/tensor"
)

// mlpLoss builds a small MLP loss on tp — the shared graph for the
// arena/sink tests below.
func mlpLoss(tp *Tape, w1, w2 *Param, x *tensor.Matrix) *Node {
	h := tp.Tanh(tp.MatMul(tp.Const(x), tp.Use(w1)))
	return tp.MSELoss(tp.MatMul(h, tp.Use(w2)), tensor.New(x.Rows, w2.Value.Cols))
}

// TestArenaTapeMatchesHeapTape runs the same graph on a fresh heap tape and
// on a reused arena tape and demands bitwise-identical loss and gradients —
// the reuse must be invisible to the math.
func TestArenaTapeMatchesHeapTape(t *testing.T) {
	w1 := randParam("w1", 4, 8, 1)
	w2 := randParam("w2", 8, 3, 2)
	x := tensor.Randn(5, 4, 1, rand.New(rand.NewSource(3)))

	arena := NewArenaTape()
	for pass := 0; pass < 3; pass++ {
		w1.ZeroGrad()
		w2.ZeroGrad()
		hp := NewTape()
		lossH := mlpLoss(hp, w1, w2, x)
		hp.Backward(lossH)
		g1 := append([]float64(nil), w1.Grad.Data...)
		g2 := append([]float64(nil), w2.Grad.Data...)

		w1.ZeroGrad()
		w2.ZeroGrad()
		arena.Reset()
		lossA := mlpLoss(arena, w1, w2, x)
		arena.Backward(lossA)

		if lossH.Value.Data[0] != lossA.Value.Data[0] {
			t.Fatalf("pass %d: loss heap %v != arena %v", pass, lossH.Value.Data[0], lossA.Value.Data[0])
		}
		for i := range g1 {
			if g1[i] != w1.Grad.Data[i] {
				t.Fatalf("pass %d: w1 grad[%d] heap %v != arena %v", pass, i, g1[i], w1.Grad.Data[i])
			}
		}
		for i := range g2 {
			if g2[i] != w2.Grad.Data[i] {
				t.Fatalf("pass %d: w2 grad[%d] heap %v != arena %v", pass, i, g2[i], w2.Grad.Data[i])
			}
		}
	}
}

// TestArenaTapeResetClearsState makes sure nothing computed before a Reset
// bleeds into the next pass: two different graphs alternated on one tape
// must each produce the gradients a dedicated fresh tape would.
func TestArenaTapeResetClearsState(t *testing.T) {
	w := randParam("w", 3, 3, 4)
	x1 := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(5)))
	x2 := tensor.Randn(4, 3, 1, rand.New(rand.NewSource(6)))

	ref := func(x *tensor.Matrix) []float64 {
		w.ZeroGrad()
		tp := NewTape()
		tp.Backward(tp.Sum(tp.Sigmoid(tp.MatMul(tp.Const(x), tp.Use(w)))))
		return append([]float64(nil), w.Grad.Data...)
	}
	want1, want2 := ref(x1), ref(x2)

	arena := NewArenaTape()
	for pass := 0; pass < 4; pass++ {
		x, want := x1, want1
		if pass%2 == 1 {
			x, want = x2, want2
		}
		w.ZeroGrad()
		arena.Reset()
		arena.Backward(arena.Sum(arena.Sigmoid(arena.MatMul(arena.Const(x), arena.Use(w)))))
		for i := range want {
			if w.Grad.Data[i] != want[i] {
				t.Fatalf("pass %d: grad[%d] = %v, want %v", pass, i, w.Grad.Data[i], want[i])
			}
		}
	}
}

// TestGradSinkRedirectsAndMerges checks the sharded-gradient path: with a
// sink installed, Backward must leave Param.Grad untouched; MergeInto then
// folds the shard in and clears it for reuse.
func TestGradSinkRedirectsAndMerges(t *testing.T) {
	w := randParam("w", 2, 2, 7)
	params := []*Param{w}

	w.ZeroGrad()
	tp := NewTape()
	tp.Backward(tp.Sum(tp.Mul(tp.Use(w), tp.Use(w))))
	want := append([]float64(nil), w.Grad.Data...)

	w.ZeroGrad()
	sink := NewGradSink()
	st := NewArenaTape()
	st.SetSink(sink)
	st.Backward(st.Sum(st.Mul(st.Use(w), st.Use(w))))
	for i, g := range w.Grad.Data {
		if g != 0 {
			t.Fatalf("Param.Grad[%d] written despite sink: %v", i, g)
		}
	}
	sink.MergeInto(params)
	for i := range want {
		if w.Grad.Data[i] != want[i] {
			t.Fatalf("merged grad[%d] = %v, want %v", i, w.Grad.Data[i], want[i])
		}
	}
	// The shard must be zeroed by the merge so the next batch starts clean.
	st.Reset()
	st.Backward(st.Sum(st.Use(w)))
	sink.MergeInto(params)
	for i := range want {
		if got, wantAcc := w.Grad.Data[i], want[i]+1; got != wantAcc {
			t.Fatalf("second merge grad[%d] = %v, want %v (stale shard?)", i, got, wantAcc)
		}
	}
}

// TestGradSinkMergeOrderDeterministic merges two sinks holding different
// shard values in both orders; since merge iterates the params slice and
// each sink adds its shard, the two orders differ only by float
// reassociation — with these power-of-two values they must agree exactly,
// and repeated merges must be reproducible.
func TestGradSinkMergeOrderDeterministic(t *testing.T) {
	w := NewParam("w", tensor.New(1, 2))
	params := []*Param{w}
	mk := func(v float64) *GradSink {
		s := NewGradSink()
		g := s.Grad(w)
		g.Data[0], g.Data[1] = v, 2*v
		return s
	}
	w.ZeroGrad()
	a, b := mk(0.25), mk(0.5)
	a.MergeInto(params)
	b.MergeInto(params)
	first := append([]float64(nil), w.Grad.Data...)

	w.ZeroGrad()
	a, b = mk(0.25), mk(0.5)
	b.MergeInto(params)
	a.MergeInto(params)
	for i := range first {
		if w.Grad.Data[i] != first[i] {
			t.Fatalf("merge not order-stable at [%d]: %v vs %v", i, w.Grad.Data[i], first[i])
		}
	}
}

// TestSetRandControlsDropout seeds the tape rng identically twice and
// demands identical dropout masks — the tape rng must take precedence over
// the argument rng — and a different seed must (at this size) give a
// different mask.
func TestSetRandControlsDropout(t *testing.T) {
	x := tensor.Full(8, 8, 1)
	mask := func(seed int64) []float64 {
		tp := NewArenaTape()
		tp.SetRand(rand.New(rand.NewSource(seed)))
		// The argument rng varies per call; the tape rng must win.
		arg := rand.New(rand.NewSource(seed + 1000))
		out := tp.Dropout(tp.Const(x), 0.5, arg)
		return append([]float64(nil), out.Value.Data...)
	}
	a, b := mask(1), mask(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different dropout masks")
		}
	}
	c := mask(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-cell dropout masks")
	}
}

// TestTapePoolReuse exercises GetTape/PutTape: a pooled tape must behave
// like a fresh one after being recycled.
func TestTapePoolReuse(t *testing.T) {
	w := randParam("w", 3, 3, 9)
	ref := func() float64 {
		tp := NewTape()
		return tp.Sum(tp.Tanh(tp.Use(w))).Value.Data[0]
	}
	want := ref()
	for i := 0; i < 5; i++ {
		tp := GetTape()
		got := tp.Sum(tp.Tanh(tp.Use(w))).Value.Data[0]
		PutTape(tp)
		if got != want {
			t.Fatalf("pooled tape pass %d: %v != %v", i, got, want)
		}
	}
}

// BenchmarkBackwardMLPArena is the arena'd counterpart of BenchmarkBackwardMLP:
// the identical graph on a reused tape with sharded grads — the allocs/op
// delta is the point.
func BenchmarkBackwardMLPArena(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w1 := NewParam("w1", tensor.Randn(64, 64, 0.1, rng))
	w2 := NewParam("w2", tensor.Randn(64, 8, 0.1, rng))
	x := tensor.Randn(16, 64, 1, rng)
	targets := make([]int, 16)
	sink := NewGradSink()
	tp := NewArenaTape()
	tp.SetSink(sink)
	params := []*Param{w1, w2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.Reset()
		h := tp.Tanh(tp.MatMul(tp.Const(x), tp.Use(w1)))
		loss := tp.CrossEntropy(tp.MatMul(h, tp.Use(w2)), targets)
		w1.ZeroGrad()
		w2.ZeroGrad()
		tp.Backward(loss)
		sink.MergeInto(params)
	}
}
