//go:build wbdebug

package ag

import (
	"strings"
	"testing"

	"webbrief/internal/tensor"
)

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

// TestUseAfterResetPanics: running Backward on a node recorded before Reset
// must trip the generation check instead of silently reading recycled arena
// memory.
func TestUseAfterResetPanics(t *testing.T) {
	tp := NewArenaTape()
	x := tp.Const(tensor.Full(2, 2, 1.5))
	loss := tp.Mean(x)
	tp.Reset()
	mustPanic(t, "before Tape.Reset", func() { tp.Backward(loss) })
}

// TestStaleGradAccumulationPanics: a stale intermediate pulled into a fresh
// graph is caught at its first gradient touch.
func TestStaleGradAccumulationPanics(t *testing.T) {
	tp := NewArenaTape()
	x := tp.Const(tensor.Full(2, 2, 1.0))
	y := tp.Tanh(x)
	tp.Reset()
	mustPanic(t, "before Tape.Reset", func() { y.addGrad(tensor.Full(2, 2, 1.0)) })
}

// TestDoublePutTapePanics: the second PutTape of the same tape must panic
// rather than alias one arena between two future pool holders.
func TestDoublePutTapePanics(t *testing.T) {
	tp := GetTape()
	PutTape(tp)
	mustPanic(t, "double PutTape", func() { PutTape(tp) })
}

// TestPoolRoundTripStillWorks: Get → use → Put → Get must stay clean; the
// lifecycle instrumentation must not misfire on the sanctioned pattern.
func TestPoolRoundTripStillWorks(t *testing.T) {
	for i := 0; i < 3; i++ {
		tp := GetTape()
		x := tp.Const(tensor.Full(1, 1, 2.0))
		tp.Backward(tp.Mean(x))
		PutTape(tp)
	}
}
