//go:build !wbdebug

package ag

// Release-build stubs for the wbdebug tape-lifecycle instrumentation. Every
// hook inlines to nothing, so tapes pay for the checks only under
// `go test -tags wbdebug` (see debug_on.go for what they catch).

func debugStampNode(t *Tape, n *Node) {}

func debugCheckNode(n *Node, op string) {}

func debugTapeReset(t *Tape) {}

func debugTapeGot(t *Tape) {}

func debugTapePut(t *Tape) {}
