package ag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"webbrief/internal/tensor"
)

// numGrad computes the finite-difference gradient of f with respect to p.
func numGrad(p *Param, f func() float64) *tensor.Matrix {
	const h = 1e-6
	g := tensor.New(p.Value.Rows, p.Value.Cols)
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + h
		up := f()
		p.Value.Data[i] = orig - h
		down := f()
		p.Value.Data[i] = orig
		g.Data[i] = (up - down) / (2 * h)
	}
	return g
}

// checkGrad builds the graph via build (returning the scalar loss), runs
// Backward, and compares the analytic parameter gradients to finite
// differences.
func checkGrad(t *testing.T, name string, params []*Param, build func(tp *Tape) *Node) {
	t.Helper()
	forward := func() float64 {
		tp := NewTape()
		return build(tp).Value.Data[0]
	}
	tp := NewTape()
	loss := build(tp)
	for _, p := range params {
		p.ZeroGrad()
	}
	tp.Backward(loss)
	for _, p := range params {
		want := numGrad(p, forward)
		for i := range want.Data {
			diff := math.Abs(p.Grad.Data[i] - want.Data[i])
			scale := math.Max(1, math.Abs(want.Data[i]))
			if diff/scale > 1e-4 {
				t.Fatalf("%s: param %s grad[%d] = %v, finite-diff %v", name, p.Name, i, p.Grad.Data[i], want.Data[i])
			}
		}
	}
}

func randParam(name string, rows, cols int, seed int64) *Param {
	return NewParam(name, tensor.Randn(rows, cols, 0.5, rand.New(rand.NewSource(seed))))
}

func TestGradMatMulChain(t *testing.T) {
	a := randParam("a", 3, 4, 1)
	b := randParam("b", 4, 2, 2)
	checkGrad(t, "matmul-tanh-sum", []*Param{a, b}, func(tp *Tape) *Node {
		return tp.Sum(tp.Tanh(tp.MatMul(tp.Use(a), tp.Use(b))))
	})
}

func TestGradMatMulTransB(t *testing.T) {
	a := randParam("a", 3, 4, 3)
	b := randParam("b", 5, 4, 4)
	checkGrad(t, "matmultransb", []*Param{a, b}, func(tp *Tape) *Node {
		return tp.Mean(tp.Sigmoid(tp.MatMulTransB(tp.Use(a), tp.Use(b))))
	})
}

func TestGradElementwise(t *testing.T) {
	a := randParam("a", 2, 3, 5)
	b := randParam("b", 2, 3, 6)
	checkGrad(t, "add-mul-relu", []*Param{a, b}, func(tp *Tape) *Node {
		na, nb := tp.Use(a), tp.Use(b)
		return tp.Sum(tp.ReLU(tp.Add(tp.Mul(na, nb), tp.Sub(na, nb))))
	})
}

func TestGradScale(t *testing.T) {
	a := randParam("a", 2, 2, 7)
	checkGrad(t, "scale", []*Param{a}, func(tp *Tape) *Node {
		return tp.Sum(tp.Scale(tp.Use(a), 3.5))
	})
}

func TestGradSoftmax(t *testing.T) {
	a := randParam("a", 3, 4, 8)
	w := tensor.Randn(3, 4, 1, rand.New(rand.NewSource(9)))
	checkGrad(t, "softmax-weighted", []*Param{a}, func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.SoftmaxRows(tp.Use(a)), tp.Const(w)))
	})
}

func TestGradLogSoftmax(t *testing.T) {
	a := randParam("a", 2, 5, 10)
	w := tensor.Randn(2, 5, 1, rand.New(rand.NewSource(11)))
	checkGrad(t, "logsoftmax-weighted", []*Param{a}, func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.LogSoftmaxRows(tp.Use(a)), tp.Const(w)))
	})
}

func TestGradConcatSlice(t *testing.T) {
	a := randParam("a", 2, 3, 12)
	b := randParam("b", 2, 2, 13)
	checkGrad(t, "concat-slice", []*Param{a, b}, func(tp *Tape) *Node {
		cc := tp.ConcatCols(tp.Use(a), tp.Use(b))
		rr := tp.ConcatRows(cc, cc)
		return tp.Sum(tp.Tanh(tp.SliceRows(rr, 1, 3)))
	})
}

func TestGradGatherRows(t *testing.T) {
	emb := randParam("emb", 6, 3, 14)
	checkGrad(t, "gather", []*Param{emb}, func(tp *Tape) *Node {
		return tp.Sum(tp.Tanh(tp.Lookup(tp.Use(emb), []int{0, 2, 2, 5})))
	})
}

func TestGradAddRowVector(t *testing.T) {
	a := randParam("a", 3, 4, 15)
	bias := randParam("bias", 1, 4, 16)
	checkGrad(t, "addrow", []*Param{a, bias}, func(tp *Tape) *Node {
		return tp.Sum(tp.Sigmoid(tp.AddRowVector(tp.Use(a), tp.Use(bias))))
	})
}

func TestGradCrossEntropy(t *testing.T) {
	a := randParam("a", 4, 5, 17)
	targets := []int{1, -1, 0, 4} // includes a masked row
	checkGrad(t, "xent", []*Param{a}, func(tp *Tape) *Node {
		return tp.CrossEntropy(tp.Use(a), targets)
	})
}

func TestGradKLDiv(t *testing.T) {
	a := randParam("a", 3, 4, 18)
	teacher := tensor.Randn(3, 4, 1, rand.New(rand.NewSource(19))).SoftmaxRows()
	checkGrad(t, "kldiv", []*Param{a}, func(tp *Tape) *Node {
		return tp.KLDiv(teacher, tp.Use(a))
	})
}

func TestGradL1(t *testing.T) {
	a := randParam("a", 2, 3, 20)
	target := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(21)))
	checkGrad(t, "l1", []*Param{a}, func(tp *Tape) *Node {
		return tp.L1Loss(tp.Tanh(tp.Use(a)), target)
	})
}

func TestGradMSE(t *testing.T) {
	a := randParam("a", 2, 3, 22)
	target := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(23)))
	checkGrad(t, "mse", []*Param{a}, func(tp *Tape) *Node {
		return tp.MSELoss(tp.Use(a), target)
	})
}

func TestGradBCE(t *testing.T) {
	a := randParam("a", 4, 1, 24)
	labels := []int{1, 0, -1, 1}
	checkGrad(t, "bce", []*Param{a}, func(tp *Tape) *Node {
		return tp.BCELoss(tp.Use(a), labels)
	})
}

func TestGradMeanRows(t *testing.T) {
	a := randParam("a", 4, 3, 25)
	checkGrad(t, "meanrows", []*Param{a}, func(tp *Tape) *Node {
		return tp.Sum(tp.Tanh(tp.MeanRows(tp.Use(a))))
	})
}

func TestGradReshapeTranspose(t *testing.T) {
	a := randParam("a", 2, 6, 26)
	checkGrad(t, "reshape-transpose", []*Param{a}, func(tp *Tape) *Node {
		r := tp.Reshape(tp.Use(a), 3, 4)
		return tp.Sum(tp.Tanh(tp.Transpose(r)))
	})
}

func TestGradAddScalars(t *testing.T) {
	a := randParam("a", 2, 2, 27)
	b := randParam("b", 2, 2, 28)
	checkGrad(t, "addscalars", []*Param{a, b}, func(tp *Tape) *Node {
		return tp.AddScalars(tp.Sum(tp.Use(a)), tp.Scale(tp.Mean(tp.Use(b)), 2))
	})
}

// Property test: for random small graphs mixing several ops, analytic and
// numeric gradients agree. This is the single most important invariant in
// the repository — every model's training depends on it.
func TestGradRandomGraphsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, inner, cols := 1+r.Intn(3), 1+r.Intn(3), 1+r.Intn(3)
		a := NewParam("a", tensor.Randn(rows, inner, 0.7, r))
		b := NewParam("b", tensor.Randn(inner, cols, 0.7, r))
		build := func(tp *Tape) *Node {
			h := tp.Tanh(tp.MatMul(tp.Use(a), tp.Use(b)))
			s := tp.SoftmaxRows(h)
			return tp.Mean(tp.Mul(s, h))
		}
		forward := func() float64 { return build(NewTape()).Value.Data[0] }
		tp := NewTape()
		loss := build(tp)
		a.ZeroGrad()
		b.ZeroGrad()
		tp.Backward(loss)
		for _, p := range []*Param{a, b} {
			want := numGrad(p, forward)
			for i := range want.Data {
				if math.Abs(p.Grad.Data[i]-want.Data[i]) > 1e-4*math.Max(1, math.Abs(want.Data[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := NewParam("a", tensor.Full(10, 10, 1))
	tp := NewTape()
	out := tp.Dropout(tp.Use(a), 0.5, rng)
	// Inverted dropout preserves the expectation: surviving entries are 2.
	zeros, twos := 0, 0
	for _, v := range out.Value.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatal("dropout mask degenerate")
	}
	// p <= 0 must be the identity node.
	tp2 := NewTape()
	in := tp2.Use(a)
	if tp2.Dropout(in, 0, rng) != in {
		t.Fatal("Dropout(0) should be identity")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	tp := NewTape()
	n := tp.Const(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar should panic")
		}
	}()
	tp.Backward(n)
}

func TestParamGradAccumulatesAcrossTapes(t *testing.T) {
	a := NewParam("a", tensor.Full(1, 1, 2))
	for i := 0; i < 3; i++ {
		tp := NewTape()
		loss := tp.Sum(tp.Mul(tp.Use(a), tp.Use(a))) // d/da a² = 2a = 4
		tp.Backward(loss)
	}
	if math.Abs(a.Grad.Data[0]-12) > 1e-12 {
		t.Fatalf("grad should accumulate to 12, got %v", a.Grad.Data[0])
	}
	a.ZeroGrad()
	if a.Grad.Data[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestCrossEntropyAllMaskedIsZero(t *testing.T) {
	tp := NewTape()
	logits := tp.Const(tensor.Randn(2, 3, 1, rand.New(rand.NewSource(31))))
	loss := tp.CrossEntropy(logits, []int{-1, -1})
	if loss.Value.Data[0] != 0 {
		t.Fatalf("fully masked loss should be 0, got %v", loss.Value.Data[0])
	}
}

func BenchmarkBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w1 := NewParam("w1", tensor.Randn(64, 64, 0.1, rng))
	w2 := NewParam("w2", tensor.Randn(64, 8, 0.1, rng))
	x := tensor.Randn(16, 64, 1, rng)
	targets := make([]int, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		h := tp.Tanh(tp.MatMul(tp.Const(x), tp.Use(w1)))
		loss := tp.CrossEntropy(tp.MatMul(h, tp.Use(w2)), targets)
		w1.ZeroGrad()
		w2.ZeroGrad()
		tp.Backward(loss)
	}
}
