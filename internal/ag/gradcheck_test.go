package ag

import (
	"math/rand"
	"testing"

	"webbrief/internal/tensor"
)

// gradcheck_test drives GradCheck over every op in ops_extra.go and every
// ag op whose forward runs through a destination-passing kernel in
// tensor/into.go, validating analytic against numeric gradients to 1e-4
// relative error (the PR-1 equivalence tests only compared Workers values,
// not analytic-vs-numeric).

const (
	gcEps = 1e-5
	gcTol = 1e-4
)

// gcParam builds a named parameter with N(0, std²) entries. Entries near
// zero are nudged away so kink-bearing ops (ReLU, L1) and central
// differences never straddle a nondifferentiable point.
func gcParam(name string, rows, cols int, seed int64) *Param {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.Randn(rows, cols, 0.8, rng)
	for i, v := range m.Data {
		if v > -0.05 && v < 0.05 {
			if v < 0 {
				m.Data[i] = v - 0.1
			} else {
				m.Data[i] = v + 0.1
			}
		}
	}
	return NewParam(name, m)
}

// weightedSum reduces y to a scalar against fixed weights so every output
// element contributes a distinct gradient path (a plain Mean would give
// RowNorm an identically-zero gradient and hide backward bugs).
func weightedSum(tp *Tape, y *Node, seed int64) *Node {
	w := tensor.Randn(y.Value.Rows, y.Value.Cols, 1, rand.New(rand.NewSource(seed)))
	return tp.Sum(tp.Mul(y, tp.Const(w)))
}

func runGradCheck(t *testing.T, params []*Param, build func(tp *Tape) *Node) {
	t.Helper()
	if err := GradCheck(params, build, gcEps, gcTol); err != nil {
		t.Fatal(err)
	}
}

// --- ops_extra.go ----------------------------------------------------------

func TestGradCheckSliceCols(t *testing.T) {
	a := gcParam("a", 3, 5, 1)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.SliceCols(tp.Use(a), 1, 4), 100)
	})
}

func TestGradCheckMulRowVector(t *testing.T) {
	a := gcParam("a", 3, 4, 2)
	v := gcParam("v", 1, 4, 3)
	runGradCheck(t, []*Param{a, v}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.MulRowVector(tp.Use(a), tp.Use(v)), 101)
	})
}

func TestGradCheckRowNorm(t *testing.T) {
	a := gcParam("a", 3, 6, 4)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.RowNorm(tp.Use(a), 1e-5), 102)
	})
}

func TestGradCheckL1Between(t *testing.T) {
	a := gcParam("a", 2, 3, 5)
	b := gcParam("b", 2, 3, 6)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return tp.L1Between(tp.Use(a), tp.Use(b))
	})
}

func TestGradCheckAddMasked(t *testing.T) {
	a := gcParam("a", 2, 4, 7)
	// Modest mask values: the op's gradient is mask-independent, and huge
	// offsets would destroy the precision of the finite differences.
	mask := tensor.FromSlice(2, 4, []float64{0, -2.5, 0, 0, -2.5, 0, 0, -2.5})
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.AddMasked(tp.Use(a), mask), 103)
	})
}

// --- ops backed by tensor/into.go destination-passing kernels ---------------

func TestGradCheckAdd(t *testing.T) {
	a := gcParam("a", 3, 3, 10)
	b := gcParam("b", 3, 3, 11)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.Add(tp.Use(a), tp.Use(b)), 110)
	})
}

func TestGradCheckSub(t *testing.T) {
	a := gcParam("a", 3, 3, 12)
	b := gcParam("b", 3, 3, 13)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.Sub(tp.Use(a), tp.Use(b)), 111)
	})
}

func TestGradCheckMul(t *testing.T) {
	a := gcParam("a", 3, 3, 14)
	b := gcParam("b", 3, 3, 15)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.Mul(tp.Use(a), tp.Use(b)), 112)
	})
}

func TestGradCheckScale(t *testing.T) {
	a := gcParam("a", 2, 4, 16)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.Scale(tp.Use(a), -1.7), 113)
	})
}

func TestGradCheckMatMul(t *testing.T) {
	a := gcParam("a", 3, 4, 17)
	b := gcParam("b", 4, 2, 18)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.MatMul(tp.Use(a), tp.Use(b)), 114)
	})
}

func TestGradCheckMatMulTransB(t *testing.T) {
	a := gcParam("a", 3, 4, 19)
	b := gcParam("b", 2, 4, 20)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.MatMulTransB(tp.Use(a), tp.Use(b)), 115)
	})
}

func TestGradCheckAddRowVector(t *testing.T) {
	a := gcParam("a", 3, 4, 21)
	v := gcParam("v", 1, 4, 22)
	runGradCheck(t, []*Param{a, v}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.AddRowVector(tp.Use(a), tp.Use(v)), 116)
	})
}

func TestGradCheckTanh(t *testing.T) {
	a := gcParam("a", 2, 5, 23)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.Tanh(tp.Use(a)), 117)
	})
}

func TestGradCheckSigmoid(t *testing.T) {
	a := gcParam("a", 2, 5, 24)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.Sigmoid(tp.Use(a)), 118)
	})
}

func TestGradCheckReLU(t *testing.T) {
	a := gcParam("a", 2, 5, 25) // entries nudged away from the kink at 0
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.ReLU(tp.Use(a)), 119)
	})
}

func TestGradCheckSoftmaxRows(t *testing.T) {
	a := gcParam("a", 3, 4, 26)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.SoftmaxRows(tp.Use(a)), 120)
	})
}

func TestGradCheckLogSoftmaxRows(t *testing.T) {
	a := gcParam("a", 3, 4, 27)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.LogSoftmaxRows(tp.Use(a)), 121)
	})
}

func TestGradCheckConcatCols(t *testing.T) {
	a := gcParam("a", 3, 2, 28)
	b := gcParam("b", 3, 4, 29)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.ConcatCols(tp.Use(a), tp.Use(b)), 122)
	})
}

func TestGradCheckConcatRows(t *testing.T) {
	a := gcParam("a", 2, 3, 30)
	b := gcParam("b", 4, 3, 31)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.ConcatRows(tp.Use(a), tp.Use(b)), 123)
	})
}

func TestGradCheckTranspose(t *testing.T) {
	a := gcParam("a", 3, 5, 32)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.Transpose(tp.Use(a)), 124)
	})
}

// --- remaining tape ops with kernel-backed forwards or masked losses --------

func TestGradCheckGatherRows(t *testing.T) {
	a := gcParam("a", 4, 3, 33)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.GatherRows(tp.Use(a), []int{2, 0, 2, 3}), 125)
	})
}

func TestGradCheckSeededDropout(t *testing.T) {
	// With the tape rng re-seeded per forward — the engine's per-example
	// convention — dropout is a fixed mask and its gradient must check out.
	a := gcParam("a", 3, 4, 34)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		tp.SetRand(rand.New(rand.NewSource(7)))
		return weightedSum(tp, tp.Dropout(tp.Use(a), 0.4, nil), 126)
	})
}

func TestGradCheckCrossEntropy(t *testing.T) {
	logits := gcParam("logits", 4, 3, 35)
	targets := []int{2, 0, -1, 1} // includes a padding row
	runGradCheck(t, []*Param{logits}, func(tp *Tape) *Node {
		return tp.CrossEntropy(tp.Use(logits), targets)
	})
}

func TestGradCheckBCELoss(t *testing.T) {
	logits := gcParam("logits", 4, 1, 36)
	labels := []int{1, 0, -1, 1} // includes a padding entry
	runGradCheck(t, []*Param{logits}, func(tp *Tape) *Node {
		return tp.BCELoss(tp.Use(logits), labels)
	})
}

func TestGradCheckKLDiv(t *testing.T) {
	logits := gcParam("logits", 3, 4, 37)
	teacher := tensor.Randn(3, 4, 1, rand.New(rand.NewSource(38))).SoftmaxRows()
	runGradCheck(t, []*Param{logits}, func(tp *Tape) *Node {
		return tp.KLDiv(teacher, tp.Use(logits))
	})
}

func TestGradCheckMSELoss(t *testing.T) {
	a := gcParam("a", 2, 3, 39)
	target := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(40)))
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return tp.MSELoss(tp.Use(a), target)
	})
}

func TestGradCheckL1Loss(t *testing.T) {
	a := gcParam("a", 2, 3, 41)
	target := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(42)))
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return tp.L1Loss(tp.Use(a), target)
	})
}

func TestGradCheckMeanRows(t *testing.T) {
	a := gcParam("a", 4, 3, 43)
	runGradCheck(t, []*Param{a}, func(tp *Tape) *Node {
		return weightedSum(tp, tp.MeanRows(tp.Use(a)), 127)
	})
}

func TestGradCheckAddScalars(t *testing.T) {
	a := gcParam("a", 2, 2, 44)
	b := gcParam("b", 3, 3, 45)
	runGradCheck(t, []*Param{a, b}, func(tp *Tape) *Node {
		return tp.AddScalars(tp.Mean(tp.Use(a)), tp.Sum(tp.Use(b)))
	})
}

// TestGradCheckCatchesWrongGradient guards the harness itself: a loss whose
// backward is deliberately broken must fail the check.
func TestGradCheckCatchesWrongGradient(t *testing.T) {
	a := gcParam("a", 2, 2, 46)
	err := GradCheck([]*Param{a}, func(tp *Tape) *Node {
		x := tp.Use(a)
		// Forward computes sum(x²) but the recorded graph is sum(x): the
		// analytic gradient (1) disagrees with the numeric one (2x).
		var forward float64
		for _, v := range a.Value.Data {
			forward += v * v
		}
		n := tp.scalar(forward)
		n.back = func() {
			g := x.grad()
			for i := range g.Data {
				g.Data[i] += n.Grad.Data[0]
			}
		}
		return n
	}, gcEps, gcTol)
	if err == nil {
		t.Fatal("GradCheck accepted a broken backward closure")
	}
}
