package ag

import (
	"fmt"

	"webbrief/internal/tensor"
)

// Tape32 is the float32 inference tape behind the distilled-student serving
// tier. Unlike Tape it is value-level: the student never trains, so there
// is no Node graph, no backward closures and no gradient storage — each op
// takes and returns *tensor.Matrix32 directly, drawing every intermediate
// from a private reusable Arena32. That keeps the student forward
// allocation-free after warm-up (the same contract NewInferTape gives the
// float64 path) while avoiding a per-op node record the student would never
// read.
//
// A Tape32 is not safe for concurrent use; each serving replica owns one
// inside its wb scratch.
type Tape32 struct {
	arena *tensor.Arena32
	pack  *tensor.PackBuf32 // nil: MatMul uses the unpacked kernel
}

// NewInferTape32 returns an empty float32 inference tape. Call Reset
// between forwards to reuse the arena; nothing allocated before a Reset may
// be referenced after it.
func NewInferTape32() *Tape32 { return &Tape32{arena: tensor.NewArena32()} }

// SetPack attaches a caller-owned pack buffer; while set, MatMul routes
// through the panel-packed kernel (tensor.MatMulPackInto32). The buffer
// must not be shared with a concurrently running tape.
func (t *Tape32) SetPack(p *tensor.PackBuf32) { t.pack = p }

// Reset rewinds the arena so the next forward reuses the same memory.
func (t *Tape32) Reset() { t.arena.Reset() }

// AllocValue returns a zeroed rows×cols matrix from the tape's arena. The
// matrix obeys tape lifetime: invalid after Reset.
func (t *Tape32) AllocValue(rows, cols int) *tensor.Matrix32 { return t.arena.Alloc(rows, cols) }

// ViewValue returns a rows×cols matrix header whose backing storage IS data
// (no copy), from the tape's arena — the batched decode exposes row windows
// of a shared slab through it.
func (t *Tape32) ViewValue(rows, cols int, data []float32) *tensor.Matrix32 {
	return t.arena.AllocShared(rows, cols, data)
}

// Footprint reports the arena's float count, for capacity diagnostics.
func (t *Tape32) Footprint() int { return t.arena.Footprint() }

// Add returns a + b.
func (t *Tape32) Add(a, b *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, a.Cols)
	tensor.AddInto32(v, a, b)
	return v
}

// Mul returns the elementwise product a ⊙ b.
func (t *Tape32) Mul(a, b *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, a.Cols)
	tensor.MulInto32(v, a, b)
	return v
}

// MatMul returns a·b, routed through the pack buffer when one is attached.
func (t *Tape32) MatMul(a, b *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, b.Cols)
	if t.pack != nil {
		tensor.MatMulPackInto32(v, a, b, t.pack)
	} else {
		tensor.MatMulInto32(v, a, b)
	}
	return v
}

// MatMulTransB returns a·bᵀ.
func (t *Tape32) MatMulTransB(a, b *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, b.Rows)
	tensor.MatMulTransBInto32(v, a, b)
	return v
}

// AddRowVector adds the 1×cols vector vec to every row of a.
func (t *Tape32) AddRowVector(a, vec *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, a.Cols)
	tensor.AddRowVectorInto32(v, a, vec)
	return v
}

// Tanh applies tanh elementwise.
func (t *Tape32) Tanh(a *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, a.Cols)
	tensor.TanhInto32(v, a)
	return v
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape32) Sigmoid(a *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, a.Cols)
	tensor.SigmoidInto32(v, a)
	return v
}

// SoftmaxRows applies row-wise softmax.
func (t *Tape32) SoftmaxRows(a *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, a.Cols)
	tensor.SoftmaxRowsInto32(v, a)
	return v
}

// LogSoftmaxRows applies row-wise log-softmax.
func (t *Tape32) LogSoftmaxRows(a *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, a.Cols)
	tensor.LogSoftmaxRowsInto32(v, a)
	return v
}

// Transpose returns aᵀ.
func (t *Tape32) Transpose(a *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Cols, a.Rows)
	tensor.TransposeInto32(v, a)
	return v
}

// ConcatCols joins matrices horizontally.
func (t *Tape32) ConcatCols(ms ...*tensor.Matrix32) *tensor.Matrix32 {
	cols := 0
	for _, m := range ms {
		cols += m.Cols
	}
	v := t.AllocValue(ms[0].Rows, cols)
	tensor.ConcatColsInto32(v, ms...)
	return v
}

// ConcatCols2 joins exactly two matrices horizontally without the variadic
// slice — the per-token hot call of the BiLSTM forward.
func (t *Tape32) ConcatCols2(a, b *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(a.Rows, a.Cols+b.Cols)
	tensor.ConcatColsInto32(v, a, b)
	return v
}

// ConcatRows stacks matrices vertically.
func (t *Tape32) ConcatRows(ms ...*tensor.Matrix32) *tensor.Matrix32 {
	rows := 0
	for _, m := range ms {
		rows += m.Rows
	}
	v := t.AllocValue(rows, ms[0].Cols)
	tensor.ConcatRowsInto32(v, ms...)
	return v
}

// SliceRows takes rows [lo, hi) of a.
func (t *Tape32) SliceRows(a *tensor.Matrix32, lo, hi int) *tensor.Matrix32 {
	if lo < 0 || hi > a.Rows || lo >= hi {
		panic(fmt.Sprintf("ag: Tape32.SliceRows [%d,%d) out of range for %d rows", lo, hi, a.Rows))
	}
	v := t.AllocValue(hi-lo, a.Cols)
	copy(v.Data, a.Data[lo*a.Cols:hi*a.Cols])
	return v
}

// SliceCols takes columns [lo, hi) of a — the LSTM gate split.
func (t *Tape32) SliceCols(a *tensor.Matrix32, lo, hi int) *tensor.Matrix32 {
	if lo < 0 || hi > a.Cols || lo >= hi {
		panic(fmt.Sprintf("ag: Tape32.SliceCols [%d,%d) out of range for %d cols", lo, hi, a.Cols))
	}
	v := t.AllocValue(a.Rows, hi-lo)
	for i := 0; i < a.Rows; i++ {
		copy(v.Row(i), a.Row(i)[lo:hi])
	}
	return v
}

// GatherRows selects the given rows of a (rows may repeat).
func (t *Tape32) GatherRows(a *tensor.Matrix32, rows []int) *tensor.Matrix32 {
	v := t.AllocValue(len(rows), a.Cols)
	for i, r := range rows {
		copy(v.Row(i), a.Row(r))
	}
	return v
}

// Lookup gathers embedding rows ids from table — the embedding forward.
func (t *Tape32) Lookup(table *tensor.Matrix32, ids []int) *tensor.Matrix32 {
	return t.GatherRows(table, ids)
}

// MeanRows averages over rows, returning a 1×cols matrix. The per-column
// sums accumulate in float64: document-length row counts make this the
// student's longest fixed-order reduction, and the widened accumulator
// keeps it within the kernel tier's error bound.
func (t *Tape32) MeanRows(a *tensor.Matrix32) *tensor.Matrix32 {
	v := t.AllocValue(1, a.Cols)
	inv := 1 / float64(a.Rows)
	for j := 0; j < a.Cols; j++ {
		var s float64
		for i := 0; i < a.Rows; i++ {
			s += float64(a.Data[i*a.Cols+j])
		}
		v.Data[j] = float32(s * inv)
	}
	return v
}
