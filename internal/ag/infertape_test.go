package ag

import (
	"math/rand"
	"testing"

	"webbrief/internal/tensor"
)

// inferForward runs a representative op mix (the briefing model's diet) on
// tape t and returns the final scalar.
func inferForward(t *Tape, w *Param, x *tensor.Matrix) float64 {
	xn := t.Const(x)
	h := t.Tanh(t.MatMul(xn, t.Use(w)))
	h = t.ConcatCols2(h, t.Sigmoid(h))
	h = t.SliceCols(h, 0, w.Value.Cols)
	h = t.AddRowVector(h, t.MeanRows(h))
	return t.Sum(t.SoftmaxRows(h)).Value.Data[0]
}

// TestInferTapeMatchesGradTape checks nograd mode changes no forward value.
func TestInferTapeMatchesGradTape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewParam("w", tensor.Randn(6, 6, 1, rng))
	x := tensor.Randn(3, 6, 1, rng)
	want := inferForward(NewTape(), w, x)
	it := NewInferTape()
	if got := inferForward(it, w, x); got != want {
		t.Fatalf("infer tape forward = %v, grad tape = %v", got, want)
	}
	it.Reset()
	if got := inferForward(it, w, x); got != want {
		t.Fatalf("reused infer tape forward = %v, want %v", got, want)
	}
}

// TestInferTapeAllocationFree is the kernel-level allocation gate: a warm
// no-gradient tape must run forwards without touching the heap (no backward
// closures, arena-backed values).
func TestInferTapeAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := NewParam("w", tensor.Randn(6, 6, 1, rng))
	x := tensor.Randn(3, 6, 1, rng)
	it := NewInferTape()
	it.SetPack(&tensor.PackBuf{})
	inferForward(it, w, x) // warm the arena and node blocks
	allocs := testing.AllocsPerRun(20, func() {
		it.Reset()
		inferForward(it, w, x)
	})
	if allocs > 0 {
		t.Fatalf("warm infer tape allocates %v per forward, want 0", allocs)
	}
}

// TestInferTapeBackwardPanics pins the misuse guard.
func TestInferTapeBackwardPanics(t *testing.T) {
	it := NewInferTape()
	n := it.Sum(it.Const(tensor.Full(2, 2, 1)))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on an infer tape must panic")
		}
	}()
	it.Backward(n)
}
