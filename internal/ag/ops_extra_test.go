package ag

import (
	"math"
	"math/rand"
	"testing"

	"webbrief/internal/tensor"
)

func TestGradSliceCols(t *testing.T) {
	a := randParam("a", 3, 6, 40)
	checkGrad(t, "slicecols", []*Param{a}, func(tp *Tape) *Node {
		n := tp.Use(a)
		left := tp.SliceCols(n, 0, 3)
		right := tp.SliceCols(n, 3, 6)
		return tp.Sum(tp.Tanh(tp.Mul(left, right)))
	})
}

func TestGradMulRowVector(t *testing.T) {
	a := randParam("a", 3, 4, 41)
	g := randParam("gain", 1, 4, 42)
	checkGrad(t, "mulrow", []*Param{a, g}, func(tp *Tape) *Node {
		return tp.Sum(tp.Sigmoid(tp.MulRowVector(tp.Use(a), tp.Use(g))))
	})
}

func TestGradRowNorm(t *testing.T) {
	a := randParam("a", 3, 5, 43)
	w := tensor.Randn(3, 5, 1, rand.New(rand.NewSource(44)))
	checkGrad(t, "rownorm", []*Param{a}, func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.RowNorm(tp.Use(a), 1e-5), tp.Const(w)))
	})
}

func TestRowNormStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	tp := NewTape()
	out := tp.RowNorm(tp.Const(tensor.Randn(4, 16, 3, rng)), 1e-8)
	for i := 0; i < 4; i++ {
		row := out.Value.Row(i)
		var mean, variance float64
		for _, v := range row {
			mean += v
		}
		mean /= 16
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= 16
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-4 {
			t.Fatalf("row %d not standardised: mean=%v var=%v", i, mean, variance)
		}
	}
}

func TestGradAddMasked(t *testing.T) {
	a := randParam("a", 2, 3, 46)
	mask := tensor.FromSlice(2, 3, []float64{0, -1e9, 0, 0, 0, -1e9})
	checkGrad(t, "addmasked", []*Param{a}, func(tp *Tape) *Node {
		return tp.Sum(tp.SoftmaxRows(tp.AddMasked(tp.Use(a), mask)))
	})
}

func TestAddMaskedBlocksAttention(t *testing.T) {
	tp := NewTape()
	logits := tp.Const(tensor.Full(1, 4, 1))
	mask := tensor.FromSlice(1, 4, []float64{0, 0, -1e9, -1e9})
	att := tp.SoftmaxRows(tp.AddMasked(logits, mask))
	if att.Value.Data[2] > 1e-10 || att.Value.Data[3] > 1e-10 {
		t.Fatalf("masked positions should get ~0 attention: %v", att.Value.Data)
	}
	if math.Abs(att.Value.Data[0]-0.5) > 1e-9 {
		t.Fatalf("unmasked mass should split evenly: %v", att.Value.Data)
	}
}

func TestSliceColsOutOfRangePanics(t *testing.T) {
	tp := NewTape()
	n := tp.Const(tensor.New(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp.SliceCols(n, 2, 5)
}
