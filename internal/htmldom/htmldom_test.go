package htmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

func collect(src string) []Token {
	z := NewTokenizer(src)
	var toks []Token
	for {
		tok, ok := z.Next()
		if !ok {
			return toks
		}
		toks = append(toks, tok)
	}
}

func TestTokenizerBasicSequence(t *testing.T) {
	toks := collect(`<div class="a">hi</div>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "div" {
		t.Fatalf("start: %+v", toks[0])
	}
	if v, ok := toks[0].Attr("class"); !ok || v != "a" {
		t.Fatalf("attr: %+v", toks[0].Attrs)
	}
	if toks[1].Type != TextToken || toks[1].Data != "hi" {
		t.Fatalf("text: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "div" {
		t.Fatalf("end: %+v", toks[2])
	}
}

func TestTokenizerAttributeQuoting(t *testing.T) {
	toks := collect(`<a href="x" title='y y' data-k=z disabled>`)
	tok := toks[0]
	for _, want := range []struct{ k, v string }{
		{"href", "x"}, {"title", "y y"}, {"data-k", "z"}, {"disabled", ""},
	} {
		if v, ok := tok.Attr(want.k); !ok || v != want.v {
			t.Errorf("attr %q = %q, %v", want.k, v, ok)
		}
	}
}

func TestTokenizerUppercaseTagsLowered(t *testing.T) {
	toks := collect(`<DIV ID="x">t</DIV>`)
	if toks[0].Data != "div" || toks[2].Data != "div" {
		t.Fatalf("tags not lowercased: %+v", toks)
	}
	if _, ok := toks[0].Attr("id"); !ok {
		t.Fatal("attr names not lowercased")
	}
}

func TestTokenizerComments(t *testing.T) {
	toks := collect(`a<!-- secret <div> -->b`)
	if len(toks) != 3 || toks[1].Type != CommentToken {
		t.Fatalf("comment: %+v", toks)
	}
	if !strings.Contains(toks[1].Data, "secret <div>") {
		t.Fatalf("comment content: %q", toks[1].Data)
	}
}

func TestTokenizerDoctype(t *testing.T) {
	toks := collect(`<!DOCTYPE html><p>x</p>`)
	if toks[0].Type != DoctypeToken {
		t.Fatalf("doctype: %+v", toks[0])
	}
}

func TestTokenizerScriptRawText(t *testing.T) {
	toks := collect(`<script>if (a < b) { x = "<div>"; }</script><p>after</p>`)
	if toks[0].Type != StartTagToken || toks[0].Data != "script" {
		t.Fatalf("script start: %+v", toks[0])
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, `a < b`) {
		t.Fatalf("script body should be raw text: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("script end: %+v", toks[2])
	}
}

func TestTokenizerSelfClosing(t *testing.T) {
	toks := collect(`<br/><img src="x"/>`)
	if toks[0].Type != SelfClosingTagToken || toks[1].Type != SelfClosingTagToken {
		t.Fatalf("self closing: %+v", toks)
	}
}

func TestTokenizerEntities(t *testing.T) {
	toks := collect(`Tom &amp; Jerry &lt;3 &#65; &#x42; &unknown; &copy;`)
	got := toks[0].Data
	want := `Tom & Jerry <3 A B &unknown; ©`
	if got != want {
		t.Fatalf("entities: %q want %q", got, want)
	}
}

func TestTokenizerNeverPanicsProperty(t *testing.T) {
	// Tag soup must never panic and must always terminate.
	f := func(s string) bool {
		_ = collect(s)
		_ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Hand-picked nasties.
	for _, s := range []string{
		"<", "<>", "</", "<div", "<div attr", `<div a="`, "<!--", "<!",
		"</div></div>", "<script>", "<p><p><p>", "&#xZZ;", "&;", "a<b>c",
	} {
		_ = collect(s)
		_ = Parse(s)
	}
}

func TestParseTreeShape(t *testing.T) {
	doc := Parse(`<html><body><div id="main"><p>one</p><p>two</p></div></body></html>`)
	body := doc.Find("body")
	if body == nil {
		t.Fatal("no body")
	}
	div := body.Find("div")
	if div == nil || len(div.Children) != 2 {
		t.Fatalf("div children: %+v", div)
	}
	if id, _ := div.Attr("id"); id != "main" {
		t.Fatal("attr lost")
	}
	ps := doc.FindAll("p")
	if len(ps) != 2 {
		t.Fatalf("FindAll p: %d", len(ps))
	}
	if ps[0].Children[0].Text != "one" {
		t.Fatalf("text: %+v", ps[0].Children[0])
	}
	if ps[0].Parent != div {
		t.Fatal("parent pointer wrong")
	}
}

func TestParseImpliedEndTags(t *testing.T) {
	doc := Parse(`<ul><li>a<li>b<li>c</ul>`)
	lis := doc.FindAll("li")
	if len(lis) != 3 {
		t.Fatalf("implied </li>: got %d li", len(lis))
	}
	for _, li := range lis {
		if li.Parent.Tag != "ul" {
			t.Fatalf("li nested inside %q, want ul", li.Parent.Tag)
		}
	}
	doc2 := Parse(`<table><tr><td>1<td>2<tr><td>3</table>`)
	if got := len(doc2.FindAll("tr")); got != 2 {
		t.Fatalf("tr count: %d", got)
	}
	if got := len(doc2.FindAll("td")); got != 3 {
		t.Fatalf("td count: %d", got)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<p>a<br>b<img src="x">c</p>`)
	ps := doc.FindAll("p")
	if len(ps) != 1 {
		t.Fatalf("p count %d", len(ps))
	}
	// br and img must not swallow following content.
	br := doc.Find("br")
	if len(br.Children) != 0 {
		t.Fatal("void element has children")
	}
	var texts []string
	doc.Walk(func(n *Node) bool {
		if n.Type == TextNode {
			texts = append(texts, n.Text)
		}
		return true
	})
	if strings.Join(texts, "") != "abc" {
		t.Fatalf("texts: %v", texts)
	}
}

func TestParseStrayEndTagIgnored(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	div := doc.Find("div")
	var texts []string
	div.Walk(func(n *Node) bool {
		if n.Type == TextNode {
			texts = append(texts, n.Text)
		}
		return true
	})
	if strings.Join(texts, "") != "ab" {
		t.Fatalf("stray close mangled tree: %v", texts)
	}
}

func TestVisibleTextBasics(t *testing.T) {
	src := `<html><head><title>T</title><style>.x{}</style></head>
	<body><h1>Header</h1><p>Hello <b>world</b>!</p>
	<script>var x = "invisible";</script>
	<div style="display: none">hidden</div>
	<div hidden>also hidden</div>
	<p>Visible   with   spaces</p></body></html>`
	got := VisibleText(Parse(src))
	if strings.Contains(got, "invisible") || strings.Contains(got, "hidden") {
		t.Fatalf("leaked invisible content: %q", got)
	}
	if strings.Contains(got, "T\n") || strings.HasPrefix(got, "T") {
		t.Fatalf("title should not be visible body text: %q", got)
	}
	lines := strings.Split(got, "\n")
	if lines[0] != "Header" {
		t.Fatalf("first line: %q", lines[0])
	}
	if lines[1] != "Hello world !" && lines[1] != "Hello world!" {
		t.Fatalf("inline join: %q", lines[1])
	}
	if !strings.Contains(got, "Visible with spaces") {
		t.Fatalf("whitespace not collapsed: %q", got)
	}
}

func TestVisibleTextBlockBoundaries(t *testing.T) {
	src := `<div>first block</div><div>second block</div><span>same </span><span>line</span>`
	got := VisibleText(Parse(src))
	lines := strings.Split(got, "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %q", lines)
	}
	if lines[0] != "first block" || lines[1] != "second block" || lines[2] != "same line" {
		t.Fatalf("block split wrong: %q", lines)
	}
}

func TestVisibleTextImgAlt(t *testing.T) {
	got := VisibleText(Parse(`<p><img src="x.png" alt="A red bicycle"> for sale</p>`))
	if !strings.Contains(got, "A red bicycle") {
		t.Fatalf("alt text missing: %q", got)
	}
}

func TestVisibleLines(t *testing.T) {
	lines := VisibleLines(Parse(`<p>a</p><p>b</p>`))
	if len(lines) != 2 || lines[0] != "a" || lines[1] != "b" {
		t.Fatalf("VisibleLines: %v", lines)
	}
	if VisibleLines(Parse(``)) != nil {
		t.Fatal("empty doc should give nil")
	}
}

func TestTitle(t *testing.T) {
	doc := Parse(`<html><head><title>  My   Page </title></head><body>x</body></html>`)
	if got := Title(doc); got != "My Page" {
		t.Fatalf("Title: %q", got)
	}
	if got := Title(Parse(`<p>no title</p>`)); got != "" {
		t.Fatalf("missing title: %q", got)
	}
}

func TestHasClass(t *testing.T) {
	doc := Parse(`<div class="nav main-nav top">x</div>`)
	div := doc.Find("div")
	if !div.HasClass("main-nav") || div.HasClass("main") {
		t.Fatal("HasClass")
	}
}

func TestUnescapeEntitiesEdgeCases(t *testing.T) {
	cases := map[string]string{
		"no entities":   "no entities",
		"&amp;&amp;":    "&&",
		"&#0;":          "&#0;", // NUL rejected
		"&toolongname;": "&toolongname;",
		"&":             "&",
		"a&#x2014;b":    "a—b",
	}
	for in, want := range cases {
		if got := UnescapeEntities(in); got != want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWalkSkipSubtree(t *testing.T) {
	doc := Parse(`<div><p>skip me</p></div><span>keep</span>`)
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Tag)
			return n.Tag != "div" // skip div subtree
		}
		return true
	})
	for _, tag := range visited {
		if tag == "p" {
			t.Fatal("subtree not skipped")
		}
	}
}

func TestRoundTripRealisticPage(t *testing.T) {
	src := `<!DOCTYPE html>
<html><head><title>Deep Learning Book | BookShop</title>
<meta charset="utf-8"><link rel="stylesheet" href="s.css">
<script src="app.js"></script></head>
<body>
<nav class="nav"><ul><li><a href="/">Home</a><li><a href="/books">Books</a></ul></nav>
<main>
<h1>An Introduction to Deep Learning</h1>
<div class="meta">by <span class="author">Eugene Charniak</span></div>
<div class="price">$40.13</div>
<p>A guide to writing deep learning programs, with the widely-used
Python language &amp; TensorFlow environment.</p>
<table><tr><th>Format</th><td>Hardcover</td></tr>
<tr><th>Pages</th><td>192</td></tr></table>
</main>
<footer>&copy; 2021 BookShop Inc.</footer>
</body></html>`
	doc := Parse(src)
	text := VisibleText(doc)
	for _, want := range []string{
		"An Introduction to Deep Learning", "Eugene Charniak", "$40.13",
		"Hardcover", "192", "© 2021 BookShop Inc.", "Python language & TensorFlow",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in rendered text:\n%s", want, text)
		}
	}
	if strings.Contains(text, "app.js") || strings.Contains(text, "stylesheet") {
		t.Errorf("head resources leaked: %s", text)
	}
	if Title(doc) != "Deep Learning Book | BookShop" {
		t.Errorf("title: %q", Title(doc))
	}
}

func BenchmarkParse(b *testing.B) {
	src := strings.Repeat(`<div class="row"><span>cell a</span><span>cell b</span><p>Some paragraph text with <b>bold</b> and <a href="/x">links</a>.</p></div>`, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}

func BenchmarkVisibleText(b *testing.B) {
	src := strings.Repeat(`<div><p>Paragraph with some realistic amount of text in it, like a product description.</p></div>`, 100)
	doc := Parse(src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		VisibleText(doc)
	}
}

func TestNestedListsRender(t *testing.T) {
	src := `<ul><li>top one<ul><li>sub a</li><li>sub b</li></ul></li><li>top two</li></ul>`
	lines := VisibleLines(Parse(src))
	joined := strings.Join(lines, "|")
	for _, want := range []string{"top one", "sub a", "sub b", "top two"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in %q", want, joined)
		}
	}
	// Sub-items must not fuse with the parent item text on one line.
	for _, ln := range lines {
		if strings.Contains(ln, "top one") && strings.Contains(ln, "sub a") {
			t.Fatalf("nested list fused: %q", ln)
		}
	}
}

func TestTableCellsSeparate(t *testing.T) {
	src := `<table><tr><td>alpha</td><td>beta</td></tr><tr><td>gamma</td><td>delta</td></tr></table>`
	lines := VisibleLines(Parse(src))
	if len(lines) != 4 {
		t.Fatalf("table cells should be 4 lines, got %q", lines)
	}
}

func TestDeeplyNestedDoesNotOverflow(t *testing.T) {
	var b strings.Builder
	const depth = 2000
	for i := 0; i < depth; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("core")
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	doc := Parse(b.String())
	if got := VisibleText(doc); got != "core" {
		t.Fatalf("deep nesting text: %q", got)
	}
}

func TestMalformedAttributes(t *testing.T) {
	for _, src := range []string{
		`<div class=>x</div>`,
		`<div ="noname">x</div>`,
		`<div class="unterminated>x</div>`,
		`<div a=1 a=2>x</div>`,
	} {
		doc := Parse(src)
		if doc == nil {
			t.Fatalf("nil doc for %q", src)
		}
	}
}

func TestTextareaAndTitleRawText(t *testing.T) {
	toks := collect(`<textarea>type <b>here</b></textarea>`)
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, "<b>here</b>") {
		t.Fatalf("textarea not raw: %+v", toks[1])
	}
}

func TestCommentInsideBodyInvisible(t *testing.T) {
	got := VisibleText(Parse(`<p>before</p><!-- <p>ghost</p> --><p>after</p>`))
	if strings.Contains(got, "ghost") {
		t.Fatalf("comment content leaked: %q", got)
	}
}

func TestVisibilityHiddenStyle(t *testing.T) {
	got := VisibleText(Parse(`<div style="visibility: hidden">gone</div><div>kept</div>`))
	if strings.Contains(got, "gone") || !strings.Contains(got, "kept") {
		t.Fatalf("visibility:hidden handling: %q", got)
	}
}

func TestInputHiddenInvisible(t *testing.T) {
	got := VisibleText(Parse(`<form><input type="hidden" value="secret"><p>form body</p></form>`))
	if strings.Contains(got, "secret") {
		t.Fatalf("hidden input leaked: %q", got)
	}
}

func TestRawTextInvalidUTF8Regression(t *testing.T) {
	// Fuzzing found this: invalid UTF-8 inside a raw-text element used to
	// shift byte offsets (ToLower expands bad bytes to U+FFFD) and panic.
	srcs := []string{
		"<sCript>\x92\x8e\xed\xa0\xd6</sCript",
		"<script>\xff\xfe\xfd</SCRIPT>after",
		"<STYLE>\x80</style><p>ok</p>",
	}
	for _, src := range srcs {
		doc := Parse(src) // must not panic
		_ = VisibleText(doc)
	}
	// Case-insensitive close still terminates raw text correctly.
	got := VisibleText(Parse("<SCRIPT>var x;</sCrIpT><p>shown</p>"))
	if got != "shown" {
		t.Fatalf("case-folded close tag: %q", got)
	}
}
