package htmldom

import (
	"strings"
	"testing"
)

// FuzzParse drives the tokenizer, parser and renderer with arbitrary bytes.
// The invariants: never panic, never loop forever, and the rendered text
// never contains content from script/style elements.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"<div>hello</div>",
		"<script>var x = '<div>'</script>visible",
		"<ul><li>a<li>b</ul>",
		"<p>a<br>b<img src=x alt='pic'>",
		"<table><tr><td>1<td>2</table>",
		"<!DOCTYPE html><html><head><title>t</title></head><body>b</body></html>",
		"<div style='display:none'>hidden</div>shown",
		"&amp;&#65;&#x42;&nope;",
		"<<<>>>", "</", "<!--", "<a href=", "\x00\xff<div>",
		"<div class='a b c' id=x data-y>text</div>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		text := VisibleText(doc)
		// Invariant: block lines are trimmed and never empty.
		for _, line := range strings.Split(text, "\n") {
			if text != "" && strings.TrimSpace(line) != line {
				t.Fatalf("untrimmed line %q", line)
			}
		}
		// Invariant: walking the tree terminates and parents are consistent.
		doc.Walk(func(n *Node) bool {
			for _, c := range n.Children {
				if c.Parent != n {
					t.Fatal("broken parent pointer")
				}
			}
			return true
		})
	})
}

// FuzzUnescapeEntities checks the entity decoder never panics and is
// identity on '&'-free input.
func FuzzUnescapeEntities(f *testing.F) {
	for _, seed := range []string{"&amp;", "&#65;", "&#x1F600;", "plain", "&;", "&#;", "&#x;"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := UnescapeEntities(s)
		if !strings.ContainsRune(s, '&') && out != s {
			t.Fatalf("identity violated: %q -> %q", s, out)
		}
	})
}
