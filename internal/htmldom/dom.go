package htmldom

import (
	"strings"
)

// NodeType distinguishes DOM node kinds.
type NodeType int

// DOM node kinds.
const (
	ElementNode NodeType = iota
	TextNode
	CommentNode
	DocumentNode
)

// Node is one node in the parsed document tree.
type Node struct {
	Type     NodeType
	Tag      string // element tag name, lowercased (ElementNode only)
	Text     string // character data (TextNode / CommentNode)
	Attrs    []Attribute
	Parent   *Node
	Children []*Node
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// HasClass reports whether the node's class attribute contains name.
func (n *Node) HasClass(name string) bool {
	cls, ok := n.Attr("class")
	if !ok {
		return false
	}
	for _, c := range strings.Fields(cls) {
		if c == name {
			return true
		}
	}
	return false
}

// AppendChild attaches c as the last child of n.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Walk visits n and all descendants in document order. Returning false from
// fn skips the node's subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns the first descendant element (including n itself) with the
// given tag, or nil.
func (n *Node) Find(tag string) *Node {
	var found *Node
	n.Walk(func(x *Node) bool {
		if found != nil {
			return false
		}
		if x.Type == ElementNode && x.Tag == tag {
			found = x
			return false
		}
		return true
	})
	return found
}

// FindAll returns all descendant elements (including n) with the given tag
// in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Type == ElementNode && x.Tag == tag {
			out = append(out, x)
		}
		return true
	})
	return out
}

// voidElements never have children, per the HTML spec.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// impliedEndBy maps an element to the set of start tags that implicitly
// close it — the minimal tag-omission rules needed for real-world tables
// and lists (e.g. a new <li> closes the previous <li>).
var impliedEndBy = map[string]map[string]bool{
	"li":     {"li": true},
	"p":      {"p": true, "div": true, "ul": true, "ol": true, "table": true, "h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true, "section": true, "article": true},
	"td":     {"td": true, "th": true, "tr": true},
	"th":     {"td": true, "th": true, "tr": true},
	"tr":     {"tr": true},
	"option": {"option": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
}

// Parse builds a DOM tree from HTML source. It never fails: malformed
// markup degrades to a best-effort tree, mirroring browser error recovery.
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	z := NewTokenizer(src)
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			top().AppendChild(&Node{Type: TextNode, Text: tok.Data})
		case CommentToken:
			top().AppendChild(&Node{Type: CommentNode, Text: tok.Data})
		case DoctypeToken:
			// Dropped: the doctype carries no content.
		case SelfClosingTagToken:
			top().AppendChild(&Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs})
		case StartTagToken:
			// Apply implied-end rules before opening the new element.
			for len(stack) > 1 {
				cur := top()
				if ends, ok := impliedEndBy[cur.Tag]; ok && ends[tok.Data] {
					stack = stack[:len(stack)-1]
					continue
				}
				break
			}
			el := &Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs}
			top().AppendChild(el)
			if !voidElements[tok.Data] {
				stack = append(stack, el)
			}
		case EndTagToken:
			// Pop to the matching open element if one exists; otherwise
			// ignore the stray close tag.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}
