package htmldom

import (
	"strings"
)

// invisibleElements contribute no visible text regardless of content.
var invisibleElements = map[string]bool{
	"script": true, "style": true, "head": true, "noscript": true,
	"template": true, "iframe": true, "object": true, "svg": true,
	"meta": true, "link": true, "base": true,
}

// blockElements introduce a line break before and after their content when
// rendered, so text from different blocks is never fused into one sentence.
var blockElements = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"body": true, "dd": true, "div": true, "dl": true, "dt": true,
	"fieldset": true, "figcaption": true, "figure": true, "footer": true,
	"form": true, "h1": true, "h2": true, "h3": true, "h4": true,
	"h5": true, "h6": true, "header": true, "hr": true, "html": true,
	"li": true, "main": true, "nav": true, "ol": true, "p": true,
	"pre": true, "section": true, "table": true, "tbody": true, "td": true,
	"tfoot": true, "th": true, "thead": true, "tr": true, "ul": true,
	"br": true, "caption": true, "option": true, "select": true,
}

// isHidden reports whether an element is hidden via the subset of
// style/attribute conventions that static pages use.
func isHidden(n *Node) bool {
	if _, ok := n.Attr("hidden"); ok {
		return true
	}
	if style, ok := n.Attr("style"); ok {
		s := strings.ReplaceAll(strings.ToLower(style), " ", "")
		if strings.Contains(s, "display:none") || strings.Contains(s, "visibility:hidden") {
			return true
		}
	}
	if typ, ok := n.Attr("type"); ok && n.Tag == "input" && strings.EqualFold(typ, "hidden") {
		return true
	}
	return false
}

// VisibleText renders the text a browser would display for the document (or
// subtree) rooted at n. Text inside distinct block-level elements is
// separated by newlines; inline runs are joined with single spaces; all
// whitespace is collapsed. This is the artifact the paper's preprocessing
// pipeline (§IV-A3) starts from.
func VisibleText(n *Node) string {
	var b strings.Builder
	renderText(n, &b)
	return tidyLines(b.String())
}

func renderText(n *Node, b *strings.Builder) {
	switch n.Type {
	case TextNode:
		b.WriteString(collapseSpace(n.Text))
		b.WriteByte(' ')
		return
	case CommentNode:
		return
	case ElementNode:
		if invisibleElements[n.Tag] || isHidden(n) {
			return
		}
		if n.Tag == "img" {
			if alt, ok := n.Attr("alt"); ok && strings.TrimSpace(alt) != "" {
				b.WriteString(collapseSpace(alt))
				b.WriteByte(' ')
			}
			return
		}
	}
	block := n.Type == ElementNode && blockElements[n.Tag]
	if block {
		b.WriteByte('\n')
	}
	for _, c := range n.Children {
		renderText(c, b)
	}
	if block {
		b.WriteByte('\n')
	}
}

// collapseSpace reduces any whitespace run to a single space.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// tidyLines trims each line, drops empties, and joins with single newlines.
func tidyLines(s string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	for _, ln := range lines {
		ln = strings.TrimSpace(collapseSpace(ln))
		if ln != "" {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}

// VisibleLines returns the visible text split into block-level lines, the
// unit the corpus pipeline treats as candidate sentences.
func VisibleLines(n *Node) []string {
	text := VisibleText(n)
	if text == "" {
		return nil
	}
	return strings.Split(text, "\n")
}

// Title returns the contents of the document's <title> element, if any.
func Title(doc *Node) string {
	t := doc.Find("title")
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, c := range t.Children {
		if c.Type == TextNode {
			b.WriteString(c.Text)
		}
	}
	return strings.TrimSpace(collapseSpace(b.String()))
}
