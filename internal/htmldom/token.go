// Package htmldom implements an HTML tokenizer, a DOM parser, and a
// visible-text renderer. It is this repository's substitute for the
// automated rendering software (Selenium) the paper uses in §IV-A3 to
// collect the visible text of webpages: given markup, it produces the text a
// reader would see, in document order, with block boundaries preserved so
// the downstream pipeline can split sentences.
//
// The tokenizer and parser are written from scratch on the stdlib only.
// They handle the constructs that occur in real content-rich pages — nested
// elements, void elements, attributes in all three quoting styles, comments,
// doctype, raw-text elements (script/style), character references — and are
// deliberately forgiving about the tag-soup found in the wild: unknown or
// mismatched closing tags never abort parsing.
package htmldom

import (
	"strings"
)

// TokenType identifies a lexical token in an HTML byte stream.
type TokenType int

// Token types produced by the Tokenizer.
const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

// String returns a human-readable token type name.
func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return "Unknown"
}

// Attribute is a single name/value pair on a tag.
type Attribute struct {
	Name, Value string
}

// Token is one lexical unit: a tag with attributes, or a text/comment run.
type Token struct {
	Type  TokenType
	Data  string // tag name (lowercased) or text/comment content
	Attrs []Attribute
}

// Attr returns the value of the named attribute and whether it is present.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextElements are elements whose content is consumed verbatim until the
// matching close tag, per the HTML parsing spec.
var rawTextElements = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
}

// Tokenizer splits HTML source into tokens.
type Tokenizer struct {
	src string
	pos int
	// pendingRawEnd is set after a raw-text start tag is emitted so the
	// next call consumes everything up to its end tag as one text token.
	pendingRawEnd string
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token, or ok=false at end of input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pendingRawEnd != "" {
		return z.rawText()
	}
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.src[z.pos] == '<' {
		return z.tag()
	}
	return z.text()
}

// rawText consumes content up to the close tag recorded in pendingRawEnd.
func (z *Tokenizer) rawText() (Token, bool) {
	name := z.pendingRawEnd
	z.pendingRawEnd = ""
	// The close tag is matched ASCII-case-insensitively on the RAW bytes:
	// lowercasing the source first would shift byte offsets on invalid
	// UTF-8 (ToLower substitutes U+FFFD, which is longer than one byte).
	idx := indexCloseTagFold(z.src[z.pos:], name)
	if idx < 0 {
		// Unterminated raw text: consume to EOF.
		tok := Token{Type: TextToken, Data: z.src[z.pos:]}
		z.pos = len(z.src)
		if tok.Data == "" {
			return Token{}, false
		}
		return tok, true
	}
	data := z.src[z.pos : z.pos+idx]
	z.pos += idx
	if data == "" {
		// Empty raw content: fall through to the end tag.
		return z.Next()
	}
	return Token{Type: TextToken, Data: data}, true
}

// indexCloseTagFold returns the byte offset of the first occurrence of
// "</name" in s, matching ASCII letters case-insensitively, or -1. Offsets
// refer to s's raw bytes, so arbitrary (even invalid-UTF-8) content between
// here and the close tag cannot shift them.
func indexCloseTagFold(s, name string) int {
	target := "</" + name
	for i := 0; i+len(target) <= len(s); i++ {
		if asciiEqualFold(s[i:i+len(target)], target) {
			return i
		}
	}
	return -1
}

// asciiEqualFold reports whether a and b are equal under ASCII lowercasing.
// b is expected to be already lowercase.
func asciiEqualFold(a, b string) bool {
	for i := 0; i < len(a); i++ {
		ca := a[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if ca != b[i] {
			return false
		}
	}
	return true
}

// text consumes a run of character data up to the next '<'.
func (z *Tokenizer) text() (Token, bool) {
	end := strings.IndexByte(z.src[z.pos:], '<')
	var data string
	if end < 0 {
		data = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		data = z.src[z.pos : z.pos+end]
		z.pos += end
	}
	return Token{Type: TextToken, Data: UnescapeEntities(data)}, true
}

// tag consumes a tag, comment, or doctype beginning at '<'.
func (z *Tokenizer) tag() (Token, bool) {
	src := z.src
	if strings.HasPrefix(src[z.pos:], "<!--") {
		end := strings.Index(src[z.pos+4:], "-->")
		if end < 0 {
			data := src[z.pos+4:]
			z.pos = len(src)
			return Token{Type: CommentToken, Data: data}, true
		}
		data := src[z.pos+4 : z.pos+4+end]
		z.pos += 4 + end + 3
		return Token{Type: CommentToken, Data: data}, true
	}
	if strings.HasPrefix(src[z.pos:], "<!") || strings.HasPrefix(src[z.pos:], "<?") {
		end := strings.IndexByte(src[z.pos:], '>')
		if end < 0 {
			z.pos = len(src)
			return Token{Type: DoctypeToken}, true
		}
		data := src[z.pos+2 : z.pos+end]
		z.pos += end + 1
		return Token{Type: DoctypeToken, Data: strings.TrimSpace(data)}, true
	}
	gt := strings.IndexByte(src[z.pos:], '>')
	if gt < 0 {
		// Stray '<' at EOF: treat the rest as text.
		tok := Token{Type: TextToken, Data: src[z.pos:]}
		z.pos = len(src)
		return tok, true
	}
	inner := src[z.pos+1 : z.pos+gt]
	z.pos += gt + 1
	if inner == "" {
		// "<>" is not a tag; emit it as text.
		return Token{Type: TextToken, Data: "<>"}, true
	}
	if inner[0] == '/' {
		name := strings.ToLower(strings.TrimSpace(inner[1:]))
		return Token{Type: EndTagToken, Data: name}, true
	}
	selfClosing := strings.HasSuffix(inner, "/")
	if selfClosing {
		inner = strings.TrimSuffix(inner, "/")
	}
	name, attrs := parseTagBody(inner)
	typ := StartTagToken
	if selfClosing {
		typ = SelfClosingTagToken
	}
	if typ == StartTagToken && rawTextElements[name] {
		z.pendingRawEnd = name
	}
	return Token{Type: typ, Data: name, Attrs: attrs}, true
}

// parseTagBody splits "div class='x' id=y" into the tag name and attributes.
func parseTagBody(s string) (string, []Attribute) {
	s = strings.TrimSpace(s)
	i := 0
	for i < len(s) && !isSpace(s[i]) {
		i++
	}
	name := strings.ToLower(s[:i])
	var attrs []Attribute
	for i < len(s) {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		for i < len(s) && s[i] != '=' && !isSpace(s[i]) {
			i++
		}
		aname := strings.ToLower(s[start:i])
		if aname == "" {
			i++
			continue
		}
		var aval string
		if i < len(s) && s[i] == '=' {
			i++
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				quote := s[i]
				i++
				vstart := i
				for i < len(s) && s[i] != quote {
					i++
				}
				aval = s[vstart:i]
				if i < len(s) {
					i++ // closing quote
				}
			} else {
				vstart := i
				for i < len(s) && !isSpace(s[i]) {
					i++
				}
				aval = s[vstart:i]
			}
		}
		attrs = append(attrs, Attribute{Name: aname, Value: UnescapeEntities(aval)})
	}
	return name, attrs
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}

// namedEntities covers the character references that occur in practice on
// content pages; numeric references are handled generically.
var namedEntities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "trade": '™',
	"mdash": '—', "ndash": '–', "hellip": '…', "middot": '·',
	"laquo": '«', "raquo": '»', "lsquo": '‘', "rsquo": '’',
	"ldquo": '“', "rdquo": '”', "bull": '•', "deg": '°',
	"pound": '£', "euro": '€', "yen": '¥', "cent": '¢', "sect": '§',
	"times": '×', "divide": '÷', "plusmn": '±', "frac12": '½',
}

// UnescapeEntities resolves named and numeric character references in s.
// Unknown references are left untouched, matching browser behaviour.
func UnescapeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if r, ok := namedEntities[ref]; ok {
			b.WriteRune(r)
			i += semi + 1
			continue
		}
		if len(ref) > 1 && ref[0] == '#' {
			if r, ok := parseNumericRef(ref[1:]); ok {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func parseNumericRef(s string) (rune, bool) {
	base := 10
	if len(s) > 1 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	var n int64
	for _, c := range s {
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, false
		}
		n = n*int64(base) + d
		if n > 0x10FFFF {
			return 0, false
		}
	}
	if n == 0 {
		return 0, false
	}
	return rune(n), true
}
