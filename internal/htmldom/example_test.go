package htmldom_test

import (
	"fmt"

	"webbrief/internal/htmldom"
)

// ExampleVisibleText shows the Selenium-substitute rendering step: scripts,
// styles and hidden elements disappear; block elements become lines.
func ExampleVisibleText() {
	src := `<html><head><title>Shop</title><script>track()</script></head>
<body>
  <h1>Deep Learning Book</h1>
  <div class="price">$ 40.13</div>
  <div style="display:none">internal sku 992</div>
  <p>Free <b>shipping</b> today!</p>
</body></html>`
	doc := htmldom.Parse(src)
	fmt.Println(htmldom.VisibleText(doc))
	// Output:
	// Deep Learning Book
	// $ 40.13
	// Free shipping today!
}

// ExampleParse demonstrates tree queries over tag-soup input (note the
// unclosed <li> elements).
func ExampleParse() {
	doc := htmldom.Parse(`<ul><li>alpha<li>beta<li>gamma</ul>`)
	for _, li := range doc.FindAll("li") {
		fmt.Println(li.Children[0].Text)
	}
	// Output:
	// alpha
	// beta
	// gamma
}
