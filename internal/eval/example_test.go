package eval_test

import (
	"fmt"

	"webbrief/internal/eval"
)

// ExampleSpanPRF1 scores predicted attribute spans against gold spans with
// the strict exact-boundary criterion of §IV-A4.
func ExampleSpanPRF1() {
	pred := [][]eval.Span{{{Start: 0, End: 2}, {Start: 5, End: 7}}}
	gold := [][]eval.Span{{{Start: 0, End: 2}, {Start: 5, End: 8}}} // second is off by one
	r := eval.SpanPRF1(pred, gold)
	fmt.Printf("P %.1f R %.1f F1 %.1f\n", r.Precision, r.Recall, r.F1)
	// Output:
	// P 50.0 R 50.0 F1 50.0
}

// ExampleTopicScores shows exact match vs relaxed match for generated
// topics.
func ExampleTopicScores() {
	gen := [][]string{
		{"book", "shopping", "website"}, // exact
		{"book", "review", "website"},   // partial overlap
		{"cooking", "blog"},             // no overlap with gold below
	}
	gold := [][]string{
		{"book", "shopping", "website"},
		{"book", "shopping", "website"},
		{"job", "recruitment", "website"},
	}
	em, rm := eval.TopicScores(gen, gold)
	fmt.Printf("EM %.1f RM %.1f\n", em, rm)
	// Output:
	// EM 33.3 RM 66.7
}

// ExampleSpansFromBIO decodes BIO tag sequences into spans.
func ExampleSpansFromBIO() {
	// O B I O B O
	fmt.Println(eval.SpansFromBIO([]int{0, 1, 2, 0, 1, 0}))
	// Output:
	// [{1 3} {4 5}]
}

// ExampleMcNemar runs the paper's significance test on paired outcomes.
func ExampleMcNemar() {
	a := []bool{true, true, true, true, true, true, true, true, false, false}
	b := []bool{false, false, false, false, false, false, true, true, false, true}
	chi2, sig := eval.McNemar(a, b)
	fmt.Printf("chi2 %.2f significant %v\n", chi2, sig)
	// Output:
	// chi2 2.29 significant false
}
