// Package eval implements the paper's evaluation protocol (§IV-A4):
// precision/recall/F1 over extracted attribute spans, exact-match (EM) and
// relaxed-match (RM) scoring for generated topics, Cohen's κ inter-annotator
// agreement, McNemar's significance test, and the simulated-annotator human
// evaluation used to regenerate Table X and the dataset-quality study.
package eval

import (
	"math"
)

// Span is a half-open token range [Start, End).
type Span struct {
	Start, End int
}

// PRF1 holds precision, recall and F1 as percentages.
type PRF1 struct {
	Precision, Recall, F1 float64
}

// SpanPRF1 scores predicted spans against gold spans over a corpus:
// a predicted span counts as correct only if it matches a gold span exactly,
// the standard strict criterion for attribute extraction.
func SpanPRF1(pred, gold [][]Span) PRF1 {
	if len(pred) != len(gold) {
		panic("eval: pred/gold document count mismatch")
	}
	var tp, np, ng int
	for d := range pred {
		np += len(pred[d])
		ng += len(gold[d])
		goldSet := make(map[Span]int, len(gold[d]))
		for _, g := range gold[d] {
			goldSet[g]++
		}
		for _, p := range pred[d] {
			if goldSet[p] > 0 {
				goldSet[p]--
				tp++
			}
		}
	}
	var prec, rec float64
	if np > 0 {
		prec = float64(tp) / float64(np)
	}
	if ng > 0 {
		rec = float64(tp) / float64(ng)
	}
	var f1 float64
	if prec+rec > 0 {
		f1 = 2 * prec * rec / (prec + rec)
	}
	return PRF1{Precision: prec * 100, Recall: rec * 100, F1: f1 * 100}
}

// SpansEqual reports whether two span lists are identical as multisets —
// the "fully correct extraction" criterion for paired significance tests.
// Comparing span sets directly avoids the float round trip of checking
// F1 == 100.
func SpansEqual(a, b []Span) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[Span]int, len(a))
	for _, s := range a {
		counts[s]++
	}
	for _, s := range b {
		counts[s]--
		if counts[s] < 0 {
			return false
		}
	}
	return true
}

// SpansFromBIO decodes a BIO tag sequence (0=O, 1=B, 2=I) into spans. An I
// without a preceding B opens a new span, the conventional lenient decode.
func SpansFromBIO(tags []int) []Span {
	var spans []Span
	start := -1
	for i, tag := range tags {
		switch tag {
		case 1: // B
			if start >= 0 {
				spans = append(spans, Span{start, i})
			}
			start = i
		case 2: // I
			if start < 0 {
				start = i
			}
		default: // O
			if start >= 0 {
				spans = append(spans, Span{start, i})
				start = -1
			}
		}
	}
	if start >= 0 {
		spans = append(spans, Span{start, len(tags)})
	}
	return spans
}

// ExactMatch reports whether the generated token sequence equals the gold
// sequence exactly (§IV-A4 EM).
func ExactMatch(gen, gold []string) bool {
	if len(gen) != len(gold) {
		return false
	}
	for i := range gen {
		if gen[i] != gold[i] {
			return false
		}
	}
	return true
}

// RelaxedMatch reports whether the generated sequence contains at least one
// gold token (§IV-A4 RM).
func RelaxedMatch(gen, gold []string) bool {
	goldSet := make(map[string]bool, len(gold))
	for _, g := range gold {
		goldSet[g] = true
	}
	for _, tok := range gen {
		if goldSet[tok] {
			return true
		}
	}
	return false
}

// TopicScores aggregates EM and RM percentages over a corpus of generated /
// gold topic pairs.
func TopicScores(gen, gold [][]string) (em, rm float64) {
	if len(gen) != len(gold) {
		panic("eval: gen/gold count mismatch")
	}
	if len(gen) == 0 {
		return 0, 0
	}
	var nEM, nRM int
	for i := range gen {
		if ExactMatch(gen[i], gold[i]) {
			nEM++
		}
		if RelaxedMatch(gen[i], gold[i]) {
			nRM++
		}
	}
	n := float64(len(gen))
	return 100 * float64(nEM) / n, 100 * float64(nRM) / n
}

// Accuracy returns the fraction (as %) of positions where pred equals gold.
func Accuracy(pred, gold []int) float64 {
	if len(pred) != len(gold) {
		panic("eval: accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == gold[i] {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(pred))
}

// CohenKappa computes inter-annotator agreement between two raters who
// assigned categorical labels to the same items (§IV-A2 uses κ to validate
// dataset quality; §IV-E for human evaluation).
func CohenKappa(a, b []int) float64 {
	if len(a) != len(b) {
		panic("eval: kappa length mismatch")
	}
	n := len(a)
	if n == 0 {
		return 0
	}
	cats := map[int]bool{}
	for i := range a {
		cats[a[i]] = true
		cats[b[i]] = true
	}
	agree := 0
	countA := map[int]int{}
	countB := map[int]int{}
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
		countA[a[i]]++
		countB[b[i]]++
	}
	po := float64(agree) / float64(n)
	var pe float64
	for c := range cats {
		pe += (float64(countA[c]) / float64(n)) * (float64(countB[c]) / float64(n))
	}
	if pe >= 1 {
		return 1
	}
	return (po - pe) / (1 - pe)
}

// MeanPairwiseKappa averages Cohen's κ over all rater pairs, the multi-rater
// summary the paper reports ("κ > 0.93 for all aspects").
func MeanPairwiseKappa(ratings [][]int) float64 {
	if len(ratings) < 2 {
		return 1
	}
	var sum float64
	var pairs int
	for i := 0; i < len(ratings); i++ {
		for j := i + 1; j < len(ratings); j++ {
			sum += CohenKappa(ratings[i], ratings[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// McNemar runs McNemar's test on paired binary outcomes of two systems over
// the same items (correctA[i], correctB[i]). It returns the χ² statistic
// (with continuity correction) and whether p < 0.05, the significance
// criterion of §IV-A4. With fewer than 2 discordant pairs the test cannot
// reject and significance is false.
func McNemar(correctA, correctB []bool) (chi2 float64, significant bool) {
	if len(correctA) != len(correctB) {
		panic("eval: McNemar length mismatch")
	}
	var b, c float64 // A right & B wrong; A wrong & B right
	for i := range correctA {
		switch {
		case correctA[i] && !correctB[i]:
			b++
		case !correctA[i] && correctB[i]:
			c++
		}
	}
	if b+c < 2 {
		return 0, false
	}
	d := math.Abs(b-c) - 1 // continuity correction
	if d < 0 {
		d = 0
	}
	chi2 = d * d / (b + c)
	// χ²(1df) critical value at p=0.05 is 3.841.
	return chi2, chi2 > 3.841
}
