package eval

import (
	"math/rand"
)

// Annotator simulates a human rater from the paper's human-evaluation
// protocol (§IV-A2, §IV-E): it assigns 2 (perfectly suitable), 1 (suitable)
// or 0 (unsuitable) to a generated topic by comparing it with the ground
// truth, with calibrated rater noise.
//
// The scoring rubric is an overlap oracle: exact match → 2, partial token
// overlap → 1, no overlap → 0. Noise flips a score to an adjacent level with
// probability Noise, modelling the imperfect-but-high agreement (κ > 0.83)
// the paper measures between its volunteers. Model *rankings* produced by
// the simulated panel derive entirely from real model outputs; only the
// absolute scale is oracle-defined (see DESIGN.md substitution table).
type Annotator struct {
	Noise float64
	rng   *rand.Rand
}

// NewAnnotator creates a rater with its own deterministic noise stream.
func NewAnnotator(noise float64, seed int64) *Annotator {
	return &Annotator{Noise: noise, rng: rand.New(rand.NewSource(seed))}
}

// Score rates a generated topic against the gold topic on the 0/1/2 scale.
func (a *Annotator) Score(gen, gold []string) int {
	score := 0
	switch {
	case ExactMatch(gen, gold):
		score = 2
	case RelaxedMatch(gen, gold):
		score = 1
	}
	if a.rng.Float64() < a.Noise {
		// Flip to an adjacent level, staying in [0, 2].
		if score == 0 {
			score = 1
		} else if score == 2 {
			score = 1
		} else if a.rng.Intn(2) == 0 {
			score = 0
		} else {
			score = 2
		}
	}
	return score
}

// Panel is a group of simulated annotators (the paper trains 5 or 10
// volunteers depending on the study).
type Panel struct {
	Raters []*Annotator
}

// NewPanel creates n raters with the given noise level, seeded from base.
func NewPanel(n int, noise float64, base int64) *Panel {
	p := &Panel{}
	for i := 0; i < n; i++ {
		p.Raters = append(p.Raters, NewAnnotator(noise, base+int64(i)))
	}
	return p
}

// Rate scores every (generated, gold) pair with every rater. It returns the
// ratings matrix (raters × items) and the grand mean score.
func (p *Panel) Rate(gen, gold [][]string) (ratings [][]int, mean float64) {
	if len(gen) != len(gold) {
		panic("eval: panel input length mismatch")
	}
	ratings = make([][]int, len(p.Raters))
	var sum, n float64
	for r, rater := range p.Raters {
		ratings[r] = make([]int, len(gen))
		for i := range gen {
			s := rater.Score(gen[i], gold[i])
			ratings[r][i] = s
			sum += float64(s)
			n++
		}
	}
	if n == 0 {
		return ratings, 0
	}
	return ratings, sum / n
}

// Agreement returns the panel's mean pairwise Cohen's κ on the given
// ratings.
func (p *Panel) Agreement(ratings [][]int) float64 {
	return MeanPairwiseKappa(ratings)
}
