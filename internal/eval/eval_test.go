package eval

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSpanPRF1Perfect(t *testing.T) {
	spans := [][]Span{{{0, 2}, {5, 7}}, {{1, 3}}}
	got := SpanPRF1(spans, spans)
	if got.Precision != 100 || got.Recall != 100 || got.F1 != 100 {
		t.Fatalf("perfect: %+v", got)
	}
}

func TestSpanPRF1Partial(t *testing.T) {
	pred := [][]Span{{{0, 2}, {4, 6}}} // one right, one wrong
	gold := [][]Span{{{0, 2}, {5, 7}}}
	got := SpanPRF1(pred, gold)
	if math.Abs(got.Precision-50) > 1e-9 || math.Abs(got.Recall-50) > 1e-9 || math.Abs(got.F1-50) > 1e-9 {
		t.Fatalf("partial: %+v", got)
	}
}

func TestSpanPRF1EmptyPred(t *testing.T) {
	got := SpanPRF1([][]Span{{}}, [][]Span{{{0, 1}}})
	if got.Precision != 0 || got.Recall != 0 || got.F1 != 0 {
		t.Fatalf("empty pred: %+v", got)
	}
}

func TestSpanPRF1BoundaryMismatchIsWrong(t *testing.T) {
	// Off-by-one boundaries must not count (strict criterion).
	got := SpanPRF1([][]Span{{{0, 3}}}, [][]Span{{{0, 2}}})
	if got.F1 != 0 {
		t.Fatalf("loose match accepted: %+v", got)
	}
}

func TestSpanPRF1DuplicatePredNotDoubleCounted(t *testing.T) {
	pred := [][]Span{{{0, 2}, {0, 2}}}
	gold := [][]Span{{{0, 2}}}
	got := SpanPRF1(pred, gold)
	if math.Abs(got.Precision-50) > 1e-9 || math.Abs(got.Recall-100) > 1e-9 {
		t.Fatalf("dup handling: %+v", got)
	}
}

func TestSpansFromBIO(t *testing.T) {
	cases := []struct {
		tags []int
		want []Span
	}{
		{[]int{0, 1, 2, 0, 1, 0}, []Span{{1, 3}, {4, 5}}},
		{[]int{1, 2, 2}, []Span{{0, 3}}},
		{[]int{0, 2, 2, 0}, []Span{{1, 3}}}, // orphan I opens a span
		{[]int{1, 1}, []Span{{0, 1}, {1, 2}}},
		{[]int{0, 0}, nil},
		{nil, nil},
	}
	for _, c := range cases {
		if got := SpansFromBIO(c.tags); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SpansFromBIO(%v) = %v, want %v", c.tags, got, c.want)
		}
	}
}

// Property: decoding BIO built from spans recovers the spans.
func TestSpansBIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := int(seed % 1000)
		if s < 0 {
			s = -s
		}
		n := (s%7 + 3) * 4
		// Build non-adjacent spans deterministically from the seed.
		var spans []Span
		pos := s % 3
		for pos+2 < n {
			w := 1 + s%2
			spans = append(spans, Span{pos, pos + w})
			pos += w + 2
		}
		tags := make([]int, n)
		for _, s := range spans {
			tags[s.Start] = 1
			for i := s.Start + 1; i < s.End; i++ {
				tags[i] = 2
			}
		}
		return reflect.DeepEqual(SpansFromBIO(tags), spans)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExactAndRelaxedMatch(t *testing.T) {
	gold := []string{"book", "shopping", "website"}
	if !ExactMatch([]string{"book", "shopping", "website"}, gold) {
		t.Fatal("exact should match")
	}
	if ExactMatch([]string{"book", "shopping"}, gold) {
		t.Fatal("length mismatch should fail EM")
	}
	if !RelaxedMatch([]string{"a", "shopping", "site"}, gold) {
		t.Fatal("one shared token should pass RM")
	}
	if RelaxedMatch([]string{"job", "site"}, gold) {
		t.Fatal("no overlap should fail RM")
	}
}

func TestEMImpliesRM(t *testing.T) {
	f := func(a, b, c string) bool {
		gen := []string{a, b, c}
		if !ExactMatch(gen, gen) {
			return false
		}
		return RelaxedMatch(gen, gen) || len(gen) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopicScores(t *testing.T) {
	gen := [][]string{{"a", "b"}, {"a", "x"}, {"y", "z"}}
	gold := [][]string{{"a", "b"}, {"a", "b"}, {"a", "b"}}
	em, rm := TopicScores(gen, gold)
	if math.Abs(em-100.0/3) > 1e-9 {
		t.Fatalf("EM: %v", em)
	}
	if math.Abs(rm-200.0/3) > 1e-9 {
		t.Fatalf("RM: %v", rm)
	}
	if em2, rm2 := TopicScores(nil, nil); em2 != 0 || rm2 != 0 {
		t.Fatal("empty corpus")
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1, 1}, []int{1, 1, 1, 0}); math.Abs(got-50) > 1e-9 {
		t.Fatalf("accuracy: %v", got)
	}
}

func TestCohenKappaPerfectAndChance(t *testing.T) {
	a := []int{0, 1, 2, 0, 1, 2}
	if k := CohenKappa(a, a); math.Abs(k-1) > 1e-9 {
		t.Fatalf("perfect κ: %v", k)
	}
	// Complete disagreement with balanced marginals gives κ < 0.
	b := []int{1, 2, 0, 1, 2, 0}
	if k := CohenKappa(a, b); k >= 0 {
		t.Fatalf("disagreement κ should be negative: %v", k)
	}
}

func TestCohenKappaKnownValue(t *testing.T) {
	// Worked example: po=0.7, marginals 60/40 for both raters so
	// pe=0.6·0.6+0.4·0.4=0.52, κ=(0.7-0.52)/0.48=0.375.
	a := make([]int, 100)
	b := make([]int, 100)
	for i := 0; i < 100; i++ {
		// 45 both-yes, 25 both-no, 15 a-yes/b-no, 15 a-no/b-yes.
		switch {
		case i < 45:
			a[i], b[i] = 1, 1
		case i < 70:
			a[i], b[i] = 0, 0
		case i < 85:
			a[i], b[i] = 1, 0
		default:
			a[i], b[i] = 0, 1
		}
	}
	k := CohenKappa(a, b)
	if math.Abs(k-0.375) > 1e-9 {
		t.Fatalf("κ = %v, want 0.375", k)
	}
}

func TestMeanPairwiseKappa(t *testing.T) {
	r := [][]int{{1, 2, 0}, {1, 2, 0}, {1, 2, 0}}
	if k := MeanPairwiseKappa(r); math.Abs(k-1) > 1e-9 {
		t.Fatalf("identical raters: %v", k)
	}
	if k := MeanPairwiseKappa([][]int{{1, 2}}); k != 1 {
		t.Fatal("single rater defined as 1")
	}
}

func TestMcNemar(t *testing.T) {
	// A right where B wrong on 30 items, B right where A wrong on 5:
	// strongly significant.
	var a, b []bool
	for i := 0; i < 30; i++ {
		a = append(a, true)
		b = append(b, false)
	}
	for i := 0; i < 5; i++ {
		a = append(a, false)
		b = append(b, true)
	}
	for i := 0; i < 50; i++ { // concordant pairs don't matter
		a = append(a, true)
		b = append(b, true)
	}
	chi2, sig := McNemar(a, b)
	if !sig {
		t.Fatalf("should be significant, χ²=%v", chi2)
	}
	// Symmetric outcomes are never significant.
	_, sig = McNemar([]bool{true, false, true, false}, []bool{false, true, false, true})
	if sig {
		t.Fatal("balanced discordance should not be significant")
	}
	// Too few discordant pairs cannot reject.
	if _, sig := McNemar([]bool{true, true}, []bool{true, true}); sig {
		t.Fatal("no discordance should not be significant")
	}
}

func TestAnnotatorOracleScores(t *testing.T) {
	a := NewAnnotator(0, 1) // noiseless
	gold := []string{"book", "shopping", "website"}
	if a.Score(gold, gold) != 2 {
		t.Fatal("exact should score 2")
	}
	if a.Score([]string{"book", "site"}, gold) != 1 {
		t.Fatal("partial should score 1")
	}
	if a.Score([]string{"job", "board"}, gold) != 0 {
		t.Fatal("disjoint should score 0")
	}
}

func TestAnnotatorNoiseStaysInRange(t *testing.T) {
	a := NewAnnotator(1.0, 2) // always flips
	gold := []string{"x"}
	for i := 0; i < 50; i++ {
		s := a.Score(gold, gold)
		if s < 0 || s > 2 {
			t.Fatalf("score out of range: %d", s)
		}
	}
}

func TestPanelRateAndAgreement(t *testing.T) {
	p := NewPanel(5, 0.05, 100)
	gold := [][]string{{"a", "b"}, {"c", "d"}, {"e", "f"}}
	gen := [][]string{{"a", "b"}, {"c", "x"}, {"q", "q"}}
	ratings, mean := p.Rate(gen, gold)
	if len(ratings) != 5 || len(ratings[0]) != 3 {
		t.Fatalf("ratings shape: %d×%d", len(ratings), len(ratings[0]))
	}
	if mean <= 0 || mean >= 2 {
		t.Fatalf("mean score: %v", mean)
	}
	// Low-noise raters must agree strongly, mirroring the paper's κ > 0.83.
	if k := p.Agreement(ratings); k < 0.5 {
		t.Fatalf("panel agreement too low: %v", k)
	}
}

func TestPanelDeterministic(t *testing.T) {
	gold := [][]string{{"a"}, {"b"}}
	gen := [][]string{{"a"}, {"x"}}
	_, m1 := NewPanel(3, 0.1, 7).Rate(gen, gold)
	_, m2 := NewPanel(3, 0.1, 7).Rate(gen, gold)
	if m1 != m2 {
		t.Fatal("panel not deterministic")
	}
}

func BenchmarkSpanPRF1(b *testing.B) {
	var pred, gold [][]Span
	for d := 0; d < 100; d++ {
		var ps, gs []Span
		for i := 0; i < 8; i++ {
			ps = append(ps, Span{i * 10, i*10 + 2})
			gs = append(gs, Span{i * 10, i*10 + 2})
		}
		pred = append(pred, ps)
		gold = append(gold, gs)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SpanPRF1(pred, gold)
	}
}
