package serve

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// WarmupHTML builds a synthetic page with roughly n visible tokens (0 = 512)
// — a max-shape stand-in for Warm so every first-use buffer growth (arena
// blocks, pack panels, beam pools) happens before real traffic.
func WarmupHTML(n int) string {
	if n <= 0 {
		n = 512
	}
	words := []string{
		"alpha", "baseline", "briefing", "capacity", "decode", "encode",
		"forward", "kernel", "latency", "micro", "replica", "scratch",
		"tensor", "throughput", "vector", "window",
	}
	var b strings.Builder
	b.WriteString("<html><head><title>warmup page shape</title></head><body><h1>Warmup briefing page</h1>")
	for i := 0; i < n; i += 8 {
		b.WriteString("<p>")
		for j := 0; j < 8; j++ {
			b.WriteString(words[(i+j)%len(words)])
			b.WriteByte(' ')
		}
		b.WriteString("</p>")
	}
	b.WriteString("</body></html>")
	return b.String()
}

// Replica is one independently-forwardable briefing engine, checked out of
// a Pool for the duration of a request. The three methods are the stages of
// the briefing pipeline, split so the serving layer can time each one and
// check the request deadline between them:
//
//	Parse:  raw HTML → model instance (DOM parse, visible text, encoding)
//	Encode: eval forward pass → attributes + section flags
//	Decode: beam-search topic generation
type Replica interface {
	Parse(html string) (*wb.Instance, error)
	Encode(inst *wb.Instance) *wb.Brief
	Decode(inst *wb.Instance, b *wb.Brief)
}

// BatchReplica is the optional batched capability of a Replica: encode and
// decode a whole micro-batch in fused B-row forward passes. EncodeBatch
// retains per-instance state on the replica that the matching DecodeBatch
// call consumes, so the two must be called back to back with the same
// instances, under the same exclusive checkout. The batch executor falls
// back to the per-request methods when a replica (e.g. a fault-injection
// wrapper) does not implement this.
type BatchReplica interface {
	Replica
	EncodeBatch(insts []*wb.Instance) []*wb.Brief
	DecodeBatch(insts []*wb.Instance, briefs []*wb.Brief)
}

// cascadeDecision records how one briefing moved through the confidence
// cascade on a replica: the student tier's wall time, whether the decode
// escalated, and the teacher tier's wall time when it did.
type cascadeDecision struct {
	escalated bool
	student   time.Duration
	teacher   time.Duration
}

// cascadeReporter is the optional cascade observability capability of a
// Replica: after a Decode or DecodeBatch completes, the server reads one
// decision per briefing for the tier counters and per-tier histograms. The
// report is only valid until the replica's next Encode, under the same
// exclusive checkout — the same lifetime contract as BatchReplica's
// retained encode state. Wrappers that do not forward it (e.g. the fault
// injector) simply leave the cascade unreported, never miscounted.
type cascadeReporter interface {
	CascadeReport() []cascadeDecision
}

// modelReplica adapts one Joint-WB model (the original or a
// wb.CloneForServing copy) to the Replica interface. The vocabulary is
// shared across all replicas: it is read-only after construction. Each
// replica owns its inference workspace — a replica serves one request at a
// time (Pool checkout is exclusive), so the scratch is never shared between
// concurrent requests.
//
// With a student attached (NewCascadePool), the replica runs the
// confidence-gated cascade: Encode and Decode execute on the float32
// student first, and a decode whose confidence score falls below threshold
// re-briefs the page on the float64 teacher under the same checkout. The
// student weights are read-only at inference, so one *wb.JointWB32 is
// shared by every replica; the float32 scratches are per-replica like the
// float64 ones.
type modelReplica struct {
	model     wb.Model
	vocab     *textproc.Vocab
	beam      int
	maxTokens int
	scratch   *wb.InferScratch
	batch     *wb.BatchScratch
	outs      []*wb.Output // encode-stage outputs awaiting DecodeBatch

	student   *wb.JointWB32 // float32 fast path, nil = teacher-only replica
	threshold float64       // escalate when confidence score < threshold
	sscratch  *wb.InferScratch32
	sbatch    *wb.BatchScratch32
	souts     []*wb.Output32    // student encode outputs awaiting DecodeBatch
	decisions []cascadeDecision // per-briefing cascade report, reset at Encode
}

// Parse implements Replica.
func (r *modelReplica) Parse(html string) (*wb.Instance, error) {
	inst := wb.InstanceFromHTML(html, r.vocab, r.maxTokens)
	if inst.NumSents() == 0 {
		return nil, fmt.Errorf("serve: no visible text in page")
	}
	return inst, nil
}

// Encode implements Replica. On a cascade replica the float32 student runs
// the forward; the teacher executes only if Decode later escalates.
func (r *modelReplica) Encode(inst *wb.Instance) *wb.Brief {
	if r.student == nil {
		return wb.ExtractBriefWith(r.model, inst, r.vocab, r.scratch)
	}
	t0 := time.Now()
	b := wb.ExtractBriefWith32(r.student, inst, r.vocab, r.sscratch)
	r.decisions = append(r.decisions[:0], cascadeDecision{student: time.Since(t0)})
	return b
}

// Decode implements Replica. On a cascade replica the student decodes first
// and the confidence gate decides whether the teacher re-briefs the page:
// an escalation replaces the whole brief (extraction and topic), so every
// answer a client sees came entirely from one tier.
func (r *modelReplica) Decode(inst *wb.Instance, b *wb.Brief) {
	if r.student == nil {
		b.Topic = wb.DecodeTopicWith(r.model, inst, r.vocab, r.beam, r.scratch)
		return
	}
	if len(r.decisions) == 0 { // Decode without Encode (not a server path)
		r.decisions = append(r.decisions, cascadeDecision{})
	}
	d := &r.decisions[0]
	t0 := time.Now()
	topic, conf := wb.DecodeTopicWith32(r.student, inst, r.vocab, r.beam, r.sscratch)
	d.student += time.Since(t0)
	if conf.Score() >= r.threshold {
		b.Topic = topic
		return
	}
	t1 := time.Now()
	*b = *r.teacherBrief(inst)
	d.escalated = true
	d.teacher = time.Since(t1)
}

// teacherBrief runs the full float64 pipeline on the replica's teacher —
// the cascade's escalation target, and what Warm uses to grow the teacher
// scratch on a cascade replica.
func (r *modelReplica) teacherBrief(inst *wb.Instance) *wb.Brief {
	b := wb.ExtractBriefWith(r.model, inst, r.vocab, r.scratch)
	b.Topic = wb.DecodeTopicWith(r.model, inst, r.vocab, r.beam, r.scratch)
	return b
}

// teacherBriefBatch re-briefs escalated members on the float64 teacher:
// fused batched forwards when more than one escalated, serial otherwise.
func (r *modelReplica) teacherBriefBatch(insts []*wb.Instance) []*wb.Brief {
	if len(insts) == 1 {
		return []*wb.Brief{r.teacherBrief(insts[0])}
	}
	briefs, outs := wb.ExtractBriefBatch(r.model, insts, r.vocab, r.batch)
	wb.DecodeTopicBatch(r.model, insts, outs, r.vocab, r.beam, r.batch, briefs)
	return briefs
}

// EncodeBatch implements BatchReplica: one fused Eval forward for the whole
// micro-batch (on the student when the cascade is on). The forward outputs
// stay live on the batch tape for the DecodeBatch call that must follow.
func (r *modelReplica) EncodeBatch(insts []*wb.Instance) []*wb.Brief {
	if r.student == nil {
		briefs, outs := wb.ExtractBriefBatch(r.model, insts, r.vocab, r.batch)
		r.outs = outs
		return briefs
	}
	t0 := time.Now()
	briefs, outs := wb.ExtractBriefBatch32(r.student, insts, r.vocab, r.sbatch)
	r.souts = outs
	dur := time.Since(t0)
	r.decisions = r.decisions[:0]
	for range insts {
		// Every member waited the whole fused stage — the same per-request
		// semantics as the serve layer's stage histograms.
		r.decisions = append(r.decisions, cascadeDecision{student: dur})
	}
	return briefs
}

// DecodeBatch implements BatchReplica: one batched beam search over the
// encode outputs EncodeBatch retained. On a cascade replica the
// low-confidence subset then re-briefs on the teacher, batched when more
// than one member escalates.
func (r *modelReplica) DecodeBatch(insts []*wb.Instance, briefs []*wb.Brief) {
	if r.student == nil {
		wb.DecodeTopicBatch(r.model, insts, r.outs, r.vocab, r.beam, r.batch, briefs)
		r.outs = nil
		return
	}
	t0 := time.Now()
	confs := wb.DecodeTopicBatch32(r.student, insts, r.souts, r.vocab, r.beam, r.sbatch, briefs)
	r.souts = nil
	sdur := time.Since(t0)
	var escIdx []int
	for i := range insts {
		r.decisions[i].student += sdur
		if confs[i].Score() < r.threshold {
			escIdx = append(escIdx, i)
		}
	}
	if len(escIdx) == 0 {
		return
	}
	escInsts := make([]*wb.Instance, len(escIdx))
	for j, i := range escIdx {
		escInsts[j] = insts[i]
	}
	t1 := time.Now()
	tbriefs := r.teacherBriefBatch(escInsts)
	tdur := time.Since(t1)
	for j, i := range escIdx {
		*briefs[i] = *tbriefs[j]
		r.decisions[i].escalated = true
		r.decisions[i].teacher = tdur
	}
}

// CascadeReport implements cascadeReporter.
func (r *modelReplica) CascadeReport() []cascadeDecision {
	if r.student == nil {
		return nil
	}
	return r.decisions
}

// BreakerState is the health state of one replica, circuit-breaker style.
type BreakerState int

// The replica breaker states.
const (
	BreakerClosed   BreakerState = iota // healthy, in rotation
	BreakerOpen                         // ejected after a panic or stall, out of rotation
	BreakerHalfOpen                     // out of rotation, re-admission probes running
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half_open"
	}
}

// Pool holds a fixed set of interchangeable eval-mode replicas. A request
// checks one out with Get, briefs on it exclusively, and returns it with
// Put — so up to Size briefings proceed concurrently with no shared mutex,
// unlike wb.Briefer which serialises every forward pass behind one lock.
//
// The pool also tracks per-replica health: a replica that panics or wedges
// is Ejected (breaker open) instead of Put back, shrinking capacity but
// never poisoning later requests; re-admission probing (serve.Server)
// moves it through half-open back to closed once it briefs cleanly again.
type Pool struct {
	size int
	idle chan Replica

	mu           sync.Mutex
	state        map[Replica]BreakerState
	healthy      int
	ejections    int64
	readmissions int64
}

// NewPool builds n replicas of m (0 → GOMAXPROCS): the original model plus
// n-1 serving clones that share only the read-only embedding table. The
// clones come from one wb.CloneManyForServing call, so the model is
// snapshot-encoded once, not once per replica. beam and maxTokens configure
// each replica exactly like wb.NewBriefer, so pooled briefings are
// identical to the serial path's.
func NewPool(m *wb.JointWB, v *textproc.Vocab, n, beam, maxTokens int) (*Pool, error) {
	reps, err := newModelReplicas(m, v, n, beam, maxTokens)
	if err != nil {
		return nil, err
	}
	replicas := make([]Replica, len(reps))
	for i, r := range reps {
		replicas[i] = r
	}
	return PoolOf(replicas...), nil
}

// NewCascadePool builds a pool whose replicas run the float32 student fast
// path with confidence-gated escalation to the float64 teacher: the model
// is converted once with wb.ConvertJointWB (GloVe-encoder models only) and
// the read-only student weights are shared across all replicas, each of
// which owns its own float32 scratch workspaces. threshold is the
// escalation cutoff on the decode confidence score: ≤ 0 never escalates,
// > 1 escalates every briefing.
func NewCascadePool(m *wb.JointWB, v *textproc.Vocab, n, beam, maxTokens int, threshold float64) (*Pool, error) {
	reps, err := newModelReplicas(m, v, n, beam, maxTokens)
	if err != nil {
		return nil, err
	}
	student, err := wb.ConvertJointWB(m)
	if err != nil {
		return nil, fmt.Errorf("serve: float32 student: %w", err)
	}
	replicas := make([]Replica, len(reps))
	for i, r := range reps {
		r.student = student
		r.threshold = threshold
		r.sscratch = wb.NewInferScratch32For(v, beam)
		r.sbatch = wb.NewBatchScratch32For(v, beam, 0)
		replicas[i] = r
	}
	return PoolOf(replicas...), nil
}

// newModelReplicas builds the n teacher replicas NewPool and NewCascadePool
// share: the original model plus n-1 serving clones.
func newModelReplicas(m *wb.JointWB, v *textproc.Vocab, n, beam, maxTokens int) ([]*modelReplica, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	replicas := make([]*modelReplica, n)
	replicas[0] = &modelReplica{
		model: m, vocab: v, beam: beam, maxTokens: maxTokens,
		scratch: wb.NewInferScratchFor(v, beam),
		batch:   wb.NewBatchScratchFor(v, beam, 0),
	}
	if n > 1 {
		clones, err := wb.CloneManyForServing(m, v, n-1)
		if err != nil {
			return nil, fmt.Errorf("serve: clone replicas: %w", err)
		}
		for i, c := range clones {
			replicas[i+1] = &modelReplica{
				model: c, vocab: v, beam: beam, maxTokens: maxTokens,
				scratch: wb.NewInferScratchFor(v, beam),
				batch:   wb.NewBatchScratchFor(v, beam, 0),
			}
		}
	}
	return replicas, nil
}

// PoolOf wraps pre-built replicas — the seam for serving a non-GloVe model
// or, in tests, replicas with controlled latency or injected faults.
func PoolOf(replicas ...Replica) *Pool {
	p := &Pool{
		size:    len(replicas),
		idle:    make(chan Replica, len(replicas)),
		state:   make(map[Replica]BreakerState, len(replicas)),
		healthy: len(replicas),
	}
	for _, r := range replicas {
		p.state[r] = BreakerClosed
		p.idle <- r
	}
	return p
}

// Warm briefs html twice on every replica so each scratch workspace grows
// its arena, pack and beam buffers to steady state before real traffic
// arrives; the first request per replica then runs the same allocation-free
// path as every later one. Two passes because first-use growth (arena
// blocks, pack panels, beam pools) happens during the first brief — the
// second proves the workspace has stopped growing for this page shape. Warm
// with a max-shape page (see WarmupHTML) so one-time growth never shows up
// in per-request numbers. Call it before serving starts: it requires a
// fully idle pool and checks all replicas out while it runs.
func (p *Pool) Warm(html string) error {
	return p.warmAll(html, func(r Replica, inst *wb.Instance) {
		r.Decode(inst, r.Encode(inst))
		r.Decode(inst, r.Encode(inst))
		if mr, ok := r.(*modelReplica); ok && mr.student != nil {
			// The passes above grew the student tier; the escalation
			// target must not hit a cold teacher scratch either.
			mr.teacherBrief(inst)
			mr.teacherBrief(inst)
		}
	})
}

// WarmBatch pre-grows each replica's batched workspace by briefing size
// copies of html as one micro-batch, twice, on every replica that supports
// batching (others are skipped). Same idle-pool contract as Warm.
func (p *Pool) WarmBatch(html string, size int) error {
	if size < 1 {
		size = 1
	}
	return p.warmAll(html, func(r Replica, inst *wb.Instance) {
		br, ok := r.(BatchReplica)
		if !ok {
			return
		}
		insts := make([]*wb.Instance, size)
		for i := range insts {
			insts[i] = inst
		}
		br.DecodeBatch(insts, br.EncodeBatch(insts))
		br.DecodeBatch(insts, br.EncodeBatch(insts))
		if mr, ok := r.(*modelReplica); ok && mr.student != nil {
			// Batched escalations run the teacher's batched path; grow its
			// workspace at full width too.
			mr.teacherBriefBatch(insts)
			mr.teacherBriefBatch(insts)
		}
	})
}

// warmAll checks every replica out of an idle pool, parses html on it and
// runs fn, returning all replicas afterwards.
func (p *Pool) warmAll(html string, fn func(Replica, *wb.Instance)) error {
	if p.Idle() != p.size {
		return fmt.Errorf("serve: Warm needs an idle pool (%d of %d idle)", p.Idle(), p.size)
	}
	checked := make([]Replica, 0, p.size)
	defer func() {
		for _, r := range checked {
			p.Put(r)
		}
	}()
	for i := 0; i < p.size; i++ {
		r, ok := p.TryGet()
		if !ok {
			return fmt.Errorf("serve: pool emptied during Warm")
		}
		checked = append(checked, r)
		inst, err := r.Parse(html)
		if err != nil {
			return fmt.Errorf("serve: warmup page: %w", err)
		}
		fn(r, inst)
	}
	return nil
}

// WrapOne replaces one idle replica with wrap(replica) — the seam
// cmd/wbserve's -chaos flag uses to fault-inject a live pool member for
// resilience drills. The wrapped replica inherits a closed breaker; health
// accounting is unchanged.
func (p *Pool) WrapOne(wrap func(Replica) Replica) error {
	r, ok := p.TryGet()
	if !ok {
		return fmt.Errorf("serve: WrapOne needs an idle replica")
	}
	w := wrap(r)
	p.mu.Lock()
	delete(p.state, r)
	p.state[w] = BreakerClosed
	p.mu.Unlock()
	p.idle <- w
	return nil
}

// Get checks a replica out, blocking until one is idle or ctx is done.
func (p *Pool) Get(ctx context.Context) (Replica, error) {
	select {
	case r := <-p.idle:
		return r, nil
	default:
	}
	select {
	case r := <-p.idle:
		return r, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryGet checks a replica out only if one is idle right now.
func (p *Pool) TryGet() (Replica, bool) {
	select {
	case r := <-p.idle:
		return r, true
	default:
		return nil, false
	}
}

// Put returns a replica to the pool.
func (p *Pool) Put(r Replica) { p.idle <- r }

// Eject takes a checked-out replica out of rotation (breaker open) instead
// of Putting it back: capacity shrinks by one, but the suspect replica can
// never serve another request until Readmit. Ejecting an already-open
// replica is a no-op (the stall watchdog and a late panic can race).
func (p *Pool) Eject(r Replica) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state[r] != BreakerClosed {
		return
	}
	p.state[r] = BreakerOpen
	p.healthy--
	p.ejections++
}

// BeginProbe marks an ejected replica half-open while re-admission probes
// run against it.
func (p *Pool) BeginProbe(r Replica) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state[r] == BreakerOpen {
		p.state[r] = BreakerHalfOpen
	}
}

// Readmit closes an ejected replica's breaker and returns it to rotation.
func (p *Pool) Readmit(r Replica) {
	p.mu.Lock()
	if p.state[r] == BreakerClosed {
		p.mu.Unlock()
		return
	}
	p.state[r] = BreakerClosed
	p.healthy++
	p.readmissions++
	p.mu.Unlock()
	p.idle <- r
}

// Healthy is the number of replicas whose breaker is closed.
func (p *Pool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy
}

// BreakerStates counts replicas per breaker state, for /metrics.
func (p *Pool) BreakerStates() (closed, open, halfOpen int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.state {
		switch s {
		case BreakerClosed:
			closed++
		case BreakerOpen:
			open++
		default:
			halfOpen++
		}
	}
	return
}

// Ejections and Readmissions are lifetime counters, for /metrics.
func (p *Pool) Ejections() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ejections
}

// Readmissions is the lifetime count of replicas returned to rotation.
func (p *Pool) Readmissions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readmissions
}

// Size is the number of replicas the pool was built with.
func (p *Pool) Size() int { return p.size }

// Idle is the number of replicas currently checked in.
func (p *Pool) Idle() int { return len(p.idle) }
