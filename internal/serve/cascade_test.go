package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"webbrief/internal/corpus"
	"webbrief/internal/nn"
	"webbrief/internal/wb"
)

// cascadeServer boots a cascade server over the shared tiny trained model.
func cascadeServer(t *testing.T, cfg Config, threshold float64) (*Server, *httptest.Server, []*corpus.Page, [][]byte) {
	t.Helper()
	m, v, pages := trainedModel(t)
	const beam = 2
	cfg.BeamWidth = beam
	cfg.Cascade = true
	cfg.ConfidenceThreshold = threshold

	// Teacher-only reference bytes via the serial path, Encoder framing.
	serial := wb.NewBriefer(m, v, beam, 0)
	want := make([][]byte, len(pages))
	for i, p := range pages {
		b, err := serial.BriefHTML(p.HTML)
		if err != nil {
			t.Fatalf("serial brief %d: %v", i, err)
		}
		j, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append(j, '\n')
	}

	srv, err := New(m, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, pages, want
}

// TestCascadeNeverEscalates: with a negative threshold the confidence gate
// never trips, so every briefing is answered by the float32 student and the
// cascade partition reads all-student.
func TestCascadeNeverEscalates(t *testing.T) {
	srv, ts, pages, _ := cascadeServer(t, Config{Replicas: 2}, -1)
	for i, p := range pages {
		status, body, err := postBrief(ts.URL, p.HTML)
		if err != nil || status != http.StatusOK {
			t.Fatalf("page %d: status %d err %v", i, status, err)
		}
		if !bytes.Contains(body, []byte(`"Topic"`)) {
			t.Fatalf("page %d: student response has no topic: %s", i, body)
		}
	}
	m := srv.Metrics()
	n := int64(len(pages))
	if got := m.CascadeRequests.Load(); got != n {
		t.Fatalf("cascade_requests_total = %d, want %d", got, n)
	}
	if got := m.CascadeStudent.Load(); got != n {
		t.Fatalf("student tier answered %d, want %d", got, n)
	}
	if got := m.CascadeTeacher.Load(); got != 0 {
		t.Fatalf("teacher tier answered %d with escalation disabled", got)
	}
	if got := m.StudentLatency.count.Load(); got != n {
		t.Fatalf("student latency histogram has %d observations, want %d", got, n)
	}
	if got := m.TeacherLatency.count.Load(); got != 0 {
		t.Fatalf("teacher latency histogram has %d observations, want 0", got)
	}
}

// TestCascadeAlwaysEscalates: a threshold above 1 escalates every briefing,
// so the wire bytes must be identical to the teacher-only serial path — the
// proof that an escalation replaces the whole brief, not just the topic.
func TestCascadeAlwaysEscalates(t *testing.T) {
	srv, ts, pages, want := cascadeServer(t, Config{Replicas: 2}, 2)
	for i, p := range pages {
		status, body, err := postBrief(ts.URL, p.HTML)
		if err != nil || status != http.StatusOK {
			t.Fatalf("page %d: status %d err %v", i, status, err)
		}
		if !bytes.Equal(body, want[i]) {
			t.Fatalf("page %d: escalated response diverges from teacher-only path:\n got %s\nwant %s",
				i, body, want[i])
		}
	}
	m := srv.Metrics()
	n := int64(len(pages))
	if got := m.CascadeTeacher.Load(); got != n {
		t.Fatalf("teacher tier answered %d, want %d", got, n)
	}
	if got := m.CascadeStudent.Load(); got != 0 {
		t.Fatalf("student tier answered %d with forced escalation", got)
	}
	if got := m.TeacherLatency.count.Load(); got != n {
		t.Fatalf("teacher latency histogram has %d observations, want %d", got, n)
	}
}

// TestCascadePartitionReconciles drives a mixed workload at a live
// threshold and checks the /metrics invariants the registry promises:
// student + teacher == cascade_requests_total == OK responses, and the
// JSON snapshot mirrors the counters.
func TestCascadePartitionReconciles(t *testing.T) {
	srv, ts, pages, _ := cascadeServer(t, Config{Replicas: 2}, 0.5)
	const rounds = 3
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, p := range pages {
			wg.Add(1)
			go func(html string) {
				defer wg.Done()
				postBrief(ts.URL, html)
			}(p.HTML)
		}
	}
	wg.Wait()

	m := srv.Metrics()
	total := m.CascadeRequests.Load()
	student := m.CascadeStudent.Load()
	teacher := m.CascadeTeacher.Load()
	if student+teacher != total {
		t.Fatalf("cascade partition drifted: student %d + teacher %d != total %d", student, teacher, total)
	}
	if ok := m.OK.Load(); total != ok {
		t.Fatalf("cascade_requests_total %d != ok responses %d", total, ok)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Cascade struct {
			Enabled             bool    `json:"enabled"`
			ConfidenceThreshold float64 `json:"confidence_threshold"`
			CascadeRequests     int64   `json:"cascade_requests_total"`
			Tiers               struct {
				Student int64 `json:"student_total"`
				Teacher int64 `json:"teacher_total"`
			} `json:"tiers"`
			EscalationRate float64 `json:"escalation_rate"`
			LatencyMS      struct {
				Student struct {
					Count int64 `json:"count"`
				} `json:"student"`
				Teacher struct {
					Count int64 `json:"count"`
				} `json:"teacher"`
			} `json:"latency_ms"`
		} `json:"cascade"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	c := snap.Cascade
	if !c.Enabled || c.ConfidenceThreshold != 0.5 {
		t.Fatalf("cascade block reads enabled=%v threshold=%v", c.Enabled, c.ConfidenceThreshold)
	}
	if c.CascadeRequests != total || c.Tiers.Student != student || c.Tiers.Teacher != teacher {
		t.Fatalf("snapshot (%d, %d, %d) diverges from counters (%d, %d, %d)",
			c.CascadeRequests, c.Tiers.Student, c.Tiers.Teacher, total, student, teacher)
	}
	if total > 0 {
		wantRate := float64(teacher) / float64(total)
		if diff := c.EscalationRate - wantRate; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("escalation_rate %v, want %v", c.EscalationRate, wantRate)
		}
	}
	if c.LatencyMS.Student.Count != total || c.LatencyMS.Teacher.Count != teacher {
		t.Fatalf("tier histogram counts (%d, %d), want (%d, %d)",
			c.LatencyMS.Student.Count, c.LatencyMS.Teacher.Count, total, teacher)
	}
}

// TestCascadeBatchedWireEquivalence: micro-batching over a cascade pool at
// a force-escalate threshold must still answer teacher-only bytes for every
// member, and the partition must hold — the batched analogue of
// TestCascadeAlwaysEscalates, exercising the batched student forward plus
// the batched teacher escalation path.
func TestCascadeBatchedWireEquivalence(t *testing.T) {
	srv, ts, pages, want := cascadeServer(t,
		Config{Replicas: 1, BatchWindow: 3 * time.Millisecond, BatchMax: 4}, 2)

	var wg sync.WaitGroup
	errs := make(chan error, len(pages)*2)
	for round := 0; round < 2; round++ {
		for i, p := range pages {
			wg.Add(1)
			go func(i int, html string) {
				defer wg.Done()
				status, body, err := postBrief(ts.URL, html)
				if err != nil || status != http.StatusOK {
					errs <- err
					return
				}
				if !bytes.Equal(body, want[i]) {
					t.Errorf("page %d: batched escalated response diverges from teacher-only path", i)
				}
			}(i, p.HTML)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	m := srv.Metrics()
	total := m.CascadeRequests.Load()
	if total != int64(2*len(pages)) {
		t.Fatalf("cascade_requests_total = %d, want %d", total, 2*len(pages))
	}
	if s, tt := m.CascadeStudent.Load(), m.CascadeTeacher.Load(); s != 0 || tt != total {
		t.Fatalf("batched partition (student %d, teacher %d), want (0, %d)", s, tt, total)
	}
}

// TestCascadeBatchedStudentOnly: the batched cascade with escalation
// disabled must serve every member from the student tier and deliver a
// valid brief — covering the batched student forward + batched beam decode
// under the scheduler.
func TestCascadeBatchedStudentOnly(t *testing.T) {
	srv, ts, pages, _ := cascadeServer(t,
		Config{Replicas: 1, BatchWindow: 3 * time.Millisecond, BatchMax: 4}, -1)

	var wg sync.WaitGroup
	for _, p := range pages {
		wg.Add(1)
		go func(html string) {
			defer wg.Done()
			status, body, err := postBrief(ts.URL, html)
			if err != nil || status != http.StatusOK || !bytes.Contains(body, []byte(`"Topic"`)) {
				t.Errorf("batched student brief failed: status %d err %v", status, err)
			}
		}(p.HTML)
	}
	wg.Wait()

	m := srv.Metrics()
	if s, tt := m.CascadeStudent.Load(), m.CascadeTeacher.Load(); tt != 0 || s != int64(len(pages)) {
		t.Fatalf("batched student-only partition (student %d, teacher %d), want (%d, 0)", s, tt, len(pages))
	}
}

// TestCascadeRequiresGloVe: New with Cascade on a transformer-encoder model
// must refuse at construction, not mangle weights at serve time.
func TestCascadeRequiresGloVe(t *testing.T) {
	_, v, _ := trainedModel(t)
	// A transformer-encoder model with the same vocab: conversion must fail.
	tc := nn.TransformerConfig{Vocab: v.Size(), Dim: 12, Heads: 2, Layers: 1, FFDim: 24, MaxLen: 32, Segments: 2}
	enc := wb.NewBERTEncoder("bert", tc, false, rand.New(rand.NewSource(4)))
	bm := wb.NewJointWB("bert-serve", enc, v.Size(), wb.DefaultConfig())
	if _, err := New(bm, v, Config{Cascade: true, Replicas: 1}); err == nil {
		t.Fatal("cascade server built over a transformer-encoder model")
	}
}
