package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbrief/internal/wb"
)

// slowReplica briefs with a fixed artificial latency. The soak needs
// replicas whose service time is scheduler-independent: a real forward
// pass is pure CPU, so on a single-core box it runs to completion before
// waiting handler goroutines are even scheduled and the queue never fills.
// Sleeping yields the processor, which is exactly what a briefing under
// true multi-core contention (or any I/O) does.
type slowReplica struct{ delay time.Duration }

func (r *slowReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *slowReplica) Encode(inst *wb.Instance) *wb.Brief {
	time.Sleep(r.delay)
	return &wb.Brief{Topic: []string{"soak"}}
}
func (r *slowReplica) Decode(inst *wb.Instance, b *wb.Brief) {}

// TestServeLoadSoak hammers a deliberately under-provisioned server (one
// slow replica, a 2-deep queue) with far more concurrency than it can
// admit and asserts the overload contract end to end:
//
//   - 429s appear (the queue really is bounded);
//   - no request starves: every client finishes its quota of successful
//     briefings within a bounded number of 429-retries;
//   - the /metrics counters reconcile exactly with the totals the clients
//     observed from the outside.
//
// Skipped under -short; scripts/check.sh runs it race-enabled. The
// trained-model HTTP path is covered by TestServeEndToEnd; here the
// replicas are latency-controlled stubs so overload is reproducible on any
// core count.
func TestServeLoadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("load soak skipped in -short")
	}
	srv := NewFromPool(PoolOf(&slowReplica{delay: 2 * time.Millisecond}),
		Config{QueueDepth: 2, RetryAfter: time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const (
		clients         = 16
		briefsPerClient = 3
		maxAttempts     = 400 // per needed success; generous, starvation fails the test
	)
	var (
		sent      atomic.Int64 // every HTTP request issued
		succeeded atomic.Int64 // 200s observed
		shed      atomic.Int64 // 429s observed
	)
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	start := make(chan struct{}) // barrier: all clients fire together
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			html := "<p>soak page</p>"
			for got := 0; got < briefsPerClient; got++ {
				ok := false
				for attempt := 0; attempt < maxAttempts; attempt++ {
					status, _, err := postBrief(ts.URL, html)
					if err != nil {
						errs <- err.Error()
						return
					}
					sent.Add(1)
					switch status {
					case http.StatusOK:
						succeeded.Add(1)
						ok = true
					case http.StatusTooManyRequests:
						shed.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					default:
						errs <- "unexpected status"
						return
					}
					break
				}
				if !ok {
					errs <- "client starved: retries exhausted without a briefing"
					return
				}
			}
		}(c)
	}
	close(start)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	if got, want := succeeded.Load(), int64(clients*briefsPerClient); got != want {
		t.Fatalf("successes %d, want %d", got, want)
	}
	if shed.Load() == 0 {
		t.Fatal("expected 429s past queue depth, saw none: admission control is not bounding load")
	}

	// Server-side counters must reconcile exactly with the client view.
	ms := srv.Metrics()
	if ms.Requests.Load() != sent.Load() {
		t.Fatalf("requests_total=%d, clients sent %d", ms.Requests.Load(), sent.Load())
	}
	if ms.OK.Load() != succeeded.Load() {
		t.Fatalf("ok=%d, clients saw %d", ms.OK.Load(), succeeded.Load())
	}
	if ms.Overload.Load() != shed.Load() {
		t.Fatalf("overload=%d, clients saw %d 429s", ms.Overload.Load(), shed.Load())
	}
	if ms.Requests.Load() != ms.OK.Load()+ms.Overload.Load() {
		t.Fatalf("counters do not partition: total=%d ok=%d overload=%d",
			ms.Requests.Load(), ms.OK.Load(), ms.Overload.Load())
	}

	// Stage histograms saw exactly one observation per success, and the
	// queue never reports residual depth once the storm is over.
	for name, h := range map[string]*histogram{
		"parse": &ms.Parse, "encode": &ms.Encode, "decode": &ms.Decode,
	} {
		if h.count.Load() != ms.OK.Load() {
			t.Fatalf("%s histogram count=%d, want %d", name, h.count.Load(), ms.OK.Load())
		}
	}
	if ms.Queued.Load() != 0 || ms.InFlight.Load() != 0 {
		t.Fatalf("residual queued=%d in_flight=%d", ms.Queued.Load(), ms.InFlight.Load())
	}

	// The /metrics endpoint agrees with the in-process counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.RequestsTotal != sent.Load() || snap.Responses.Overload != shed.Load() {
		t.Fatalf("endpoint snapshot total=%d overload=%d, want %d/%d",
			snap.RequestsTotal, snap.Responses.Overload, sent.Load(), shed.Load())
	}
}
