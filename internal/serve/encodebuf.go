package serve

import (
	"bytes"
	"encoding/json"
	"sync"
)

// encodeBuf pairs a byte buffer with a JSON encoder writing into it, pooled
// so the HTTP layer's response marshalling and access-log lines stop
// allocating a fresh buffer per request. json.Encoder.Encode appends the
// same trailing newline the old Marshal-then-append path produced, so the
// bytes on the wire are unchanged.
type encodeBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encodeBufPool = sync.Pool{New: func() any {
	e := &encodeBuf{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// getEncodeBuf returns an empty pooled buffer. Pair with putEncodeBuf; the
// buffer's bytes must not be retained past it.
func getEncodeBuf() *encodeBuf { return encodeBufPool.Get().(*encodeBuf) }

// putEncodeBuf resets and recycles a buffer.
func putEncodeBuf(e *encodeBuf) {
	e.buf.Reset()
	encodeBufPool.Put(e)
}
