package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// This file is the zero-downtime hot model reload path: build a complete
// shadow pool from a freshly loaded bundle, warm it off-path exactly like a
// cold boot (Pool.Warm / Pool.WarmBatch grow every scratch workspace to
// steady state), then atomically swap it in under the live handler. No
// request is ever dropped or torn across the swap:
//
//   - a request snapshots the pool pointer once (at checkout for the serial
//     path, per batch for the scheduler), so every retry and every stage of
//     one briefing runs on replicas of a single generation;
//   - requests in flight on the old pool finish on the old pool and Put
//     their replicas back there; once the last one returns, nothing
//     references the retired pool and it is garbage collected;
//   - requests admitted after the swap check out of the new pool.
//
// The generation counter (1 at boot, +1 per completed reload) is exported
// at /metrics and in the reload response, so fleet drivers (cmd/wbgate) can
// observe which model generation each backend serves.

// ReloadSource loads a fresh model bundle for Reload — typically a re-read
// of the -model file (cmd/wbserve), or a test's in-memory bundle.
type ReloadSource func() (*wb.JointWB, *textproc.Vocab, error)

// SetReloadSource registers the loader behind ReloadFromSource and the
// /admin/reload endpoint. Without one, reload requests are refused.
func (s *Server) SetReloadSource(fn ReloadSource) {
	s.reloadMu.Lock()
	s.reloadSource = fn
	s.reloadMu.Unlock()
}

// Generation is the model generation currently serving: 1 for the boot
// bundle, +1 per completed reload.
func (s *Server) Generation() int64 { return s.generation.Load() }

// Reloads is the lifetime count of completed hot reloads.
func (s *Server) Reloads() int64 { return s.reloads.Load() }

// buildPool constructs the replica pool New and Reload share: a cascade
// pool when cfg.Cascade is set, a plain teacher pool otherwise. size
// overrides cfg.Replicas when positive — Reload passes the live pool's
// resolved size so a reload never changes capacity mid-flight.
func buildPool(m *wb.JointWB, v *textproc.Vocab, cfg Config, size int) (*Pool, error) {
	n := cfg.Replicas
	if size > 0 {
		n = size
	}
	if cfg.Cascade {
		return NewCascadePool(m, v, n, cfg.BeamWidth, cfg.MaxTokens, cfg.ConfidenceThreshold)
	}
	return NewPool(m, v, n, cfg.BeamWidth, cfg.MaxTokens)
}

// Reload hot-swaps the serving model: it builds a shadow pool of the same
// size as the live one from m/v, warms it off-path, and atomically swaps it
// in. Briefings in flight finish on the old generation; new admissions brief
// on the new one. It returns the new generation number. Concurrent reloads
// serialise on an internal mutex.
func (s *Server) Reload(m *wb.JointWB, v *textproc.Vocab) (int64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	//wbcheck:ignore lockhold -- holding reloadMu across build+warm is the point: reloads serialise on it, and no request-path code ever takes it (the hot path reads s.pool atomically)
	pool, err := buildPool(m, v, s.cfg, s.pool.Load().Size())
	if err != nil {
		return 0, fmt.Errorf("serve: reload: %w", err)
	}
	if err := s.warmPool(pool); err != nil {
		return 0, fmt.Errorf("serve: reload warm: %w", err)
	}
	return s.swapPool(pool)
}

// ReloadFromSource reloads via the registered ReloadSource.
func (s *Server) ReloadFromSource() (int64, error) {
	s.reloadMu.Lock()
	src := s.reloadSource
	s.reloadMu.Unlock()
	if src == nil {
		return 0, fmt.Errorf("serve: no reload source configured")
	}
	m, v, err := src()
	if err != nil {
		return 0, fmt.Errorf("serve: reload source: %w", err)
	}
	return s.Reload(m, v)
}

// SwapPool atomically swaps a pre-built (and, for real models, pre-warmed)
// pool in — the test seam behind the hot-reload equivalence suite, and the
// tail of Reload. The new pool must match the live pool's size: the
// admission ceilings (queueSlots, batchSlots) were sized off it at
// construction and are not resized mid-flight.
func (s *Server) SwapPool(p *Pool) (int64, error) {
	return s.swapPool(p)
}

// swapPool performs the atomic swap and generation bump.
func (s *Server) swapPool(p *Pool) (int64, error) {
	if live := s.pool.Load(); p.Size() != live.Size() {
		return 0, fmt.Errorf("serve: reload pool has %d replicas, live pool %d — reloads must keep capacity", p.Size(), live.Size())
	}
	if p.Idle() != p.Size() {
		return 0, fmt.Errorf("serve: reload pool not fully idle (%d of %d)", p.Idle(), p.Size())
	}
	s.pool.Store(p)
	gen := s.generation.Add(1)
	s.reloads.Add(1)
	// The old pool is retired implicitly: in-flight requests that snapshot
	// it finish and Put their replicas back, after which nothing references
	// it. Probe loops for old-pool ejections readmit into the retired pool
	// (harmless) and exit.
	return gen, nil
}

// warmPool grows a shadow pool's workspaces to steady state before it goes
// live — the same warmup a cold boot runs, so the first post-swap request
// already rides the allocation-free path.
func (s *Server) warmPool(p *Pool) error {
	html := WarmupHTML(0)
	if err := p.Warm(html); err != nil {
		return err
	}
	if s.batchCh != nil {
		return p.WarmBatch(html, s.cfg.BatchMax)
	}
	return nil
}

// handleReload is the admin reload endpoint: POST /admin/reload loads a
// fresh bundle through the registered ReloadSource, warms a shadow pool and
// swaps it in, responding with the new generation. 409 when no source is
// configured, 500 when the load or warm fails (the live pool keeps
// serving), 405 for non-POSTs. It deliberately touches none of the /brief
// outcome counters: admin traffic is not briefing traffic.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to reload the model", http.StatusMethodNotAllowed)
		return
	}
	gen, err := s.ReloadFromSource()
	if err != nil {
		code := http.StatusInternalServerError
		if s.reloadSourceUnset(err) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Generation int64 `json:"generation"`
		Replicas   int   `json:"replicas"`
	}{gen, s.pool.Load().Size()})
}

// reloadSourceUnset distinguishes "nothing to reload from" (a configuration
// state, 409) from a failed load (500).
func (s *Server) reloadSourceUnset(err error) bool {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.reloadSource == nil && err != nil
}
