package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbrief/internal/corpus"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// genReplica briefs successfully with a body that names its model
// generation twice: Encode stamps the first copy, Decode the second. A
// response whose two stamps disagree — or that matches no known
// generation's bytes — would prove a briefing tore across a hot reload.
// The small decode sleep keeps briefings in flight long enough for swaps
// to land mid-request.
type genReplica struct {
	gen   string
	delay time.Duration
}

func (r *genReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *genReplica) Encode(inst *wb.Instance) *wb.Brief {
	return &wb.Brief{Topic: []string{r.gen}}
}
func (r *genReplica) Decode(inst *wb.Instance, b *wb.Brief) {
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	b.Topic = append(b.Topic, r.gen)
}

// genBytes is the exact wire body a generation's briefing produces: the
// brief JSON plus the json.Encoder trailing newline.
func genBytes(t *testing.T, gen string) []byte {
	t.Helper()
	j, err := json.Marshal(&wb.Brief{Topic: []string{gen, gen}})
	if err != nil {
		t.Fatal(err)
	}
	return append(j, '\n')
}

func genPool(gen string, delay time.Duration, n int) *Pool {
	reps := make([]Replica, n)
	for i := range reps {
		reps[i] = &genReplica{gen: gen, delay: delay}
	}
	return PoolOf(reps...)
}

// runReloadEquivalence hammers srv with concurrent clients while the main
// goroutine swaps through the given generations, then checks the torn-read
// contract: every single response is a 200 whose body is byte-identical to
// exactly one generation's output — never a mix, never an error, never a
// drop — and the generation counter ends at 1+len(swaps).
func runReloadEquivalence(t *testing.T, srv *Server, url string, swapGens []string, delay time.Duration) {
	t.Helper()
	wants := map[string][]byte{"g1": genBytes(t, "g1")}
	for _, g := range swapGens {
		wants[g] = genBytes(t, g)
	}

	const clients = 8
	const perClient = 40
	var (
		wg     sync.WaitGroup
		served atomic.Int64
		byGen  sync.Map // gen -> *atomic.Int64
	)
	for g := range wants {
		byGen.Store(g, new(atomic.Int64))
	}
	errCh := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, body, err := postBrief(url, "<html><body>reload load</body></html>")
				if err != nil || status != http.StatusOK {
					errCh <- fmt.Errorf("status %d err %v", status, err)
					continue
				}
				matched := false
				for g, want := range wants {
					if bytes.Equal(body, want) {
						n, _ := byGen.Load(g)
						n.(*atomic.Int64).Add(1)
						matched = true
						break
					}
				}
				if !matched {
					errCh <- fmt.Errorf("torn or unknown response body: %q", body)
				}
				served.Add(1)
			}
		}()
	}

	// Swap generations mid-load: wait for some traffic to land on the
	// current generation, then swap to the next. waitCond bounds each wait.
	prevServed := int64(0)
	for _, g := range swapGens {
		target := prevServed + clients // at least one response per swap window
		waitCond(t, "load to progress before swap", func() bool { return served.Load() >= target })
		if _, err := srv.SwapPool(genPool(g, delay, srv.Pool().Size())); err != nil {
			t.Fatalf("SwapPool(%s): %v", g, err)
		}
		prevServed = served.Load()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("client: %v", err)
	}

	total := served.Load()
	if want := int64(clients * perClient); total != want {
		t.Fatalf("served %d of %d requests — dropped across reload", total, want)
	}
	// The last swapped generation must be live: a post-quiesce request
	// briefs on it deterministically.
	last := swapGens[len(swapGens)-1]
	status, body, err := postBrief(url, "<html><body>post-swap</body></html>")
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-swap brief: status %d err %v", status, err)
	}
	if !bytes.Equal(body, wants[last]) {
		t.Fatalf("post-swap response not on generation %s:\n got %q\nwant %q", last, body, wants[last])
	}

	if got, want := srv.Generation(), int64(1+len(swapGens)); got != want {
		t.Fatalf("generation = %d, want %d", got, want)
	}
	if got, want := srv.Reloads(), int64(len(swapGens)); got != want {
		t.Fatalf("reloads = %d, want %d", got, want)
	}
	// Zero dropped requests, exactly: OK must account for every client
	// success including the post-swap probe.
	if got, want := srv.Metrics().OK.Load(), total+1; got != want {
		t.Fatalf("metrics OK = %d, client successes = %d", got, want)
	}
}

// TestHotReloadEquivalenceSerial swaps three model generations under
// concurrent serial-path load and asserts no response is ever torn across
// a generation or dropped.
func TestHotReloadEquivalenceSerial(t *testing.T) {
	srv := NewFromPool(genPool("g1", 200*time.Microsecond, 2), Config{QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	runReloadEquivalence(t, srv, ts.URL, []string{"g2", "g3", "g4"}, 200*time.Microsecond)
}

// TestHotReloadEquivalenceBatched runs the same torn-read contract through
// the micro-batch scheduler: a batch snapshots the pool once, so members
// of one batch all brief on a single generation even when the swap lands
// between collect and execute.
func TestHotReloadEquivalenceBatched(t *testing.T) {
	srv := NewFromPool(genPool("g1", 200*time.Microsecond, 2), Config{
		QueueDepth:  64,
		BatchWindow: 300 * time.Microsecond,
		BatchMax:    4,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	runReloadEquivalence(t, srv, ts.URL, []string{"g2", "g3"}, 200*time.Microsecond)
	srv.BeginShutdown()
}

// TestSwapPoolRejectsBadPools pins the two swap preconditions: capacity
// must not change across a reload, and the incoming pool must be fully
// idle (nothing may already hold one of its replicas).
func TestSwapPoolRejectsBadPools(t *testing.T) {
	srv := NewFromPool(genPool("g1", 0, 2), Config{})
	if _, err := srv.SwapPool(genPool("g2", 0, 3)); err == nil {
		t.Fatal("SwapPool accepted a pool of a different size")
	}
	busy := genPool("g2", 0, 2)
	if _, ok := busy.TryGet(); !ok {
		t.Fatal("TryGet on fresh pool failed")
	}
	if _, err := srv.SwapPool(busy); err == nil {
		t.Fatal("SwapPool accepted a non-idle pool")
	}
	if got := srv.Generation(); got != 1 {
		t.Fatalf("failed swaps must not bump generation: got %d", got)
	}
}

// trainedModelSeed is trainedModel with a controllable model seed, so a
// reload test can build a second, genuinely different bundle over the same
// corpus and vocabulary.
func trainedModelSeed(t testing.TB, seed int64) (*wb.JointWB, *textproc.Vocab, []*corpus.Page) {
	t.Helper()
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 4, SeenDomains: 2, UnseenDomains: 0})
	if err != nil {
		t.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	insts := wb.NewInstances(ds.Pages, v, 0)
	enc := wb.NewGloVeEncoder(tensor.Randn(v.Size(), 16, 0.1, rand.New(rand.NewSource(seed))))
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = seed
	m := wb.NewJointWB("serve-test", enc, v.Size(), cfg)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 2
	wb.TrainModel(m, insts, tc)
	return m, v, ds.Pages
}

// TestReloadRealModel reloads a real trained bundle end to end — build,
// warm, swap — and asserts post-reload responses are byte-identical to the
// new model's serial reference briefings, with the reload generation
// visible at /metrics and via /admin/reload.
func TestReloadRealModel(t *testing.T) {
	m1, v1, pages := trainedModelSeed(t, 51)
	m2, v2, _ := trainedModelSeed(t, 52)
	const beam = 2

	srv, err := New(m1, v1, Config{Replicas: 2, BeamWidth: beam})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wireBrief := func(m *wb.JointWB, v *textproc.Vocab, html string) []byte {
		serial := wb.NewBriefer(m, v, beam, 0)
		b, err := serial.BriefHTML(html)
		if err != nil {
			t.Fatalf("serial brief: %v", err)
		}
		j, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		return append(j, '\n')
	}

	// Pre-reload sanity: generation 1 serves the old model.
	status, body, err := postBrief(ts.URL, pages[0].HTML)
	if err != nil || status != http.StatusOK {
		t.Fatalf("pre-reload brief: status %d err %v", status, err)
	}
	if !bytes.Equal(body, wireBrief(m1, v1, pages[0].HTML)) {
		t.Fatal("pre-reload response diverges from old model's serial path")
	}

	gen, err := srv.Reload(m2, v2)
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if gen != 2 {
		t.Fatalf("Reload returned generation %d, want 2", gen)
	}

	// Every page must now brief byte-identically to the new model's serial
	// path — the swapped pool is complete and warm, not a partial fleet.
	for i, p := range pages {
		status, body, err := postBrief(ts.URL, p.HTML)
		if err != nil || status != http.StatusOK {
			t.Fatalf("post-reload brief %d: status %d err %v", i, status, err)
		}
		if !bytes.Equal(body, wireBrief(m2, v2, p.HTML)) {
			t.Fatalf("post-reload page %d diverges from new model's serial path", i)
		}
	}

	// /metrics reports the new generation.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Reload struct {
			Generation   int64 `json:"generation"`
			ReloadsTotal int64 `json:"reloads_total"`
		} `json:"reload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Reload.Generation != 2 || snap.Reload.ReloadsTotal != 1 {
		t.Fatalf("metrics reload block = %+v, want generation 2 / reloads 1", snap.Reload)
	}
}

// TestAdminReloadEndpoint pins the admin surface: 405 for non-POSTs, 409
// with no reload source, 200 + generation JSON once a source is set, and
// 500 (live pool untouched) when the source fails.
func TestAdminReloadEndpoint(t *testing.T) {
	m, v, pages := trainedModelSeed(t, 51)
	srv, err := New(m, v, Config{Replicas: 1, BeamWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get, err := http.Get(ts.URL + "/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload = %d, want 405", get.StatusCode)
	}

	post := func() (int, string) {
		resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 512)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, _ := post(); code != http.StatusConflict {
		t.Fatalf("reload with no source = %d, want 409", code)
	}

	srv.SetReloadSource(func() (*wb.JointWB, *textproc.Vocab, error) {
		return nil, nil, fmt.Errorf("bundle read failed")
	})
	if code, _ := post(); code != http.StatusInternalServerError {
		t.Fatal("failing source must 500")
	}
	if srv.Generation() != 1 {
		t.Fatalf("failed reload bumped generation to %d", srv.Generation())
	}
	// Live pool still serves after the failed reload.
	if status, _, err := postBrief(ts.URL, pages[0].HTML); err != nil || status != http.StatusOK {
		t.Fatalf("brief after failed reload: status %d err %v", status, err)
	}

	srv.SetReloadSource(func() (*wb.JointWB, *textproc.Vocab, error) { return m, v, nil })
	code, body := post()
	if code != http.StatusOK {
		t.Fatalf("reload = %d body %q, want 200", code, body)
	}
	var out struct {
		Generation int64 `json:"generation"`
		Replicas   int   `json:"replicas"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("reload response %q: %v", body, err)
	}
	if out.Generation != 2 || out.Replicas != 1 {
		t.Fatalf("reload response = %+v, want generation 2 / replicas 1", out)
	}
}
