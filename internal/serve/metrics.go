package serve

import (
	"sync/atomic"
	"time"

	"webbrief/internal/briefcache"
)

// latencyBucketsMS are the fixed histogram bucket upper bounds, in
// milliseconds. The last slot of a Histogram's counts is the overflow
// bucket (> 1s). Fixed buckets keep observation lock-free (one atomic add)
// and make /metrics output directly comparable across runs.
var latencyBucketsMS = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation. Sum is tracked in microseconds so it stays an integer add.
type histogram struct {
	counts [12]atomic.Int64 // len(latencyBucketsMS) + overflow
	count  atomic.Int64
	sumUS  atomic.Int64
}

// Observe records one duration.
func (h *histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(d.Microseconds())
}

// snapshot renders the histogram for /metrics.
func (h *histogram) snapshot() histogramSnapshot {
	s := histogramSnapshot{
		BucketsMS: latencyBucketsMS,
		Counts:    make([]int64, len(h.counts)),
		Count:     h.count.Load(),
		SumMS:     float64(h.sumUS.Load()) / 1e3,
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// histogramSnapshot is the JSON form of one histogram. Counts has one extra
// trailing slot: observations above the last bucket bound.
type histogramSnapshot struct {
	BucketsMS []float64 `json:"buckets_ms"`
	Counts    []int64   `json:"counts"`
	Count     int64     `json:"count"`
	SumMS     float64   `json:"sum_ms"`
}

// batchWaitBucketsNS are the batch-wait histogram bucket upper bounds, in
// nanoseconds: 50µs–100ms. Batch waits sit well below request latencies (the
// window is typically a fraction of one briefing), so they get their own
// finer scale.
var batchWaitBucketsNS = []int64{
	50_000, 100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000, 10_000_000,
	20_000_000, 50_000_000, 100_000_000,
}

// cacheHitBucketsNS are the cache-hit latency bucket upper bounds, in
// nanoseconds: 1µs–10ms. A hit is one or two SHA-256s plus a shard-locked
// map probe, an order of magnitude below even the batch-wait scale, so it
// gets its own buckets on the shared nsHistogram machinery.
var cacheHitBucketsNS = []int64{
	1_000, 2_000, 5_000, 10_000,
	20_000, 50_000, 100_000, 200_000,
	500_000, 1_000_000, 10_000_000,
}

// nsHistogram is a fixed-bucket nanosecond histogram, same lock-free
// observation discipline as histogram. The bucket bounds are supplied per
// call site (observe/snapshotWith), so one struct serves both the
// batch-wait and cache-hit scales; Observe/snapshot keep the original
// batch-wait binding.
type nsHistogram struct {
	counts [12]atomic.Int64 // len(bucket slice) + overflow
	count  atomic.Int64
	sumNS  atomic.Int64
}

// observe records one duration against explicit bucket bounds (which must
// have len(counts)-1 entries and be used consistently for one histogram).
func (h *nsHistogram) observe(buckets []int64, d time.Duration) {
	ns := d.Nanoseconds()
	i := 0
	for i < len(buckets) && ns > buckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Observe records one batch-wait duration.
func (h *nsHistogram) Observe(d time.Duration) { h.observe(batchWaitBucketsNS, d) }

// snapshotWith renders the histogram for /metrics against the bucket
// bounds it was observed with.
func (h *nsHistogram) snapshotWith(buckets []int64) nsHistogramSnapshot {
	s := nsHistogramSnapshot{
		BucketsNS: buckets,
		Counts:    make([]int64, len(h.counts)),
		Count:     h.count.Load(),
		SumNS:     h.sumNS.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// snapshot renders a batch-wait histogram.
func (h *nsHistogram) snapshot() nsHistogramSnapshot { return h.snapshotWith(batchWaitBucketsNS) }

// nsHistogramSnapshot is the JSON form of one nanosecond histogram.
type nsHistogramSnapshot struct {
	BucketsNS []int64 `json:"buckets_ns"`
	Counts    []int64 `json:"counts"`
	Count     int64   `json:"count"`
	SumNS     int64   `json:"sum_ns"`
}

// batchSizeBuckets are the batch-size histogram bucket upper bounds
// (requests per formed batch); the trailing slot catches larger batches.
var batchSizeBuckets = []int64{1, 2, 3, 4, 6, 8, 12, 16}

// sizeHistogram is a fixed-bucket histogram over small integer sizes.
type sizeHistogram struct {
	counts [9]atomic.Int64 // len(batchSizeBuckets) + overflow
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one batch size.
func (h *sizeHistogram) Observe(n int) {
	v := int64(n)
	i := 0
	for i < len(batchSizeBuckets) && v > batchSizeBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// snapshot renders the histogram for /metrics.
func (h *sizeHistogram) snapshot() sizeHistogramSnapshot {
	s := sizeHistogramSnapshot{
		Buckets: batchSizeBuckets,
		Counts:  make([]int64, len(h.counts)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// sizeHistogramSnapshot is the JSON form of one size histogram.
type sizeHistogramSnapshot struct {
	Buckets []int64 `json:"buckets"`
	Counts  []int64 `json:"counts"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// Metrics aggregates the serving counters exported at /metrics. All fields
// are atomics: the hot path never takes a lock to record.
type Metrics struct {
	// Requests counts every request that reached the /brief handler,
	// whatever its outcome. The outcome counters below partition it.
	Requests atomic.Int64

	OK             atomic.Int64 // 200: briefing served
	BadMethod      atomic.Int64 // 405: non-POST
	BadRequest     atomic.Int64 // 400: unreadable body
	TooLarge       atomic.Int64 // 413: body over the limit
	Unbriefable    atomic.Int64 // 422: no visible text
	Overload       atomic.Int64 // 429: admission queue full
	Timeout        atomic.Int64 // 504: deadline expired in queue or pipeline
	Canceled       atomic.Int64 // client disconnected before a response
	Draining       atomic.Int64 // 503: received during shutdown
	ReplicaFailure atomic.Int64 // 500: replica panicked/stalled and the retry budget ran out

	InFlight atomic.Int64 // requests holding (or briefing on) a replica
	Queued   atomic.Int64 // requests waiting for a replica

	// Resilience counters: every recovered replica panic and detected
	// stall ejects the offending replica; each such event then either
	// retries the request on another replica (Retries) or, with the
	// budget spent, ends it as a ReplicaFailure.
	Panics  atomic.Int64 // replica panics recovered by the handler
	Stalls  atomic.Int64 // replica stage stalls caught by the watchdog
	Retries atomic.Int64 // requests re-run on another replica (retries_total)

	QueueWait histogram // time from admission to replica checkout
	Parse     histogram // HTML → instance
	Encode    histogram // eval forward → attributes + sections
	Decode    histogram // beam-search topic generation
	Total     histogram // handler entry → response written

	// Batching counters, populated only when Config.BatchWindow > 0. They
	// partition batches, not requests: the requests_total outcome partition
	// above stays exact because every batched request still ends in exactly
	// one per-request outcome.
	BatchesTotal      atomic.Int64  // micro-batches dispatched (batches_total)
	CoalescedRequests atomic.Int64  // requests served in batches of size ≥ 2
	BatchSize         sizeHistogram // requests per dispatched batch
	BatchWait         nsHistogram   // enqueue → batch dispatch, per request

	// Cache counters, populated only when the briefing cache is enabled.
	// CacheLookups counts every request that consulted the cache, and the
	// three outcome counters partition it exactly (cacheOutcomeFields):
	// each consulting request is a hit, a miss (flight winner) or a
	// coalesced waiter, assigned once at first decision. Evictions live on
	// the cache itself and are read at snapshot time.
	CacheLookups    atomic.Int64 // cache_lookups_total
	CacheHits       atomic.Int64 // served from cache, no replica checkout
	CacheMisses     atomic.Int64 // flight winners that computed the briefing
	CacheCoalesced  atomic.Int64 // waiters served by a winner's flight
	CacheHitLatency nsHistogram  // lookup start → hit response written (cacheHitBucketsNS)

	// Cascade counters, populated only when the pool runs the float32
	// student cascade (NewCascadePool). CascadeRequests counts every
	// briefing routed through the cascade, and the two tier counters
	// partition it exactly (cascadeOutcomeFields): each briefing either
	// stays on the student or escalates to the teacher, decided once at
	// decode time. The tier histograms carry per-tier wall time: every
	// briefing observes a student latency; only escalations observe a
	// teacher latency on top.
	CascadeRequests atomic.Int64 // cascade_requests_total
	CascadeStudent  atomic.Int64 // answered by the float32 student tier
	CascadeTeacher  atomic.Int64 // escalated to the float64 teacher tier
	StudentLatency  histogram    // student encode+decode wall time, per briefing
	TeacherLatency  histogram    // teacher re-brief wall time, per escalation
}

// requestOutcomeFields names the Metrics counters that partition
// requests_total: every request ends in exactly one of them. The wbcheck
// metricpart pass enforces the contract mechanically — each entry must be
// an atomic.Int64 field above, the Responses snapshot must mirror this
// list exactly, and any new counter bumped where a response status is
// recorded must be added here (and to the snapshot) or the partition
// silently drifts. TestRequestOutcomeFieldsReconcile re-checks the same
// three-way correspondence at run time with reflection.
var requestOutcomeFields = []string{
	"OK",
	"BadMethod",
	"BadRequest",
	"TooLarge",
	"Unbriefable",
	"Overload",
	"Timeout",
	"Canceled",
	"Draining",
	"ReplicaFailure",
}

// cacheOutcomeFields names the counters that partition
// cache_lookups_total: every request that consults the cache ends in
// exactly one of them. Enforced by the same wbcheck metricpart pass and
// runtime reflection test as requestOutcomeFields.
var cacheOutcomeFields = []string{
	"CacheHits",
	"CacheMisses",
	"CacheCoalesced",
}

// cascadeOutcomeFields names the counters that partition
// cascade_requests_total: every briefing that runs the cascade is answered
// by exactly one tier. Enforced by the same wbcheck metricpart pass and
// runtime reflection test as requestOutcomeFields.
var cascadeOutcomeFields = []string{
	"CascadeStudent",
	"CascadeTeacher",
}

// metricsSnapshot is the JSON document served at /metrics. Struct (not
// map) so field order is stable across scrapes.
type metricsSnapshot struct {
	RequestsTotal int64 `json:"requests_total"`
	Responses     struct {
		OK             int64 `json:"ok"`
		BadMethod      int64 `json:"bad_method"`
		BadRequest     int64 `json:"bad_request"`
		TooLarge       int64 `json:"too_large"`
		Unbriefable    int64 `json:"unbriefable"`
		Overload       int64 `json:"overload"`
		Timeout        int64 `json:"timeout"`
		Canceled       int64 `json:"canceled"`
		Draining       int64 `json:"draining"`
		ReplicaFailure int64 `json:"replica_failure"`
	} `json:"responses"`
	RetriesTotal int64 `json:"retries_total"`
	PanicsTotal  int64 `json:"panics_total"`
	StallsTotal  int64 `json:"stalls_total"`
	InFlight     int64 `json:"in_flight"`
	QueueDepth   int64 `json:"queue_depth"`
	Pool         struct {
		Replicas        int   `json:"replicas"`
		Idle            int   `json:"idle"`
		ReplicasHealthy int   `json:"replicas_healthy"`
		Ejections       int64 `json:"ejections_total"`
		Readmissions    int64 `json:"readmissions_total"`
		BreakerState    struct {
			Closed   int `json:"closed"`
			Open     int `json:"open"`
			HalfOpen int `json:"half_open"`
		} `json:"breaker_state"`
	} `json:"pool"`
	LatencyMS struct {
		QueueWait histogramSnapshot `json:"queue_wait"`
		Parse     histogramSnapshot `json:"parse"`
		Encode    histogramSnapshot `json:"encode"`
		Decode    histogramSnapshot `json:"decode"`
		Total     histogramSnapshot `json:"total"`
	} `json:"latency_ms"`
	Batching struct {
		Enabled                bool                  `json:"enabled"`
		BatchesTotal           int64                 `json:"batches_total"`
		CoalescedRequestsTotal int64                 `json:"coalesced_requests_total"`
		BatchSize              sizeHistogramSnapshot `json:"batch_size"`
		BatchWaitNS            nsHistogramSnapshot   `json:"batch_wait_ns"`
	} `json:"batching"`
	Cache struct {
		Enabled       bool  `json:"enabled"`
		CacheLookups  int64 `json:"cache_lookups_total"`
		CacheOutcomes struct {
			CacheHits      int64 `json:"cache_hits_total"`
			CacheMisses    int64 `json:"cache_misses_total"`
			CacheCoalesced int64 `json:"cache_coalesced_total"`
		} `json:"outcomes"`
		Evictions    int64               `json:"cache_evictions_total"`
		Entries      int                 `json:"entries"`
		HitLatencyNS nsHistogramSnapshot `json:"hit_latency_ns"`
	} `json:"cache"`
	Cascade struct {
		Enabled             bool    `json:"enabled"`
		ConfidenceThreshold float64 `json:"confidence_threshold"`
		CascadeRequests     int64   `json:"cascade_requests_total"`
		CascadeTiers        struct {
			CascadeStudent int64 `json:"student_total"`
			CascadeTeacher int64 `json:"teacher_total"`
		} `json:"tiers"`
		EscalationRate float64 `json:"escalation_rate"`
		LatencyMS      struct {
			Student histogramSnapshot `json:"student"`
			Teacher histogramSnapshot `json:"teacher"`
		} `json:"latency_ms"`
	} `json:"cascade"`
	Reload struct {
		Generation   int64 `json:"generation"`
		ReloadsTotal int64 `json:"reloads_total"`
	} `json:"reload"`
}

// snapshot collects a point-in-time view of every counter. batching flags
// whether the server dispatches through the micro-batch scheduler; cache
// is the briefing cache (nil when disabled), read for eviction and
// occupancy figures; cascade and threshold describe the student fast path
// (threshold is only meaningful when cascade is set); gen and reloads are
// the hot-reload generation counter and lifetime reload count.
func (m *Metrics) snapshot(pool *Pool, batching bool, cache *briefcache.Cache, cascade bool, threshold float64, gen, reloads int64) metricsSnapshot {
	var s metricsSnapshot
	s.RequestsTotal = m.Requests.Load()
	s.Responses.OK = m.OK.Load()
	s.Responses.BadMethod = m.BadMethod.Load()
	s.Responses.BadRequest = m.BadRequest.Load()
	s.Responses.TooLarge = m.TooLarge.Load()
	s.Responses.Unbriefable = m.Unbriefable.Load()
	s.Responses.Overload = m.Overload.Load()
	s.Responses.Timeout = m.Timeout.Load()
	s.Responses.Canceled = m.Canceled.Load()
	s.Responses.Draining = m.Draining.Load()
	s.Responses.ReplicaFailure = m.ReplicaFailure.Load()
	s.RetriesTotal = m.Retries.Load()
	s.PanicsTotal = m.Panics.Load()
	s.StallsTotal = m.Stalls.Load()
	s.InFlight = m.InFlight.Load()
	s.QueueDepth = m.Queued.Load()
	s.Pool.Replicas = pool.Size()
	s.Pool.Idle = pool.Idle()
	s.Pool.ReplicasHealthy = pool.Healthy()
	s.Pool.Ejections = pool.Ejections()
	s.Pool.Readmissions = pool.Readmissions()
	closed, open, half := pool.BreakerStates()
	s.Pool.BreakerState.Closed = closed
	s.Pool.BreakerState.Open = open
	s.Pool.BreakerState.HalfOpen = half
	s.LatencyMS.QueueWait = m.QueueWait.snapshot()
	s.LatencyMS.Parse = m.Parse.snapshot()
	s.LatencyMS.Encode = m.Encode.snapshot()
	s.LatencyMS.Decode = m.Decode.snapshot()
	s.LatencyMS.Total = m.Total.snapshot()
	s.Batching.Enabled = batching
	s.Batching.BatchesTotal = m.BatchesTotal.Load()
	s.Batching.CoalescedRequestsTotal = m.CoalescedRequests.Load()
	s.Batching.BatchSize = m.BatchSize.snapshot()
	s.Batching.BatchWaitNS = m.BatchWait.snapshot()
	s.Cache.Enabled = cache != nil
	s.Cache.CacheLookups = m.CacheLookups.Load()
	s.Cache.CacheOutcomes.CacheHits = m.CacheHits.Load()
	s.Cache.CacheOutcomes.CacheMisses = m.CacheMisses.Load()
	s.Cache.CacheOutcomes.CacheCoalesced = m.CacheCoalesced.Load()
	if cache != nil {
		s.Cache.Evictions = cache.Evictions()
		s.Cache.Entries = cache.Len()
	}
	s.Cache.HitLatencyNS = m.CacheHitLatency.snapshotWith(cacheHitBucketsNS)
	s.Cascade.Enabled = cascade
	if cascade {
		s.Cascade.ConfidenceThreshold = threshold
	}
	s.Cascade.CascadeRequests = m.CascadeRequests.Load()
	s.Cascade.CascadeTiers.CascadeStudent = m.CascadeStudent.Load()
	s.Cascade.CascadeTiers.CascadeTeacher = m.CascadeTeacher.Load()
	if total := s.Cascade.CascadeRequests; total > 0 {
		s.Cascade.EscalationRate = float64(s.Cascade.CascadeTiers.CascadeTeacher) / float64(total)
	}
	s.Cascade.LatencyMS.Student = m.StudentLatency.snapshot()
	s.Cascade.LatencyMS.Teacher = m.TeacherLatency.snapshot()
	s.Reload.Generation = gen
	s.Reload.ReloadsTotal = reloads
	return s
}
