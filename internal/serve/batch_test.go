package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbrief/internal/fault"
	"webbrief/internal/wb"
)

// TestBatchedWireEquivalence is the tentpole acceptance test: a server with
// micro-batching enabled must answer every request with bytes identical to
// the serial wb.Briefer path, whatever batch its request landed in. Rounds
// of 8/5/3/1 concurrent clients exercise full, partial and singleton
// batches over ragged real pages; the full round is deterministic
// coalescing (the batch fires only once all 8 members arrive), proving the
// fused B-row forward — not just the fallback — produced the bytes.
func TestBatchedWireEquivalence(t *testing.T) {
	m, v, pages := trainedModel(t)
	const beam = 2

	serial := wb.NewBriefer(m, v, beam, 0)
	want := make([][]byte, len(pages))
	for i, p := range pages {
		b, err := serial.BriefHTML(p.HTML)
		if err != nil {
			t.Fatalf("serial brief %d: %v", i, err)
		}
		j, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append(j, '\n')
	}

	srv, err := New(m, v, Config{
		Replicas:    2,
		BeamWidth:   beam,
		BatchWindow: 100 * time.Millisecond,
		BatchMax:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(""); err != nil {
		t.Fatalf("warm: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for round, size := range []int{8, 5, 3, 1} {
		var wg sync.WaitGroup
		for c := 0; c < size; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				status, body, err := postBrief(ts.URL, pages[c].HTML)
				if err != nil || status != http.StatusOK {
					t.Errorf("round %d client %d: status %d err %v", round, c, status, err)
					return
				}
				if string(body) != string(want[c]) {
					t.Errorf("round %d client %d: batched response diverges from serial path:\n got %s\nwant %s",
						round, c, body, want[c])
				}
			}(c)
		}
		wg.Wait()
	}

	// The batching /metrics partition: every request above passed through
	// the scheduler, the 8-wide round coalesced, and the request outcome
	// partition stayed exact alongside it.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !snap.Batching.Enabled {
		t.Fatal("batching.enabled=false on a batching server")
	}
	const total = 8 + 5 + 3 + 1
	if snap.RequestsTotal != total || snap.Responses.OK != total {
		t.Fatalf("requests_total=%d ok=%d, want %d/%d", snap.RequestsTotal, snap.Responses.OK, total, total)
	}
	if snap.Batching.BatchesTotal < 1 {
		t.Fatalf("batches_total=%d, want >= 1", snap.Batching.BatchesTotal)
	}
	if snap.Batching.CoalescedRequestsTotal < 8 {
		t.Fatalf("coalesced_requests_total=%d, want >= 8 (the full round is deterministic)",
			snap.Batching.CoalescedRequestsTotal)
	}
	if snap.Batching.BatchSize.Count != snap.Batching.BatchesTotal {
		t.Fatalf("batch_size histogram count %d != batches_total %d",
			snap.Batching.BatchSize.Count, snap.Batching.BatchesTotal)
	}
	if snap.Batching.BatchSize.Sum != total {
		t.Fatalf("batch_size sum %d, want %d (every request in exactly one batch)",
			snap.Batching.BatchSize.Sum, total)
	}
	if snap.Batching.BatchWaitNS.Count != total {
		t.Fatalf("batch_wait_ns count %d, want %d (one wait per request)",
			snap.Batching.BatchWaitNS.Count, total)
	}
}

// blockingReplica parks every Encode until released, so a test can hold the
// pool's only replica while later requests queue behind it.
type blockingReplica struct {
	started chan struct{}
	release chan struct{}
}

func newBlockingReplica() *blockingReplica {
	return &blockingReplica{started: make(chan struct{}, 8), release: make(chan struct{})}
}

func (r *blockingReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *blockingReplica) Encode(inst *wb.Instance) *wb.Brief {
	r.started <- struct{}{}
	<-r.release
	return &wb.Brief{Topic: []string{"ok"}}
}
func (r *blockingReplica) Decode(inst *wb.Instance, b *wb.Brief) {}

// TestBatchedDeadlineMidWindow: a request whose deadline expires while it
// waits in the batching window (and then for a replica) is dropped — its
// client times out, nothing else — while its batchmate in the same
// micro-batch is served normally. An expiring member must never poison the
// batch it joined.
func TestBatchedDeadlineMidWindow(t *testing.T) {
	rep := newBlockingReplica()
	srv := NewFromPool(PoolOf(rep), Config{
		QueueDepth:  8,
		BatchWindow: 200 * time.Millisecond,
		BatchMax:    4,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only replica: this lone request batches by itself once its
	// window closes... except a singleton batch would wait the full 200ms,
	// so give it a deadline that fires its batch immediately.
	holdDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/brief", strings.NewReader("<p>hold</p>"))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		holdDone <- err
	}()
	<-rep.started // the holder's batch has the replica and is parked in Encode

	// Now two requests coalesce into the next batch: one with a deadline
	// that expires before the replica frees up, one patient.
	doomedErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/brief", strings.NewReader("<p>doomed</p>"))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = errors.New("doomed request got a response")
		}
		doomedErr <- err
	}()
	matepStatus := make(chan int, 1)
	go func() {
		status, _, err := postBrief(ts.URL, "<p>patient</p>")
		if err != nil {
			status = -1
		}
		matepStatus <- status
	}()

	// The doomed client must give up on its deadline.
	if err := <-doomedErr; err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("doomed request error = %v, want context deadline exceeded", err)
	}
	// Free the replica: the holder and the surviving batchmate both brief.
	close(rep.release)
	if err := <-holdDone; err != nil {
		t.Fatalf("holding request: %v", err)
	}
	if status := <-matepStatus; status != http.StatusOK {
		t.Fatalf("batchmate of the expired request got %d, want 200", status)
	}

	ms := srv.Metrics()
	if ms.OK.Load() != 2 {
		t.Fatalf("ok=%d, want 2 (holder + surviving batchmate)", ms.OK.Load())
	}
	if ms.ReplicaFailure.Load() != 0 || ms.Unbriefable.Load() != 0 {
		t.Fatalf("failures=%d unbriefable=%d: the expired member poisoned its batch",
			ms.ReplicaFailure.Load(), ms.Unbriefable.Load())
	}
	// The expired member ended as a canceled/timed-out request, keeping the
	// outcome partition exact.
	if ms.Canceled.Load()+ms.Timeout.Load() != 1 {
		t.Fatalf("canceled=%d timeout=%d, want exactly one for the expired member",
			ms.Canceled.Load(), ms.Timeout.Load())
	}
	if ms.Requests.Load() != ms.OK.Load()+ms.Canceled.Load()+ms.Timeout.Load() {
		t.Fatalf("requests_total=%d does not partition into outcomes", ms.Requests.Load())
	}

	// And the server still drains cleanly with the batcher running.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if n := srv.Drain(ctx); n != 0 {
		t.Fatalf("drain left %d requests", n)
	}
}

// TestChaosServeBatchedSoak is the batched twin of the serve chaos soak:
// micro-batching on, one of three replicas wrapped in a fault injector.
// Every request must still end in the 200/500 contract with >= 99% success,
// and /metrics must reconcile exactly with client-observed outcomes — a
// fault mid-batch may cost retries, never a hung or wrongly-failed
// batchmate. Skipped under -short; scripts/check.sh runs it race-enabled.
func TestChaosServeBatchedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	sched := fault.NewSchedule(fault.Config{
		Seed: 17, Rate: 0.35,
		ErrorWeight: 1, TimeoutWeight: 1, SlowWeight: 1, GarbageWeight: 1,
		SlowDelay:   time.Millisecond,
		TimeoutHang: 40 * time.Millisecond,
	})
	faulted := fault.NewReplica(&okReplica{}, sched)
	srv := NewFromPool(PoolOf(faulted, &okReplica{}, &okReplica{}), Config{
		ReplicaRetries: 2,
		StallTimeout:   15 * time.Millisecond,
		ProbeInterval:  2 * time.Millisecond,
		BatchWindow:    2 * time.Millisecond,
		BatchMax:       4,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients, perClient = 8, 25
	var ok200, fail500, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, _, err := postBrief(ts.URL, "<p>soak</p>")
				switch {
				case err != nil:
					other.Add(1)
				case status == http.StatusOK:
					ok200.Add(1)
				case status == http.StatusInternalServerError:
					fail500.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	total := int64(clients * perClient)
	if other.Load() != 0 {
		t.Fatalf("%d requests ended outside the 200/500 contract", other.Load())
	}
	if ok200.Load() < total*99/100 {
		t.Fatalf("successes %d/%d, below p99 with one faulted replica", ok200.Load(), total)
	}

	ms := srv.Metrics()
	if ms.Requests.Load() != total {
		t.Fatalf("requests_total=%d, clients sent %d", ms.Requests.Load(), total)
	}
	if ms.OK.Load() != ok200.Load() || ms.ReplicaFailure.Load() != fail500.Load() {
		t.Fatalf("server ok=%d/500=%d, clients saw %d/%d",
			ms.OK.Load(), ms.ReplicaFailure.Load(), ok200.Load(), fail500.Load())
	}
	if ms.Requests.Load() != ms.OK.Load()+ms.ReplicaFailure.Load() {
		t.Fatalf("counters do not partition: total=%d ok=%d failure=%d",
			ms.Requests.Load(), ms.OK.Load(), ms.ReplicaFailure.Load())
	}
	if ms.Panics.Load()+ms.Stalls.Load() == 0 {
		t.Fatal("soak injected no faults; the chaos schedule is not reaching the replica")
	}
	if ms.BatchesTotal.Load() == 0 || ms.CoalescedRequests.Load() == 0 {
		t.Fatalf("batches=%d coalesced=%d under concurrent load, want both > 0",
			ms.BatchesTotal.Load(), ms.CoalescedRequests.Load())
	}

	waitCond(t, "pool capacity recovery", func() bool { return srv.Pool().Healthy() == 3 })
	if srv.Metrics().InFlight.Load() != 0 || srv.Metrics().Queued.Load() != 0 {
		t.Fatalf("residual in_flight=%d queued=%d", srv.Metrics().InFlight.Load(), srv.Metrics().Queued.Load())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if n := srv.Drain(ctx); n != 0 {
		t.Fatalf("drain left %d requests", n)
	}
}

// TestBatchedOverloadAndDraining: the batched admission path keeps the
// serial path's load-shedding contract — a full queue sheds 429 with
// Retry-After, and requests arriving after shutdown are refused 503.
func TestBatchedOverloadAndDraining(t *testing.T) {
	rep := newBlockingReplica()
	srv := NewFromPool(PoolOf(rep), Config{
		QueueDepth:  1,
		BatchWindow: time.Hour, // nothing dispatches on its own
		BatchMax:    1,         // each item fills its own batch instantly
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First request: batch of one, checks out the replica, parks in Encode.
	first := make(chan int, 1)
	go func() {
		status, _, err := postBrief(ts.URL, "<p>a</p>")
		if err != nil {
			status = -1
		}
		first <- status
	}()
	<-rep.started
	// Second request: sits in the batchCh buffer (depth 1).
	second := make(chan int, 1)
	go func() {
		status, _, err := postBrief(ts.URL, "<p>b</p>")
		if err != nil {
			status = -1
		}
		second <- status
	}()
	waitCond(t, "second request to queue", func() bool { return srv.Metrics().Queued.Load() >= 2 })

	// Third request: queue full, shed.
	status, _, err := postBrief(ts.URL, "<p>c</p>")
	if err != nil || status != http.StatusTooManyRequests {
		t.Fatalf("over-admission request: status %d err %v, want 429", status, err)
	}

	srv.BeginShutdown()
	if status, _, err := postBrief(ts.URL, "<p>d</p>"); err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain request: status %d err %v, want 503", status, err)
	}

	close(rep.release)
	if s := <-first; s != http.StatusOK {
		t.Fatalf("first request: %d, want 200", s)
	}
	if s := <-second; s != http.StatusOK {
		t.Fatalf("queued request: %d, want 200 (flushed by the drain)", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if n := srv.Drain(ctx); n != 0 {
		t.Fatalf("drain left %d requests", n)
	}
	ms := srv.Metrics()
	if ms.Overload.Load() != 1 || ms.Draining.Load() != 1 || ms.OK.Load() != 2 {
		t.Fatalf("overload=%d draining=%d ok=%d, want 1/1/2",
			ms.Overload.Load(), ms.Draining.Load(), ms.OK.Load())
	}
}
