package serve

import (
	"context"
	"net/http"
	"time"

	"webbrief/internal/wb"
)

// This file is the cross-request micro-batch scheduler: the batching stage
// that sits between admission and the replica pool when Config.BatchWindow
// is set. Requests admitted concurrently coalesce into one batch of up to
// BatchMax; the batch briefs in fused B-row forward passes on a single
// replica checkout (see BatchReplica), so concurrent load turns into wider
// matmuls instead of replica contention. The window is bounded and
// deadline-aware: a batch fires as soon as it is full, its window elapses,
// or waiting longer would expire a member's context.
//
// Ownership is linear, so no item field needs a lock: the handler builds a
// batchItem and only ever touches ctx and result afterwards; the dispatcher
// owns it between the batchCh send and launch; exactly one executor
// goroutine owns it from launch until deliver. Each handoff is through a
// channel, which orders the accesses.

// batchItem is one admitted request waiting in (or running through) the
// micro-batch scheduler.
type batchItem struct {
	ctx      context.Context
	body     []byte
	enqueued time.Time

	// Executor-owned bookkeeping.
	queueWait time.Duration // enqueue → first replica checkout
	waitSet   bool
	answered  bool

	result chan batchResult // capacity 1; at most one send, guarded by answered
}

// batchResult carries the request's pipeline outcome back to its handler.
type batchResult struct {
	o         pipelineOutcome
	queueWait time.Duration
}

// deliver sends the outcome to the waiting handler, at most once. Only the
// item's executor goroutine calls it, so the answered guard needs no lock;
// the result channel's capacity means the send never blocks even if the
// handler already gave up on its context.
func (it *batchItem) deliver(o pipelineOutcome) {
	if it.answered {
		return
	}
	it.answered = true
	it.result <- batchResult{o: o, queueWait: it.queueWait}
}

// briefBatched is handleBrief's tail when batching is on: enqueue the
// request for the dispatcher and wait for its outcome or the context. The
// batchCh buffer is the admission queue (same depth as the serial path's
// queueSlots); a full channel sheds with 429 exactly like a full queue.
// fill is the request's cache-fill obligation (nil when caching is off or
// the request bypassed the cache); shed and expired exits leave it to the
// caller's deferred abandon.
func (s *Server) briefBatched(w http.ResponseWriter, lg *accessEntry, ctx context.Context, body []byte, fill *cacheFill) {
	m := s.metrics
	it := &batchItem{
		ctx:      ctx,
		body:     body,
		enqueued: time.Now(),
		result:   make(chan batchResult, 1),
	}
	// Admission: take a slot or shed. Slots are held until the response, so
	// the scheduler can never accumulate more outstanding requests than the
	// serial path's queued + in-flight ceiling.
	select {
	case s.batchSlots <- struct{}{}:
	default:
		m.Overload.Add(1)
		lg.Status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		http.Error(w, "briefing queue is full, retry later", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.batchSlots }()
	m.Queued.Add(1)
	defer m.Queued.Add(-1)
	// Re-check readiness after the Queued increment: if this handler saw
	// ready=true here, BeginShutdown had not yet run, so the drain loop is
	// guaranteed to observe this request in Queued and wait for it.
	if !s.ready.Load() {
		m.Draining.Add(1)
		lg.Status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	// Cannot block: channel capacity equals the slot count.
	s.batchCh <- it
	select {
	case res := <-it.result:
		m.QueueWait.Observe(res.queueWait)
		lg.QueueMS = roundMS(res.queueWait)
		s.respondOutcome(w, lg, res.o, fill)
	case <-ctx.Done():
		// The executor skips or ctxErr-delivers expired items; this
		// request's slot in the batch cannot poison its batchmates.
		s.failCtx(w, lg, ctx.Err())
	}
}

// dispatchBatches is the scheduler goroutine: it groups enqueued requests
// into batches and hands each to an executor. On shutdown it flushes the
// queue without windowing and exits once every outstanding request is
// answered.
func (s *Server) dispatchBatches() {
	defer close(s.batcherDone)
	for {
		select {
		case it := <-s.batchCh:
			s.collectAndLaunch(it)
		case <-s.shutdownCh:
			s.drainBatcher()
			return
		}
	}
}

// collectAndLaunch grows a batch around its first member until it is full,
// the batching window closes, or shutdown begins. The window anchors at the
// first member's enqueue time and shrinks to the earliest member context
// deadline, so no request expires merely waiting for batchmates.
func (s *Server) collectAndLaunch(first *batchItem) {
	batch := append(make([]*batchItem, 0, s.cfg.BatchMax), first)
	fireAt := first.enqueued.Add(s.cfg.BatchWindow)
	if dl, ok := first.ctx.Deadline(); ok && dl.Before(fireAt) {
		fireAt = dl
	}
	timer := time.NewTimer(time.Until(fireAt))
	defer func() { timer.Stop() }()
collect:
	for len(batch) < s.cfg.BatchMax {
		select {
		case it := <-s.batchCh:
			batch = append(batch, it)
			if dl, ok := it.ctx.Deadline(); ok && dl.Before(fireAt) {
				fireAt = dl
				// Replace rather than Reset: Reset on a possibly-fired
				// timer requires draining its channel, racing the select.
				timer.Stop()
				timer = time.NewTimer(time.Until(fireAt))
			}
		case <-timer.C:
			break collect
		case <-s.shutdownCh:
			break collect
		}
	}
	s.launch(batch)
}

// launch records the batch-formation metrics and starts the executor.
func (s *Server) launch(batch []*batchItem) {
	m := s.metrics
	m.BatchesTotal.Add(1)
	m.BatchSize.Observe(len(batch))
	if len(batch) > 1 {
		m.CoalescedRequests.Add(int64(len(batch)))
	}
	now := time.Now()
	for _, it := range batch {
		m.BatchWait.Observe(now.Sub(it.enqueued))
	}
	s.batchWG.Add(1)
	go s.executeBatch(batch)
}

// drainBatcher runs after shutdown begins: flush whatever is already queued
// (no window — latency no longer buys batchmates), then wait until every
// enqueued request has left Queued and every executor has finished.
func (s *Server) drainBatcher() {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case it := <-s.batchCh:
			batch := append(make([]*batchItem, 0, s.cfg.BatchMax), it)
		fill:
			for len(batch) < s.cfg.BatchMax {
				select {
				case more := <-s.batchCh:
					batch = append(batch, more)
				default:
					break fill
				}
			}
			s.launch(batch)
		case <-tick.C:
			if s.metrics.Queued.Load() == 0 {
				s.batchWG.Wait()
				return
			}
		}
	}
}

// executeBatch runs one batch through the pipeline, retrying unanswered
// members on a fresh replica when one faults — the batched analogue of
// handleBrief's retry loop, with the same per-request retry budget.
func (s *Server) executeBatch(items []*batchItem) {
	defer s.batchWG.Done()
	m := s.metrics
	// One pool snapshot per batch: every checkout, retry and Put in this
	// execution targets a single model generation even if a hot reload swaps
	// the live pointer mid-batch.
	pool := s.pool.Load()
	pending := items
	attempt := 0
	for {
		var live []*batchItem
		for _, it := range pending {
			if it.ctx.Err() == nil {
				live = append(live, it)
			}
			// Expired items get no result; their handlers answer from
			// ctx.Done, matching the serial path's queue-expiry 504.
		}
		if len(live) == 0 {
			return
		}
		rep, err := pool.Get(live[0].ctx)
		if err != nil {
			// The lead item's context died waiting for a replica; drop it
			// and keep trying for the rest.
			pending = live[1:]
			continue
		}
		now := time.Now()
		for _, it := range live {
			if !it.waitSet {
				it.queueWait, it.waitSet = now.Sub(it.enqueued), true
			}
		}
		m.InFlight.Add(int64(len(live)))
		ok := s.runBatchOn(pool, rep, live)
		m.InFlight.Add(-int64(len(live)))
		if ok {
			return
		}
		// The replica faulted mid-batch and is already ejected (runStage);
		// members answered before the fault keep their responses.
		var rem []*batchItem
		for _, it := range live {
			if !it.answered {
				rem = append(rem, it)
			}
		}
		if len(rem) == 0 {
			return
		}
		if attempt >= s.cfg.ReplicaRetries {
			for _, it := range rem {
				it.deliver(pipelineOutcome{faulted: true})
			}
			return
		}
		attempt++
		m.Retries.Add(int64(len(rem)))
		pending = rem
	}
}

// runBatchOn briefs a batch on one replica: parse each member, then one
// batched encode and one batched decode when the replica supports it (per
// member otherwise, e.g. under a fault-injection wrapper or for a batch of
// one, where the per-request path is already exact). Stage latencies are
// observed once per member — each request did wait the whole stage — so
// per-request latency semantics match the serial path; stage sums are
// wall-clock waits, not CPU time. Reports false when the replica faulted
// (it is already ejected and must not be Put back).
func (s *Server) runBatchOn(pool *Pool, rep Replica, items []*batchItem) bool {
	m := s.metrics

	insts := make([]*wb.Instance, len(items))
	perrs := make([]error, len(items))
	t0 := time.Now()
	if !s.runStage(pool, rep, func() {
		for i, it := range items {
			insts[i], perrs[i] = rep.Parse(string(it.body))
		}
	}) {
		return false
	}
	parseDur := time.Since(t0)

	// Settle every member's fate after parse: unparseable pages answer 422,
	// members whose deadline expired during the window answer their ctx
	// error, and the rest go on to the fused forward.
	var liveItems []*batchItem
	var liveInsts []*wb.Instance
	for i, it := range items {
		m.Parse.Observe(parseDur)
		if perrs[i] != nil {
			it.deliver(pipelineOutcome{unbriefable: perrs[i]})
			continue
		}
		if err := it.ctx.Err(); err != nil {
			it.deliver(pipelineOutcome{ctxErr: err})
			continue
		}
		liveItems = append(liveItems, it)
		liveInsts = append(liveInsts, insts[i])
	}
	if len(liveItems) == 0 {
		pool.Put(rep)
		return true
	}

	br, batched := rep.(BatchReplica)
	batched = batched && len(liveItems) > 1
	briefs := make([]*wb.Brief, len(liveItems))
	t1 := time.Now()
	var ok bool
	if batched {
		ok = s.runStage(pool, rep, func() { briefs = br.EncodeBatch(liveInsts) })
	} else {
		ok = s.runStage(pool, rep, func() {
			for i, inst := range liveInsts {
				briefs[i] = rep.Encode(inst)
			}
		})
	}
	if !ok {
		return false
	}
	encodeDur := time.Since(t1)

	// No member drops between encode and decode: EncodeBatch retained
	// per-instance state aligned to liveInsts that DecodeBatch consumes.
	// Deadlines are re-checked per member after decode instead.
	t2 := time.Now()
	if batched {
		ok = s.runStage(pool, rep, func() { br.DecodeBatch(liveInsts, briefs) })
	} else {
		ok = s.runStage(pool, rep, func() {
			for i, inst := range liveInsts {
				rep.Decode(inst, briefs[i])
			}
		})
	}
	if !ok {
		return false
	}
	decodeDur := time.Since(t2)
	s.observeCascade(rep)

	for i, it := range liveItems {
		m.Encode.Observe(encodeDur)
		m.Decode.Observe(decodeDur)
		if err := it.ctx.Err(); err != nil {
			it.deliver(pipelineOutcome{ctxErr: err})
			continue
		}
		it.deliver(pipelineOutcome{brief: briefs[i]})
	}
	pool.Put(rep)
	return true
}
