package serve

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// TestRequestOutcomeFieldsReconcile verifies at run time what the wbcheck
// metricpart pass verifies statically: requestOutcomeFields names exactly
// the atomic.Int64 outcome counters of Metrics, and the Responses snapshot
// carries one field per registered outcome — nothing missing, nothing
// extra. A drift here means /metrics sums would stop reconciling with
// requests_total.
func TestRequestOutcomeFieldsReconcile(t *testing.T) {
	atomicInt64 := reflect.TypeOf(atomic.Int64{})
	metricsType := reflect.TypeOf(Metrics{})

	registered := map[string]bool{}
	for _, name := range requestOutcomeFields {
		if registered[name] {
			t.Errorf("requestOutcomeFields lists %s twice", name)
		}
		registered[name] = true
		field, ok := metricsType.FieldByName(name)
		if !ok {
			t.Errorf("requestOutcomeFields entry %s is not a Metrics field", name)
			continue
		}
		if field.Type != atomicInt64 {
			t.Errorf("Metrics.%s is %v, want atomic.Int64", name, field.Type)
		}
	}

	responses, ok := reflect.TypeOf(metricsSnapshot{}).FieldByName("Responses")
	if !ok {
		t.Fatal("metricsSnapshot has no Responses field")
	}
	seen := map[string]bool{}
	for i := 0; i < responses.Type.NumField(); i++ {
		name := responses.Type.Field(i).Name
		seen[name] = true
		if !registered[name] {
			t.Errorf("Responses snapshot field %s is not in requestOutcomeFields", name)
		}
	}
	for name := range registered {
		if !seen[name] {
			t.Errorf("registered outcome %s is missing from the Responses snapshot", name)
		}
	}
}
