package serve

import (
	"context"
	"net/http"
	"strings"
	"time"

	"webbrief/internal/briefcache"
	"webbrief/internal/htmldom"
)

// This file interposes the content-addressed briefing cache between
// admission and the batch scheduler / replica pool. A cache hit is served
// straight from memory — no replica checkout, no batching, no admission
// queue — and the miss path falls through byte-identical to the uncached
// server. Misses on the same cold content key coalesce through
// briefcache.Flight, so a thundering herd computes one briefing.
//
// Keying is two-level (see briefcache): the raw key is the SHA-256 of the
// request body as posted, the content key the SHA-256 of the page's
// rendered visible text. Repeat posts of identical bytes hit the raw alias
// without parsing; posts of different bytes that render to the same
// visible text (markup churn, attribute noise) parse once, hit the content
// entry, and leave an alias for next time.
//
// Cache counters follow the same exact-partition discipline as
// requests_total: every request that consults the cache is counted in
// cache_lookups_total and in exactly one of cache_hits_total,
// cache_misses_total (flight winners) or cache_coalesced_total (flight
// losers), assigned at first decision — a loser that retries after an
// abandoned flight stays a coalesced request no matter how it is
// eventually served.

// cacheFill carries a miss-path request's fill obligation: the flight it
// won plus the keys and TTL its eventual response should be stored under.
// Exactly one of Complete (via respondOutcome) or Abandon settles the
// flight; abandon is a deferred backstop on every handler exit.
type cacheFill struct {
	flight  *briefcache.Flight
	content briefcache.Key
	raw     briefcache.Key
	ttl     time.Duration
}

// abandon settles the flight as abandoned if nothing else settled it
// first — waiters retry rather than hang when the winner bails out on a
// panic, shed, or client disconnect.
func (f *cacheFill) abandon() {
	if f != nil {
		f.flight.Abandon()
	}
}

// flightResult is the value a winner publishes: the exact response bytes
// on success, or the terminal failure outcome (422, replica failure) the
// losers should replay.
type flightResult struct {
	body []byte
	o    pipelineOutcome
}

// cacheDomain extracts the page's source domain from the optional ?src=
// query parameter — the admission/TTL policy key. The parameter accepts a
// bare domain or a URL (briefcache.SrcDomain does the stripping); empty
// means unattributed, which policies admit. The RawQuery gate keeps the
// common no-query request allocation-free.
func cacheDomain(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return briefcache.SrcDomain(r.URL.Query().Get("src"))
}

// cacheServe runs the cache stage for one admitted POST. It returns
// (nil, false) when the request bypasses the cache (denied domain, pages
// with no visible text), (nil, true) when the response was fully served
// from cache or a coalesced flight, and (fill, false) for a miss this
// request must compute: the caller proceeds down the normal pipeline and
// hands fill to respondOutcome, with fill.abandon deferred as backstop.
func (s *Server) cacheServe(w http.ResponseWriter, lg *accessEntry, ctx context.Context, r *http.Request, body []byte) (*cacheFill, bool) {
	c := s.cache
	m := s.metrics
	domain := cacheDomain(r)
	if !c.Admit(domain) {
		return nil, false
	}
	start := time.Now()

	// Level 1: raw bytes. Allocation-free — no parse, one SHA-256.
	rawKey := briefcache.KeyOf(body)
	if out, ok := c.LookupRaw(rawKey); ok {
		m.CacheLookups.Add(1)
		m.CacheHits.Add(1)
		s.writeCached(w, lg, out)
		m.CacheHitLatency.observe(cacheHitBucketsNS, time.Since(start))
		return nil, true
	}

	// Level 2: rendered visible text. Pages that render to nothing bypass
	// the cache — the pipeline's 422 stays authoritative for those.
	visible := htmldom.VisibleText(htmldom.Parse(string(body)))
	if strings.TrimSpace(visible) == "" {
		return nil, false
	}
	contentKey := briefcache.KeyOf([]byte(visible))
	if out, ok := c.Lookup(contentKey); ok {
		m.CacheLookups.Add(1)
		m.CacheHits.Add(1)
		c.Alias(rawKey, contentKey) // next identical post skips the parse
		s.writeCached(w, lg, out)
		m.CacheHitLatency.observe(cacheHitBucketsNS, time.Since(start))
		return nil, true
	}

	// Miss: win the flight and compute, or coalesce onto the winner. The
	// partition counter is assigned at the first decision and never again,
	// so retries after an abandoned flight don't double-count.
	m.CacheLookups.Add(1)
	counted := false
	for {
		f, winner := c.BeginFlight(contentKey)
		if winner {
			if !counted {
				m.CacheMisses.Add(1)
			}
			return &cacheFill{flight: f, content: contentKey, raw: rawKey, ttl: c.TTLFor(domain)}, false
		}
		if !counted {
			m.CacheCoalesced.Add(1)
			counted = true
		}
		v, abandoned, err := f.Wait(ctx)
		if err != nil {
			s.failCtx(w, lg, err)
			return nil, true
		}
		if abandoned {
			// The winner bailed without a result. Re-check the cache (it
			// may have filled) and race for the next flight.
			if out, ok := c.Lookup(contentKey); ok {
				s.writeCached(w, lg, out)
				return nil, true
			}
			continue
		}
		res := v.(flightResult)
		if res.body != nil {
			s.writeCached(w, lg, res.body)
			return nil, true
		}
		// Terminal failure: replay the winner's outcome.
		s.respondOutcome(w, lg, res.o, nil)
		return nil, true
	}
}

// writeCached serves cached response bytes: the same headers, status and
// body the miss path wrote when it filled the entry.
func (s *Server) writeCached(w http.ResponseWriter, lg *accessEntry, out []byte) {
	m := s.metrics
	m.OK.Add(1)
	lg.Status = http.StatusOK
	lg.BytesOut = len(out)
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}
