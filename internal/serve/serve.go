// Package serve is the production HTTP serving subsystem for webpage
// briefings — the deployment form §I motivates, built to the ROADMAP's
// heavy-traffic north star. It replaces the single-mutex wb.Briefer path
// with:
//
//   - a replica pool: N independent eval-mode model copies (see
//     wb.CloneForServing) checked out per request, so briefings scale
//     across GOMAXPROCS instead of serialising on one lock;
//   - admission control: a bounded wait queue that sheds load with
//     429 + Retry-After instead of collapsing, per-request deadlines via
//     context, and 413 for oversized bodies;
//   - observability: a stdlib-only /metrics endpoint (atomic counters and
//     fixed-bucket latency histograms per pipeline stage) and structured
//     JSON access logs;
//   - lifecycle: /healthz reporting pool readiness, and draining shutdown
//     that finishes in-flight briefings.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webbrief/internal/briefcache"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// DefaultMaxBodyBytes bounds a briefing request body when Config leaves
// MaxBodyBytes zero (same limit as the serial wb.Briefer path).
const DefaultMaxBodyBytes = 4 << 20

// Config sizes a Server. The zero value is usable: GOMAXPROCS replicas, a
// 64-deep admission queue, no deadline, the default body limit, beam 8,
// one replica retry, probing every 25ms with 2 successes to readmit.
type Config struct {
	Replicas     int           // model replicas (0 = GOMAXPROCS)
	QueueDepth   int           // requests allowed to wait for a replica before 429 (<0 = none wait)
	Timeout      time.Duration // per-request deadline, queue wait included (0 = none)
	MaxBodyBytes int64         // request body limit (0 = DefaultMaxBodyBytes)
	BeamWidth    int           // topic beam width (0 = 8)
	MaxTokens    int           // document truncation, as in wb.NewBriefer (0 = none)
	RetryAfter   time.Duration // advisory Retry-After on 429 (0 = 1s)
	AccessLog    io.Writer     // JSON-line access log (nil = disabled)

	// ReplicaRetries is how many times a request whose replica panicked or
	// stalled is re-run on another replica before 500 (0 = 1, <0 = none).
	ReplicaRetries int
	// StallTimeout is the per-stage watchdog: a stage exceeding it marks
	// the replica wedged and ejects it (0 = disabled). Set it well above
	// the slowest healthy stage.
	StallTimeout time.Duration
	// ProbeInterval is the re-admission probe cadence for ejected
	// replicas (0 = 25ms); ProbeSuccesses consecutive clean probe
	// briefings close the breaker (0 = 2); ProbeHTML is the probe page
	// ("" = DefaultProbeHTML).
	ProbeInterval  time.Duration
	ProbeSuccesses int
	ProbeHTML      string

	// BatchWindow enables cross-request micro-batching: an admitted request
	// waits up to this long for batchmates before the fused forward runs,
	// trading that bounded latency for B-row batched kernels. 0 disables
	// batching — the exact per-request path. The window is deadline-aware: a
	// batch fires early when any member's context deadline would otherwise
	// expire waiting.
	BatchWindow time.Duration
	// BatchMax caps how many requests one micro-batch may coalesce (0 = 8).
	BatchMax int

	// Cascade enables the float32 student fast path: every briefing first
	// runs on a float32 conversion of the model (wb.ConvertJointWB; GloVe
	// encoders only), and only decodes whose confidence score falls below
	// ConfidenceThreshold re-run on the full float64 teacher under the same
	// replica checkout. /metrics gains per-tier counters and latency
	// histograms.
	Cascade bool
	// ConfidenceThreshold is the cascade escalation cutoff in [0,1] on the
	// student's decode confidence score (0 = 0.5 when Cascade is set). The
	// score is never negative, so a negative threshold never escalates;
	// values above 1 escalate every briefing.
	ConfidenceThreshold float64

	// CacheCapacity enables the content-addressed briefing cache: hits are
	// served without a replica checkout and concurrent misses on one cold
	// key coalesce into a single computation (see internal/briefcache).
	// 0 disables caching — every request runs the pipeline.
	CacheCapacity int
	// CacheShards is the cache shard count (0 = briefcache's default).
	CacheShards int
	// CacheTTL is the default entry lifetime when no policy class matches
	// (0 = entries never expire).
	CacheTTL time.Duration
	// CachePolicy is the per-domain admission/TTL policy, keyed by the
	// optional ?src= query parameter (nil = admit everything).
	CachePolicy *briefcache.Policy
	// Cache overrides the constructed cache (tests, shared caches). When
	// set, the CacheCapacity/CacheShards/CacheTTL/CachePolicy knobs are
	// ignored.
	Cache *briefcache.Cache
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = 8
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.ReplicaRetries == 0 {
		c.ReplicaRetries = 1
	}
	if c.ReplicaRetries < 0 {
		c.ReplicaRetries = 0
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 25 * time.Millisecond
	}
	if c.ProbeSuccesses == 0 {
		c.ProbeSuccesses = 2
	}
	if c.ProbeHTML == "" {
		c.ProbeHTML = DefaultProbeHTML
	}
	if c.BatchMax == 0 {
		c.BatchMax = 8
	}
	if c.BatchMax < 1 {
		c.BatchMax = 1
	}
	if c.Cascade && c.ConfidenceThreshold == 0 {
		c.ConfidenceThreshold = 0.5
	}
	return c
}

// Server is the pool-backed briefing server. Mount it directly (it is an
// http.Handler routing /brief, /healthz and /metrics) or pick individual
// handlers off Mux.
type Server struct {
	cfg     Config
	metrics *Metrics
	mux     *http.ServeMux

	// pool is the live replica pool. Hot reload (reload.go) swaps it
	// atomically; request paths snapshot the pointer once (at checkout /
	// per batch) so one briefing never straddles two generations. Always
	// non-nil after construction.
	pool atomic.Pointer[Pool]

	// Hot-reload state (reload.go): generation starts at 1 for the boot
	// model and bumps per completed reload; reloadSource is the registered
	// bundle loader behind /admin/reload and ReloadFromSource.
	generation   atomic.Int64
	reloads      atomic.Int64
	reloadMu     sync.Mutex
	reloadSource ReloadSource

	// cache, when non-nil, serves repeat briefings without a replica
	// checkout and coalesces concurrent cold-key misses (see cache.go).
	cache *briefcache.Cache

	// queueSlots bounds how many requests may wait for a replica; a
	// request that cannot take a slot is shed with 429.
	queueSlots chan struct{}

	ready atomic.Bool

	// shutdownCh is closed by BeginShutdown; re-admission probers exit on
	// it so ejected replicas stay ejected through a drain.
	shutdownCh   chan struct{}
	shutdownOnce sync.Once

	// Micro-batch scheduler state, nil/unused unless cfg.BatchWindow > 0:
	// admitted requests take a batchSlots token (held until their response,
	// bounding outstanding requests at QueueDepth + pool size — the serial
	// path's queued + in-flight ceiling) and enqueue on batchCh; the
	// dispatcher goroutine groups them into batches and batchWG tracks the
	// per-batch executors. batcherDone closes when the dispatcher has
	// drained and exited.
	batchCh     chan *batchItem
	batchSlots  chan struct{}
	batchWG     sync.WaitGroup
	batcherDone chan struct{}

	logMu sync.Mutex // serialises access-log lines
}

// New builds a Server around a trained GloVe-encoder Joint-WB bundle,
// constructing cfg.Replicas pool replicas via wb.CloneForServing (cascade
// replicas via NewCascadePool when cfg.Cascade is set).
func New(m *wb.JointWB, v *textproc.Vocab, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	pool, err := buildPool(m, v, cfg, 0)
	if err != nil {
		return nil, err
	}
	return NewFromPool(pool, cfg), nil
}

// NewFromPool builds a Server over pre-built replicas (custom models,
// tests). cfg.Replicas is ignored; the pool's size rules.
func NewFromPool(pool *Pool, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		metrics:    &Metrics{},
		queueSlots: make(chan struct{}, cfg.QueueDepth),
		shutdownCh: make(chan struct{}),
		mux:        http.NewServeMux(),
	}
	s.pool.Store(pool)
	s.generation.Store(1)
	switch {
	case cfg.Cache != nil:
		s.cache = cfg.Cache
	case cfg.CacheCapacity > 0:
		s.cache = briefcache.New(briefcache.Config{
			Capacity:   cfg.CacheCapacity,
			Shards:     cfg.CacheShards,
			DefaultTTL: cfg.CacheTTL,
			Policy:     cfg.CachePolicy,
		})
	}
	s.ready.Store(true)
	s.mux.HandleFunc("/brief", s.handleBrief)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/admin/reload", s.handleReload)
	if cfg.BatchWindow > 0 {
		// Channel capacity matches the slot count, so a request holding a
		// slot can always enqueue without blocking.
		s.batchCh = make(chan *batchItem, cfg.QueueDepth+pool.Size())
		s.batchSlots = make(chan struct{}, cfg.QueueDepth+pool.Size())
		s.batcherDone = make(chan struct{})
		go s.dispatchBatches()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Handler returns the route mux (alias of the Server itself).
func (s *Server) Handler() http.Handler { return s }

// Metrics exposes the live counters, e.g. for tests or embedders.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Pool exposes the live replica pool (the current generation's).
func (s *Server) Pool() *Pool { return s.pool.Load() }

// Cache exposes the briefing cache (nil when caching is disabled).
func (s *Server) Cache() *briefcache.Cache { return s.cache }

// BeginShutdown flips the server into draining mode: /healthz reports 503
// so load balancers stop routing here, and new /brief requests are refused
// with 503, while requests already admitted run to completion.
// Re-admission probers stop. Pair with http.Server.Shutdown (which waits
// for in-flight handlers) or Drain.
func (s *Server) BeginShutdown() {
	s.ready.Store(false)
	s.shutdownOnce.Do(func() { close(s.shutdownCh) })
}

// Drain begins shutdown and blocks until no request holds a replica or ctx
// expires. It returns the number of requests still in flight (0 on a clean
// drain). http.Server.Shutdown already waits for in-flight handlers, so
// callers using it only need BeginShutdown; Drain serves embedders driving
// the handler directly.
func (s *Server) Drain(ctx context.Context) int64 {
	s.BeginShutdown()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		n := s.metrics.InFlight.Load() + s.metrics.Queued.Load()
		if n == 0 && s.batcherIdle() {
			return 0
		}
		select {
		case <-ctx.Done():
			return n
		case <-tick.C:
		}
	}
}

// batcherIdle reports whether the micro-batch dispatcher has fully drained
// and exited (trivially true when batching is off).
func (s *Server) batcherIdle() bool {
	if s.batcherDone == nil {
		return true
	}
	select {
	case <-s.batcherDone:
		return true
	default:
		return false
	}
}

// Warm pre-grows every replica workspace to steady state before traffic
// arrives — and, when batching is on, each batched workspace at BatchMax
// width — so the first real request already runs the allocation-free path.
// An empty html warms on the default synthetic page.
func (s *Server) Warm(html string) error {
	if html == "" {
		html = WarmupHTML(0)
	}
	pool := s.pool.Load()
	if err := pool.Warm(html); err != nil {
		return err
	}
	if s.batchCh != nil {
		return pool.WarmBatch(html, s.cfg.BatchMax)
	}
	return nil
}

// handleBrief is the serving hot path: admission, replica checkout, the
// three pipeline stages with per-stage timing and deadline checks, and the
// JSON response.
func (s *Server) handleBrief(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	m := s.metrics
	m.Requests.Add(1)
	lg := accessEntry{Method: r.Method, Path: r.URL.Path, Remote: r.RemoteAddr}
	defer func() {
		m.Total.Observe(time.Since(start))
		lg.TotalMS = roundMS(time.Since(start))
		s.logAccess(&lg)
	}()

	if !s.ready.Load() {
		m.Draining.Add(1)
		lg.Status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	if r.Method != http.MethodPost {
		m.BadMethod.Add(1)
		lg.Status = http.StatusMethodNotAllowed
		http.Error(w, "POST the page HTML as the request body", http.StatusMethodNotAllowed)
		return
	}

	// Body, with a hard 413 instead of silent truncation.
	if r.ContentLength > s.cfg.MaxBodyBytes {
		m.TooLarge.Add(1)
		lg.Status = http.StatusRequestEntityTooLarge
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		m.BadRequest.Add(1)
		lg.Status = http.StatusBadRequest
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	lg.BytesIn = len(body)
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		m.TooLarge.Add(1)
		lg.Status = http.StatusRequestEntityTooLarge
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			http.StatusRequestEntityTooLarge)
		return
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	// Cache stage: hits (and coalesced waiters) are fully served here —
	// no admission, no batching, no replica. A winner gets a fill
	// obligation that respondOutcome settles; the deferred abandon is the
	// backstop for every other exit (shed, timeout, panic), turning the
	// losers loose to retry instead of hanging.
	var fill *cacheFill
	if s.cache != nil {
		var handled bool
		fill, handled = s.cacheServe(w, &lg, ctx, r, body)
		if handled {
			return
		}
		defer fill.abandon()
	}

	if s.batchCh != nil {
		s.briefBatched(w, &lg, ctx, body, fill)
		return
	}

	// Admission: take a replica if one is idle; otherwise wait in a
	// bounded queue or shed with 429. The pool pointer is snapshotted once:
	// checkout, retries and Put all target one generation, so a hot reload
	// mid-request can never hand this briefing a mixed pool.
	queueStart := time.Now()
	pool := s.pool.Load()
	rep, ok := pool.TryGet()
	if !ok {
		select {
		case s.queueSlots <- struct{}{}:
		default:
			m.Overload.Add(1)
			lg.Status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			http.Error(w, "briefing queue is full, retry later", http.StatusTooManyRequests)
			return
		}
		m.Queued.Add(1)
		rep, err = pool.Get(ctx)
		m.Queued.Add(-1)
		<-s.queueSlots
		if err != nil {
			s.failCtx(w, &lg, err)
			return
		}
	}
	wait := time.Since(queueStart)
	m.QueueWait.Observe(wait)
	lg.QueueMS = roundMS(wait)

	m.InFlight.Add(1)
	defer m.InFlight.Add(-1)

	// Run the three pipeline stages, retrying on a fresh replica when the
	// current one panics or stalls — a faulted replica is ejected by
	// runStage and never Put back, so it degrades capacity without
	// poisoning this or any later request.
	var o pipelineOutcome
	for attempt := 0; ; attempt++ {
		o = s.briefOn(ctx.Err, pool, rep, body)
		if !o.faulted {
			pool.Put(rep)
			break
		}
		if attempt >= s.cfg.ReplicaRetries {
			break
		}
		m.Retries.Add(1)
		rep, err = pool.Get(ctx)
		if err != nil {
			s.failCtx(w, &lg, err)
			return
		}
	}
	s.respondOutcome(w, &lg, o, fill)
}

// respondOutcome maps a pipeline outcome onto its HTTP response and outcome
// counter — the shared tail of the per-request and batched paths, keeping
// the requests_total partition identical in both modes. faulted here means
// the retry budget is already spent. fill, when non-nil, is this request's
// cache-fill obligation: terminal outcomes (success bytes, 422, 500) are
// published to coalesced waiters, and successes are inserted into the
// cache; context failures abandon via the caller's deferred backstop so
// waiters retry rather than inherit this client's deadline.
func (s *Server) respondOutcome(w http.ResponseWriter, lg *accessEntry, o pipelineOutcome, fill *cacheFill) {
	m := s.metrics
	if o.faulted {
		if fill != nil {
			fill.flight.Complete(flightResult{o: o})
		}
		m.ReplicaFailure.Add(1)
		lg.Status = http.StatusInternalServerError
		http.Error(w, "briefing replica failed and the retry budget is spent",
			http.StatusInternalServerError)
		return
	}
	if o.unbriefable != nil {
		if fill != nil {
			fill.flight.Complete(flightResult{o: o})
		}
		m.Unbriefable.Add(1)
		lg.Status = http.StatusUnprocessableEntity
		http.Error(w, o.unbriefable.Error(), http.StatusUnprocessableEntity)
		return
	}
	if o.ctxErr != nil {
		s.failCtx(w, lg, o.ctxErr)
		return
	}

	eb := getEncodeBuf()
	defer putEncodeBuf(eb)
	if err := eb.enc.Encode(o.brief); err != nil {
		m.BadRequest.Add(1)
		lg.Status = http.StatusInternalServerError
		http.Error(w, "encode briefing: "+err.Error(), http.StatusInternalServerError)
		return
	}
	out := eb.buf.Bytes() // Encode appends the trailing '\n'
	if fill != nil {
		// Insert copies out of the pooled buffer; waiters and future hits
		// share that stable copy.
		stable := s.cache.Insert(fill.content, fill.raw, out, fill.ttl)
		fill.flight.Complete(flightResult{body: stable})
	}
	m.OK.Add(1)
	lg.Status = http.StatusOK
	lg.BytesOut = len(out)
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// failCtx maps a context error to its HTTP response: 504 for an expired
// deadline, a logged-but-unsent cancel when the client is already gone.
func (s *Server) failCtx(w http.ResponseWriter, lg *accessEntry, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.metrics.Timeout.Add(1)
		lg.Status = http.StatusGatewayTimeout
		http.Error(w, "briefing deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	s.metrics.Canceled.Add(1)
	lg.Status = 499 // nginx convention: client closed request
}

// handleHealthz reports pool readiness: 200 with pool stats while serving
// (status "degraded" when ejected replicas have shrunk capacity), 503 once
// every replica is ejected or draining begins.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status   string `json:"status"`
		Replicas int    `json:"replicas"`
		Healthy  int    `json:"healthy"`
		Idle     int    `json:"idle"`
		Queued   int64  `json:"queued"`
		InFlight int64  `json:"in_flight"`
	}
	pool := s.pool.Load()
	h := health{
		Status:   "ok",
		Replicas: pool.Size(),
		Healthy:  pool.Healthy(),
		Idle:     pool.Idle(),
		Queued:   s.metrics.Queued.Load(),
		InFlight: s.metrics.InFlight.Load(),
	}
	code := http.StatusOK
	switch {
	case h.Healthy < h.Replicas:
		h.Status = "degraded"
	}
	if h.Healthy == 0 {
		h.Status = "unhealthy"
		code = http.StatusServiceUnavailable
	}
	if !s.ready.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h)
}

// handleMetrics serves the counter snapshot as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.metrics.snapshot(s.pool.Load(), s.batchCh != nil, s.cache, s.cfg.Cascade, s.cfg.ConfidenceThreshold,
		s.generation.Load(), s.reloads.Load()))
}

// accessEntry is one structured access-log line. Struct field order is the
// JSON field order, stable across lines.
type accessEntry struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Remote   string  `json:"remote,omitempty"`
	Status   int     `json:"status"`
	BytesIn  int     `json:"bytes_in"`
	BytesOut int     `json:"bytes_out"`
	QueueMS  float64 `json:"queue_ms"`
	TotalMS  float64 `json:"total_ms"`
}

// logAccess emits one JSON line, if access logging is configured.
func (s *Server) logAccess(lg *accessEntry) {
	if s.cfg.AccessLog == nil {
		return
	}
	lg.Time = time.Now().UTC().Format(time.RFC3339Nano)
	eb := getEncodeBuf()
	defer putEncodeBuf(eb)
	if err := eb.enc.Encode(lg); err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(eb.buf.Bytes())
	s.logMu.Unlock()
}

// roundMS renders a duration as fractional milliseconds with microsecond
// resolution, keeping log lines compact.
func roundMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
