package serve

import (
	"time"

	"webbrief/internal/wb"
)

// DefaultProbeHTML is the page re-admission probes brief on an ejected
// replica: small, but with enough visible text to run every stage of a
// real model replica.
const DefaultProbeHTML = `<html><head><title>probe</title></head><body>
<h1>Re-admission probe</h1>
<p>This synthetic page checks an ejected replica end to end.</p>
</body></html>`

// pipelineOutcome summarises one briefing attempt on one replica. Exactly
// one field is meaningful: faulted (replica panicked or stalled, already
// ejected), unbriefable (Parse rejected the page), ctxErr (deadline or
// cancel between stages), or brief (success).
type pipelineOutcome struct {
	brief       *wb.Brief
	unbriefable error
	ctxErr      error
	faulted     bool
}

// recoverPanic runs fn, converting a panic into a returned value.
func recoverPanic(fn func()) (panicked any) {
	defer func() { panicked = recover() }()
	fn()
	return nil
}

// runStage runs one pipeline stage on rep, absorbing the two replica
// pathologies the chaos suite injects:
//
//   - a panic is recovered, counted, and ejects the replica;
//   - with Config.StallTimeout set, a stage that exceeds it is declared
//     wedged: the replica is ejected immediately (capacity degrades, the
//     request moves on), and when the wedged stage eventually resolves the
//     replica enters re-admission probing instead of rotation.
//
// It reports whether the stage completed cleanly; on false the replica
// has been ejected and must not be Put back. pool is the pool rep was
// checked out of — the caller's request-scoped snapshot, so ejection and
// re-admission target the replica's own generation even across a hot
// reload.
func (s *Server) runStage(pool *Pool, rep Replica, fn func()) bool {
	if s.cfg.StallTimeout <= 0 {
		if p := recoverPanic(fn); p != nil {
			s.metrics.Panics.Add(1)
			s.ejectAndProbe(pool, rep)
			return false
		}
		return true
	}
	done := make(chan any, 1)
	go func() { done <- recoverPanic(fn) }()
	timer := time.NewTimer(s.cfg.StallTimeout)
	defer timer.Stop()
	select {
	case p := <-done:
		if p != nil {
			s.metrics.Panics.Add(1)
			s.ejectAndProbe(pool, rep)
			return false
		}
		return true
	case <-timer.C:
		s.metrics.Stalls.Add(1)
		pool.Eject(rep)
		// The wedged goroutine still owns the replica's scratch state;
		// only once it resolves may probing (and re-admission) begin. If
		// it never resolves, the replica is lost capacity — degraded, but
		// never poisoning another request.
		go func() {
			if p := <-done; p != nil {
				s.metrics.Panics.Add(1)
			}
			s.probeLoop(pool, rep)
		}()
		return false
	}
}

// ejectAndProbe takes rep out of rotation and starts its re-admission
// prober.
func (s *Server) ejectAndProbe(pool *Pool, rep Replica) {
	pool.Eject(rep)
	go s.probeLoop(pool, rep)
}

// probeLoop periodically briefs the probe page on an ejected replica and
// readmits it after ProbeSuccesses consecutive clean runs — into the pool
// it was ejected from, which after a hot reload may be a retired
// generation (the readmission is then harmless and the loop exits). It
// exits on shutdown; an ejected replica then simply stays out of rotation.
func (s *Server) probeLoop(pool *Pool, rep Replica) {
	pool.BeginProbe(rep)
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	consecutive := 0
	for {
		select {
		case <-s.shutdownCh:
			return
		case <-ticker.C:
		}
		if s.probeOnce(rep) {
			consecutive++
		} else {
			consecutive = 0
		}
		if consecutive >= s.cfg.ProbeSuccesses {
			pool.Readmit(rep)
			return
		}
	}
}

// probeOnce runs the full three-stage pipeline on the probe page,
// reporting false on a parse error or panic.
func (s *Server) probeOnce(rep Replica) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	inst, err := rep.Parse(s.cfg.ProbeHTML)
	if err != nil {
		return false
	}
	rep.Decode(inst, rep.Encode(inst))
	return true
}

// briefOn runs the three pipeline stages on rep with per-stage timing and
// deadline checks between stages. Stage latencies are observed for stages
// that complete; a faulted stage observes nothing (its duration is the
// fault's, not the pipeline's).
func (s *Server) briefOn(ctxErr func() error, pool *Pool, rep Replica, body []byte) pipelineOutcome {
	m := s.metrics

	var inst *wb.Instance
	var perr error
	t0 := time.Now()
	if !s.runStage(pool, rep, func() { inst, perr = rep.Parse(string(body)) }) {
		return pipelineOutcome{faulted: true}
	}
	m.Parse.Observe(time.Since(t0))
	if perr != nil {
		return pipelineOutcome{unbriefable: perr}
	}
	if err := ctxErr(); err != nil {
		return pipelineOutcome{ctxErr: err}
	}

	var brief *wb.Brief
	t1 := time.Now()
	if !s.runStage(pool, rep, func() { brief = rep.Encode(inst) }) {
		return pipelineOutcome{faulted: true}
	}
	m.Encode.Observe(time.Since(t1))
	if err := ctxErr(); err != nil {
		return pipelineOutcome{ctxErr: err}
	}

	t2 := time.Now()
	if !s.runStage(pool, rep, func() { rep.Decode(inst, brief) }) {
		return pipelineOutcome{faulted: true}
	}
	m.Decode.Observe(time.Since(t2))
	s.observeCascade(rep)
	return pipelineOutcome{brief: brief}
}

// observeCascade folds the replica's per-briefing cascade decisions into
// the tier counters and histograms. Replicas without the cascade capability
// (teacher-only pools, fault wrappers) report nothing. Called only after a
// clean decode stage: a faulted briefing never counts toward either tier.
func (s *Server) observeCascade(rep Replica) {
	cr, ok := rep.(cascadeReporter)
	if !ok {
		return
	}
	m := s.metrics
	for _, d := range cr.CascadeReport() {
		m.CascadeRequests.Add(1)
		m.StudentLatency.Observe(d.student)
		if d.escalated {
			m.CascadeTeacher.Add(1)
			m.TeacherLatency.Observe(d.teacher)
		} else {
			m.CascadeStudent.Add(1)
		}
	}
}
