package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"webbrief/internal/corpus"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// trainedModel trains a tiny Joint-WB (2 domains, 2 quick epochs) and
// returns it with its vocabulary and the pages it can brief.
func trainedModel(t testing.TB) (*wb.JointWB, *textproc.Vocab, []*corpus.Page) {
	t.Helper()
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 4, SeenDomains: 2, UnseenDomains: 0})
	if err != nil {
		t.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	insts := wb.NewInstances(ds.Pages, v, 0)
	enc := wb.NewGloVeEncoder(tensor.Randn(v.Size(), 16, 0.1, rand.New(rand.NewSource(51))))
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 51
	m := wb.NewJointWB("serve-test", enc, v.Size(), cfg)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 2
	wb.TrainModel(m, insts, tc)
	return m, v, ds.Pages
}

// postBrief POSTs html to the server and returns status, body. It returns
// errors rather than failing the test so it is safe from spawned client
// goroutines (t.Fatal must only run on the test goroutine).
func postBrief(url, html string) (int, []byte, error) {
	resp, err := http.Post(url+"/brief", "text/html", strings.NewReader(html))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// TestServeEndToEnd runs concurrent clients against a pool-backed server
// over a real trained model and asserts every briefing is byte-identical
// on the wire to the serial wb.Briefer path — same JSON bytes from pooled
// encode buffers and warm per-replica scratch workspaces as from a cold
// heap path. Run under -race, this is the proof that replicas do not
// serialise on (or corrupt) shared state.
func TestServeEndToEnd(t *testing.T) {
	m, v, pages := trainedModel(t)
	const beam = 2

	// Serial reference briefings, via the single-mutex path. The handler
	// responds with Encoder.Encode framing, i.e. the JSON plus a trailing
	// newline, so the expected wire bytes carry one too.
	serial := wb.NewBriefer(m, v, beam, 0)
	want := make([][]byte, len(pages))
	for i, p := range pages {
		b, err := serial.BriefHTML(p.HTML)
		if err != nil {
			t.Fatalf("serial brief %d: %v", i, err)
		}
		j, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append(j, '\n')
	}

	// Cold-vs-warm: a single-replica server answers the same page three
	// times on one scratch workspace. The first response is computed on a
	// cold scratch, the rest on warm reused buffers; all must be identical
	// bytes, or scratch state is leaking between requests.
	func() {
		one, err := New(m, v, Config{Replicas: 1, BeamWidth: beam})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(one.Handler())
		defer ts.Close()
		for i, p := range pages {
			for rep := 0; rep < 3; rep++ {
				status, body, err := postBrief(ts.URL, p.HTML)
				if err != nil || status != http.StatusOK {
					t.Fatalf("page %d repeat %d: status %d err %v", i, rep, status, err)
				}
				if !bytes.Equal(body, want[i]) {
					t.Fatalf("page %d repeat %d: warm replica response diverges from serial path:\n got %s\nwant %s",
						i, rep, body, want[i])
				}
			}
		}
	}()

	var accessLog bytes.Buffer
	srv, err := New(m, v, Config{Replicas: 3, QueueDepth: 64, BeamWidth: beam, AccessLog: &accessLog})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Boot-time warmup (what wbserve -warm does) must not perturb outputs:
	// every post-warmup briefing below still has to match the serial bytes.
	if err := srv.Pool().Warm(pages[0].HTML); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	// 4 concurrent clients × all pages, interleaved across replicas.
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan string, clients*len(pages))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range pages {
				status, body, err := postBrief(ts.URL, p.HTML)
				if err != nil {
					errs <- err.Error()
					continue
				}
				if status != http.StatusOK {
					errs <- "bad status"
					continue
				}
				if !bytes.Equal(body, want[i]) {
					errs <- "pooled briefing diverges byte-wise from serial path"
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Metrics reconcile with what the clients observed.
	ms := srv.Metrics()
	if got, want := ms.OK.Load(), int64(clients*len(pages)); got != want {
		t.Fatalf("metrics ok=%d, want %d", got, want)
	}
	if got := ms.Requests.Load(); got != ms.OK.Load() {
		t.Fatalf("requests_total=%d != ok=%d with no failures", got, ms.OK.Load())
	}
	for name, h := range map[string]*histogram{
		"parse": &ms.Parse, "encode": &ms.Encode, "decode": &ms.Decode, "total": &ms.Total,
	} {
		if h.count.Load() != ms.OK.Load() {
			t.Fatalf("%s histogram count=%d, want %d", name, h.count.Load(), ms.OK.Load())
		}
	}

	// Every access-log line is valid JSON with the expected fields.
	lines := bytes.Split(bytes.TrimSpace(accessLog.Bytes()), []byte("\n"))
	if len(lines) != clients*len(pages) {
		t.Fatalf("access log has %d lines, want %d", len(lines), clients*len(pages))
	}
	var entry accessEntry
	if err := json.Unmarshal(lines[0], &entry); err != nil {
		t.Fatalf("access log line not JSON: %v", err)
	}
	if entry.Status != http.StatusOK || entry.Path != "/brief" {
		t.Fatalf("access entry %+v", entry)
	}
}

// TestServeHTTPErrors covers the non-200 paths of the full HTTP surface:
// 405, 413 (no silent truncation), 422, and the /metrics accounting of
// each.
func TestServeHTTPErrors(t *testing.T) {
	m, v, _ := trainedModel(t)
	srv, err := New(m, v, Config{Replicas: 1, BeamWidth: 2, MaxBodyBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 405: wrong method.
	resp, err := http.Get(ts.URL + "/brief")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}

	// 413: body over the configured limit must be rejected, not briefed
	// from a truncated prefix.
	status, _, err := postBrief(ts.URL, "<p>hello</p>"+strings.Repeat("x", 2<<10))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status %d, want 413", status)
	}

	// 422: no visible text.
	status, _, err = postBrief(ts.URL, "<script>only()</script>")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unbriefable status %d, want 422", status)
	}

	ms := srv.Metrics()
	if ms.BadMethod.Load() != 1 || ms.TooLarge.Load() != 1 || ms.Unbriefable.Load() != 1 {
		t.Fatalf("error counters: method=%d large=%d unbriefable=%d",
			ms.BadMethod.Load(), ms.TooLarge.Load(), ms.Unbriefable.Load())
	}
	if ms.Requests.Load() != 3 {
		t.Fatalf("requests_total=%d, want 3", ms.Requests.Load())
	}

	// /metrics serves the same numbers as JSON.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.RequestsTotal != 3 || snap.Responses.TooLarge != 1 {
		t.Fatalf("metrics snapshot %+v", snap)
	}
	if snap.Pool.Replicas != 1 || snap.Pool.Idle != 1 {
		t.Fatalf("pool stats %+v", snap.Pool)
	}
}

// stubReplica is a Replica whose Encode blocks until released — the seam
// for deterministic overload, timeout and drain tests.
type stubReplica struct {
	started chan struct{} // receives when Encode begins
	release chan struct{} // Encode returns after a receive
}

func newStubReplica() *stubReplica {
	return &stubReplica{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (r *stubReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }

func (r *stubReplica) Encode(inst *wb.Instance) *wb.Brief {
	r.started <- struct{}{}
	<-r.release
	return &wb.Brief{}
}

func (r *stubReplica) Decode(inst *wb.Instance, b *wb.Brief) {}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionOverload429 fills the single replica and the whole wait
// queue, then asserts the next request is shed with 429 + Retry-After
// while every admitted request still completes.
func TestAdmissionOverload429(t *testing.T) {
	stub := newStubReplica()
	srv := NewFromPool(PoolOf(stub), Config{QueueDepth: 2, RetryAfter: 7 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	results := make(chan int, 3)
	post := func() {
		status, _, err := postBrief(ts.URL, "<p>x</p>")
		if err != nil {
			status = -1
		}
		results <- status
	}

	// One request occupies the replica...
	go post()
	<-stub.started
	// ...two more fill the wait queue.
	go post()
	go post()
	waitCond(t, "queue to fill", func() bool { return srv.Metrics().Queued.Load() == 2 })

	// The next request must be rejected immediately with 429.
	resp, err := http.Post(ts.URL+"/brief", "text/html", strings.NewReader("<p>x</p>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want \"7\"", ra)
	}

	// Releasing the stub lets all three admitted requests finish.
	for i := 0; i < 3; i++ {
		stub.release <- struct{}{}
		if i < 2 {
			<-stub.started
		}
	}
	for i := 0; i < 3; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("admitted request got %d", status)
		}
	}
	ms := srv.Metrics()
	if ms.OK.Load() != 3 || ms.Overload.Load() != 1 || ms.Requests.Load() != 4 {
		t.Fatalf("counters ok=%d overload=%d total=%d", ms.OK.Load(), ms.Overload.Load(), ms.Requests.Load())
	}
}

// TestQueueDeadline504 parks a request in the wait queue past the
// configured per-request deadline and asserts it gets 504. The request
// holding the replica is also released after its deadline: the deadline is
// checked between pipeline stages, so it too reports 504 rather than
// returning a briefing the client has already given up on.
func TestQueueDeadline504(t *testing.T) {
	stub := newStubReplica()
	srv := NewFromPool(PoolOf(stub), Config{QueueDepth: 2, Timeout: 25 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		status, _, err := postBrief(ts.URL, "<p>x</p>")
		if err != nil {
			status = -1
		}
		first <- status
	}()
	<-stub.started

	// This one can only wait; the deadline expires in the queue.
	status, _, err := postBrief(ts.URL, "<p>x</p>")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline status %d, want 504", status)
	}

	// By now the first request's deadline has certainly expired too; the
	// post-encode check turns its slow briefing into a 504.
	stub.release <- struct{}{}
	if s := <-first; s != http.StatusGatewayTimeout {
		t.Fatalf("first request got %d, want 504 after its deadline", s)
	}
	if srv.Metrics().Timeout.Load() != 2 {
		t.Fatalf("timeout counter %d, want 2", srv.Metrics().Timeout.Load())
	}
}

// TestHealthzAndDrain exercises the lifecycle: healthz reflects pool
// readiness, BeginShutdown refuses new work with 503 while in-flight
// briefings finish, and Drain returns once the server is idle.
func TestHealthzAndDrain(t *testing.T) {
	stub := newStubReplica()
	srv := NewFromPool(PoolOf(stub), Config{QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	getHealth := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	code, h := getHealth()
	if code != http.StatusOK || h["status"] != "ok" || h["idle"] != float64(1) {
		t.Fatalf("healthz %d %+v", code, h)
	}

	// Occupy the replica, then begin shutdown.
	inflight := make(chan int, 1)
	go func() {
		status, _, err := postBrief(ts.URL, "<p>x</p>")
		if err != nil {
			status = -1
		}
		inflight <- status
	}()
	<-stub.started
	srv.BeginShutdown()

	code, h = getHealth()
	if code != http.StatusServiceUnavailable || h["status"] != "draining" {
		t.Fatalf("draining healthz %d %+v", code, h)
	}
	if status, _, err := postBrief(ts.URL, "<p>x</p>"); err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown brief status %d (err %v), want 503", status, err)
	}

	// Drain blocks until the in-flight briefing completes, then reports 0.
	drained := make(chan int64, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	stub.release <- struct{}{}
	if s := <-inflight; s != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain", s)
	}
	if n := <-drained; n != 0 {
		t.Fatalf("drain left %d in flight", n)
	}
}

// TestPoolGetContext covers Pool.Get's context path directly.
func TestPoolGetContext(t *testing.T) {
	p := PoolOf(newStubReplica())
	r, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.Get(ctx); err == nil {
		t.Fatal("Get on an empty pool must fail once ctx expires")
	}
	p.Put(r)
	if got, err := p.Get(context.Background()); err != nil || got == nil {
		t.Fatalf("Get after Put: %v", err)
	}
}
