package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbrief/internal/fault"
	"webbrief/internal/wb"
)

// okReplica briefs instantly and successfully — the healthy pool member.
type okReplica struct{ briefs atomic.Int64 }

func (r *okReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *okReplica) Encode(inst *wb.Instance) *wb.Brief      { return &wb.Brief{Topic: []string{"ok"}} }
func (r *okReplica) Decode(inst *wb.Instance, b *wb.Brief)   { r.briefs.Add(1) }

// panicNReplica panics during its first n Encodes, then behaves.
type panicNReplica struct {
	mu      sync.Mutex
	panics  int
	encodes int
}

func (r *panicNReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *panicNReplica) Encode(inst *wb.Instance) *wb.Brief {
	r.mu.Lock()
	r.encodes++
	p := r.panics > 0
	if p {
		r.panics--
	}
	r.mu.Unlock()
	if p {
		panic("chaos: injected encode panic")
	}
	return &wb.Brief{Topic: []string{"ok"}}
}
func (r *panicNReplica) Decode(inst *wb.Instance, b *wb.Brief) {}

// wedgeOnceReplica blocks its first Encode until released, then behaves.
type wedgeOnceReplica struct {
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func newWedgeOnceReplica() *wedgeOnceReplica {
	return &wedgeOnceReplica{started: make(chan struct{}, 1), release: make(chan struct{})}
}

func (r *wedgeOnceReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *wedgeOnceReplica) Encode(inst *wb.Instance) *wb.Brief {
	r.once.Do(func() {
		r.started <- struct{}{}
		<-r.release
	})
	return &wb.Brief{Topic: []string{"ok"}}
}
func (r *wedgeOnceReplica) Decode(inst *wb.Instance, b *wb.Brief) {}

// TestChaosPanicEjectRetryReadmit: a replica that panics mid-Encode is
// ejected and the request transparently retries on a healthy replica; the
// ejected replica is probed and readmitted once it briefs cleanly, closing
// the breaker and restoring full capacity.
func TestChaosPanicEjectRetryReadmit(t *testing.T) {
	bad := &panicNReplica{panics: 1}
	good := &okReplica{}
	srv := NewFromPool(PoolOf(bad, good), Config{ReplicaRetries: 2, ProbeInterval: 2 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// PoolOf's idle channel is FIFO: the first request draws bad.
	status, body, err := postBrief(ts.URL, "<p>x</p>")
	if err != nil || status != http.StatusOK {
		t.Fatalf("request through a panicking replica: status %d err %v", status, err)
	}
	if len(body) == 0 {
		t.Fatal("empty briefing body")
	}

	ms := srv.Metrics()
	if ms.Panics.Load() != 1 || ms.Retries.Load() != 1 || ms.ReplicaFailure.Load() != 0 {
		t.Fatalf("panics=%d retries=%d failures=%d, want 1/1/0",
			ms.Panics.Load(), ms.Retries.Load(), ms.ReplicaFailure.Load())
	}
	if srv.Pool().Ejections() != 1 {
		t.Fatalf("ejections=%d, want 1", srv.Pool().Ejections())
	}

	// The prober readmits bad after two clean probe briefings.
	waitCond(t, "replica readmission", func() bool { return srv.Pool().Healthy() == 2 })
	if srv.Pool().Readmissions() != 1 {
		t.Fatalf("readmissions=%d, want 1", srv.Pool().Readmissions())
	}
	closed, open, half := srv.Pool().BreakerStates()
	if closed != 2 || open != 0 || half != 0 {
		t.Fatalf("breaker states closed=%d open=%d half=%d, want 2/0/0", closed, open, half)
	}
	// The readmitted replica serves again.
	if status, _, err := postBrief(ts.URL, "<p>x</p>"); err != nil || status != http.StatusOK {
		t.Fatalf("post-readmission request: status %d err %v", status, err)
	}
}

// TestChaosRetryBudgetExhausted500: when every attempt lands on a
// panicking replica, the request ends in a clean 500 — not a crash, not a
// hung connection — and the counters say why.
func TestChaosRetryBudgetExhausted500(t *testing.T) {
	a := &panicNReplica{panics: 1 << 30}
	b := &panicNReplica{panics: 1 << 30}
	srv := NewFromPool(PoolOf(a, b), Config{ReplicaRetries: 1, ProbeInterval: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, _, err := postBrief(ts.URL, "<p>x</p>")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 after exhausting replica retries", status)
	}
	ms := srv.Metrics()
	if ms.Panics.Load() != 2 || ms.Retries.Load() != 1 || ms.ReplicaFailure.Load() != 1 {
		t.Fatalf("panics=%d retries=%d failures=%d, want 2/1/1",
			ms.Panics.Load(), ms.Retries.Load(), ms.ReplicaFailure.Load())
	}
	if srv.Pool().Healthy() != 0 {
		t.Fatalf("healthy=%d, want 0 with both replicas ejected", srv.Pool().Healthy())
	}

	// With zero healthy replicas /healthz goes unhealthy — load balancers
	// stop routing before clients see more 500s.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with zero healthy replicas, want 503", resp.StatusCode)
	}
}

// TestChaosStallWatchdogEjects: a wedged stage trips the stall watchdog —
// the request retries elsewhere immediately, the wedged replica is ejected,
// and once the wedge resolves the prober brings it back.
func TestChaosStallWatchdogEjects(t *testing.T) {
	wedge := newWedgeOnceReplica()
	good := &okReplica{}
	srv := NewFromPool(PoolOf(wedge, good), Config{
		ReplicaRetries: 1,
		StallTimeout:   10 * time.Millisecond,
		ProbeInterval:  2 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, _, err := postBrief(ts.URL, "<p>x</p>")
	if err != nil || status != http.StatusOK {
		t.Fatalf("request through a wedged replica: status %d err %v", status, err)
	}
	ms := srv.Metrics()
	if ms.Stalls.Load() != 1 || ms.Retries.Load() != 1 {
		t.Fatalf("stalls=%d retries=%d, want 1/1", ms.Stalls.Load(), ms.Retries.Load())
	}
	if srv.Pool().Healthy() != 1 {
		t.Fatalf("healthy=%d, want 1 while the wedge holds", srv.Pool().Healthy())
	}

	// Resolve the wedge; the prober readmits.
	<-wedge.started
	close(wedge.release)
	waitCond(t, "wedged replica readmission", func() bool { return srv.Pool().Healthy() == 2 })
	if srv.Pool().Readmissions() != 1 {
		t.Fatalf("readmissions=%d, want 1", srv.Pool().Readmissions())
	}
}

// wedgePanicReplica blocks Encode until released, then panics — the
// mid-drain failure mode of the shutdown chaos test.
type wedgePanicReplica struct {
	started chan struct{}
	release chan struct{}
}

func newWedgePanicReplica() *wedgePanicReplica {
	return &wedgePanicReplica{started: make(chan struct{}, 8), release: make(chan struct{})}
}

func (r *wedgePanicReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *wedgePanicReplica) Encode(inst *wb.Instance) *wb.Brief {
	r.started <- struct{}{}
	<-r.release
	panic("chaos: replica panic mid-drain")
}
func (r *wedgePanicReplica) Decode(inst *wb.Instance, b *wb.Brief) {}

// TestChaosShutdownDrainWithPanics is the shutdown-race chaos test: two
// requests are in flight and one is queued when shutdown begins; both
// in-flight replicas then panic. The drain must still converge — panicking
// requests end in clean 500s, the queued request times out with 504, new
// requests are refused with 503, and Drain reports zero in flight. Run
// under -race this exercises the eject/drain/prober interleavings.
func TestChaosShutdownDrainWithPanics(t *testing.T) {
	a, b := newWedgePanicReplica(), newWedgePanicReplica()
	srv := NewFromPool(PoolOf(a, b), Config{
		QueueDepth:     2,
		Timeout:        300 * time.Millisecond,
		ReplicaRetries: -1, // no retries: panic → 500 immediately
		ProbeInterval:  time.Hour,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	results := make(chan int, 3)
	post := func() {
		status, _, err := postBrief(ts.URL, "<p>x</p>")
		if err != nil {
			status = -1
		}
		results <- status
	}
	// Two requests occupy both replicas; a third waits in the queue.
	go post()
	go post()
	<-a.started
	<-b.started
	go post()
	waitCond(t, "third request to queue", func() bool { return srv.Metrics().Queued.Load() == 1 })

	// Shutdown begins with all of that in flight; then the replicas blow up.
	drained := make(chan int64, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	close(a.release)
	close(b.release)

	// A request arriving mid-drain is refused, not queued.
	if status, _, err := postBrief(ts.URL, "<p>x</p>"); err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain request: status %d err %v, want 503", status, err)
	}

	got := map[int]int{}
	for i := 0; i < 3; i++ {
		got[<-results]++
	}
	if got[http.StatusInternalServerError] != 2 || got[http.StatusGatewayTimeout] != 1 {
		t.Fatalf("outcomes %v, want two 500s (panics) and one 504 (queued past deadline)", got)
	}
	if n := <-drained; n != 0 {
		t.Fatalf("drain left %d requests in flight", n)
	}

	ms := srv.Metrics()
	if ms.Panics.Load() != 2 || ms.ReplicaFailure.Load() != 2 || ms.Timeout.Load() != 1 || ms.Draining.Load() != 1 {
		t.Fatalf("panics=%d failures=%d timeouts=%d draining=%d, want 2/2/1/1",
			ms.Panics.Load(), ms.ReplicaFailure.Load(), ms.Timeout.Load(), ms.Draining.Load())
	}
	// Requests partition: 2×500 + 1×504 + 1×503.
	if total := ms.Requests.Load(); total != 4 ||
		total != ms.ReplicaFailure.Load()+ms.Timeout.Load()+ms.Draining.Load() {
		t.Fatalf("requests_total=%d does not partition into outcomes", total)
	}
	// Probers exited on shutdown: the panicked replicas stay ejected.
	if srv.Pool().Healthy() != 0 {
		t.Fatalf("healthy=%d after drain, want 0 (probers stop at shutdown)", srv.Pool().Healthy())
	}
}

// TestPoolWrapOne covers the seam wbserve's -chaos flag uses: wrapping one
// idle replica in a fault injector keeps pool accounting intact and the
// wrapped replica keeps serving.
func TestPoolWrapOne(t *testing.T) {
	p := PoolOf(&okReplica{}, &okReplica{})
	sched := fault.NewSchedule(fault.Config{Seed: 1, Rate: 0})
	if err := p.WrapOne(func(r Replica) Replica { return fault.NewReplica(r, sched) }); err != nil {
		t.Fatal(err)
	}
	if p.Healthy() != 2 || p.Idle() != 2 {
		t.Fatalf("healthy=%d idle=%d after WrapOne, want 2/2", p.Healthy(), p.Idle())
	}
	closed, open, half := p.BreakerStates()
	if closed != 2 || open != 0 || half != 0 {
		t.Fatalf("breaker states %d/%d/%d after WrapOne, want 2/0/0", closed, open, half)
	}
	srv := NewFromPool(p, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ { // both pool members serve, including the wrapped one
		if status, _, err := postBrief(ts.URL, "<p>x</p>"); err != nil || status != http.StatusOK {
			t.Fatalf("request %d through wrapped pool: status %d err %v", i, status, err)
		}
	}

	drained := PoolOf(&okReplica{})
	drained.TryGet()
	if err := drained.WrapOne(func(r Replica) Replica { return r }); err == nil {
		t.Fatal("WrapOne on a pool with no idle replica should error")
	}
}

// TestChaosServeSoakFaultedReplica is the seeded serve soak of the
// acceptance criteria: a 3-replica pool with one replica wrapped in a
// fault.Replica at ≥30% fault rate (panics, wedges, slow responses) under
// concurrent client load. Healthy replicas must keep p99 success — every
// client request ends in a briefing unless the retry budget provably ran
// out — and /metrics must reconcile exactly with the outcomes the clients
// observed. Skipped under -short; scripts/check.sh runs it race-enabled.
func TestChaosServeSoakFaultedReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	sched := fault.NewSchedule(fault.Config{
		Seed: 11, Rate: 0.35,
		ErrorWeight: 1, TimeoutWeight: 1, SlowWeight: 1, GarbageWeight: 1,
		SlowDelay:   time.Millisecond,
		TimeoutHang: 40 * time.Millisecond, // wedge: resolves after the watchdog fires
	})
	faulted := fault.NewReplica(&okReplica{}, sched)
	srv := NewFromPool(PoolOf(faulted, &okReplica{}, &okReplica{}), Config{
		ReplicaRetries: 2,
		StallTimeout:   15 * time.Millisecond,
		ProbeInterval:  2 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients, perClient = 8, 25
	var ok200, fail500, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, _, err := postBrief(ts.URL, "<p>soak</p>")
				switch {
				case err != nil:
					other.Add(1)
				case status == http.StatusOK:
					ok200.Add(1)
				case status == http.StatusInternalServerError:
					fail500.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	total := int64(clients * perClient)
	if other.Load() != 0 {
		t.Fatalf("%d requests ended outside the 200/500 contract", other.Load())
	}
	// p99 success: with a 2-retry budget against one faulted replica in
	// three, terminal 500s need three consecutive faulted draws.
	if ok200.Load() < total*99/100 {
		t.Fatalf("successes %d/%d, below p99 with one faulted replica", ok200.Load(), total)
	}

	// /metrics reconciles exactly with the client-observed outcomes.
	ms := srv.Metrics()
	if ms.Requests.Load() != total {
		t.Fatalf("requests_total=%d, clients sent %d", ms.Requests.Load(), total)
	}
	if ms.OK.Load() != ok200.Load() || ms.ReplicaFailure.Load() != fail500.Load() {
		t.Fatalf("server ok=%d/500=%d, clients saw %d/%d",
			ms.OK.Load(), ms.ReplicaFailure.Load(), ok200.Load(), fail500.Load())
	}
	if ms.Requests.Load() != ms.OK.Load()+ms.ReplicaFailure.Load() {
		t.Fatalf("counters do not partition: total=%d ok=%d failure=%d",
			ms.Requests.Load(), ms.OK.Load(), ms.ReplicaFailure.Load())
	}
	// Every recovered fault event either retried the request or ended it.
	if ms.Panics.Load()+ms.Stalls.Load() != ms.Retries.Load()+ms.ReplicaFailure.Load() {
		t.Fatalf("fault events do not reconcile: panics=%d stalls=%d retries=%d failures=%d",
			ms.Panics.Load(), ms.Stalls.Load(), ms.Retries.Load(), ms.ReplicaFailure.Load())
	}
	if ms.Panics.Load()+ms.Stalls.Load() == 0 {
		t.Fatal("soak injected no faults; the chaos schedule is not reaching the replica")
	}

	// Quiesce: the prober returns the faulted replica to rotation, so
	// capacity recovers fully and ejections balance readmissions.
	waitCond(t, "pool capacity recovery", func() bool { return srv.Pool().Healthy() == 3 })
	if srv.Pool().Ejections() != srv.Pool().Readmissions() {
		t.Fatalf("ejections=%d readmissions=%d after quiesce",
			srv.Pool().Ejections(), srv.Pool().Readmissions())
	}
	if srv.Metrics().InFlight.Load() != 0 || srv.Metrics().Queued.Load() != 0 {
		t.Fatalf("residual in_flight=%d queued=%d", srv.Metrics().InFlight.Load(), srv.Metrics().Queued.Load())
	}
}
