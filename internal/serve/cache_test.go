package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbrief/internal/briefcache"
	"webbrief/internal/fault"
	"webbrief/internal/htmldom"
	"webbrief/internal/wb"
)

// postBriefSrc is postBrief with a ?src= source-domain attribution, the
// input to the cache's per-domain admission/TTL policy.
func postBriefSrc(tsURL, html, src string) (int, []byte, error) {
	resp, err := http.Post(tsURL+"/brief?src="+url.QueryEscape(src), "text/html", strings.NewReader(html))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// TestCacheHitMissByteIdentical is the cache correctness core: over a real
// trained model, a miss computes through the normal pipeline and produces
// bytes identical to an uncached server; a repeat post of the same bytes is
// a raw (parse-free) hit; a markup variant rendering to the same visible
// text is a content hit — and every hit serves the exact miss-path bytes.
func TestCacheHitMissByteIdentical(t *testing.T) {
	m, v, pages := trainedModel(t)
	const beam = 2

	// Uncached reference server: the miss path must be byte-identical to it.
	plain, err := New(m, v, Config{Replicas: 1, BeamWidth: beam})
	if err != nil {
		t.Fatal(err)
	}
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()

	srv, err := New(m, v, Config{Replicas: 1, BeamWidth: beam, CacheCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Cache() == nil {
		t.Fatal("CacheCapacity > 0 did not enable the cache")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i, p := range pages {
		// A leading comment changes the raw bytes but not the visible text,
		// so it must land as a content hit. Pin that premise explicitly.
		variant := fmt.Sprintf("<!-- mirror %d -->", i) + p.HTML
		if htmldom.VisibleText(htmldom.Parse(variant)) != htmldom.VisibleText(htmldom.Parse(p.HTML)) {
			t.Fatal("comment prefix changed the rendered visible text; test premise broken")
		}

		status, want, err := postBrief(tsPlain.URL, p.HTML)
		if err != nil || status != http.StatusOK {
			t.Fatalf("page %d uncached reference: status %d err %v", i, status, err)
		}

		for _, step := range []struct{ rep, html string }{
			{"miss", p.HTML}, {"raw-hit", p.HTML}, {"content-hit", variant},
		} {
			rep, html := step.rep, step.html
			status, body, err := postBrief(ts.URL, html)
			if err != nil || status != http.StatusOK {
				t.Fatalf("page %d %s: status %d err %v", i, rep, status, err)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("page %d %s diverges from the uncached server:\n got %s\nwant %s", i, rep, body, want)
			}
		}
	}

	// Exact cache partition: per page one miss and two hits, no coalescing.
	n := int64(len(pages))
	ms := srv.Metrics()
	if ms.CacheLookups.Load() != 3*n || ms.CacheHits.Load() != 2*n ||
		ms.CacheMisses.Load() != n || ms.CacheCoalesced.Load() != 0 {
		t.Fatalf("cache counters lookups=%d hits=%d misses=%d coalesced=%d, want %d/%d/%d/0",
			ms.CacheLookups.Load(), ms.CacheHits.Load(), ms.CacheMisses.Load(), ms.CacheCoalesced.Load(),
			3*n, 2*n, n)
	}
	if got := ms.CacheHitLatency.count.Load(); got != 2*n {
		t.Fatalf("hit latency histogram count=%d, want %d", got, 2*n)
	}
	if ms.OK.Load() != 3*n || ms.Requests.Load() != 3*n {
		t.Fatalf("ok=%d requests=%d, want %d", ms.OK.Load(), ms.Requests.Load(), 3*n)
	}

	// /metrics serves the cache block with the same numbers, partitioned.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	c := snap.Cache
	if !c.Enabled || c.CacheLookups != 3*n || c.Evictions != 0 {
		t.Fatalf("cache snapshot %+v", c)
	}
	if c.CacheLookups != c.CacheOutcomes.CacheHits+c.CacheOutcomes.CacheMisses+c.CacheOutcomes.CacheCoalesced {
		t.Fatalf("cache_lookups_total=%d does not partition into outcomes %+v", c.CacheLookups, c.CacheOutcomes)
	}
	// Each page left a content entry plus raw aliases for both HTML forms.
	if c.Entries != int(3*n) {
		t.Fatalf("cache entries=%d, want %d (content + two aliases per page)", c.Entries, 3*n)
	}
	if c.HitLatencyNS.Count != 2*n {
		t.Fatalf("hit_latency_ns count=%d, want %d", c.HitLatencyNS.Count, 2*n)
	}
}

// herdReplica counts Encode calls and blocks each until released — the
// counting stub that proves a thundering herd checks out one replica.
type herdReplica struct {
	encodes atomic.Int64
	started chan struct{}
	release chan struct{}
}

func newHerdReplica() *herdReplica {
	return &herdReplica{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (r *herdReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *herdReplica) Encode(inst *wb.Instance) *wb.Brief {
	r.encodes.Add(1)
	r.started <- struct{}{}
	<-r.release
	return &wb.Brief{Topic: []string{"herd"}}
}
func (r *herdReplica) Decode(inst *wb.Instance, b *wb.Brief) {}

// TestCacheThunderingHerd: N concurrent posts of one cold page coalesce
// into a single replica computation. The winner blocks mid-Encode while
// every loser registers as coalesced; on release all N receive identical
// 200 bodies from exactly one Encode, and a subsequent post is a pure hit
// that still checks out no replica.
func TestCacheThunderingHerd(t *testing.T) {
	stub := newHerdReplica()
	srv := NewFromPool(PoolOf(stub), Config{CacheCapacity: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const herd = 8
	const page = "<p>cold page, everyone at once</p>"
	type result struct {
		status int
		body   []byte
		err    error
	}
	results := make(chan result, herd)
	for i := 0; i < herd; i++ {
		go func() {
			status, body, err := postBrief(ts.URL, page)
			results <- result{status, body, err}
		}()
	}

	// The winner is wedged in Encode; every other member must be counted
	// as coalesced before we let the computation finish.
	<-stub.started
	ms := srv.Metrics()
	waitCond(t, "herd to coalesce", func() bool { return ms.CacheCoalesced.Load() == herd-1 })
	close(stub.release)

	var first []byte
	for i := 0; i < herd; i++ {
		r := <-results
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("herd member %d: status %d err %v", i, r.status, r.err)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(r.body, first) {
			t.Fatalf("herd member %d body diverges:\n got %s\nwant %s", i, r.body, first)
		}
	}
	if n := stub.encodes.Load(); n != 1 {
		t.Fatalf("herd of %d drove %d Encodes, want exactly 1", herd, n)
	}
	if ms.CacheLookups.Load() != herd || ms.CacheMisses.Load() != 1 ||
		ms.CacheHits.Load() != 0 || ms.CacheCoalesced.Load() != herd-1 {
		t.Fatalf("herd counters lookups=%d misses=%d hits=%d coalesced=%d, want %d/1/0/%d",
			ms.CacheLookups.Load(), ms.CacheMisses.Load(), ms.CacheHits.Load(), ms.CacheCoalesced.Load(),
			herd, herd-1)
	}

	// The entry is warm now: a repeat post hits without touching the pool.
	status, body, err := postBrief(ts.URL, page)
	if err != nil || status != http.StatusOK || !bytes.Equal(body, first) {
		t.Fatalf("post-herd hit: status %d err %v", status, err)
	}
	if stub.encodes.Load() != 1 || ms.CacheHits.Load() != 1 {
		t.Fatalf("post-herd hit drove encodes=%d hits=%d, want 1/1", stub.encodes.Load(), ms.CacheHits.Load())
	}
}

// herdPanicReplica blocks Encode until released, then panics — the failing
// winner of the coalesced-failure test.
type herdPanicReplica struct {
	started chan struct{}
	release chan struct{}
}

func (r *herdPanicReplica) Parse(html string) (*wb.Instance, error) { return &wb.Instance{}, nil }
func (r *herdPanicReplica) Encode(inst *wb.Instance) *wb.Brief {
	r.started <- struct{}{}
	<-r.release
	panic("cache: injected winner failure")
}
func (r *herdPanicReplica) Decode(inst *wb.Instance, b *wb.Brief) {}

// TestCacheCoalescedFailureReplay: when the flight winner's computation
// fails terminally, the losers replay the same 500 (collapse forwarding)
// instead of stampeding the broken pipeline — and the failure is never
// cached, so the next request recomputes.
func TestCacheCoalescedFailureReplay(t *testing.T) {
	stub := &herdPanicReplica{started: make(chan struct{}, 8), release: make(chan struct{})}
	srv := NewFromPool(PoolOf(stub), Config{
		CacheCapacity:  64,
		ReplicaRetries: -1, // no retries: the winner's panic is terminal
		ProbeInterval:  time.Hour,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const herd = 3
	const page = "<p>doomed page</p>"
	results := make(chan int, herd)
	for i := 0; i < herd; i++ {
		go func() {
			status, _, err := postBrief(ts.URL, page)
			if err != nil {
				status = -1
			}
			results <- status
		}()
	}
	<-stub.started
	ms := srv.Metrics()
	waitCond(t, "losers to coalesce", func() bool { return ms.CacheCoalesced.Load() == herd-1 })
	close(stub.release)

	for i := 0; i < herd; i++ {
		if status := <-results; status != http.StatusInternalServerError {
			t.Fatalf("herd member %d got %d, want the winner's 500 replayed", i, status)
		}
	}
	if ms.ReplicaFailure.Load() != herd || ms.Panics.Load() != 1 {
		t.Fatalf("failures=%d panics=%d, want %d/1 (one panic, replayed to all)",
			ms.ReplicaFailure.Load(), ms.Panics.Load(), herd)
	}
	if ms.CacheMisses.Load() != 1 || ms.CacheCoalesced.Load() != herd-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1/%d", ms.CacheMisses.Load(), ms.CacheCoalesced.Load(), herd-1)
	}
	// Failures are replayed to the herd but never stored: the cache is empty.
	if n := srv.Cache().Len(); n != 0 {
		t.Fatalf("failed computation left %d cache entries", n)
	}
}

// TestCachePolicyDenyAndSrcDomain covers the ?src= admission seam: denied
// domains bypass the cache entirely (every request computes, no counters
// move), admitted domains and unattributed requests cache normally, and
// the src parameter accepts full URLs with mixed case and ports.
func TestCachePolicyDenyAndSrcDomain(t *testing.T) {
	policy, err := briefcache.ParsePolicy(strings.NewReader(
		"# soak policy\ndeny denied.example.com\nttl 20m ok.example.org\n"))
	if err != nil {
		t.Fatal(err)
	}
	rep := &okReplica{}
	srv := NewFromPool(PoolOf(rep), Config{CacheCapacity: 64, CachePolicy: policy})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post2 := func(html, src string) {
		t.Helper()
		for i := 0; i < 2; i++ {
			var status int
			var err error
			if src == "" {
				status, _, err = postBrief(ts.URL, html)
			} else {
				status, _, err = postBriefSrc(ts.URL, html, src)
			}
			if err != nil || status != http.StatusOK {
				t.Fatalf("post %d src=%q: status %d err %v", i, src, status, err)
			}
		}
	}

	ms := srv.Metrics()
	// Denied domain, including the URL/case/port forms cacheDomain must
	// normalise: both posts compute, the cache never consulted.
	post2("<p>denied content</p>", "https://Sub.DENIED.example.com:8443/article?x=1")
	if rep.briefs.Load() != 2 || ms.CacheLookups.Load() != 0 {
		t.Fatalf("denied domain: briefs=%d lookups=%d, want 2/0", rep.briefs.Load(), ms.CacheLookups.Load())
	}

	// Admitted domain: second post is a hit, no second computation.
	post2("<p>admitted content</p>", "news.ok.example.org")
	if rep.briefs.Load() != 3 || ms.CacheHits.Load() != 1 || ms.CacheMisses.Load() != 1 {
		t.Fatalf("admitted domain: briefs=%d hits=%d misses=%d, want 3/1/1",
			rep.briefs.Load(), ms.CacheHits.Load(), ms.CacheMisses.Load())
	}

	// Unattributed requests (no ?src=) are always admitted.
	post2("<p>anonymous content</p>", "")
	if rep.briefs.Load() != 4 || ms.CacheHits.Load() != 2 {
		t.Fatalf("no src: briefs=%d hits=%d, want 4/2", rep.briefs.Load(), ms.CacheHits.Load())
	}

	if ms.CacheLookups.Load() != ms.CacheHits.Load()+ms.CacheMisses.Load()+ms.CacheCoalesced.Load() {
		t.Fatalf("cache partition drifted: lookups=%d hits=%d misses=%d coalesced=%d",
			ms.CacheLookups.Load(), ms.CacheHits.Load(), ms.CacheMisses.Load(), ms.CacheCoalesced.Load())
	}
}

// TestCacheHitBypassesBatching: with the micro-batch scheduler on, a miss
// still dispatches through a batch but a hit is served before batching —
// no batch forms, no replica is touched.
func TestCacheHitBypassesBatching(t *testing.T) {
	rep := &okReplica{}
	srv := NewFromPool(PoolOf(rep), Config{
		BatchWindow:   time.Millisecond,
		CacheCapacity: 64,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ms := srv.Metrics()
	if status, _, err := postBrief(ts.URL, "<p>batched page</p>"); err != nil || status != http.StatusOK {
		t.Fatalf("miss through the batched path: status %d err %v", status, err)
	}
	if ms.BatchesTotal.Load() != 1 || rep.briefs.Load() != 1 || ms.CacheMisses.Load() != 1 {
		t.Fatalf("after miss: batches=%d briefs=%d misses=%d, want 1/1/1",
			ms.BatchesTotal.Load(), rep.briefs.Load(), ms.CacheMisses.Load())
	}

	if status, _, err := postBrief(ts.URL, "<p>batched page</p>"); err != nil || status != http.StatusOK {
		t.Fatalf("hit through the batched server: status %d err %v", status, err)
	}
	if ms.BatchesTotal.Load() != 1 || rep.briefs.Load() != 1 {
		t.Fatalf("a cache hit formed a batch: batches=%d briefs=%d, want still 1/1",
			ms.BatchesTotal.Load(), rep.briefs.Load())
	}
	if ms.CacheHits.Load() != 1 {
		t.Fatalf("hits=%d, want 1", ms.CacheHits.Load())
	}
}

// TestChaosServeCachedSoak is the cache-under-chaos soak: a pool warmed
// with clean briefings gets one replica wrapped in a 35%-faulted injector,
// then concurrent clients mix warm cached pages with fresh unique pages.
// Cached pages must never fail and never serve anything but the clean
// reference bytes (a garbage-faulting replica must not poison the cache),
// overall success stays ≥99%, and both the requests_total and
// cache_lookups_total partitions reconcile exactly. Skipped under -short;
// scripts/check.sh runs it race-enabled.
func TestChaosServeCachedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cached chaos soak skipped in -short")
	}
	srv := NewFromPool(PoolOf(&okReplica{}, &okReplica{}, &okReplica{}), Config{
		CacheCapacity:  1024,
		ReplicaRetries: 2,
		StallTimeout:   15 * time.Millisecond,
		ProbeInterval:  2 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm phase, on the all-healthy pool: cache the reference pages and
	// capture the clean bytes every later cached response must match.
	const warmPages = 4
	cached := make([]string, warmPages)
	want := make([][]byte, warmPages)
	for k := range cached {
		cached[k] = fmt.Sprintf("<p>evergreen page %d</p>", k)
		status, body, err := postBrief(ts.URL, cached[k])
		if err != nil || status != http.StatusOK {
			t.Fatalf("warm page %d: status %d err %v", k, status, err)
		}
		want[k] = body
	}

	// Only now does chaos arrive: one replica in three starts faulting.
	sched := fault.NewSchedule(fault.Config{
		Seed: 11, Rate: 0.35,
		ErrorWeight: 1, TimeoutWeight: 1, SlowWeight: 1, GarbageWeight: 1,
		SlowDelay:   time.Millisecond,
		TimeoutHang: 40 * time.Millisecond,
	})
	if err := srv.Pool().WrapOne(func(r Replica) Replica { return fault.NewReplica(r, sched) }); err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 8, 25
	var ok200, fail500, other, cachedPosts, badBody atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var html string
				var ref []byte
				if i%2 == 0 {
					k := (c + i) % warmPages
					html, ref = cached[k], want[k]
					cachedPosts.Add(1)
				} else {
					// Fresh unique page: always a cold miss through the
					// (partially faulted) pool.
					html = fmt.Sprintf("<p>fresh page c%d i%d</p>", c, i)
				}
				status, body, err := postBrief(ts.URL, html)
				switch {
				case err != nil:
					other.Add(1)
				case status == http.StatusOK:
					ok200.Add(1)
					if ref != nil && !bytes.Equal(body, ref) {
						badBody.Add(1)
					}
				case status == http.StatusInternalServerError:
					if ref != nil {
						// A cached page can only fail if the cache lost or
						// corrupted it — count that as a body failure too.
						badBody.Add(1)
					}
					fail500.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	if badBody.Load() != 0 {
		t.Fatalf("%d cached-page responses failed or diverged from the clean reference bytes", badBody.Load())
	}
	if other.Load() != 0 {
		t.Fatalf("%d requests ended outside the 200/500 contract", other.Load())
	}
	total := int64(clients * perClient)
	if ok200.Load() < total*99/100 {
		t.Fatalf("successes %d/%d, below p99 with one faulted replica and a warm cache", ok200.Load(), total)
	}

	// Requests partition: warm posts + soak posts, every one 200 or 500.
	ms := srv.Metrics()
	allRequests := total + warmPages
	if ms.Requests.Load() != allRequests {
		t.Fatalf("requests_total=%d, clients sent %d", ms.Requests.Load(), allRequests)
	}
	if ms.OK.Load() != ok200.Load()+warmPages || ms.ReplicaFailure.Load() != fail500.Load() {
		t.Fatalf("server ok=%d/500=%d, clients saw %d/%d",
			ms.OK.Load(), ms.ReplicaFailure.Load(), ok200.Load()+warmPages, fail500.Load())
	}
	if ms.Requests.Load() != ms.OK.Load()+ms.ReplicaFailure.Load() {
		t.Fatalf("counters do not partition: total=%d ok=%d failure=%d",
			ms.Requests.Load(), ms.OK.Load(), ms.ReplicaFailure.Load())
	}

	// Cache partition: every request consulted the cache; cached posts are
	// all hits (they never touch a replica), warm and fresh posts are all
	// misses, and unique fresh pages leave nothing to coalesce.
	if ms.CacheLookups.Load() != allRequests {
		t.Fatalf("cache_lookups_total=%d, want %d (every request consults the cache)",
			ms.CacheLookups.Load(), allRequests)
	}
	if ms.CacheLookups.Load() != ms.CacheHits.Load()+ms.CacheMisses.Load()+ms.CacheCoalesced.Load() {
		t.Fatalf("cache partition drifted: lookups=%d hits=%d misses=%d coalesced=%d",
			ms.CacheLookups.Load(), ms.CacheHits.Load(), ms.CacheMisses.Load(), ms.CacheCoalesced.Load())
	}
	if ms.CacheHits.Load() != cachedPosts.Load() || ms.CacheCoalesced.Load() != 0 {
		t.Fatalf("hits=%d coalesced=%d, want %d/0 (cached pages hit, fresh pages are unique)",
			ms.CacheHits.Load(), ms.CacheCoalesced.Load(), cachedPosts.Load())
	}
	if ms.CacheMisses.Load() != allRequests-cachedPosts.Load() {
		t.Fatalf("misses=%d, want %d", ms.CacheMisses.Load(), allRequests-cachedPosts.Load())
	}
	if srv.Cache().Evictions() != 0 {
		t.Fatalf("soak evicted %d entries from an underfull cache", srv.Cache().Evictions())
	}

	// Fault events reconcile, and the schedule actually reached the pool.
	if ms.Panics.Load()+ms.Stalls.Load() != ms.Retries.Load()+ms.ReplicaFailure.Load() {
		t.Fatalf("fault events do not reconcile: panics=%d stalls=%d retries=%d failures=%d",
			ms.Panics.Load(), ms.Stalls.Load(), ms.Retries.Load(), ms.ReplicaFailure.Load())
	}
	if ms.Panics.Load()+ms.Stalls.Load() == 0 {
		t.Fatal("soak injected no faults; the chaos schedule is not reaching the replica")
	}

	// Quiesce: capacity recovers fully once the prober readmits.
	waitCond(t, "pool capacity recovery", func() bool { return srv.Pool().Healthy() == 3 })
	if ms.InFlight.Load() != 0 || ms.Queued.Load() != 0 {
		t.Fatalf("residual in_flight=%d queued=%d", ms.InFlight.Load(), ms.Queued.Load())
	}
}
