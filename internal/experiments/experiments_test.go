package experiments

import (
	"strings"
	"testing"
)

// smokeSetup builds one shared smoke-scale setup for all tests in this
// package (building it is the expensive part).
var smoke *Setup

func getSmoke(t testing.TB) *Setup {
	t.Helper()
	if smoke != nil {
		return smoke
	}
	s, err := NewSetup(DefaultOptions(ScaleSmoke))
	if err != nil {
		t.Fatal(err)
	}
	smoke = s
	return s
}

func TestSetupSplits(t *testing.T) {
	s := getSmoke(t)
	opt := s.Opt
	wantSeen := opt.SeenDomains * opt.PagesPerDomain
	gotSeen := len(s.SeenTrain) + len(s.SeenDev) + len(s.SeenTest)
	if gotSeen != wantSeen {
		t.Fatalf("seen split covers %d pages, want %d", gotSeen, wantSeen)
	}
	wantUnseen := opt.UnseenDomains * opt.PagesPerDomain
	gotUnseen := len(s.UnseenTrain) + len(s.UnseenDev) + len(s.UnseenTest)
	if gotUnseen != wantUnseen {
		t.Fatalf("unseen split covers %d pages, want %d", gotUnseen, wantUnseen)
	}
	if len(s.AllTrain) != len(s.SeenTrain)+len(s.UnseenTrain) {
		t.Fatal("AllTrain must be the union of train splits")
	}
	if len(s.SeenTrain) == 0 || len(s.SeenTest) == 0 || len(s.UnseenTest) == 0 {
		t.Fatal("degenerate split")
	}
}

func TestSeenTopicIDs(t *testing.T) {
	s := getSmoke(t)
	topics := s.SeenTopicIDs()
	if len(topics) != s.Opt.SeenDomains {
		t.Fatalf("got %d seen topics, want %d", len(topics), s.Opt.SeenDomains)
	}
	for _, tp := range topics {
		if len(tp) == 0 {
			t.Fatal("empty topic")
		}
		for _, id := range tp {
			if id <= 0 {
				t.Fatal("topic token missing from vocab")
			}
		}
	}
}

func TestEncoderFactoryIndependence(t *testing.T) {
	s := getSmoke(t)
	a := s.NewEncoder(EncGloVe)
	b := s.NewEncoder(EncGloVe)
	// Two encoders must not share parameter storage (each model fine-tunes
	// its own copy).
	ap, bp := a.Params()[0], b.Params()[0]
	orig := bp.Value.Data[0]
	ap.Value.Data[0] += 42
	if bp.Value.Data[0] != orig {
		t.Fatal("GloVe encoders share storage")
	}
	// BERT encoders start from the shared pre-trained weights.
	c := s.NewEncoder(EncBERT)
	d := s.NewEncoder(EncBERT)
	if c.Params()[0].Value.Data[0] != d.Params()[0].Value.Data[0] {
		t.Fatal("BERT encoders should start identical (cloned pretrained weights)")
	}
}

func TestRunUnknownID(t *testing.T) {
	s := getSmoke(t)
	if _, err := s.Run("nope"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestAllIDsRunnable(t *testing.T) {
	ids := AllIDs()
	if len(ids) != 12 {
		t.Fatalf("expected 12 experiments, got %d", len(ids))
	}
}

// TestAllTablesSmoke runs every experiment at smoke scale and checks the
// structural properties of each table. This is the integration test for the
// whole reproduction stack (corpus → models → distillation → metrics).
func TestAllTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	s := getSmoke(t)

	t4, rows4 := s.Table4()
	if len(rows4) != 4 || rows4[0].Method != "No Distill" || rows4[3].Method != "Dual-Distill" {
		t.Fatalf("Table IV rows: %+v", rows4)
	}
	for _, r := range rows4 {
		if r.UnseenRM < r.UnseenEM || r.SeenRM < r.SeenEM {
			t.Fatalf("RM must dominate EM: %+v", r)
		}
	}
	checkRendered(t, t4, "Dual-Distill")

	t5, data5 := s.Table5()
	if len(data5) != 3 {
		t.Fatalf("Table V teachers: %d", len(data5))
	}
	if _, ok := data5["BERT-Single"]["Tri-Distill"]; ok {
		t.Fatal("Tri-Distill must be undefined for single-task teachers")
	}
	if !data5["Joint-WB"]["Tri-Distill"].Valid {
		t.Fatal("Tri-Distill missing for Joint-WB teacher")
	}
	checkRendered(t, t5, "Pip-Distill")

	t6, rows6 := s.Table6()
	if len(rows6) != 6 {
		t.Fatalf("Table VI rows: %d", len(rows6))
	}
	for _, r := range rows6 {
		if r.Scores.F1 < 0 || r.Scores.F1 > 100 {
			t.Fatalf("F1 out of range: %+v", r)
		}
	}
	checkRendered(t, t6, "Joint-WB")

	t7, rows7 := s.Table7()
	if len(rows7) != 5 {
		t.Fatalf("Table VII rows: %d", len(rows7))
	}
	checkRendered(t, t7, "GloVe→[Bi-LSTM, LSTM]")

	t8, rows8 := s.Table8()
	if len(rows8) != 7 || rows8[6].System != "Joint-WB" {
		t.Fatalf("Table VIII rows: %+v", rows8)
	}
	checkRendered(t, t8, "Ave-Extractor")

	t9, rows9 := s.Table9()
	if len(rows9) != 7 {
		t.Fatalf("Table IX rows: %d", len(rows9))
	}
	checkRendered(t, t9, "Pip-Extractor+Pip-Generator")

	t10, rows10 := s.Table10()
	if len(rows10) != 8 {
		t.Fatalf("Table X rows: %d", len(rows10))
	}
	for _, r := range rows10 {
		if r.SeenScore < 0 || r.SeenScore > 2 || r.UnseenScore < 0 || r.UnseenScore > 2 {
			t.Fatalf("score out of 0–2 range: %+v", r)
		}
	}
	checkRendered(t, t10, "Tri-Distill (our proposed)")

	tq, dq := s.DatasetQuality()
	if dq.Pages == 0 || dq.KappaTopic < 0.55 {
		t.Fatalf("dataset quality: %+v", dq)
	}
	checkRendered(t, tq, "topic suitability")

	ts, rowsS := s.Sensitivity()
	if len(rowsS) != 9 { // 3 models × 3 proportions
		t.Fatalf("sensitivity rows: %d", len(rowsS))
	}
	for _, r := range rowsS {
		sum := r.FollowsFirst + r.FollowsSecond + r.FollowsNeither
		if sum < 99.9 || sum > 100.1 {
			t.Fatalf("sensitivity fractions do not partition: %+v", r)
		}
	}
	checkRendered(t, ts, "Dual-Distill")
}

func checkRendered(t *testing.T, tab *Table, mustContain string) {
	t.Helper()
	out := tab.String()
	if !strings.Contains(out, mustContain) {
		t.Fatalf("table %s rendering missing %q:\n%s", tab.ID, mustContain, out)
	}
	if !strings.Contains(out, "Table "+tab.ID) {
		t.Fatalf("table header missing:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "T", Caption: "c", Header: []string{"A", "Blong"}}
	tab.Add("x", "1.00")
	tab.Add("longer", "2.00")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendering lines: %q", lines)
	}
	// Columns aligned: header and rows share prefix width.
	if len(lines[1]) == 0 || len(lines[3]) == 0 {
		t.Fatal("empty lines")
	}
}

func TestExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	s := getSmoke(t)
	tn, dn := s.AttrNames()
	if dn.SeenAccuracy < 0 || dn.SeenAccuracy > 100 || dn.UnseenAccuracy < 0 || dn.UnseenAccuracy > 100 {
		t.Fatalf("names accuracy out of range: %+v", dn)
	}
	checkRendered(t, tn, "Unseen domains")

	th, dh := s.Hierarchy()
	for _, f1 := range []float64{dh.CombinedL1, dh.CombinedL2, dh.IndependentL1, dh.IndependentL2} {
		if f1 < 0 || f1 > 100 {
			t.Fatalf("hier F1 out of range: %+v", dh)
		}
	}
	checkRendered(t, th, "combined signal")

	ta, da := s.Ablations()
	if da.MarkovSectionAcc <= 0 || da.IndepSectionAcc <= 0 {
		t.Fatalf("ablation section accuracies: %+v", da)
	}
	if len(da.SoftWeightEM) != 3 || len(da.BeamEM) != 4 {
		t.Fatalf("ablation sweep sizes: %+v", da)
	}
	checkRendered(t, ta, "Markov dependency")
}
