package experiments

import (
	"math/rand"

	"webbrief/internal/corpus"
	"webbrief/internal/eval"
)

// QualityData reproduces the dataset-quality study of §IV-A2: five
// simulated volunteers score up to 500 random pages on three aspects
// (content-rich, topic suitability, attribute correctness) and Cohen's κ
// quantifies their agreement (the paper reports κ > 0.93 for all aspects).
type QualityData struct {
	Pages        int
	KappaContent float64
	KappaTopic   float64
	KappaAttr    float64
	MeanTopic    float64 // mean 0–2 topic suitability
}

// DatasetQuality runs the study. Rated items are deliberately
// heterogeneous: most candidates are the gold labels, a minority are
// partially or fully corrupted (the paper's population was 92.6% "perfectly
// suitable", the rest weaker). Raters share the scoring oracle up to small
// independent noise, so κ measures real agreement over varied items —
// avoiding the κ paradox of rating a constant-quality set.
func (s *Setup) DatasetQuality() (*Table, QualityData) {
	pages := s.DS.Pages
	if len(pages) > 500 {
		shuffled := append([]*corpus.Page{}, pages...)
		rng := rand.New(rand.NewSource(s.Opt.Seed + 999))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		pages = shuffled[:500]
	}

	// corrupt degrades a candidate: level 1 keeps partial overlap (score
	// 1), level 2 destroys it (score 0).
	corrupt := func(toks []string, level int) []string {
		if level == 0 || len(toks) == 0 {
			return toks
		}
		if level == 1 {
			out := append([]string{"generic"}, toks[:len(toks)/2]...)
			return out
		}
		return []string{"unrelated", "content"}
	}
	levelOf := func(i int) int {
		switch {
		case i%29 == 0:
			return 2 // ~3% fully unsuitable
		case i%12 == 0:
			return 1 // ~8% partially suitable
		default:
			return 0
		}
	}

	var topicCand, topicGold, attrCand, attrGold, richCand, richGold [][]string
	for i, p := range pages {
		lvl := levelOf(i)
		topicGold = append(topicGold, p.Topic)
		topicCand = append(topicCand, corrupt(p.Topic, lvl))
		var flat []string
		for _, a := range p.Attributes() {
			flat = append(flat, a.Value...)
		}
		attrGold = append(attrGold, flat)
		attrCand = append(attrCand, corrupt(flat, lvl))
		richGold = append(richGold, []string{"rich"})
		richCand = append(richCand, corrupt([]string{"rich"}, lvl))
	}

	rate := func(gen, gold [][]string, seed int64) (float64, float64) {
		panel := eval.NewPanel(5, 0.01, seed)
		ratings, mean := panel.Rate(gen, gold)
		return panel.Agreement(ratings), mean
	}
	kContent, _ := rate(richCand, richGold, s.Opt.Seed+301)
	kTopic, meanTopic := rate(topicCand, topicGold, s.Opt.Seed+302)
	kAttr, _ := rate(attrCand, attrGold, s.Opt.Seed+303)

	data := QualityData{
		Pages:        len(pages),
		KappaContent: kContent,
		KappaTopic:   kTopic,
		KappaAttr:    kAttr,
		MeanTopic:    meanTopic,
	}
	tab := &Table{
		ID:      "quality",
		Caption: "Dataset quality study (§IV-A2): 5 simulated annotators, Cohen's κ per aspect",
		Header:  []string{"Aspect", "κ", "Mean score"},
	}
	tab.Add("content-rich", pct(kContent), "-")
	tab.Add("topic suitability", pct(kTopic), pct(meanTopic))
	tab.Add("attribute correctness", pct(kAttr), "-")
	return tab, data
}
