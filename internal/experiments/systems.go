package experiments

import (
	"webbrief/internal/baselines"
	"webbrief/internal/distill"
	"webbrief/internal/wb"
)

// cached returns the named trained system, building and training it on
// first use. Tables share systems through this registry (e.g. Table X's
// human evaluation reuses generators trained for Table VII).
func (s *Setup) cached(name string, build func() wb.Model) wb.Model {
	if s.cache == nil {
		s.cache = map[string]wb.Model{}
	}
	if m, ok := s.cache[name]; ok {
		return m
	}
	m := build()
	s.cache[name] = m
	return m
}

// Teacher returns the Joint-WB teacher pre-trained on the seen domains —
// the central system reused by Tables IV, V, VI, VII, VIII, IX and the
// sensitivity study.
func (s *Setup) Teacher() *wb.JointWB {
	return s.cached("teacher/Joint-WB", func() wb.Model {
		m := s.NewJointWB()
		wb.TrainModel(m, s.SeenTrain, s.TrainCfg(s.Opt.TeacherEpochs))
		return m
	}).(*wb.JointWB)
}

// SingleExtractorOn returns a trained *→Bi-LSTM extractor.
func (s *Setup) SingleExtractorOn(kind EncKind, priorSection, priorTopic bool) wb.Model {
	name := kind.String() + "→Bi-LSTM"
	if priorSection {
		name += " + prior section"
	}
	if priorTopic {
		name += " + prior topic"
	}
	return s.cached("ext/"+name, func() wb.Model {
		m := baselines.NewSingleExtractor(name, s.NewEncoder(kind), s.Vocab.Size(), s.Opt.Hidden, priorSection, priorTopic, s.nextSeed())
		wb.TrainModel(m, s.SeenTrain, s.TrainCfg(s.Opt.BaselineEpochs))
		return m
	})
}

// SingleGeneratorOn returns a trained *→[Bi-LSTM, LSTM] generator.
func (s *Setup) SingleGeneratorOn(kind EncKind, priorSection bool) wb.Model {
	name := kind.String() + "→[Bi-LSTM, LSTM]"
	if priorSection {
		name += " + prior section"
	}
	return s.cached("gen/"+name, func() wb.Model {
		m := baselines.NewSingleGenerator(name, s.NewEncoder(kind), s.Vocab.Size(), s.Opt.Hidden, priorSection, s.nextSeed())
		wb.TrainModel(m, s.SeenTrain, s.TrainCfg(s.Opt.BaselineEpochs))
		return m
	})
}

// JointBaseline returns a trained joint baseline of the given variant over
// kind-encoders.
func (s *Setup) JointBaseline(variant baselines.Exchange, kind EncKind) wb.Model {
	probe := baselines.NewJoint(variant, s.NewEncoder(EncGloVe), s.Vocab.Size(), 2, 0)
	name := probe.Name()
	return s.cached("joint/"+name+"/"+kind.String(), func() wb.Model {
		m := baselines.NewJoint(variant, s.NewEncoder(kind), s.Vocab.Size(), s.Opt.Hidden, s.nextSeed())
		wb.TrainModel(m, s.SeenTrain, s.TrainCfg(s.Opt.BaselineEpochs))
		return m
	})
}

// distillCfg returns the paper's distillation hyperparameters with the
// ablation switches applied.
func (s *Setup) distillCfg(useID, useUD bool) distill.Config {
	cfg := distill.DefaultConfig()
	cfg.UseID = useID
	cfg.UseUD = useUD
	cfg.RepDim = s.Opt.Hidden
	cfg.Seed = s.Opt.Seed
	return cfg
}

// DistilledGenerator Dual-Distills a fresh GloVe topic student from teacher
// and returns it. The cache key includes the ablation switches.
func (s *Setup) DistilledGenerator(cacheKey string, teacher wb.Model, teacherEnc wb.DocEncoder, useID, useUD bool) wb.Model {
	return s.cached("distill/gen/"+cacheKey, func() wb.Model {
		student := baselines.NewSingleGenerator("student-gen", s.NewEncoder(EncGloVe), s.Vocab.Size(), s.Opt.Hidden, false, s.nextSeed())
		d := distill.New(teacher, student, distill.TaskTopic, teacherEnc, s.SeenTopicIDs(), s.distillCfg(useID, useUD))
		d.Train(s.AllTrain, s.TrainCfg(s.Opt.DistillEpochs))
		return student
	})
}

// DistilledExtractor Dual-Distills a fresh GloVe attribute student.
func (s *Setup) DistilledExtractor(cacheKey string, teacher wb.Model, teacherEnc wb.DocEncoder, useID, useUD bool) wb.Model {
	return s.cached("distill/ext/"+cacheKey, func() wb.Model {
		student := baselines.NewSingleExtractor("student-ext", s.NewEncoder(EncGloVe), s.Vocab.Size(), s.Opt.Hidden, false, false, s.nextSeed())
		d := distill.New(teacher, student, distill.TaskAttr, teacherEnc, s.SeenTopicIDs(), s.distillCfg(useID, useUD))
		d.Train(s.AllTrain, s.TrainCfg(s.Opt.DistillEpochs))
		return student
	})
}

// TriDistilled jointly distills a Naive-Join student from a joint teacher
// (Tri-Distill, §III-B).
func (s *Setup) TriDistilled(cacheKey string, teacher wb.Model, teacherEnc wb.DocEncoder) wb.Model {
	return s.cached("distill/tri/"+cacheKey, func() wb.Model {
		student := baselines.NewJoint(baselines.ExchangeNone, s.NewEncoder(EncGloVe), s.Vocab.Size(), s.Opt.Hidden, s.nextSeed())
		student.ModelName = "Tri-Distill student"
		d := distill.New(teacher, student, distill.TaskJoint, teacherEnc, s.SeenTopicIDs(), s.distillCfg(true, true))
		d.Train(s.AllTrain, s.TrainCfg(s.Opt.DistillEpochs))
		return student
	})
}

// PipDistilled runs Pip-Distill (§IV-A7): a Dual-Distilled topic student
// (distilled from topicTeacher) feeds its generated topic to a prior-topic
// attribute student distilled from attrTeacher. It returns the attribute
// student and the eval-time instance transformer that injects the
// pipeline's predicted topics.
func (s *Setup) PipDistilled(cacheKey string, topicTeacher wb.Model, topicEnc wb.DocEncoder, attrTeacher wb.Model, attrEnc wb.DocEncoder) (wb.Model, func([]*wb.Instance) []*wb.Instance) {
	topicStudent := s.DistilledGenerator(cacheKey+"/pip-topic", topicTeacher, topicEnc, true, true)
	attr := s.cached("distill/pip/"+cacheKey, func() wb.Model {
		student := baselines.NewSingleExtractor("pip-student-ext", s.NewEncoder(EncGloVe), s.Vocab.Size(), s.Opt.Hidden, false, true, s.nextSeed())
		d := distill.New(attrTeacher, student, distill.TaskAttr, attrEnc, s.SeenTopicIDs(), s.distillCfg(true, true))
		piped := distill.WithPredictedTopics(s.AllTrain, topicStudent, s.Opt.BeamWidth, s.Opt.TopicLen)
		d.Train(piped, s.TrainCfg(s.Opt.DistillEpochs))
		return student
	})
	evalWith := func(insts []*wb.Instance) []*wb.Instance {
		return distill.WithPredictedTopics(insts, topicStudent, s.Opt.BeamWidth, s.Opt.TopicLen)
	}
	return attr, evalWith
}
