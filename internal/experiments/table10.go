package experiments

import (
	"webbrief/internal/baselines"
	"webbrief/internal/eval"
	"webbrief/internal/wb"
)

// Table10Row is one system's simulated human-evaluation scores.
type Table10Row struct {
	System      string
	SeenScore   float64
	UnseenScore float64
}

// Table10 regenerates Table X: human evaluation of generated topics on 40
// seen-domain and 40 unseen-domain pages (or as many as the test splits
// hold), scored 2/1/0 by a panel of ten simulated annotators. The panel's
// κ agreement is reported alongside, mirroring the paper's κ > 0.83 check.
func (s *Setup) Table10() (*Table, []Table10Row) {
	seen := sample(s.SeenTest, 40)
	unseen := sample(s.UnseenTest, 40)

	systems := []wb.Model{
		s.SingleGeneratorOn(EncBERT, false),
		s.SingleGeneratorOn(EncBERTSUM, false),
		s.JointBaseline(baselines.ExchangeNone, s.jointEncoderKind()),
		s.JointBaseline(baselines.ExchangeAttnBoth, s.jointEncoderKind()),
		s.JointBaseline(baselines.ExchangePipeline, s.jointEncoderKind()),
		s.DistilledGenerator("t4/ID only", s.Teacher(), s.Teacher().Enc, true, false),
		s.DistilledGenerator("t4/UD only", s.Teacher(), s.Teacher().Enc, false, true),
		s.TriDistilled("t5/Joint-WB", s.Teacher(), s.Teacher().Enc),
	}
	names := []string{
		"BERT→[Bi-LSTM,LSTM]", "BERTSUM→[Bi-LSTM,LSTM]", "Naive joint",
		"Att-Extractor + Att-Generator", "Pip-Extractor + Pip-Generator",
		"ID only", "UD only", "Tri-Distill (our proposed)",
	}

	var rows []Table10Row
	for i, m := range systems {
		rows = append(rows, Table10Row{
			System:      names[i],
			SeenScore:   panelScore(s, m, seen, int64(100+i)),
			UnseenScore: panelScore(s, m, unseen, int64(200+i)),
		})
	}

	tab := &Table{
		ID:      "X",
		Caption: "Average score of (simulated) human evaluation for topic generation",
		Header:  []string{"Methods", "Seen domains", "Unseen domains"},
	}
	for _, r := range rows {
		tab.Add(r.System, pct(r.SeenScore), pct(r.UnseenScore))
	}
	tab.Add("Full score", "2.00", "2.00")
	return tab, rows
}

// panelScore decodes topics with m and averages a ten-rater panel's scores.
func panelScore(s *Setup, m wb.Model, insts []*wb.Instance, seed int64) float64 {
	gen, gold := wb.GeneratedTopics(m, insts, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
	panel := eval.NewPanel(10, 0.05, seed)
	_, mean := panel.Rate(gen, gold)
	return mean
}

// sample returns the first n instances (the splits are already shuffled).
func sample(insts []*wb.Instance, n int) []*wb.Instance {
	if len(insts) <= n {
		return insts
	}
	return insts[:n]
}
