package experiments

import (
	"fmt"

	"webbrief/internal/baselines"
	"webbrief/internal/distill"
	"webbrief/internal/wb"
)

// AblationData collects the three design-choice studies DESIGN.md calls
// out: the Markov dependency in the section predictor, the soft-loss weight
// calibration of the understanding distillation, and the beam width at
// inference.
type AblationData struct {
	// Section predictor: accuracy with the Markov dependency vs the
	// independent per-sentence logistic.
	MarkovSectionAcc, IndepSectionAcc float64
	// Understanding-distillation soft weight → unseen-domain topic EM.
	SoftWeightEM map[float64]float64
	// Beam width → seen-domain topic EM for the teacher.
	BeamEM map[int]float64
}

// Ablations runs the design-choice studies and renders them as one table.
func (s *Setup) Ablations() (*Table, AblationData) {
	data := AblationData{
		SoftWeightEM: map[float64]float64{},
		BeamEM:       map[int]float64{},
	}

	// 1. Markov dependency vs independent section scoring: train a fresh
	// Joint-WB each way on the same data and compare section accuracy.
	markov := s.NewJointWB()
	wb.TrainModel(markov, s.SeenTrain, s.TrainCfg(s.Opt.TeacherEpochs))
	data.MarkovSectionAcc = wb.EvaluateSections(markov, s.SeenTest)

	indep := s.NewJointWB()
	indep.Sec.NoMarkov = true
	wb.TrainModel(indep, s.SeenTrain, s.TrainCfg(s.Opt.TeacherEpochs))
	data.IndepSectionAcc = wb.EvaluateSections(indep, s.SeenTest)

	// 2. Soft-weight calibration: Dual-Distill a topic student at several
	// understanding-distillation weights. High weights let a confidently
	// wrong teacher dominate on unseen domains (see distill.Config).
	teacher := s.Teacher()
	for _, w := range []float64{0.15, 0.5, 1.0} {
		cfg := s.distillCfg(true, true)
		cfg.SoftWeight = w
		student := baselines.NewSingleGenerator("ablate-gen", s.NewEncoder(EncGloVe), s.Vocab.Size(), s.Opt.Hidden, false, s.nextSeed())
		d := distill.New(teacher, student, distill.TaskTopic, teacher.Enc, s.SeenTopicIDs(), cfg)
		d.Train(s.AllTrain, s.TrainCfg(s.Opt.DistillEpochs))
		em, _ := wb.EvaluateTopics(student, s.UnseenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
		data.SoftWeightEM[w] = em
	}

	// 3. Beam width (the paper uses width 200; here the interesting range
	// is 1..8 given the scaled vocabulary).
	for _, width := range []int{1, 2, 4, 8} {
		em, _ := wb.EvaluateTopics(teacher, s.SeenTest, s.Vocab, width, s.Opt.TopicLen)
		data.BeamEM[width] = em
	}

	tab := &Table{
		ID:      "ablation",
		Caption: "Design-choice ablations: Markov dependency (section accuracy), UD soft weight (unseen EM), beam width (seen EM)",
		Header:  []string{"Study", "Setting", "Score"},
	}
	tab.Add("section predictor", "Markov dependency", pct(data.MarkovSectionAcc))
	tab.Add("section predictor", "independent logistic", pct(data.IndepSectionAcc))
	for _, w := range []float64{0.15, 0.5, 1.0} {
		tab.Add("UD soft weight", fmt.Sprintf("%.2f", w), pct(data.SoftWeightEM[w]))
	}
	for _, width := range []int{1, 2, 4, 8} {
		tab.Add("beam width", fmt.Sprintf("%d", width), pct(data.BeamEM[width]))
	}
	return tab, data
}
