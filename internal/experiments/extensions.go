package experiments

import (
	"math/rand"

	"webbrief/internal/corpus"
	"webbrief/internal/hier"
	"webbrief/internal/tensor"
	"webbrief/internal/wb"
)

// NamesData holds the attribute-name prediction results (§V future work).
type NamesData struct {
	SeenAccuracy   float64
	UnseenAccuracy float64
}

// AttrNames runs the attribute-name prediction extension: a namer head is
// fitted on the Joint-WB teacher's token representations over the
// seen-domain training split, then scored on seen and unseen test pages.
func (s *Setup) AttrNames() (*Table, NamesData) {
	teacher := s.Teacher()
	namer := wb.NewAttrNamer("namer", wb.AttributeLabels(), 2*s.Opt.Hidden, s.Vocab.Size(),
		rand.New(rand.NewSource(s.Opt.Seed+401)))
	tc := s.TrainCfg(s.Opt.BaselineEpochs)
	tc.LR = 1e-2
	wb.TrainNamer(namer, teacher, s.SeenTrain, tc)
	data := NamesData{
		SeenAccuracy:   wb.EvaluateNamer(namer, teacher, s.SeenTest),
		UnseenAccuracy: wb.EvaluateNamer(namer, teacher, s.UnseenTest),
	}
	tab := &Table{
		ID:      "names",
		Caption: "Extension (§V future work): attribute-name prediction accuracy over gold spans",
		Header:  []string{"Split", "Name accuracy"},
	}
	tab.Add("Seen domains", pct(data.SeenAccuracy))
	tab.Add("Unseen domains", pct(data.UnseenAccuracy))
	return tab, data
}

// HierData holds the multi-level extraction results: span F1 per hierarchy
// level, for the signal-combining extractor and the independent-heads
// ablation.
type HierData struct {
	CombinedL1, CombinedL2       float64
	IndependentL1, IndependentL2 float64
}

// Hierarchy runs the multi-level extension (§III-C sketch): pages carry a
// level-1 category attribute above the level-2 detail attributes; a
// two-head extractor tags both, with and without cross-level signal
// combination (the ablation DESIGN.md calls out).
func (s *Setup) Hierarchy() (*Table, HierData) {
	nDomains := s.Opt.SeenDomains
	pages := hier.GenerateHierPages(nDomains, s.Opt.PagesPerDomain, s.Opt.Seed+402)
	v := corpus.BuildVocab(pages)
	train, _, test := corpus.Split(pages, s.Opt.Seed+403)
	trainInsts := hier.NewInstances(train, v)
	testInsts := hier.NewInstances(test, v)
	tc := s.TrainCfg(s.Opt.BaselineEpochs)

	var data HierData
	for _, combine := range []bool{true, false} {
		enc := wb.NewGloVeEncoder(randEmb(v.Size(), s.Opt.EmbDim, s.Opt.Seed+404))
		m := hier.NewMultiLevel("ml", enc, s.Opt.Hidden, combine, s.Opt.Seed+405)
		m.Train(trainInsts, tc)
		l1, l2 := m.Evaluate(testInsts)
		if combine {
			data.CombinedL1, data.CombinedL2 = l1.F1, l2.F1
		} else {
			data.IndependentL1, data.IndependentL2 = l1.F1, l2.F1
		}
	}

	tab := &Table{
		ID:      "hier",
		Caption: "Extension (§III-C sketch): multi-level attribute extraction, span F1 per level (held-out pages)",
		Header:  []string{"Extractor", "Level-1 (category) F1", "Level-2 (detail) F1"},
	}
	tab.Add("Two heads + combined signal", pct(data.CombinedL1), pct(data.CombinedL2))
	tab.Add("Two independent heads (ablation)", pct(data.IndependentL1), pct(data.IndependentL2))
	return tab, data
}

// randEmb builds a deterministic random embedding matrix for extension
// vocabularies (the hier corpus has its own vocab, so the shared GloVe
// vectors do not apply).
func randEmb(vocab, dim int, seed int64) *tensor.Matrix {
	return tensor.Randn(vocab, dim, 0.1, rand.New(rand.NewSource(seed)))
}
