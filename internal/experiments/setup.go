// Package experiments regenerates every table of the paper's evaluation
// (§IV): Table IV (distillation variants for topic generation), Table V
// (distillation across teacher models), Tables VI/VII (single-task baselines
// vs Joint-WB), Tables VIII/IX (joint baselines vs Joint-WB), Table X
// (simulated human evaluation), the dataset-quality study (§IV-A2) and the
// content-sensitivity study (§IV-D).
//
// A Setup is built once per run — corpus, vocabulary, pre-trained GloVe
// vectors, MLM-pre-trained MiniBERT/MiniBERTSUM weights, and the splits —
// then individual table drivers train the systems they need and return a
// rendered Table plus the raw numbers.
package experiments

import (
	"fmt"
	"math/rand"

	"webbrief/internal/corpus"
	"webbrief/internal/embed"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// Scale selects an experiment size.
type Scale int

// Scales: Smoke for tests and benchmarks, Full for the reported numbers.
const (
	// ScaleSmoke is sized so every table finishes in seconds; the numbers
	// are noisy but every code path runs.
	ScaleSmoke Scale = iota
	// ScaleFull reproduces EXPERIMENTS.md: all 24 domains, the scaled
	// model sizes, and enough epochs to converge.
	ScaleFull
)

// Options configures an experiment run.
type Options struct {
	Scale          Scale
	Seed           int64
	SeenDomains    int
	UnseenDomains  int
	PagesPerDomain int
	EmbDim         int // GloVe / transformer width
	Hidden         int // LSTM hidden per direction
	TeacherEpochs  int
	BaselineEpochs int
	DistillEpochs  int
	MLMSteps       int
	BeamWidth      int
	TopicLen       int
	BatchSize      int // gradient-accumulation batch for all trainers
	Workers        int // data-parallel training fan-out; 0 = GOMAXPROCS
}

// DefaultOptions returns the options for a scale.
func DefaultOptions(s Scale) Options {
	switch s {
	case ScaleFull:
		return Options{
			Scale: s, Seed: 1,
			SeenDomains: 16, UnseenDomains: 8, PagesPerDomain: 12,
			EmbDim: 16, Hidden: 16,
			TeacherEpochs: 30, BaselineEpochs: 30, DistillEpochs: 15,
			MLMSteps: 300, BeamWidth: 4, TopicLen: 4,
		}
	default:
		return Options{
			Scale: s, Seed: 1,
			SeenDomains: 3, UnseenDomains: 2, PagesPerDomain: 4,
			EmbDim: 12, Hidden: 8,
			TeacherEpochs: 4, BaselineEpochs: 4, DistillEpochs: 3,
			MLMSteps: 30, BeamWidth: 2, TopicLen: 4,
		}
	}
}

// Setup is the shared state of one experiment run.
type Setup struct {
	Opt   Options
	DS    *corpus.Dataset
	Vocab *textproc.Vocab

	// Seen-domain splits (Tables VI–IX train/test here).
	SeenTrain, SeenDev, SeenTest []*wb.Instance
	// Unseen-domain splits.
	UnseenTrain, UnseenDev, UnseenTest []*wb.Instance
	// AllTrain is the distillation corpus: train pages of all r+k topics.
	AllTrain []*wb.Instance

	gloveVectors *tensor.Matrix
	bertProto    *wb.BERTEncoder // MLM-pretrained, segments off
	bertsumProto *wb.BERTEncoder // MLM-pretrained, segments on

	cache  map[string]wb.Model // trained systems shared across tables
	encSeq int64               // distinct seed per encoder instantiation
}

// NewSetup generates the corpus, trains the shared embeddings, and
// pre-trains the MiniBERT prototypes.
func NewSetup(opt Options) (*Setup, error) {
	ds, err := corpus.Generate(corpus.Config{
		Seed:           opt.Seed,
		PagesPerDomain: opt.PagesPerDomain,
		SeenDomains:    opt.SeenDomains,
		UnseenDomains:  opt.UnseenDomains,
	})
	if err != nil {
		return nil, err
	}
	v := corpus.BuildVocab(ds.Pages)
	s := &Setup{Opt: opt, DS: ds, Vocab: v}

	seenPages := ds.PagesOf(ds.IsSeen)
	unseenPages := ds.PagesOf(func(d string) bool { return !ds.IsSeen(d) })
	sTr, sDe, sTe := corpus.Split(seenPages, opt.Seed+100)
	uTr, uDe, uTe := corpus.Split(unseenPages, opt.Seed+200)
	s.SeenTrain = wb.NewInstances(sTr, v, 0)
	s.SeenDev = wb.NewInstances(sDe, v, 0)
	s.SeenTest = wb.NewInstances(sTe, v, 0)
	s.UnseenTrain = wb.NewInstances(uTr, v, 0)
	s.UnseenDev = wb.NewInstances(uDe, v, 0)
	s.UnseenTest = wb.NewInstances(uTe, v, 0)
	s.AllTrain = append(append([]*wb.Instance{}, s.SeenTrain...), s.UnseenTrain...)

	// GloVe vectors over the full corpus.
	docs := tokenDocs(ds.Pages, v)
	gcfg := embed.DefaultGloVeConfig(opt.EmbDim)
	gcfg.Seed = opt.Seed
	if opt.Scale == ScaleSmoke {
		gcfg.Epochs = 2
	}
	s.gloveVectors = embed.TrainGloVe(docs, v.Size(), gcfg)

	// MLM-pretrained transformer prototypes.
	mlm := embed.DefaultMLMConfig()
	mlm.Steps = opt.MLMSteps
	mlm.Seed = opt.Seed
	s.bertProto = wb.NewBERTEncoder("bertProto", s.transformerConfig(), false, rand.New(rand.NewSource(opt.Seed+1)))
	embed.PretrainMLM(s.bertProto.Tr, docs, mlm)
	s.bertsumProto = wb.NewBERTEncoder("bertsumProto", s.transformerConfig(), true, rand.New(rand.NewSource(opt.Seed+2)))
	embed.PretrainMLM(s.bertsumProto.Tr, docs, mlm)
	return s, nil
}

// transformerConfig sizes MiniBERT for this run.
func (s *Setup) transformerConfig() nn.TransformerConfig {
	return nn.TransformerConfig{
		Vocab: s.Vocab.Size(), Dim: s.Opt.EmbDim, Heads: 2, Layers: 1,
		FFDim: 2 * s.Opt.EmbDim, MaxLen: 64, Segments: 2,
	}
}

// tokenDocs flattens pages to token-id documents for embedding training.
func tokenDocs(pages []*corpus.Page, v *textproc.Vocab) [][]int {
	var docs [][]int
	for _, p := range pages {
		var doc []int
		for _, sent := range p.Sentences {
			doc = append(doc, v.IDs(sent.Tokens)...)
		}
		docs = append(docs, doc)
	}
	return docs
}

// nextSeed returns a fresh deterministic seed for a new encoder or model.
func (s *Setup) nextSeed() int64 {
	s.encSeq++
	return s.Opt.Seed*1000 + s.encSeq
}

// EncKind names a document-encoder regime.
type EncKind int

// Encoder regimes of §IV-A6.
const (
	EncGloVe EncKind = iota
	EncBERT
	EncBERTSUM
)

// String returns the paper's name for the regime.
func (k EncKind) String() string {
	switch k {
	case EncGloVe:
		return "GloVe"
	case EncBERT:
		return "BERT"
	default:
		return "BERTSUM"
	}
}

// NewEncoder instantiates a fresh fine-tunable encoder of the given kind,
// initialised from the shared pre-trained weights.
func (s *Setup) NewEncoder(kind EncKind) wb.DocEncoder {
	seed := s.nextSeed()
	switch kind {
	case EncGloVe:
		return wb.NewGloVeEncoder(s.gloveVectors)
	case EncBERT:
		enc := wb.NewBERTEncoder(fmt.Sprintf("bert%d", seed), s.transformerConfig(), false, rand.New(rand.NewSource(seed)))
		nn.CopyParams(enc, s.bertProto)
		return enc
	default:
		enc := wb.NewBERTEncoder(fmt.Sprintf("bertsum%d", seed), s.transformerConfig(), true, rand.New(rand.NewSource(seed)))
		nn.CopyParams(enc, s.bertsumProto)
		return enc
	}
}

// TrainCfg returns the training configuration with the given epoch count.
func (s *Setup) TrainCfg(epochs int) wb.TrainConfig {
	tc := wb.DefaultTrainConfig()
	tc.Epochs = epochs
	tc.Seed = s.Opt.Seed
	tc.BatchSize = s.Opt.BatchSize
	tc.Workers = s.Opt.Workers
	return tc
}

// NewJointWB builds a fresh Joint-WB model (MiniBERTSUM encoder, as in the
// paper, which builds Joint-WB on BERT_base with BERTSUM document encoding).
func (s *Setup) NewJointWB() *wb.JointWB {
	cfg := wb.Config{
		Hidden: s.Opt.Hidden, Dropout: 0.2,
		BeamSize: s.Opt.BeamWidth, TopicLen: s.Opt.TopicLen, Seed: s.nextSeed(),
	}
	return wb.NewJointWB("Joint-WB", s.NewEncoder(EncBERTSUM), s.Vocab.Size(), cfg)
}

// SeenTopicIDs returns the seen-domain topic phrases in token-id form — the
// stored knowledge the identification distillation uses.
func (s *Setup) SeenTopicIDs() [][]int {
	var out [][]int
	for _, name := range s.DS.Seen {
		out = append(out, s.Vocab.IDs(corpus.DomainByName(name).Topic))
	}
	return out
}
