package experiments

import (
	"webbrief/internal/baselines"
	"webbrief/internal/eval"
	"webbrief/internal/wb"
)

// sigMark returns the paper's significance annotation: "*" when Joint-WB's
// improvement over the baseline is significant under McNemar's test at
// p < 0.05 (§IV-A4), "" otherwise.
func sigMark(baselineCorrect, jwbCorrect []bool) string {
	if _, significant := eval.McNemar(jwbCorrect, baselineCorrect); significant {
		return "*"
	}
	return ""
}

// PRF1Row is one attribute-extraction result row. Sig is "*" when Joint-WB
// beats this system significantly under McNemar's test (empty on the
// Joint-WB row itself).
type PRF1Row struct {
	System string
	Scores eval.PRF1
	Sig    string
}

// EMRMRow is one topic-generation result row; Sig as in PRF1Row.
type EMRMRow struct {
	System string
	EM, RM float64
	Sig    string
}

// Table6 regenerates Table VI: single-task baselines vs Joint-WB for key
// attribute extraction on previously seen domains (P/R/F1).
func (s *Setup) Table6() (*Table, []PRF1Row) {
	systems := []wb.Model{
		s.SingleExtractorOn(EncGloVe, false, false),
		s.SingleExtractorOn(EncBERT, false, false),
		s.SingleExtractorOn(EncBERTSUM, false, false),
		s.SingleExtractorOn(EncBERTSUM, true, false),
		s.SingleExtractorOn(EncBERTSUM, false, true),
		s.Teacher(),
	}
	jwbCorrect := wb.ExtractionCorrect(s.Teacher(), s.SeenTest)
	var rows []PRF1Row
	for _, m := range systems {
		row := PRF1Row{System: m.Name(), Scores: wb.EvaluateExtraction(m, s.SeenTest)}
		if m != wb.Model(s.Teacher()) {
			row.Sig = sigMark(wb.ExtractionCorrect(m, s.SeenTest), jwbCorrect)
		}
		rows = append(rows, row)
	}
	tab := &Table{
		ID:      "VI",
		Caption: "Single-task baselines vs Joint-WB for key attribute extraction (seen domains; * = Joint-WB improvement significant, McNemar p<0.05)",
		Header:  []string{"Methods", "P", "R", "F1"},
	}
	for _, r := range rows {
		tab.Add(r.System+r.Sig, pct(r.Scores.Precision), pct(r.Scores.Recall), pct(r.Scores.F1))
	}
	return tab, rows
}

// Table7 regenerates Table VII: single-task baselines vs Joint-WB for topic
// generation on previously seen domains (EM/RM).
func (s *Setup) Table7() (*Table, []EMRMRow) {
	systems := []wb.Model{
		s.SingleGeneratorOn(EncGloVe, false),
		s.SingleGeneratorOn(EncBERT, false),
		s.SingleGeneratorOn(EncBERTSUM, false),
		s.SingleGeneratorOn(EncBERTSUM, true),
		s.Teacher(),
	}
	jwbCorrect := wb.TopicCorrect(s.Teacher(), s.SeenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
	var rows []EMRMRow
	for _, m := range systems {
		em, rm := wb.EvaluateTopics(m, s.SeenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
		row := EMRMRow{System: m.Name(), EM: em, RM: rm}
		if m != wb.Model(s.Teacher()) {
			row.Sig = sigMark(wb.TopicCorrect(m, s.SeenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen), jwbCorrect)
		}
		rows = append(rows, row)
	}
	tab := &Table{
		ID:      "VII",
		Caption: "Single-task baselines vs Joint-WB for topic generation (seen domains; * = significant, McNemar p<0.05)",
		Header:  []string{"Methods", "EM", "RM"},
	}
	for _, r := range rows {
		tab.Add(r.System+r.Sig, pct(r.EM), pct(r.RM))
	}
	return tab, rows
}

// jointVariants are the Table VIII/IX baselines in presentation order.
var jointVariants = []baselines.Exchange{
	baselines.ExchangeNone,
	baselines.ExchangeConcat,
	baselines.ExchangeAverage,
	baselines.ExchangeAttn,
	baselines.ExchangeAttnBoth,
	baselines.ExchangePipeline,
}

// jointEncoderKind returns the encoder regime for the joint baselines: the
// paper builds them all on BERTSUM; the smoke scale uses GloVe to stay fast.
func (s *Setup) jointEncoderKind() EncKind {
	if s.Opt.Scale == ScaleSmoke {
		return EncGloVe
	}
	return EncBERTSUM
}

// Table8 regenerates Table VIII: joint baselines vs Joint-WB for key
// attribute extraction on seen domains.
func (s *Setup) Table8() (*Table, []PRF1Row) {
	kind := s.jointEncoderKind()
	jwb := s.Teacher()
	jwbCorrect := wb.ExtractionCorrect(jwb, s.SeenTest)
	var rows []PRF1Row
	for _, variant := range jointVariants {
		m := s.JointBaseline(variant, kind)
		rows = append(rows, PRF1Row{
			System: m.Name(),
			Scores: wb.EvaluateExtraction(m, s.SeenTest),
			Sig:    sigMark(wb.ExtractionCorrect(m, s.SeenTest), jwbCorrect),
		})
	}
	rows = append(rows, PRF1Row{System: jwb.Name(), Scores: wb.EvaluateExtraction(jwb, s.SeenTest)})
	tab := &Table{
		ID:      "VIII",
		Caption: "Joint baselines vs Joint-WB for key attribute extraction (seen domains; * = significant, McNemar p<0.05)",
		Header:  []string{"Methods", "P", "R", "F1"},
	}
	for _, r := range rows {
		tab.Add(r.System+r.Sig, pct(r.Scores.Precision), pct(r.Scores.Recall), pct(r.Scores.F1))
	}
	return tab, rows
}

// Table9 regenerates Table IX: joint baselines vs Joint-WB for topic
// generation on seen domains.
func (s *Setup) Table9() (*Table, []EMRMRow) {
	kind := s.jointEncoderKind()
	jwb := s.Teacher()
	jwbCorrect := wb.TopicCorrect(jwb, s.SeenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
	var rows []EMRMRow
	for _, variant := range jointVariants {
		m := s.JointBaseline(variant, kind)
		em, rm := wb.EvaluateTopics(m, s.SeenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
		rows = append(rows, EMRMRow{
			System: m.Name(), EM: em, RM: rm,
			Sig: sigMark(wb.TopicCorrect(m, s.SeenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen), jwbCorrect),
		})
	}
	em, rm := wb.EvaluateTopics(jwb, s.SeenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
	rows = append(rows, EMRMRow{System: jwb.Name(), EM: em, RM: rm})
	tab := &Table{
		ID:      "IX",
		Caption: "Joint baselines vs Joint-WB for topic generation (seen domains; * = significant, McNemar p<0.05)",
		Header:  []string{"Methods", "EM", "RM"},
	}
	for _, r := range rows {
		tab.Add(r.System+r.Sig, pct(r.EM), pct(r.RM))
	}
	return tab, rows
}
