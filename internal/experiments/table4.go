package experiments

import (
	"webbrief/internal/wb"
)

// Table4Row holds one distillation variant's topic-generation scores.
type Table4Row struct {
	Method                                           string
	UnseenEM, UnseenRM, SeenEM, SeenRM, AllEM, AllRM float64
}

// Table4 regenerates Table IV: comparison with different distillation
// methods for topic generation on previously unseen, seen, and all domains.
// The teacher is Joint-WB pre-trained on seen domains; each student is
// distilled on pages covering all r+k topics.
func (s *Setup) Table4() (*Table, []Table4Row) {
	teacher := s.Teacher()
	type variant struct {
		name         string
		useID, useUD bool
	}
	variants := []variant{
		{"ID only", true, false},
		{"UD only", false, true},
		{"Dual-Distill", true, true},
	}

	allTest := append(append([]*wb.Instance{}, s.UnseenTest...), s.SeenTest...)
	score := func(m wb.Model) (row [6]float64) {
		row[0], row[1] = wb.EvaluateTopics(m, s.UnseenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
		row[2], row[3] = wb.EvaluateTopics(m, s.SeenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
		row[4], row[5] = wb.EvaluateTopics(m, allTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
		return row
	}

	var rows []Table4Row
	add := func(name string, v [6]float64) {
		rows = append(rows, Table4Row{name, v[0], v[1], v[2], v[3], v[4], v[5]})
	}
	add("No Distill", score(teacher))
	for _, va := range variants {
		student := s.DistilledGenerator("t4/"+va.name, teacher, teacher.Enc, va.useID, va.useUD)
		add(va.name, score(student))
	}

	tab := &Table{
		ID:      "IV",
		Caption: "Comparison with different distillation methods for topic generation (teacher: Joint-WB)",
		Header:  []string{"Methods", "Unseen EM", "Unseen RM", "Seen EM", "Seen RM", "All EM", "All RM"},
	}
	for _, r := range rows {
		tab.Add(r.Method, pct(r.UnseenEM), pct(r.UnseenRM), pct(r.SeenEM), pct(r.SeenRM), pct(r.AllEM), pct(r.AllRM))
	}
	return tab, rows
}
