package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // paper table id, e.g. "IV"
	Caption string
	Header  []string
	Rows    [][]string
}

// Add appends one row; values are already formatted strings.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table %s: %s\n", t.ID, t.Caption)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// pct formats a percentage with two decimals, matching the paper's tables.
func pct(v float64) string { return fmt.Sprintf("%.2f", v) }
