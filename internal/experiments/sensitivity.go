package experiments

import (
	"math/rand"

	"webbrief/internal/corpus"
	"webbrief/internal/eval"
	"webbrief/internal/wb"
)

// SensitivityRow reports, for one proportion split and one model, the
// fraction of synthetic two-topic pages whose predicted topic follows the
// first page (position) versus the page contributing more content (length).
type SensitivityRow struct {
	Model          string
	Proportion     string  // e.g. "70-30"
	FollowsFirst   float64 // % predictions matching page A's topic
	FollowsSecond  float64 // % matching page B's topic
	FollowsLarger  float64 // % matching whichever page contributed more
	FollowsNeither float64
}

// Sensitivity reproduces the content-sensitivity study of §IV-D: 300
// synthetic pages built by concatenating two real pages with different
// topics at 50-50, 70-30 and 30-70 content proportions. The paper observes
// Joint-WB predicting from the content that appears FIRST while the
// distilled students follow the LARGER portion.
func (s *Setup) Sensitivity() (*Table, []SensitivityRow) {
	jwb := s.Teacher()
	dual := s.DistilledGenerator("t4/Dual-Distill", jwb, jwb.Enc, true, true)
	tri := s.TriDistilled("t5/Joint-WB", jwb, jwb.Enc)
	models := []wb.Model{jwb, dual, tri}
	labels := []string{"Joint-WB (no distill)", "Dual-Distill", "Tri-Distill"}

	// Build page pairs from different seen domains.
	rng := rand.New(rand.NewSource(s.Opt.Seed + 777))
	pool := s.DS.PagesOf(s.DS.IsSeen)
	nPairs := 100
	if s.Opt.Scale == ScaleSmoke {
		nPairs = 6
	}
	type pagePair struct{ a, b *corpus.Page }
	var pairs []pagePair
	for len(pairs) < nPairs {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if a.Domain != b.Domain {
			pairs = append(pairs, pagePair{a, b})
		}
	}

	props := []struct {
		name string
		p    float64
	}{{"50-50", 0.5}, {"70-30", 0.7}, {"30-70", 0.3}}

	var rows []SensitivityRow
	tab := &Table{
		ID:      "sensitivity",
		Caption: "Content sensitivity on synthetic two-topic pages (§IV-D): which source the predicted topic follows (%)",
		Header:  []string{"Model", "Mix", "First", "Second", "Larger", "Neither"},
	}
	for mi, m := range models {
		for _, pr := range props {
			var first, second, larger, neither int
			for _, pair := range pairs {
				syn := corpus.ConcatPages(pair.a, pair.b, pr.p)
				inst := wb.NewInstance(syn, s.Vocab, 0)
				gen := s.Vocab.Tokens(wb.GenerateTopic(m, inst, s.Opt.BeamWidth, s.Opt.TopicLen))
				matchA := eval.ExactMatch(gen, pair.a.Topic)
				matchB := eval.ExactMatch(gen, pair.b.Topic)
				switch {
				case matchA && pr.p >= 0.5, matchB && pr.p < 0.5:
					larger++
				}
				switch {
				case matchA:
					first++
				case matchB:
					second++
				default:
					neither++
				}
			}
			n := float64(len(pairs))
			row := SensitivityRow{
				Model:          labels[mi],
				Proportion:     pr.name,
				FollowsFirst:   100 * float64(first) / n,
				FollowsSecond:  100 * float64(second) / n,
				FollowsLarger:  100 * float64(larger) / n,
				FollowsNeither: 100 * float64(neither) / n,
			}
			rows = append(rows, row)
			tab.Add(row.Model, row.Proportion, pct(row.FollowsFirst), pct(row.FollowsSecond), pct(row.FollowsLarger), pct(row.FollowsNeither))
		}
	}
	return tab, rows
}
