package experiments

import (
	"fmt"
)

// AllIDs lists the runnable experiment ids in paper order.
func AllIDs() []string {
	return []string{"4", "5", "6", "7", "8", "9", "10", "quality", "sensitivity", "names", "hier", "ablation"}
}

// Run dispatches an experiment by id ("4".."10", "quality",
// "sensitivity") and returns its rendered table.
func (s *Setup) Run(id string) (*Table, error) {
	switch id {
	case "4":
		t, _ := s.Table4()
		return t, nil
	case "5":
		t, _ := s.Table5()
		return t, nil
	case "6":
		t, _ := s.Table6()
		return t, nil
	case "7":
		t, _ := s.Table7()
		return t, nil
	case "8":
		t, _ := s.Table8()
		return t, nil
	case "9":
		t, _ := s.Table9()
		return t, nil
	case "10":
		t, _ := s.Table10()
		return t, nil
	case "quality":
		t, _ := s.DatasetQuality()
		return t, nil
	case "sensitivity":
		t, _ := s.Sensitivity()
		return t, nil
	case "names":
		t, _ := s.AttrNames()
		return t, nil
	case "hier":
		t, _ := s.Hierarchy()
		return t, nil
	case "ablation":
		t, _ := s.Ablations()
		return t, nil
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, AllIDs())
}
