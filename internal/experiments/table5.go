package experiments

import (
	"webbrief/internal/baselines"
	"webbrief/internal/wb"
)

// Table5Cell is one (teacher, method) result on previously unseen domains.
type Table5Cell struct {
	TopicEM float64
	AttrF1  float64
	Valid   bool // false where the combination is not defined (e.g. Tri-Distill on a single-task teacher)
}

// Table5Data maps teacher name → method name → scores.
type Table5Data map[string]map[string]Table5Cell

// teacherPair bundles what a distillation column needs: models providing
// topic and attribute supervision plus the encoder carrying the stored
// topic knowledge.
type teacherPair struct {
	name       string
	topicModel wb.Model
	attrModel  wb.Model
	topicEnc   wb.DocEncoder
	attrEnc    wb.DocEncoder
	joint      bool
}

// Table5 regenerates Table V: Dual-Distill / Pip-Distill / Tri-Distill
// applied to different teacher models, evaluated on previously unseen
// domains (topic EM and attribute F1).
func (s *Setup) Table5() (*Table, Table5Data) {
	// Teacher column 1: BERT-Single — two single-task BERTSUM models.
	singleGen := s.SingleGeneratorOn(EncBERTSUM, false)
	singleExt := s.SingleExtractorOn(EncBERTSUM, false, false)
	// Teacher column 2: Naive-Join over BERTSUM.
	naive := s.JointBaseline(baselines.ExchangeNone, EncBERTSUM)
	// Teacher column 3: Joint-WB.
	jwb := s.Teacher()

	teachers := []teacherPair{
		{
			name:       "BERT-Single",
			topicModel: singleGen, attrModel: singleExt,
			topicEnc: singleGen.(*baselines.SingleGenerator).Enc,
			attrEnc:  singleExt.(*baselines.SingleExtractor).Enc,
		},
		{
			name:       "Naive-Join",
			topicModel: naive, attrModel: naive,
			topicEnc: naive.(*baselines.Joint).Enc, attrEnc: naive.(*baselines.Joint).Enc,
			joint: true,
		},
		{
			name:       "Joint-WB",
			topicModel: jwb, attrModel: jwb,
			topicEnc: jwb.Enc, attrEnc: jwb.Enc,
			joint: true,
		},
	}

	data := Table5Data{}
	methods := []string{"No Distill", "Dual-Distill", "Pip-Distill", "Tri-Distill"}
	for _, tp := range teachers {
		col := map[string]Table5Cell{}
		em := func(m wb.Model) float64 {
			e, _ := wb.EvaluateTopics(m, s.UnseenTest, s.Vocab, s.Opt.BeamWidth, s.Opt.TopicLen)
			return e
		}
		f1 := func(m wb.Model, insts []*wb.Instance) float64 {
			return wb.EvaluateExtraction(m, insts).F1
		}
		// No Distill: the teacher applied directly.
		col["No Distill"] = Table5Cell{TopicEM: em(tp.topicModel), AttrF1: f1(tp.attrModel, s.UnseenTest), Valid: true}
		// Dual-Distill: separate topic and attribute students.
		dGen := s.DistilledGenerator("t5/"+tp.name, tp.topicModel, tp.topicEnc, true, true)
		dExt := s.DistilledExtractor("t5/"+tp.name, tp.attrModel, tp.attrEnc, true, true)
		col["Dual-Distill"] = Table5Cell{TopicEM: em(dGen), AttrF1: f1(dExt, s.UnseenTest), Valid: true}
		// Pip-Distill: attribute extraction conditioned on the first
		// student's generated topic; the topic EM column repeats the
		// pipeline's first stage.
		pipExt, evalWith := s.PipDistilled("t5/"+tp.name, tp.topicModel, tp.topicEnc, tp.attrModel, tp.attrEnc)
		pipTopic := s.DistilledGenerator("t5/"+tp.name+"/pip-topic", tp.topicModel, tp.topicEnc, true, true)
		col["Pip-Distill"] = Table5Cell{TopicEM: em(pipTopic), AttrF1: f1(pipExt, evalWith(s.UnseenTest)), Valid: true}
		// Tri-Distill: only defined for joint teachers.
		if tp.joint {
			tri := s.TriDistilled("t5/"+tp.name, tp.topicModel, tp.topicEnc)
			col["Tri-Distill"] = Table5Cell{TopicEM: em(tri), AttrF1: f1(tri, s.UnseenTest), Valid: true}
		}
		data[tp.name] = col
	}

	tab := &Table{
		ID:      "V",
		Caption: "Distillation methods with different teacher models on previously unseen domains",
		Header:  []string{"Methods", "BERT-Single EM", "BERT-Single F1", "Naive-Join EM", "Naive-Join F1", "Joint-WB EM", "Joint-WB F1"},
	}
	for _, method := range methods {
		row := []string{method}
		for _, tname := range []string{"BERT-Single", "Naive-Join", "Joint-WB"} {
			cell, ok := data[tname][method]
			if !ok || !cell.Valid {
				row = append(row, "-", "-")
				continue
			}
			row = append(row, pct(cell.TopicEM), pct(cell.AttrF1))
		}
		tab.Add(row...)
	}
	return tab, data
}
