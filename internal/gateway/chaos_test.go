package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fleetReloadResult is the gateway's /admin/reload response shape.
type fleetReloadResult struct {
	FleetGeneration int64 `json:"fleet_generation"`
	Reloaded        int   `json:"reloaded"`
	Backends        []struct {
		Backend    string `json:"backend"`
		Generation int64  `json:"generation"`
		Error      string `json:"error"`
	} `json:"backends"`
}

// driveFleetReload POSTs the gateway's /admin/reload and decodes the
// rolling-reload report.
func driveFleetReload(t *testing.T, url string) (int, fleetReloadResult) {
	t.Helper()
	var out fleetReloadResult
	resp, err := http.Post(url+"/admin/reload", "", nil)
	if err != nil {
		t.Fatalf("POST /admin/reload: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode reload response: %v", err)
	}
	return resp.StatusCode, out
}

// fetchMetrics scrapes the gateway's /metrics endpoint — the same document
// an operator sees, not an in-process shortcut — so the reconciliation
// below checks the exported numbers end to end.
func fetchMetrics(t *testing.T, url string) metricsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return snap
}

// domainsInterleaved returns perOwner domains owned by each ring backend,
// interleaved A,B,C,A,B,C,... so a client walking the list spreads load
// across the whole fleet.
func domainsInterleaved(t *testing.T, r *Ring, perOwner int) []string {
	t.Helper()
	names := r.Backends()
	owned := make(map[string][]string, len(names))
	filled := 0
	for i := 0; filled < len(names); i++ {
		if i >= 100000 {
			t.Fatalf("no %d domains per backend among 100000 candidates", perOwner)
		}
		d := fmt.Sprintf("site-%d.example", i)
		owner := r.Backend("domain:" + d)
		if len(owned[owner]) == perOwner {
			continue
		}
		owned[owner] = append(owned[owner], d)
		if len(owned[owner]) == perOwner {
			filled++
		}
	}
	out := make([]string, 0, perOwner*len(names))
	for i := 0; i < perOwner; i++ {
		for _, n := range names {
			out = append(out, owned[n][i])
		}
	}
	return out
}

// TestGatewayChaosSoak is the gate on the sharded serving tier: a fleet of
// three backends takes sustained client load while the test kills one
// backend outright mid-load (connections slammed, the TCP signature of a
// dead process), drives a fleet-wide hot model reload through the gateway
// while that backend is dead, makes a second backend return garbage 500s
// until its breaker ejects it, and slows the third — then heals everything
// and lets the fleet quiesce.
//
// The assertions are the service-level contract of the PR:
//
//   - clients keep succeeding through every fault (≥99% of requests get a
//     200; in practice all of them — failover covers each injected fault),
//   - nothing is dropped: the gateway's requests_total equals the number
//     of requests the clients sent, and its outcome counters partition it
//     exactly,
//   - the attempt ledger balances: backend_requests_total equals
//     backend_ok+backend_error equals the sum of the per-backend request
//     counters, and the per-backend error counters sum to backend_error,
//   - what clients saw is what backends did: proxied responses equal the
//     clients' observed 200s equal the briefs the fake backends served,
//   - the routing set heals: after quiesce every breaker is closed, all
//     backends are routable, and ejections == readmissions exactly (with
//     rebalances counting both), and
//   - the rolling reload drive reports per-backend generations honestly:
//     the dead backend is skipped (fleet generation pins to 0 until it has
//     reloaded), and a post-recovery drive brings it to its first reload
//     while the survivors advance again.
func TestGatewayChaosSoak(t *testing.T) {
	g, ts, backends := newTestGateway(t, 3, nil)
	names := g.Ring().Backends()
	victim, slowpoke, flaky := backends[names[0]], backends[names[1]], backends[names[2]]

	domains := domainsInterleaved(t, g.Ring(), 8)

	const clients, perClient = 8, 80
	const total = clients * perClient
	var served, okCount atomic.Int64
	var failMu sync.Mutex
	var failures []string
	recordFail := func(format string, args ...any) {
		failMu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		failMu.Unlock()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				d := domains[(c*perClient+j)%len(domains)]
				resp, err := http.Post(ts.URL+"/brief?src=https://"+d+"/page", "text/html",
					strings.NewReader("<html><body>soak page for "+d+"</body></html>"))
				if err != nil {
					recordFail("client %d req %d (%s): %v", c, j, d, err)
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						okCount.Add(1)
					} else {
						recordFail("client %d req %d (%s): status %d", c, j, d, resp.StatusCode)
					}
				}
				served.Add(1)
				time.Sleep(500 * time.Microsecond)
			}
		}(c)
	}

	m := g.Metrics()

	// Fault 1: kill a backend cold mid-load. Its conn-reset failures blame
	// the breaker; failover keeps its keys' clients whole.
	waitCond(t, "warmup traffic", func() bool { return served.Load() >= total/5 })
	victim.down.Store(true)
	waitCond(t, "dead backend ejected", func() bool { return m.Ejections.Load() >= 1 })

	// Fault 2: slow a second backend — load it can still serve, just not
	// quickly. Its breaker must not open.
	slowpoke.slow.Store(int64(2 * time.Millisecond))

	// Drive a fleet reload through the gateway while one backend is dead:
	// the rolling drive reloads the two survivors and reports the corpse as
	// an error, pinning the fleet generation at 0 (it has never reloaded).
	code, rep := driveFleetReload(t, ts.URL)
	if code != http.StatusOK || rep.Reloaded != 2 {
		t.Fatalf("mid-chaos reload drive: code %d, reloaded %d, want 200 and 2 survivors", code, rep.Reloaded)
	}
	if rep.FleetGeneration != 0 {
		t.Fatalf("fleet generation %d with a never-reloaded backend, want 0", rep.FleetGeneration)
	}
	for _, b := range rep.Backends {
		switch b.Backend {
		case victim.name:
			if b.Error == "" {
				t.Fatalf("dead backend %s reported a clean reload: %+v", b.Backend, b)
			}
		default:
			if b.Error != "" || b.Generation != 2 {
				t.Fatalf("survivor %s: %+v, want generation 2", b.Backend, b)
			}
		}
	}

	// Fault 3: a third backend starts answering garbage 500s. Retryable
	// failover keeps clients whole; the breaker ejects it (second ejection).
	flaky.failBriefs.Store(true)
	waitCond(t, "flaky backend ejected", func() bool { return m.Ejections.Load() >= 2 })
	flaky.failBriefs.Store(false)

	// With at least the dead backend's breaker open, /healthz reports a
	// degraded (but serving) fleet.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		var h struct {
			Status string `json:"status"`
		}
		err := json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || h.Status != "degraded" {
			t.Fatalf("mid-chaos /healthz = %d %q, want 200 degraded", resp.StatusCode, h.Status)
		}
	}

	// Heal everything mid-load; the tail of the soak sees recovery traffic.
	waitCond(t, "bulk of traffic served", func() bool { return served.Load() >= total*3/5 })
	victim.down.Store(false)
	slowpoke.slow.Store(0)
	wg.Wait()

	// Quiesce: probes readmit the healed backends, every breaker closes,
	// and the rebalance ledger pairs up — ejections == readmissions.
	waitCond(t, "fleet quiesce", func() bool {
		snap := g.snapshot()
		if snap.Ring.RoutableBackends != len(names) {
			return false
		}
		for _, b := range snap.Backends {
			if b.BreakerState != "closed" {
				return false
			}
		}
		return snap.Ring.EjectionsTotal == snap.Ring.ReadmissionsTotal
	})

	// Service level: ≥99% of client requests succeeded (expected: all).
	ok := okCount.Load()
	if ok*100 < int64(total)*99 {
		t.Fatalf("soak success %d/%d is below 99%%; failures: %v", ok, total, failures)
	}
	for _, f := range failures {
		t.Logf("tolerated failure: %s", f)
	}

	// Reconcile the exported /metrics document against everything the
	// clients observed. Exact, not approximate: the partitions must sum.
	snap := fetchMetrics(t, ts.URL)
	if snap.RequestsTotal != total {
		t.Fatalf("requests_total = %d, clients sent %d — requests dropped or double-counted", snap.RequestsTotal, total)
	}
	outcomeSum := snap.Responses.Proxied + snap.Responses.BadMethod + snap.Responses.BadRequest +
		snap.Responses.TooLarge + snap.Responses.NoBackend + snap.Responses.BackendFailure +
		snap.Responses.Timeout + snap.Responses.Canceled + snap.Responses.Draining
	if outcomeSum != snap.RequestsTotal {
		t.Fatalf("outcome sum %d != requests_total %d: %+v", outcomeSum, snap.RequestsTotal, snap.Responses)
	}
	if snap.Responses.Proxied != ok {
		t.Fatalf("proxied = %d, clients observed %d successes", snap.Responses.Proxied, ok)
	}
	if got := snap.BackendOutcomes.BackendOK + snap.BackendOutcomes.BackendError; got != snap.BackendRequestsTotal {
		t.Fatalf("backend outcome sum %d != backend_requests_total %d", got, snap.BackendRequestsTotal)
	}
	var perBackendReqs, perBackendErrs int64
	for _, b := range snap.Backends {
		perBackendReqs += b.Requests
		perBackendErrs += b.Errors
	}
	if perBackendReqs != snap.BackendRequestsTotal {
		t.Fatalf("per-backend requests sum %d != backend_requests_total %d", perBackendReqs, snap.BackendRequestsTotal)
	}
	if perBackendErrs != snap.BackendOutcomes.BackendError {
		t.Fatalf("per-backend errors sum %d != backend_error_total %d", perBackendErrs, snap.BackendOutcomes.BackendError)
	}
	if briefs := victim.briefs.Load() + slowpoke.briefs.Load() + flaky.briefs.Load(); briefs != ok {
		t.Fatalf("backends served %d briefs, clients observed %d successes", briefs, ok)
	}

	// Rebalance ledger after quiesce.
	if e, r := snap.Ring.EjectionsTotal, snap.Ring.ReadmissionsTotal; e != r || e < 2 {
		t.Fatalf("ejections %d / readmissions %d, want equal and >= 2", e, r)
	}
	if got, want := snap.Ring.RebalancesTotal, snap.Ring.EjectionsTotal+snap.Ring.ReadmissionsTotal; got != want {
		t.Fatalf("rebalances = %d, want ejections+readmissions = %d", got, want)
	}
	if snap.Ring.RoutableBackends != len(names) {
		t.Fatalf("routable backends = %d after quiesce, want %d", snap.Ring.RoutableBackends, len(names))
	}
	if snap.Ring.ReroutedTotal == 0 {
		t.Fatal("no candidate was ever rerouted around an open breaker during the chaos window")
	}
	if snap.Reload.FleetReloadsTotal != 1 {
		t.Fatalf("fleet reloads = %d before the recovery drive, want 1", snap.Reload.FleetReloadsTotal)
	}

	// Recovery drive: the fleet is whole again, so every backend reloads —
	// the previously dead one for its first time (generation 2), the
	// survivors for their second (generation 3) — and the fleet generation
	// advances to the laggard's.
	code, rep = driveFleetReload(t, ts.URL)
	if code != http.StatusOK || rep.Reloaded != len(names) {
		t.Fatalf("recovery reload drive: code %d, reloaded %d, want 200 and %d", code, rep.Reloaded, len(names))
	}
	if rep.FleetGeneration != 2 {
		t.Fatalf("post-recovery fleet generation = %d, want 2 (the revived backend's first reload)", rep.FleetGeneration)
	}
	final := g.snapshot()
	if final.Reload.FleetGeneration != 2 || final.Reload.FleetReloadsTotal != 2 {
		t.Fatalf("final reload block = %+v, want fleet gen 2, 2 drives", final.Reload)
	}
	for _, b := range final.Backends {
		want := int64(3)
		if b.Name == victim.name {
			want = 2
		}
		if b.Generation != want {
			t.Fatalf("backend %s generation = %d, want %d", b.Name, b.Generation, want)
		}
	}
}
