package gateway

import (
	"sync"
	"time"
)

// BreakerState is a per-backend circuit breaker state — the same
// three-state machine the replica pool (internal/serve) and the crawler's
// per-host breaker run, applied per backend process instead of per replica
// or per origin.
type BreakerState int

const (
	// BreakerClosed: the backend is in rotation.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend is ejected; requests route around it until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooled down; probes (and live requests) test it.
	BreakerHalfOpen
)

// String renders the state for /metrics and /healthz.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker tracks one backend's health: Threshold consecutive failures open
// it (an ejection — the routing loop then skips it, failing the keys it
// owned over to the next candidate on the ring); after Cooldown the next
// Allow flips it half-open, and ProbeSuccesses consecutive successes close
// it again (a readmission — its keys route home). A failure while
// half-open re-opens it and restarts the cooldown without counting a
// second ejection, so over any quiesced interval ejections and
// readmissions pair up exactly.
type breaker struct {
	threshold      int
	cooldown       time.Duration
	probeSuccesses int

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed
	probeOKs int // consecutive successes while half-open
	openedAt time.Time
}

// Allow reports whether the backend may be tried now. An open breaker past
// its cooldown transitions to half-open and admits the caller as a probe.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probeOKs = 0
		return true
	default:
		return true
	}
}

// Success records a clean exchange. It reports true when this success
// closed a half-open breaker — a readmission. A success while open (an
// in-flight request that outlived the ejection) is ignored: re-admission
// goes through the cooldown and probe sequence.
func (b *breaker) Success() (readmitted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
		return false
	case BreakerOpen:
		return false
	default:
		b.probeOKs++
		if b.probeOKs >= b.probeSuccesses {
			b.state = BreakerClosed
			b.fails = 0
			return true
		}
		return false
	}
}

// Fail records a failed exchange. It reports true when this failure opened
// a closed breaker — an ejection. A half-open failure re-opens and
// restarts the cooldown without counting another ejection.
func (b *breaker) Fail(now time.Time) (ejected bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
			return true
		}
		return false
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.probeOKs = 0
		return false
	default:
		return false
	}
}

// State returns the current state for snapshots. An open breaker reads as
// open until an Allow observes the elapsed cooldown.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
