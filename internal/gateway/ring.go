package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per backend when Config leaves
// it zero. 64 points per backend keeps the worst-case load skew of a small
// fleet within a few percent while the ring stays tiny (a few KB).
const DefaultVNodes = 64

// hashKey is the ring's hash: FNV-1a 64. Stable across processes and Go
// versions (unlike maphash), so key→backend assignments can be pinned in
// golden tests and agree between a gateway and its operators' tooling.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ringPoint is one virtual node: the hash of "backend#i" owning the arc
// that ends at it.
type ringPoint struct {
	hash    uint64
	backend string
}

// Ring is a consistent-hash ring over a fixed backend set. Construction is
// deterministic: backends are sorted and deduplicated before hashing, so
// the same set in any order yields the identical ring, and a key's backend
// depends only on the set — not on flag order, map iteration, or join
// sequence. Removing one of N backends remaps only the keys on its arcs
// (≈1/N of the keyspace); every other key keeps its backend.
//
// The ring itself is immutable after New; liveness is layered on top by
// the gateway's per-backend circuit breakers, which skip (not remove)
// ejected backends so readmission restores the original assignment.
type Ring struct {
	vnodes   int
	points   []ringPoint // sorted by hash
	backends []string    // sorted, deduplicated
}

// NewRing builds a ring of vnodes points per backend (DefaultVNodes when
// vnodes <= 0). An empty backend list yields an empty ring whose lookups
// return "".
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := append([]string(nil), backends...)
	sort.Strings(uniq)
	n := 0
	for i, b := range uniq {
		if b == "" || (i > 0 && b == uniq[n-1]) {
			continue
		}
		uniq[n] = b
		n++
	}
	uniq = uniq[:n]

	r := &Ring{vnodes: vnodes, backends: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, b := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hashKey(b + "#" + strconv.Itoa(i)), b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare at 64 bits) break on the sorted
		// backend name so construction stays order-independent.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// Backends returns the ring's member set, sorted.
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Size is the number of distinct backends on the ring.
func (r *Ring) Size() int { return len(r.backends) }

// Backend returns the backend owning key: the first ring point at or after
// the key's hash, wrapping at the top. Empty ring returns "".
func (r *Ring) Backend(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].backend
}

// Candidates returns up to n distinct backends for key, in ring order
// starting at the key's owner — the gateway's failover sequence. n <= 0
// (or n > Size) means all backends. Every key's candidate list is a
// rotation-deterministic permutation of the backend set.
func (r *Ring) Candidates(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.backends) {
		n = len(r.backends)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// search returns the index of the first point at or after key's hash.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
