package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a scriptable stand-in for one wbserve process: it serves
// /brief, /healthz and /admin/reload, and can be killed (connections
// hijacked and closed — the TCP signature of a dead process), made to
// fail briefs with garbage 500s, slowed, or made to refuse reloads.
type fakeBackend struct {
	ts   *httptest.Server
	name string // host:port

	briefs     atomic.Int64
	generation atomic.Int64
	down       atomic.Bool  // kill switch: every endpoint slams the connection
	failBriefs atomic.Bool  // /brief answers 500 + garbage
	reloadErr  atomic.Bool  // /admin/reload answers 500
	slow       atomic.Int64 // per-brief sleep, nanoseconds
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{}
	f.generation.Store(1)
	mux := http.NewServeMux()
	mux.HandleFunc("/brief", f.handleBrief)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/admin/reload", f.handleReload)
	f.ts = httptest.NewServer(mux)
	f.name = strings.TrimPrefix(f.ts.URL, "http://")
	t.Cleanup(f.ts.Close)
	return f
}

// die hijacks and closes the connection when the backend is down,
// reporting whether it did — a dead process, not a graceful error.
func (f *fakeBackend) die(w http.ResponseWriter) bool {
	if !f.down.Load() {
		return false
	}
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
	}
	return true
}

func (f *fakeBackend) handleBrief(w http.ResponseWriter, r *http.Request) {
	if f.die(w) {
		return
	}
	if d := f.slow.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	io.Copy(io.Discard, r.Body)
	if f.failBriefs.Load() {
		http.Error(w, "\x00\xffgarbage not json", http.StatusInternalServerError)
		return
	}
	f.briefs.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"backend\":%q,\"generation\":%d}\n", f.name, f.generation.Load())
}

func (f *fakeBackend) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if f.die(w) {
		return
	}
	w.Write([]byte(`{"status":"ok"}`))
}

func (f *fakeBackend) handleReload(w http.ResponseWriter, _ *http.Request) {
	if f.die(w) {
		return
	}
	if f.reloadErr.Load() {
		http.Error(w, "bundle read failed", http.StatusInternalServerError)
		return
	}
	gen := f.generation.Add(1)
	fmt.Fprintf(w, "{\"generation\":%d,\"replicas\":2}\n", gen)
}

// newTestGateway boots n fake backends and a gateway over them with
// chaos-friendly timings, returning the gateway, its HTTP server, and the
// backends keyed by ring name.
func newTestGateway(t *testing.T, n int, mutate func(*Config)) (*Gateway, *httptest.Server, map[string]*fakeBackend) {
	t.Helper()
	byName := make(map[string]*fakeBackend, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		f := newFakeBackend(t)
		byName[f.name] = f
		addrs = append(addrs, f.name)
	}
	cfg := Config{
		Backends:         addrs,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		ProbeInterval:    5 * time.Millisecond,
		ProbeSuccesses:   2,
		Timeout:          5 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.BeginShutdown)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts, byName
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// post sends one briefing through the gateway, returning status, body.
func post(t *testing.T, url, query, html string) (int, []byte) {
	t.Helper()
	target := url + "/brief"
	if query != "" {
		target += "?" + query
	}
	resp, err := http.Post(target, "text/html", strings.NewReader(html))
	if err != nil {
		t.Fatalf("POST %s: %v", target, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// servedBy decodes which backend answered.
func servedBy(t *testing.T, body []byte) string {
	t.Helper()
	var out struct {
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("response %q: %v", body, err)
	}
	return out.Backend
}

// domainOwnedBy finds a domain the ring assigns to the given backend.
func domainOwnedBy(t *testing.T, r *Ring, backend string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		d := fmt.Sprintf("site-%d.example", i)
		if r.Backend("domain:"+d) == backend {
			return d
		}
	}
	t.Fatalf("no domain of 10000 routes to %s", backend)
	return ""
}

// TestGatewayRoutesByDomain: requests attributed to one domain all land on
// the ring's backend for that domain; unattributed requests with one body
// also stick to a single backend (the body-hash key).
func TestGatewayRoutesByDomain(t *testing.T) {
	g, ts, backends := newTestGateway(t, 3, nil)
	for i := 0; i < 5; i++ {
		domain := fmt.Sprintf("site-%d.example", i)
		want := g.Ring().Backend("domain:" + domain)
		for rep := 0; rep < 6; rep++ {
			status, body := post(t, ts.URL, "src=https://"+domain+"/some/page", "<html><body>p</body></html>")
			if status != http.StatusOK {
				t.Fatalf("domain %s rep %d: status %d", domain, rep, status)
			}
			if got := servedBy(t, body); got != want {
				t.Fatalf("domain %s rep %d served by %s, ring says %s", domain, rep, got, want)
			}
		}
	}
	const page = "<html><body>unattributed page</body></html>"
	first := ""
	for rep := 0; rep < 10; rep++ {
		status, body := post(t, ts.URL, "", page)
		if status != http.StatusOK {
			t.Fatalf("unattributed rep %d: status %d", rep, status)
		}
		got := servedBy(t, body)
		if first == "" {
			first = got
		} else if got != first {
			t.Fatalf("identical body bounced between backends: %s then %s", first, got)
		}
	}
	var total int64
	for _, f := range backends {
		total += f.briefs.Load()
	}
	if want := int64(5*6 + 10); total != want {
		t.Fatalf("backends served %d briefs, want %d", total, want)
	}
}

// TestGatewayFailoverAndBreaker: the owner of a domain starts failing; its
// keys fail over (clients keep getting 200s), the breaker opens after the
// threshold (one ejection), open-state candidates are skipped (rerouted),
// and once the backend heals the prober readmits it and its keys route
// home — ejections == readmissions.
func TestGatewayFailoverAndBreaker(t *testing.T) {
	g, ts, backends := newTestGateway(t, 2, nil)
	victimName := g.Ring().Backends()[0]
	victim := backends[victimName]
	domain := domainOwnedBy(t, g.Ring(), victimName)
	query := "src=" + domain

	// Healthy baseline: the domain lands on its owner.
	status, body := post(t, ts.URL, query, "<html><body>x</body></html>")
	if status != http.StatusOK || servedBy(t, body) != victimName {
		t.Fatalf("baseline: status %d, served by %s, want %s", status, servedBy(t, body), victimName)
	}

	victim.failBriefs.Store(true)
	// Every request still succeeds by failing over; after
	// BreakerThreshold (2) failed attempts the victim is ejected.
	for i := 0; i < 6; i++ {
		status, body := post(t, ts.URL, query, "<html><body>x</body></html>")
		if status != http.StatusOK {
			t.Fatalf("failover request %d: status %d", i, status)
		}
		if got := servedBy(t, body); got == victimName {
			t.Fatalf("request %d served by the failing backend", i)
		}
	}
	m := g.Metrics()
	if got := m.Ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}
	if m.Rerouted.Load() == 0 {
		t.Fatal("open breaker never rerouted a candidate")
	}
	if m.BackendError.Load() < 2 {
		t.Fatalf("backend errors = %d, want >= threshold", m.BackendError.Load())
	}

	// Heal. The prober (cooldown 30ms, 2 clean probes at 5ms cadence)
	// readmits; the domain then routes home.
	victim.failBriefs.Store(false)
	waitCond(t, "victim readmission", func() bool { return m.Readmissions.Load() == 1 })
	waitCond(t, "domain routes home", func() bool {
		status, body := post(t, ts.URL, query, "<html><body>x</body></html>")
		return status == http.StatusOK && servedBy(t, body) == victimName
	})
	if e, r := m.Ejections.Load(), m.Readmissions.Load(); e != r {
		t.Fatalf("after quiesce ejections (%d) != readmissions (%d)", e, r)
	}
	if got, want := m.Rebalances.Load(), m.Ejections.Load()+m.Readmissions.Load(); got != want {
		t.Fatalf("rebalances = %d, want ejections+readmissions = %d", got, want)
	}
}

// TestGatewayBoundedConnPool: a single slow backend with a 2-connection
// pool serves 6 concurrent requests — all succeed, and the backend never
// observes more than 2 in flight (the gateway queues the overflow).
func TestGatewayBoundedConnPool(t *testing.T) {
	var active, highWater atomic.Int64
	f := newFakeBackend(t)
	inner := f.ts.Config.Handler
	f.ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/brief" {
			cur := active.Add(1)
			defer active.Add(-1)
			for {
				hw := highWater.Load()
				if cur <= hw || highWater.CompareAndSwap(hw, cur) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	})

	g, err := New(Config{
		Backends:           []string{f.name},
		MaxConnsPerBackend: 2,
		Timeout:            5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.BeginShutdown)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/brief", "text/html", strings.NewReader("<html><body>x</body></html>"))
			if err != nil || resp.StatusCode != http.StatusOK {
				failed.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d of 6 requests failed against a healthy (slow) backend", failed.Load())
	}
	if hw := highWater.Load(); hw > 2 {
		t.Fatalf("backend saw %d concurrent briefs, pool bound is 2", hw)
	}
}

// TestGatewayHealthzAggregation: /healthz is 200 while any backend is
// routable, degrades with partial ejection, 503s when every breaker is
// open, and 503s as draining after BeginShutdown.
func TestGatewayHealthzAggregation(t *testing.T) {
	g, ts, _ := newTestGateway(t, 2, func(c *Config) {
		c.ProbeInterval = time.Hour // hold breaker states still
		c.BreakerCooldown = time.Hour
	})
	getHealth := func() (int, string) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Status   string `json:"status"`
			Routable int    `json:"routable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h.Status
	}
	if code, status := getHealth(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthy fleet: %d %s, want 200 ok", code, status)
	}
	names := g.Ring().Backends()
	now := time.Now()
	for i := 0; i < g.cfg.BreakerThreshold; i++ {
		g.backends[names[0]].br.Fail(now)
	}
	if code, status := getHealth(); code != http.StatusOK || status != "degraded" {
		t.Fatalf("one ejected: %d %s, want 200 degraded", code, status)
	}
	for i := 0; i < g.cfg.BreakerThreshold; i++ {
		g.backends[names[1]].br.Fail(now)
	}
	if code, status := getHealth(); code != http.StatusServiceUnavailable || status != "unhealthy" {
		t.Fatalf("all ejected: %d %s, want 503 unhealthy", code, status)
	}
	g.BeginShutdown()
	if code, status := getHealth(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("draining: %d %s, want 503 draining", code, status)
	}
}

// TestGatewayReloadDrive: POST /admin/reload rolls a reload across the
// fleet and reports per-backend generations; a second drive with one
// refusing backend still succeeds partially and the fleet generation is
// the minimum.
func TestGatewayReloadDrive(t *testing.T) {
	g, ts, backends := newTestGateway(t, 2, nil)

	if resp, err := http.Get(ts.URL + "/admin/reload"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /admin/reload = %d, want 405", resp.StatusCode)
		}
	}

	drive := func() (int, struct {
		FleetGeneration int64 `json:"fleet_generation"`
		Reloaded        int   `json:"reloaded"`
	}) {
		var out struct {
			FleetGeneration int64 `json:"fleet_generation"`
			Reloaded        int   `json:"reloaded"`
		}
		resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, out := drive()
	if code != http.StatusOK || out.Reloaded != 2 || out.FleetGeneration != 2 {
		t.Fatalf("first drive: code %d %+v, want 200, 2 reloaded, fleet gen 2", code, out)
	}
	snap := g.snapshot()
	if snap.Reload.FleetGeneration != 2 || snap.Reload.FleetReloadsTotal != 1 {
		t.Fatalf("metrics reload block = %+v", snap.Reload)
	}
	for _, b := range snap.Backends {
		if b.Generation != 2 {
			t.Fatalf("backend %s generation = %d, want 2", b.Name, b.Generation)
		}
	}

	// One backend refuses: the drive still rolls the other forward, and
	// the fleet generation pins to the laggard.
	names := g.Ring().Backends()
	backends[names[1]].reloadErr.Store(true)
	code, out = drive()
	if code != http.StatusOK || out.Reloaded != 1 || out.FleetGeneration != 2 {
		t.Fatalf("partial drive: code %d %+v, want 200, 1 reloaded, fleet gen 2", code, out)
	}
}

// TestGatewayRefusals covers the gateway-local outcomes — 405, 413,
// draining 503, all-ejected 503 — and checks the requests_total partition
// reconciles exactly over everything this test sent.
func TestGatewayRefusals(t *testing.T) {
	g, ts, _ := newTestGateway(t, 1, func(c *Config) {
		c.MaxBodyBytes = 64
		c.ProbeInterval = time.Hour
		c.BreakerCooldown = time.Hour
	})

	if resp, err := http.Get(ts.URL + "/brief"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /brief = %d, want 405", resp.StatusCode)
		}
	}

	big := strings.Repeat("x", 200)
	if status, _ := post(t, ts.URL, "", big); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", status)
	}

	if status, _ := post(t, ts.URL, "", "<html>ok</html>"); status != http.StatusOK {
		t.Fatalf("small body = %d, want 200", status)
	}

	// Eject the only backend: NoBackend 503 with Retry-After.
	name := g.Ring().Backends()[0]
	for i := 0; i < g.cfg.BreakerThreshold; i++ {
		g.backends[name].br.Fail(time.Now())
	}
	resp, err := http.Post(ts.URL+"/brief", "text/html", strings.NewReader("<html>x</html>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("all-ejected = %d (Retry-After %q), want 503 with hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	g.BeginShutdown()
	if status, _ := post(t, ts.URL, "", "<html>x</html>"); status != http.StatusServiceUnavailable {
		t.Fatalf("draining = %d, want 503", status)
	}

	snap := g.snapshot()
	sum := snap.Responses.Proxied + snap.Responses.BadMethod + snap.Responses.BadRequest +
		snap.Responses.TooLarge + snap.Responses.NoBackend + snap.Responses.BackendFailure +
		snap.Responses.Timeout + snap.Responses.Canceled + snap.Responses.Draining
	if sum != snap.RequestsTotal {
		t.Fatalf("outcome sum %d != requests_total %d: %+v", sum, snap.RequestsTotal, snap.Responses)
	}
	if snap.Responses.BadMethod != 1 || snap.Responses.TooLarge != 1 ||
		snap.Responses.NoBackend != 1 || snap.Responses.Draining != 1 || snap.Responses.Proxied != 1 {
		t.Fatalf("unexpected outcome split: %+v", snap.Responses)
	}
	if got := snap.BackendOutcomes.BackendOK + snap.BackendOutcomes.BackendError; got != snap.BackendRequestsTotal {
		t.Fatalf("backend outcome sum %d != backend_requests_total %d", got, snap.BackendRequestsTotal)
	}
}
