package gateway

import "sync/atomic"

// Metrics aggregates the gateway counters exported at /metrics. All fields
// are atomics; the proxy path never takes a lock to record. The same
// exact-partition discipline as the backend's /metrics applies (and the
// same wbcheck metricpart pass plus runtime reflection test enforce it):
// requests_total is partitioned by the client-facing outcome counters, and
// backend_requests_total — the per-attempt total, which exceeds
// requests_total whenever failover retries — by the per-attempt outcome
// pair.
type Metrics struct {
	// Requests counts every request that reached the gateway's /brief
	// handler, whatever its outcome. The outcome counters below partition
	// it: every request ends in exactly one.
	Requests atomic.Int64

	Proxied        atomic.Int64 // a backend response was relayed, whatever its status
	BadMethod      atomic.Int64 // 405: non-POST, refused at the gateway
	BadRequest     atomic.Int64 // 400: unreadable body
	TooLarge       atomic.Int64 // 413: body over the limit, refused before any backend
	NoBackend      atomic.Int64 // 503: every candidate's breaker was open
	BackendFailure atomic.Int64 // 502: attempts were made and all failed
	Timeout        atomic.Int64 // 504: deadline expired routing or relaying
	Canceled       atomic.Int64 // client disconnected before a response
	Draining       atomic.Int64 // 503: received during gateway shutdown

	// BackendRequests counts every relay attempt on any backend; the two
	// counters below partition it. One client request makes 1..Attempts
	// attempts, so this total reconciles against the per-backend request
	// counters (their sum is exactly BackendRequests).
	BackendRequests atomic.Int64
	BackendOK       atomic.Int64 // attempt produced a relayable response
	BackendError    atomic.Int64 // attempt failed: conn error or retryable status

	// Routing and rebalance counters. Rerouted counts candidates skipped on
	// an open breaker (the keys they owned served elsewhere); Ejections and
	// Readmissions count breaker transitions out of and back into rotation,
	// and Rebalances counts both — every change to the effective routing
	// set. After a quiesce (all backends healthy, breakers closed),
	// Ejections == Readmissions exactly.
	Rerouted     atomic.Int64
	Ejections    atomic.Int64
	Readmissions atomic.Int64
	Rebalances   atomic.Int64
	Probes       atomic.Int64 // health probes sent to ejected backends
}

// requestOutcomeFields names the Metrics counters that partition
// requests_total: every request reaching the gateway's /brief ends in
// exactly one of them. The wbcheck metricpart pass enforces the contract
// mechanically, as it does for the serving tier's partition; the
// TestGatewayOutcomeFieldsReconcile reflection test re-checks it at run
// time.
var requestOutcomeFields = []string{
	"Proxied",
	"BadMethod",
	"BadRequest",
	"TooLarge",
	"NoBackend",
	"BackendFailure",
	"Timeout",
	"Canceled",
	"Draining",
}

// backendOutcomeFields names the counters that partition
// backend_requests_total: every relay attempt either produced a relayable
// response or failed. Enforced by the same wbcheck metricpart pass and
// reflection test.
var backendOutcomeFields = []string{
	"BackendOK",
	"BackendError",
}

// backendSnapshot is one backend's block in the /metrics document. Blocks
// appear sorted by name, so scrapes are stable across runs.
type backendSnapshot struct {
	Name         string `json:"name"`
	Requests     int64  `json:"requests_total"`
	Errors       int64  `json:"errors_total"`
	BreakerState string `json:"breaker_state"`
	Generation   int64  `json:"generation"`
	ActiveConns  int    `json:"active_conns"`
}

// metricsSnapshot is the JSON document the gateway serves at /metrics.
// Struct (not map) so field order is stable across scrapes.
type metricsSnapshot struct {
	RequestsTotal int64 `json:"requests_total"`
	Responses     struct {
		Proxied        int64 `json:"proxied"`
		BadMethod      int64 `json:"bad_method"`
		BadRequest     int64 `json:"bad_request"`
		TooLarge       int64 `json:"too_large"`
		NoBackend      int64 `json:"no_backend"`
		BackendFailure int64 `json:"backend_failure"`
		Timeout        int64 `json:"timeout"`
		Canceled       int64 `json:"canceled"`
		Draining       int64 `json:"draining"`
	} `json:"responses"`
	BackendRequestsTotal int64 `json:"backend_requests_total"`
	BackendOutcomes      struct {
		BackendOK    int64 `json:"backend_ok_total"`
		BackendError int64 `json:"backend_error_total"`
	} `json:"outcomes"`
	Ring struct {
		Backends          int   `json:"backends"`
		VNodesPerBackend  int   `json:"vnodes_per_backend"`
		RoutableBackends  int   `json:"routable_backends"`
		ReroutedTotal     int64 `json:"rerouted_total"`
		EjectionsTotal    int64 `json:"ejections_total"`
		ReadmissionsTotal int64 `json:"readmissions_total"`
		RebalancesTotal   int64 `json:"rebalances_total"`
	} `json:"ring"`
	ProbesTotal int64 `json:"probes_total"`
	Reload      struct {
		FleetGeneration   int64 `json:"fleet_generation"`
		FleetReloadsTotal int64 `json:"fleet_reloads_total"`
	} `json:"reload"`
	Backends []backendSnapshot `json:"backends"`
}

// snapshot collects a point-in-time view of every counter plus the
// per-backend blocks, in sorted backend order.
func (g *Gateway) snapshot() metricsSnapshot {
	m := g.metrics
	var s metricsSnapshot
	s.RequestsTotal = m.Requests.Load()
	s.Responses.Proxied = m.Proxied.Load()
	s.Responses.BadMethod = m.BadMethod.Load()
	s.Responses.BadRequest = m.BadRequest.Load()
	s.Responses.TooLarge = m.TooLarge.Load()
	s.Responses.NoBackend = m.NoBackend.Load()
	s.Responses.BackendFailure = m.BackendFailure.Load()
	s.Responses.Timeout = m.Timeout.Load()
	s.Responses.Canceled = m.Canceled.Load()
	s.Responses.Draining = m.Draining.Load()
	s.BackendRequestsTotal = m.BackendRequests.Load()
	s.BackendOutcomes.BackendOK = m.BackendOK.Load()
	s.BackendOutcomes.BackendError = m.BackendError.Load()
	s.Ring.Backends = g.ring.Size()
	s.Ring.VNodesPerBackend = g.cfg.VNodes
	s.Ring.ReroutedTotal = m.Rerouted.Load()
	s.Ring.EjectionsTotal = m.Ejections.Load()
	s.Ring.ReadmissionsTotal = m.Readmissions.Load()
	s.Ring.RebalancesTotal = m.Rebalances.Load()
	s.ProbesTotal = m.Probes.Load()
	s.Reload.FleetGeneration = g.fleetGen.Load()
	s.Reload.FleetReloadsTotal = g.fleetReloads.Load()
	s.Backends = make([]backendSnapshot, 0, len(g.names))
	routable := 0
	for _, name := range g.names {
		b := g.backends[name]
		st := b.br.State()
		if st != BreakerOpen {
			routable++
		}
		s.Backends = append(s.Backends, backendSnapshot{
			Name:         name,
			Requests:     b.requests.Load(),
			Errors:       b.errors.Load(),
			BreakerState: st.String(),
			Generation:   b.generation.Load(),
			ActiveConns:  len(b.slots),
		})
	}
	s.Ring.RoutableBackends = routable
	return s
}
