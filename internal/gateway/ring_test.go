package gateway

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestRingGoldenAssignments pins key→backend assignments for a fixed
// fleet. These are load-bearing constants: a change to the hash, the
// vnode labelling, or the sort order silently remaps every cached domain
// in a live fleet, so any diff here must be a deliberate,
// migration-noted decision — not an accident this test lets through.
func TestRingGoldenAssignments(t *testing.T) {
	r := NewRing([]string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}, 64)
	golden := []struct{ key, backend string }{
		{"domain:example.com", "10.0.0.3:8080"},
		{"domain:news.example.com", "10.0.0.2:8080"},
		{"domain:wikipedia.org", "10.0.0.3:8080"},
		{"domain:golang.org", "10.0.0.3:8080"},
		{"domain:arxiv.org", "10.0.0.1:8080"},
		{"domain:github.com", "10.0.0.3:8080"},
		{"domain:nytimes.com", "10.0.0.2:8080"},
		{"domain:bbc.co.uk", "10.0.0.2:8080"},
		{"body:1a2b3c4d5e6f7788", "10.0.0.2:8080"},
		{"body:cafebabedeadbeef", "10.0.0.3:8080"},
	}
	for _, g := range golden {
		if got := r.Backend(g.key); got != g.backend {
			t.Errorf("Backend(%q) = %q, want pinned %q", g.key, got, g.backend)
		}
	}
}

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("domain:site-%d.example", i)
	}
	return keys
}

// TestRingRemappingBound checks the property consistent hashing exists
// for: removing one of N backends remaps only the keys that backend
// owned — every other key keeps its assignment — and the moved fraction
// stays near 1/N (within 2x, covering vnode placement variance).
func TestRingRemappingBound(t *testing.T) {
	const n = 6
	backends := make([]string, n)
	for i := range backends {
		backends[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	removed := backends[2]
	full := NewRing(backends, 64)
	reduced := NewRing(append(append([]string(nil), backends[:2]...), backends[3:]...), 64)

	keys := ringKeys(3000)
	moved := 0
	for _, k := range keys {
		before, after := full.Backend(k), reduced.Backend(k)
		if before == after {
			continue
		}
		moved++
		if before != removed {
			t.Fatalf("key %q moved %s → %s but its backend %s is still in the fleet", k, before, after, before)
		}
	}
	if moved == 0 {
		t.Fatal("removing a backend moved no keys — it owned nothing?")
	}
	if bound := 2 * len(keys) / n; moved > bound {
		t.Fatalf("removing 1 of %d backends moved %d of %d keys, want ≤ %d (≈2·K/N)", n, moved, len(keys), bound)
	}
}

// TestRingPermutationStable is the determinism property: the backend list
// order must not matter. Any permutation (and any duplication) of the
// same set builds a ring with identical points and identical assignments.
func TestRingPermutationStable(t *testing.T) {
	backends := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	ref := NewRing(backends, 32)
	keys := ringKeys(500)
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = ref.Backend(k)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := append([]string(nil), backends...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if trial%3 == 0 {
			perm = append(perm, perm[rng.Intn(len(perm))]) // duplicates collapse
		}
		r := NewRing(perm, 32)
		if !reflect.DeepEqual(r.Backends(), ref.Backends()) {
			t.Fatalf("trial %d: member set diverged: %v", trial, r.Backends())
		}
		for i, k := range keys {
			if got := r.Backend(k); got != want[i] {
				t.Fatalf("trial %d: Backend(%q) = %q under permutation %v, want %q", trial, k, got, perm, want[i])
			}
		}
	}
}

// TestRingCandidates pins the failover sequence contract: the first
// candidate is the key's owner, candidates are distinct, n<=0 yields the
// whole fleet, and every backend is reachable as some key's owner.
func TestRingCandidates(t *testing.T) {
	backends := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(backends, 64)
	owners := map[string]bool{}
	for _, k := range ringKeys(1000) {
		owner := r.Backend(k)
		owners[owner] = true
		cands := r.Candidates(k, 0)
		if len(cands) != len(backends) {
			t.Fatalf("Candidates(%q, 0) returned %d backends, want %d", k, len(cands), len(backends))
		}
		if cands[0] != owner {
			t.Fatalf("Candidates(%q)[0] = %q, want owner %q", k, cands[0], owner)
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("Candidates(%q) repeats %q", k, c)
			}
			seen[c] = true
		}
		if two := r.Candidates(k, 2); len(two) != 2 || two[0] != cands[0] || two[1] != cands[1] {
			t.Fatalf("Candidates(%q, 2) = %v, want prefix of %v", k, two, cands)
		}
	}
	for _, b := range backends {
		if !owners[b] {
			t.Errorf("backend %s owns no key of 1000 — vnode placement badly skewed", b)
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate rings.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 8)
	if got := empty.Backend("domain:x"); got != "" {
		t.Fatalf("empty ring Backend = %q, want empty", got)
	}
	if cands := empty.Candidates("domain:x", 3); cands != nil {
		t.Fatalf("empty ring Candidates = %v, want nil", cands)
	}
	one := NewRing([]string{"only:1"}, 8)
	for _, k := range ringKeys(50) {
		if got := one.Backend(k); got != "only:1" {
			t.Fatalf("single-backend ring sent %q to %q", k, got)
		}
	}
}
